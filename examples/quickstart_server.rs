//! Quickstart for the streaming server: submit a live stream of Steiner
//! forest jobs with priorities and deadlines, watch results arrive as
//! they finish, and cancel a job in flight — all on a bounded queue that
//! backpressures instead of growing without limit.
//!
//! ```text
//! cargo run --release --example quickstart_server
//! ```

use std::sync::Arc;
use std::time::Duration;

use steiner_forest::prelude::*;

fn main() {
    let g = Arc::new(generators::gnp_connected(40, 0.12, 20, 42));
    let inst = InstanceBuilder::new(&g)
        .component(&[NodeId(0), NodeId(7), NodeId(15)])
        .component(&[NodeId(21), NodeId(33)])
        .build()
        .expect("disjoint components");

    // Four workers, a 16-deep admission queue; a full queue makes
    // `submit` block until a slot frees (use `AdmissionPolicy::Reject`
    // to fail fast instead).
    let mut server = StreamingServer::new(ServerConfig {
        workers: 4,
        queue_capacity: 16,
        ..Default::default()
    });

    // A seed sweep at normal priority, plus one urgent job that jumps
    // the queue and one throwaway job we cancel immediately.
    let mut handles = Vec::new();
    for seed in 0..8 {
        let req = SolveRequest::new(
            format!("sweep/seed={seed}"),
            g.clone(),
            inst.clone(),
            SolverKind::Randomized,
            seed,
        );
        handles.push(server.submit(req).expect("admitted"));
    }
    let urgent = server
        .submit_with(
            SolveRequest::new(
                "urgent",
                g.clone(),
                inst.clone(),
                SolverKind::Deterministic,
                0,
            ),
            JobOptions::default()
                .with_priority(10)
                .with_deadline_in(Duration::from_secs(30)),
        )
        .expect("admitted");
    let throwaway = server
        .submit(SolveRequest::new(
            "throwaway",
            g.clone(),
            inst.clone(),
            SolverKind::Khan,
            99,
        ))
        .expect("admitted");
    throwaway.cancel();

    // Results stream in completion order; every admitted job — finished,
    // cancelled, or expired — is reported exactly once.
    let total = handles.len() + 2;
    for _ in 0..total {
        let r = server
            .next_result_timeout(Duration::from_secs(60))
            .expect("server drains");
        match r.status.outcome() {
            Some(out) => println!(
                "{:<16} prio {:>2}  weight {:>5}  rounds {:>4}  queued {:>6.2} ms",
                r.id,
                r.priority,
                out.weight,
                out.ledger.total(),
                r.queued_ns as f64 / 1e6,
            ),
            None => println!("{:<16} prio {:>2}  {:?}", r.id, r.priority, r.status),
        }
    }
    assert!(urgent.is_finished());
    server.shutdown();
}
