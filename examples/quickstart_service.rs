//! Quickstart for the service layer: pose a stream of Steiner forest
//! jobs, run them as one batch through the pooled solver service, and
//! read the per-job report — then run the same batch again to see warm
//! sessions solve without allocating a single arena.
//!
//! ```text
//! cargo run --release --example quickstart_service
//! ```

use std::sync::Arc;

use steiner_forest::prelude::*;

fn main() {
    // One recurring network (the service amortizes setup across jobs that
    // share a graph) and two demand instances over it.
    let g = Arc::new(generators::gnp_connected(40, 0.12, 20, 42));
    let provisioning = InstanceBuilder::new(&g)
        .component(&[NodeId(0), NodeId(7), NodeId(15)])
        .component(&[NodeId(21), NodeId(33)])
        .build()
        .expect("disjoint components");
    let multicast = InstanceBuilder::new(&g)
        .component(&[NodeId(2), NodeId(18), NodeId(29), NodeId(38)])
        .build()
        .expect("disjoint components");

    // A mixed batch: both instances, three solvers, a seed sweep.
    let mut requests = Vec::new();
    for (inst_name, inst) in [("provisioning", &provisioning), ("multicast", &multicast)] {
        for solver in [
            SolverKind::Deterministic,
            SolverKind::Randomized,
            SolverKind::Khan,
        ] {
            for seed in 0..3 {
                requests.push(SolveRequest::new(
                    format!("{inst_name}/{}/seed={seed}", solver.name()),
                    g.clone(),
                    inst.clone(),
                    solver,
                    seed,
                ));
            }
        }
    }

    let mut service = SolverService::new(ServiceConfig {
        workers: 4,
        ..Default::default()
    });

    let report = service.run_batch(&requests).expect("model respected");
    print_report("cold batch", &report);
    let stats = service.pool_stats();
    println!(
        "\npool after cold batch: {} arena builds, {} in-place reuses",
        stats.builds, stats.reuses
    );

    // Steady state: the same workload again — bit-identical results
    // (batching and reuse are invisible), zero new allocations.
    let again = service.run_batch(&requests).expect("model respected");
    assert!(report
        .jobs
        .iter()
        .zip(&again.jobs)
        .all(|(a, b)| a.deterministic_eq(b)));
    let warm = service.pool_stats();
    assert_eq!(warm.builds, stats.builds, "warm batch allocated nothing");
    print_report("warm batch", &again);
    println!(
        "\npool after warm batch: {} arena builds (unchanged), {} in-place reuses",
        warm.builds, warm.reuses
    );
}

fn print_report(label: &str, report: &ServiceReport) {
    println!(
        "\n{label}: {} jobs across {} workers, {:.3} ms, {:.1} solves/sec",
        report.jobs.len(),
        report.workers,
        report.wall_ns as f64 / 1e6,
        report.solves_per_sec_milli() as f64 / 1000.0
    );
    println!(
        "{:<34} {:>7} {:>8} {:>10} {:>10}",
        "job", "weight", "rounds", "messages", "wall"
    );
    for job in &report.jobs {
        println!(
            "{:<34} {:>7} {:>8} {:>10} {:>7.2} ms",
            job.id,
            job.weight,
            job.rounds(),
            job.messages(),
            job.wall_ns as f64 / 1e6
        );
    }
    assert!(report.violations.is_empty());
}
