//! Figure 1 in action: the Set Disjointness reduction behind the paper's
//! `Ω(k)` lower bound (Lemma 3.3).
//!
//! Alice's star and Bob's star are joined by one bridge edge; element `i`
//! belongs to both sets iff components force `a_i` and `b_i` to connect —
//! which can only happen across the bridge. Watching the bits that cross
//! the bridge while our (correct) algorithm runs shows the `Ω(k)`
//! information bottleneck concretely.
//!
//! ```text
//! cargo run --example lower_bound_gadget
//! ```

use steiner_forest::lower_bounds::{measure_ic_gadget, SetDisjointness};

fn main() {
    println!("universe | instance   | decoded    | correct | bits over bridge");
    println!("---------+------------+------------+---------+-----------------");
    for universe in [8usize, 16, 32, 64] {
        for intersect in [false, true] {
            let exp = measure_ic_gadget(universe, intersect, 5);
            println!(
                "{:>8} | {:<10} | {:<10} | {:<7} | {:>6}  ({:.1} bits/element)",
                universe,
                if intersect { "A∩B≠∅" } else { "disjoint" },
                if exp.decoded_disjoint {
                    "disjoint"
                } else {
                    "A∩B≠∅"
                },
                exp.correct(),
                exp.cut_bits,
                exp.cut_bits as f64 / universe as f64,
            );
        }
    }

    // The reduction itself, spelled out once.
    let sd = SetDisjointness::sample_hard(16, true, 1);
    println!(
        "\nexample instance: |A|={} |B|={} disjoint={}",
        sd.a.iter().filter(|&&x| x).count(),
        sd.b.iter().filter(|&&x| x).count(),
        sd.disjoint()
    );
    println!(
        "Lemma 3.3: any finite-approximation DSF-IC algorithm answers Set\n\
         Disjointness through this gadget, so it must move Ω(k) bits across\n\
         the single bridge edge — hence Ω(k/log n) rounds."
    );
}
