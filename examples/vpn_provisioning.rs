//! VPN provisioning: the classic motivation for Steiner forests — an ISP
//! must reserve capacity so that each customer's offices can reach each
//! other, paying per reserved link.
//!
//! Offices file *connection requests* (the DSF-CR form, Definition 2.1);
//! the network first converts them to input components with the Lemma 2.3
//! transformation (distributed, O(t + D) rounds), then provisions links
//! with the deterministic algorithm.
//!
//! ```text
//! cargo run --example vpn_provisioning
//! ```

use steiner_forest::core::transforms;
use steiner_forest::prelude::*;

fn main() {
    // A metro-area backbone: geometric graph, weights = link distances.
    let g = generators::random_geometric(40, 0.25, 7);
    let p = metrics::parameters(&g);
    println!(
        "backbone: n={} m={} D={} s={}",
        p.n, p.m, p.diameter, p.shortest_path_diameter
    );

    // Customer Alpha: offices 1, 7, 15 request pairwise reachability
    // (requests are asymmetric: each office only knows its own peers).
    // Customer Beta: offices 22 and 33.
    let mut requests = ConnectionRequests::new(g.n());
    requests.request(NodeId(1), NodeId(7));
    requests.request(NodeId(7), NodeId(15));
    requests.request(NodeId(22), NodeId(33));

    let congest = CongestConfig::for_graph(&g);
    let (inst, transform_ledger) =
        transforms::cr_to_ic(&g, &requests, &congest).expect("model respected");
    println!(
        "\nLemma 2.3 transformation: {} components from {} requests in {} rounds",
        inst.k(),
        3,
        transform_ledger.total()
    );

    let out = solve_deterministic(&g, &inst, &DetConfig::default()).expect("model respected");
    assert!(inst.is_feasible(&g, &out.forest));
    println!(
        "provisioned {} links, total reserved capacity {}",
        out.forest.len(),
        out.forest.weight(&g)
    );

    // Sanity: both customers are connected, and the two VPNs may share
    // links only if that is cheaper — the forest never merges them
    // unnecessarily.
    let comps = g.components_of(out.forest.edges());
    assert_eq!(comps[1], comps[7]);
    assert_eq!(comps[7], comps[15]);
    assert_eq!(comps[22], comps[33]);
    println!(
        "customer networks share infrastructure: {}",
        comps[1] == comps[22]
    );
    println!(
        "\ntotal rounds (transform + solve): {}",
        transform_ledger.total() + out.rounds.total()
    );
}
