//! Streaming multicast: regional subscriber groups must each be spanned by
//! a distribution tree, quickly — rounds matter more than a few percent of
//! link weight. This is the regime of the paper's *randomized* algorithm
//! (Theorem 5.2): `O(log n)`-approximate but only `Õ(k + min{s,√n} + D)`
//! rounds, versus the `Õ(sk)` of the Khan et al. baseline.
//!
//! ```text
//! cargo run --example multicast_regions
//! ```

use steiner_forest::baselines::khan::{solve_khan, KhanConfig};
use steiner_forest::prelude::*;
use steiner_forest::steiner::random_instance;

fn main() {
    // A continental overlay network.
    let g = generators::gnp_connected(48, 0.1, 16, 3);
    let p = metrics::parameters(&g);
    println!(
        "overlay: n={} m={} D={} s={} (√n ≈ {:.1})",
        p.n,
        p.m,
        p.diameter,
        p.shortest_path_diameter,
        (p.n as f64).sqrt()
    );

    // Six regional multicast groups of three subscribers each.
    let inst = random_instance(&g, 6, 3, 11);
    println!("groups: k={} terminals t={}", inst.k(), inst.t());

    let fast = solve_randomized(
        &g,
        &inst,
        &RandConfig {
            seed: 11,
            repetitions: 3,
            ..RandConfig::default()
        },
    )
    .expect("model respected");
    assert!(inst.is_feasible(&g, &fast.forest));

    let baseline = solve_khan(
        &g,
        &inst,
        &KhanConfig {
            seed: 11,
            repetitions: 3,
        },
    )
    .expect("model respected");
    assert!(inst.is_feasible(&g, &baseline.forest));

    // The careful deterministic algorithm for reference quality.
    let careful = solve_deterministic(&g, &inst, &DetConfig::default()).expect("model respected");

    println!("\n{:<28} {:>8} {:>8}", "algorithm", "rounds", "weight");
    println!(
        "{:<28} {:>8} {:>8}",
        "randomized (this paper)",
        fast.rounds.total(),
        fast.forest.weight(&g)
    );
    println!(
        "{:<28} {:>8} {:>8}",
        "Khan et al. [14] baseline",
        baseline.rounds.total(),
        baseline.forest.weight(&g)
    );
    println!(
        "{:<28} {:>8} {:>8}",
        "deterministic (2-approx)",
        careful.rounds.total(),
        careful.forest.weight(&g)
    );
    println!(
        "\nspeedup over [14]: {:.2}x in rounds",
        baseline.rounds.total() as f64 / fast.rounds.total() as f64
    );
}
