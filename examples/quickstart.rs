//! Quickstart: build a network, pose a Steiner forest instance, solve it
//! with the paper's deterministic distributed algorithm, and inspect the
//! round ledger.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use steiner_forest::prelude::*;

fn main() {
    // A random connected network of 30 nodes (the CONGEST graph is both
    // the communication topology and the problem instance).
    let g = generators::gnp_connected(30, 0.15, 20, 42);
    let p = metrics::parameters(&g);
    println!(
        "network: n={} m={} D={} WD={} s={}",
        p.n, p.m, p.diameter, p.weighted_diameter, p.shortest_path_diameter
    );

    // Two input components: each set of terminals must end up connected.
    let inst = InstanceBuilder::new(&g)
        .component(&[NodeId(0), NodeId(5), NodeId(9)])
        .component(&[NodeId(12), NodeId(20), NodeId(28)])
        .build()
        .expect("disjoint components");

    // The deterministic distributed algorithm (Theorem 4.17):
    // 2-approximate, O(ks + t) rounds, bit-for-bit emulating the
    // centralized moat-growing Algorithm 1.
    let out = solve_deterministic(&g, &inst, &DetConfig::default()).expect("model respected");
    assert!(inst.is_feasible(&g, &out.forest));

    println!(
        "\nsolution: {} edges, weight {}, {} merge phases",
        out.forest.len(),
        out.forest.weight(&g),
        out.phases
    );
    println!("\nround ledger (simulated vs charged):\n{}", out.rounds);

    // The randomized algorithm (Theorem 5.2): O(log n)-approximate,
    // Õ(k + min{s,√n} + D) rounds.
    let rand = solve_randomized(&g, &inst, &RandConfig::default()).expect("model respected");
    assert!(inst.is_feasible(&g, &rand.forest));
    println!(
        "\nrandomized: weight {} (tree opt {}), rounds {}, truncated: {}",
        rand.forest.weight(&g),
        rand.tree_opt_weight,
        rand.rounds.total(),
        rand.truncated
    );
}
