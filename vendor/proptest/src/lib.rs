//! Vendored, dependency-free stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this crate
//! implements the subset of the proptest surface the workspace's property
//! tests use: the [`proptest!`] macro with a `#![proptest_config(..)]`
//! attribute, range and tuple [`Strategy`]s, and the
//! `prop_assert!` / `prop_assert_eq!` / `prop_assume!` macros.
//!
//! Differences from upstream, by design:
//!
//! * cases are sampled from a deterministic per-test RNG (seeded from the
//!   test's name), so failures reproduce exactly on any platform;
//! * there is **no shrinking** — a failing case reports the sampled inputs
//!   via the assertion message instead of a minimized counterexample;
//! * rejected cases (`prop_assume!`) are resampled, with a hard cap to
//!   guarantee termination.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::ops::{Range, RangeInclusive};

pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, ProptestConfig,
        Strategy, TestCaseError,
    };
}

/// Per-block configuration; only the case count is honored.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Why a sampled case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` failed — resample, don't count the case.
    Reject,
    /// `prop_assert!`-style failure — abort the whole test.
    Fail(String),
}

/// A source of sampled values. Upstream proptest separates strategies from
/// value trees (for shrinking); without shrinking a strategy is just a
/// sampling function.
pub trait Strategy {
    type Value;

    fn sample(&self, rng: &mut StdRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),+ $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )+};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

macro_rules! impl_range_inclusive_strategy {
    ($($t:ty),+ $(,)?) => {$(
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )+};
}

impl_range_inclusive_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// `Just`-style constant strategy, occasionally handy in local tests.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// FNV-1a over the test name: a stable per-test seed.
fn seed_for(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Driver called by the expansion of [`proptest!`]; runs `config.cases`
/// accepted cases, resampling rejects up to a hard cap.
pub fn run_proptest<F>(config: &ProptestConfig, name: &str, mut case: F)
where
    F: FnMut(&mut StdRng) -> Result<(), TestCaseError>,
{
    let mut rng = StdRng::seed_from_u64(seed_for(name));
    let mut accepted = 0u32;
    let mut rejected = 0u64;
    let reject_cap = u64::from(config.cases) * 256 + 4096;
    while accepted < config.cases {
        match case(&mut rng) {
            Ok(()) => accepted += 1,
            Err(TestCaseError::Reject) => {
                rejected += 1;
                assert!(
                    rejected <= reject_cap,
                    "proptest '{name}': {rejected} rejects for {accepted} accepted cases — \
                     prop_assume! is filtering out nearly everything"
                );
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!("proptest '{name}' failed (case {accepted}): {msg}")
            }
        }
    }
}

#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            #[test]
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                $crate::run_proptest(&config, stringify!($name), |prop_rng| {
                    $(let $pat = $crate::Strategy::sample(&($strat), prop_rng);)+
                    let case = move || -> ::std::result::Result<(), $crate::TestCaseError> {
                        $body
                        Ok(())
                    };
                    case()
                });
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $($rest)*
        }
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "prop_assert!({}) failed at {}:{}",
                stringify!($cond),
                file!(),
                line!()
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "prop_assert_eq!({}, {}) failed: {:?} != {:?} at {}:{}",
                stringify!($left),
                stringify!($right),
                l,
                r,
                file!(),
                line!()
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "{}: {:?} != {:?} at {}:{}",
                format!($($fmt)+),
                l,
                r,
                file!(),
                line!()
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(l != r) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "prop_assert_ne!({}, {}) failed: both {:?} at {}:{}",
                stringify!($left),
                stringify!($right),
                l,
                file!(),
                line!()
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(l != r) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "{}: both {:?} at {}:{}",
                format!($($fmt)+),
                l,
                file!(),
                line!()
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_respected(a in 3u64..9, b in -2i64..=-1i64.wrapping_abs(), f in 0.0f64..1.0) {
            prop_assert!((3..9).contains(&a));
            prop_assert!((-2..2).contains(&b));
            prop_assert!((0.0..1.0).contains(&f));
        }

        #[test]
        fn tuples_and_assume((x, y) in (0u32..10, 0u32..10)) {
            prop_assume!(x != y);
            prop_assert_ne!(x, y);
            prop_assert_eq!(x + y, y + x);
        }
    }

    #[test]
    fn determinism() {
        let mut collected = Vec::new();
        for _ in 0..2 {
            let mut vals = Vec::new();
            run_proptest(&ProptestConfig::with_cases(8), "determinism", |rng| {
                vals.push((0u64..100).sample(rng));
                Ok(())
            });
            collected.push(vals);
        }
        assert_eq!(collected[0], collected[1]);
    }
}
