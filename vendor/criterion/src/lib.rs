//! Vendored, dependency-free stand-in for the `criterion` bench harness.
//!
//! The build environment has no access to crates.io, so this crate provides
//! the subset of the criterion API that `crates/bench/benches/algorithms.rs`
//! uses: [`Criterion::benchmark_group`], [`BenchmarkGroup::sample_size`],
//! `bench_function` / `bench_with_input`, [`BenchmarkId`], [`Bencher::iter`],
//! and the [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Instead of criterion's statistical analysis it reports min / mean / max
//! wall-clock per iteration over `sample_size` timed runs — enough to compare
//! workloads locally, with the exact upstream call-site API so the benches
//! can switch back to real criterion unchanged when the registry is
//! available.

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

const DEFAULT_SAMPLE_SIZE: usize = 10;

/// Re-export of [`std::hint::black_box`] under criterion's name.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Top-level bench context. Holds only formatting state; every group and
/// function reports through stdout.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            sample_size: DEFAULT_SAMPLE_SIZE,
        }
    }

    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, DEFAULT_SAMPLE_SIZE, f);
        self
    }
}

/// A named family of related benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_one(
            &format!("{}/{}", self.name, id.label()),
            self.sample_size,
            |b| f(b),
        );
        self
    }

    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        run_one(
            &format!("{}/{}", self.name, id.label()),
            self.sample_size,
            |b| f(b, input),
        );
        self
    }

    pub fn finish(self) {}
}

/// A benchmark identifier: function name plus an optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: String,
    parameter: Option<String>,
}

impl BenchmarkId {
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            function: function.into(),
            parameter: Some(parameter.to_string()),
        }
    }

    fn label(&self) -> String {
        match &self.parameter {
            Some(p) => format!("{}/{}", self.function, p),
            None => self.function.clone(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(function: &str) -> Self {
        BenchmarkId {
            function: function.to_string(),
            parameter: None,
        }
    }
}

/// Timer handle passed to each benchmark closure.
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: usize,
}

impl Bencher {
    pub fn iter<O, F>(&mut self, mut routine: F)
    where
        F: FnMut() -> O,
    {
        // One untimed warm-up run.
        hint::black_box(routine());
        let start = Instant::now();
        for _ in 0..self.iters_per_sample {
            hint::black_box(routine());
        }
        self.samples
            .push(start.elapsed() / self.iters_per_sample as u32);
    }
}

fn run_one<F>(label: &str, sample_size: usize, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut b = Bencher {
        samples: Vec::with_capacity(sample_size),
        iters_per_sample: 1,
    };
    for _ in 0..sample_size {
        f(&mut b);
    }
    if b.samples.is_empty() {
        println!("bench {label:<48} (no samples)");
        return;
    }
    let min = b.samples.iter().min().unwrap();
    let max = b.samples.iter().max().unwrap();
    let mean = b.samples.iter().sum::<Duration>() / b.samples.len() as u32;
    println!(
        "bench {label:<48} min {min:>12?}  mean {mean:>12?}  max {max:>12?}  ({} samples)",
        b.samples.len()
    );
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_all_samples() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("t");
        group.sample_size(3);
        let mut calls = 0;
        group.bench_with_input(BenchmarkId::new("f", 1), &7, |b, &x| {
            calls += 1;
            b.iter(|| x * 2)
        });
        group.finish();
        assert_eq!(calls, 3);
    }

    #[test]
    fn bench_function_on_criterion() {
        let mut c = Criterion::default();
        let mut n = 0u64;
        c.bench_function("inc", |b| b.iter(|| n += 1));
        assert!(n > 0);
    }
}
