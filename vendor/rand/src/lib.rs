//! Vendored, dependency-free stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! the small subset of the 0.8-era `rand` API that the reproduction uses:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and the [`Rng`] helpers
//! `gen_range`, `gen_bool`, and `gen::<f64>()`.
//!
//! Determinism is part of the workspace contract ("identical seeds produce
//! identical graphs on any platform"), so the generator is a fixed
//! xoshiro256++ seeded through SplitMix64 — stable across platforms and
//! toolchain versions, unlike the upstream `StdRng` which is explicitly
//! allowed to change between releases.

pub mod rngs;

use std::ops::{Range, RangeInclusive};

/// Core random source: everything is derived from `next_u64`.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seeding interface; only the `seed_from_u64` entry point is provided.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing helpers, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from a (half-open or inclusive) range.
    ///
    /// # Panics
    ///
    /// Panics on an empty range.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Bernoulli trial with success probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} out of [0, 1]");
        Standard::sample_from::<Self, f64>(self) < p
    }

    /// Sample a value of `T` from the standard distribution
    /// (`f64` is uniform in `[0, 1)`).
    fn gen<T>(&mut self) -> T
    where
        T: StandardSample,
        Self: Sized,
    {
        T::standard_sample(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Marker for `Rng::gen` target types (the `Standard` distribution).
pub trait StandardSample {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

/// Helper namespace mirroring `rand::distributions::Standard`.
pub struct Standard;

impl Standard {
    fn sample_from<R: RngCore + ?Sized, T: StandardSample>(rng: &mut R) -> T {
        T::standard_sample(rng)
    }
}

impl StandardSample for f64 {
    /// 53 mantissa bits of a `u64`, scaled into `[0, 1)`.
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for u64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl StandardSample for bool {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Range types accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform `u64` in `[0, span)` by widening multiply (unbiased enough for
/// test-scale spans, and — crucially — platform-deterministic).
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, span: u128) -> u128 {
    debug_assert!(span > 0);
    let x = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
    // Multiply-shift: floor(x * span / 2^128) without a u256 via split halves.
    let (xh, xl) = (x >> 64, x & u128::from(u64::MAX));
    let (sh, sl) = (span >> 64, span & u128::from(u64::MAX));
    let mid = xh * sl + xl * sh + ((xl * sl) >> 64);
    xh * sh + (mid >> 64)
}

macro_rules! impl_int_range {
    ($($t:ty => $wide:ty),+ $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as $wide).wrapping_sub(self.start as $wide) as u128;
                let off = uniform_below(rng, span) as $wide;
                (self.start as $wide).wrapping_add(off) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = (end as $wide).wrapping_sub(start as $wide) as u128 + 1;
                let off = uniform_below(rng, span) as $wide;
                (start as $wide).wrapping_add(off) as $t
            }
        }
    )+};
}

impl_int_range!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => u64, i16 => u64, i32 => u64, i64 => u64, isize => u64,
);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty f64 range");
        let u = f64::standard_sample(rng);
        self.start + u * (self.end - self.start)
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = r.gen_range(3usize..10);
            assert!((3..10).contains(&x));
            let y = r.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&y));
            let f = r.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let u = r.gen::<f64>();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = StdRng::seed_from_u64(2);
        assert!(!(0..100).any(|_| r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
    }

    #[test]
    fn small_ranges_hit_every_value() {
        let mut r = StdRng::seed_from_u64(3);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[r.gen_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
