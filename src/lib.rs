//! # steiner-forest
//!
//! Umbrella crate for the reproduction of **"Improved Distributed Steiner
//! Forest Construction"** (Lenzen & Patt-Shamir, PODC 2014) in the CONGEST
//! model.
//!
//! The implementation is split into focused crates, re-exported here:
//!
//! * [`graph`] — weighted graphs, shortest paths, graph parameters
//!   (`D`, `WD`, `s`), exact Steiner-tree oracle, generators.
//! * [`congest`] — the synchronous CONGEST simulator with per-edge
//!   bandwidth enforcement and round/message metrics.
//! * [`steiner`] — problem definitions (DSF-IC / DSF-CR), the centralized
//!   moat-growing algorithms (Algorithm 1 and Algorithm 2), exact solver,
//!   feasibility validation and pruning.
//! * [`embed`] — the probabilistic tree embedding of Khan et al. (LE lists,
//!   virtual tree), centralized and distributed.
//! * [`core`] — the paper's contribution: the deterministic distributed
//!   moat-growing algorithm (Theorem 4.17) and the randomized
//!   `O(log n)`-approximation (Theorem 5.2).
//! * [`baselines`] — Khan et al. `Õ(sk)` baseline and a collect-at-root
//!   baseline.
//! * [`lower_bounds`] — the Section 3 Set-Disjointness gadgets and cut
//!   communication experiments.
//! * [`workloads`] — the conformance lab: seeded instance corpus with
//!   per-instance certificates and the differential oracle harness every
//!   solver must pass.
//! * [`service`] — the batched solver service: pooled executor sessions
//!   (zero steady-state allocation) and a deterministic job queue whose
//!   batched results are bit-identical to one-at-a-time solves.
//! * [`server`] — the streaming front-end: a long-lived thread + channel
//!   reactor with bounded admission, backpressure, priorities, deadlines,
//!   cancellation, and per-job result streaming over the service's
//!   session pool.
//!
//! # Quickstart
//!
//! ```
//! use steiner_forest::prelude::*;
//!
//! // A random connected network with 30 nodes.
//! let g = generators::gnp_connected(30, 0.15, 20, 42);
//! // Two input components of three terminals each.
//! let inst = InstanceBuilder::new(&g)
//!     .component(&[NodeId(0), NodeId(5), NodeId(9)])
//!     .component(&[NodeId(12), NodeId(20), NodeId(28)])
//!     .build()
//!     .unwrap();
//! // The deterministic distributed algorithm (Theorem 4.17).
//! let out = solve_deterministic(&g, &inst, &DetConfig::default()).unwrap();
//! assert!(inst.is_feasible(&g, &out.forest));
//! println!("weight = {}, rounds = {}", out.forest.weight(&g), out.rounds.total());
//! ```

pub use dsf_baselines as baselines;
pub use dsf_congest as congest;
pub use dsf_core as core;
pub use dsf_embed as embed;
pub use dsf_graph as graph;
pub use dsf_lower_bounds as lower_bounds;
pub use dsf_server as server;
pub use dsf_service as service;
pub use dsf_steiner as steiner;
pub use dsf_workloads as workloads;

/// Convenience re-exports for examples and downstream users.
pub mod prelude {
    pub use dsf_congest::{CongestConfig, RoundLedger};
    pub use dsf_core::det::{solve_deterministic, DetConfig};
    pub use dsf_core::randomized::{solve_randomized, RandConfig};
    pub use dsf_graph::generators;
    pub use dsf_graph::metrics;
    pub use dsf_graph::{EdgeId, GraphBuilder, NodeId, Weight, WeightedGraph};
    pub use dsf_server::{
        AdmissionPolicy, JobHandle, JobOptions, JobResult, JobStatus, ServerConfig, ServerError,
        StreamingServer,
    };
    pub use dsf_service::{
        ServiceConfig, ServiceReport, SolveRequest, SolverKind, SolverService, SolverSession,
    };
    pub use dsf_steiner::{
        ComponentId, ConnectionRequests, ForestSolution, Instance, InstanceBuilder,
    };
}
