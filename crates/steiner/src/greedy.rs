//! Gluttonous greedy Steiner forest (Gupta–Kumar, *Greedy Algorithms for
//! Steiner Forest*, arXiv:1412.7693).
//!
//! The algorithm repeatedly connects the pair of partial trees whose
//! connection cost **per unit of satisfied demand** is lowest: distances
//! are measured in the graph with the already-selected edge set
//! *contracted* (selected edges cost 0, so growing an existing tree is
//! free), and a merge of trees `A` and `B` satisfies one unit of demand
//! per input component with terminals on both sides. This is the
//! sequential "beat the 2+ε line" reference the conformance lab measures
//! the paper's solvers against — Gupta–Kumar prove a constant
//! approximation factor for exactly this rule.
//!
//! Everything is deterministic: candidate trees are scanned in ascending
//! root-node order, distances use the workspace-wide `(dist, hops,
//! parent-id)` tie-breaking of [`dsf_graph::dijkstra`], and score ties
//! fall back to `(cost, source id, target id)`.

use dsf_graph::union_find::UnionFind;
use dsf_graph::{dijkstra, EdgeId, NodeId, Weight, WeightedGraph, INF};

use crate::instance::Instance;
use crate::solution::ForestSolution;

/// One candidate merge, ordered by greedy score then deterministically.
struct Candidate {
    /// Contracted connection cost between the two trees.
    cost: Weight,
    /// Input components with terminals on both sides (demand units).
    units: u64,
    /// Source terminal (smallest id in its tree).
    source: NodeId,
    /// Target terminal (smallest id achieving `cost` in the other tree).
    target: NodeId,
}

impl Candidate {
    /// `self` scores strictly better than `other`: smaller
    /// `cost / units`, ties broken by `(cost, source, target)`.
    fn beats(&self, other: &Candidate) -> bool {
        let lhs = u128::from(self.cost) * u128::from(other.units);
        let rhs = u128::from(other.cost) * u128::from(self.units);
        lhs < rhs
            || (lhs == rhs
                && (self.cost, self.source, self.target) < (other.cost, other.source, other.target))
    }
}

/// Solves `inst` on `g` with the gluttonous greedy rule and returns the
/// pruned minimal forest.
///
/// Deterministic: no randomness, no dependence on iteration order beyond
/// the documented tie-breaking.
///
/// # Example
///
/// ```
/// use dsf_graph::{generators, NodeId};
/// use dsf_steiner::{greedy, InstanceBuilder};
///
/// let g = generators::gnp_connected(20, 0.2, 10, 1);
/// let inst = InstanceBuilder::new(&g)
///     .component(&[NodeId(0), NodeId(7)])
///     .component(&[NodeId(3), NodeId(12), NodeId(19)])
///     .build()
///     .unwrap();
/// let f = greedy::solve_greedy(&g, &inst);
/// assert!(inst.is_feasible(&g, &f));
/// assert!(f.is_forest(&g));
/// ```
pub fn solve_greedy(g: &WeightedGraph, inst: &Instance) -> ForestSolution {
    let inst = inst.make_minimal();
    let mut selected = vec![false; g.m()];
    let mut uf = UnionFind::new(g.n());
    // Upper bound on merges: each merge joins two trees holding terminals,
    // and there are at most t terminal-holding trees initially.
    let max_merges = inst.t().max(1);
    for _ in 0..max_merges {
        let Some(best) = best_candidate(g, &inst, &selected, &mut uf) else {
            break; // every input component is connected
        };
        // Realize the connection along the contracted shortest path.
        let sp = dijkstra::multi_source_with(g, &[best.source], |e| {
            if selected[e.idx()] {
                0
            } else {
                g.weight(e)
            }
        });
        for e in sp.path_edges(best.target) {
            selected[e.idx()] = true;
            let ed = g.edge(e);
            uf.union(ed.u.idx(), ed.v.idx());
        }
    }
    debug_assert!(unsatisfied(&inst, &mut uf).is_empty(), "greedy stalled");
    let picked: ForestSolution = (0..g.m() as u32)
        .map(EdgeId)
        .filter(|e| selected[e.idx()])
        .collect();
    // Contracted shortest paths never close a cycle (unselected edges have
    // positive weight, so re-entering a tree is strictly worse than
    // staying inside it), but restore the invariants defensively and drop
    // anything a later, cheaper connection made redundant.
    picked
        .lightest_spanning_forest(g)
        .prune_to_minimal(g, &inst)
}

/// Input components whose terminals span more than one tree.
fn unsatisfied(inst: &Instance, uf: &mut UnionFind) -> Vec<usize> {
    (0..inst.k())
        .filter(|&c| {
            let terms = &inst.components()[c];
            terms
                .iter()
                .any(|t| uf.find(t.idx()) != uf.find(terms[0].idx()))
        })
        .collect()
}

/// The best merge under the gluttonous rule, or `None` when feasible.
///
/// One contracted Dijkstra per active tree: with selected edges at weight
/// 0, every node of a tree sits at the same distance from any other tree,
/// so the smallest-id terminal of each tree stands in for the whole tree.
fn best_candidate(
    g: &WeightedGraph,
    inst: &Instance,
    selected: &[bool],
    uf: &mut UnionFind,
) -> Option<Candidate> {
    let open = unsatisfied(inst, uf);
    if open.is_empty() {
        return None;
    }
    // Trees that hold a terminal of an unsatisfied component, keyed by
    // union-find root: (representative terminal, set of open components).
    let mut trees: Vec<(usize, NodeId, Vec<usize>)> = Vec::new();
    for &c in &open {
        for &t in &inst.components()[c] {
            let root = uf.find(t.idx());
            match trees.iter_mut().find(|(r, _, _)| *r == root) {
                Some((_, rep, comps)) => {
                    if t < *rep {
                        *rep = t;
                    }
                    if !comps.contains(&c) {
                        comps.push(c);
                    }
                }
                None => trees.push((root, t, vec![c])),
            }
        }
    }
    trees.sort_by_key(|&(_, rep, _)| rep);

    let mut best: Option<Candidate> = None;
    for (i, &(_, source, ref comps)) in trees.iter().enumerate() {
        let sp = dijkstra::multi_source_with(g, &[source], |e| {
            if selected[e.idx()] {
                0
            } else {
                g.weight(e)
            }
        });
        for &(_, target, ref other) in &trees[i + 1..] {
            let units = comps.iter().filter(|c| other.contains(c)).count() as u64;
            if units == 0 || sp.dist[target.idx()] >= INF {
                continue;
            }
            let cand = Candidate {
                cost: sp.dist[target.idx()],
                units,
                source,
                target,
            };
            if best.as_ref().is_none_or(|b| cand.beats(b)) {
                best = Some(cand);
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::InstanceBuilder;
    use dsf_graph::generators;

    #[test]
    fn connects_a_single_pair_along_the_shortest_path() {
        let g = generators::path(5, 3);
        let inst = InstanceBuilder::new(&g)
            .component(&[NodeId(0), NodeId(4)])
            .build()
            .unwrap();
        let f = solve_greedy(&g, &inst);
        assert_eq!(f.len(), 4);
        assert_eq!(f.weight(&g), 12);
    }

    #[test]
    fn reuses_contracted_edges_across_components() {
        // Star: center 0, leaves 1..=4, unit spokes. Components {1,2} and
        // {3,4}: greedy pays each spoke once, never double-counts.
        let g = generators::star(5, 1, 0);
        let inst = InstanceBuilder::new(&g)
            .component(&[NodeId(1), NodeId(2)])
            .component(&[NodeId(3), NodeId(4)])
            .build()
            .unwrap();
        let f = solve_greedy(&g, &inst);
        assert!(inst.is_feasible(&g, &f));
        assert_eq!(f.weight(&g), 4);
    }

    #[test]
    fn is_feasible_and_acyclic_on_random_instances() {
        for seed in 0..6 {
            let g = generators::gnp_connected(26, 0.2, 11, seed);
            let inst = crate::random_instance(&g, 4, 3, seed);
            let f = solve_greedy(&g, &inst);
            assert!(inst.is_feasible(&g, &f), "seed {seed}");
            assert!(f.is_forest(&g), "seed {seed}");
            // Deterministic.
            assert_eq!(f, solve_greedy(&g, &inst), "seed {seed}");
        }
    }

    #[test]
    fn matches_the_exact_optimum_on_small_instances() {
        // Greedy has no guarantee to hit OPT, but stays within its
        // constant factor; on tiny instances it is usually exact — pin a
        // loose 2x envelope against the exact solver.
        for seed in 0..4 {
            let g = generators::gnp_connected(14, 0.3, 8, seed);
            let inst = crate::random_instance(&g, 2, 2, seed);
            let f = solve_greedy(&g, &inst);
            let opt = crate::exact::solve(&g, &inst).weight;
            assert!(
                f.weight(&g) <= 2 * opt,
                "seed {seed}: greedy {} vs opt {opt}",
                f.weight(&g)
            );
        }
    }

    #[test]
    fn empty_instance_yields_empty_forest() {
        let g = generators::path(4, 1);
        let inst = InstanceBuilder::new(&g).build().unwrap();
        assert!(solve_greedy(&g, &inst).is_empty());
    }

    #[test]
    fn singleton_components_are_ignored() {
        let g = generators::path(5, 2);
        let inst = InstanceBuilder::new(&g)
            .component(&[NodeId(0)])
            .component(&[NodeId(1), NodeId(3)])
            .build()
            .unwrap();
        let f = solve_greedy(&g, &inst);
        assert_eq!(f.weight(&g), 4); // just the 1..3 path
        assert!(inst.make_minimal().is_feasible(&g, &f));
    }
}
