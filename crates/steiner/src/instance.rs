//! The two input encodings of the distributed Steiner forest problem.
//!
//! * **DSF-IC** (Definition 2.2): every node `v` holds a label
//!   `λ(v) ∈ Λ ∪ {⊥}`; terminals sharing a label form an *input component*
//!   that the output forest must connect. Modeled by [`Instance`].
//! * **DSF-CR** (Definition 2.1): every node holds a set of *connection
//!   requests* `R_v ⊆ V`; `v` must be connected to each `w ∈ R_v`. Modeled
//!   by [`ConnectionRequests`].
//!
//! Lemma 2.3 converts CR to IC (distributed version in `dsf-core`;
//! [`ConnectionRequests::to_components`] is the centralized reference).
//! Lemma 2.4 drops singleton components ([`Instance::make_minimal`]).

use std::collections::HashMap;
use std::fmt;

use dsf_graph::{NodeId, WeightedGraph};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::solution::ForestSolution;

/// Identifier of an input component (`λ ∈ Λ`); encoded in `O(log n)` bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ComponentId(pub u32);

impl ComponentId {
    /// Index into per-component arrays.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ComponentId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "λ{}", self.0)
    }
}

/// Errors raised while building an [`Instance`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InstanceError {
    /// A node was assigned to two components.
    Relabeled(NodeId),
    /// A node id exceeded the graph size.
    NodeOutOfRange(NodeId),
    /// A component was empty.
    EmptyComponent,
}

impl fmt::Display for InstanceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InstanceError::Relabeled(v) => write!(f, "{v} assigned to two components"),
            InstanceError::NodeOutOfRange(v) => write!(f, "{v} out of range"),
            InstanceError::EmptyComponent => write!(f, "empty component"),
        }
    }
}

impl std::error::Error for InstanceError {}

/// A DSF-IC instance: a disjoint family of terminal sets over `0..n`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Instance {
    n: usize,
    /// `label[v] = Some(λ)` iff `v` is a terminal of component `λ`.
    label: Vec<Option<ComponentId>>,
    /// `components[λ]` lists the terminals with label `λ`, sorted.
    components: Vec<Vec<NodeId>>,
}

/// Builds an [`Instance`] component by component.
#[derive(Debug, Clone)]
pub struct InstanceBuilder {
    n: usize,
    label: Vec<Option<ComponentId>>,
    components: Vec<Vec<NodeId>>,
    error: Option<InstanceError>,
}

impl InstanceBuilder {
    /// Starts building an instance over the nodes of `g`.
    pub fn new(g: &WeightedGraph) -> Self {
        InstanceBuilder {
            n: g.n(),
            label: vec![None; g.n()],
            components: Vec::new(),
            error: None,
        }
    }

    /// Adds one input component consisting of `terminals`.
    ///
    /// Errors are deferred to [`InstanceBuilder::build`].
    pub fn component(mut self, terminals: &[NodeId]) -> Self {
        if self.error.is_some() {
            return self;
        }
        if terminals.is_empty() {
            self.error = Some(InstanceError::EmptyComponent);
            return self;
        }
        let id = ComponentId(self.components.len() as u32);
        let mut sorted: Vec<NodeId> = terminals.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        for &t in &sorted {
            if t.idx() >= self.n {
                self.error = Some(InstanceError::NodeOutOfRange(t));
                return self;
            }
            if self.label[t.idx()].is_some() {
                self.error = Some(InstanceError::Relabeled(t));
                return self;
            }
            self.label[t.idx()] = Some(id);
        }
        self.components.push(sorted);
        self
    }

    /// Finishes the instance.
    ///
    /// # Errors
    ///
    /// Returns the first deferred construction error, if any.
    pub fn build(self) -> Result<Instance, InstanceError> {
        if let Some(e) = self.error {
            return Err(e);
        }
        Ok(Instance {
            n: self.n,
            label: self.label,
            components: self.components,
        })
    }
}

impl Instance {
    /// Number of nodes of the underlying graph.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of input components `k`.
    pub fn k(&self) -> usize {
        self.components.len()
    }

    /// Number of terminals `t`.
    pub fn t(&self) -> usize {
        self.components.iter().map(Vec::len).sum()
    }

    /// The label of node `v` (`None` for non-terminals).
    pub fn label(&self, v: NodeId) -> Option<ComponentId> {
        self.label[v.idx()]
    }

    /// All terminals, sorted by node id.
    pub fn terminals(&self) -> Vec<NodeId> {
        let mut ts: Vec<NodeId> = self
            .label
            .iter()
            .enumerate()
            .filter_map(|(v, l)| l.map(|_| NodeId::from(v)))
            .collect();
        ts.sort_unstable();
        ts
    }

    /// The terminal lists, indexed by [`ComponentId`].
    pub fn components(&self) -> &[Vec<NodeId>] {
        &self.components
    }

    /// Terminals of one component.
    pub fn component(&self, c: ComponentId) -> &[NodeId] {
        &self.components[c.idx()]
    }

    /// An instance is *minimal* if every component has ≥ 2 terminals
    /// (Definition 2.2).
    pub fn is_minimal(&self) -> bool {
        self.components.iter().all(|c| c.len() >= 2)
    }

    /// Drops singleton components (Lemma 2.4, centralized reference).
    pub fn make_minimal(&self) -> Instance {
        let mut label = vec![None; self.n];
        let mut components = Vec::new();
        for comp in &self.components {
            if comp.len() >= 2 {
                let id = ComponentId(components.len() as u32);
                for &t in comp {
                    label[t.idx()] = Some(id);
                }
                components.push(comp.clone());
            }
        }
        Instance {
            n: self.n,
            label,
            components,
        }
    }

    /// Whether `F` connects every input component (Definition 2.2's output
    /// condition).
    pub fn is_feasible(&self, g: &WeightedGraph, f: &ForestSolution) -> bool {
        let comps = g.components_of(f.edges());
        self.components.iter().all(|terms| {
            terms
                .windows(2)
                .all(|w| comps[w[0].idx()] == comps[w[1].idx()])
        })
    }
}

/// A DSF-CR instance: per-node connection request sets `R_v`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ConnectionRequests {
    /// `requests[v]` is `R_v`, sorted.
    requests: Vec<Vec<NodeId>>,
}

impl ConnectionRequests {
    /// Creates empty request sets for an `n`-node graph.
    pub fn new(n: usize) -> Self {
        ConnectionRequests {
            requests: vec![Vec::new(); n],
        }
    }

    /// Adds the request "connect `v` to `w`" (stored at `v`, matching the
    /// asymmetric input convention of Definition 2.1).
    pub fn request(&mut self, v: NodeId, w: NodeId) {
        assert!(v != w, "self-request");
        if !self.requests[v.idx()].contains(&w) {
            self.requests[v.idx()].push(w);
            self.requests[v.idx()].sort_unstable();
        }
    }

    /// The request set `R_v`.
    pub fn of(&self, v: NodeId) -> &[NodeId] {
        &self.requests[v.idx()]
    }

    /// Number of nodes.
    pub fn n(&self) -> usize {
        self.requests.len()
    }

    /// The terminal set `T` (Definition 2.1): requesters and requestees.
    pub fn terminals(&self) -> Vec<NodeId> {
        let mut ts = Vec::new();
        for (v, r) in self.requests.iter().enumerate() {
            if !r.is_empty() {
                ts.push(NodeId::from(v));
            }
            ts.extend_from_slice(r);
        }
        ts.sort_unstable();
        ts.dedup();
        ts
    }

    /// Centralized reference of Lemma 2.3: the transitive closure of the
    /// request relation partitions the terminals into equivalent input
    /// components.
    pub fn to_components(&self, g: &WeightedGraph) -> Instance {
        let mut uf = dsf_graph::union_find::UnionFind::new(g.n());
        for (v, reqs) in self.requests.iter().enumerate() {
            for w in reqs {
                uf.union(v, w.idx());
            }
        }
        let terminals = self.terminals();
        let mut groups: HashMap<usize, Vec<NodeId>> = HashMap::new();
        for &t in &terminals {
            groups.entry(uf.find(t.idx())).or_default().push(t);
        }
        let mut keys: Vec<usize> = groups.keys().copied().collect();
        keys.sort_unstable();
        let mut b = InstanceBuilder::new(g);
        for key in keys {
            b = b.component(&groups[&key]);
        }
        b.build().expect("groups are disjoint by construction")
    }
}

/// Samples a random DSF-IC instance: `k` disjoint components of
/// `comp_size` terminals each, drawn uniformly from the nodes of `g`.
///
/// # Panics
///
/// Panics if `k * comp_size > g.n()`.
pub fn random_instance(g: &WeightedGraph, k: usize, comp_size: usize, seed: u64) -> Instance {
    assert!(
        k * comp_size <= g.n(),
        "cannot place {k} disjoint components of size {comp_size} in {} nodes",
        g.n()
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let mut ids: Vec<usize> = (0..g.n()).collect();
    for i in 0..(k * comp_size) {
        let j = rng.gen_range(i..ids.len());
        ids.swap(i, j);
    }
    let mut b = InstanceBuilder::new(g);
    for c in 0..k {
        let terms: Vec<NodeId> = ids[c * comp_size..(c + 1) * comp_size]
            .iter()
            .map(|&i| NodeId::from(i))
            .collect();
        b = b.component(&terms);
    }
    b.build().expect("sampled components are disjoint")
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsf_graph::generators;

    fn g10() -> WeightedGraph {
        generators::gnp_connected(10, 0.4, 6, 3)
    }

    #[test]
    fn builder_and_accessors() {
        let g = g10();
        let inst = InstanceBuilder::new(&g)
            .component(&[NodeId(1), NodeId(4)])
            .component(&[NodeId(2), NodeId(7), NodeId(9)])
            .build()
            .unwrap();
        assert_eq!(inst.k(), 2);
        assert_eq!(inst.t(), 5);
        assert_eq!(inst.label(NodeId(7)), Some(ComponentId(1)));
        assert_eq!(inst.label(NodeId(0)), None);
        assert_eq!(
            inst.terminals(),
            vec![NodeId(1), NodeId(2), NodeId(4), NodeId(7), NodeId(9)]
        );
        assert!(inst.is_minimal());
    }

    #[test]
    fn builder_rejects_overlap() {
        let g = g10();
        let err = InstanceBuilder::new(&g)
            .component(&[NodeId(1), NodeId(4)])
            .component(&[NodeId(4), NodeId(5)])
            .build()
            .unwrap_err();
        assert_eq!(err, InstanceError::Relabeled(NodeId(4)));
    }

    #[test]
    fn builder_rejects_out_of_range_and_empty() {
        let g = g10();
        assert_eq!(
            InstanceBuilder::new(&g)
                .component(&[NodeId(99)])
                .build()
                .unwrap_err(),
            InstanceError::NodeOutOfRange(NodeId(99))
        );
        assert_eq!(
            InstanceBuilder::new(&g).component(&[]).build().unwrap_err(),
            InstanceError::EmptyComponent
        );
    }

    #[test]
    fn minimality() {
        let g = g10();
        let inst = InstanceBuilder::new(&g)
            .component(&[NodeId(0)])
            .component(&[NodeId(1), NodeId(2)])
            .build()
            .unwrap();
        assert!(!inst.is_minimal());
        let min = inst.make_minimal();
        assert!(min.is_minimal());
        assert_eq!(min.k(), 1);
        assert_eq!(min.label(NodeId(0)), None);
        assert_eq!(min.label(NodeId(1)), Some(ComponentId(0)));
    }

    #[test]
    fn feasibility_checks_component_connectivity() {
        let g = generators::path(4, 1); // edges: 0-1 (e0), 1-2 (e1), 2-3 (e2)
        let inst = InstanceBuilder::new(&g)
            .component(&[NodeId(0), NodeId(2)])
            .build()
            .unwrap();
        use dsf_graph::EdgeId;
        let partial = ForestSolution::from_edges(vec![EdgeId(0)]);
        assert!(!inst.is_feasible(&g, &partial));
        let full = ForestSolution::from_edges(vec![EdgeId(0), EdgeId(1)]);
        assert!(inst.is_feasible(&g, &full));
    }

    #[test]
    fn requests_to_components_transitive() {
        let g = g10();
        let mut cr = ConnectionRequests::new(g.n());
        cr.request(NodeId(0), NodeId(1));
        cr.request(NodeId(1), NodeId(2));
        cr.request(NodeId(5), NodeId(6));
        let inst = cr.to_components(&g);
        assert_eq!(inst.k(), 2);
        // 0,1,2 merged transitively.
        assert_eq!(inst.label(NodeId(0)), inst.label(NodeId(2)));
        assert_ne!(inst.label(NodeId(0)), inst.label(NodeId(5)));
        assert_eq!(
            cr.terminals(),
            vec![NodeId(0), NodeId(1), NodeId(2), NodeId(5), NodeId(6)]
        );
    }

    #[test]
    fn random_instance_is_disjoint() {
        let g = generators::gnp_connected(30, 0.2, 9, 5);
        let inst = random_instance(&g, 4, 3, 7);
        assert_eq!(inst.k(), 4);
        assert_eq!(inst.t(), 12);
        assert!(inst.is_minimal());
        // Determinism.
        assert_eq!(inst, random_instance(&g, 4, 3, 7));
    }
}
