//! Solutions are edge sets; this module adds validation and the
//! minimal-subforest pruning both algorithms end with ("return minimal
//! feasible subset of `F`", Algorithm 1 line 34).

use std::collections::HashMap;

use dsf_graph::{EdgeId, NodeId, Weight, WeightedGraph};

use crate::instance::Instance;

/// An edge-set solution, kept sorted and deduplicated.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ForestSolution {
    edges: Vec<EdgeId>,
}

impl ForestSolution {
    /// Wraps an edge set (sorts and deduplicates).
    pub fn from_edges(mut edges: Vec<EdgeId>) -> Self {
        edges.sort_unstable();
        edges.dedup();
        ForestSolution { edges }
    }

    /// The empty solution.
    pub fn empty() -> Self {
        Self::default()
    }

    /// The selected edges, sorted by id.
    pub fn edges(&self) -> &[EdgeId] {
        &self.edges
    }

    /// Number of selected edges.
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// Whether no edge is selected.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Whether `e` is selected.
    pub fn contains(&self, e: EdgeId) -> bool {
        self.edges.binary_search(&e).is_ok()
    }

    /// Total weight `W(F)`.
    pub fn weight(&self, g: &WeightedGraph) -> Weight {
        g.total_weight(self.edges.iter())
    }

    /// Whether the edge set is acyclic (a forest).
    pub fn is_forest(&self, g: &WeightedGraph) -> bool {
        let mut uf = dsf_graph::union_find::UnionFind::new(g.n());
        self.edges.iter().all(|&e| {
            let ed = g.edge(e);
            uf.union(ed.u.idx(), ed.v.idx())
        })
    }

    /// Union of two solutions.
    pub fn union(&self, other: &ForestSolution) -> ForestSolution {
        let mut edges = self.edges.clone();
        edges.extend_from_slice(&other.edges);
        ForestSolution::from_edges(edges)
    }

    /// The lightest spanning forest of this edge set: same connected
    /// components (hence feasibility is preserved), cycles broken by
    /// dropping the heaviest edges ([`dsf_graph::mst::kruskal_on`]'s
    /// deterministic order). Identity on forests.
    ///
    /// Solvers that union overlapping trees (the randomized second stage,
    /// the Khan baseline's per-component selection) use this to restore
    /// the forest invariant before returning.
    pub fn lightest_spanning_forest(&self, g: &WeightedGraph) -> ForestSolution {
        ForestSolution::from_edges(dsf_graph::mst::kruskal_on(g, &self.edges).edges)
    }

    /// The minimal subset of this (feasible, forest) solution that still
    /// solves `inst`: an edge is kept iff its removal would disconnect two
    /// terminals of the same component *within its tree*.
    ///
    /// This is the final pruning step of both Algorithm 1 and the
    /// distributed algorithms. Runs in `O(|F| · avg-labels)` via bottom-up
    /// label counting with small-to-large map merging.
    pub fn prune_to_minimal(&self, g: &WeightedGraph, inst: &Instance) -> ForestSolution {
        // Adjacency restricted to F.
        let mut adj: Vec<Vec<(NodeId, EdgeId)>> = vec![Vec::new(); g.n()];
        for &e in &self.edges {
            let ed = g.edge(e);
            adj[ed.u.idx()].push((ed.v, e));
            adj[ed.v.idx()].push((ed.u, e));
        }
        // Per-tree totals: count of each label inside the tree.
        let comps = g.components_of(&self.edges);
        let mut tree_totals: HashMap<NodeId, HashMap<u32, u32>> = HashMap::new();
        for v in g.nodes() {
            if let Some(l) = inst.label(v) {
                *tree_totals
                    .entry(comps[v.idx()])
                    .or_default()
                    .entry(l.0)
                    .or_insert(0) += 1;
            }
        }

        let mut kept: Vec<EdgeId> = Vec::new();
        let mut visited = vec![false; g.n()];
        // Iterative post-order DFS per tree, merging label-count maps upward.
        for root in g.nodes() {
            if visited[root.idx()] || adj[root.idx()].is_empty() {
                continue;
            }
            let totals = match tree_totals.get(&comps[root.idx()]) {
                Some(t) => t,
                None => continue, // tree without terminals: nothing kept
            };
            let mut counts: Vec<HashMap<u32, u32>> = vec![HashMap::new(); g.n()];
            // Stack entries: (node, parent + incoming edge, expanded?).
            type DfsFrame = (NodeId, Option<(NodeId, EdgeId)>, bool);
            let mut stack: Vec<DfsFrame> = vec![(root, None, false)];
            while let Some((v, par, expanded)) = stack.pop() {
                if expanded {
                    // All children merged into counts[v]; add own label.
                    if let Some(l) = inst.label(v) {
                        *counts[v.idx()].entry(l.0).or_insert(0) += 1;
                    }
                    if let Some((p, e)) = par {
                        // Edge needed iff some label is split by it.
                        let needed = counts[v.idx()].iter().any(|(l, &c)| c > 0 && c < totals[l]);
                        if needed {
                            kept.push(e);
                        }
                        // Small-to-large merge into the parent.
                        let child_map = std::mem::take(&mut counts[v.idx()]);
                        let parent_map = &mut counts[p.idx()];
                        if parent_map.len() < child_map.len() {
                            let old = std::mem::replace(parent_map, child_map);
                            for (l, c) in old {
                                *parent_map.entry(l).or_insert(0) += c;
                            }
                        } else {
                            for (l, c) in child_map {
                                *parent_map.entry(l).or_insert(0) += c;
                            }
                        }
                    }
                } else {
                    visited[v.idx()] = true;
                    stack.push((v, par, true));
                    for &(u, e) in &adj[v.idx()] {
                        if par.is_none_or(|(p, _)| p != u) && !visited[u.idx()] {
                            stack.push((u, Some((v, e)), false));
                        }
                    }
                }
            }
        }
        ForestSolution::from_edges(kept)
    }
}

impl FromIterator<EdgeId> for ForestSolution {
    fn from_iter<I: IntoIterator<Item = EdgeId>>(iter: I) -> Self {
        ForestSolution::from_edges(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::InstanceBuilder;
    use dsf_graph::generators;

    #[test]
    fn weight_and_membership() {
        let g = generators::path(4, 3);
        let f = ForestSolution::from_edges(vec![EdgeId(2), EdgeId(0), EdgeId(2)]);
        assert_eq!(f.len(), 2);
        assert_eq!(f.weight(&g), 6);
        assert!(f.contains(EdgeId(0)));
        assert!(!f.contains(EdgeId(1)));
        assert!(f.is_forest(&g));
    }

    #[test]
    fn detects_cycles() {
        let g = generators::ring(4, 5, 1);
        let all: ForestSolution = (0..4).map(EdgeId).collect();
        assert!(!all.is_forest(&g));
        let tree: ForestSolution = (0..3).map(EdgeId).collect();
        assert!(tree.is_forest(&g));
    }

    #[test]
    fn prune_drops_dangling_branches() {
        // Path 0-1-2-3-4; component {1, 3}. Edges e0 and e3 are useless.
        let g = generators::path(5, 1);
        let inst = InstanceBuilder::new(&g)
            .component(&[NodeId(1), NodeId(3)])
            .build()
            .unwrap();
        let full: ForestSolution = (0..4).map(EdgeId).collect();
        let pruned = full.prune_to_minimal(&g, &inst);
        assert_eq!(pruned.edges(), &[EdgeId(1), EdgeId(2)]);
        assert!(inst.is_feasible(&g, &pruned));
    }

    #[test]
    fn prune_keeps_shared_trunk_of_two_components() {
        // Star: center 0 with leaves 1..=4; components {1,2} and {3,4}.
        let g = generators::star(5, 1, 0);
        let inst = InstanceBuilder::new(&g)
            .component(&[NodeId(1), NodeId(2)])
            .component(&[NodeId(3), NodeId(4)])
            .build()
            .unwrap();
        let full: ForestSolution = (0..4).map(EdgeId).collect();
        let pruned = full.prune_to_minimal(&g, &inst);
        // Everything is needed: each leaf edge separates a terminal.
        assert_eq!(pruned.len(), 4);
    }

    #[test]
    fn prune_handles_multiple_trees() {
        // Two disjoint paths inside one graph: 0-1-2 and 3-4-5 joined by a
        // bridge we do not select. Components {0,2} and {3,5}.
        let g = generators::path(6, 1);
        let inst = InstanceBuilder::new(&g)
            .component(&[NodeId(0), NodeId(2)])
            .component(&[NodeId(3), NodeId(5)])
            .build()
            .unwrap();
        // Select everything except the bridge e2 = {2,3}.
        let f: ForestSolution = vec![EdgeId(0), EdgeId(1), EdgeId(3), EdgeId(4)]
            .into_iter()
            .collect();
        let pruned = f.prune_to_minimal(&g, &inst);
        assert_eq!(pruned.len(), 4);
        assert!(inst.is_feasible(&g, &pruned));
    }

    #[test]
    fn union_merges_and_deduplicates() {
        let a = ForestSolution::from_edges(vec![EdgeId(0), EdgeId(2)]);
        let b = ForestSolution::from_edges(vec![EdgeId(2), EdgeId(3)]);
        let u = a.union(&b);
        assert_eq!(u.edges(), &[EdgeId(0), EdgeId(2), EdgeId(3)]);
    }

    #[test]
    fn prune_is_idempotent() {
        let g = generators::path(6, 1);
        let inst = InstanceBuilder::new(&g)
            .component(&[NodeId(1), NodeId(4)])
            .build()
            .unwrap();
        let full: ForestSolution = (0..5).map(EdgeId).collect();
        let once = full.prune_to_minimal(&g, &inst);
        let twice = once.prune_to_minimal(&g, &inst);
        assert_eq!(once, twice);
    }

    #[test]
    fn prune_empty_instance_clears_everything() {
        let g = generators::path(4, 1);
        let inst = InstanceBuilder::new(&g).build().unwrap();
        let full: ForestSolution = (0..3).map(EdgeId).collect();
        assert!(full.prune_to_minimal(&g, &inst).is_empty());
    }

    #[test]
    fn lsf_is_identity_on_forests_and_empty_input() {
        let g = generators::gnp_connected(12, 0.3, 9, 3);
        assert!(ForestSolution::empty()
            .lightest_spanning_forest(&g)
            .is_empty());
        // A spanning tree of the graph survives unchanged.
        let tree = ForestSolution::from_edges(dsf_graph::mst::kruskal(&g).edges);
        assert_eq!(tree.lightest_spanning_forest(&g), tree);
    }

    #[test]
    fn lsf_breaks_cycles_by_dropping_the_heaviest_edge() {
        // Ring 0-1-2-3-0 with one heavy edge: the cycle loses exactly it.
        let mut b = dsf_graph::GraphBuilder::new(4);
        b.add_edge(NodeId(0), NodeId(1), 1).unwrap();
        b.add_edge(NodeId(1), NodeId(2), 1).unwrap();
        b.add_edge(NodeId(2), NodeId(3), 5).unwrap();
        b.add_edge(NodeId(3), NodeId(0), 1).unwrap();
        let g = b.build().unwrap();
        let all: ForestSolution = (0..4).map(EdgeId).collect();
        let lsf = all.lightest_spanning_forest(&g);
        assert_eq!(lsf.edges(), &[EdgeId(0), EdgeId(1), EdgeId(3)]);
        assert!(lsf.is_forest(&g));
    }

    #[test]
    fn duplicate_edge_input_collapses_before_lsf_and_prune() {
        let g = generators::path(4, 2);
        let inst = InstanceBuilder::new(&g)
            .component(&[NodeId(0), NodeId(3)])
            .build()
            .unwrap();
        // from_edges dedups, so the duplicated path is one forest...
        let dup = ForestSolution::from_edges(vec![
            EdgeId(0),
            EdgeId(0),
            EdgeId(1),
            EdgeId(1),
            EdgeId(2),
            EdgeId(2),
        ]);
        assert_eq!(dup.len(), 3);
        // ...that both normalizers treat as already clean.
        assert_eq!(dup.lightest_spanning_forest(&g), dup);
        assert_eq!(dup.prune_to_minimal(&g, &inst), dup);
    }

    #[test]
    fn prune_single_pair_keeps_exactly_the_connecting_path() {
        // Star with center 0: a single pair {1, 2} needs its two spokes,
        // every other spoke goes.
        let g = generators::star(6, 1, 0);
        let inst = InstanceBuilder::new(&g)
            .component(&[NodeId(1), NodeId(2)])
            .build()
            .unwrap();
        let full: ForestSolution = (0..5).map(EdgeId).collect();
        let pruned = full.prune_to_minimal(&g, &inst);
        assert_eq!(pruned.edges(), &[EdgeId(0), EdgeId(1)]);
        assert!(inst.is_feasible(&g, &pruned));
    }

    #[test]
    fn prune_on_an_already_minimal_forest_is_identity() {
        let g = generators::path(5, 1);
        let inst = InstanceBuilder::new(&g)
            .component(&[NodeId(1), NodeId(3)])
            .build()
            .unwrap();
        let minimal = ForestSolution::from_edges(vec![EdgeId(1), EdgeId(2)]);
        assert_eq!(minimal.prune_to_minimal(&g, &inst), minimal);
    }
}
