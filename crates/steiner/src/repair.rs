//! Repair moves for incrementally maintained forests.
//!
//! The delta API in `dsf-service` patches a cached [`ForestSolution`]
//! after a demand or weight change instead of re-solving. Two primitives
//! live here because they are pure forest surgery, independent of any
//! session state:
//!
//! * [`connect_terminals`] — the *addition* repair: extend a forest until
//!   a terminal set shares one tree, growing along cheapest contracted
//!   paths ([`dsf_graph::dijkstra::multi_source_with`] with selected
//!   edges at weight 0) exactly like the gluttonous greedy realizes its
//!   merges;
//! * [`reroute_components`] — a *global* repair move the swap/replace
//!   local search of [`crate::local_search`] does not have: tear one
//!   input component out of the forest entirely (prune against the
//!   instance without it) and rebuild its connection from scratch over
//!   the contracted remainder, accepted when strictly lighter.
//!
//! The reroute move matters after removals. A cached forest can carry a
//! multi-edge detour that once rode for free on a since-departed
//! component's tree; swap/replace moves only ever trade one edge at a
//! time and can settle on such a detour, while a whole-component reroute
//! re-chooses the connection in one step.
//!
//! [`optimize`] is the repair pipeline's finishing engine: a scoped
//! fixpoint over *four* move families — the swap/replace moves of
//! [`crate::local_search`] (swaps screened by a tree-path-maximum walk
//! instead of a trial Kruskal per chord), the whole-component reroute,
//! and a Steiner-elimination move that deletes a non-terminal branch
//! vertex's edges wholesale and reconnects, escaping local optima where
//! every one-edge trade is blocked. Scanning is restricted to the trees
//! a delta actually dirtied, so steady-state repairs cost a fraction of
//! a from-scratch solve; every accepted move strictly decreases integer
//! weight, so the fixpoint is reached in finitely many rounds.
//! [`rebuild`] supplies a from-nothing candidate for callers that want
//! to race a patched cache after structural damage.

use dsf_graph::{dijkstra, EdgeId, NodeId, Weight, WeightedGraph, INF};

use crate::instance::{ComponentId, Instance, InstanceBuilder};
use crate::solution::ForestSolution;

/// Extends `f` until every node of `terminals` lies in one tree.
///
/// Pending terminals are attached one at a time along the cheapest
/// contracted path from the component of `terminals[0]` (selected edges
/// cost 0), cheapest-first with node-id tie-breaking — deterministic, and
/// free wherever the path rides existing trees. The result is normalized
/// to a forest ([`ForestSolution::lightest_spanning_forest`]) but **not**
/// pruned: callers decide which instance to prune against.
///
/// Unreachable terminals are left unconnected (cannot happen on the
/// connected graphs the model requires).
pub fn connect_terminals(
    g: &WeightedGraph,
    f: &ForestSolution,
    terminals: &[NodeId],
) -> ForestSolution {
    let Some(&anchor) = terminals.first() else {
        return f.clone();
    };
    let mut selected = vec![false; g.m()];
    for &e in f.edges() {
        selected[e.idx()] = true;
    }
    loop {
        let sp = dijkstra::multi_source_with(g, &[anchor], |e| {
            if selected[e.idx()] {
                0
            } else {
                g.weight(e)
            }
        });
        // Contracted distance 0 means the terminal already shares the
        // anchor's component; attach the pending terminal with the
        // cheapest contracted connection, ties to the smallest node id.
        let pending: Vec<NodeId> = terminals
            .iter()
            .copied()
            .filter(|t| sp.dist[t.idx()] > 0 && sp.dist[t.idx()] < INF)
            .collect();
        let Some(&t) = pending.iter().min_by_key(|t| (sp.dist[t.idx()], **t)) else {
            break;
        };
        for e in sp.path_edges(t) {
            selected[e.idx()] = true;
        }
        if pending.len() == 1 {
            // Nothing else was pending, so the attachment we just made
            // finished the job — skip the confirming Dijkstra.
            break;
        }
    }
    let picked: ForestSolution = (0..g.m() as u32)
        .map(EdgeId)
        .filter(|e| selected[e.idx()])
        .collect();
    // Contracted paths re-entering a tree over equal-weight ties could
    // close a cycle; restore the forest invariant defensively.
    picked.lightest_spanning_forest(g)
}

/// One accepted reroute: which component was rebuilt and the total forest
/// weight after the move (strictly decreasing across the returned trace).
pub type RerouteTrace = Vec<(ComponentId, Weight)>;

/// Improves `f` by whole-component reroutes to a fixpoint.
///
/// For each input component `c` (ascending id, first improvement wins):
/// prune `f` against the instance *without* `c` to get the forest the
/// other components still need, reconnect `c`'s terminals over that
/// remainder with [`connect_terminals`], prune against the full instance,
/// and accept iff the result is strictly lighter. Passes repeat until one
/// accepts nothing.
///
/// Never increases weight, never breaks feasibility, deterministic;
/// idempotent at its fixpoint. Returns the improved forest and the
/// accepted-move trace.
pub fn reroute_detailed(
    g: &WeightedGraph,
    inst: &Instance,
    f: &ForestSolution,
) -> (ForestSolution, RerouteTrace) {
    let mut cur = f.lightest_spanning_forest(g).prune_to_minimal(g, inst);
    let mut accepted = RerouteTrace::new();
    loop {
        let mut moved = false;
        for c in 0..inst.k() {
            let terms = &inst.components()[c];
            if terms.len() < 2 {
                continue;
            }
            let others = instance_without(g, inst, c);
            let base = cur.prune_to_minimal(g, &others);
            let candidate = connect_terminals(g, &base, terms).prune_to_minimal(g, inst);
            if candidate.weight(g) < cur.weight(g) {
                cur = candidate;
                accepted.push((ComponentId(c as u32), cur.weight(g)));
                moved = true;
            }
        }
        if !moved {
            break;
        }
    }
    (cur, accepted)
}

/// [`reroute_detailed`] without the trace.
pub fn reroute_components(
    g: &WeightedGraph,
    inst: &Instance,
    f: &ForestSolution,
) -> ForestSolution {
    reroute_detailed(g, inst, f).0
}

/// Builds a forest for `inst` from nothing: components connected in
/// instance order via [`connect_terminals`] (later components ride the
/// earlier selection for free), pruned to minimal. The cheap full-rebuild
/// candidate the repair pipeline races against a patched cache when the
/// cache might be stale wholesale.
pub fn rebuild(g: &WeightedGraph, inst: &Instance) -> ForestSolution {
    let mut f = ForestSolution::empty();
    for terms in inst.components() {
        f = connect_terminals(g, &f, terms);
    }
    f.prune_to_minimal(g, inst)
}

/// Improves `start` to a fixpoint of four deterministic move families,
/// scanning only the *dirty region* seeded by `scope`:
///
/// 1. **edge swap** — add a chord, drop the heaviest edge on the tree
///    cycle it closes (screened by a tree-path maximum walk, so
///    non-improving chords cost no allocation);
/// 2. **path replace** — drop a forest edge, reconnect its sides along
///    the cheapest contracted path when feasibility still needs them;
/// 3. **component reroute** — tear one input component out and rebuild
///    its connection over the contracted remainder
///    ([`reroute_detailed`]'s move);
/// 4. **Steiner elimination** — delete a degree-≥3 non-terminal vertex's
///    forest edges wholesale and reconnect the split components, the
///    multi-edge restructuring none of the one-edge moves can express.
///
/// `scope` seeds the dirty node set (`None` = everything): only trees
/// containing a dirty node are scanned, and every accepted move marks the
/// nodes it touched dirty, so repairs stay proportional to the damage a
/// delta did rather than to the graph. Every accepted move strictly
/// decreases integer weight — termination is guaranteed — and scans run
/// in fixed ascending order, so the result is deterministic. Returns the
/// optimized forest and the number of accepted moves.
pub fn optimize(
    g: &WeightedGraph,
    inst: &Instance,
    start: &ForestSolution,
    scope: Option<&[NodeId]>,
) -> (ForestSolution, u64) {
    let mut dirty = match scope {
        None => vec![true; g.n()],
        Some(seeds) => {
            let mut d = vec![false; g.n()];
            for &v in seeds {
                d[v.idx()] = true;
            }
            d
        }
    };
    let mut cur = start.lightest_spanning_forest(g).prune_to_minimal(g, inst);
    let mut moves = 0u64;
    loop {
        let comps = g.components_of(cur.edges());
        // A tree is scanned iff it contains a dirty node.
        let mut tree_dirty = vec![false; g.n()];
        for v in 0..g.n() {
            if dirty[v] {
                tree_dirty[comps[v].idx()] = true;
            }
        }
        let scoped = |v: NodeId| tree_dirty[comps[v.idx()].idx()];
        let next = swap_move(g, inst, &cur, &comps, &scoped)
            .or_else(|| replace_move(g, inst, &cur, &dirty))
            .or_else(|| reroute_move(g, inst, &cur, &scoped))
            .or_else(|| eliminate_move(g, inst, &cur, &dirty));
        let Some(next) = next else {
            break;
        };
        debug_assert!(next.weight(g) < cur.weight(g), "move did not improve");
        // Exactly what the move touched becomes dirty — the symmetric
        // difference of the two edge sets — so follow-up moves in the
        // newly exposed region are found on the next pass while the
        // scan stays proportional to the damage.
        for &e in next.edges().iter().filter(|e| !cur.contains(**e)) {
            let ed = g.edge(e);
            dirty[ed.u.idx()] = true;
            dirty[ed.v.idx()] = true;
        }
        for &e in cur.edges().iter().filter(|e| !next.contains(**e)) {
            let ed = g.edge(e);
            dirty[ed.u.idx()] = true;
            dirty[ed.v.idx()] = true;
        }
        cur = next;
        moves += 1;
    }
    (cur, moves)
}

/// First improving swap in ascending edge-id order, screened cheaply:
/// a chord improves iff the heaviest edge on the tree path between its
/// endpoints outweighs it, checked by walking parent pointers — only
/// winners pay for materialization.
fn swap_move(
    g: &WeightedGraph,
    inst: &Instance,
    cur: &ForestSolution,
    comps: &[NodeId],
    scoped: &dyn Fn(NodeId) -> bool,
) -> Option<ForestSolution> {
    // Root every tree: parent edge + depth per node, BFS from the
    // smallest-id node of each tree.
    let mut adj: Vec<Vec<(NodeId, Weight)>> = vec![Vec::new(); g.n()];
    for &e in cur.edges() {
        let ed = g.edge(e);
        adj[ed.u.idx()].push((ed.v, ed.w));
        adj[ed.v.idx()].push((ed.u, ed.w));
    }
    let mut parent: Vec<Option<(NodeId, Weight)>> = vec![None; g.n()];
    let mut depth = vec![0u32; g.n()];
    let mut seen = vec![false; g.n()];
    let mut queue = std::collections::VecDeque::new();
    for r in 0..g.n() {
        if seen[r] {
            continue;
        }
        seen[r] = true;
        queue.push_back(NodeId::from(r));
        while let Some(v) = queue.pop_front() {
            for &(w, wt) in &adj[v.idx()] {
                if !seen[w.idx()] {
                    seen[w.idx()] = true;
                    parent[w.idx()] = Some((v, wt));
                    depth[w.idx()] = depth[v.idx()] + 1;
                    queue.push_back(w);
                }
            }
        }
    }
    let path_max = |mut a: NodeId, mut b: NodeId| -> Weight {
        let mut max = 0;
        while a != b {
            if depth[a.idx()] < depth[b.idx()] {
                std::mem::swap(&mut a, &mut b);
            }
            let (p, w) = parent[a.idx()].expect("same tree, so a has a parent until the LCA");
            max = max.max(w);
            a = p;
        }
        max
    };
    let before = cur.weight(g);
    for e in (0..g.m() as u32).map(EdgeId) {
        if cur.contains(e) {
            continue;
        }
        let ed = g.edge(e);
        if comps[ed.u.idx()] != comps[ed.v.idx()] || !scoped(ed.u) {
            continue;
        }
        if path_max(ed.u, ed.v) <= ed.w {
            continue;
        }
        let mut union = cur.edges().to_vec();
        union.push(e);
        let swapped = ForestSolution::from_edges(union)
            .lightest_spanning_forest(g)
            .prune_to_minimal(g, inst);
        if swapped.weight(g) < before {
            return Some(swapped);
        }
    }
    None
}

/// First improving segment replacement over the scoped trees.
///
/// A *segment* is a maximal tree path whose interior vertices are all
/// degree-2 non-terminals — the unit a detour actually occupies. Each
/// scoped segment is dropped wholesale and its endpoints reconnected
/// along the cheapest contracted path (or just pruned, when the drop
/// keeps the instance feasible). Single forest edges between branch
/// points are one-edge segments, so this strictly generalizes the
/// classic replace move: a multi-edge detour whose every edge is
/// individually cheaper than the alternative route still falls in one
/// move here, while per-edge replace is stuck.
fn replace_move(
    g: &WeightedGraph,
    inst: &Instance,
    cur: &ForestSolution,
    dirty: &[bool],
) -> Option<ForestSolution> {
    let mut adj: Vec<Vec<(NodeId, EdgeId)>> = vec![Vec::new(); g.n()];
    for &e in cur.edges() {
        let ed = g.edge(e);
        adj[ed.u.idx()].push((ed.v, e));
        adj[ed.v.idx()].push((ed.u, e));
    }
    // Branch points, terminals, and leaves delimit segments; interior
    // nodes are degree-2 Steiner vertices.
    let important = |v: NodeId| adj[v.idx()].len() != 2 || inst.label(v).is_some();
    let before = cur.weight(g);
    let mut visited = vec![false; g.m()];
    for u in (0..g.n()).map(NodeId::from) {
        if adj[u.idx()].is_empty() || !important(u) {
            continue;
        }
        for i in 0..adj[u.idx()].len() {
            let (mut node, mut edge) = adj[u.idx()][i];
            if visited[edge.idx()] {
                continue;
            }
            let mut segment = vec![edge];
            visited[edge.idx()] = true;
            let mut touched = dirty[u.idx()] || dirty[node.idx()];
            while !important(node) {
                let (a, b) = (adj[node.idx()][0], adj[node.idx()][1]);
                let (next, via) = if a.1 == edge { b } else { a };
                segment.push(via);
                visited[via.idx()] = true;
                node = next;
                edge = via;
                touched |= dirty[node.idx()];
            }
            // Node-level scope: only segments carrying actual damage are
            // re-examined; the rest of the tree keeps its fixpoint.
            if !touched {
                continue;
            }
            let rest: Vec<EdgeId> = cur
                .edges()
                .iter()
                .copied()
                .filter(|e| !segment.contains(e))
                .collect();
            // `cur` is pruned-minimal, so every edge splits some demand:
            // dropping a segment always disconnects something and the
            // only question is whether the reconnection is cheaper.
            let dropped = ForestSolution::from_edges(rest);
            let sp = dijkstra::multi_source_with(g, &[u], |x| {
                if dropped.contains(x) {
                    0
                } else {
                    g.weight(x)
                }
            });
            if sp.dist[node.idx()] >= INF {
                continue;
            }
            let path: Vec<EdgeId> = sp
                .path_edges(node)
                .into_iter()
                .filter(|x| !dropped.contains(*x))
                .collect();
            if path.is_empty() {
                continue;
            }
            let seg_w: Weight = segment.iter().map(|&x| g.weight(x)).sum();
            let path_w: Weight = path.iter().map(|&x| g.weight(x)).sum();
            if path_w >= seg_w {
                // The rewiring itself is not cheaper; skip the
                // materialization (prune can only shave further when the
                // path re-enters the tree, which the swap move covers).
                continue;
            }
            let candidate = dropped
                .union(&ForestSolution::from_edges(path))
                .lightest_spanning_forest(g)
                .prune_to_minimal(g, inst);
            if candidate.weight(g) < before && inst.is_feasible(g, &candidate) {
                return Some(candidate);
            }
        }
    }
    None
}

/// For every edge of the (pruned) forest `cur`, how many input
/// components its removal would disconnect within its tree, and — when
/// exactly one — which. One bottom-up label-counting DFS, the same pass
/// [`ForestSolution::prune_to_minimal`] runs, shared here by all `k`
/// per-component tear-outs of [`reroute_move`].
fn split_profile(g: &WeightedGraph, inst: &Instance, cur: &ForestSolution) -> Vec<(u32, u32)> {
    use std::collections::HashMap;
    let mut idx_of: HashMap<EdgeId, usize> = HashMap::new();
    for (i, &e) in cur.edges().iter().enumerate() {
        idx_of.insert(e, i);
    }
    let mut profile = vec![(0u32, 0u32); cur.edges().len()];
    let mut adj: Vec<Vec<(NodeId, EdgeId)>> = vec![Vec::new(); g.n()];
    for &e in cur.edges() {
        let ed = g.edge(e);
        adj[ed.u.idx()].push((ed.v, e));
        adj[ed.v.idx()].push((ed.u, e));
    }
    let comps = g.components_of(cur.edges());
    let mut tree_totals: HashMap<NodeId, HashMap<u32, u32>> = HashMap::new();
    for v in g.nodes() {
        if let Some(l) = inst.label(v) {
            *tree_totals
                .entry(comps[v.idx()])
                .or_default()
                .entry(l.0)
                .or_insert(0) += 1;
        }
    }
    let mut visited = vec![false; g.n()];
    let mut counts: Vec<HashMap<u32, u32>> = vec![HashMap::new(); g.n()];
    for root in g.nodes() {
        if visited[root.idx()] || adj[root.idx()].is_empty() {
            continue;
        }
        let Some(totals) = tree_totals.get(&comps[root.idx()]) else {
            continue;
        };
        type DfsFrame = (NodeId, Option<(NodeId, EdgeId)>, bool);
        let mut stack: Vec<DfsFrame> = vec![(root, None, false)];
        while let Some((v, par, expanded)) = stack.pop() {
            if expanded {
                if let Some(l) = inst.label(v) {
                    *counts[v.idx()].entry(l.0).or_insert(0) += 1;
                }
                if let Some((p, e)) = par {
                    let mut split = 0u32;
                    let mut lone = 0u32;
                    for (l, &c) in counts[v.idx()].iter() {
                        if c > 0 && c < totals[l] {
                            split += 1;
                            lone = *l;
                        }
                    }
                    profile[idx_of[&e]] = (split, lone);
                    let child_map = std::mem::take(&mut counts[v.idx()]);
                    let parent_map = &mut counts[p.idx()];
                    if parent_map.len() < child_map.len() {
                        let old = std::mem::replace(parent_map, child_map);
                        for (l, c) in old {
                            *parent_map.entry(l).or_insert(0) += c;
                        }
                    } else {
                        for (l, c) in child_map {
                            *parent_map.entry(l).or_insert(0) += c;
                        }
                    }
                }
            } else {
                visited[v.idx()] = true;
                stack.push((v, par, true));
                for &(u, e) in &adj[v.idx()] {
                    if par.is_none_or(|(p, _)| p != u) && !visited[u.idx()] {
                        stack.push((u, Some((v, e)), false));
                    }
                }
            }
        }
    }
    profile
}

/// First improving whole-component reroute in ascending component order.
fn reroute_move(
    g: &WeightedGraph,
    inst: &Instance,
    cur: &ForestSolution,
    scoped: &dyn Fn(NodeId) -> bool,
) -> Option<ForestSolution> {
    // A reroute can profit from damage in a *different* tree (the
    // rerouted component rides the changed tree for free), so any dirty
    // region makes every component a candidate.
    if !(0..g.n()).any(|v| scoped(NodeId::from(v))) {
        return None;
    }
    let before = cur.weight(g);
    let profile = split_profile(g, inst, cur);
    for c in 0..inst.k() {
        let terms = &inst.components()[c];
        if terms.len() < 2 {
            continue;
        }
        // Tear `c` out: edges whose removal splits only `c` are exactly
        // what pruning against the instance-without-`c` would drop.
        let mut dropped_w: Weight = 0;
        let mut base_edges = Vec::with_capacity(cur.edges().len());
        for (i, &e) in cur.edges().iter().enumerate() {
            let (split, lone) = profile[i];
            if split == 1 && lone == c as u32 {
                dropped_w += g.weight(e);
            } else {
                base_edges.push(e);
            }
        }
        if dropped_w == 0 {
            // A pure rider: removing it frees nothing, so no fresh
            // connection can cost less than the zero it pays now.
            continue;
        }
        let base = ForestSolution::from_edges(base_edges);
        let candidate = connect_terminals(g, &base, terms);
        if candidate.weight(g) - base.weight(g) >= dropped_w {
            continue;
        }
        let candidate = candidate.prune_to_minimal(g, inst);
        if candidate.weight(g) < before {
            return Some(candidate);
        }
    }
    None
}

/// First improving Steiner elimination in ascending node-id order over
/// the scoped trees: delete all forest edges of a non-terminal vertex of
/// forest degree ≥ 3 and reconnect the components it split.
fn eliminate_move(
    g: &WeightedGraph,
    inst: &Instance,
    cur: &ForestSolution,
    dirty: &[bool],
) -> Option<ForestSolution> {
    let mut degree = vec![0u32; g.n()];
    for &e in cur.edges() {
        let ed = g.edge(e);
        degree[ed.u.idx()] += 1;
        degree[ed.v.idx()] += 1;
    }
    let before = cur.weight(g);
    for v in (0..g.n()).map(NodeId::from) {
        if degree[v.idx()] < 3 || inst.label(v).is_some() || !dirty[v.idx()] {
            continue;
        }
        let rest: Vec<EdgeId> = cur
            .edges()
            .iter()
            .copied()
            .filter(|&e| {
                let ed = g.edge(e);
                ed.u != v && ed.v != v
            })
            .collect();
        let base = ForestSolution::from_edges(rest);
        let split = g.components_of(base.edges());
        let broken: Vec<usize> = (0..inst.k())
            .filter(|&c| {
                inst.components()[c]
                    .windows(2)
                    .any(|w| split[w[0].idx()] != split[w[1].idx()])
            })
            .collect();
        // Reconnection is order-dependent: an early component can re-buy
        // the deleted star while a different order shares cheaper edges.
        // The broken set is tiny (the deleted vertex's fragment count),
        // so try every order and keep the lightest, first-found on ties.
        let mut best: Option<ForestSolution> = None;
        for order in permutations(&broken) {
            let mut candidate = base.clone();
            for &c in &order {
                candidate = connect_terminals(g, &candidate, &inst.components()[c]);
            }
            let candidate = candidate.prune_to_minimal(g, inst);
            if candidate.weight(g) < before
                && inst.is_feasible(g, &candidate)
                && best
                    .as_ref()
                    .is_none_or(|b| candidate.weight(g) < b.weight(g))
            {
                best = Some(candidate);
            }
        }
        if best.is_some() {
            return best;
        }
    }
    None
}

/// Every ordering of `items` in lexicographic order, capped: beyond 4
/// items ([`eliminate_move`] never splits a vertex into more fragments
/// than its degree, and degree-5 stars are already rare) only the given
/// order is tried, keeping the move polynomial.
fn permutations(items: &[usize]) -> Vec<Vec<usize>> {
    if items.len() > 4 {
        return vec![items.to_vec()];
    }
    let mut out = Vec::new();
    let mut cur = Vec::with_capacity(items.len());
    let mut used = vec![false; items.len()];
    fn rec(items: &[usize], used: &mut [bool], cur: &mut Vec<usize>, out: &mut Vec<Vec<usize>>) {
        if cur.len() == items.len() {
            out.push(cur.clone());
            return;
        }
        for i in 0..items.len() {
            if !used[i] {
                used[i] = true;
                cur.push(items[i]);
                rec(items, used, cur, out);
                cur.pop();
                used[i] = false;
            }
        }
    }
    rec(items, &mut used, &mut cur, &mut out);
    out
}

/// The instance with component `skip` deleted (remaining components keep
/// their relative order; ids shift down).
fn instance_without(g: &WeightedGraph, inst: &Instance, skip: usize) -> Instance {
    let mut b = InstanceBuilder::new(g);
    for (c, terms) in inst.components().iter().enumerate() {
        if c != skip {
            b = b.component(terms);
        }
    }
    b.build().expect("subset of a valid instance stays valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsf_graph::{generators, GraphBuilder};

    /// A stale detour: pair {4, 5} still connects over a 4-hop weight-12
    /// spine that once rode on a since-departed component's tree, while a
    /// direct weight-8 edge exists.
    fn detour_trap() -> (WeightedGraph, Instance, ForestSolution) {
        let mut b = GraphBuilder::new(6);
        b.add_edge(NodeId(4), NodeId(0), 3).unwrap(); // e0
        b.add_edge(NodeId(0), NodeId(1), 3).unwrap(); // e1
        b.add_edge(NodeId(1), NodeId(2), 3).unwrap(); // e2
        b.add_edge(NodeId(2), NodeId(5), 3).unwrap(); // e3  (detour tail)
        b.add_edge(NodeId(4), NodeId(5), 8).unwrap(); // e4  (direct)
        b.add_edge(NodeId(3), NodeId(0), 1).unwrap(); // e5  (filler, keeps g connected)
        let g = b.build().unwrap();
        let inst = InstanceBuilder::new(&g)
            .component(&[NodeId(4), NodeId(5)])
            .build()
            .unwrap();
        let detour = ForestSolution::from_edges(vec![EdgeId(0), EdgeId(1), EdgeId(2), EdgeId(3)]);
        (g, inst, detour)
    }

    #[test]
    fn reroute_replaces_a_stale_detour_with_the_direct_connection() {
        let (g, inst, detour) = detour_trap();
        assert_eq!(detour.weight(&g), 12);
        let (out, trace) = reroute_detailed(&g, &inst, &detour);
        assert_eq!(out.edges(), &[EdgeId(4)]);
        assert_eq!(out.weight(&g), 8);
        assert!(!trace.is_empty());
        let mut prev = detour.weight(&g);
        for &(_, w) in &trace {
            assert!(w < prev, "non-decreasing reroute: {w} after {prev}");
            prev = w;
        }
    }

    #[test]
    fn reroute_is_idempotent_and_preserves_feasibility() {
        for seed in 0..6 {
            let g = generators::gnp_connected(24, 0.2, 11, seed);
            let inst = crate::random_instance(&g, 4, 2, seed);
            let start = crate::greedy::solve_greedy(&g, &inst);
            let (once, _) = reroute_detailed(&g, &inst, &start);
            assert!(inst.is_feasible(&g, &once), "seed {seed}");
            assert!(once.is_forest(&g), "seed {seed}");
            assert!(once.weight(&g) <= start.weight(&g), "seed {seed}");
            let (twice, trace) = reroute_detailed(&g, &inst, &once);
            assert_eq!(once, twice, "seed {seed}");
            assert!(trace.is_empty(), "seed {seed}: fixpoint still had moves");
        }
    }

    #[test]
    fn connect_terminals_grows_along_cheapest_contracted_paths() {
        let g = generators::path(5, 2); // unit-structure path, weight 2 per edge
        let f = ForestSolution::from_edges(vec![EdgeId(0)]); // tree {0,1}
        let grown = connect_terminals(&g, &f, &[NodeId(0), NodeId(3)]);
        assert_eq!(grown.edges(), &[EdgeId(0), EdgeId(1), EdgeId(2)]);
        // Already-connected terminal sets are a no-op.
        assert_eq!(
            connect_terminals(&g, &grown, &[NodeId(0), NodeId(3)]),
            grown
        );
        // Empty terminal set is the identity.
        assert_eq!(connect_terminals(&g, &f, &[]), f);
    }

    #[test]
    fn connect_terminals_rides_existing_trees_for_free() {
        // Star with center 0: tree {1,2} via spokes; connecting {1, 3}
        // only pays the one new spoke.
        let g = generators::star(5, 1, 0);
        let f = ForestSolution::from_edges(vec![EdgeId(0), EdgeId(1)]);
        let grown = connect_terminals(&g, &f, &[NodeId(1), NodeId(3)]);
        assert_eq!(grown.weight(&g), 3);
        assert!(grown.is_forest(&g));
    }

    #[test]
    fn reroute_on_empty_instance_clears_everything() {
        let g = generators::path(4, 1);
        let inst = InstanceBuilder::new(&g).build().unwrap();
        let full: ForestSolution = (0..3).map(EdgeId).collect();
        let (out, trace) = reroute_detailed(&g, &inst, &full);
        assert!(out.is_empty());
        assert!(trace.is_empty());
    }
}
