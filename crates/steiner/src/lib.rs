//! Steiner forest problem definitions and centralized reference algorithms.
//!
//! This crate hosts everything the distributed algorithms are measured
//! against:
//!
//! * [`Instance`] / [`InstanceBuilder`] — the *Distributed Steiner Forest
//!   with Input Components* problem (DSF-IC, Definition 2.2) and
//!   [`ConnectionRequests`] — the request form (DSF-CR, Definition 2.1);
//! * [`ForestSolution`] — a validated edge-set solution with feasibility
//!   checking and minimal-subforest pruning;
//! * [`moat`] — **Algorithm 1**, the centralized moat-growing algorithm of
//!   Agrawal–Klein–Ravi as specified in Appendix C, with an exact
//!   event log and the dual lower bound `Σ actᵢ·μᵢ` (Lemma C.4);
//! * [`moat_rounded`] — **Algorithm 2**, moat growing with rounded radii
//!   (Appendix D), giving `(2+ε)`-approximation with `O(log n / ε)` growth
//!   phases;
//! * [`greedy`] — the sequential gluttonous greedy of Gupta–Kumar
//!   (arXiv:1412.7693), the "beat the 2+ε line" reference solver;
//! * [`local_search`] — the swap/replace local-search improver of Groß
//!   et al. (arXiv:1707.02753), a post-processor over any solution;
//! * [`repair`] — forest surgery for incremental re-solves: contracted
//!   reconnection of a terminal set and whole-component reroutes, the
//!   moves `dsf-service`'s delta API repairs cached forests with;
//! * [`exact`] — an exact Steiner forest solver for small instances
//!   (minimum over component partitions of per-block Dreyfus–Wagner trees),
//!   the ground truth for every approximation-ratio experiment.
//!
//! # Example
//!
//! ```
//! use dsf_graph::{generators, NodeId};
//! use dsf_steiner::{moat, InstanceBuilder};
//!
//! let g = generators::gnp_connected(20, 0.2, 10, 1);
//! let inst = InstanceBuilder::new(&g)
//!     .component(&[NodeId(0), NodeId(7)])
//!     .component(&[NodeId(3), NodeId(12), NodeId(19)])
//!     .build()
//!     .unwrap();
//! let run = moat::grow(&g, &inst);
//! assert!(inst.is_feasible(&g, &run.forest));
//! // Theorem 4.1 + Lemma C.4: weight < 2 · dual ≤ 2 · OPT.
//! assert!((run.forest.weight(&g) as f64) < 2.0 * run.dual.to_f64() + 1e-9);
//! ```

pub mod exact;
pub mod greedy;
mod instance;
pub mod local_search;
pub mod moat;
pub mod moat_rounded;
pub mod repair;
mod solution;

pub use instance::{
    random_instance, ComponentId, ConnectionRequests, Instance, InstanceBuilder, InstanceError,
};
pub use solution::ForestSolution;
