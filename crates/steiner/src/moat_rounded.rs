//! **Algorithm 2**: moat growing with rounded radii (Appendix D).
//!
//! Identical to Algorithm 1, except that moats change their activity status
//! only at *checkpoints* — radii at which the total growth reaches the
//! threshold `μ̂`, which then multiplies by `1 + ε/2`. This caps the number
//! of distinct radii at which activity can change by `O(log WD / ε)` growth
//! phases (Lemma F.1), the key to the `Õ(sk + √min{st,n})` distributed
//! variant, at the price of a `(2+ε)` approximation factor (Theorem 4.2).
//!
//! ## Threshold quantization
//!
//! The exact schedule `μ̂_g = (1+ε/2)^g` has dyadic representations whose
//! exponents grow linearly in `g`, overflowing any fixed-width mantissa.
//! We therefore round each new threshold *down* to a dyadic with exponent
//! `≤ 16`. Rounding down preserves `μ̂_{g+1} ≤ (1+ε/2)·μ̂_g`, which is the
//! inequality Corollary D.1's charging argument consumes (a *bad* moat is
//! charged at most `ε/2` times the elapsed growth), so the `(2+ε)` factor
//! is unaffected; growth only slows by a negligible amount, adding `O(1)`
//! growth phases. If quantization would stall the schedule we force a
//! minimum step of `2^-16`.

use dsf_graph::dyadic::Dyadic;
use dsf_graph::WeightedGraph;

use crate::instance::Instance;
use crate::moat::{Grower, MergeEvent};
use crate::solution::ForestSolution;

/// Result of an Algorithm 2 run.
#[derive(Debug, Clone)]
pub struct RoundedRun {
    /// Pruned, minimal feasible output.
    pub forest: ForestSolution,
    /// Un-pruned edge set.
    pub raw: ForestSolution,
    /// Merge log (checkpoint steps do not merge and are not logged).
    pub merges: Vec<MergeEvent>,
    /// Number of growth phases (checkpoints) executed; Lemma F.1 bounds
    /// this by `O(log WD / ε)`.
    pub growth_phases: usize,
    /// `Σᵢ actᵢ·μᵢ`; by Corollary D.1, `dual ≤ (1+ε/2)·OPT`.
    pub dual: Dyadic,
}

/// Maximum dyadic exponent of the quantized `μ̂` schedule.
const MU_HAT_EXP: u32 = 16;

/// Advances the threshold: `μ̂ ← quantize((1+ε/2)·μ̂)`, never stalling.
/// Shared with the distributed growth-phase driver so both follow the
/// identical schedule.
pub fn next_mu_hat(mu_hat: Dyadic, eps: Dyadic) -> Dyadic {
    let factor = Dyadic::ONE + eps.half();
    let next = (mu_hat * factor).round_down_to_exp(MU_HAT_EXP);
    if next > mu_hat {
        next
    } else {
        mu_hat + Dyadic::new(1, MU_HAT_EXP)
    }
}

/// Runs Algorithm 2 with parameter `eps > 0` (a dyadic rational, e.g.
/// `Dyadic::new(1, 1)` for `ε = 1/2`).
///
/// # Panics
///
/// Panics if `eps` is not strictly positive.
pub fn grow_rounded(g: &WeightedGraph, inst: &Instance, eps: Dyadic) -> RoundedRun {
    assert!(eps.is_positive(), "epsilon must be positive");
    let mut gr = Grower::new(g, inst);
    let mut merges = Vec::new();
    let mut dual = Dyadic::ZERO;
    let mut elapsed = Dyadic::ZERO; // Σ μ_j so far
    let mut mu_hat = Dyadic::ONE;
    let mut growth_phases = 0usize;
    let mut index = 0usize;

    loop {
        let act_count = gr.active_moats();
        if act_count == 0 {
            break;
        }
        let meeting = gr.next_meeting();
        // Does the next meeting happen before the checkpoint?
        let meets_first = meeting.as_ref().is_some_and(|m| elapsed + m.mu < mu_hat);
        if meets_first {
            let m = meeting.expect("checked above");
            index += 1;
            dual += m.mu.mul_int(act_count as i128);
            gr.grow_by(m.mu);
            elapsed += m.mu;
            // Algorithm 2 line 33: merged moats stay active until the next
            // checkpoint.
            let (added, _) = gr.merge(m, true);
            merges.push(MergeEvent {
                index,
                v: gr.terms[m.a],
                w: gr.terms[m.b],
                mu: m.mu,
                active_moats: act_count,
                joined_inactive: m.with_inactive,
                new_moat_active: true,
                added_edges: added,
            });
        } else {
            // Checkpoint: grow to exactly μ̂, re-evaluate activity, raise μ̂.
            let mu = mu_hat - elapsed;
            debug_assert!(!mu.is_negative());
            dual += mu.mul_int(act_count as i128);
            gr.grow_by(mu);
            elapsed = mu_hat;
            gr.checkpoint_activities();
            mu_hat = next_mu_hat(mu_hat, eps);
            growth_phases += 1;
        }
    }

    let raw = ForestSolution::from_edges(gr.raw_edges.clone());
    let forest = raw.prune_to_minimal(g, inst);
    RoundedRun {
        forest,
        raw,
        merges,
        growth_phases,
        dual,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact;
    use crate::instance::{random_instance, InstanceBuilder};
    use dsf_graph::{generators, NodeId};

    fn eps_half() -> Dyadic {
        Dyadic::new(1, 1)
    }

    #[test]
    fn simple_pair_still_shortest_path() {
        let g = generators::path(5, 2);
        let inst = InstanceBuilder::new(&g)
            .component(&[NodeId(0), NodeId(4)])
            .build()
            .unwrap();
        let run = grow_rounded(&g, &inst, eps_half());
        assert_eq!(run.forest.weight(&g), 8);
        assert!(run.growth_phases > 0);
    }

    #[test]
    fn approximation_factor_two_plus_eps() {
        for seed in 0..10 {
            let g = generators::gnp_connected(16, 0.3, 10, seed + 40);
            let inst = random_instance(&g, 3, 2, seed);
            for eps in [Dyadic::new(1, 3), Dyadic::new(1, 1), Dyadic::from_int(1)] {
                let run = grow_rounded(&g, &inst, eps);
                assert!(inst.is_feasible(&g, &run.forest), "seed {seed}");
                let w = run.forest.weight(&g) as f64;
                let opt = exact::solve(&g, &inst).weight as f64;
                let bound = (2.0 + eps.to_f64()) * opt + 1e-6;
                assert!(
                    w <= bound,
                    "seed {seed} eps {}: w={w} opt={opt}",
                    eps.to_f64()
                );
                // Corollary D.1: dual <= (1 + eps/2) * OPT.
                assert!(run.dual.to_f64() <= (1.0 + eps.to_f64() / 2.0) * opt + 1e-6);
            }
        }
    }

    #[test]
    fn growth_phase_count_is_logarithmic() {
        // WD grows linearly with the path length; phases ~ log_{1+eps/2} WD.
        let g = generators::path(40, 50); // WD = 1950
        let inst = InstanceBuilder::new(&g)
            .component(&[NodeId(0), NodeId(39)])
            .build()
            .unwrap();
        let run = grow_rounded(&g, &inst, eps_half());
        // log_{1.25}(975) ≈ 31; quantization may add a handful.
        assert!(run.growth_phases <= 40, "phases = {}", run.growth_phases);
    }

    #[test]
    fn matches_algorithm_one_weight_on_separated_pairs() {
        // When components are far apart the rounding cannot hurt: each pair
        // is connected by its shortest path in both algorithms.
        let g = generators::path(9, 1);
        let inst = InstanceBuilder::new(&g)
            .component(&[NodeId(0), NodeId(1)])
            .component(&[NodeId(7), NodeId(8)])
            .build()
            .unwrap();
        let rounded = grow_rounded(&g, &inst, eps_half());
        let plain = crate::moat::grow(&g, &inst);
        assert_eq!(rounded.forest.weight(&g), plain.forest.weight(&g));
    }

    #[test]
    fn mu_hat_schedule_grows_and_is_bounded() {
        let mut mu_hat = Dyadic::ONE;
        let eps = Dyadic::new(1, 3); // 1/8
        for _ in 0..200 {
            let next = next_mu_hat(mu_hat, eps);
            assert!(next > mu_hat);
            // Never exceeds the exact geometric schedule.
            assert!(next <= mu_hat * (Dyadic::ONE + eps.half()) + Dyadic::new(1, MU_HAT_EXP));
            mu_hat = next;
        }
        // After 200 steps of factor <= 1.0625 the exponent stays tame.
        assert!(mu_hat.raw().1 <= MU_HAT_EXP);
    }
}
