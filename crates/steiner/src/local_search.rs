//! Local-search post-processing for Steiner forests (Groß, Gupta, Kumar,
//! Matuschke, *A Local-Search Algorithm for Steiner Forest*,
//! arXiv:1707.02753).
//!
//! [`improve`] takes *any* feasible [`ForestSolution`] and iterates two
//! move families to a local optimum:
//!
//! * **edge swap** — add one non-forest edge and drop the heaviest edge on
//!   the tree cycle it closes (via
//!   [`ForestSolution::lightest_spanning_forest`], i.e. Kruskal on the
//!   union), accepted when the weight strictly decreases;
//! * **path replace** — remove one forest edge and, if feasibility
//!   requires it, reconnect the two sides along the cheapest contracted
//!   path (remaining forest edges cost 0), accepted when the replacement
//!   is strictly cheaper than the removed edge.
//!
//! Every accepted move is followed by
//! [`ForestSolution::prune_to_minimal`], so redundant branches exposed by
//! a swap are dropped immediately. Moves are scanned in ascending edge-id
//! order (first improvement wins), which makes the whole procedure
//! deterministic; integer weights strictly decrease on every accepted
//! move, so termination is guaranteed even without the defensive
//! [`MAX_MOVES`] cap. Groß et al. prove forests that survive these moves
//! are constant-approximate regardless of the starting solution.

use dsf_graph::{dijkstra, EdgeId, NodeId, Weight, WeightedGraph, INF};

use crate::instance::Instance;
use crate::solution::ForestSolution;

/// Defensive cap on accepted moves per [`improve`] call. Weights strictly
/// decrease per move, so this only triggers on a bug, never on a real
/// corpus instance.
pub const MAX_MOVES: usize = 10_000;

/// The move family an accepted improvement came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MoveKind {
    /// Added a non-forest edge, dropped the heaviest cycle edge.
    Swap(EdgeId),
    /// Removed a forest edge, reconnected along a cheaper path (or not at
    /// all, when pruning already made it redundant).
    Replace(EdgeId),
}

/// Full trace of one [`improve`] run.
#[derive(Debug, Clone)]
pub struct Improvement {
    /// The locally optimal forest.
    pub forest: ForestSolution,
    /// `(move, total weight after the move)` per accepted move, in order.
    /// Weights are strictly decreasing.
    pub accepted: Vec<(MoveKind, Weight)>,
    /// Whether [`MAX_MOVES`] stopped the search before a local optimum.
    pub capped: bool,
}

/// Improves `f` to a swap/replace local optimum. Never increases weight,
/// never breaks feasibility; idempotent at a local optimum.
///
/// # Example
///
/// ```
/// use dsf_graph::{generators, NodeId};
/// use dsf_steiner::{local_search, InstanceBuilder};
///
/// let g = generators::gnp_connected(20, 0.25, 10, 5);
/// let inst = InstanceBuilder::new(&g)
///     .component(&[NodeId(1), NodeId(18)])
///     .build()
///     .unwrap();
/// // Start from a deliberately bloated solution: every edge.
/// let all: dsf_steiner::ForestSolution = (0..g.m() as u32).map(dsf_graph::EdgeId).collect();
/// let better = local_search::improve(&g, &inst, &all);
/// assert!(inst.is_feasible(&g, &better));
/// assert!(better.weight(&g) <= all.weight(&g));
/// ```
pub fn improve(g: &WeightedGraph, inst: &Instance, f: &ForestSolution) -> ForestSolution {
    improve_detailed(g, inst, f).forest
}

/// [`improve`] with the accepted-move trace (used by the conformance lab
/// and the improver property tests).
pub fn improve_detailed(g: &WeightedGraph, inst: &Instance, f: &ForestSolution) -> Improvement {
    // Normalize: restore forest-ness (identity on forests) and minimality.
    // Both steps only ever drop edges, so weight cannot increase.
    let mut cur = f.lightest_spanning_forest(g).prune_to_minimal(g, inst);
    let mut accepted = Vec::new();
    let mut capped = false;
    loop {
        if accepted.len() >= MAX_MOVES {
            capped = true;
            break;
        }
        let before = cur.weight(g);
        let next = swap_move(g, inst, &cur).or_else(|| replace_move(g, inst, &cur));
        match next {
            Some((kind, forest)) => {
                let after = forest.weight(g);
                debug_assert!(after < before, "{kind:?} did not decrease weight");
                accepted.push((kind, after));
                cur = forest;
            }
            None => break, // local optimum
        }
    }
    Improvement {
        forest: cur,
        accepted,
        capped,
    }
}

/// First improving edge swap in ascending edge-id order.
///
/// Adding a non-forest edge whose endpoints share a tree closes exactly
/// one cycle; Kruskal on the union keeps the lightest spanning forest of
/// the same components, so the swap is accepted iff the closed cycle's
/// heaviest edge outweighs the added one.
fn swap_move(
    g: &WeightedGraph,
    inst: &Instance,
    cur: &ForestSolution,
) -> Option<(MoveKind, ForestSolution)> {
    let comps = g.components_of(cur.edges());
    let before = cur.weight(g);
    for e in (0..g.m() as u32).map(EdgeId) {
        if cur.contains(e) {
            continue;
        }
        let ed = g.edge(e);
        // Endpoints in different trees: adding e only merges trees and
        // adds weight — never an improvement on a minimal forest.
        if comps[ed.u.idx()] != comps[ed.v.idx()] {
            continue;
        }
        let mut union = cur.edges().to_vec();
        union.push(e);
        let swapped = ForestSolution::from_edges(union)
            .lightest_spanning_forest(g)
            .prune_to_minimal(g, inst);
        if swapped.weight(g) < before {
            return Some((MoveKind::Swap(e), swapped));
        }
    }
    None
}

/// First improving path replacement in ascending edge-id order.
///
/// Dropping forest edge `e` splits its tree in two. If the instance no
/// longer needs the two sides joined, the drop alone improves; otherwise
/// the sides are rejoined along the cheapest path in the contracted
/// metric (remaining forest edges free), an improvement iff that path is
/// strictly cheaper than `e`.
fn replace_move(
    g: &WeightedGraph,
    inst: &Instance,
    cur: &ForestSolution,
) -> Option<(MoveKind, ForestSolution)> {
    let before = cur.weight(g);
    for &e in cur.edges() {
        let rest: Vec<EdgeId> = cur.edges().iter().copied().filter(|&x| x != e).collect();
        let dropped = ForestSolution::from_edges(rest);
        let candidate = if inst.is_feasible(g, &dropped) {
            dropped.prune_to_minimal(g, inst)
        } else {
            let ed = g.edge(e);
            match reconnect(g, &dropped, ed.u, ed.v) {
                Some(path) if !path.is_empty() => dropped
                    .union(&ForestSolution::from_edges(path))
                    .lightest_spanning_forest(g)
                    .prune_to_minimal(g, inst),
                _ => continue,
            }
        };
        if candidate.weight(g) < before && inst.is_feasible(g, &candidate) {
            return Some((MoveKind::Replace(e), candidate));
        }
    }
    None
}

/// Cheapest contracted path between the two sides of a dropped edge:
/// edges of `dropped` cost 0, everything else its graph weight. Returns
/// `None` when `v` is unreachable (cannot happen on connected graphs).
fn reconnect(
    g: &WeightedGraph,
    dropped: &ForestSolution,
    u: NodeId,
    v: NodeId,
) -> Option<Vec<EdgeId>> {
    let sp =
        dijkstra::multi_source_with(
            g,
            &[u],
            |e| {
                if dropped.contains(e) {
                    0
                } else {
                    g.weight(e)
                }
            },
        );
    (sp.dist[v.idx()] < INF).then(|| {
        sp.path_edges(v)
            .into_iter()
            .filter(|e| !dropped.contains(*e))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::InstanceBuilder;
    use dsf_graph::{generators, GraphBuilder};

    /// Square 0-1-2-3-0 with one heavy side; demand {0, 2}.
    fn square() -> (WeightedGraph, Instance) {
        let mut b = GraphBuilder::new(4);
        b.add_edge(NodeId(0), NodeId(1), 1).unwrap(); // e0
        b.add_edge(NodeId(1), NodeId(2), 1).unwrap(); // e1
        b.add_edge(NodeId(2), NodeId(3), 1).unwrap(); // e2
        b.add_edge(NodeId(3), NodeId(0), 9).unwrap(); // e3
        let g = b.build().unwrap();
        let inst = InstanceBuilder::new(&g)
            .component(&[NodeId(0), NodeId(2)])
            .build()
            .unwrap();
        (g, inst)
    }

    #[test]
    fn replace_move_reroutes_a_heavy_detour() {
        let (g, inst) = square();
        // Feasible but silly: reach node 2 over the heavy side.
        let bad = ForestSolution::from_edges(vec![EdgeId(2), EdgeId(3)]);
        let out = improve_detailed(&g, &inst, &bad);
        assert_eq!(out.forest.edges(), &[EdgeId(0), EdgeId(1)]);
        assert_eq!(out.forest.weight(&g), 2);
        assert!(!out.capped);
        assert!(!out.accepted.is_empty());
        // Per-move weights strictly decrease from the starting weight.
        let mut prev = bad.weight(&g);
        for &(_, w) in &out.accepted {
            assert!(w < prev, "non-decreasing move: {w} after {prev}");
            prev = w;
        }
    }

    #[test]
    fn swap_move_trades_a_heavy_tree_edge_for_a_light_chord() {
        // Triangle 0-1 (7), 1-2 (1), 0-2 (1); demand {0, 1}. The direct
        // heavy edge is swapped for the two light ones... which pruning
        // then cannot split, so the local optimum is the 2-edge path.
        let mut b = GraphBuilder::new(3);
        b.add_edge(NodeId(0), NodeId(1), 7).unwrap();
        b.add_edge(NodeId(1), NodeId(2), 1).unwrap();
        b.add_edge(NodeId(0), NodeId(2), 1).unwrap();
        let g = b.build().unwrap();
        let inst = InstanceBuilder::new(&g)
            .component(&[NodeId(0), NodeId(1)])
            .build()
            .unwrap();
        let bad = ForestSolution::from_edges(vec![EdgeId(0)]);
        let out = improve(&g, &inst, &bad);
        assert_eq!(out.weight(&g), 2);
        assert!(inst.is_feasible(&g, &out));
    }

    #[test]
    fn idempotent_at_a_local_optimum() {
        for seed in 0..5 {
            let g = generators::gnp_connected(22, 0.25, 12, seed);
            let inst = crate::random_instance(&g, 3, 3, seed);
            let all: ForestSolution = (0..g.m() as u32).map(EdgeId).collect();
            let once = improve(&g, &inst, &all);
            let twice = improve(&g, &inst, &once);
            assert_eq!(once, twice, "seed {seed}");
            assert!(
                improve_detailed(&g, &inst, &once).accepted.is_empty(),
                "seed {seed}: local optimum still had moves"
            );
        }
    }

    #[test]
    fn never_increases_weight_or_breaks_feasibility() {
        for seed in 0..5 {
            let g = generators::gnp_connected(24, 0.2, 10, seed + 50);
            let inst = crate::random_instance(&g, 4, 2, seed);
            let start = crate::greedy::solve_greedy(&g, &inst);
            let out = improve(&g, &inst, &start);
            assert!(out.weight(&g) <= start.weight(&g), "seed {seed}");
            assert!(inst.is_feasible(&g, &out), "seed {seed}");
            assert!(out.is_forest(&g), "seed {seed}");
        }
    }

    #[test]
    fn empty_solution_stays_empty() {
        let g = generators::path(4, 1);
        let inst = InstanceBuilder::new(&g).build().unwrap();
        let out = improve_detailed(&g, &inst, &ForestSolution::empty());
        assert!(out.forest.is_empty());
        assert!(out.accepted.is_empty());
        assert!(!out.capped);
    }
}
