//! **Algorithm 1**: centralized moat growing (Appendix C).
//!
//! All terminals grow "moats" (balls in the weighted metric) around
//! themselves at a common rate. When two moats touch, a least-weight path
//! between their defining terminals is added to the output and the moats
//! merge. A merged moat stays *active* while some input component is split
//! between it and the rest of the graph; once a component is fully swallowed
//! the moat turns inactive and stops growing (but can still be hit by an
//! active moat). The algorithm stops when no active moats remain and returns
//! the minimal feasible subforest.
//!
//! Guarantees reproduced here and asserted by the test-suite:
//!
//! * **Theorem 4.1** — the output is 2-approximate;
//! * **Lemma C.4** — `Σᵢ actᵢ·μᵢ ≤ W(F*)` for every feasible `F*`
//!   (a certified lower bound on OPT, exposed as [`MoatRun::dual`]).
//!
//! Event times are *exact* ([`Dyadic`]): an active–active meeting halves an
//! integer gap, and ties are broken lexicographically by terminal ids —
//! the same order the distributed emulation uses, which is what makes the
//! `distributed == centralized` equivalence tests meaningful (Lemma 4.13).

use dsf_graph::dijkstra::{self, ShortestPaths};
use dsf_graph::dyadic::Dyadic;
use dsf_graph::union_find::UnionFind;
use dsf_graph::{EdgeId, NodeId, WeightedGraph};

use crate::instance::Instance;
use crate::solution::ForestSolution;

/// One merge step of the run (Definition C.1).
#[derive(Debug, Clone)]
pub struct MergeEvent {
    /// 1-based merge index `i`.
    pub index: usize,
    /// The two terminals whose moats met (`v < w` by node id).
    pub v: NodeId,
    /// See [`MergeEvent::v`].
    pub w: NodeId,
    /// Moat growth `μᵢ` during this step.
    pub mu: Dyadic,
    /// Number of active moats at the start of the step (`actᵢ`).
    pub active_moats: usize,
    /// Whether one side of the merge was an inactive moat.
    pub joined_inactive: bool,
    /// Whether the merged moat is active afterwards.
    pub new_moat_active: bool,
    /// Edges newly added to `F` (cycle-closing edges already dropped).
    pub added_edges: Vec<EdgeId>,
}

/// Complete result of a moat-growing run.
#[derive(Debug, Clone)]
pub struct MoatRun {
    /// The pruned, minimal feasible solution (the algorithm's output).
    pub forest: ForestSolution,
    /// The un-pruned edge set `F_imax` (needed by the distributed
    /// equivalence tests, which compare against this set).
    pub raw: ForestSolution,
    /// The merge log.
    pub merges: Vec<MergeEvent>,
    /// The dual lower bound `Σᵢ actᵢ·μᵢ ≤ OPT` (Lemma C.4).
    pub dual: Dyadic,
    /// Final radius of each terminal (parallel to
    /// [`MoatRun::terminals`]).
    pub radii: Vec<Dyadic>,
    /// The terminals of the minimalized instance, sorted by node id.
    pub terminals: Vec<NodeId>,
}

/// Internal growing state shared by Algorithm 1 and Algorithm 2.
pub(crate) struct Grower<'a> {
    g: &'a WeightedGraph,
    /// Terminals, sorted; indices into all parallel arrays below.
    pub terms: Vec<NodeId>,
    /// Shortest-path data from each terminal.
    pub sp: Vec<ShortestPaths>,
    /// Moat partition over terminal indices.
    pub moats: UnionFind,
    /// Label-class partition over component indices.
    pub labels: UnionFind,
    /// Total number of terminals per label-class root.
    pub label_total: Vec<usize>,
    /// Label-class of each moat root (indexed by terminal index; valid at
    /// roots).
    pub moat_label: Vec<usize>,
    /// Activity per moat root (valid at roots).
    pub act: Vec<bool>,
    /// Radius per terminal.
    pub rad: Vec<Dyadic>,
    /// Node-level union-find for cycle-free path insertion.
    pub node_uf: UnionFind,
    /// Accumulated raw output edges.
    pub raw_edges: Vec<EdgeId>,
}

/// A candidate meeting event between two moats.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Meeting {
    /// Growth needed before the moats touch.
    pub mu: Dyadic,
    /// Terminal indices (`a < b` by node id).
    pub a: usize,
    /// See [`Meeting::a`].
    pub b: usize,
    /// Whether one side is inactive.
    pub with_inactive: bool,
}

impl<'a> Grower<'a> {
    pub(crate) fn new(g: &'a WeightedGraph, inst: &Instance) -> Self {
        // Lemma 2.4: drop singleton components first.
        let minimal = inst.make_minimal();
        let terms = minimal.terminals();
        let sp: Vec<ShortestPaths> = terms
            .iter()
            .map(|&t| dijkstra::shortest_paths(g, t))
            .collect();
        let k = minimal.k();
        let mut label_total = vec![0usize; k];
        let mut term_label = vec![0usize; terms.len()];
        for (i, &t) in terms.iter().enumerate() {
            let l = minimal.label(t).expect("terminal has a label").idx();
            term_label[i] = l;
            label_total[l] += 1;
        }
        let tlen = terms.len();
        Grower {
            g,
            terms,
            sp,
            moats: UnionFind::new(tlen),
            labels: UnionFind::new(k),
            label_total,
            moat_label: term_label,
            act: vec![true; tlen],
            rad: vec![Dyadic::ZERO; tlen],
            node_uf: UnionFind::new(g.n()),
            raw_edges: Vec::new(),
        }
    }

    /// Activity of the moat containing terminal index `i`.
    pub(crate) fn is_active(&mut self, i: usize) -> bool {
        let r = self.moats.find(i);
        self.act[r]
    }

    /// Number of active moats.
    pub(crate) fn active_moats(&mut self) -> usize {
        let n = self.terms.len();
        (0..n)
            .filter(|&i| self.moats.find(i) == i && self.act[i])
            .count()
    }

    /// The next meeting event: minimum over moat pairs of the growth needed,
    /// ties broken by `(μ, a, b)` — the paper's lexicographic convention.
    pub(crate) fn next_meeting(&mut self) -> Option<Meeting> {
        let n = self.terms.len();
        let mut best: Option<Meeting> = None;
        for a in 0..n {
            for b in (a + 1)..n {
                if self.moats.same(a, b) {
                    continue;
                }
                let (act_a, act_b) = (self.is_active(a), self.is_active(b));
                if !act_a && !act_b {
                    continue;
                }
                let wd = Dyadic::from_weight(self.sp[a].dist[self.terms[b].idx()]);
                let gap = wd - self.rad[a] - self.rad[b];
                debug_assert!(!gap.is_negative(), "moats overlap before meeting");
                let (mu, with_inactive) = if act_a && act_b {
                    (gap.half(), false)
                } else {
                    (gap, true)
                };
                let cand = Meeting {
                    mu,
                    a,
                    b,
                    with_inactive,
                };
                let better = match best {
                    None => true,
                    Some(cur) => (mu, a, b) < (cur.mu, cur.a, cur.b),
                };
                if better {
                    best = Some(cand);
                }
            }
        }
        best
    }

    /// Grows all active moats by `mu`.
    pub(crate) fn grow_by(&mut self, mu: Dyadic) {
        let n = self.terms.len();
        for i in 0..n {
            if self.is_active(i) {
                self.rad[i] += mu;
            }
        }
    }

    /// Adds the least-weight `a`–`b` path to the raw edge set (dropping
    /// cycle-closing edges) and merges the moats; returns the added edges
    /// and whether the merged moat is active.
    ///
    /// Activity handling is parameterized: Algorithm 1 re-evaluates the new
    /// moat immediately (`defer_deactivation = false`); Algorithm 2 keeps
    /// merged moats active until the next growth-phase checkpoint.
    pub(crate) fn merge(&mut self, m: Meeting, defer_deactivation: bool) -> (Vec<EdgeId>, bool) {
        let (a, b) = (m.a, m.b);
        let path = self.sp[a].path_edges(self.terms[b]);
        let mut added = Vec::new();
        for e in path {
            let ed = self.g.edge(e);
            if self.node_uf.union(ed.u.idx(), ed.v.idx()) {
                self.raw_edges.push(e);
                added.push(e);
            }
        }
        let (ra, rb) = (self.moats.find(a), self.moats.find(b));
        let (la, lb) = (
            self.labels.find(self.moat_label[ra]),
            self.labels.find(self.moat_label[rb]),
        );
        // Union label classes; totals accumulate at the new class root.
        if la != lb {
            self.labels.union(la, lb);
            let lroot = self.labels.find(la);
            self.label_total[lroot] = self.label_total[la] + self.label_total[lb];
        }
        let lroot = self.labels.find(la);
        self.moats.union(a, b);
        let mroot = self.moats.find(a);
        self.moat_label[mroot] = lroot;
        let active = if defer_deactivation {
            true
        } else {
            // Inactive iff the merged moat contains its whole label class.
            self.moats.set_size(mroot) != self.label_total[lroot]
        };
        self.act[mroot] = active;
        (added, active)
    }

    /// Re-evaluates the activity of every moat (Algorithm 2's checkpoint,
    /// lines 20–25): a moat becomes inactive iff it is the only moat
    /// carrying its label class.
    pub(crate) fn checkpoint_activities(&mut self) {
        let n = self.terms.len();
        for i in 0..n {
            if self.moats.find(i) == i {
                let lroot = self.labels.find(self.moat_label[i]);
                self.act[i] = self.moats.set_size(i) != self.label_total[lroot];
            }
        }
    }
}

/// Runs Algorithm 1 on `inst` (auto-minimalized per Lemma 2.4).
pub fn grow(g: &WeightedGraph, inst: &Instance) -> MoatRun {
    let mut gr = Grower::new(g, inst);
    let mut merges = Vec::new();
    let mut dual = Dyadic::ZERO;
    let mut index = 0;
    loop {
        let act_count = gr.active_moats();
        if act_count == 0 {
            break;
        }
        let m = gr
            .next_meeting()
            .expect("active moats always have a next meeting on a connected graph");
        index += 1;
        dual += m.mu.mul_int(act_count as i128);
        gr.grow_by(m.mu);
        let (added, new_active) = gr.merge(m, false);
        merges.push(MergeEvent {
            index,
            v: gr.terms[m.a],
            w: gr.terms[m.b],
            mu: m.mu,
            active_moats: act_count,
            joined_inactive: m.with_inactive,
            new_moat_active: new_active,
            added_edges: added,
        });
    }
    let raw = ForestSolution::from_edges(gr.raw_edges.clone());
    let forest = raw.prune_to_minimal(g, inst);
    MoatRun {
        forest,
        raw,
        merges,
        dual,
        radii: gr.rad.clone(),
        terminals: gr.terms.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact;
    use crate::instance::{random_instance, InstanceBuilder};
    use dsf_graph::generators;

    #[test]
    fn two_terminals_get_shortest_path() {
        let g = generators::path(5, 2);
        let inst = InstanceBuilder::new(&g)
            .component(&[NodeId(0), NodeId(4)])
            .build()
            .unwrap();
        let run = grow(&g, &inst);
        assert_eq!(run.forest.weight(&g), 8);
        assert_eq!(run.merges.len(), 1);
        // Dual for a single pair: both moats grow to wd/2 each; the single
        // merge contributes act=2 times mu=wd/2 = wd.
        assert_eq!(run.dual, Dyadic::from_int(8));
    }

    #[test]
    fn feasible_forest_and_two_approx_on_random_instances() {
        for seed in 0..12 {
            let g = generators::gnp_connected(18, 0.25, 12, seed);
            let inst = random_instance(&g, 3, 2, seed + 100);
            let run = grow(&g, &inst);
            assert!(inst.is_feasible(&g, &run.forest), "seed {seed}");
            assert!(run.forest.is_forest(&g), "seed {seed}");
            let w = run.forest.weight(&g) as f64;
            // Theorem 4.1 via Lemma C.4: W(F) < 2·dual.
            assert!(
                w < 2.0 * run.dual.to_f64() + 1e-9,
                "seed {seed}: w={w} dual={}",
                run.dual.to_f64()
            );
            // And the dual really lower-bounds OPT.
            let opt = exact::solve(&g, &inst).weight as f64;
            assert!(
                run.dual.to_f64() <= opt + 1e-9,
                "seed {seed}: dual={} opt={opt}",
                run.dual.to_f64()
            );
            assert!(w <= 2.0 * opt + 1e-9, "seed {seed}: ratio violated");
        }
    }

    #[test]
    fn steiner_tree_case_matches_terminal_mst_bound() {
        // k = 1: output is induced by an MST on the terminal metric
        // (paper Section 1, Main Techniques). On a star with unit arms the
        // optimum is the star itself.
        let g = generators::star(6, 1, 0);
        let inst = InstanceBuilder::new(&g)
            .component(&(1..6).map(NodeId).collect::<Vec<_>>())
            .build()
            .unwrap();
        let run = grow(&g, &inst);
        assert_eq!(run.forest.weight(&g), 5);
    }

    #[test]
    fn inactive_moats_stop_growing() {
        // Path 0-1-2-3-4-5 (unit weights); components {0,1} and {4,5}.
        // Each pair meets at radius 1/2 and deactivates; the two moats must
        // NOT be joined afterwards.
        let g = generators::path(6, 1);
        let inst = InstanceBuilder::new(&g)
            .component(&[NodeId(0), NodeId(1)])
            .component(&[NodeId(4), NodeId(5)])
            .build()
            .unwrap();
        let run = grow(&g, &inst);
        assert_eq!(run.merges.len(), 2);
        assert_eq!(run.forest.weight(&g), 2);
        assert!(run.merges.iter().all(|m| !m.new_moat_active));
    }

    #[test]
    fn mixed_activity_merge() {
        // Path 0 -4- 1 -2- 2 -4- 3 -4- 4. Component A = {0, 4} spans the
        // whole path; component B = {1, 2} satisfies itself early (its moats
        // meet at μ = 1 and deactivate). A's solution must then absorb B's
        // inactive moat on its way — an active-inactive merge (μ'' event).
        let mut b = dsf_graph::GraphBuilder::new(5);
        for (i, w) in [4u64, 2, 4, 4].iter().enumerate() {
            b.add_edge(NodeId(i as u32), NodeId(i as u32 + 1), *w)
                .unwrap();
        }
        let g = b.build().unwrap();
        let inst = InstanceBuilder::new(&g)
            .component(&[NodeId(0), NodeId(4)])
            .component(&[NodeId(1), NodeId(2)])
            .build()
            .unwrap();
        let run = grow(&g, &inst);
        assert!(inst.is_feasible(&g, &run.forest));
        // The whole path is needed: weight 14.
        assert_eq!(run.forest.weight(&g), 14);
        assert!(run.merges.iter().any(|m| m.joined_inactive));
        // B's self-merge deactivates its moat.
        assert!(run.merges.iter().any(|m| !m.new_moat_active));
    }

    #[test]
    fn singleton_components_are_dropped() {
        let g = generators::path(4, 1);
        let inst = InstanceBuilder::new(&g)
            .component(&[NodeId(0)])
            .component(&[NodeId(2), NodeId(3)])
            .build()
            .unwrap();
        let run = grow(&g, &inst);
        assert_eq!(run.terminals, vec![NodeId(2), NodeId(3)]);
        assert_eq!(run.forest.weight(&g), 1);
    }

    #[test]
    fn empty_instance_empty_output() {
        let g = generators::path(3, 1);
        let inst = InstanceBuilder::new(&g).build().unwrap();
        let run = grow(&g, &inst);
        assert!(run.forest.is_empty());
        assert!(run.merges.is_empty());
        assert!(run.dual.is_zero());
    }

    #[test]
    fn radii_are_nonnegative_and_bounded_by_half_wd() {
        // Lemma F.1's argument: Σμᵢ ≤ WD/2, so no radius exceeds WD/2.
        for seed in 0..6 {
            let g = generators::gnp_connected(14, 0.3, 9, seed);
            let inst = random_instance(&g, 2, 3, seed);
            let run = grow(&g, &inst);
            let wd = dsf_graph::metrics::weighted_diameter(&g) as f64;
            for r in &run.radii {
                assert!(!r.is_negative(), "seed {seed}: negative radius");
                assert!(r.to_f64() <= wd / 2.0 + 1e-9, "seed {seed}: radius > WD/2");
            }
        }
    }

    #[test]
    fn merge_count_is_terminals_minus_components_of_gc() {
        // Every merge joins two distinct moats: imax ≤ t - 1, and the
        // number of merges equals t minus the surviving moat count.
        let g = generators::gnp_connected(15, 0.3, 8, 4);
        let inst = random_instance(&g, 3, 2, 4);
        let run = grow(&g, &inst);
        assert!(run.merges.len() <= run.terminals.len().saturating_sub(1));
    }

    #[test]
    fn dual_matches_hand_computation_on_triangle() {
        // Triangle with weights 2,2,3; terminals all in one component.
        // Moats: three active moats, first meeting on a weight-2 edge at
        // mu = 1 (act = 3). Then two moats, gap on the other weight-2
        // edge: wd=2, radii 1+1 -> gap 0, mu = 0 (act = 2). Dual = 3.
        let mut b = dsf_graph::GraphBuilder::new(3);
        b.add_edge(NodeId(0), NodeId(1), 2).unwrap();
        b.add_edge(NodeId(1), NodeId(2), 2).unwrap();
        b.add_edge(NodeId(0), NodeId(2), 3).unwrap();
        let g = b.build().unwrap();
        let inst = InstanceBuilder::new(&g)
            .component(&[NodeId(0), NodeId(1), NodeId(2)])
            .build()
            .unwrap();
        let run = grow(&g, &inst);
        assert_eq!(run.dual, Dyadic::from_int(3));
        assert_eq!(run.forest.weight(&g), 4);
    }
}
