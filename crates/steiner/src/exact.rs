//! Exact Steiner forest solver for small instances.
//!
//! An optimal Steiner forest is a disjoint union of trees, each of which
//! contains some subset of the input components *entirely* and is an optimal
//! Steiner tree for the union of their terminals. Therefore
//!
//! ```text
//! OPT = min over partitions P of the components
//!           Σ_{block B ∈ P} SteinerTree(terminals(B))
//! ```
//!
//! We enumerate partitions (restricted-growth strings) and solve each block
//! with Dreyfus–Wagner. Feasible for `k ≤ 10`, `t ≤ 14` — exactly the scale
//! of the approximation-ratio experiments (E1/E2/E5).

use std::collections::HashMap;

use dsf_graph::dreyfus_wagner;
use dsf_graph::{EdgeId, NodeId, Weight, WeightedGraph};

use crate::instance::Instance;
use crate::solution::ForestSolution;

/// An optimal solution with its weight.
#[derive(Debug, Clone)]
pub struct ExactSolution {
    /// Optimal weight.
    pub weight: Weight,
    /// An optimal forest.
    pub forest: ForestSolution,
}

/// Solves `inst` exactly.
///
/// # Panics
///
/// Panics if the (minimalized) instance has more than 10 components or more
/// than 16 terminals — the DP would be infeasible.
pub fn solve(g: &WeightedGraph, inst: &Instance) -> ExactSolution {
    let inst = inst.make_minimal();
    let k = inst.k();
    assert!(k <= 10, "exact solver limited to 10 components, got {k}");
    assert!(
        inst.t() <= 16,
        "exact solver limited to 16 terminals, got {}",
        inst.t()
    );
    if k == 0 {
        return ExactSolution {
            weight: 0,
            forest: ForestSolution::empty(),
        };
    }

    // Memoized Steiner tree per block (bitmask of component indices).
    let mut block_cache: HashMap<u32, (Weight, Vec<EdgeId>)> = HashMap::new();
    let block = |mask: u32, cache: &mut HashMap<u32, (Weight, Vec<EdgeId>)>| -> Weight {
        if let Some((w, _)) = cache.get(&mask) {
            return *w;
        }
        let mut terms: Vec<NodeId> = Vec::new();
        for c in 0..k {
            if mask & (1 << c) != 0 {
                terms.extend_from_slice(inst.components()[c].as_slice());
            }
        }
        let st = dreyfus_wagner::steiner_tree(g, &terms);
        let w = st.weight;
        cache.insert(mask, (w, st.edges));
        w
    };

    // Enumerate set partitions via restricted growth strings.
    let mut best_weight = Weight::MAX;
    let mut best_blocks: Vec<u32> = Vec::new();
    let mut assignment = vec![0usize; k];
    // rgs[i] <= max(rgs[0..i]) + 1
    fn enumerate(
        i: usize,
        k: usize,
        max_used: usize,
        assignment: &mut Vec<usize>,
        out: &mut dyn FnMut(&[usize]),
    ) {
        if i == k {
            out(assignment);
            return;
        }
        for b in 0..=max_used + 1 {
            assignment[i] = b;
            enumerate(i + 1, k, max_used.max(b), assignment, out);
        }
    }
    let mut consider = |asg: &[usize]| {
        let nblocks = asg.iter().copied().max().unwrap_or(0) + 1;
        let mut masks = vec![0u32; nblocks];
        for (c, &b) in asg.iter().enumerate() {
            masks[b] |= 1 << c;
        }
        let total: Weight = masks
            .iter()
            .map(|&m| block(m, &mut block_cache))
            .fold(0, Weight::saturating_add);
        if total < best_weight {
            best_weight = total;
            best_blocks = masks;
        }
    };
    enumerate(1, k, 0, &mut assignment, &mut consider);
    if k >= 1 && best_blocks.is_empty() {
        // k == 1 shortcut (enumerate(1,..) already covers it via the single
        // call with assignment [0]); defensive fallback:
        best_blocks = vec![1];
        best_weight = block(1, &mut block_cache);
    }

    let mut edges: Vec<EdgeId> = Vec::new();
    for &m in &best_blocks {
        edges.extend_from_slice(&block_cache[&m].1);
    }
    ExactSolution {
        weight: best_weight,
        forest: ForestSolution::from_edges(edges),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::{random_instance, InstanceBuilder};
    use dsf_graph::generators;

    #[test]
    fn single_component_equals_dreyfus_wagner() {
        let g = generators::gnp_connected(14, 0.3, 9, 2);
        let terms = [NodeId(0), NodeId(5), NodeId(9), NodeId(13)];
        let inst = InstanceBuilder::new(&g).component(&terms).build().unwrap();
        let ex = solve(&g, &inst);
        let dw = dreyfus_wagner::steiner_tree(&g, &terms);
        assert_eq!(ex.weight, dw.weight);
        assert!(inst.is_feasible(&g, &ex.forest));
    }

    #[test]
    fn merging_components_can_beat_separate_trees() {
        // Path 0-1-2-3 with unit weights; components {0,2} and {1,3}.
        // Separate trees: {0..2} (2) + {1..3} (2) = 4 — but they overlap,
        // so the best *partition into one block* uses edges 0,1,2 = 3.
        let g = generators::path(4, 1);
        let inst = InstanceBuilder::new(&g)
            .component(&[NodeId(0), NodeId(2)])
            .component(&[NodeId(1), NodeId(3)])
            .build()
            .unwrap();
        let ex = solve(&g, &inst);
        assert_eq!(ex.weight, 3);
        assert!(inst.is_feasible(&g, &ex.forest));
    }

    #[test]
    fn separate_components_stay_separate() {
        // Two far-apart cheap pairs joined by an expensive bridge.
        let mut b = dsf_graph::GraphBuilder::new(4);
        b.add_edge(NodeId(0), NodeId(1), 1).unwrap();
        b.add_edge(NodeId(2), NodeId(3), 1).unwrap();
        b.add_edge(NodeId(1), NodeId(2), 100).unwrap();
        let g = b.build().unwrap();
        let inst = InstanceBuilder::new(&g)
            .component(&[NodeId(0), NodeId(1)])
            .component(&[NodeId(2), NodeId(3)])
            .build()
            .unwrap();
        let ex = solve(&g, &inst);
        assert_eq!(ex.weight, 2);
    }

    #[test]
    fn exact_lower_bounds_moat_growing() {
        for seed in 0..10 {
            let g = generators::gnp_connected(16, 0.3, 10, seed);
            let inst = random_instance(&g, 3, 2, seed);
            let ex = solve(&g, &inst);
            let run = crate::moat::grow(&g, &inst);
            assert!(ex.weight <= run.forest.weight(&g), "seed {seed}");
            assert!(inst.is_feasible(&g, &ex.forest), "seed {seed}");
        }
    }

    #[test]
    fn empty_instance() {
        let g = generators::path(3, 1);
        let inst = InstanceBuilder::new(&g).build().unwrap();
        assert_eq!(solve(&g, &inst).weight, 0);
    }
}
