//! Property-based tests for the local-search improver: on random
//! corpus-style instances, `improve` is feasibility-preserving (via the
//! conformance oracle's `assert_feasible_forest`), monotonically
//! non-increasing in weight per accepted move, deterministic, and
//! idempotent at a local optimum.

use proptest::prelude::*;

use dsf_graph::{generators, EdgeId};
use dsf_steiner::{greedy, local_search, random_instance, ForestSolution};
use dsf_workloads::conformance::assert_feasible_forest;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Feasibility is preserved from any feasible starting point — here
    /// the full edge set, the loosest feasible solution there is.
    #[test]
    fn improve_preserves_feasibility(seed in 0u64..500, n in 8usize..26, k in 1usize..4) {
        let g = generators::gnp_connected(n, 0.25, 12, seed);
        let inst = random_instance(&g, k, 2, seed);
        let all: ForestSolution = (0..g.m() as u32).map(EdgeId).collect();
        let out = local_search::improve(&g, &inst, &all);
        assert_feasible_forest(&g, &inst, &out, &format!("improve, seed {seed}"));
        prop_assert!(out.weight(&g) <= all.weight(&g));
    }

    /// The per-move weight trace is strictly decreasing, and never rises
    /// above the (normalized) starting weight.
    #[test]
    fn accepted_moves_strictly_decrease_weight(seed in 0u64..500, n in 8usize..24) {
        let g = generators::gnp_connected(n, 0.3, 10, seed);
        let inst = random_instance(&g, 3, 2, seed);
        let all: ForestSolution = (0..g.m() as u32).map(EdgeId).collect();
        let out = local_search::improve_detailed(&g, &inst, &all);
        prop_assert!(!out.capped);
        let mut prev = all.weight(&g);
        for &(kind, w) in &out.accepted {
            prop_assert!(w < prev, "{kind:?} went {prev} -> {w}");
            prev = w;
        }
        if let Some(&(_, last)) = out.accepted.last() {
            prop_assert_eq!(out.forest.weight(&g), last);
        }
    }

    /// Same input, same output — byte-for-byte, trace included.
    #[test]
    fn improve_is_deterministic(seed in 0u64..500, n in 8usize..22) {
        let g = generators::gnp_connected(n, 0.25, 11, seed);
        let inst = random_instance(&g, 2, 3, seed);
        let start = greedy::solve_greedy(&g, &inst);
        let a = local_search::improve_detailed(&g, &inst, &start);
        let b = local_search::improve_detailed(&g, &inst, &start);
        prop_assert_eq!(a.forest, b.forest);
        prop_assert_eq!(a.accepted, b.accepted);
    }

    /// A local optimum is a fixed point: improving twice changes nothing
    /// and the second pass accepts zero moves.
    #[test]
    fn improve_is_idempotent_at_a_local_optimum(seed in 0u64..500, n in 8usize..22) {
        let g = generators::gnp_connected(n, 0.3, 9, seed);
        let inst = random_instance(&g, 3, 2, seed);
        let once = local_search::improve(&g, &inst, &greedy::solve_greedy(&g, &inst));
        let again = local_search::improve_detailed(&g, &inst, &once);
        prop_assert_eq!(&again.forest, &once);
        prop_assert!(again.accepted.is_empty(),
            "second pass still found moves: {:?}", again.accepted);
    }

    /// Improving the greedy solution never does worse than greedy — the
    /// pairing the conformance lab reports as `greedy+local_search`.
    #[test]
    fn improved_greedy_never_loses_to_greedy(seed in 0u64..500, n in 10usize..24) {
        let g = generators::gnp_connected(n, 0.25, 10, seed);
        let inst = random_instance(&g, 3, 3, seed);
        let start = greedy::solve_greedy(&g, &inst);
        let out = local_search::improve(&g, &inst, &start);
        prop_assert!(out.weight(&g) <= start.weight(&g));
        assert_feasible_forest(&g, &inst, &out, &format!("greedy+improve, seed {seed}"));
    }
}
