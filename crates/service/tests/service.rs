//! Acceptance tests of the batched service: scheduling must be invisible
//! in the results, and warm sessions must stop allocating.

use std::sync::Arc;

use dsf_graph::{generators, NodeId};
use dsf_service::{
    JobOutcome, ServiceConfig, SolveRequest, SolverKind, SolverService, SolverSession,
};
use dsf_steiner::InstanceBuilder;

/// A deterministic mixed batch: two graphs, all four solver kinds, a few
/// seeds.
fn mixed_requests() -> Vec<SolveRequest> {
    let g1 = Arc::new(generators::gnp_connected(24, 0.18, 9, 3));
    let g2 = Arc::new(generators::grid(4, 6, 8, 1));
    let i1 = InstanceBuilder::new(&g1)
        .component(&[NodeId(0), NodeId(11), NodeId(21)])
        .component(&[NodeId(4), NodeId(17)])
        .build()
        .unwrap();
    let i2 = InstanceBuilder::new(&g2)
        .component(&[NodeId(0), NodeId(23)])
        .component(&[NodeId(5), NodeId(18)])
        .build()
        .unwrap();
    let mut reqs = Vec::new();
    for (seed, &solver) in SolverKind::ALL.iter().enumerate().flat_map(|(s, k)| {
        // Two seeds per kind, alternating graphs: 8 jobs.
        [(s as u64, k), (s as u64 + 10, k)]
    }) {
        let (g, inst) = if seed % 2 == 0 {
            (g1.clone(), i1.clone())
        } else {
            (g2.clone(), i2.clone())
        };
        reqs.push(SolveRequest::new(
            format!("{}-{seed}", solver.name()),
            g,
            inst,
            solver,
            seed,
        ));
    }
    reqs
}

/// The one-at-a-time reference: every request on its own fresh session.
fn sequential(requests: &[SolveRequest]) -> Vec<JobOutcome> {
    requests
        .iter()
        .map(|r| SolverSession::new().solve(r).expect("clean solve"))
        .collect()
}

#[test]
fn batched_results_are_bit_identical_to_sequential_at_every_worker_count() {
    let requests = mixed_requests();
    let baseline = sequential(&requests);
    for workers in [1, 2, 4] {
        let mut service = SolverService::new(ServiceConfig {
            workers,
            ..Default::default()
        });
        let report = service.run_batch(&requests).expect("clean batch");
        assert_eq!(report.workers, workers);
        assert_eq!(report.jobs.len(), baseline.len());
        assert!(report.violations.is_empty(), "{:?}", report.violations);
        for (job, reference) in report.jobs.iter().zip(&baseline) {
            assert!(
                job.deterministic_eq(reference),
                "workers={workers}: job {} diverged from the sequential solve",
                job.id
            );
        }
    }
}

#[test]
fn warm_sessions_allocate_no_arenas_in_steady_state() {
    let requests = mixed_requests();
    let mut service = SolverService::new(ServiceConfig {
        workers: 2,
        ..Default::default()
    });
    let warmup = service.run_batch(&requests).expect("clean batch");
    let warm = service.pool_stats();
    assert!(warm.builds > 0, "the cold batch must have built arenas");
    // Steady state: the identical batch again — all arena checkouts must
    // now be in-place reuses, zero new allocations.
    let steady = service.run_batch(&requests).expect("clean batch");
    let stats = service.pool_stats();
    assert_eq!(
        stats.builds, warm.builds,
        "steady-state solves must not allocate arenas"
    );
    assert!(stats.reuses > warm.reuses, "reuse counters must grow");
    // And reuse must not have perturbed any result.
    for (a, b) in warmup.jobs.iter().zip(&steady.jobs) {
        assert!(a.deterministic_eq(b));
    }
}

#[test]
fn large_jobs_take_the_whole_pool_and_still_match_sequential() {
    let requests = mixed_requests();
    let baseline = sequential(&requests);
    // Threshold 1 node: every job is "large" and runs through the sharded
    // whole-pool path.
    let mut service = SolverService::new(ServiceConfig {
        workers: 4,
        large_node_threshold: 1,
    });
    let report = service.run_batch(&requests).expect("clean batch");
    for (job, reference) in report.jobs.iter().zip(&baseline) {
        assert!(
            job.deterministic_eq(reference),
            "sharded large-job path diverged on {}",
            job.id
        );
    }
}

#[test]
fn report_carries_ratios_and_request_order() {
    let g = Arc::new(generators::path(6, 2));
    let inst = InstanceBuilder::new(&g)
        .component(&[NodeId(0), NodeId(5)])
        .build()
        .unwrap();
    // OPT on a weight-2 path of 5 edges is exactly 10.
    let requests: Vec<_> = (0..3)
        .map(|seed| {
            SolveRequest::new(
                format!("p{seed}"),
                g.clone(),
                inst.clone(),
                SolverKind::Deterministic,
                seed,
            )
            .with_cert_upper(10)
        })
        .collect();
    let mut service = SolverService::new(ServiceConfig {
        workers: 2,
        ..Default::default()
    });
    let report = service.run_batch(&requests).expect("clean batch");
    assert_eq!(
        report.total_rounds(),
        report.jobs.iter().map(|j| j.rounds()).sum::<u64>()
    );
    for (i, job) in report.jobs.iter().enumerate() {
        assert_eq!(job.id, format!("p{i}"), "request order preserved");
        assert_eq!(job.weight, 10);
        assert_eq!(job.ratio_milli, Some(1000));
    }
}

#[test]
fn exactly_threshold_nodes_schedules_as_large() {
    // Docs say "at least this many nodes" is large — pin the boundary:
    // a graph with *exactly* threshold nodes must take the sharded
    // large-job path, not the round-robin small path.
    let g = Arc::new(generators::gnp_connected(24, 0.18, 9, 3));
    let cfg = ServiceConfig {
        workers: 2,
        large_node_threshold: g.n(),
    };
    assert!(cfg.is_large(g.n()), "n == threshold is large");
    assert!(!cfg.is_large(g.n() - 1), "n == threshold - 1 is small");

    // And the classification is invisible in the results: the same batch
    // matches sequential solves whether it ran large (threshold == n) or
    // small (threshold == n + 1).
    let inst = InstanceBuilder::new(&g)
        .component(&[NodeId(0), NodeId(11), NodeId(21)])
        .build()
        .unwrap();
    let requests: Vec<_> = (0..3)
        .map(|seed| {
            SolveRequest::new(
                format!("b{seed}"),
                g.clone(),
                inst.clone(),
                SolverKind::Randomized,
                seed,
            )
        })
        .collect();
    let baseline = sequential(&requests);
    for threshold in [g.n(), g.n() + 1] {
        let mut service = SolverService::new(ServiceConfig {
            workers: 2,
            large_node_threshold: threshold,
        });
        let report = service.run_batch(&requests).expect("clean batch");
        for (job, reference) in report.jobs.iter().zip(&baseline) {
            assert!(
                job.deterministic_eq(reference),
                "threshold={threshold} drifted on {}",
                job.id
            );
        }
    }
}

#[test]
fn zero_workers_clamps_to_one() {
    let service = SolverService::new(ServiceConfig {
        workers: 0,
        large_node_threshold: 1000,
    });
    assert_eq!(service.workers(), 1);
    assert_eq!(service.session_stats().len(), 1);
}
