//! Property tests over random delta sequences: whatever order demands
//! arrive, depart, and edges get re-priced, the cached forest a
//! [`SolverSession`] repairs must keep its invariants at every step —
//! feasible on the current instance, never heavier than a fresh greedy
//! solve of that instance, empty again once the last demand departs,
//! and an add-then-remove round trip never leaves the forest heavier
//! than before it.

use std::sync::Arc;

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use dsf_graph::{generators, EdgeId, NodeId, WeightedGraph};
use dsf_service::{DemandId, SolverSession};
use dsf_steiner::{greedy, InstanceBuilder};
use dsf_workloads::conformance::check_feasible_forest;

/// The active demand set a replayed session should be holding.
struct Mirror {
    demands: Vec<(DemandId, Vec<NodeId>)>,
    free: Vec<NodeId>,
}

impl Mirror {
    fn new(n: usize) -> Self {
        Mirror {
            demands: Vec::new(),
            free: (0..n).map(NodeId::from).collect(),
        }
    }

    /// Samples 2–3 currently-unused terminals (keeps arrivals disjoint
    /// from every active terminal, the instance rule).
    fn sample_terminals(&mut self, rng: &mut StdRng) -> Vec<NodeId> {
        let want = 2 + rng
            .gen_range(0..2usize)
            .min(self.free.len().saturating_sub(2));
        let mut terms = Vec::with_capacity(want);
        for _ in 0..want {
            let at = rng.gen_range(0..self.free.len());
            terms.push(self.free.swap_remove(at));
        }
        terms.sort_unstable();
        terms
    }

    fn release(&mut self, terms: &[NodeId]) {
        self.free.extend_from_slice(terms);
    }

    /// Greedy's weight on the instance built from the active demands.
    fn greedy_weight(&self, g: &WeightedGraph) -> u64 {
        let mut b = InstanceBuilder::new(g);
        for (_, terms) in &self.demands {
            b = b.component(terms);
        }
        let inst = b.build().expect("mirror demands stay disjoint");
        greedy::solve_greedy(g, &inst).weight(g)
    }

    /// Checks the session's cached forest against the mirrored state.
    fn check(&self, session: &SolverSession, g: &WeightedGraph, ctx: &str) -> Result<(), String> {
        let forest = session.cached_forest().expect("graph is installed");
        let mut b = InstanceBuilder::new(g);
        for (_, terms) in &self.demands {
            b = b.component(terms);
        }
        let inst = b.build().expect("mirror demands stay disjoint");
        check_feasible_forest(g, &inst, forest).map_err(|e| format!("{ctx}: {e}"))?;
        let w = forest.weight(g);
        let gw = self.greedy_weight(g);
        if w > gw {
            return Err(format!("{ctx}: repaired weight {w} above greedy's {gw}"));
        }
        Ok(())
    }
}

/// Strategy: a connected graph spec plus a delta-sequence seed.
fn case() -> impl Strategy<Value = (u64, usize, f64, usize)> {
    (
        0u64..1000,  // delta-sequence seed
        8usize..18,  // n
        0.2f64..0.5, // p
        6usize..14,  // delta count
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random interleavings of add/remove/reweight keep the cached
    /// forest feasible and never heavier than a fresh greedy solve of
    /// the current instance, after every single delta.
    #[test]
    fn random_delta_sequences_keep_the_cached_forest_invariants(
        (seed, n, p, steps) in case()
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut graph = Arc::new(generators::gnp_connected(n, p, 10, seed));
        let mut session = SolverSession::new();
        prop_assert!(session.install_graph(graph.clone()));
        let mut mirror = Mirror::new(n);
        for i in 0..steps {
            let roll = rng.gen_range(0..100u32);
            // Cap active components at 4 so arrivals always ride the
            // small-instance race: the invariant below is the raced
            // guarantee (repaired ≤ from-scratch ≤ greedy).
            if mirror.demands.len() >= 4 || (roll >= 60 && !mirror.demands.is_empty()) {
                if roll < 80 || mirror.demands.len() >= 4 {
                    let at = rng.gen_range(0..mirror.demands.len());
                    let (id, terms) = mirror.demands.remove(at);
                    session.remove_demand(id).map_err(|e| {
                        TestCaseError::Fail(format!("step {i}: remove failed: {e}"))
                    })?;
                    mirror.release(&terms);
                } else {
                    let e = EdgeId(rng.gen_range(0..graph.m()) as u32);
                    let old = graph.weight(e);
                    let mut w = 1 + rng.gen_range(0..10u64);
                    if w == old {
                        w += 1;
                    }
                    session.reweight_edge(e, w).map_err(|err| {
                        TestCaseError::Fail(format!("step {i}: reweight failed: {err}"))
                    })?;
                    let mut edges = graph.edges().to_vec();
                    edges[e.idx()].w = w;
                    graph = Arc::new(
                        WeightedGraph::from_edges(graph.n(), edges)
                            .expect("re-pricing a valid graph stays valid"),
                    );
                }
            } else if mirror.free.len() >= 2 {
                let terms = mirror.sample_terminals(&mut rng);
                let (id, _) = session.add_demand(&terms).map_err(|e| {
                    TestCaseError::Fail(format!("step {i}: add failed: {e}"))
                })?;
                mirror.demands.push((id, terms));
            }
            mirror
                .check(&session, &graph, &format!("step {i}"))
                .map_err(TestCaseError::Fail)?;
        }
    }

    /// Removing the last active demand rolls the forest all the way
    /// back to empty — no orphaned edges survive a full drain.
    #[test]
    fn removing_the_last_demand_yields_the_empty_forest(
        (seed, n, p, _) in case()
    ) {
        let g = Arc::new(generators::gnp_connected(n, p, 10, seed));
        let mut session = SolverSession::new();
        prop_assert!(session.install_graph(g.clone()));
        let mut rng = StdRng::seed_from_u64(seed ^ 0x9e37);
        let mut mirror = Mirror::new(n);
        let mut ids = Vec::new();
        for _ in 0..3 {
            let terms = mirror.sample_terminals(&mut rng);
            let (id, _) = session.add_demand(&terms).unwrap();
            ids.push(id);
        }
        while let Some(id) = ids.pop() {
            let out = session.remove_demand(id).unwrap();
            if ids.is_empty() {
                prop_assert!(out.forest.edges().is_empty(), "drained forest kept edges");
                prop_assert_eq!(out.weight, 0);
            }
        }
    }

    /// An add immediately undone by its removal never leaves the
    /// surviving forest heavier than before the round trip.
    #[test]
    fn add_then_remove_round_trips_no_heavier(
        (seed, n, p, _) in case()
    ) {
        let g = Arc::new(generators::gnp_connected(n, p, 10, seed));
        let mut session = SolverSession::new();
        prop_assert!(session.install_graph(g.clone()));
        let mut rng = StdRng::seed_from_u64(seed ^ 0x517c);
        let mut mirror = Mirror::new(n);
        for _ in 0..2 {
            let terms = mirror.sample_terminals(&mut rng);
            session.add_demand(&terms).unwrap();
        }
        let before = session.cached_forest().unwrap().weight(&g);
        let terms = mirror.sample_terminals(&mut rng);
        let (id, _) = session.add_demand(&terms).unwrap();
        let out = session.remove_demand(id).unwrap();
        prop_assert!(
            out.weight <= before,
            "round trip went {before} -> {}", out.weight
        );
    }
}
