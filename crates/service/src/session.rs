//! A reusable solver session: one warm [`BufferPool`] carried across
//! solves.

use std::time::Instant;

use dsf_baselines::khan::{solve_khan, KhanConfig};
use dsf_baselines::solve_collect_at_root;
use dsf_congest::{with_threads, BufferPool, PoolStats, RoundLedger, SimError};
use dsf_core::det::{solve_deterministic, DetConfig};
use dsf_core::randomized::{solve_randomized, RandConfig};
use dsf_steiner::ForestSolution;

use crate::report::JobOutcome;
use crate::request::{SolveRequest, SolverKind};

/// A pooled solver session.
///
/// A session owns a [`BufferPool`] and installs it around every solve, so
/// all the CONGEST stages inside a solver check their slot arenas out of
/// the pool instead of allocating. After the first solve on a given graph
/// the session is *warm*: steady-state solves on that graph perform **no
/// per-solve arena allocation** ([`SolverSession::pool_stats`] proves it —
/// `builds` stays flat while `reuses` grows).
///
/// Sessions are plain owned data: [`crate::SolverService`] keeps one per
/// worker and hands them to its batch threads; a session can equally be
/// used standalone for a sequential stream of solves.
///
/// # Example
///
/// ```
/// use std::sync::Arc;
/// use dsf_graph::{generators, NodeId};
/// use dsf_service::{SolveRequest, SolverKind, SolverSession};
/// use dsf_steiner::InstanceBuilder;
///
/// let g = Arc::new(generators::gnp_connected(24, 0.2, 9, 7));
/// let inst = InstanceBuilder::new(&g)
///     .component(&[NodeId(0), NodeId(11)])
///     .component(&[NodeId(4), NodeId(19)])
///     .build()
///     .unwrap();
///
/// let mut session = SolverSession::new();
/// for seed in 0..3 {
///     let req = SolveRequest::new(
///         format!("job-{seed}"), g.clone(), inst.clone(), SolverKind::Randomized, seed);
///     let out = session.solve(&req).unwrap();
///     assert!(inst.is_feasible(&g, &out.forest));
/// }
/// // Warm after the first solve: repeats allocated no new arenas.
/// let stats = session.pool_stats();
/// assert!(stats.reuses > 0 && stats.builds <= stats.reuses);
/// ```
#[derive(Debug, Default)]
pub struct SolverSession {
    pool: BufferPool,
    solves: u64,
    /// Cached incremental solve, keyed by graph fingerprint (see
    /// [`crate::delta`]).
    pub(crate) incremental: Option<crate::delta::IncrementalState>,
    /// Counters of the incremental activity.
    pub(crate) delta_stats: crate::delta::DeltaStats,
}

/// Dispatches one request onto the matching `solve_*` entry point.
fn dispatch(req: &SolveRequest) -> Result<(ForestSolution, RoundLedger), SimError> {
    let g = req.graph.as_ref();
    match req.solver {
        SolverKind::Deterministic => solve_deterministic(g, &req.instance, &DetConfig::default())
            .map(|o| (o.forest, o.rounds)),
        SolverKind::Randomized => {
            let cfg = RandConfig {
                seed: req.seed,
                ..RandConfig::default()
            };
            solve_randomized(g, &req.instance, &cfg).map(|o| (o.forest, o.rounds))
        }
        SolverKind::Khan => {
            let cfg = KhanConfig {
                seed: req.seed,
                ..KhanConfig::default()
            };
            solve_khan(g, &req.instance, &cfg).map(|o| (o.forest, o.rounds))
        }
        SolverKind::CollectAtRoot => {
            solve_collect_at_root(g, &req.instance).map(|o| (o.forest, o.rounds))
        }
    }
}

impl SolverSession {
    /// A fresh, cold session.
    pub fn new() -> Self {
        Self::default()
    }

    /// Runs one request with this session's pool installed, pinned to the
    /// single-threaded executor.
    ///
    /// Pooling requires the single-threaded engine (the sharded engine
    /// owns per-worker state instead), so this pins the dispatch via
    /// [`dsf_congest::with_threads`]`(1, …)` regardless of the ambient
    /// `DSF_THREADS` — the session's zero-steady-state-allocation
    /// contract holds in any environment. To give one solve the sharded
    /// engine instead (large graphs), use
    /// [`SolverSession::solve_with_threads`].
    ///
    /// Deterministic outcome fields are independent of the session's
    /// history *and* of the thread count — a warm pool only skips
    /// allocations, never changes results (see
    /// [`dsf_congest::BufferPool`]).
    ///
    /// # Errors
    ///
    /// Propagates any [`SimError`] the solver raises (model violations
    /// indicate solver bugs, not user errors).
    pub fn solve(&mut self, req: &SolveRequest) -> Result<JobOutcome, SimError> {
        self.solve_with_threads(req, 1)
    }

    /// Like [`SolverSession::solve`] but with the executor dispatch of
    /// this solve pinned to `threads` workers. With `threads > 1` the
    /// CONGEST stages run on the sharded engine, which does not consult
    /// the session's pool — the trade the service's large-job phase makes
    /// deliberately. Results are bit-identical at every thread count.
    ///
    /// # Errors
    ///
    /// Propagates any [`SimError`] the solver raises.
    pub fn solve_with_threads(
        &mut self,
        req: &SolveRequest,
        threads: usize,
    ) -> Result<JobOutcome, SimError> {
        let t0 = Instant::now();
        let (forest, ledger) = with_threads(threads, || self.pool.scope(|| dispatch(req)))?;
        let wall_ns = t0.elapsed().as_nanos() as u64;
        self.solves += 1;
        let weight = forest.weight(&req.graph);
        let ratio_milli = req
            .cert_upper
            .map(|upper| (1000 * u128::from(weight)).div_ceil(u128::from(upper.max(1))) as u64);
        Ok(JobOutcome {
            id: req.id.clone(),
            solver: req.solver,
            seed: req.seed,
            forest,
            ledger,
            weight,
            ratio_milli,
            wall_ns,
        })
    }

    /// Arena-traffic counters of the session's pool (steady state: `builds`
    /// flat, `reuses` growing).
    pub fn pool_stats(&self) -> PoolStats {
        self.pool.stats()
    }

    /// Number of solves this session has completed.
    pub fn solves(&self) -> u64 {
        self.solves
    }

    /// Drops all pooled arenas (e.g. before a batch over much larger
    /// graphs); the session stays usable and re-warms on the next solve.
    pub fn clear(&mut self) {
        self.pool.clear();
    }
}
