//! Per-batch reporting: job outcomes, throughput, and the ledger
//! invariants the conformance oracle also checks.

use dsf_congest::RoundLedger;
use dsf_steiner::ForestSolution;

use crate::request::SolverKind;

/// One completed job.
///
/// `forest`, `ledger`, `weight`, and `ratio_milli` are deterministic —
/// identical no matter how the batch was scheduled (worker count, batch
/// composition, session reuse); `wall_ns` is machine- and
/// schedule-dependent, report-only. [`JobOutcome::deterministic_eq`]
/// compares exactly the deterministic part, which is how the service
/// bench asserts batched results are bit-identical to one-at-a-time
/// solves.
#[derive(Debug, Clone)]
pub struct JobOutcome {
    /// The request's id.
    pub id: String,
    /// The solver that ran.
    pub solver: SolverKind,
    /// The seed it ran with.
    pub seed: u64,
    /// The returned solution.
    pub forest: ForestSolution,
    /// The itemized round accounting of the whole solve.
    pub ledger: RoundLedger,
    /// Weight of the returned forest.
    pub weight: u64,
    /// `⌈1000 · weight / cert_upper⌉` when the request carried a
    /// certificate.
    pub ratio_milli: Option<u64>,
    /// Wall-clock of this solve in nanoseconds (report-only).
    pub wall_ns: u64,
}

impl JobOutcome {
    /// Total rounds (simulated + charged) of the solve.
    pub fn rounds(&self) -> u64 {
        self.ledger.total()
    }

    /// Total messages delivered during the solve.
    pub fn messages(&self) -> u64 {
        self.ledger.messages()
    }

    /// Total bits delivered during the solve.
    pub fn bits(&self) -> u64 {
        self.ledger.bits()
    }

    /// Whether two outcomes agree on every deterministic field (identity,
    /// forest, full ledger — entry-for-entry); wall-clock is ignored.
    pub fn deterministic_eq(&self, other: &JobOutcome) -> bool {
        self.id == other.id
            && self.solver == other.solver
            && self.seed == other.seed
            && self.weight == other.weight
            && self.ratio_milli == other.ratio_milli
            && self.forest == other.forest
            && self.ledger == other.ledger
    }
}

/// The result of one [`crate::SolverService::run_batch`] call.
#[derive(Debug)]
pub struct ServiceReport {
    /// Worker threads the batch was scheduled across.
    pub workers: usize,
    /// One outcome per request, in request order.
    pub jobs: Vec<JobOutcome>,
    /// Wall-clock of the whole batch in nanoseconds (report-only).
    pub wall_ns: u64,
    /// CONGEST-ledger invariant violations across the batch (empty on a
    /// healthy run) — the same `B`-bit budget checks the conformance
    /// oracle applies, so the service path cannot silently launder an
    /// over-budget solve.
    pub violations: Vec<String>,
}

impl ServiceReport {
    /// Sum of per-job rounds (deterministic).
    pub fn total_rounds(&self) -> u64 {
        self.jobs.iter().map(JobOutcome::rounds).sum()
    }

    /// Sum of per-job messages (deterministic).
    pub fn total_messages(&self) -> u64 {
        self.jobs.iter().map(JobOutcome::messages).sum()
    }

    /// Batch throughput: `1000 × jobs / seconds` (report-only).
    pub fn solves_per_sec_milli(&self) -> u64 {
        if self.jobs.is_empty() {
            return 0;
        }
        (self.jobs.len() as u64)
            .saturating_mul(1_000_000_000_000)
            .checked_div(self.wall_ns.max(1))
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(wall_ns: u64) -> JobOutcome {
        JobOutcome {
            id: "j".into(),
            solver: SolverKind::Deterministic,
            seed: 0,
            forest: ForestSolution::empty(),
            ledger: RoundLedger::new(),
            weight: 0,
            ratio_milli: None,
            wall_ns,
        }
    }

    #[test]
    fn deterministic_eq_ignores_wall_clock() {
        let a = outcome(10);
        let b = outcome(99_999);
        assert!(a.deterministic_eq(&b));
        let mut c = outcome(10);
        c.weight = 1;
        assert!(!a.deterministic_eq(&c));
    }

    #[test]
    fn throughput_is_jobs_over_seconds() {
        let report = ServiceReport {
            workers: 1,
            jobs: vec![outcome(1), outcome(1)],
            wall_ns: 500_000_000, // 2 jobs in half a second = 4 solves/sec
            violations: Vec::new(),
        };
        assert_eq!(report.solves_per_sec_milli(), 4_000);
    }
}
