//! Batched solver service: pooled executor sessions and a deterministic
//! job queue over the distributed Steiner forest stack.
//!
//! The algorithm crates expose one-shot entry points (`solve_*`), and
//! every such call used to pay full setup: fresh CSR slot arenas for each
//! CONGEST stage, fresh scheduler state, one instance at a time. The
//! workloads the source paper and the greedy/local-search Steiner forest
//! line assume — repeated solves over related instances — amortize all of
//! that. This crate is the amortization layer:
//!
//! * [`SolverSession`] — a reusable session holding a
//!   [`dsf_congest::BufferPool`]: every stage of every solve checks its
//!   slot arena out of the pool, so steady-state solves over recurring
//!   graphs perform **zero** per-solve arena allocation (observable via
//!   [`SolverSession::pool_stats`]).
//! * [`SolverService`] — a batched front-end owning one session per
//!   worker: small jobs are scheduled round-robin across the workers,
//!   large jobs get the whole pool as sharded-executor threads.
//! * The **delta API** ([`SolverSession::install_graph`],
//!   [`SolverSession::add_demand`], [`SolverSession::remove_demand`],
//!   [`SolverSession::reweight_edge`]) — incremental re-solve on a warm
//!   session: a cached [`dsf_steiner::ForestSolution`] keyed by the
//!   graph fingerprint is *repaired* after each demand/weight change
//!   instead of re-solved, and finished to a deterministic local
//!   optimum (see `delta`'s module docs for the quality envelope).
//! * [`ServiceReport`] — per-batch results (per-job ratio, rounds,
//!   messages, wall-clock) with the conformance oracle's ledger
//!   invariants re-checked on every job.
//!
//! # Determinism contract
//!
//! Batching is **invisible in the results**: every [`JobOutcome`]'s
//! deterministic fields (forest, full round ledger, weight, ratio) are
//! bit-identical to solving the same request alone on a fresh session,
//! at any worker count. This follows from the executor's thread-count
//! invariance ([`dsf_congest::run_sharded`]) plus pool transparency
//! (arenas are cleared before reuse), and is continuously asserted by
//! `bench_runner --service` and the service conformance tier.
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use dsf_graph::{generators, NodeId};
//! use dsf_service::{SolveRequest, SolverKind, SolverService};
//! use dsf_steiner::InstanceBuilder;
//!
//! let g = Arc::new(generators::gnp_connected(20, 0.2, 9, 5));
//! let inst = InstanceBuilder::new(&g)
//!     .component(&[NodeId(1), NodeId(17)])
//!     .build()
//!     .unwrap();
//!
//! let mut service = SolverService::with_defaults();
//! let requests: Vec<_> = [SolverKind::Deterministic, SolverKind::Randomized]
//!     .into_iter()
//!     .map(|solver| SolveRequest::new(solver.name(), g.clone(), inst.clone(), solver, 7))
//!     .collect();
//! let report = service.run_batch(&requests).unwrap();
//! assert!(report.violations.is_empty());
//! for job in &report.jobs {
//!     assert!(inst.is_feasible(&g, &job.forest));
//! }
//! ```

mod delta;
mod report;
mod request;
mod service;
mod session;

pub use delta::{DeltaError, DeltaOutcome, DeltaStats, DemandId};
pub use report::{JobOutcome, ServiceReport};
pub use request::{SolveRequest, SolverKind};
pub use service::{ServiceConfig, SolverService};
pub use session::SolverSession;
