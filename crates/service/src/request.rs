//! Job vocabulary: which solver to run on which instance, with which seed.

use std::sync::Arc;

use dsf_graph::WeightedGraph;
use dsf_steiner::Instance;

/// The solver a job runs. Every variant is a thin dispatch onto the
/// workspace's public `solve_*` entry points; the seed semantics follow
/// each solver's config (`Deterministic` and `CollectAtRoot` are
/// seed-independent).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SolverKind {
    /// [`dsf_core::det::solve_deterministic`] — Theorem 4.17.
    Deterministic,
    /// [`dsf_core::randomized::solve_randomized`] — Theorem 5.2.
    Randomized,
    /// [`dsf_baselines::khan::solve_khan`] — the `Õ(sk)` baseline.
    Khan,
    /// [`dsf_baselines::solve_collect_at_root`] — the sanity baseline.
    CollectAtRoot,
}

impl SolverKind {
    /// All kinds, in the stable order reports use.
    pub const ALL: [SolverKind; 4] = [
        SolverKind::Deterministic,
        SolverKind::Randomized,
        SolverKind::Khan,
        SolverKind::CollectAtRoot,
    ];

    /// Short stable name (matches the conformance oracle's solver names).
    pub fn name(self) -> &'static str {
        match self {
            SolverKind::Deterministic => "det",
            SolverKind::Randomized => "randomized",
            SolverKind::Khan => "khan",
            SolverKind::CollectAtRoot => "collect",
        }
    }
}

/// One solve request: `(instance, solver, seed)` plus identification and
/// optional ground truth.
///
/// The graph is shared via [`Arc`] so a batch of many jobs over the same
/// network (multi-seed sweeps, solver comparisons) costs one graph, and so
/// requests stay cheap to clone into worker threads.
#[derive(Debug, Clone)]
pub struct SolveRequest {
    /// Caller-chosen job id, echoed in the report.
    pub id: String,
    /// The network (communication topology and problem metric).
    pub graph: Arc<WeightedGraph>,
    /// The demand instance.
    pub instance: Instance,
    /// Which solver to run.
    pub solver: SolverKind,
    /// Seed for the seeded solvers (ignored by the deterministic ones).
    pub seed: u64,
    /// Certified upper bound on OPT, when the caller knows one (corpus
    /// jobs); the report computes `ratio_milli` against it.
    pub cert_upper: Option<u64>,
}

impl SolveRequest {
    /// A request with no certificate attached.
    pub fn new(
        id: impl Into<String>,
        graph: Arc<WeightedGraph>,
        instance: Instance,
        solver: SolverKind,
        seed: u64,
    ) -> Self {
        SolveRequest {
            id: id.into(),
            graph,
            instance,
            solver,
            seed,
            cert_upper: None,
        }
    }

    /// Attaches a certified upper bound on OPT (enables `ratio_milli`).
    #[must_use]
    pub fn with_cert_upper(mut self, upper: u64) -> Self {
        self.cert_upper = Some(upper);
        self
    }
}
