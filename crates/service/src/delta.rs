//! Incremental re-solve: demand and graph deltas repairing a cached
//! forest on a warm [`SolverSession`].
//!
//! Production Steiner-forest traffic is not a stream of fresh instances:
//! demand pairs arrive and depart on a mostly-stable network, and an
//! occasional link is re-priced. Re-running a solver from scratch per
//! delta throws away the previous solution. This module keeps one cached
//! solve per session — graph, demand set, and the current
//! [`ForestSolution`] — keyed by [`WeightedGraph::fingerprint`], and
//! exposes three deltas that *repair* the cached forest instead:
//!
//! * [`SolverSession::add_demand`] connects the new component through a
//!   contracted-metric Dijkstra over the cached forest
//!   ([`repair::connect_terminals`], selected edges cost 0);
//! * [`SolverSession::remove_demand`] rolls the departed component back
//!   via the union-find pruning pass
//!   ([`ForestSolution::prune_to_minimal`] against the shrunk instance);
//! * [`SolverSession::reweight_edge`] re-prices one edge (the graph is
//!   rebuilt with the patched weight; edge ids are stable) and lets the
//!   repair pass react.
//!
//! Every repaired forest is then *finished* by [`repair::optimize`],
//! the scoped fixpoint over swap, replace, whole-component-reroute and
//! Steiner-elimination moves. The scope is seeded with exactly the
//! nodes the delta disturbed (new terminals, rollback scars, the
//! re-priced edge's endpoints), so untouched trees are never
//! re-scanned; a chord whose price only went *up* needs no search at
//! all. The churn lab (`tests/churn.rs`, `bench_runner
//! --churn`) holds the result to the from-scratch quality envelope:
//! feasible, within the certified ratio bound, and never heavier than a
//! fresh `greedy + local_search` solve of the post-delta instance.
//!
//! Installing a graph whose fingerprint differs from the cached one
//! drops the cached state entirely — repairs never run against the wrong
//! topology ([`SolverSession::install_graph`]).

use std::fmt;
use std::sync::Arc;
use std::time::Instant;

use dsf_graph::{dijkstra, EdgeId, NodeId, Weight, WeightedGraph, INF};
use dsf_steiner::{greedy, local_search, repair};
use dsf_steiner::{ForestSolution, Instance, InstanceBuilder, InstanceError};

use crate::session::SolverSession;

/// Stable handle of one demand component in a session's incremental
/// state. Handles survive unrelated removals (unlike
/// [`dsf_steiner::ComponentId`], which indexes the current instance and
/// shifts when an earlier component departs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DemandId(pub u64);

impl fmt::Display for DemandId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "d{}", self.0)
    }
}

/// Errors raised by the delta API.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeltaError {
    /// No graph installed ([`SolverSession::install_graph`] first).
    NoGraph,
    /// The demand handle is unknown or already removed.
    UnknownDemand(DemandId),
    /// The new demand violates the instance rules (terminal overlap,
    /// empty component, node out of range).
    Instance(InstanceError),
    /// The reweight target edge id is out of range.
    EdgeOutOfRange(EdgeId),
    /// Reweight to zero (the model requires weights in `N`, Section 2).
    ZeroWeight(EdgeId),
}

impl fmt::Display for DeltaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeltaError::NoGraph => write!(f, "no graph installed in this session"),
            DeltaError::UnknownDemand(d) => write!(f, "unknown or removed demand {d}"),
            DeltaError::Instance(e) => write!(f, "invalid demand: {e}"),
            DeltaError::EdgeOutOfRange(e) => write!(f, "edge {e} out of range"),
            DeltaError::ZeroWeight(e) => write!(f, "zero weight for edge {e}"),
        }
    }
}

impl std::error::Error for DeltaError {}

impl From<InstanceError> for DeltaError {
    fn from(e: InstanceError) -> Self {
        DeltaError::Instance(e)
    }
}

/// What one delta did to the cached solution.
#[derive(Debug, Clone)]
pub struct DeltaOutcome {
    /// The repaired forest (also cached in the session).
    pub forest: ForestSolution,
    /// Its total weight on the session's current graph.
    pub weight: Weight,
    /// Accepted repair moves: local-search swaps/replaces plus
    /// whole-component reroutes of the finishing pass.
    pub moves: u64,
    /// Wall-clock of the repair, report-only (never part of any
    /// deterministic comparison).
    pub wall_ns: u64,
}

/// Counters of a session's incremental activity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DeltaStats {
    /// [`SolverSession::install_graph`] calls.
    pub installs: u64,
    /// Installs that hit the fingerprint cache (state survived).
    pub cache_hits: u64,
    /// Installs that dropped cached state because the fingerprint
    /// changed (plus the first install of a cold session).
    pub rebuilds: u64,
    /// Deltas applied (adds + removals + reweights).
    pub deltas: u64,
    /// Total accepted repair moves across all deltas.
    pub moves: u64,
}

/// The cached solve a session repairs incrementally.
#[derive(Debug)]
pub(crate) struct IncrementalState {
    graph: Arc<WeightedGraph>,
    fingerprint: u64,
    /// Active demands in arrival order, keyed by stable handle.
    demands: Vec<(DemandId, Vec<NodeId>)>,
    next_id: u64,
    /// The instance built from `demands` (rebuilt per delta).
    instance: Instance,
    forest: ForestSolution,
}

/// Below this many demand components an add races a from-scratch solve:
/// the cached forest is too thin to give the attach an edge, and a fresh
/// solve of so small an instance costs little.
const SMALL_INSTANCE_RACE_K: usize = 4;

/// Builds the instance for the current demand list.
fn build_instance(
    g: &WeightedGraph,
    demands: &[(DemandId, Vec<NodeId>)],
) -> Result<Instance, InstanceError> {
    let mut b = InstanceBuilder::new(g);
    for (_, terms) in demands {
        b = b.component(terms);
    }
    b.build()
}

/// Finishes a repaired forest to the deterministic scoped local optimum
/// of [`repair::optimize`] (swap/replace/reroute/Steiner-elimination
/// moves over the dirtied trees). Returns the forest and the number of
/// accepted moves.
fn finish(
    g: &WeightedGraph,
    inst: &Instance,
    start: ForestSolution,
    scope: &[NodeId],
) -> (ForestSolution, u64) {
    repair::optimize(g, inst, &start, Some(scope))
}

impl SolverSession {
    /// Installs the graph the incremental state lives on.
    ///
    /// Solution caching is keyed by [`WeightedGraph::fingerprint`]: when
    /// the installed graph fingerprints identically to the cached one,
    /// the call is a cache hit and the cached demands and forest survive
    /// untouched. Any other fingerprint — including the first install on
    /// a cold session — (re)builds fresh empty state, so later deltas
    /// can never repair against the wrong topology.
    ///
    /// Returns `true` when state was (re)built and `false` on a cache
    /// hit.
    ///
    /// # Example
    ///
    /// ```
    /// use std::sync::Arc;
    /// use dsf_graph::{generators, NodeId};
    /// use dsf_service::SolverSession;
    ///
    /// let g = Arc::new(generators::gnp_connected(16, 0.3, 9, 1));
    /// let mut session = SolverSession::new();
    /// assert!(session.install_graph(g.clone()));
    ///
    /// let (_, out) = session.add_demand(&[NodeId(0), NodeId(9)]).unwrap();
    /// assert!(out.weight > 0);
    /// // Same fingerprint: cache hit, the solution survives.
    /// assert!(!session.install_graph(g.clone()));
    /// assert_eq!(session.cached_forest().unwrap(), &out.forest);
    /// ```
    pub fn install_graph(&mut self, graph: Arc<WeightedGraph>) -> bool {
        let fingerprint = graph.fingerprint();
        self.delta_stats.installs += 1;
        if let Some(state) = &self.incremental {
            if state.fingerprint == fingerprint {
                self.delta_stats.cache_hits += 1;
                return false;
            }
        }
        self.delta_stats.rebuilds += 1;
        let instance = build_instance(&graph, &[]).expect("empty instance is valid");
        self.incremental = Some(IncrementalState {
            graph,
            fingerprint,
            demands: Vec::new(),
            next_id: 0,
            instance,
            forest: ForestSolution::empty(),
        });
        true
    }

    /// Adds one demand component and repairs the cached forest: the new
    /// terminals are connected through a contracted-metric Dijkstra over
    /// the existing trees ([`repair::connect_terminals`] — riding cached
    /// edges is free), then finished to the deterministic local optimum.
    ///
    /// Returns a stable [`DemandId`] handle for later removal, plus the
    /// repair outcome.
    ///
    /// # Errors
    ///
    /// [`DeltaError::NoGraph`] before [`SolverSession::install_graph`];
    /// [`DeltaError::Instance`] when the terminals overlap an active
    /// demand, are empty, or exceed the node range.
    pub fn add_demand(
        &mut self,
        terminals: &[NodeId],
    ) -> Result<(DemandId, DeltaOutcome), DeltaError> {
        let t0 = Instant::now();
        let state = self.incremental.as_mut().ok_or(DeltaError::NoGraph)?;
        let id = DemandId(state.next_id);
        let mut demands = state.demands.clone();
        demands.push((id, terminals.to_vec()));
        // Validation happens in the instance build (overlap, range,
        // emptiness); state is untouched on error.
        let instance = build_instance(&state.graph, &demands)?;
        let connected = repair::connect_terminals(&state.graph, &state.forest, terminals);
        // The damage an add does is the new terminals plus the connection
        // path just bought; seeding the repair scope with both lets the
        // finishing pass react to the path (e.g. swap a detour it grazed)
        // without rescanning untouched trees.
        let mut scope = terminals.to_vec();
        for &e in connected.edges() {
            if !state.forest.contains(e) {
                let ed = &state.graph.edges()[e.idx()];
                scope.push(ed.u);
                scope.push(ed.v);
            }
        }
        let (mut forest, mut moves) = finish(&state.graph, &instance, connected, &scope);
        // An add leaves the graph metric untouched, so a connection
        // path that built its own tree cannot improve any other tree.
        // But a path that *merged* into existing trees entangles the
        // newcomer with older components, and the merged topology may
        // only be escapable by a restructuring no repair move reaches:
        // give the unscoped fixpoint one look (it starts at the scoped
        // pass's fixpoint, so when nothing global moves it costs one
        // empty sweep), then race the from-scratch candidate exactly as
        // [`SolverSession::remove_demand`] does for entangled
        // departures. A disentangled add bought a standalone tree and
        // disturbed nobody, so both passes are skipped and the attach
        // stays cheap.
        let tree_of = state.graph.components_of(forest.edges());
        let new_tree = terminals.first().map(|t| tree_of[t.idx()]);
        let entangled = state
            .demands
            .iter()
            .any(|(_, terms)| terms.iter().any(|t| Some(tree_of[t.idx()]) == new_tree));
        if entangled {
            let (global, extra) = repair::optimize(&state.graph, &instance, &forest, None);
            forest = global;
            moves += extra;
            let scratch = local_search::improve(
                &state.graph,
                &instance,
                &greedy::solve_greedy(&state.graph, &instance),
            );
            if scratch.weight(&state.graph) < forest.weight(&state.graph) {
                let (polished, extra) = repair::optimize(&state.graph, &instance, &scratch, None);
                forest = polished;
                moves += extra;
            }
        }
        // On a near-cold session there is little cached structure to
        // ride, so attaching onto it can lock in a worse topology than a
        // fresh greedy's interleaved merges — and a from-scratch solve
        // of a tiny instance is cheap. Race it while the instance is
        // small; once enough components are cached the attach rides real
        // structure and the incremental path wins on its own.
        if !entangled && instance.k() <= SMALL_INSTANCE_RACE_K {
            let scratch = local_search::improve(
                &state.graph,
                &instance,
                &greedy::solve_greedy(&state.graph, &instance),
            );
            if scratch.weight(&state.graph) < forest.weight(&state.graph) {
                let (polished, extra) = repair::optimize(&state.graph, &instance, &scratch, None);
                forest = polished;
                moves += extra;
            }
        }
        state.next_id += 1;
        state.demands = demands;
        state.instance = instance;
        let weight = forest.weight(&state.graph);
        state.forest = forest.clone();
        self.delta_stats.deltas += 1;
        self.delta_stats.moves += moves;
        Ok((
            id,
            DeltaOutcome {
                forest,
                weight,
                moves,
                wall_ns: t0.elapsed().as_nanos() as u64,
            },
        ))
    }

    /// Removes one demand component and rolls the cached forest back:
    /// pruning against the shrunk instance drops every edge only the
    /// departed component needed (the union-find label pass of
    /// [`ForestSolution::prune_to_minimal`]), and the finishing pass then
    /// re-optimizes what remains — e.g. rerouting a survivor that was
    /// riding the departed component's tree for free. Because a
    /// departure can strand the survivors in a shape only a
    /// multi-component restructuring escapes, the patched forest is
    /// raced against a from-scratch `greedy + local_search` candidate
    /// and the lighter of the two wins — a removal therefore never
    /// yields a forest heavier than a fresh solve.
    ///
    /// Removing the last demand yields the empty forest.
    ///
    /// # Errors
    ///
    /// [`DeltaError::NoGraph`] before [`SolverSession::install_graph`];
    /// [`DeltaError::UnknownDemand`] for a handle that was never issued
    /// or was already removed.
    pub fn remove_demand(&mut self, id: DemandId) -> Result<DeltaOutcome, DeltaError> {
        let t0 = Instant::now();
        let state = self.incremental.as_mut().ok_or(DeltaError::NoGraph)?;
        let at = state
            .demands
            .iter()
            .position(|(d, _)| *d == id)
            .ok_or(DeltaError::UnknownDemand(id))?;
        let (_, removed_terms) = state.demands.remove(at);
        let instance =
            build_instance(&state.graph, &state.demands).expect("shrunk demand set stays valid");
        // Did the departed component share its tree with a survivor?
        // (All its terminals sat in one tree — the forest was feasible —
        // so checking any one of them suffices.)
        let tree_of = state.graph.components_of(state.forest.edges());
        let removed_tree = removed_terms.first().map(|t| tree_of[t.idx()]);
        let entangled = state
            .demands
            .iter()
            .any(|(_, terms)| terms.iter().any(|t| Some(tree_of[t.idx()]) == removed_tree));
        let rolled_back = state.forest.prune_to_minimal(&state.graph, &instance);
        // The rollback scar: the departed terminals plus both endpoints
        // of every edge the prune dropped. Survivors that were riding
        // those edges for free sit in the scarred trees, so seeding the
        // repair scope here reaches everything the removal disturbed.
        let mut scope = removed_terms;
        for &e in state.forest.edges() {
            if !rolled_back.contains(e) {
                let ed = &state.graph.edges()[e.idx()];
                scope.push(ed.u);
                scope.push(ed.v);
            }
        }
        let (mut forest, mut moves) = finish(&state.graph, &instance, rolled_back, &scope);
        // An *entangled* departure — the departed terminals shared a
        // tree with a survivor — can leave that survivor in a shape no
        // local move escapes: its detours were bought when the departed
        // tree was free to ride, and unwinding them can take a
        // multi-component restructuring. Race a from-scratch greedy +
        // local-search candidate; when it beats the patched forest,
        // polish it with an unscoped repair pass (which only shaves
        // further) and adopt it. A disentangled departure takes its
        // whole tree with it and disturbs nobody, so the race is
        // skipped and the removal stays cheap.
        if entangled {
            let scratch = local_search::improve(
                &state.graph,
                &instance,
                &greedy::solve_greedy(&state.graph, &instance),
            );
            if scratch.weight(&state.graph) < forest.weight(&state.graph) {
                let (polished, extra) = repair::optimize(&state.graph, &instance, &scratch, None);
                forest = polished;
                moves += extra;
            }
        }
        state.instance = instance;
        let weight = forest.weight(&state.graph);
        state.forest = forest.clone();
        self.delta_stats.deltas += 1;
        self.delta_stats.moves += moves;
        Ok(DeltaOutcome {
            forest,
            weight,
            moves,
            wall_ns: t0.elapsed().as_nanos() as u64,
        })
    }

    /// Re-prices one edge and repairs the cached forest against the new
    /// metric. The session's graph is rebuilt with the patched weight
    /// (edge ids are stable, so the cached forest stays valid) and the
    /// cache key follows the new fingerprint; the finishing pass then
    /// swaps away from an edge that got expensive or routes through one
    /// that got cheap.
    ///
    /// A reweight to the current weight is a no-op (no repair runs),
    /// and raising the price of an edge the forest does not use skips
    /// the search outright — no move can become profitable when every
    /// candidate only got more expensive.
    ///
    /// # Errors
    ///
    /// [`DeltaError::NoGraph`] before [`SolverSession::install_graph`];
    /// [`DeltaError::EdgeOutOfRange`] / [`DeltaError::ZeroWeight`] for an
    /// invalid target.
    pub fn reweight_edge(&mut self, e: EdgeId, w: Weight) -> Result<DeltaOutcome, DeltaError> {
        let t0 = Instant::now();
        let state = self.incremental.as_mut().ok_or(DeltaError::NoGraph)?;
        if e.idx() >= state.graph.m() {
            return Err(DeltaError::EdgeOutOfRange(e));
        }
        if w == 0 {
            return Err(DeltaError::ZeroWeight(e));
        }
        if state.graph.weight(e) == w {
            self.delta_stats.deltas += 1;
            let weight = state.forest.weight(&state.graph);
            return Ok(DeltaOutcome {
                forest: state.forest.clone(),
                weight,
                moves: 0,
                wall_ns: t0.elapsed().as_nanos() as u64,
            });
        }
        let old_w = state.graph.weight(e);
        let went_up = w > old_w;
        let mut edges = state.graph.edges().to_vec();
        edges[e.idx()].w = w;
        let graph = Arc::new(
            WeightedGraph::from_edges(state.graph.n(), edges)
                .expect("reweighting a valid graph stays valid"),
        );
        let (forest, moves) = if went_up && !state.forest.contains(e) {
            // A chord that only got more expensive cannot enable any
            // move: every candidate's cost weakly increased while the
            // cached forest's weight is unchanged, so the fixpoint is
            // preserved without searching.
            (state.forest.clone(), 0)
        } else if !went_up && state.forest.contains(e) {
            // A forest edge that got cheaper pays for itself: in any
            // candidate trade the edge can only appear on the dropped
            // side, and dropping it now saves less — every move's
            // balance weakly worsened, so the fixpoint is preserved
            // without searching.
            (state.forest.clone(), 0)
        } else {
            // One Dijkstra finds the cheapest-alternative threshold:
            // the best `u`–`v` route avoiding the re-priced edge
            // itself. While the edge stays on its side of that
            // threshold the graph metric is unchanged up to ties —
            // contraction only shrinks distances, so the argument
            // survives the contracted metric the solvers search.
            let ed = &graph.edges()[e.idx()];
            let alt = dijkstra::multi_source_with(&graph, &[ed.u], |x| {
                if x == e {
                    INF
                } else {
                    graph.weight(x)
                }
            })
            .dist[ed.v.idx()];
            if went_up {
                // The forest absorbs a price increase on an edge it
                // uses: a scoped finish sheds or keeps it. If the edge
                // was *dominant* — priced below its alternative, hence
                // on real shortest paths — the increase re-shapes the
                // metric, and absorbing it may take a multi-component
                // restructuring no scoped move finds: race the
                // from-scratch candidate exactly as
                // [`SolverSession::remove_demand`] does. An edge that
                // was already redundant re-shapes nothing; the scoped
                // finish alone sheds it.
                let (mut forest, mut moves) =
                    finish(&graph, &state.instance, state.forest.clone(), &[ed.u, ed.v]);
                if old_w < alt {
                    let scratch = local_search::improve(
                        &graph,
                        &state.instance,
                        &greedy::solve_greedy(&graph, &state.instance),
                    );
                    if scratch.weight(&graph) < forest.weight(&graph) {
                        let (polished, extra) =
                            repair::optimize(&graph, &state.instance, &scratch, None);
                        forest = polished;
                        moves += extra;
                    }
                }
                (forest, moves)
            } else if w < alt {
                // A chord dropping below every alternative improves
                // real distances, so it can pay off in trees far from
                // its endpoints (e.g. a component rerouting through
                // it): finish unscoped so every move family sees it,
                // and — because the metric genuinely changed — race
                // the from-scratch candidate, whose interleaved greedy
                // merges can reach topologies no repair move does.
                let (mut forest, mut moves) =
                    repair::optimize(&graph, &state.instance, &state.forest, None);
                let scratch = local_search::improve(
                    &graph,
                    &state.instance,
                    &greedy::solve_greedy(&graph, &state.instance),
                );
                if scratch.weight(&graph) < forest.weight(&graph) {
                    let (polished, extra) =
                        repair::optimize(&graph, &state.instance, &scratch, None);
                    forest = polished;
                    moves += extra;
                }
                (forest, moves)
            } else {
                // A redundant cheaper chord leaves the metric
                // unchanged; the only possibly-profitable new move is
                // the swap adding the chord itself, which needs both
                // endpoints in one tree.
                let tree_of = graph.components_of(state.forest.edges());
                if tree_of[ed.u.idx()] == tree_of[ed.v.idx()] {
                    finish(&graph, &state.instance, state.forest.clone(), &[ed.u, ed.v])
                } else {
                    (state.forest.clone(), 0)
                }
            }
        };
        state.fingerprint = graph.fingerprint();
        let weight = forest.weight(&graph);
        state.graph = graph;
        state.forest = forest.clone();
        self.delta_stats.deltas += 1;
        self.delta_stats.moves += moves;
        Ok(DeltaOutcome {
            forest,
            weight,
            moves,
            wall_ns: t0.elapsed().as_nanos() as u64,
        })
    }

    /// The cached repaired forest, if a graph is installed.
    pub fn cached_forest(&self) -> Option<&ForestSolution> {
        self.incremental.as_ref().map(|s| &s.forest)
    }

    /// The instance of the current demand set, if a graph is installed.
    pub fn cached_instance(&self) -> Option<&Instance> {
        self.incremental.as_ref().map(|s| &s.instance)
    }

    /// The graph the incremental state lives on (follows reweights —
    /// after [`SolverSession::reweight_edge`] this is the re-priced
    /// graph, not the one originally installed).
    pub fn cached_graph(&self) -> Option<&Arc<WeightedGraph>> {
        self.incremental.as_ref().map(|s| &s.graph)
    }

    /// The fingerprint the solution cache is keyed by.
    pub fn cached_fingerprint(&self) -> Option<u64> {
        self.incremental.as_ref().map(|s| s.fingerprint)
    }

    /// Handles of the active demands, in arrival order.
    pub fn active_demands(&self) -> Vec<DemandId> {
        self.incremental
            .as_ref()
            .map(|s| s.demands.iter().map(|(d, _)| *d).collect())
            .unwrap_or_default()
    }

    /// Counters of this session's incremental activity.
    pub fn delta_stats(&self) -> DeltaStats {
        self.delta_stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsf_graph::generators;

    fn session_on(g: &Arc<WeightedGraph>) -> SolverSession {
        let mut s = SolverSession::new();
        assert!(s.install_graph(g.clone()));
        s
    }

    #[test]
    fn add_connects_and_remove_rolls_back_to_empty() {
        let g = Arc::new(generators::path(6, 2));
        let mut s = session_on(&g);
        let (id, out) = s.add_demand(&[NodeId(1), NodeId(4)]).unwrap();
        assert_eq!(out.weight, 6); // the 3 path edges between 1 and 4
        assert!(s.cached_instance().unwrap().is_feasible(&g, &out.forest));
        let out = s.remove_demand(id).unwrap();
        assert!(out.forest.is_empty());
        assert_eq!(out.weight, 0);
        assert_eq!(
            s.remove_demand(id).unwrap_err(),
            DeltaError::UnknownDemand(id)
        );
    }

    #[test]
    fn deltas_require_an_installed_graph() {
        let mut s = SolverSession::new();
        assert_eq!(
            s.add_demand(&[NodeId(0), NodeId(1)]).unwrap_err(),
            DeltaError::NoGraph
        );
        assert_eq!(
            s.remove_demand(DemandId(0)).unwrap_err(),
            DeltaError::NoGraph
        );
        assert_eq!(
            s.reweight_edge(EdgeId(0), 1).unwrap_err(),
            DeltaError::NoGraph
        );
    }

    #[test]
    fn add_demand_validates_without_corrupting_state() {
        let g = Arc::new(generators::gnp_connected(12, 0.3, 8, 2));
        let mut s = session_on(&g);
        let (_, before) = s.add_demand(&[NodeId(0), NodeId(7)]).unwrap();
        // Overlap with the active demand is rejected...
        assert!(matches!(
            s.add_demand(&[NodeId(7), NodeId(9)]).unwrap_err(),
            DeltaError::Instance(InstanceError::Relabeled(_))
        ));
        assert!(matches!(
            s.add_demand(&[]).unwrap_err(),
            DeltaError::Instance(InstanceError::EmptyComponent)
        ));
        assert!(matches!(
            s.add_demand(&[NodeId(99), NodeId(3)]).unwrap_err(),
            DeltaError::Instance(InstanceError::NodeOutOfRange(_))
        ));
        // ...and the cached state is exactly what the last success left.
        assert_eq!(s.cached_forest().unwrap(), &before.forest);
        assert_eq!(s.active_demands().len(), 1);
    }

    #[test]
    fn reweight_patches_the_metric_and_moves_the_forest() {
        // Square 0-1-2-3-0, demand {0,2}: starts on the cheap side, a
        // reweight flips which side is cheap.
        let mut b = dsf_graph::GraphBuilder::new(4);
        b.add_edge(NodeId(0), NodeId(1), 1).unwrap(); // e0
        b.add_edge(NodeId(1), NodeId(2), 1).unwrap(); // e1
        b.add_edge(NodeId(2), NodeId(3), 3).unwrap(); // e2
        b.add_edge(NodeId(3), NodeId(0), 3).unwrap(); // e3
        let g = Arc::new(b.build().unwrap());
        let mut s = session_on(&g);
        let (_, out) = s.add_demand(&[NodeId(0), NodeId(2)]).unwrap();
        assert_eq!(out.forest.edges(), &[EdgeId(0), EdgeId(1)]);
        let out = s.reweight_edge(EdgeId(0), 20).unwrap();
        assert_eq!(out.forest.edges(), &[EdgeId(2), EdgeId(3)]);
        assert_eq!(out.weight, 6);
        assert!(out.moves > 0);
        // The session's graph followed the reweight, cache key included.
        let cached = s.cached_graph().unwrap();
        assert_eq!(cached.weight(EdgeId(0)), 20);
        assert_eq!(s.cached_fingerprint(), Some(cached.fingerprint()));
        // Invalid targets are rejected.
        assert_eq!(
            s.reweight_edge(EdgeId(99), 1).unwrap_err(),
            DeltaError::EdgeOutOfRange(EdgeId(99))
        );
        assert_eq!(
            s.reweight_edge(EdgeId(0), 0).unwrap_err(),
            DeltaError::ZeroWeight(EdgeId(0))
        );
    }

    #[test]
    fn reweight_to_the_same_weight_is_a_no_op() {
        let g = Arc::new(generators::path(4, 5));
        let mut s = session_on(&g);
        let (_, before) = s.add_demand(&[NodeId(0), NodeId(3)]).unwrap();
        let out = s.reweight_edge(EdgeId(1), 5).unwrap();
        assert_eq!(out.forest, before.forest);
        assert_eq!(out.moves, 0);
        assert!(Arc::ptr_eq(s.cached_graph().unwrap(), &g));
    }

    #[test]
    fn install_is_keyed_by_fingerprint_not_identity() {
        let g = Arc::new(generators::gnp_connected(14, 0.3, 7, 4));
        let rebuilt = Arc::new(WeightedGraph::from_edges(g.n(), g.edges().to_vec()).unwrap());
        let mut s = session_on(&g);
        let (_, out) = s.add_demand(&[NodeId(2), NodeId(11)]).unwrap();
        // A different allocation of the same graph is still a cache hit.
        assert!(!s.install_graph(rebuilt));
        assert_eq!(s.cached_forest().unwrap(), &out.forest);
        let stats = s.delta_stats();
        assert_eq!(stats.installs, 2);
        assert_eq!(stats.cache_hits, 1);
        assert_eq!(stats.rebuilds, 1);
    }
}
