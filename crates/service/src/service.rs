//! The batched front-end: a deterministic job queue scheduled across a
//! pool of [`SolverSession`]s.

use std::time::Instant;

use dsf_congest::{default_threads, CongestConfig, PoolStats, SimError};
use dsf_workloads::conformance::check_ledger_budget;

use crate::report::{JobOutcome, ServiceReport};
use crate::request::SolveRequest;
use crate::session::SolverSession;

/// Configuration of a [`SolverService`].
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Worker sessions the service schedules small jobs across (and the
    /// thread count a large job's sharded run gets). Clamped to ≥ 1.
    pub workers: usize,
    /// Jobs whose graph has at least this many nodes are *large*: they run
    /// one at a time with the whole worker pool as sharded executor
    /// threads, instead of sharing the batch with other jobs.
    pub large_node_threshold: usize,
}

impl Default for ServiceConfig {
    /// Workers default to the process-wide [`default_threads`]
    /// (`DSF_THREADS`), the threshold to 50 000 nodes.
    fn default() -> Self {
        ServiceConfig {
            workers: default_threads(),
            large_node_threshold: 50_000,
        }
    }
}

impl ServiceConfig {
    /// Whether a graph with `nodes` nodes schedules as *large* (sharded
    /// whole-pool execution) rather than *small* (round-robin across
    /// workers): large means **at least** [`ServiceConfig::large_node_threshold`]
    /// nodes, so a graph with exactly threshold nodes is large.
    ///
    /// This is the single classification point — [`SolverService`] batches
    /// and the `dsf-server` streaming reactor both split jobs through it,
    /// so the two front-ends can never disagree on a job's lane.
    pub fn is_large(&self, nodes: usize) -> bool {
        nodes >= self.large_node_threshold
    }
}

/// A batched, high-throughput solve front-end over the whole solver stack.
///
/// The service owns `workers` persistent [`SolverSession`]s. A batch of
/// [`SolveRequest`]s is split by graph size:
///
/// * **small jobs** (below [`ServiceConfig::large_node_threshold`]) are
///   assigned round-robin — the `j`-th small job to worker `j mod
///   workers` — and executed concurrently, one single-threaded,
///   buffer-pooled solve per worker at a time;
/// * **large jobs** run one at a time, each getting the *whole* pool as
///   worker threads of the sharded executor ([`dsf_congest::run_sharded`]
///   via the `DSF_THREADS` dispatch).
///
/// Scheduling is invisible in the results: per-job outcomes are
/// bit-identical to solving each request alone on a fresh session
/// (executor determinism across thread counts + pool transparency), and
/// the report lists jobs in request order. `bench_runner --service`
/// asserts exactly this. Sessions stay warm across batches, so a steady
/// stream of solves over recurring graphs allocates no arena memory
/// ([`SolverService::pool_stats`]).
///
/// # Example
///
/// ```
/// use std::sync::Arc;
/// use dsf_graph::{generators, NodeId};
/// use dsf_service::{ServiceConfig, SolveRequest, SolverKind, SolverService};
/// use dsf_steiner::InstanceBuilder;
///
/// let g = Arc::new(generators::gnp_connected(20, 0.2, 9, 1));
/// let inst = InstanceBuilder::new(&g)
///     .component(&[NodeId(0), NodeId(13)])
///     .build()
///     .unwrap();
///
/// let mut service = SolverService::new(ServiceConfig { workers: 2, ..Default::default() });
/// let requests: Vec<_> = (0..4)
///     .map(|seed| SolveRequest::new(
///         format!("job-{seed}"), g.clone(), inst.clone(), SolverKind::Randomized, seed))
///     .collect();
/// let report = service.run_batch(&requests).unwrap();
/// assert_eq!(report.jobs.len(), 4);
/// assert!(report.violations.is_empty());
/// // Jobs come back in request order, whatever the scheduling did.
/// assert_eq!(report.jobs[2].id, "job-2");
/// ```
#[derive(Debug)]
pub struct SolverService {
    cfg: ServiceConfig,
    sessions: Vec<SolverSession>,
    batches: u64,
}

impl SolverService {
    /// A service with `cfg.workers` fresh sessions (`workers` clamped to
    /// ≥ 1).
    pub fn new(mut cfg: ServiceConfig) -> Self {
        cfg.workers = cfg.workers.max(1);
        let sessions = (0..cfg.workers).map(|_| SolverSession::new()).collect();
        SolverService {
            cfg,
            sessions,
            batches: 0,
        }
    }

    /// A service with the default configuration (`DSF_THREADS` workers).
    pub fn with_defaults() -> Self {
        Self::new(ServiceConfig::default())
    }

    /// The configured worker count.
    pub fn workers(&self) -> usize {
        self.cfg.workers
    }

    /// Batches completed so far.
    pub fn batches(&self) -> u64 {
        self.batches
    }

    /// Per-session arena-traffic counters, in worker order.
    pub fn session_stats(&self) -> Vec<PoolStats> {
        self.sessions
            .iter()
            .map(SolverSession::pool_stats)
            .collect()
    }

    /// Arena-traffic counters summed over all sessions. In steady state
    /// (recurring graphs) `builds` stays flat while `reuses` grows — the
    /// zero-per-solve-allocation property the service bench asserts.
    pub fn pool_stats(&self) -> PoolStats {
        self.session_stats()
            .into_iter()
            .fold(PoolStats::default(), |acc, s| PoolStats {
                reuses: acc.reuses + s.reuses,
                builds: acc.builds + s.builds,
            })
    }

    /// Runs a batch of requests to completion and reports per-job
    /// outcomes in request order.
    ///
    /// Executor dispatch is pinned per solve via the scoped
    /// [`dsf_congest::with_threads`] override ([`SolverSession::solve`]
    /// pins 1 during the concurrent small-job phase; each large job gets
    /// the full pool) — nothing process-wide is touched, so concurrent
    /// users of [`dsf_congest::run`] on other threads keep their own
    /// configuration, and batches from different services may interleave
    /// freely.
    ///
    /// # Errors
    ///
    /// If any job raises a [`SimError`], the error of the lowest request
    /// index is returned (deterministic under any scheduling). Jobs do
    /// not abort each other: every job still runs, so a batch either
    /// returns a complete report or a deterministic error.
    ///
    /// # Panics
    ///
    /// A panicking solver is propagated (after the worker threads have
    /// been joined).
    pub fn run_batch(&mut self, requests: &[SolveRequest]) -> Result<ServiceReport, SimError> {
        let t0 = Instant::now();
        let workers = self.cfg.workers;
        let (small, large): (Vec<usize>, Vec<usize>) =
            (0..requests.len()).partition(|&i| !self.cfg.is_large(requests[i].graph.n()));

        let mut slots: Vec<Option<JobOutcome>> = (0..requests.len()).map(|_| None).collect();
        let mut first_err: Option<(usize, SimError)> = None;
        let mut record = |slots: &mut Vec<Option<JobOutcome>>,
                          i: usize,
                          res: Result<JobOutcome, SimError>| match res {
            Ok(out) => slots[i] = Some(out),
            Err(e) => {
                if first_err.as_ref().is_none_or(|(j, _)| i < *j) {
                    first_err = Some((i, e));
                }
            }
        };

        // Small phase: every worker solves its round-robin share, each
        // solve single-threaded (SolverSession::solve pins the dispatch)
        // on the worker's warm session.
        if workers == 1 || small.len() <= 1 {
            for &i in &small {
                let res = self.sessions[0].solve(&requests[i]);
                record(&mut slots, i, res);
            }
        } else {
            let results: Vec<Vec<(usize, Result<JobOutcome, SimError>)>> =
                std::thread::scope(|scope| {
                    let handles: Vec<_> = self
                        .sessions
                        .iter_mut()
                        .enumerate()
                        .map(|(w, session)| {
                            let jobs: Vec<usize> = small
                                .iter()
                                .enumerate()
                                .filter(|(j, _)| j % workers == w)
                                .map(|(_, &i)| i)
                                .collect();
                            scope.spawn(move || {
                                jobs.into_iter()
                                    .map(|i| (i, session.solve(&requests[i])))
                                    .collect()
                            })
                        })
                        .collect();
                    handles
                        .into_iter()
                        .map(|h| match h.join() {
                            Ok(r) => r,
                            Err(payload) => std::panic::resume_unwind(payload),
                        })
                        .collect()
                });
            for (i, res) in results.into_iter().flatten() {
                record(&mut slots, i, res);
            }
        }

        // Large phase: one job at a time, whole pool as sharded workers.
        for &i in &large {
            let res = self.sessions[0].solve_with_threads(&requests[i], workers);
            record(&mut slots, i, res);
        }

        if let Some((_, e)) = first_err {
            return Err(e);
        }

        // The same ledger invariants the conformance oracle enforces.
        let mut violations = Vec::new();
        for (i, out) in slots.iter().enumerate() {
            let out = out.as_ref().expect("no error, so every slot is filled");
            let bandwidth = CongestConfig::for_graph(&requests[i].graph).bandwidth_bits;
            for v in check_ledger_budget(&out.ledger, bandwidth) {
                violations.push(format!("job {} [{}]: {v}", out.id, out.solver.name()));
            }
        }

        self.batches += 1;
        Ok(ServiceReport {
            workers,
            jobs: slots.into_iter().map(Option::unwrap).collect(),
            wall_ns: t0.elapsed().as_nanos() as u64,
            violations,
        })
    }
}
