//! Message-size accounting.
//!
//! CONGEST caps each per-edge per-round message at `O(log n)` bits. Rather
//! than serializing messages, protocols declare the bit size of a natural
//! binary encoding via [`Message::encoded_bits`]; the executor enforces the
//! cap. Helper functions give the conventional sizes of the primitive
//! fields (node ids, weights) so the accounting stays consistent across
//! crates.

/// A message exchangeable over one edge in one round.
///
/// Implementations must report the number of bits of a reasonable binary
/// encoding. The executor compares this against the bandwidth budget.
pub trait Message: Clone + std::fmt::Debug {
    /// Bits of a natural binary encoding of this message.
    fn encoded_bits(&self) -> usize;
}

/// Bits needed for a node identifier in an `n`-node network:
/// `ceil(log2 n)`, at least 1.
pub fn id_bits(n: usize) -> usize {
    (usize::BITS - (n.max(2) - 1).leading_zeros()) as usize
}

/// Bits needed for a weight or distance value.
///
/// Weights are polynomially bounded in `n` (model assumption), hence
/// `O(log n)` bits; we charge the actual magnitude.
pub fn weight_bits(w: u64) -> usize {
    (64 - w.max(1).leading_zeros()) as usize
}

impl Message for () {
    fn encoded_bits(&self) -> usize {
        1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_bits_bounds() {
        assert_eq!(id_bits(2), 1);
        assert_eq!(id_bits(3), 2);
        assert_eq!(id_bits(4), 2);
        assert_eq!(id_bits(5), 3);
        assert_eq!(id_bits(1024), 10);
        assert_eq!(id_bits(1025), 11);
        // Degenerate sizes still get one bit.
        assert_eq!(id_bits(0), 1);
        assert_eq!(id_bits(1), 1);
    }

    #[test]
    fn weight_bits_magnitude() {
        assert_eq!(weight_bits(1), 1);
        assert_eq!(weight_bits(2), 2);
        assert_eq!(weight_bits(255), 8);
        assert_eq!(weight_bits(256), 9);
        assert_eq!(weight_bits(0), 1);
    }
}
