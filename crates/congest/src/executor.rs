//! The synchronous round executor: shared model types plus the naive
//! reference implementation.
//!
//! The production executor is the event-driven active-set scheduler in
//! [`crate::scheduler`] (re-exported as [`crate::run`]). This module keeps
//! the model vocabulary — [`CongestConfig`], [`Protocol`], [`Outbox`],
//! [`RunMetrics`], [`SimError`] — and [`run_reference`], the
//! call-everyone-every-round loop whose observable behavior the scheduler
//! must reproduce bit-for-bit (property-tested in
//! `tests/scheduler_equivalence.rs`).

use std::collections::HashSet;
use std::fmt;

use dsf_graph::{EdgeId, NodeId, Weight, WeightedGraph};

use crate::message::{id_bits, Message};

/// Configuration of a simulation run.
#[derive(Debug, Clone)]
pub struct CongestConfig {
    /// Per-edge per-round bandwidth budget in bits (`B(n) = Θ(log n)`).
    pub bandwidth_bits: usize,
    /// Abort the run after this many rounds (guards against protocols that
    /// fail to reach quiescence).
    pub max_rounds: u64,
    /// Edges whose traffic is metered separately (lower-bound experiments
    /// measure the bits crossing the Alice/Bob cut of Figure 1).
    pub metered_cut: HashSet<EdgeId>,
}

impl CongestConfig {
    /// Default budget for an `n`-node network.
    ///
    /// The model allows `c · log n` bits; we fix the generous but honest
    /// constant `c = 32` plus a 192-bit slack so that one message can carry
    /// a small constant number of ids, one weight, and one dyadic value.
    /// All protocol messages in this repository fit; anything larger is a
    /// pipelining bug and aborts the run.
    pub fn for_graph(g: &WeightedGraph) -> Self {
        CongestConfig {
            bandwidth_bits: 32 * id_bits(g.n()) + 192,
            max_rounds: 4_000_000,
            metered_cut: HashSet::new(),
        }
    }

    /// Same as [`CongestConfig::for_graph`] with a metered edge cut.
    pub fn with_metered_cut(g: &WeightedGraph, cut: impl IntoIterator<Item = EdgeId>) -> Self {
        let mut cfg = Self::for_graph(g);
        cfg.metered_cut = cut.into_iter().collect();
        cfg
    }
}

/// Errors aborting a simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// A message exceeded the bandwidth budget.
    BandwidthExceeded {
        /// Sender.
        from: NodeId,
        /// Receiver.
        to: NodeId,
        /// Offending message size.
        bits: usize,
        /// Configured budget.
        budget: usize,
        /// Round in which it happened.
        round: u64,
    },
    /// Two messages were enqueued on the same edge in the same round.
    DuplicateSend {
        /// Sender.
        from: NodeId,
        /// Receiver.
        to: NodeId,
        /// Round in which it happened.
        round: u64,
    },
    /// A node attempted to message a non-neighbor.
    NotANeighbor {
        /// Sender.
        from: NodeId,
        /// Intended receiver.
        to: NodeId,
    },
    /// The protocol did not reach quiescence within `max_rounds`.
    MaxRoundsExceeded {
        /// The configured limit.
        limit: u64,
    },
    /// Node count mismatch between graph and protocol states.
    WrongNodeCount {
        /// Nodes in the graph.
        expected: usize,
        /// Protocol states supplied.
        got: usize,
    },
    /// The graph exceeds the compact executor's u32 arena: node ids,
    /// slot offsets, and shard bounds are all `u32`, so `n` or the
    /// directed-slot count `2m` reaching `u32::MAX` is rejected up front
    /// instead of truncating ids.
    ArenaOverflow {
        /// Nodes in the graph.
        nodes: usize,
        /// Undirected edges in the graph.
        edges: usize,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::BandwidthExceeded {
                from,
                to,
                bits,
                budget,
                round,
            } => write!(
                f,
                "round {round}: message {from}->{to} is {bits} bits, budget {budget}"
            ),
            SimError::DuplicateSend { from, to, round } => {
                write!(f, "round {round}: duplicate send {from}->{to}")
            }
            SimError::NotANeighbor { from, to } => {
                write!(f, "{from} attempted to message non-neighbor {to}")
            }
            SimError::MaxRoundsExceeded { limit } => {
                write!(f, "no quiescence within {limit} rounds")
            }
            SimError::WrongNodeCount { expected, got } => {
                write!(f, "graph has {expected} nodes but {got} states were given")
            }
            SimError::ArenaOverflow { nodes, edges } => {
                write!(
                    f,
                    "graph with {nodes} nodes / {edges} edges exceeds the u32 slot arena \
                     (need n < u32::MAX and 2m < u32::MAX)"
                )
            }
        }
    }
}

impl std::error::Error for SimError {}

/// Read-only view a node has of its surroundings: its id, its neighbors and
/// incident edge weights, plus the globally known scalars `n` and the
/// current round (a synchronous network has a shared round counter).
#[derive(Debug, Clone, Copy)]
pub struct NodeCtx<'a> {
    /// This node's identifier.
    pub id: NodeId,
    /// Total number of nodes (CONGEST algorithms may assume `n` known; the
    /// paper's footnote 2 shows how to compute it in `O(D)` otherwise).
    pub n: usize,
    /// Current round number (0 during `init`).
    pub round: u64,
    graph: &'a WeightedGraph,
}

impl<'a> NodeCtx<'a> {
    pub(crate) fn new(id: NodeId, n: usize, round: u64, graph: &'a WeightedGraph) -> Self {
        NodeCtx {
            id,
            n,
            round,
            graph,
        }
    }

    /// Neighbors of this node: `(neighbor, edge id)`, sorted by neighbor id.
    pub fn neighbors(&self) -> &'a [(NodeId, EdgeId)] {
        self.graph.neighbors(self.id)
    }

    /// Weight of an incident edge.
    pub fn weight(&self, e: EdgeId) -> Weight {
        self.graph.weight(e)
    }

    /// Degree of this node.
    pub fn degree(&self) -> usize {
        self.graph.degree(self.id)
    }
}

/// Per-round outgoing message buffer.
///
/// Model enforcement — at most one message per neighbor per round, only to
/// neighbors, within the bandwidth budget — happens when the executor
/// commits the round; violations surface as [`SimError`]. `send` itself is
/// O(1): the old per-send duplicate scan (O(degree²) per node per round in
/// the worst case) moved into the executor's flat-buffer commit, which
/// checks a per-target seen mark instead.
#[derive(Debug)]
pub struct Outbox<M> {
    from: NodeId,
    msgs: Vec<(NodeId, M)>,
}

impl<M: Message> Outbox<M> {
    pub(crate) fn new(from: NodeId) -> Self {
        Outbox {
            from,
            msgs: Vec::new(),
        }
    }

    /// An outbox reusing previously allocated storage (cleared).
    pub(crate) fn recycled(from: NodeId, mut storage: Vec<(NodeId, M)>) -> Self {
        storage.clear();
        Outbox {
            from,
            msgs: storage,
        }
    }

    /// Returns the storage for reuse by the next node.
    pub(crate) fn into_storage(self) -> Vec<(NodeId, M)> {
        self.msgs
    }

    pub(crate) fn from(&self) -> NodeId {
        self.from
    }

    pub(crate) fn msgs_mut(&mut self) -> &mut Vec<(NodeId, M)> {
        &mut self.msgs
    }

    /// Sends `msg` to neighbor `to`. At most one message per neighbor per
    /// round; violations surface as [`SimError`] when the round is
    /// committed.
    pub fn send(&mut self, to: NodeId, msg: M) {
        self.msgs.push((to, msg));
    }

    /// Sends a copy of `msg` to every neighbor.
    pub fn send_all(&mut self, ctx: &NodeCtx, msg: M) {
        for &(nb, _) in ctx.neighbors() {
            self.send(nb, msg.clone());
        }
    }

    /// Whether anything was enqueued this round.
    pub fn is_empty(&self) -> bool {
        self.msgs.is_empty()
    }
}

/// A per-node state machine executing in the CONGEST model.
///
/// One value of the implementing type exists per node. The executor calls
/// [`Protocol::init`] once (round 0, output delivered in round 1) and then
/// [`Protocol::round`] until quiescence: every node reports
/// [`Protocol::done`] *and* no message is in flight.
pub trait Protocol {
    /// Message type of this protocol.
    type Msg: Message;

    /// One-time initialization; may send messages.
    fn init(&mut self, ctx: &NodeCtx, out: &mut Outbox<Self::Msg>);

    /// One synchronous round: consume last round's messages, send this
    /// round's.
    fn round(&mut self, ctx: &NodeCtx, inbox: &[(NodeId, Self::Msg)], out: &mut Outbox<Self::Msg>);

    /// Local termination vote: "I have no pending local work".
    ///
    /// The run quiesces once all nodes vote done and the network is quiet;
    /// a done node may be woken by a late message and may then change its
    /// vote.
    ///
    /// **Contract:** a node voting done must be a no-op on an empty inbox —
    /// its `round` must neither send nor change state until a message
    /// arrives. The event-driven executor ([`crate::run`]) relies on this
    /// to skip idle nodes entirely; a protocol that votes done and keeps
    /// talking terminates early there (the skipped sends never happen).
    /// [`run_reference`] invokes every node every round and therefore
    /// exposes such contract violations as runaway or divergent runs.
    fn done(&self) -> bool;
}

/// Aggregate statistics of a run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RunMetrics {
    /// Number of executed rounds (quiescence round inclusive).
    pub rounds: u64,
    /// Total messages delivered.
    pub messages: u64,
    /// Total bits delivered.
    pub total_bits: u64,
    /// Largest single message observed, in bits.
    pub max_message_bits: usize,
    /// Bits that crossed the metered cut (0 if no cut configured).
    pub cut_bits: u64,
}

/// Scheduler work counters. Unlike [`RunMetrics`] these describe the
/// *executor's* effort, not the protocol's model cost, so they differ
/// between [`crate::run`] and [`run_reference`] on the same workload —
/// that difference is the point (see `bench_runner`).
///
/// The struct carries two kinds of fields with different contracts:
///
/// * **deterministic** (`activations`, `wakeups`) — per-node facts that
///   are bit-identical at every thread count; these and only these
///   participate in `==` (the manual [`PartialEq`] below), so the
///   cross-executor equivalence asserts stay meaningful;
/// * **report-only** (`workers`) — wall-clock-dependent scheduling
///   telemetry from the work-stealing engine that legitimately varies
///   from run to run and is excluded from equality. Consumers that
///   persist stats (the bench schema) must keep the same separation.
#[derive(Debug, Clone, Default, Eq)]
pub struct SchedStats {
    /// Number of [`Protocol::round`] invocations (`init` excluded).
    pub activations: u64,
    /// Invocations of nodes that had voted done and were woken by a
    /// delivery. Only tracked by the event-driven executor; 0 under
    /// [`run_reference`].
    pub wakeups: u64,
    /// Report-only per-worker effort counters, indexed by worker id.
    /// Empty for single-threaded runs; length = thread count under
    /// [`crate::run_sharded`]. **Not** part of `==`.
    pub workers: Vec<WorkerObs>,
}

impl PartialEq for SchedStats {
    /// Deterministic fields only: two runs compare equal when their
    /// scheduler did the same *observable* work, regardless of how the
    /// work-stealing engine happened to distribute it across workers.
    fn eq(&self, other: &Self) -> bool {
        self.activations == other.activations && self.wakeups == other.wakeups
    }
}

/// Report-only effort counters of one worker thread in a
/// [`crate::run_sharded`] run. All fields depend on OS scheduling and
/// steal timing — they describe load balance, never outcomes, and are
/// deliberately excluded from [`SchedStats`] equality.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkerObs {
    /// Rounds in which this worker processed at least one chunk with work.
    pub rounds_participated: u64,
    /// Active-set slots (node invocations, `init` included) this worker
    /// executed.
    pub slots_processed: u64,
    /// Chunks this worker claimed from another worker's home range and
    /// found work in.
    pub chunks_stolen: u64,
    /// Rounds this worker reached the barrier without having processed
    /// any chunk with work.
    pub idle_waits: u64,
}

/// Outcome of a run: final per-node states plus metrics.
#[derive(Debug)]
pub struct RunResult<P> {
    /// Final protocol state of each node, indexed by node id.
    pub states: Vec<P>,
    /// Aggregate statistics.
    pub metrics: RunMetrics,
    /// Executor work counters.
    pub stats: SchedStats,
}

/// Naive pending-message state of the reference executor.
struct RefState<M> {
    pending: Vec<Vec<(NodeId, M)>>,
    seen: HashSet<NodeId>,
    in_flight: usize,
}

/// Validates and meters one node's outgoing messages (reference path).
/// Duplicate sends take precedence over per-message violations, exactly
/// as in the scheduler's flat-buffer commit.
fn commit_reference<M: Message>(
    g: &WeightedGraph,
    cfg: &CongestConfig,
    round: u64,
    out: &mut Outbox<M>,
    st: &mut RefState<M>,
    metrics: &mut RunMetrics,
) -> Result<(), SimError> {
    let from = out.from;
    st.seen.clear();
    for &(to, _) in &out.msgs {
        if !st.seen.insert(to) {
            return Err(SimError::DuplicateSend { from, to, round });
        }
    }
    for (to, msg) in out.msgs.drain(..) {
        let edge = g
            .find_edge(from, to)
            .ok_or(SimError::NotANeighbor { from, to })?;
        let bits = msg.encoded_bits();
        if bits > cfg.bandwidth_bits {
            return Err(SimError::BandwidthExceeded {
                from,
                to,
                bits,
                budget: cfg.bandwidth_bits,
                round,
            });
        }
        metrics.messages += 1;
        metrics.total_bits += bits as u64;
        metrics.max_message_bits = metrics.max_message_bits.max(bits);
        if cfg.metered_cut.contains(&edge) {
            metrics.cut_bits += bits as u64;
        }
        st.pending[to.idx()].push((from, msg));
        st.in_flight += 1;
    }
    Ok(())
}

/// The naive reference executor: invokes every node every round.
///
/// Θ(n) scheduling work per round makes this unsuitable for sparse
/// protocols at scale — use [`crate::run`] — but its simplicity makes it
/// the semantic oracle: the scheduler must produce bit-identical
/// [`RunMetrics`] and final states on every contract-abiding protocol,
/// and `bench_runner` measures the work the active-set scheduler saves
/// against it.
///
/// # Errors
///
/// Propagates any [`SimError`] raised by model enforcement.
pub fn run_reference<P: Protocol>(
    g: &WeightedGraph,
    mut nodes: Vec<P>,
    cfg: &CongestConfig,
) -> Result<RunResult<P>, SimError> {
    let n = g.n();
    if nodes.len() != n {
        return Err(SimError::WrongNodeCount {
            expected: n,
            got: nodes.len(),
        });
    }
    let mut metrics = RunMetrics::default();
    let mut stats = SchedStats::default();
    let mut inboxes: Vec<Vec<(NodeId, P::Msg)>> = vec![Vec::new(); n];
    let mut st = RefState {
        pending: vec![Vec::new(); n],
        seen: HashSet::new(),
        in_flight: 0,
    };

    // Round 0: init.
    for v in 0..n {
        let ctx = NodeCtx::new(NodeId::from(v), n, 0, g);
        let mut out = Outbox::new(ctx.id);
        nodes[v].init(&ctx, &mut out);
        commit_reference(g, cfg, 0, &mut out, &mut st, &mut metrics)?;
    }

    let mut round = 0u64;
    loop {
        if st.in_flight == 0 && nodes.iter().all(|p| p.done()) {
            break;
        }
        round += 1;
        if round > cfg.max_rounds {
            return Err(SimError::MaxRoundsExceeded {
                limit: cfg.max_rounds,
            });
        }
        // Deliver messages sent last round.
        std::mem::swap(&mut inboxes, &mut st.pending);
        st.in_flight = 0;
        for v in 0..n {
            let ctx = NodeCtx::new(NodeId::from(v), n, round, g);
            let inbox = std::mem::take(&mut inboxes[v]);
            let mut out = Outbox::new(ctx.id);
            nodes[v].round(&ctx, &inbox, &mut out);
            stats.activations += 1;
            commit_reference(g, cfg, round, &mut out, &mut st, &mut metrics)?;
        }
        metrics.rounds = round;
    }

    Ok(RunResult {
        states: nodes,
        metrics,
        stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::run;
    use crate::shard::run_sharded;
    use dsf_graph::generators;

    type Exec<P> = fn(&WeightedGraph, Vec<P>, &CongestConfig) -> Result<RunResult<P>, SimError>;

    fn run_sharded3<P>(
        g: &WeightedGraph,
        nodes: Vec<P>,
        cfg: &CongestConfig,
    ) -> Result<RunResult<P>, SimError>
    where
        P: Protocol + Send,
        P::Msg: Send,
    {
        run_sharded(g, nodes, cfg, 3)
    }

    /// All three executors, to exercise model enforcement on each.
    fn executors<P>() -> [Exec<P>; 3]
    where
        P: Protocol + Send,
        P::Msg: Send + 'static,
    {
        [run::<P>, run_reference::<P>, run_sharded3::<P>]
    }

    #[derive(Clone, Debug)]
    struct Blob(usize);
    impl Message for Blob {
        fn encoded_bits(&self) -> usize {
            self.0
        }
    }

    /// Every node sends one oversized blob to its first neighbor in round 1.
    #[derive(Debug)]
    struct Oversize {
        fired: bool,
        size: usize,
    }
    impl Protocol for Oversize {
        type Msg = Blob;
        fn init(&mut self, _ctx: &NodeCtx, _out: &mut Outbox<Blob>) {}
        fn round(&mut self, ctx: &NodeCtx, _inbox: &[(NodeId, Blob)], out: &mut Outbox<Blob>) {
            if !self.fired {
                self.fired = true;
                let (nb, _) = ctx.neighbors()[0];
                out.send(nb, Blob(self.size));
            }
        }
        fn done(&self) -> bool {
            self.fired
        }
    }

    #[test]
    fn bandwidth_is_enforced() {
        let g = generators::path(3, 1);
        let cfg = CongestConfig::for_graph(&g);
        let too_big = cfg.bandwidth_bits + 1;
        for exec in executors() {
            let nodes = (0..3)
                .map(|_| Oversize {
                    fired: false,
                    size: too_big,
                })
                .collect();
            let err = exec(&g, nodes, &cfg).unwrap_err();
            assert!(matches!(err, SimError::BandwidthExceeded { .. }));
        }
    }

    #[test]
    fn within_budget_passes() {
        let g = generators::path(3, 1);
        let cfg = CongestConfig::for_graph(&g);
        for exec in executors() {
            let nodes = (0..3)
                .map(|_| Oversize {
                    fired: false,
                    size: cfg.bandwidth_bits,
                })
                .collect();
            let res = exec(&g, nodes, &cfg).unwrap();
            assert_eq!(res.metrics.messages, 3);
            assert_eq!(res.metrics.max_message_bits, cfg.bandwidth_bits);
        }
    }

    /// Sends two messages to the same neighbor in one round.
    #[derive(Debug)]
    struct DoubleSend {
        fired: bool,
    }
    impl Protocol for DoubleSend {
        type Msg = Blob;
        fn init(&mut self, ctx: &NodeCtx, out: &mut Outbox<Blob>) {
            if ctx.id == NodeId(0) {
                let (nb, _) = ctx.neighbors()[0];
                out.send(nb, Blob(1));
                out.send(nb, Blob(1));
            }
            self.fired = true;
        }
        fn round(&mut self, _: &NodeCtx, _: &[(NodeId, Blob)], _: &mut Outbox<Blob>) {}
        fn done(&self) -> bool {
            self.fired
        }
    }

    #[test]
    fn duplicate_send_is_rejected() {
        let g = generators::path(2, 1);
        for exec in executors() {
            let nodes = (0..2).map(|_| DoubleSend { fired: false }).collect();
            let err = exec(&g, nodes, &CongestConfig::for_graph(&g)).unwrap_err();
            assert_eq!(
                err,
                SimError::DuplicateSend {
                    from: NodeId(0),
                    to: NodeId(1),
                    round: 0
                }
            );
        }
    }

    /// A protocol that never quiesces: node 0 keeps sending forever and
    /// honestly never votes done.
    #[derive(Debug)]
    struct Chatter;
    impl Protocol for Chatter {
        type Msg = Blob;
        fn init(&mut self, ctx: &NodeCtx, out: &mut Outbox<Blob>) {
            if ctx.id == NodeId(0) {
                let (nb, _) = ctx.neighbors()[0];
                out.send(nb, Blob(1));
            }
        }
        fn round(&mut self, ctx: &NodeCtx, _: &[(NodeId, Blob)], out: &mut Outbox<Blob>) {
            if ctx.id == NodeId(0) {
                let (nb, _) = ctx.neighbors()[0];
                out.send(nb, Blob(1));
            }
        }
        fn done(&self) -> bool {
            false
        }
    }

    #[test]
    fn max_rounds_guard() {
        let g = generators::path(2, 1);
        let mut cfg = CongestConfig::for_graph(&g);
        cfg.max_rounds = 50;
        for exec in executors() {
            let err = exec(&g, vec![Chatter, Chatter], &cfg).unwrap_err();
            assert_eq!(err, SimError::MaxRoundsExceeded { limit: 50 });
        }
    }

    /// A protocol *violating* the `done` contract: it votes done but keeps
    /// talking. The reference executor, which invokes everyone, shows the
    /// true divergence; the event-driven executor trusts the vote and
    /// would stop scheduling the liar — which is why the contract exists.
    #[derive(Debug)]
    struct LyingChatter;
    impl Protocol for LyingChatter {
        type Msg = Blob;
        fn init(&mut self, ctx: &NodeCtx, out: &mut Outbox<Blob>) {
            if ctx.id == NodeId(0) {
                let (nb, _) = ctx.neighbors()[0];
                out.send(nb, Blob(1));
            }
        }
        fn round(&mut self, ctx: &NodeCtx, _: &[(NodeId, Blob)], out: &mut Outbox<Blob>) {
            if ctx.id == NodeId(0) {
                let (nb, _) = ctx.neighbors()[0];
                out.send(nb, Blob(1));
            }
        }
        fn done(&self) -> bool {
            true
        }
    }

    #[test]
    fn reference_executor_exposes_done_contract_violations() {
        let g = generators::path(2, 1);
        let mut cfg = CongestConfig::for_graph(&g);
        cfg.max_rounds = 50;
        let err = run_reference(&g, vec![LyingChatter, LyingChatter], &cfg).unwrap_err();
        assert_eq!(err, SimError::MaxRoundsExceeded { limit: 50 });
    }

    #[test]
    fn wrong_node_count() {
        let g = generators::path(3, 1);
        for exec in executors() {
            let err = exec(&g, vec![Chatter], &CongestConfig::for_graph(&g)).unwrap_err();
            assert!(matches!(err, SimError::WrongNodeCount { .. }));
        }
    }

    /// Echo counts: each endpoint of each edge sends a ping in round 1; cut
    /// metering must count exactly the pings over the metered edge.
    #[derive(Debug)]
    struct Ping {
        fired: bool,
    }
    impl Protocol for Ping {
        type Msg = Blob;
        fn init(&mut self, ctx: &NodeCtx, out: &mut Outbox<Blob>) {
            for &(nb, _) in ctx.neighbors() {
                out.send(nb, Blob(8));
            }
            self.fired = true;
        }
        fn round(&mut self, _: &NodeCtx, _: &[(NodeId, Blob)], _: &mut Outbox<Blob>) {}
        fn done(&self) -> bool {
            self.fired
        }
    }

    #[test]
    fn cut_metering() {
        let g = generators::path(4, 1); // edges 0-1, 1-2, 2-3
        let cut_edge = g.find_edge(NodeId(1), NodeId(2)).unwrap();
        let cfg = CongestConfig::with_metered_cut(&g, [cut_edge]);
        for exec in executors() {
            let nodes = (0..4).map(|_| Ping { fired: false }).collect();
            let res = exec(&g, nodes, &cfg).unwrap();
            assert_eq!(res.metrics.cut_bits, 16); // 8 bits each direction
            assert_eq!(res.metrics.total_bits, 6 * 8);
        }
    }

    /// Messages sent in round r arrive in round r+1 — the synchronous
    /// semantics every round bound relies on.
    #[derive(Debug)]
    struct Echo {
        sent_round: Option<u64>,
        got_round: Option<u64>,
    }
    impl Protocol for Echo {
        type Msg = Blob;
        fn init(&mut self, ctx: &NodeCtx, out: &mut Outbox<Blob>) {
            if ctx.id == NodeId(0) {
                out.send(NodeId(1), Blob(3));
                self.sent_round = Some(ctx.round);
            }
        }
        fn round(&mut self, ctx: &NodeCtx, inbox: &[(NodeId, Blob)], _: &mut Outbox<Blob>) {
            if !inbox.is_empty() && self.got_round.is_none() {
                self.got_round = Some(ctx.round);
            }
        }
        fn done(&self) -> bool {
            true
        }
    }

    #[test]
    fn one_round_message_latency() {
        let g = generators::path(2, 1);
        for exec in executors() {
            let nodes = vec![
                Echo {
                    sent_round: None,
                    got_round: None,
                },
                Echo {
                    sent_round: None,
                    got_round: None,
                },
            ];
            let res = exec(&g, nodes, &CongestConfig::for_graph(&g)).unwrap();
            assert_eq!(res.states[0].sent_round, Some(0));
            assert_eq!(res.states[1].got_round, Some(1));
        }
    }

    #[test]
    fn determinism() {
        let g = generators::gnp_connected(12, 0.3, 9, 5);
        let mk = || (0..12).map(|_| Ping { fired: false }).collect::<Vec<_>>();
        let cfg = CongestConfig::for_graph(&g);
        for exec in executors() {
            let a = exec(&g, mk(), &cfg).unwrap();
            let b = exec(&g, mk(), &cfg).unwrap();
            assert_eq!(a.metrics, b.metrics);
        }
    }
}
