//! Session-scoped reuse of [`RunBuffers`] across runs, message types, and
//! graphs — the allocation-amortization layer under `dsf-service`. See
//! [`BufferPool`].

use std::any::{Any, TypeId};
use std::cell::RefCell;
use std::collections::HashMap;

use dsf_graph::WeightedGraph;

use crate::buffers::{CsrTopology, RunBuffers};
use crate::message::Message;

/// Arena-traffic counters of one [`BufferPool`].
///
/// `builds` counts CSR arena allocations (a checkout that found no pooled
/// arena for its `(message type, graph)` key), `reuses` counts checkouts
/// served by clearing a pooled arena in place. A warmed-up session solving
/// the same graph repeatedly holds `builds` constant while `reuses` grows —
/// the steady-state zero-allocation property `bench_runner --service`
/// asserts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Checkouts served by resetting a pooled arena in place (no
    /// allocation).
    pub reuses: u64,
    /// Checkouts that had to allocate (or, on a fingerprint collision,
    /// rebuild) a slot arena.
    pub builds: u64,
}

/// A pool of reusable [`RunBuffers`], keyed by message type and graph
/// fingerprint, installed per-thread for the duration of a
/// [`BufferPool::scope`] call.
///
/// [`crate::run_with_buffers`] already makes *one* protocol stage
/// allocation-free, but a whole solver (`solve_deterministic`,
/// `solve_randomized`, …) is a composition of many stages with
/// *different* message types, each of which calls [`crate::run`]
/// internally — and each such call used to allocate a fresh CSR slot
/// arena. A `BufferPool` closes that gap: while a pool is installed on
/// the current thread (via [`BufferPool::scope`]), every single-threaded
/// [`crate::run`] checks the pool for an arena keyed by `(message type,
/// graph fingerprint)` before allocating, and returns it to the pool
/// afterwards. Repeated solves over the same graph therefore allocate
/// **zero** steady-state arena memory, no matter how many stages and
/// message types the solver composes.
///
/// Reuse is observable only through [`PoolStats`] — a pooled arena is
/// [`RunBuffers::reset_for`]-cleared before every run, so results stay
/// bit-identical with or without a pool (the determinism contract of
/// [`crate::run`] is unaffected; property-tested in this module and
/// end-to-end by `bench_runner --service`).
///
/// The pool is plain owned data (`Send`), so a solver session can carry
/// it from batch to batch and across worker threads; it is only
/// *consulted* through the thread-local installation `scope` performs.
/// Memory is bounded: at most [`BufferPool::capacity`] arenas are held
/// (default [`BufferPool::DEFAULT_CAPACITY`]), with the
/// least-recently-used arena evicted deterministically when a checkin
/// would exceed the bound — so a long-running service over an unbounded
/// stream of distinct graphs cannot grow without limit. An evicted
/// graph's next solve simply rebuilds (counted in [`PoolStats::builds`]);
/// [`BufferPool::clear`] drops everything at once.
///
/// # Example
///
/// ```
/// use dsf_congest::{run, with_threads, BufferPool, CongestConfig, Message, NodeCtx, Outbox,
///                   Protocol};
/// use dsf_graph::{generators, NodeId};
///
/// #[derive(Clone, Debug)]
/// struct Ping;
/// impl Message for Ping {
///     fn encoded_bits(&self) -> usize { 1 }
/// }
/// struct Once(bool);
/// impl Protocol for Once {
///     type Msg = Ping;
///     fn init(&mut self, ctx: &NodeCtx, out: &mut Outbox<Ping>) {
///         out.send_all(ctx, Ping);
///         self.0 = true;
///     }
///     fn round(&mut self, _: &NodeCtx, _: &[(NodeId, Ping)], _: &mut Outbox<Ping>) {}
///     fn done(&self) -> bool { self.0 }
/// }
///
/// let g = generators::path(6, 1);
/// let cfg = CongestConfig::for_graph(&g);
/// let mut pool = BufferPool::new();
/// for _ in 0..3 {
///     let nodes = (0..6).map(|_| Once(false)).collect();
///     // Pin the single-threaded engine: only it consults the pool (the
///     // sharded engine owns per-worker state instead), so the counters
///     // below hold under any ambient DSF_THREADS.
///     pool.scope(|| with_threads(1, || run(&g, nodes, &cfg))).unwrap();
/// }
/// // First solve built the arena; the two repeats reused it in place.
/// assert_eq!(pool.stats().builds, 1);
/// assert_eq!(pool.stats().reuses, 2);
/// ```
#[derive(Debug)]
pub struct BufferPool {
    /// Type-erased `RunBuffers<M>` values tagged with the [`BufferPool::tick`]
    /// of their last checkin; the key's `TypeId` is `M`'s. Recency is O(1)
    /// per touch (stamp on insert, gone on remove); the O(len) min-tick
    /// scan runs only when an eviction is actually needed, i.e. when a
    /// *new* key enters a full pool — which already paid an O(n + m)
    /// arena build, so steady-state traffic over warm keys never scans.
    slots: HashMap<(TypeId, u64), (u64, Box<dyn Any + Send>)>,
    /// Monotonic checkin counter; higher = more recently used.
    tick: u64,
    /// Most arenas retained at once.
    capacity: usize,
    stats: PoolStats,
}

impl Default for BufferPool {
    /// An empty pool with [`BufferPool::DEFAULT_CAPACITY`].
    fn default() -> Self {
        Self::with_capacity(Self::DEFAULT_CAPACITY)
    }
}

thread_local! {
    /// The pool installed on this thread by [`BufferPool::scope`], if any.
    static INSTALLED: RefCell<Option<BufferPool>> = const { RefCell::new(None) };
}

impl BufferPool {
    /// Default bound on retained arenas. Generous for any realistic mix
    /// of solver stages × recurring graphs, while capping worst-case
    /// memory on an unbounded stream of distinct graphs.
    pub const DEFAULT_CAPACITY: usize = 256;

    /// An empty pool with the default capacity.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty pool retaining at most `capacity` arenas (clamped to ≥ 1).
    pub fn with_capacity(capacity: usize) -> Self {
        BufferPool {
            slots: HashMap::new(),
            tick: 0,
            capacity: capacity.max(1),
            stats: PoolStats::default(),
        }
    }

    /// The most arenas this pool retains at once.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The pool's arena-traffic counters so far.
    pub fn stats(&self) -> PoolStats {
        self.stats
    }

    /// Number of pooled arenas currently held.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the pool holds no arenas.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Drops every pooled arena (the stats are kept).
    pub fn clear(&mut self) {
        self.slots.clear();
    }

    /// Installs the pool on the current thread for the duration of `f`:
    /// every single-threaded [`crate::run`] inside `f` checks out its
    /// [`RunBuffers`] from this pool instead of allocating, and checks
    /// them back in when done.
    ///
    /// The pool is moved into thread-local storage and moved back out when
    /// `f` returns — including on unwind, so a panicking solver does not
    /// lose the pool. Multi-threaded runs ([`crate::run_sharded`], or
    /// [`crate::run`] with `DSF_THREADS > 1`) are unaffected: their
    /// per-shard state is not pooled.
    ///
    /// Scopes nest gracefully: the innermost pool shadows any outer one
    /// for the duration of `f` (every checkout/checkin inside goes to the
    /// inner pool), and the outer installation is restored — arenas and
    /// stats untouched — when `f` returns or unwinds. A solver session
    /// dispatched from inside another session's scope (e.g. a server
    /// worker composing pooled components) therefore cannot panic here;
    /// each pool just keeps its own accounting.
    pub fn scope<R>(&mut self, f: impl FnOnce() -> R) -> R {
        // Shadow any outer installation; `Restore` puts it back on exit —
        // including on unwind, so a panicking solver loses neither pool.
        let shadowed = INSTALLED.with(|slot| slot.borrow_mut().replace(std::mem::take(self)));
        struct Restore<'a> {
            target: &'a mut BufferPool,
            shadowed: Option<BufferPool>,
        }
        impl Drop for Restore<'_> {
            fn drop(&mut self) {
                INSTALLED.with(|slot| {
                    let mine = std::mem::replace(&mut *slot.borrow_mut(), self.shadowed.take());
                    if let Some(pool) = mine {
                        *self.target = pool;
                    }
                });
            }
        }
        let _restore = Restore {
            target: self,
            shadowed,
        };
        f()
    }
}

/// Checks out buffers for a run of message type `M` on `g` from the pool
/// installed on this thread, if any. `Some` is returned whenever a pool is
/// installed — served from the pool when a matching arena is held, freshly
/// allocated (and counted as a build) otherwise. `None` means no pool is
/// installed and the caller should allocate as before.
pub(crate) fn checkout<M: Message + Send + 'static>(g: &WeightedGraph) -> Option<RunBuffers<M>> {
    let key = (TypeId::of::<M>(), CsrTopology::fingerprint_of(g));
    INSTALLED.with(|slot| {
        let mut slot = slot.borrow_mut();
        let pool = slot.as_mut()?;
        match pool.slots.remove(&key) {
            Some((_tick, boxed)) => {
                let buf = *boxed
                    .downcast::<RunBuffers<M>>()
                    .expect("pool slots are keyed by their message TypeId");
                // The key's fingerprint matched, but the fingerprint is 64
                // bits over the adjacency structure — guard the (astronomically
                // unlikely) collision between structurally different graphs
                // with O(1) shape checks before trusting the arena: reusing a
                // mismatched `off`/`mate` layout would silently misroute
                // messages.
                let shape_matches =
                    buf.topo.n == g.n() && buf.topo.off.last().copied() == Some(2 * g.m() as u32);
                if shape_matches {
                    // No reset here: `run_with_buffers` resets the buffers
                    // at the start of every run, and doing it twice would
                    // clear the O(n + m) shard state redundantly on the
                    // hot path.
                    pool.stats.reuses += 1;
                    Some(buf)
                } else {
                    pool.stats.builds += 1;
                    Some(RunBuffers::for_graph(g))
                }
            }
            None => {
                pool.stats.builds += 1;
                Some(RunBuffers::for_graph(g))
            }
        }
    })
}

/// Returns buffers checked out via [`checkout`] to this thread's installed
/// pool, keyed by the graph they are currently built for, evicting the
/// least-recently-used arena when the pool is at capacity. A no-op when
/// the pool was uninstalled in between (the buffers are simply dropped).
pub(crate) fn checkin<M: Message + Send + 'static>(buf: RunBuffers<M>) {
    let key = (TypeId::of::<M>(), buf.topo.fingerprint);
    INSTALLED.with(|slot| {
        if let Some(pool) = slot.borrow_mut().as_mut() {
            pool.tick += 1;
            pool.slots.insert(key, (pool.tick, Box::new(buf)));
            // Eviction order matches the old explicit LRU list: smallest
            // checkin tick = least recently checked in. The scan only runs
            // when this checkin grew the pool past capacity, i.e. after a
            // fresh build — warm-key traffic stays O(1).
            while pool.slots.len() > pool.capacity {
                let victim = pool
                    .slots
                    .iter()
                    .min_by_key(|(_, (tick, _))| *tick)
                    .map(|(k, _)| *k)
                    .expect("pool is over capacity, so it is nonempty");
                pool.slots.remove(&victim);
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::{CongestConfig, NodeCtx, Outbox, Protocol, RunResult, SimError};
    use crate::shard::with_threads;
    use dsf_graph::{generators, NodeId, WeightedGraph};

    /// `crate::run` pinned to the single-threaded engine — the only one
    /// that consults the pool — so these tests hold under any ambient
    /// `DSF_THREADS`.
    fn run<P>(
        g: &WeightedGraph,
        nodes: Vec<P>,
        cfg: &CongestConfig,
    ) -> Result<RunResult<P>, SimError>
    where
        P: Protocol + Send,
        P::Msg: Send + 'static,
    {
        with_threads(1, || crate::scheduler::run(g, nodes, cfg))
    }

    #[derive(Clone, Debug)]
    struct Ping;
    impl Message for Ping {
        fn encoded_bits(&self) -> usize {
            8
        }
    }

    #[derive(Clone, Debug)]
    struct Pong;
    impl Message for Pong {
        fn encoded_bits(&self) -> usize {
            8
        }
    }

    struct Flood<M: Clone> {
        have: bool,
        sent: bool,
        msg: M,
    }

    impl<M: Message + Clone + 'static> Protocol for Flood<M> {
        type Msg = M;
        fn init(&mut self, ctx: &NodeCtx, out: &mut Outbox<M>) {
            if ctx.id == NodeId(0) {
                self.have = true;
                out.send_all(ctx, self.msg.clone());
                self.sent = true;
            }
        }
        fn round(&mut self, ctx: &NodeCtx, inbox: &[(NodeId, M)], out: &mut Outbox<M>) {
            if !inbox.is_empty() {
                self.have = true;
            }
            if self.have && !self.sent {
                out.send_all(ctx, self.msg.clone());
                self.sent = true;
            }
        }
        fn done(&self) -> bool {
            self.have
        }
    }

    fn flood_nodes<M: Clone>(n: usize, msg: M) -> Vec<Flood<M>> {
        (0..n)
            .map(|_| Flood {
                have: false,
                sent: false,
                msg: msg.clone(),
            })
            .collect()
    }

    #[test]
    fn pool_reuses_per_message_type_and_graph() {
        let a = generators::path(8, 1);
        let b = generators::ring(8, 3, 0);
        let cfg_a = CongestConfig::for_graph(&a);
        let cfg_b = CongestConfig::for_graph(&b);
        let mut pool = BufferPool::new();
        for _ in 0..3 {
            // Two message types on graph a, one on graph b: three slots.
            pool.scope(|| run(&a, flood_nodes(8, Ping), &cfg_a))
                .unwrap();
            pool.scope(|| run(&a, flood_nodes(8, Pong), &cfg_a))
                .unwrap();
            pool.scope(|| run(&b, flood_nodes(8, Ping), &cfg_b))
                .unwrap();
        }
        assert_eq!(pool.len(), 3);
        assert_eq!(pool.stats().builds, 3, "one build per (type, graph) key");
        assert_eq!(pool.stats().reuses, 6, "every repeat reused in place");
    }

    #[test]
    fn capacity_evicts_least_recently_used_arena() {
        let a = generators::path(4, 1);
        let b = generators::path(5, 1);
        let c = generators::path(6, 1);
        let mut pool = BufferPool::with_capacity(2);
        for g in [&a, &b, &c] {
            let cfg = CongestConfig::for_graph(g);
            pool.scope(|| run(g, flood_nodes(g.n(), Ping), &cfg))
                .unwrap();
        }
        // Capacity 2: `a` (least recently used) was evicted.
        assert_eq!(pool.len(), 2);
        assert_eq!(pool.stats().builds, 3);
        // `b` is still warm...
        let cfg = CongestConfig::for_graph(&b);
        pool.scope(|| run(&b, flood_nodes(5, Ping), &cfg)).unwrap();
        assert_eq!(pool.stats().reuses, 1);
        // ...while `a` must rebuild.
        let cfg = CongestConfig::for_graph(&a);
        pool.scope(|| run(&a, flood_nodes(4, Ping), &cfg)).unwrap();
        assert_eq!(pool.stats().builds, 4);
        assert_eq!(pool.len(), 2);
    }

    #[test]
    fn pooled_runs_are_bit_identical_to_fresh_runs() {
        let g = generators::gnp_connected(24, 0.15, 9, 3);
        let cfg = CongestConfig::for_graph(&g);
        let fresh = run(&g, flood_nodes(24, Ping), &cfg).unwrap();
        let mut pool = BufferPool::new();
        for _ in 0..2 {
            let pooled = pool.scope(|| run(&g, flood_nodes(24, Ping), &cfg)).unwrap();
            assert_eq!(pooled.metrics, fresh.metrics);
            assert_eq!(pooled.stats, fresh.stats);
        }
        assert_eq!(pool.stats().reuses, 1);
    }

    #[test]
    fn scope_restores_the_pool_on_unwind() {
        let g = generators::path(4, 1);
        let cfg = CongestConfig::for_graph(&g);
        let mut pool = BufferPool::new();
        pool.scope(|| run(&g, flood_nodes(4, Ping), &cfg)).unwrap();
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.scope(|| panic!("solver blew up"))
        }));
        assert!(caught.is_err());
        // The pool survived the unwind with its arena intact.
        assert_eq!(pool.len(), 1);
        pool.scope(|| run(&g, flood_nodes(4, Ping), &cfg)).unwrap();
        assert_eq!(
            pool.stats(),
            PoolStats {
                reuses: 1,
                builds: 1
            }
        );
    }

    #[test]
    fn nested_scope_shadows_the_outer_pool_and_restores_it() {
        let g = generators::path(6, 1);
        let cfg = CongestConfig::for_graph(&g);
        let mut outer = BufferPool::new();
        let mut inner = BufferPool::new();
        // Warm the outer pool, then run inside a nested inner scope: the
        // inner pool takes the traffic, the outer is restored untouched.
        outer.scope(|| run(&g, flood_nodes(6, Ping), &cfg)).unwrap();
        outer.scope(|| {
            inner.scope(|| run(&g, flood_nodes(6, Ping), &cfg)).unwrap();
            // Back under the outer installation: this run reuses the
            // outer pool's warm arena.
            run(&g, flood_nodes(6, Ping), &cfg).unwrap();
        });
        assert_eq!(
            inner.stats(),
            PoolStats {
                reuses: 0,
                builds: 1
            },
            "the inner scope took its own traffic"
        );
        assert_eq!(
            outer.stats(),
            PoolStats {
                reuses: 1,
                builds: 1
            },
            "the outer pool was shadowed during the inner scope, then restored"
        );
        assert_eq!(outer.len(), 1);
        assert_eq!(inner.len(), 1);
    }

    #[test]
    fn nested_scope_survives_an_inner_unwind() {
        let g = generators::path(4, 1);
        let cfg = CongestConfig::for_graph(&g);
        let mut outer = BufferPool::new();
        let mut inner = BufferPool::new();
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            outer.scope(|| {
                run(&g, flood_nodes(4, Ping), &cfg).unwrap();
                inner.scope(|| panic!("inner solver blew up"))
            })
        }));
        assert!(caught.is_err());
        // Both pools survived the unwind with their state intact.
        assert_eq!(outer.len(), 1);
        assert_eq!(inner.len(), 0);
        outer.scope(|| run(&g, flood_nodes(4, Ping), &cfg)).unwrap();
        assert_eq!(
            outer.stats(),
            PoolStats {
                reuses: 1,
                builds: 1
            }
        );
    }

    #[test]
    fn steady_state_churn_keeps_lru_order_at_capacity() {
        // Regression for the O(capacity) `retain` on every touch: beyond
        // the complexity fix, eviction order must stay observably LRU.
        // Cycle 3 graphs through a capacity-2 pool twice: every checkin of
        // a not-held graph evicts the least recently used one, so no run
        // ever finds its arena pooled — 6 builds, 0 reuses.
        let graphs = [
            generators::path(4, 1),
            generators::path(5, 1),
            generators::path(6, 1),
        ];
        let mut pool = BufferPool::with_capacity(2);
        for _ in 0..2 {
            for g in &graphs {
                let cfg = CongestConfig::for_graph(g);
                pool.scope(|| run(g, flood_nodes(g.n(), Ping), &cfg))
                    .unwrap();
            }
        }
        assert_eq!(
            pool.stats(),
            PoolStats {
                reuses: 0,
                builds: 6
            }
        );
        assert_eq!(pool.len(), 2);
        // The two most recent graphs are the ones retained.
        for g in &graphs[1..] {
            let cfg = CongestConfig::for_graph(g);
            pool.scope(|| run(g, flood_nodes(g.n(), Ping), &cfg))
                .unwrap();
        }
        assert_eq!(pool.stats().reuses, 2);
    }
}
