//! Compact per-node run-state containers for the event-driven executors.
//!
//! At the 10M-node scale tier the per-node bookkeeping dominates cache
//! traffic: one byte per `Vec<bool>` flag and two 4-byte entries per
//! node in the active-list double buffer add up to more than the slot
//! arena itself on sparse rounds. This module packs both:
//!
//! * [`BitSet`] — one bit per node instead of one byte, for the
//!   `next`-round membership marks and the cached termination votes;
//! * [`SlidingQueue`] — the GAP Benchmark Suite frontier idiom: one flat
//!   vector holding the current round's window at the front and the
//!   next round's insertions behind it, so promoting a round is a
//!   `drain` + in-place sort instead of a swap between two vectors.
//!
//! Both are plain data with no unsafe code; determinism comes from the
//! window sort in [`SlidingQueue::slide`], which reproduces the
//! ascending-node-id execution order the reference executor defines.

/// A fixed-length packed bit vector (one bit per node).
#[derive(Debug, Default)]
pub(crate) struct BitSet {
    words: Vec<u64>,
    len: usize,
}

impl BitSet {
    /// Clears all bits and resizes to `len` bits.
    pub(crate) fn reset(&mut self, len: usize) {
        self.words.clear();
        self.words.resize(len.div_ceil(64), 0);
        self.len = len;
    }

    #[inline]
    pub(crate) fn get(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        self.words[i >> 6] & (1u64 << (i & 63)) != 0
    }

    #[inline]
    pub(crate) fn set(&mut self, i: usize) {
        debug_assert!(i < self.len);
        self.words[i >> 6] |= 1u64 << (i & 63);
    }

    #[inline]
    pub(crate) fn clear(&mut self, i: usize) {
        debug_assert!(i < self.len);
        self.words[i >> 6] &= !(1u64 << (i & 63));
    }

    #[inline]
    pub(crate) fn assign(&mut self, i: usize, value: bool) {
        if value {
            self.set(i);
        } else {
            self.clear(i);
        }
    }
}

/// A GAP-style sliding frontier: one flat vector whose prefix
/// `[0, window)` is the round being executed and whose tail holds the
/// nodes scheduled for the next round.
///
/// The executing round iterates the window by index (the window bounds
/// are fixed for the whole round) while commits push new work onto the
/// tail, so no `mem::take`/restore dance or second vector is needed.
/// [`slide`](SlidingQueue::slide) retires the window, promotes the tail,
/// and sorts it — the ascending-node-id order the engines are contracted
/// to execute in.
#[derive(Debug, Default)]
pub(crate) struct SlidingQueue {
    buf: Vec<u32>,
    window: usize,
}

impl SlidingQueue {
    /// Appends a node to the next round's tail.
    #[inline]
    pub(crate) fn push(&mut self, v: u32) {
        self.buf.push(v);
    }

    /// Number of nodes in the executing window.
    #[inline]
    pub(crate) fn window_len(&self) -> usize {
        self.window
    }

    /// The `i`-th node of the executing window.
    #[inline]
    pub(crate) fn at(&self, i: usize) -> u32 {
        debug_assert!(i < self.window);
        self.buf[i]
    }

    /// Whether no nodes are queued behind the executing window. The
    /// work-stealing engine uses this as the per-chunk idleness test: a
    /// chunk with an empty tail and no staged arrivals has nothing to do
    /// this round and is skipped without sliding (the stale window is
    /// retired by the next slide whenever the chunk reactivates).
    #[inline]
    pub(crate) fn tail_is_empty(&self) -> bool {
        self.buf.len() == self.window
    }

    /// Retires the executed window, promotes the tail to the new window,
    /// and sorts it into ascending node-id order. Returns the new window
    /// as a slice (for unmarking membership bits).
    pub(crate) fn slide(&mut self) -> &[u32] {
        self.buf.drain(..self.window);
        self.buf.sort_unstable();
        self.window = self.buf.len();
        &self.buf
    }

    /// Drops all queued work (window and tail).
    pub(crate) fn clear(&mut self) {
        self.buf.clear();
        self.window = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bitset_set_get_clear() {
        let mut b = BitSet::default();
        b.reset(130);
        assert!(!b.get(0) && !b.get(64) && !b.get(129));
        b.set(0);
        b.set(64);
        b.set(129);
        assert!(b.get(0) && b.get(64) && b.get(129));
        assert!(!b.get(1) && !b.get(63) && !b.get(65) && !b.get(128));
        b.clear(64);
        assert!(!b.get(64) && b.get(0) && b.get(129));
        b.assign(64, true);
        b.assign(0, false);
        assert!(b.get(64) && !b.get(0));
        // Reset wipes everything, including when shrinking.
        b.reset(10);
        for i in 0..10 {
            assert!(!b.get(i));
        }
    }

    #[test]
    fn sliding_queue_promotes_sorted_windows() {
        let mut q = SlidingQueue::default();
        assert_eq!(q.window_len(), 0);
        q.push(5);
        q.push(2);
        q.push(9);
        assert_eq!(q.window_len(), 0, "pushes land in the tail");
        assert_eq!(q.slide(), &[2, 5, 9]);
        assert_eq!(q.window_len(), 3);
        assert_eq!((q.at(0), q.at(1), q.at(2)), (2, 5, 9));
        // Pushing mid-round leaves the window untouched.
        q.push(1);
        q.push(7);
        assert_eq!(q.window_len(), 3);
        assert_eq!(q.at(0), 2);
        assert_eq!(q.slide(), &[1, 7]);
        assert_eq!(q.window_len(), 2);
        assert_eq!(q.slide(), &[] as &[u32]);
        assert_eq!(q.window_len(), 0);
    }

    #[test]
    fn sliding_queue_tail_emptiness_tracks_pushes_and_slides() {
        let mut q = SlidingQueue::default();
        assert!(q.tail_is_empty());
        q.push(4);
        assert!(!q.tail_is_empty());
        q.slide();
        assert!(q.tail_is_empty(), "the window does not count as tail");
        q.push(9);
        assert!(!q.tail_is_empty());
        q.clear();
        assert!(q.tail_is_empty());
    }

    #[test]
    fn sliding_queue_clear_drops_window_and_tail() {
        let mut q = SlidingQueue::default();
        q.push(3);
        q.slide();
        q.push(8);
        q.clear();
        assert_eq!(q.window_len(), 0);
        assert_eq!(q.slide(), &[] as &[u32]);
    }
}
