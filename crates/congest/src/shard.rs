//! The sharded deterministic executor: parallel CONGEST rounds that stay
//! bit-identical to the single-threaded engines.
//!
//! [`run_sharded`] partitions the CSR node arena into contiguous,
//! slot-balanced shards — one per worker thread — and runs every round as
//!
//! 1. **compute phase**: each worker drains its shard's active set in
//!    ascending node-id order, exactly like the single-threaded scheduler
//!    ([`crate::run`]); same-shard deliveries are written straight into
//!    the shard's `next` slot segment, cross-shard deliveries are
//!    validated, metered, and queued per destination shard;
//! 2. **barrier**, then **merge phase**: each worker drains the queues
//!    addressed to it in ascending source-shard order — which, because
//!    shards are contiguous ascending node ranges and each worker commits
//!    in ascending node order, is exactly ascending `(sender id, edge
//!    id)` order — writing each message into its unique per-directed-edge
//!    slot and scheduling the receiver;
//! 3. **barrier**, then a replicated **termination decision** from the
//!    per-worker in-flight/not-done/error counters every worker published
//!    before the barrier.
//!
//! # Why the outcome is bit-identical
//!
//! Synchronous-round semantics make round `r` a pure function of the
//! state after round `r − 1`: a node's inbox (gathered from its own slot
//! segment in adjacency order, i.e. ascending sender id) and its state do
//! not depend on *when* other nodes run within the round. Each
//! per-directed-edge slot has exactly one legal writer per round, so slot
//! contents are independent of shard layout; [`crate::RunMetrics`] are
//! commutative folds (sums and a max) over the layout-independent message
//! multiset; and commit-time model violations are node-local verdicts, so
//! the run aborts with the verdict of the smallest erroring node id — the
//! same error the sequential executors report. The equivalence is
//! property-tested across thread counts in
//! `tests/scheduler_equivalence.rs`.
//!
//! The replicated decision is race-free by construction: every worker
//! publishes its counters *before* the post-merge barrier and reads all
//! of them *after* it, and no worker overwrites its slot again until
//! after the *next* pre-merge barrier — which it can only reach once all
//! workers have finished deciding.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Barrier, Mutex};

use dsf_graph::WeightedGraph;

use crate::buffers::{
    check_arena_capacity, CsrTopology, EngineCtx, RemoteMsg, RunBuffers, ShardState,
};
use crate::executor::{CongestConfig, Protocol, RunMetrics, RunResult, SchedStats, SimError};
use crate::scheduler::{invoke_init, invoke_round, run_with_buffers};

/// Process-wide default worker-thread count used by [`crate::run`];
/// 0 = not yet initialized from the environment.
static DEFAULT_THREADS: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// Scoped per-thread override installed by [`with_threads`], consulted
    /// before the process-wide default. Lets a scheduler (the solver
    /// service) pin the dispatch of the solves *it* runs without
    /// perturbing concurrent users of [`crate::run`] on other threads.
    static THREAD_OVERRIDE: std::cell::Cell<Option<usize>> = const { std::cell::Cell::new(None) };
}

/// The worker-thread count [`crate::run`] dispatches on for the calling
/// thread: a scoped [`with_threads`] override if one is installed,
/// otherwise the process-wide default — the value of the `DSF_THREADS`
/// environment variable at first use (clamped to ≥ 1, default 1), unless
/// overridden via [`set_default_threads`]. Thread count never changes any
/// deterministic outcome — it is a wall-clock knob only.
///
/// A set-but-malformed `DSF_THREADS` (unparseable, or `0`) falls back to
/// 1 worker, with a one-time diagnostic on stderr — a perf-gate run with
/// a typo'd variable must not *silently* drop to single-threaded (the
/// bench header also prints the effective count).
pub fn default_threads() -> usize {
    if let Some(t) = THREAD_OVERRIDE.with(std::cell::Cell::get) {
        return t;
    }
    match DEFAULT_THREADS.load(Ordering::Relaxed) {
        0 => {
            let raw = std::env::var("DSF_THREADS").ok();
            let parsed = raw.as_ref().and_then(|s| s.trim().parse::<usize>().ok());
            if let Some(raw) = &raw {
                if parsed.is_none() || parsed == Some(0) {
                    // Once: the first initializer wins the race, so losers
                    // (who would observe a nonzero cache) never get here
                    // twice, but two simultaneous first calls could.
                    static DIAG: std::sync::Once = std::sync::Once::new();
                    DIAG.call_once(|| {
                        eprintln!(
                            "dsf-congest: DSF_THREADS={raw:?} is not a positive integer; \
                             falling back to 1 worker thread"
                        );
                    });
                }
            }
            let t = parsed.unwrap_or(1).max(1);
            DEFAULT_THREADS.store(t, Ordering::Relaxed);
            t
        }
        t => t,
    }
}

/// Overrides the worker-thread count [`crate::run`] uses from now on
/// (clamped to ≥ 1). Safe to flip at any time — runs are bit-identical
/// across thread counts, so concurrent readers observe no behavioral
/// difference.
pub fn set_default_threads(threads: usize) {
    DEFAULT_THREADS.store(threads.max(1), Ordering::Relaxed);
}

/// Runs `f` with this thread's [`crate::run`] dispatch pinned to
/// `threads` workers (clamped to ≥ 1), restoring the previous state on
/// exit — including on unwind. Unlike [`set_default_threads`] this is
/// purely thread-local: concurrent runs on other threads are unaffected,
/// which is how the solver service schedules batches without perturbing
/// anyone else's configuration. Nesting is allowed; the innermost
/// override wins.
pub fn with_threads<R>(threads: usize, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<usize>);
    impl Drop for Restore {
        fn drop(&mut self) {
            THREAD_OVERRIDE.with(|c| c.set(self.0));
        }
    }
    let prev = THREAD_OVERRIDE.with(|c| c.replace(Some(threads.max(1))));
    let _restore = Restore(prev);
    f()
}

/// How a worker left the round loop. All workers take the same exit in
/// the same round (the decision is a pure function of replicated data).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Outcome {
    /// Network quiet and all votes done.
    Quiesced,
    /// A model violation was recorded; the run returns it.
    Aborted,
    /// `cfg.max_rounds` exceeded.
    MaxRounds,
}

/// State shared by all workers of one run.
struct SharedSync<M> {
    /// Two-phase barrier (pre-merge, post-merge).
    barrier: Barrier,
    /// `t × t` cross-shard queues; `mailboxes[src * t + dst]` carries the
    /// messages shard `src` committed for shard `dst` this round. Each is
    /// locked exactly twice per round (producer swap-in, consumer drain),
    /// never contended past that handoff.
    mailboxes: Vec<Mutex<Vec<RemoteMsg<M>>>>,
    /// Per-worker `[in_flight, not_done, erred]` counters for the
    /// replicated termination decision. Written by the owner before the
    /// post-merge barrier, read by everyone after it.
    published: Vec<[AtomicU64; 3]>,
    /// The lowest-node-id model violation observed across shards; the
    /// value the run aborts with.
    first_error: Mutex<Option<(u32, SimError)>>,
}

/// The node a commit-time violation is attributed to (all commit errors
/// name their sender).
fn error_node(e: &SimError) -> u32 {
    match e {
        SimError::BandwidthExceeded { from, .. }
        | SimError::DuplicateSend { from, .. }
        | SimError::NotANeighbor { from, .. } => from.0,
        // Raised by the loop control / entry checks, never by a commit.
        SimError::MaxRoundsExceeded { .. }
        | SimError::WrongNodeCount { .. }
        | SimError::ArenaOverflow { .. } => {
            unreachable!("not a commit error")
        }
    }
}

/// Records `e` as the run's error iff its node precedes the current one —
/// reproducing the sequential executors, which stop at the first erroring
/// node in ascending id order.
fn record_error(slot: &Mutex<Option<(u32, SimError)>>, e: SimError) {
    let node = error_node(&e);
    let mut guard = slot.lock().expect("no worker panics while recording");
    if guard.as_ref().is_none_or(|(n, _)| node < *n) {
        *guard = Some((node, e));
    }
}

/// Executes `nodes` on `g` until quiescence with `threads` worker
/// threads, bit-identical to [`crate::run`] and [`crate::run_reference`]
/// in [`RunMetrics`], final states, and errors (see the module docs for
/// the argument; `threads` is clamped to `1..=n`). `threads == 1` runs
/// the single-threaded scheduler directly.
///
/// # Example
///
/// ```
/// use dsf_congest::{run_sharded, CongestConfig, Message, NodeCtx, Outbox, Protocol};
/// use dsf_graph::{generators, NodeId};
///
/// #[derive(Clone, Debug)]
/// struct Token;
/// impl Message for Token {
///     fn encoded_bits(&self) -> usize { 1 }
/// }
/// struct Flood { have: bool }
/// impl Protocol for Flood {
///     type Msg = Token;
///     fn init(&mut self, ctx: &NodeCtx, out: &mut Outbox<Token>) {
///         if ctx.id == NodeId(0) { self.have = true; out.send_all(ctx, Token); }
///     }
///     fn round(&mut self, ctx: &NodeCtx, inbox: &[(NodeId, Token)], out: &mut Outbox<Token>) {
///         if !self.have && !inbox.is_empty() { self.have = true; out.send_all(ctx, Token); }
///     }
///     fn done(&self) -> bool { self.have }
/// }
///
/// let g = generators::grid(8, 8, 4, 0);
/// let cfg = CongestConfig::for_graph(&g);
/// let nodes = |_: ()| (0..64).map(|_| Flood { have: false }).collect::<Vec<_>>();
/// let four = run_sharded(&g, nodes(()), &cfg, 4).unwrap();
/// let one = run_sharded(&g, nodes(()), &cfg, 1).unwrap();
/// // Bit-identical at every thread count — the worker count is a pure
/// // wall-clock knob.
/// assert_eq!(four.metrics, one.metrics);
/// ```
///
/// # Errors
///
/// Propagates any [`SimError`] raised by model enforcement — the same
/// error the sequential executors raise on the same protocol.
pub fn run_sharded<P>(
    g: &WeightedGraph,
    nodes: Vec<P>,
    cfg: &CongestConfig,
    threads: usize,
) -> Result<RunResult<P>, SimError>
where
    P: Protocol + Send,
    P::Msg: Send,
{
    let n = g.n();
    if nodes.len() != n {
        return Err(SimError::WrongNodeCount {
            expected: n,
            got: nodes.len(),
        });
    }
    check_arena_capacity(n, g.m())?;
    let threads = threads.clamp(1, n.max(1));
    if threads == 1 {
        let mut buffers = RunBuffers::for_graph(g);
        return run_with_buffers(g, nodes, cfg, &mut buffers);
    }

    let topo = CsrTopology::build(g);
    let bounds = topo.shard_bounds(threads);
    let t = bounds.len() - 1;
    let shards: Vec<ShardState<P::Msg>> = (0..t)
        .map(|s| ShardState::new(&topo, bounds[s], bounds[s + 1]))
        .collect();
    let chunks = split_nodes(nodes, &bounds);
    let sync = SharedSync {
        barrier: Barrier::new(t),
        mailboxes: (0..t * t).map(|_| Mutex::new(Vec::new())).collect(),
        published: (0..t)
            .map(|_| [AtomicU64::new(0), AtomicU64::new(0), AtomicU64::new(0)])
            .collect(),
        first_error: Mutex::new(None),
    };

    let results: Vec<(Outcome, ShardState<P::Msg>, Vec<P>)> = std::thread::scope(|scope| {
        let handles: Vec<_> = shards
            .into_iter()
            .zip(chunks)
            .enumerate()
            .map(|(me, (shard, chunk))| {
                let (topo, bounds, sync) = (&topo, &bounds[..], &sync);
                scope.spawn(move || {
                    let ectx = EngineCtx {
                        g,
                        topo,
                        cfg,
                        bounds,
                    };
                    worker(me, shard, chunk, &ectx, sync)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(r) => r,
                // A protocol callback panicked on that worker: re-raise
                // the original payload, exactly as the sequential
                // engines would have (the worker already steered every
                // other worker out of the barrier protocol first).
                Err(payload) => resume_unwind(payload),
            })
            .collect()
    });

    if let Some((_, e)) = sync.first_error.into_inner().expect("workers joined") {
        return Err(e);
    }
    if results[0].0 == Outcome::MaxRounds {
        return Err(SimError::MaxRoundsExceeded {
            limit: cfg.max_rounds,
        });
    }
    let mut states = Vec::with_capacity(n);
    let mut metrics = RunMetrics::default();
    let mut stats = SchedStats::default();
    for (_, shard, chunk) in results {
        states.extend(chunk);
        metrics.rounds = metrics.rounds.max(shard.metrics.rounds);
        metrics.messages += shard.metrics.messages;
        metrics.total_bits += shard.metrics.total_bits;
        metrics.max_message_bits = metrics.max_message_bits.max(shard.metrics.max_message_bits);
        metrics.cut_bits += shard.metrics.cut_bits;
        stats.activations += shard.stats.activations;
        stats.wakeups += shard.stats.wakeups;
    }
    Ok(RunResult {
        states,
        metrics,
        stats,
    })
}

/// Splits the node vector into per-shard chunks along `bounds` with O(n)
/// total moves.
fn split_nodes<P>(nodes: Vec<P>, bounds: &[u32]) -> Vec<Vec<P>> {
    let t = bounds.len() - 1;
    let mut chunks = Vec::with_capacity(t);
    let mut rest = nodes;
    for s in (1..t).rev() {
        chunks.push(rest.split_off(bounds[s] as usize));
    }
    chunks.push(rest);
    chunks.reverse();
    chunks
}

/// One worker's run: round 0 (init) on its shard, then the
/// compute → barrier → merge → barrier → decide loop until every worker
/// takes the same exit.
fn worker<P: Protocol>(
    me: usize,
    mut shard: ShardState<P::Msg>,
    mut nodes: Vec<P>,
    ectx: &EngineCtx<'_>,
    sync: &SharedSync<P::Msg>,
) -> (Outcome, ShardState<P::Msg>, Vec<P>) {
    let t = ectx.bounds.len() - 1;
    let mut outbound: Vec<Vec<RemoteMsg<P::Msg>>> = (0..t).map(|_| Vec::new()).collect();
    let mut erred = false;
    // A panic caught in a protocol callback. Unwinding out of the round
    // loop directly would strand every other worker in `Barrier::wait`
    // forever; instead the panic is held, the round is flagged as erred
    // so the abort decision is collective, and the payload is re-raised
    // only after the last barrier (see the `Aborted` exit).
    let mut panicked: Option<Box<dyn std::any::Any + Send>> = None;
    let mut round = 0u64;

    // Round 0: init the owned nodes. On a violation, stop computing but
    // keep participating in the barriers so the abort is collective.
    match catch_unwind(AssertUnwindSafe(|| {
        invoke_init(ectx, &mut shard, &mut nodes, &mut outbound)
    })) {
        Ok(Ok(())) => {}
        Ok(Err(e)) => {
            record_error(&sync.first_error, e);
            erred = true;
        }
        Err(payload) => {
            panicked = Some(payload);
            erred = true;
        }
    }

    loop {
        // Hand this round's cross-shard messages to their owners; the
        // swap recycles the storage the receiver drained last round.
        for (dst, q) in outbound.iter_mut().enumerate() {
            if dst != me {
                std::mem::swap(
                    q,
                    &mut *sync.mailboxes[me * t + dst].lock().expect("no panics"),
                );
            }
        }
        sync.barrier.wait(); // all sends visible
        for src in 0..t {
            if src == me {
                continue;
            }
            let mut q = sync.mailboxes[src * t + me].lock().expect("no panics");
            for m in q.drain(..) {
                shard.deliver_remote(m);
            }
        }
        // Publish this shard's decision inputs. Plain stores suffice: the
        // barriers on either side order them against every reader.
        sync.published[me][0].store(shard.in_flight, Ordering::Relaxed);
        sync.published[me][1].store(shard.not_done as u64, Ordering::Relaxed);
        sync.published[me][2].store(u64::from(erred), Ordering::Relaxed);
        sync.barrier.wait(); // all counters visible
                             // Replicated decision — same inputs, same verdict, on every
                             // worker; no slot is overwritten until after the next pre-merge
                             // barrier, which requires everyone to have decided.
        let mut in_flight = 0u64;
        let mut not_done = 0u64;
        let mut any_err = false;
        for p in &sync.published {
            in_flight += p[0].load(Ordering::Relaxed);
            not_done += p[1].load(Ordering::Relaxed);
            any_err |= p[2].load(Ordering::Relaxed) != 0;
        }
        if any_err {
            // Past the last barrier: every worker is taking this exit,
            // so re-raising a held panic can no longer strand anyone.
            if let Some(payload) = panicked {
                resume_unwind(payload);
            }
            return (Outcome::Aborted, shard, nodes);
        }
        if in_flight == 0 && not_done == 0 {
            return (Outcome::Quiesced, shard, nodes);
        }
        round += 1;
        if round > ectx.cfg.max_rounds {
            return (Outcome::MaxRounds, shard, nodes);
        }
        shard.promote();
        match catch_unwind(AssertUnwindSafe(|| {
            invoke_round(ectx, round, &mut shard, &mut nodes, &mut outbound)
        })) {
            Ok(Ok(())) => {}
            Ok(Err(e)) => {
                record_error(&sync.first_error, e);
                erred = true;
            }
            Err(payload) => {
                panicked = Some(payload);
                erred = true;
            }
        }
        shard.metrics.rounds = round;
    }
}
