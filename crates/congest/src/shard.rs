//! The work-stealing deterministic executor: parallel CONGEST rounds
//! that stay bit-identical to the single-threaded engines with **one**
//! barrier per round.
//!
//! [`run_sharded`] partitions the CSR node arena into `C` contiguous,
//! slot-balanced *chunks* (`C = min(8 × threads, 64, n)`), each a
//! self-contained [`SegmentState`] with its own frontier
//! (`SlidingQueue` + `BitSet`), slot-arena slice, and protocol states.
//! Every worker owns a contiguous *home range* of chunks, claimed through
//! a per-range atomic cursor; a worker that drains its home range steals
//! whole chunks from the other ranges through the same cursors. A round
//! is, per claimed chunk:
//!
//! 1. **staged merge**: drain the messages other chunks staged for this
//!    chunk last round, in ascending source-chunk order — which, because
//!    chunks are contiguous ascending node ranges committed in ascending
//!    node order, is exactly the canonical ascending `(sender id, edge
//!    id)` order — writing each into its unique per-directed-edge slot;
//! 2. **promote**: slide the chunk's frontier and swap its slot arenas;
//! 3. **compute**: drain the chunk's active window in ascending node-id
//!    order, exactly like the single-threaded scheduler ([`crate::run`]);
//!    same-chunk deliveries are written straight into the chunk's `next`
//!    segment, cross-chunk deliveries are validated, metered, counted,
//!    and staged per `(destination, source)` chunk pair.
//!
//! After the claims dry up the worker publishes its per-round counters
//! (messages sent, not-done votes, error flag), crosses the round's
//! single barrier, and every worker replicates the same termination
//! decision from the published counters. Chunks with an empty frontier
//! tail and no staged arrivals are skipped at the cost of one cursor
//! claim — on skewed instances most of the graph is asleep most rounds,
//! and whole sleeping regions cost almost nothing while the few busy
//! chunks are shared by all workers.
//!
//! # Why the outcome is bit-identical
//!
//! Synchronous-round semantics make round `r` a pure function of the
//! state after round `r − 1`: a node's inbox (gathered from its own slot
//! segment in adjacency order, i.e. ascending sender id) and its state do
//! not depend on *when* other nodes run within the round — so neither
//! chunk claim order nor steal timing can influence any node's behavior.
//! Each per-directed-edge slot has exactly one legal writer per round, so
//! slot contents are independent of the chunk layout and of staging
//! order; each chunk's frontier window is sorted ascending and
//! deduplicated before execution, so scheduling order is canonical no
//! matter when deliveries arrived; [`crate::RunMetrics`] and the
//! deterministic [`SchedStats`] fields are commutative folds (sums and a
//! max) over layout-independent per-node facts; and commit-time model
//! violations are node-local verdicts, so the run aborts with the verdict
//! of the smallest erroring node id — the same error the sequential
//! executors report. The equivalence is property-tested across thread
//! counts and adversarially skewed activity patterns in
//! `tests/scheduler_equivalence.rs`.
//!
//! Two structural invariants carry the proofs:
//!
//! * **unique claim** — chunk cursors only move through `fetch_add`, so
//!   every chunk is claimed by exactly one worker per round; a claimed
//!   chunk is processed immediately by its claimant, whose exclusive
//!   access is materialized by the chunk's (uncontended) mutex;
//! * **lowest-error coverage** — a worker claims its home chunks in
//!   ascending chunk (hence node-id) order and only steals after its
//!   own range is fully claimed. If the chunk holding the globally
//!   smallest erroring node were left unclaimed, its home worker must
//!   have stopped earlier in its own range — i.e. on a violation by an
//!   even smaller node id, contradicting minimality. The minimal error
//!   is therefore always observed and wins the reduction.
//!
//! The replicated decision is race-free by construction: counters are
//! double-buffered by round parity, every worker publishes *before* the
//! round's barrier and reads *after* it, and a slot of the same parity is
//! only rewritten two barriers later — by which time every reader has
//! long moved on. The same parity scheme protects the staging matrix:
//! cells written in round `r` are drained in round `r + 1` under the
//! opposite parity, so producers and consumers of the same cell are
//! always separated by the barrier.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Barrier, Mutex};

use dsf_graph::WeightedGraph;

use crate::buffers::{
    check_arena_capacity, CsrTopology, EngineCtx, RemoteMsg, RunBuffers, SegmentState,
};
use crate::executor::{
    CongestConfig, Protocol, RunMetrics, RunResult, SchedStats, SimError, WorkerObs,
};
use crate::scheduler::{invoke_init, invoke_round, run_with_buffers};

/// Chunks handed to each worker's home range before stealing kicks in:
/// enough granularity that one hot region splits across workers, small
/// enough that idle-chunk claims stay negligible.
const CHUNKS_PER_WORKER: usize = 8;

/// Hard cap on the chunk count: the per-chunk staged-arrival source sets
/// are single `u64` bitmasks, so a chunk's merge scan touches only the
/// nonempty staging cells.
const MAX_CHUNKS: usize = 64;

/// Process-wide default worker-thread count used by [`crate::run`];
/// 0 = not yet initialized from the environment.
static DEFAULT_THREADS: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// Scoped per-thread override installed by [`with_threads`], consulted
    /// before the process-wide default. Lets a scheduler (the solver
    /// service) pin the dispatch of the solves *it* runs without
    /// perturbing concurrent users of [`crate::run`] on other threads.
    static THREAD_OVERRIDE: std::cell::Cell<Option<usize>> = const { std::cell::Cell::new(None) };
}

/// The worker-thread count [`crate::run`] dispatches on for the calling
/// thread: a scoped [`with_threads`] override if one is installed,
/// otherwise the process-wide default — the value of the `DSF_THREADS`
/// environment variable at first use (clamped to ≥ 1, default 1), unless
/// overridden via [`set_default_threads`]. Thread count never changes any
/// deterministic outcome — it is a wall-clock knob only.
///
/// A set-but-malformed `DSF_THREADS` (unparseable, or `0`) falls back to
/// 1 worker, with a one-time diagnostic on stderr — a perf-gate run with
/// a typo'd variable must not *silently* drop to single-threaded (the
/// bench header also prints the effective count).
pub fn default_threads() -> usize {
    if let Some(t) = THREAD_OVERRIDE.with(std::cell::Cell::get) {
        return t;
    }
    match DEFAULT_THREADS.load(Ordering::Relaxed) {
        0 => {
            let raw = std::env::var("DSF_THREADS").ok();
            let parsed = raw.as_ref().and_then(|s| s.trim().parse::<usize>().ok());
            if let Some(raw) = &raw {
                if parsed.is_none() || parsed == Some(0) {
                    // Once: the first initializer wins the race, so losers
                    // (who would observe a nonzero cache) never get here
                    // twice, but two simultaneous first calls could.
                    static DIAG: std::sync::Once = std::sync::Once::new();
                    DIAG.call_once(|| {
                        eprintln!(
                            "dsf-congest: DSF_THREADS={raw:?} is not a positive integer; \
                             falling back to 1 worker thread"
                        );
                    });
                }
            }
            let t = parsed.unwrap_or(1).max(1);
            DEFAULT_THREADS.store(t, Ordering::Relaxed);
            t
        }
        t => t,
    }
}

/// Overrides the worker-thread count [`crate::run`] uses from now on
/// (clamped to ≥ 1). Safe to flip at any time — runs are bit-identical
/// across thread counts, so concurrent readers observe no behavioral
/// difference.
pub fn set_default_threads(threads: usize) {
    DEFAULT_THREADS.store(threads.max(1), Ordering::Relaxed);
}

/// Runs `f` with this thread's [`crate::run`] dispatch pinned to
/// `threads` workers (clamped to ≥ 1), restoring the previous state on
/// exit — including on unwind. Unlike [`set_default_threads`] this is
/// purely thread-local: concurrent runs on other threads are unaffected,
/// which is how the solver service schedules batches without perturbing
/// anyone else's configuration. Nesting is allowed; the innermost
/// override wins.
pub fn with_threads<R>(threads: usize, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<usize>);
    impl Drop for Restore {
        fn drop(&mut self) {
            THREAD_OVERRIDE.with(|c| c.set(self.0));
        }
    }
    let prev = THREAD_OVERRIDE.with(|c| c.replace(Some(threads.max(1))));
    let _restore = Restore(prev);
    f()
}

/// Cumulative process-wide scheduling observability from every completed
/// [`run_sharded`] run. Report-only by contract: these totals track
/// wall-clock effort distribution (steal traffic, idle rounds), never
/// anything that feeds a deterministic outcome — `bench_runner` prints
/// the per-mode deltas in each mode footer.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SchedObsTotals {
    /// Completed multi-threaded runs.
    pub sharded_runs: u64,
    /// Worker-rounds in which a worker processed at least one chunk with
    /// work.
    pub worker_rounds: u64,
    /// Active-set slots (node invocations, `init` included) executed.
    pub slots_processed: u64,
    /// Chunks claimed outside the claiming worker's home range that held
    /// work.
    pub chunks_stolen: u64,
    /// Worker-rounds spent reaching the barrier with nothing to do.
    pub idle_waits: u64,
}

static OBS_RUNS: AtomicU64 = AtomicU64::new(0);
static OBS_ROUNDS: AtomicU64 = AtomicU64::new(0);
static OBS_SLOTS: AtomicU64 = AtomicU64::new(0);
static OBS_STEALS: AtomicU64 = AtomicU64::new(0);
static OBS_IDLE: AtomicU64 = AtomicU64::new(0);

/// Snapshot of the process-wide [`SchedObsTotals`]. Callers wanting
/// per-phase numbers (the bench modes) snapshot before and after and
/// report the difference.
pub fn sched_obs_totals() -> SchedObsTotals {
    SchedObsTotals {
        sharded_runs: OBS_RUNS.load(Ordering::Relaxed),
        worker_rounds: OBS_ROUNDS.load(Ordering::Relaxed),
        slots_processed: OBS_SLOTS.load(Ordering::Relaxed),
        chunks_stolen: OBS_STEALS.load(Ordering::Relaxed),
        idle_waits: OBS_IDLE.load(Ordering::Relaxed),
    }
}

/// How a worker left the round loop. All workers take the same exit in
/// the same round (the decision is a pure function of replicated data).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Outcome {
    /// Network quiet and all votes done.
    Quiesced,
    /// A model violation was recorded; the run returns it.
    Aborted,
    /// `cfg.max_rounds` exceeded.
    MaxRounds,
}

/// One chunk's claimable state: its arena segment plus the protocol
/// states of its nodes. The mutex materializes the unique-claim
/// invariant for the borrow checker — it is locked exactly once per
/// round, by the claimant, and never contended.
struct ChunkSlot<M, P> {
    seg: SegmentState<M>,
    nodes: Vec<P>,
}

/// State shared by all workers of one run.
struct SharedRound<M, P> {
    /// The round's single barrier.
    barrier: Barrier,
    /// The `C` claimable chunks, ascending contiguous node ranges.
    chunks: Vec<Mutex<ChunkSlot<M, P>>>,
    /// Post-hoc merge staging, double-buffered by round parity:
    /// `staging[p][dst * C + src]` holds the messages chunk `src`
    /// committed for chunk `dst` in a round of parity `p`, drained by
    /// `dst`'s claimant in the next round (opposite parity). Each cell is
    /// locked at most twice per use (producer swap-in, consumer drain)
    /// and its storage is recycled by the swap.
    staging: [Vec<Mutex<Vec<RemoteMsg<M>>>>; 2],
    /// Nonempty-source masks over the staging matrix, one `u64` per
    /// destination chunk and parity: bit `src` set ⇔ the staging cell
    /// `staging[p][dst * C + src]` is nonempty. The claimant consumes its
    /// chunk's mask with a single `swap(0)` and visits only the set bits,
    /// in ascending source-chunk (= canonical sender) order.
    nonempty: [Vec<AtomicU64>; 2],
    /// Per-worker home-range claim cursors (relative chunk index).
    /// Thieves advance foreign cursors with the same `fetch_add`, which
    /// is what makes every claim unique.
    cursors: Vec<AtomicUsize>,
    /// Home chunk range `[lo, hi)` of each worker.
    homes: Vec<(usize, usize)>,
    /// Per-worker `[sent, not_done, erred]` counters for the replicated
    /// termination decision, double-buffered by round parity: written by
    /// the owner before the round's barrier, read by everyone after it,
    /// and not rewritten until two barriers later.
    published: [Vec<[AtomicU64; 3]>; 2],
    /// The lowest-node-id model violation observed across chunks; the
    /// value the run aborts with.
    first_error: Mutex<Option<(u32, SimError)>>,
}

/// The node a commit-time violation is attributed to (all commit errors
/// name their sender).
fn error_node(e: &SimError) -> u32 {
    match e {
        SimError::BandwidthExceeded { from, .. }
        | SimError::DuplicateSend { from, .. }
        | SimError::NotANeighbor { from, .. } => from.0,
        // Raised by the loop control / entry checks, never by a commit.
        SimError::MaxRoundsExceeded { .. }
        | SimError::WrongNodeCount { .. }
        | SimError::ArenaOverflow { .. } => {
            unreachable!("not a commit error")
        }
    }
}

/// Records `e` as the run's error iff its node precedes the current one —
/// reproducing the sequential executors, which stop at the first erroring
/// node in ascending id order.
fn record_error(slot: &Mutex<Option<(u32, SimError)>>, e: SimError) {
    let node = error_node(&e);
    let mut guard = slot.lock().expect("no worker panics while recording");
    if guard.as_ref().is_none_or(|(n, _)| node < *n) {
        *guard = Some((node, e));
    }
}

/// Executes `nodes` on `g` until quiescence with `threads` worker
/// threads, bit-identical to [`crate::run`] and [`crate::run_reference`]
/// in [`RunMetrics`], final states, deterministic [`SchedStats`], and
/// errors (see the module docs for the argument; `threads` is clamped to
/// `1..=n`). `threads == 1` runs the single-threaded scheduler directly.
///
/// # Example
///
/// ```
/// use dsf_congest::{run_sharded, CongestConfig, Message, NodeCtx, Outbox, Protocol};
/// use dsf_graph::{generators, NodeId};
///
/// #[derive(Clone, Debug)]
/// struct Token;
/// impl Message for Token {
///     fn encoded_bits(&self) -> usize { 1 }
/// }
/// struct Flood { have: bool }
/// impl Protocol for Flood {
///     type Msg = Token;
///     fn init(&mut self, ctx: &NodeCtx, out: &mut Outbox<Token>) {
///         if ctx.id == NodeId(0) { self.have = true; out.send_all(ctx, Token); }
///     }
///     fn round(&mut self, ctx: &NodeCtx, inbox: &[(NodeId, Token)], out: &mut Outbox<Token>) {
///         if !self.have && !inbox.is_empty() { self.have = true; out.send_all(ctx, Token); }
///     }
///     fn done(&self) -> bool { self.have }
/// }
///
/// let g = generators::grid(8, 8, 4, 0);
/// let cfg = CongestConfig::for_graph(&g);
/// let nodes = |_: ()| (0..64).map(|_| Flood { have: false }).collect::<Vec<_>>();
/// let four = run_sharded(&g, nodes(()), &cfg, 4).unwrap();
/// let one = run_sharded(&g, nodes(()), &cfg, 1).unwrap();
/// // Bit-identical at every thread count — the worker count is a pure
/// // wall-clock knob.
/// assert_eq!(four.metrics, one.metrics);
/// ```
///
/// # Errors
///
/// Propagates any [`SimError`] raised by model enforcement — the same
/// error the sequential executors raise on the same protocol.
pub fn run_sharded<P>(
    g: &WeightedGraph,
    nodes: Vec<P>,
    cfg: &CongestConfig,
    threads: usize,
) -> Result<RunResult<P>, SimError>
where
    P: Protocol + Send,
    P::Msg: Send,
{
    let n = g.n();
    if nodes.len() != n {
        return Err(SimError::WrongNodeCount {
            expected: n,
            got: nodes.len(),
        });
    }
    check_arena_capacity(n, g.m())?;
    let threads = threads.clamp(1, n.max(1));
    if threads == 1 {
        let mut buffers = RunBuffers::for_graph(g);
        return run_with_buffers(g, nodes, cfg, &mut buffers);
    }

    let topo = CsrTopology::build(g);
    let c_total = (threads * CHUNKS_PER_WORKER).min(MAX_CHUNKS).min(n);
    let bounds = topo.shard_bounds(c_total);
    let c_total = bounds.len() - 1;
    let t = threads;
    let chunks: Vec<Mutex<ChunkSlot<P::Msg, P>>> = (0..c_total)
        .map(|c| SegmentState::new(&topo, bounds[c], bounds[c + 1]))
        .zip(split_nodes(nodes, &bounds))
        .map(|(seg, nodes)| Mutex::new(ChunkSlot { seg, nodes }))
        .collect();
    let cell_grid = || -> Vec<Mutex<Vec<RemoteMsg<P::Msg>>>> {
        (0..c_total * c_total)
            .map(|_| Mutex::new(Vec::new()))
            .collect()
    };
    let mask_row = || -> Vec<AtomicU64> { (0..c_total).map(|_| AtomicU64::new(0)).collect() };
    let published_row = || -> Vec<[AtomicU64; 3]> {
        (0..t)
            .map(|_| [AtomicU64::new(0), AtomicU64::new(0), AtomicU64::new(0)])
            .collect()
    };
    let sync = SharedRound {
        barrier: Barrier::new(t),
        chunks,
        staging: [cell_grid(), cell_grid()],
        nonempty: [mask_row(), mask_row()],
        cursors: (0..t).map(|_| AtomicUsize::new(0)).collect(),
        homes: (0..t)
            .map(|w| (w * c_total / t, (w + 1) * c_total / t))
            .collect(),
        published: [published_row(), published_row()],
        first_error: Mutex::new(None),
    };

    let results: Vec<(Outcome, u64, WorkerObs)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..t)
            .map(|me| {
                let (topo, bounds, sync) = (&topo, &bounds[..], &sync);
                scope.spawn(move || {
                    let ectx = EngineCtx {
                        g,
                        topo,
                        cfg,
                        bounds,
                    };
                    worker(me, &ectx, sync)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(r) => r,
                // A protocol callback panicked on that worker: re-raise
                // the original payload, exactly as the sequential
                // engines would have (the worker already steered every
                // other worker out of the barrier protocol first).
                Err(payload) => resume_unwind(payload),
            })
            .collect()
    });

    // Fold the report-only observability (process totals + per-run view)
    // before any early return, so even erroring runs are visible in the
    // bench footers.
    let mut workers = Vec::with_capacity(t);
    for (_, _, obs) in &results {
        OBS_ROUNDS.fetch_add(obs.rounds_participated, Ordering::Relaxed);
        OBS_SLOTS.fetch_add(obs.slots_processed, Ordering::Relaxed);
        OBS_STEALS.fetch_add(obs.chunks_stolen, Ordering::Relaxed);
        OBS_IDLE.fetch_add(obs.idle_waits, Ordering::Relaxed);
        workers.push(*obs);
    }
    OBS_RUNS.fetch_add(1, Ordering::Relaxed);

    if let Some((_, e)) = sync.first_error.into_inner().expect("workers joined") {
        return Err(e);
    }
    let (outcome, rounds, _) = results[0];
    if outcome == Outcome::MaxRounds {
        return Err(SimError::MaxRoundsExceeded {
            limit: cfg.max_rounds,
        });
    }
    let mut states = Vec::with_capacity(n);
    let mut metrics = RunMetrics::default();
    let mut stats = SchedStats::default();
    for slot in sync.chunks {
        let ChunkSlot { seg, nodes } = slot
            .into_inner()
            .expect("a panicked worker was re-raised above");
        states.extend(nodes);
        metrics.messages += seg.metrics.messages;
        metrics.total_bits += seg.metrics.total_bits;
        metrics.max_message_bits = metrics.max_message_bits.max(seg.metrics.max_message_bits);
        metrics.cut_bits += seg.metrics.cut_bits;
        stats.activations += seg.stats.activations;
        stats.wakeups += seg.stats.wakeups;
    }
    metrics.rounds = rounds;
    stats.workers = workers;
    Ok(RunResult {
        states,
        metrics,
        stats,
    })
}

/// Splits the node vector into per-chunk vectors along `bounds` with O(n)
/// total moves.
fn split_nodes<P>(nodes: Vec<P>, bounds: &[u32]) -> Vec<Vec<P>> {
    let t = bounds.len() - 1;
    let mut chunks = Vec::with_capacity(t);
    let mut rest = nodes;
    for s in (1..t).rev() {
        chunks.push(rest.split_off(bounds[s] as usize));
    }
    chunks.push(rest);
    chunks.reverse();
    chunks
}

/// Everything one worker accumulates within a single round.
struct RoundAcc {
    /// Messages committed by the chunks this worker processed (local and
    /// staged alike, counted at send time).
    sent: u64,
    /// Sum of the not-done votes over every chunk this worker claimed.
    /// Each chunk is claimed exactly once per round, so the cross-worker
    /// sum is the exact global count.
    not_done: u64,
    /// Whether any claimed chunk had work.
    worked: bool,
    /// A model violation was recorded; stop claiming, finish the round.
    erred: bool,
}

/// One worker's run: claim → process until the cursors dry up, publish,
/// one barrier, replicated decision — repeated until every worker takes
/// the same exit.
fn worker<P: Protocol>(
    me: usize,
    ectx: &EngineCtx<'_>,
    sync: &SharedRound<P::Msg, P>,
) -> (Outcome, u64, WorkerObs) {
    let t = sync.cursors.len();
    let c_total = sync.chunks.len();
    let mut outbound: Vec<Vec<RemoteMsg<P::Msg>>> = (0..c_total).map(|_| Vec::new()).collect();
    let mut obs = WorkerObs::default();
    // A panic caught in a protocol callback. Unwinding out of the round
    // loop directly would strand every other worker in `Barrier::wait`
    // forever; instead the panic is held, the round is flagged as erred
    // so the abort decision is collective, and the payload is re-raised
    // only after the barrier (see the `Aborted` exit).
    let mut panicked: Option<Box<dyn std::any::Any + Send>> = None;
    let mut round = 0u64;

    loop {
        let par = (round & 1) as usize;
        let mut acc = RoundAcc {
            sent: 0,
            not_done: 0,
            worked: false,
            erred: false,
        };

        // Claim phase: home range first (ascending — the lowest-error
        // coverage argument in the module docs depends on this), then
        // steal from the other ranges. Re-scan until a full pass claims
        // nothing; every cursor advance is a fetch_add, so each chunk is
        // claimed exactly once across all workers.
        loop {
            let mut claimed_any = false;
            'ranges: for i in 0..t {
                let w = (me + i) % t;
                let (lo, hi) = sync.homes[w];
                loop {
                    if acc.erred {
                        break 'ranges;
                    }
                    let idx = sync.cursors[w].fetch_add(1, Ordering::Relaxed);
                    if lo + idx >= hi {
                        break;
                    }
                    claimed_any = true;
                    let had_work = process_chunk(
                        lo + idx,
                        round,
                        par,
                        ectx,
                        sync,
                        &mut outbound,
                        &mut acc,
                        &mut obs,
                        &mut panicked,
                    );
                    if had_work && w != me {
                        obs.chunks_stolen += 1;
                    }
                }
            }
            if acc.erred || !claimed_any {
                break;
            }
        }

        // Publish this round's decision inputs under the round's parity.
        // Relaxed stores suffice: the barrier orders them against every
        // reader, and this parity slot is not rewritten until two
        // barriers later.
        let p = &sync.published[par][me];
        p[0].store(acc.sent, Ordering::Relaxed);
        p[1].store(acc.not_done, Ordering::Relaxed);
        p[2].store(u64::from(acc.erred), Ordering::Relaxed);
        if acc.worked {
            obs.rounds_participated += 1;
        } else {
            obs.idle_waits += 1;
        }
        sync.barrier.wait();
        // Reset the own-home cursor for the next round. Claims of round
        // `round` all happened before the barrier, so nothing races this
        // store; a thief peeking before the reset merely sees an
        // exhausted range and moves on (the owner still processes it).
        sync.cursors[me].store(0, Ordering::Relaxed);

        // Replicated decision — same inputs, same verdict, on every
        // worker.
        let mut sent = 0u64;
        let mut not_done = 0u64;
        let mut any_err = false;
        for p in &sync.published[par] {
            sent += p[0].load(Ordering::Relaxed);
            not_done += p[1].load(Ordering::Relaxed);
            any_err |= p[2].load(Ordering::Relaxed) != 0;
        }
        if any_err {
            // Past the barrier: every worker is taking this exit, so
            // re-raising a held panic can no longer strand anyone.
            if let Some(payload) = panicked {
                resume_unwind(payload);
            }
            return (Outcome::Aborted, round, obs);
        }
        if sent == 0 && not_done == 0 {
            return (Outcome::Quiesced, round, obs);
        }
        round += 1;
        if round > ectx.cfg.max_rounds {
            return (Outcome::MaxRounds, round, obs);
        }
    }
}

/// Processes one claimed chunk for `round`: staged merge in canonical
/// order, promote, compute, then flush this chunk's cross-chunk commits
/// into the opposite-parity staging row. Returns whether the chunk had
/// any work (an idle chunk costs one mask load and a frontier check).
#[allow(clippy::too_many_arguments)]
fn process_chunk<P: Protocol>(
    c: usize,
    round: u64,
    par: usize,
    ectx: &EngineCtx<'_>,
    sync: &SharedRound<P::Msg, P>,
    outbound: &mut [Vec<RemoteMsg<P::Msg>>],
    acc: &mut RoundAcc,
    obs: &mut WorkerObs,
    panicked: &mut Option<Box<dyn std::any::Any + Send>>,
) -> bool {
    let c_total = sync.chunks.len();
    // Consume this chunk's staged-arrival source set. Acquire pairs with
    // the producers' Release, though the barrier already orders both.
    let mask = sync.nonempty[par][c].swap(0, Ordering::Acquire);
    let mut guard = sync.chunks[c]
        .lock()
        .expect("chunk claims are unique and panics are caught inside");
    let ChunkSlot { seg, nodes } = &mut *guard;

    let outcome = if round == 0 {
        // Round 0: every chunk inits all of its nodes.
        acc.worked = true;
        obs.slots_processed += u64::from(seg.node_hi - seg.node_lo);
        catch_unwind(AssertUnwindSafe(|| {
            invoke_init(ectx, &mut *seg, nodes, &mut *outbound)
        }))
    } else {
        if mask == 0 && seg.frontier.tail_is_empty() {
            // Asleep: nothing arrived, nothing scheduled. `not_done`
            // must still be folded in (it is 0 whenever the invariant
            // "a not-done node is always scheduled" holds, but counting
            // it keeps the termination decision conservative).
            acc.not_done += seg.not_done as u64;
            return false;
        }
        acc.worked = true;
        // Staged merge: ascending source-chunk order is ascending
        // (sender id, edge id) order — the canonical merge order.
        let mut m = mask;
        while m != 0 {
            let src = m.trailing_zeros() as usize;
            m &= m - 1;
            let mut cell = sync.staging[par][c * c_total + src]
                .lock()
                .expect("staging cells see no panics");
            for msg in cell.drain(..) {
                seg.deliver_remote(msg);
            }
        }
        seg.promote();
        let before = seg.stats.activations;
        let r = catch_unwind(AssertUnwindSafe(|| {
            invoke_round(ectx, round, &mut *seg, nodes, &mut *outbound)
        }));
        obs.slots_processed += seg.stats.activations - before;
        r
    };

    match outcome {
        Ok(Ok(())) => {
            // Flush this chunk's cross-chunk commits into the staging row
            // of the next round's parity; the swap recycles whatever
            // storage the destination drained last time.
            let wpar = par ^ 1;
            for (dst, q) in outbound.iter_mut().enumerate() {
                if q.is_empty() {
                    continue;
                }
                debug_assert_ne!(dst, c, "same-chunk messages take the local path");
                let mut cell = sync.staging[wpar][dst * c_total + c]
                    .lock()
                    .expect("staging cells see no panics");
                debug_assert!(cell.is_empty(), "cell already drained by its consumer");
                std::mem::swap(&mut *cell, q);
                sync.nonempty[wpar][dst].fetch_or(1 << c, Ordering::Release);
            }
            acc.sent += seg.in_flight;
            acc.not_done += seg.not_done as u64;
        }
        Ok(Err(e)) => {
            record_error(&sync.first_error, e);
            acc.erred = true;
            // The partial commits are moot (the run aborts), but the
            // queues must not leak into another chunk's flush.
            for q in outbound.iter_mut() {
                q.clear();
            }
        }
        Err(payload) => {
            *panicked = Some(payload);
            acc.erred = true;
            for q in outbound.iter_mut() {
                q.clear();
            }
        }
    }
    true
}
