//! Flat, pre-allocated message buffers for the event-driven executor.
//!
//! The naive round loop (retained as [`crate::run_reference`]) keeps a
//! `Vec<Vec<(NodeId, Msg)>>` inbox/pending pair and allocates as traffic
//! grows. [`RunBuffers`] replaces it with a CSR-style per-edge slot arena
//! indexed by the graph's adjacency layout: for each *receiver* `v` and
//! each adjacency position `j`, slot `off[v] + j` holds the at most one
//! message in flight from `v`'s `j`-th neighbor (the CONGEST model allows
//! one message per edge direction per round, so one slot per directed edge
//! suffices). Two slot arrays are swapped between rounds, giving the same
//! double buffering as the old inbox/pending pair without touching the
//! allocator.
//!
//! A [`RunBuffers`] value is reusable: repeated runs on the same graph
//! (bench loops, multi-seed experiments) allocate zero steady-state
//! memory, because every vector is cleared and refilled in place. Reuse
//! across *different* graphs is detected via an adjacency fingerprint and
//! triggers a transparent rebuild.

use dsf_graph::{NodeId, WeightedGraph};

use crate::message::Message;

/// The CSR layout of the slot arena, derived from a graph's adjacency
/// lists.
#[derive(Debug, Clone)]
pub(crate) struct CsrTopology {
    /// Node count of the graph this layout was built for.
    pub(crate) n: usize,
    /// Receiver-side slot ranges: the slots of node `v` are
    /// `off[v]..off[v + 1]`, parallel to `g.neighbors(v)`.
    pub(crate) off: Vec<u32>,
    /// Directed-edge cross index: for sender `u` and adjacency position
    /// `j` (i.e. neighbor `v = g.neighbors(u)[j].0`), `mate[off[u] + j]`
    /// is the receiver-side slot of `v` for messages arriving from `u`.
    pub(crate) mate: Vec<u32>,
    /// Fingerprint of `(n, m, adjacency)`, used to detect reuse of the
    /// buffers with a structurally different graph.
    pub(crate) fingerprint: u64,
}

impl CsrTopology {
    /// FNV-1a over the adjacency structure (node/edge ids, not weights:
    /// weights do not affect message routing).
    pub(crate) fn fingerprint_of(g: &WeightedGraph) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = OFFSET;
        h = (h ^ g.n() as u64).wrapping_mul(PRIME);
        h = (h ^ g.m() as u64).wrapping_mul(PRIME);
        for v in g.nodes() {
            for &(nb, e) in g.neighbors(v) {
                h = (h ^ (((nb.0 as u64) << 32) | e.0 as u64)).wrapping_mul(PRIME);
            }
        }
        h
    }

    fn build(g: &WeightedGraph) -> Self {
        let n = g.n();
        let mut off = Vec::with_capacity(n + 1);
        let mut acc = 0u32;
        off.push(0);
        for v in g.nodes() {
            acc += g.degree(v) as u32;
            off.push(acc);
        }
        let mut mate = vec![0u32; acc as usize];
        for u in g.nodes() {
            for (j, &(v, _)) in g.neighbors(u).iter().enumerate() {
                let p = g
                    .neighbors(v)
                    .binary_search_by_key(&u, |&(nb, _)| nb)
                    .expect("adjacency lists are symmetric");
                mate[off[u.idx()] as usize + j] = off[v.idx()] + p as u32;
            }
        }
        CsrTopology {
            n,
            off,
            mate,
            fingerprint: Self::fingerprint_of(g),
        }
    }
}

/// Reusable state of the event-driven executor: the slot arena, the
/// active-set worklists, and the per-node scratch buffers.
///
/// Create once with [`RunBuffers::for_graph`] and pass to
/// [`crate::run_with_buffers`] for allocation-free repeated runs:
///
/// ```
/// use dsf_congest::{run_with_buffers, CongestConfig, Message, NodeCtx, Outbox, Protocol,
///                   RunBuffers};
/// use dsf_graph::{generators, NodeId};
///
/// #[derive(Clone, Debug)]
/// struct Ping;
/// impl Message for Ping {
///     fn encoded_bits(&self) -> usize { 1 }
/// }
/// struct Once(bool);
/// impl Protocol for Once {
///     type Msg = Ping;
///     fn init(&mut self, ctx: &NodeCtx, out: &mut Outbox<Ping>) {
///         out.send_all(ctx, Ping);
///         self.0 = true;
///     }
///     fn round(&mut self, _: &NodeCtx, _: &[(NodeId, Ping)], _: &mut Outbox<Ping>) {}
///     fn done(&self) -> bool { self.0 }
/// }
///
/// let g = generators::path(6, 1);
/// let cfg = CongestConfig::for_graph(&g);
/// let mut buffers = RunBuffers::for_graph(&g);
/// for _ in 0..3 {
///     let nodes = (0..6).map(|_| Once(false)).collect();
///     let res = run_with_buffers(&g, nodes, &cfg, &mut buffers).unwrap();
///     assert_eq!(res.metrics.messages, 10);
/// }
/// ```
#[derive(Debug)]
pub struct RunBuffers<M> {
    pub(crate) topo: CsrTopology,
    /// Slots delivered in the round being executed.
    pub(crate) cur: Vec<Option<M>>,
    /// Slots being filled for the next round.
    pub(crate) next: Vec<Option<M>>,
    /// Nodes to invoke this round (sorted ascending before execution).
    pub(crate) cur_active: Vec<u32>,
    /// Nodes scheduled for the next round (deduplicated via `active_mark`).
    pub(crate) next_active: Vec<u32>,
    /// Membership bit per node for `next_active`.
    pub(crate) active_mark: Vec<bool>,
    /// Epoch-stamped per-target marks: the O(1) duplicate-send check that
    /// replaces the old O(degree) scan per `Outbox::send`.
    pub(crate) dup_mark: Vec<u64>,
    pub(crate) dup_epoch: u64,
    /// Cached termination votes. `Protocol::done` takes `&self`, so a vote
    /// can only change when the node is invoked — caching is sound.
    pub(crate) done: Vec<bool>,
    /// Messages committed in the round being executed.
    pub(crate) in_flight: u64,
    /// Scratch inbox reused across node invocations.
    pub(crate) inbox: Vec<(NodeId, M)>,
    /// Recycled outbox storage.
    pub(crate) out_storage: Vec<(NodeId, M)>,
}

impl<M: Message> RunBuffers<M> {
    /// Allocates buffers sized for `g`.
    pub fn for_graph(g: &WeightedGraph) -> Self {
        let topo = CsrTopology::build(g);
        let slots = topo.mate.len();
        let n = topo.n;
        let mut buf = RunBuffers {
            topo,
            cur: Vec::with_capacity(slots),
            next: Vec::with_capacity(slots),
            cur_active: Vec::new(),
            next_active: Vec::new(),
            active_mark: Vec::with_capacity(n),
            dup_mark: Vec::with_capacity(n),
            dup_epoch: 0,
            done: Vec::with_capacity(n),
            in_flight: 0,
            inbox: Vec::new(),
            out_storage: Vec::new(),
        };
        buf.reset();
        buf
    }

    /// Rebuilds the topology if `g` differs from the graph the buffers
    /// were last used with, then clears all transient run state in place
    /// (an aborted run may leave slots occupied).
    pub(crate) fn ensure(&mut self, g: &WeightedGraph) {
        if self.topo.fingerprint != CsrTopology::fingerprint_of(g) {
            self.topo = CsrTopology::build(g);
        }
        self.reset();
    }

    fn reset(&mut self) {
        let slots = self.topo.mate.len();
        let n = self.topo.n;
        self.cur.clear();
        self.cur.resize_with(slots, || None);
        self.next.clear();
        self.next.resize_with(slots, || None);
        self.cur_active.clear();
        self.next_active.clear();
        self.active_mark.clear();
        self.active_mark.resize(n, false);
        // Stale `dup_mark` stamps are always < the monotone epoch, so the
        // values can be kept across runs; only the length must track `n`.
        self.dup_mark.resize(n, 0);
        self.done.clear();
        self.done.resize(n, false);
        self.in_flight = 0;
        self.inbox.clear();
        self.out_storage.clear();
    }
}
