//! Flat, pre-allocated message buffers for the event-driven executors,
//! organized so every piece of run state is *shard-partitionable*.
//!
//! The naive round loop (retained as [`crate::run_reference`]) keeps a
//! `Vec<Vec<(NodeId, Msg)>>` inbox/pending pair and allocates as traffic
//! grows. The event-driven engines replace it with a CSR-style per-edge
//! slot arena indexed by the graph's adjacency layout: for each *receiver*
//! `v` and each adjacency position `j`, slot `off[v] + j` holds the at
//! most one message in flight from `v`'s `j`-th neighbor (the CONGEST
//! model allows one message per edge direction per round, so one slot per
//! directed edge suffices). Two slot arrays are swapped between rounds,
//! giving the same double buffering as the old inbox/pending pair without
//! touching the allocator.
//!
//! # Segmenting
//!
//! All mutable run state lives in [`SegmentState`], a value covering a
//! contiguous node range `[node_lo, node_hi)` and, with it, the
//! contiguous slot range `[off[node_lo], off[node_hi])`. Because `off` is
//! monotone in the node id, a partition of the nodes into contiguous
//! ranges partitions the slot arena into disjoint contiguous segments —
//! each segment owns
//!
//! * its nodes' *receiver-side* slots (`cur`/`next` arena segments),
//! * its nodes' *sender-side* duplicate-send marks (`sent_mark`, indexed
//!   by the sender's own adjacency slots, which live in the same range),
//! * the active-set worklists and termination votes of its nodes.
//!
//! The immutable inputs ([`CsrTopology`], the graph, the config, the
//! partition bounds) are bundled read-only in [`EngineCtx`] and shared by
//! every worker; only `SegmentState` is ever written during a round.
//!
//! The single-threaded scheduler ([`crate::run`]) uses one segment
//! covering the whole graph; the work-stealing engine
//! ([`crate::run_sharded`]) partitions the arena into many chunk-sized
//! segments that idle workers claim and steal, staging the (validated,
//! metered) cross-chunk messages per `(destination, source)` chunk pair
//! for a post-hoc canonical-order merge (see `crate::shard`). Nothing in
//! this module takes a lock: segment disjointness is by construction.
//!
//! A [`RunBuffers`] value is reusable: repeated runs on the same graph
//! (bench loops, multi-seed experiments) allocate zero steady-state
//! memory, because every vector is cleared and refilled in place. Reuse
//! across *different* graphs is detected via an adjacency fingerprint and
//! triggers a transparent rebuild.

use dsf_graph::{NodeId, WeightedGraph};

use crate::compact::{BitSet, SlidingQueue};
use crate::executor::{CongestConfig, Outbox, RunMetrics, SchedStats, SimError};
use crate::message::Message;

/// Entry check for the compact u32 arena: node ids, slot offsets, and the
/// `bounds`/`mate` cross indices are all `u32`, so a graph whose node
/// count or directed-slot count (`2m`) reaches `u32::MAX` must be
/// rejected with a typed error instead of silently truncating ids.
pub(crate) fn check_arena_capacity(n: usize, m: usize) -> Result<(), SimError> {
    let limit = u32::MAX as usize;
    if n >= limit || m.saturating_mul(2) >= limit {
        return Err(SimError::ArenaOverflow { nodes: n, edges: m });
    }
    Ok(())
}

/// The CSR layout of the slot arena, derived from a graph's adjacency
/// lists.
#[derive(Debug, Clone)]
pub(crate) struct CsrTopology {
    /// Node count of the graph this layout was built for.
    pub(crate) n: usize,
    /// Receiver-side slot ranges: the slots of node `v` are
    /// `off[v]..off[v + 1]`, parallel to `g.neighbors(v)`.
    pub(crate) off: Vec<u32>,
    /// Directed-edge cross index: for sender `u` and adjacency position
    /// `j` (i.e. neighbor `v = g.neighbors(u)[j].0`), `mate[off[u] + j]`
    /// is the receiver-side slot of `v` for messages arriving from `u`.
    pub(crate) mate: Vec<u32>,
    /// Fingerprint of `(n, m, adjacency)`, used to detect reuse of the
    /// buffers with a structurally different graph.
    pub(crate) fingerprint: u64,
}

impl CsrTopology {
    /// FNV-1a over the adjacency structure (node/edge ids, not weights:
    /// weights do not affect message routing).
    pub(crate) fn fingerprint_of(g: &WeightedGraph) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = OFFSET;
        h = (h ^ g.n() as u64).wrapping_mul(PRIME);
        h = (h ^ g.m() as u64).wrapping_mul(PRIME);
        for v in g.nodes() {
            for &(nb, e) in g.neighbors(v) {
                h = (h ^ (((nb.0 as u64) << 32) | e.0 as u64)).wrapping_mul(PRIME);
            }
        }
        h
    }

    pub(crate) fn build(g: &WeightedGraph) -> Self {
        let n = g.n();
        let mut off = Vec::with_capacity(n + 1);
        let mut acc = 0u32;
        off.push(0);
        for v in g.nodes() {
            acc += g.degree(v) as u32;
            off.push(acc);
        }
        let mut mate = vec![0u32; acc as usize];
        for u in g.nodes() {
            for (j, &(v, _)) in g.neighbors(u).iter().enumerate() {
                let p = g
                    .neighbors(v)
                    .binary_search_by_key(&u, |&(nb, _)| nb)
                    .expect("adjacency lists are symmetric");
                mate[off[u.idx()] as usize + j] = off[v.idx()] + p as u32;
            }
        }
        CsrTopology {
            n,
            off,
            mate,
            fingerprint: Self::fingerprint_of(g),
        }
    }

    /// Contiguous, slot-balanced partition boundaries: `bounds.len() ==
    /// shards' + 1` with `bounds[0] == 0` and `bounds[last] == n`, where
    /// `shards' = min(shards, max(n, 1))`. Boundaries are placed so each
    /// part owns roughly `total_slots / shards` directed-edge slots
    /// (degree-weighted load balance), while every part keeps at least
    /// one node. Deterministic in the topology alone — the work-stealing
    /// engine uses this for its chunk grid, so the chunk layout (and with
    /// it every per-chunk frontier) is a pure function of the topology
    /// and the chunk count.
    pub(crate) fn shard_bounds(&self, shards: usize) -> Vec<u32> {
        let n = self.n;
        let t = shards.clamp(1, n.max(1));
        let total = u64::from(*self.off.last().expect("off is never empty"));
        let mut bounds = Vec::with_capacity(t + 1);
        bounds.push(0u32);
        let mut v = 0usize;
        for s in 1..t {
            let target = total * s as u64 / t as u64;
            while v < n && u64::from(self.off[v]) < target {
                v += 1;
            }
            // Keep boundaries strictly increasing and leave at least one
            // node for each remaining shard.
            v = v
                .max(*bounds.last().expect("nonempty") as usize + 1)
                .min(n - (t - s));
            bounds.push(v as u32);
        }
        bounds.push(n as u32);
        bounds
    }
}

/// Chunk index owning node `v` under the boundary vector produced by
/// [`CsrTopology::shard_bounds`].
pub(crate) fn shard_of(bounds: &[u32], v: u32) -> usize {
    bounds.partition_point(|&b| b <= v) - 1
}

/// A validated, metered message crossing a chunk boundary: the sender's
/// worker already charged it against the bandwidth budget and resolved
/// its receiver-side `slot`; whichever worker claims the receiving chunk
/// next round writes it into that chunk's arena during the staged merge.
#[derive(Debug)]
pub(crate) struct RemoteMsg<M> {
    /// Global receiver-side slot (unique per directed edge).
    pub(crate) slot: u32,
    /// Receiving node (used to schedule it for the next round).
    pub(crate) to: u32,
    /// The payload.
    pub(crate) msg: M,
}

/// The immutable per-round view: read-only inputs threaded through every
/// engine step and shared by all workers. Everything mutable lives in
/// [`SegmentState`].
#[derive(Clone, Copy)]
pub(crate) struct EngineCtx<'a> {
    pub(crate) g: &'a WeightedGraph,
    pub(crate) topo: &'a CsrTopology,
    pub(crate) cfg: &'a CongestConfig,
    /// Chunk boundaries of the active partition (`[0, n]` when single).
    pub(crate) bounds: &'a [u32],
}

/// All mutable run state of one arena segment: a contiguous node range,
/// its slice of the double-buffered slot arena, its active-set worklists,
/// duplicate marks, termination votes, and its partial metrics. The
/// single-threaded scheduler uses one value covering the whole graph; the
/// work-stealing engine uses one per chunk, claimed by whichever worker
/// gets there first. See the module docs for the disjointness argument.
#[derive(Debug)]
pub(crate) struct SegmentState<M> {
    /// First owned node id.
    pub(crate) node_lo: u32,
    /// One past the last owned node id.
    pub(crate) node_hi: u32,
    /// First owned slot (`off[node_lo]`); local slot index = global −
    /// `slot_lo`.
    pub(crate) slot_lo: u32,
    /// Slots delivered in the round being executed (local indices).
    pub(crate) cur: Vec<Option<M>>,
    /// Slots being filled for the next round (local indices).
    pub(crate) next: Vec<Option<M>>,
    /// Owned nodes to invoke: the sliding window is this round's active
    /// set (sorted ascending before execution), the tail behind it is the
    /// next round's (deduplicated via `active_mark`).
    pub(crate) frontier: SlidingQueue,
    /// Membership bit per owned node for the frontier tail (local
    /// indices), bit-packed.
    pub(crate) active_mark: BitSet,
    /// Cached termination votes (local indices), bit-packed.
    /// `Protocol::done` takes `&self`, so a vote can only change when the
    /// node is invoked — and a node is only ever invoked by the single
    /// worker that claimed its chunk this round, so caching stays sound
    /// under work stealing.
    pub(crate) done: BitSet,
    /// Epoch-stamped *sender-side* duplicate-send marks, one per owned
    /// adjacency slot (`off[u] + j` for owned sender `u`). Marking the
    /// sender's own slot instead of the receiver's id keeps the check
    /// O(1) *and* segment-local — the receiver may live in another chunk.
    /// `u32` halves the array; the epoch wraps by re-zeroing the marks.
    pub(crate) sent_mark: Vec<u32>,
    pub(crate) sent_epoch: u32,
    /// Adjacency positions resolved during the duplicate pass, reused by
    /// the metering pass (`u32::MAX` = not a neighbor).
    pub(crate) adj_pos: Vec<u32>,
    /// Messages this segment's nodes committed this round — same-chunk
    /// deliveries *and* staged cross-chunk sends, counted at send time so
    /// the termination decision sees every in-flight message even before
    /// the staged ones are merged.
    pub(crate) in_flight: u64,
    /// Owned nodes currently voting not-done.
    pub(crate) not_done: usize,
    /// Scratch inbox reused across node invocations.
    pub(crate) inbox: Vec<(NodeId, M)>,
    /// Recycled outbox storage.
    pub(crate) out_storage: Vec<(NodeId, M)>,
    /// Partial model metrics (summed across segments at the end of a run).
    pub(crate) metrics: RunMetrics,
    /// Partial scheduler work counters.
    pub(crate) stats: SchedStats,
}

impl<M: Message> SegmentState<M> {
    /// Fresh state for the owned node range `[node_lo, node_hi)`.
    pub(crate) fn new(topo: &CsrTopology, node_lo: u32, node_hi: u32) -> Self {
        let slot_lo = topo.off[node_lo as usize];
        let slots = (topo.off[node_hi as usize] - slot_lo) as usize;
        let mut seg = SegmentState {
            node_lo,
            node_hi,
            slot_lo,
            cur: Vec::with_capacity(slots),
            next: Vec::with_capacity(slots),
            frontier: SlidingQueue::default(),
            active_mark: BitSet::default(),
            done: BitSet::default(),
            sent_mark: vec![0; slots],
            sent_epoch: 0,
            adj_pos: Vec::new(),
            in_flight: 0,
            not_done: 0,
            inbox: Vec::new(),
            out_storage: Vec::new(),
            metrics: RunMetrics::default(),
            stats: SchedStats::default(),
        };
        seg.reset();
        seg
    }

    /// Clears all transient run state in place (an aborted run may leave
    /// slots occupied). `sent_mark` survives untouched: stale stamps are
    /// always smaller than the monotone `sent_epoch`.
    pub(crate) fn reset(&mut self) {
        let slots = self.sent_mark.len();
        let n_local = (self.node_hi - self.node_lo) as usize;
        self.cur.clear();
        self.cur.resize_with(slots, || None);
        self.next.clear();
        self.next.resize_with(slots, || None);
        self.frontier.clear();
        self.active_mark.reset(n_local);
        self.done.reset(n_local);
        self.in_flight = 0;
        self.not_done = 0;
        self.inbox.clear();
        self.out_storage.clear();
        self.metrics = RunMetrics::default();
        self.stats = SchedStats::default();
    }

    /// Local index of an owned node.
    #[inline]
    pub(crate) fn local(&self, v: u32) -> usize {
        debug_assert!(self.node_lo <= v && v < self.node_hi, "{v} not owned");
        (v - self.node_lo) as usize
    }

    /// Schedules an owned node for the next round (idempotent).
    #[inline]
    pub(crate) fn schedule(&mut self, v: u32) {
        let li = self.local(v);
        if !self.active_mark.get(li) {
            self.active_mark.set(li);
            self.frontier.push(v);
        }
    }

    /// Starts a round: promotes the slots and nodes scheduled last round —
    /// the frontier slides its tail into a window sorted into ascending
    /// node-id order (matching the reference executor) — and resets the
    /// per-round counters.
    pub(crate) fn promote(&mut self) {
        std::mem::swap(&mut self.cur, &mut self.next);
        let lo = self.node_lo;
        for &v in self.frontier.slide() {
            self.active_mark.clear((v - lo) as usize);
        }
        self.in_flight = 0;
    }

    /// Fills `self.inbox` with the messages delivered to owned node `v`
    /// this round. Slot order is the sorted adjacency order, i.e.
    /// ascending sender id — the delivery order the reference executor
    /// produces.
    pub(crate) fn gather_inbox(&mut self, g: &WeightedGraph, topo: &CsrTopology, v: u32) {
        self.inbox.clear();
        let lo = (topo.off[v as usize] - self.slot_lo) as usize;
        let nbrs = g.neighbors(NodeId(v));
        for (j, slot) in self.cur[lo..lo + nbrs.len()].iter_mut().enumerate() {
            if let Some(m) = slot.take() {
                self.inbox.push((nbrs[j].0, m));
            }
        }
    }

    /// Writes one staged cross-chunk message into the pre-promotion
    /// `next` arena and schedules its receiver. The sender's worker
    /// already validated, metered, and counted it (see `in_flight`), so
    /// delivery is pure slot placement plus scheduling.
    pub(crate) fn deliver_remote(&mut self, m: RemoteMsg<M>) {
        let li = (m.slot - self.slot_lo) as usize;
        debug_assert!(self.next[li].is_none(), "slot double write");
        self.next[li] = Some(m.msg);
        self.schedule(m.to);
    }

    /// Validates and meters one owned node's outgoing messages, writing
    /// same-chunk deliveries into the local `next` slots and queueing
    /// cross-chunk deliveries on `outbound` (indexed by destination
    /// chunk; never touched when the segment covers the whole graph).
    /// Every committed message — local or queued — counts toward
    /// `in_flight` at send time, so the round's termination decision is
    /// complete before any staged message is merged.
    ///
    /// Error precedence matches the reference executor: a duplicate send
    /// anywhere in the outbox beats per-message violations, which are
    /// then reported in send order (non-neighbor before over-budget).
    pub(crate) fn commit(
        &mut self,
        ectx: &EngineCtx<'_>,
        round: u64,
        out: &mut Outbox<M>,
        outbound: &mut [Vec<RemoteMsg<M>>],
    ) -> Result<(), SimError> {
        let from = out.from();
        let adj = ectx.g.neighbors(from);
        let base = ectx.topo.off[from.idx()];
        // Pass 1: duplicate-send detection, O(1) per message via epoch
        // marks on the sender's own adjacency slots. Targets that are not
        // neighbors cannot be marked; fall back to a scan so the error
        // still matches the reference executor (such a message aborts the
        // run as NotANeighbor in pass 2 anyway).
        if self.sent_epoch == u32::MAX {
            // u32 epochs wrap after ~4B commits; re-zero the marks so a
            // stale stamp can never collide with a fresh epoch.
            self.sent_mark.fill(0);
            self.sent_epoch = 0;
        }
        self.sent_epoch += 1;
        let epoch = self.sent_epoch;
        self.adj_pos.clear();
        {
            let msgs = out.msgs_mut();
            for i in 0..msgs.len() {
                let to = msgs[i].0;
                let dup = match adj.binary_search_by_key(&to, |&(nb, _)| nb) {
                    Ok(j) => {
                        let s = (base - self.slot_lo) as usize + j;
                        let seen = self.sent_mark[s] == epoch;
                        self.sent_mark[s] = epoch;
                        self.adj_pos.push(j as u32);
                        seen
                    }
                    Err(_) => {
                        self.adj_pos.push(u32::MAX);
                        msgs[..i].iter().any(|&(t, _)| t == to)
                    }
                };
                if dup {
                    return Err(SimError::DuplicateSend { from, to, round });
                }
            }
        }
        // Pass 2: per-message model enforcement, metering, slot write or
        // cross-shard queueing.
        let slot_hi = self.slot_lo + self.next.len() as u32;
        for (i, (to, msg)) in out.msgs_mut().drain(..).enumerate() {
            let j = self.adj_pos[i];
            if j == u32::MAX {
                return Err(SimError::NotANeighbor { from, to });
            }
            let edge = adj[j as usize].1;
            let bits = msg.encoded_bits();
            if bits > ectx.cfg.bandwidth_bits {
                return Err(SimError::BandwidthExceeded {
                    from,
                    to,
                    bits,
                    budget: ectx.cfg.bandwidth_bits,
                    round,
                });
            }
            self.metrics.messages += 1;
            self.metrics.total_bits += bits as u64;
            self.metrics.max_message_bits = self.metrics.max_message_bits.max(bits);
            if ectx.cfg.metered_cut.contains(&edge) {
                self.metrics.cut_bits += bits as u64;
            }
            let slot = ectx.topo.mate[(base + j) as usize];
            self.in_flight += 1;
            if (self.slot_lo..slot_hi).contains(&slot) {
                let li = (slot - self.slot_lo) as usize;
                debug_assert!(self.next[li].is_none(), "slot double write");
                self.next[li] = Some(msg);
                self.schedule(to.0);
            } else {
                outbound[shard_of(ectx.bounds, to.0)].push(RemoteMsg {
                    slot,
                    to: to.0,
                    msg,
                });
            }
        }
        Ok(())
    }
}

/// Reusable state of the single-threaded event-driven executor: one
/// arena segment covering the whole graph plus the CSR topology.
///
/// Create once with [`RunBuffers::for_graph`] and pass to
/// [`crate::run_with_buffers`] for allocation-free repeated runs:
///
/// ```
/// use dsf_congest::{run_with_buffers, CongestConfig, Message, NodeCtx, Outbox, Protocol,
///                   RunBuffers};
/// use dsf_graph::{generators, NodeId};
///
/// #[derive(Clone, Debug)]
/// struct Ping;
/// impl Message for Ping {
///     fn encoded_bits(&self) -> usize { 1 }
/// }
/// struct Once(bool);
/// impl Protocol for Once {
///     type Msg = Ping;
///     fn init(&mut self, ctx: &NodeCtx, out: &mut Outbox<Ping>) {
///         out.send_all(ctx, Ping);
///         self.0 = true;
///     }
///     fn round(&mut self, _: &NodeCtx, _: &[(NodeId, Ping)], _: &mut Outbox<Ping>) {}
///     fn done(&self) -> bool { self.0 }
/// }
///
/// let g = generators::path(6, 1);
/// let cfg = CongestConfig::for_graph(&g);
/// let mut buffers = RunBuffers::for_graph(&g);
/// for _ in 0..3 {
///     let nodes = (0..6).map(|_| Once(false)).collect();
///     let res = run_with_buffers(&g, nodes, &cfg, &mut buffers).unwrap();
///     assert_eq!(res.metrics.messages, 10);
/// }
/// ```
#[derive(Debug)]
pub struct RunBuffers<M> {
    pub(crate) topo: CsrTopology,
    pub(crate) seg: SegmentState<M>,
}

impl<M: Message> RunBuffers<M> {
    /// Allocates buffers sized for `g`.
    pub fn for_graph(g: &WeightedGraph) -> Self {
        let topo = CsrTopology::build(g);
        let seg = SegmentState::new(&topo, 0, topo.n as u32);
        RunBuffers { topo, seg }
    }

    /// Prepares the buffers for a run on `g` and reports whether they were
    /// reused in place.
    ///
    /// If `g` is structurally identical to the graph the buffers were last
    /// used with (same adjacency fingerprint), all transient run state is
    /// cleared in place and no allocation happens — this is the steady
    /// state [`crate::BufferPool`] and the service layer rely on. If `g`
    /// differs, the slot arena is transparently rebuilt.
    ///
    /// Returns `true` when the arena was reused in place, `false` when it
    /// had to be rebuilt (an allocation).
    pub fn reset_for(&mut self, g: &WeightedGraph) -> bool {
        if self.topo.fingerprint != CsrTopology::fingerprint_of(g) {
            self.topo = CsrTopology::build(g);
            self.seg = SegmentState::new(&self.topo, 0, self.topo.n as u32);
            false
        } else {
            self.seg.reset();
            true
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arena_capacity_rejects_u32_overflow_with_typed_error() {
        // In range: the checker passes well below the 32-bit boundary.
        assert!(check_arena_capacity(10_000_000, 20_000_000).is_ok());
        assert!(check_arena_capacity(u32::MAX as usize - 1, 0).is_ok());
        // Node count at/over the boundary is a typed error, not a wrap.
        assert_eq!(
            check_arena_capacity(u32::MAX as usize, 5),
            Err(SimError::ArenaOverflow {
                nodes: u32::MAX as usize,
                edges: 5,
            })
        );
        // Directed slots (2m) crossing the boundary likewise — including
        // when `2m` itself would overflow usize arithmetic.
        let m = (u32::MAX as usize).div_ceil(2);
        assert!(matches!(
            check_arena_capacity(100, m),
            Err(SimError::ArenaOverflow { edges, .. }) if edges == m
        ));
        assert!(matches!(
            check_arena_capacity(100, usize::MAX),
            Err(SimError::ArenaOverflow { .. })
        ));
        assert!(check_arena_capacity(100, m - 1).is_ok());
    }
}
