//! Multi-stage round accounting.
//!
//! The paper's algorithms are compositions of stages (BFS construction,
//! Bellman–Ford sweeps, pipelined convergecasts, …) glued together by
//! control flow whose cost the paper charges explicitly ("termination can be
//! detected over a BFS tree at `O(D)` overhead"). [`RoundLedger`] keeps the
//! two kinds of cost separate and auditable: *simulated* rounds really ran
//! in the executor; *charged* rounds are explicit surcharges with a label
//! naming the paper's justification.

use std::fmt;

use crate::executor::RunMetrics;

/// One accounted stage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LedgerEntry {
    /// Human-readable stage label, e.g. `"phase 3: Bellman-Ford"`.
    pub label: String,
    /// Rounds actually executed by the simulator.
    pub simulated: u64,
    /// Rounds charged for control flow per the paper's accounting.
    pub charged: u64,
    /// Messages delivered during the stage.
    pub messages: u64,
    /// Bits delivered during the stage.
    pub bits: u64,
    /// Bits that crossed the metered cut during the stage.
    pub cut_bits: u64,
}

/// An append-only log of stage costs.
///
/// `PartialEq` compares entry-for-entry — labels, simulated/charged
/// rounds, messages, bits, cut bits — which is how the executor
/// equivalence suites assert that a whole solver run is bit-identical
/// across engines and worker-thread counts.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RoundLedger {
    entries: Vec<LedgerEntry>,
}

impl RoundLedger {
    /// An empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a simulated stage from its metrics.
    pub fn record(&mut self, label: impl Into<String>, metrics: &RunMetrics) {
        self.entries.push(LedgerEntry {
            label: label.into(),
            simulated: metrics.rounds,
            charged: 0,
            messages: metrics.messages,
            bits: metrics.total_bits,
            cut_bits: metrics.cut_bits,
        });
    }

    /// Records an explicit surcharge (e.g. termination detection `O(D)`).
    pub fn charge(&mut self, label: impl Into<String>, rounds: u64) {
        self.entries.push(LedgerEntry {
            label: label.into(),
            simulated: 0,
            charged: rounds,
            messages: 0,
            bits: 0,
            cut_bits: 0,
        });
    }

    /// Appends all entries of another ledger (used when a sub-algorithm
    /// returns its own ledger).
    pub fn absorb(&mut self, prefix: &str, other: RoundLedger) {
        for mut e in other.entries {
            e.label = format!("{prefix}{}", e.label);
            self.entries.push(e);
        }
    }

    /// All entries in order.
    pub fn entries(&self) -> &[LedgerEntry] {
        &self.entries
    }

    /// Total rounds: simulated + charged.
    pub fn total(&self) -> u64 {
        self.entries.iter().map(|e| e.simulated + e.charged).sum()
    }

    /// Total simulated rounds only.
    pub fn simulated(&self) -> u64 {
        self.entries.iter().map(|e| e.simulated).sum()
    }

    /// Total charged rounds only.
    pub fn charged(&self) -> u64 {
        self.entries.iter().map(|e| e.charged).sum()
    }

    /// Total messages.
    pub fn messages(&self) -> u64 {
        self.entries.iter().map(|e| e.messages).sum()
    }

    /// Total bits.
    pub fn bits(&self) -> u64 {
        self.entries.iter().map(|e| e.bits).sum()
    }

    /// Total bits across the metered cut.
    pub fn cut_bits(&self) -> u64 {
        self.entries.iter().map(|e| e.cut_bits).sum()
    }
}

impl fmt::Display for RoundLedger {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:<44} {:>9} {:>9} {:>10}",
            "stage", "sim", "charged", "msgs"
        )?;
        for e in &self.entries {
            writeln!(
                f,
                "{:<44} {:>9} {:>9} {:>10}",
                e.label, e.simulated, e.charged, e.messages
            )?;
        }
        write!(
            f,
            "{:<44} {:>9} {:>9} {:>10}",
            "TOTAL",
            self.simulated(),
            self.charged(),
            self.messages()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ledger_totals() {
        let mut l = RoundLedger::new();
        l.record(
            "bfs",
            &RunMetrics {
                rounds: 10,
                messages: 100,
                total_bits: 800,
                max_message_bits: 8,
                cut_bits: 0,
            },
        );
        l.charge("termination detection O(D)", 10);
        assert_eq!(l.total(), 20);
        assert_eq!(l.simulated(), 10);
        assert_eq!(l.charged(), 10);
        assert_eq!(l.messages(), 100);
        assert_eq!(l.bits(), 800);
        assert_eq!(l.entries().len(), 2);
    }

    #[test]
    fn absorb_prefixes_labels() {
        let mut inner = RoundLedger::new();
        inner.charge("x", 5);
        let mut outer = RoundLedger::new();
        outer.absorb("stage2/", inner);
        assert_eq!(outer.entries()[0].label, "stage2/x");
        assert_eq!(outer.total(), 5);
    }

    #[test]
    fn display_renders() {
        let mut l = RoundLedger::new();
        l.charge("x", 1);
        let s = format!("{l}");
        assert!(s.contains("TOTAL"));
        assert!(s.contains('x'));
    }
}
