//! The event-driven active-set scheduler.
//!
//! The reference executor ([`crate::run_reference`]) invokes
//! [`Protocol::round`] on **every** node **every** round — Θ(n · rounds)
//! work regardless of traffic, which dwarfs the useful work of sparse
//! protocols such as BFS waves where most nodes idle most rounds. This
//! scheduler only invokes nodes that are *active*:
//!
//! * a node that received a message this round (delivery wakes sleepers),
//! * a node whose last termination vote was not done.
//!
//! Synchronous delivery semantics are preserved exactly: messages sent in
//! round `r` arrive in round `r + 1`, inboxes list senders in ascending
//! node-id order, and active nodes execute in ascending node-id order —
//! precisely the observable behavior of the reference executor. The
//! equivalence is property-tested (`tests/scheduler_equivalence.rs`).
//!
//! Skipping a node is sound because of the [`Protocol::done`] contract: a
//! node voting done must neither send nor change state when invoked with
//! an empty inbox, so the skipped invocations are exactly the no-op ones.
//! A protocol that votes done and keeps talking violates the contract;
//! the reference executor (which skips nothing) flushes such bugs out.
//!
//! The per-node steps ([`invoke_init`], [`invoke_round`]) are shared with
//! the work-stealing engine in [`crate::shard`]: both operate on
//! [`SegmentState`] partitions, this module simply using a single segment
//! covering the whole graph while the sharded engine uses one per chunk.

use dsf_graph::{NodeId, WeightedGraph};

use crate::buffers::{check_arena_capacity, EngineCtx, RemoteMsg, RunBuffers, SegmentState};
use crate::executor::{CongestConfig, NodeCtx, Outbox, Protocol, RunResult, SimError};
use crate::pool;
use crate::shard::{default_threads, run_sharded};

/// Executes `nodes` (one [`Protocol`] state per node id) on the network
/// `g` until quiescence.
///
/// The engine is chosen by the configured worker-thread count
/// ([`crate::default_threads`], settable via the `DSF_THREADS` environment
/// variable or [`crate::set_default_threads`]): 1 runs the single-threaded
/// active-set scheduler — reusing a pooled slot arena when a
/// [`crate::BufferPool`] is installed on the thread, allocating fresh
/// [`RunBuffers`] otherwise; more dispatches to [`crate::run_sharded`].
/// Either way the observable outcome — [`crate::RunMetrics`], final
/// states, errors — is bit-identical; the thread count and the pool are
/// pure wall-clock/allocation knobs.
///
/// # Example
///
/// ```
/// use dsf_congest::{run, CongestConfig, Message, NodeCtx, Outbox, Protocol};
/// use dsf_graph::{generators, NodeId};
///
/// /// One-bit token, flooded outward from node 0.
/// #[derive(Clone, Debug)]
/// struct Token;
/// impl Message for Token {
///     fn encoded_bits(&self) -> usize { 1 }
/// }
/// struct Flood { have: bool }
/// impl Protocol for Flood {
///     type Msg = Token;
///     fn init(&mut self, ctx: &NodeCtx, out: &mut Outbox<Token>) {
///         if ctx.id == NodeId(0) { self.have = true; out.send_all(ctx, Token); }
///     }
///     fn round(&mut self, ctx: &NodeCtx, inbox: &[(NodeId, Token)], out: &mut Outbox<Token>) {
///         if !self.have && !inbox.is_empty() { self.have = true; out.send_all(ctx, Token); }
///     }
///     fn done(&self) -> bool { self.have }
/// }
///
/// let g = generators::path(5, 1);
/// let nodes = (0..5).map(|_| Flood { have: false }).collect();
/// let res = run(&g, nodes, &CongestConfig::for_graph(&g)).unwrap();
/// assert!(res.states.iter().all(|s| s.have));
/// ```
///
/// # Errors
///
/// Propagates any [`SimError`] raised by model enforcement.
pub fn run<P>(
    g: &WeightedGraph,
    nodes: Vec<P>,
    cfg: &CongestConfig,
) -> Result<RunResult<P>, SimError>
where
    P: Protocol + Send,
    P::Msg: Send + 'static,
{
    match default_threads() {
        0 | 1 => match pool::checkout::<P::Msg>(g) {
            Some(mut buffers) => {
                let res = run_with_buffers(g, nodes, cfg, &mut buffers);
                pool::checkin(buffers);
                res
            }
            None => {
                let mut buffers = RunBuffers::for_graph(g);
                run_with_buffers(g, nodes, cfg, &mut buffers)
            }
        },
        t => run_sharded(g, nodes, cfg, t),
    }
}

/// Like [`run`], but always single-threaded and reusing caller-owned
/// [`RunBuffers`]: repeated runs on the same graph allocate zero
/// steady-state memory.
///
/// # Errors
///
/// Propagates any [`SimError`] raised by model enforcement.
pub fn run_with_buffers<P: Protocol>(
    g: &WeightedGraph,
    mut nodes: Vec<P>,
    cfg: &CongestConfig,
    buf: &mut RunBuffers<P::Msg>,
) -> Result<RunResult<P>, SimError> {
    let n = g.n();
    if nodes.len() != n {
        return Err(SimError::WrongNodeCount {
            expected: n,
            got: nodes.len(),
        });
    }
    check_arena_capacity(n, g.m())?;
    buf.reset_for(g);
    let RunBuffers { topo, seg } = buf;
    let bounds = [0u32, n as u32];
    let ectx = EngineCtx {
        g,
        topo,
        cfg,
        bounds: &bounds,
    };

    // Round 0: init every node; with a single segment no message can be
    // cross-chunk, so the outbound queues stay untouched.
    invoke_init(&ectx, seg, &mut nodes, &mut [])?;

    let mut round = 0u64;
    loop {
        if seg.in_flight == 0 && seg.not_done == 0 {
            break;
        }
        round += 1;
        if round > cfg.max_rounds {
            return Err(SimError::MaxRoundsExceeded {
                limit: cfg.max_rounds,
            });
        }
        seg.promote();
        invoke_round(&ectx, round, seg, &mut nodes, &mut [])?;
        seg.metrics.rounds = round;
    }

    Ok(RunResult {
        states: nodes,
        metrics: std::mem::take(&mut seg.metrics),
        stats: std::mem::take(&mut seg.stats),
    })
}

/// Round 0 over one segment: initializes every owned node, commits its
/// messages, and records the first termination votes. `nodes` is the
/// segment-local slice (`nodes[v - node_lo]` is node `v`).
///
/// # Errors
///
/// Returns the violation of the lowest-id erroring node in this segment;
/// nodes after it are not invoked (matching the sequential order).
pub(crate) fn invoke_init<P: Protocol>(
    ectx: &EngineCtx<'_>,
    seg: &mut SegmentState<P::Msg>,
    nodes: &mut [P],
    outbound: &mut [Vec<RemoteMsg<P::Msg>>],
) -> Result<(), SimError> {
    let n = ectx.g.n();
    for v in seg.node_lo..seg.node_hi {
        let li = seg.local(v);
        let ctx = NodeCtx::new(NodeId(v), n, 0, ectx.g);
        let mut out = Outbox::recycled(ctx.id, std::mem::take(&mut seg.out_storage));
        nodes[li].init(&ctx, &mut out);
        let res = seg.commit(ectx, 0, &mut out, outbound);
        seg.out_storage = out.into_storage();
        res?;
        let vote = nodes[li].done();
        seg.done.assign(li, vote);
        if !vote {
            seg.not_done += 1;
            seg.schedule(v);
        }
    }
    Ok(())
}

/// One round over one segment: invokes the promoted active set in
/// ascending node-id order, gathering each inbox from the slot arena and
/// committing each outbox. `nodes` is the segment-local slice.
///
/// # Errors
///
/// Returns the violation of the lowest-id erroring node in this segment;
/// active nodes after it are not invoked (matching the sequential order).
pub(crate) fn invoke_round<P: Protocol>(
    ectx: &EngineCtx<'_>,
    round: u64,
    seg: &mut SegmentState<P::Msg>,
    nodes: &mut [P],
    outbound: &mut [Vec<RemoteMsg<P::Msg>>],
) -> Result<(), SimError> {
    let n = ectx.g.n();
    // Index-based iteration: the frontier's window bounds are fixed for
    // the whole round while commits push next-round work onto its tail.
    for i in 0..seg.frontier.window_len() {
        let v = seg.frontier.at(i);
        let li = seg.local(v);
        let ctx = NodeCtx::new(NodeId(v), n, round, ectx.g);
        seg.gather_inbox(ectx.g, ectx.topo, v);
        let was_done = seg.done.get(li);
        if was_done && !seg.inbox.is_empty() {
            seg.stats.wakeups += 1;
        }
        let mut out = Outbox::recycled(ctx.id, std::mem::take(&mut seg.out_storage));
        nodes[li].round(&ctx, &seg.inbox, &mut out);
        seg.stats.activations += 1;
        let res = seg.commit(ectx, round, &mut out, outbound);
        seg.out_storage = out.into_storage();
        res?;
        let vote = nodes[li].done();
        if vote != was_done {
            seg.done.assign(li, vote);
            if vote {
                seg.not_done -= 1;
            } else {
                seg.not_done += 1;
            }
        }
        if !vote {
            seg.schedule(v);
        }
    }
    Ok(())
}
