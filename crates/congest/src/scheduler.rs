//! The event-driven active-set scheduler.
//!
//! The reference executor ([`crate::run_reference`]) invokes
//! [`Protocol::round`] on **every** node **every** round — Θ(n · rounds)
//! work regardless of traffic, which dwarfs the useful work of sparse
//! protocols such as BFS waves where most nodes idle most rounds. This
//! scheduler only invokes nodes that are *active*:
//!
//! * a node that received a message this round (delivery wakes sleepers),
//! * a node whose last termination vote was not done.
//!
//! Synchronous delivery semantics are preserved exactly: messages sent in
//! round `r` arrive in round `r + 1`, inboxes list senders in ascending
//! node-id order, and active nodes execute in ascending node-id order —
//! precisely the observable behavior of the reference executor. The
//! equivalence is property-tested (`tests/scheduler_equivalence.rs`).
//!
//! Skipping a node is sound because of the [`Protocol::done`] contract: a
//! node voting done must neither send nor change state when invoked with
//! an empty inbox, so the skipped invocations are exactly the no-op ones.
//! A protocol that votes done and keeps talking violates the contract;
//! the reference executor (which skips nothing) flushes such bugs out.

use dsf_graph::{NodeId, WeightedGraph};

use crate::buffers::RunBuffers;
use crate::executor::{
    CongestConfig, NodeCtx, Outbox, Protocol, RunMetrics, RunResult, SchedStats, SimError,
};
use crate::message::Message;

/// Executes `nodes` (one [`Protocol`] state per node id) on the network
/// `g` until quiescence, allocating fresh [`RunBuffers`].
///
/// # Errors
///
/// Propagates any [`SimError`] raised by model enforcement.
pub fn run<P: Protocol>(
    g: &WeightedGraph,
    nodes: Vec<P>,
    cfg: &CongestConfig,
) -> Result<RunResult<P>, SimError> {
    let mut buffers = RunBuffers::for_graph(g);
    run_with_buffers(g, nodes, cfg, &mut buffers)
}

/// Like [`run`], but reuses caller-owned [`RunBuffers`]: repeated runs on
/// the same graph allocate zero steady-state memory.
///
/// # Errors
///
/// Propagates any [`SimError`] raised by model enforcement.
pub fn run_with_buffers<P: Protocol>(
    g: &WeightedGraph,
    mut nodes: Vec<P>,
    cfg: &CongestConfig,
    buf: &mut RunBuffers<P::Msg>,
) -> Result<RunResult<P>, SimError> {
    let n = g.n();
    if nodes.len() != n {
        return Err(SimError::WrongNodeCount {
            expected: n,
            got: nodes.len(),
        });
    }
    buf.ensure(g);
    let mut metrics = RunMetrics::default();
    let mut stats = SchedStats::default();
    let mut not_done = 0usize;

    // Round 0: init every node; collect votes and the first active set.
    for v in 0..n {
        let ctx = NodeCtx::new(NodeId::from(v), n, 0, g);
        let mut out = Outbox::recycled(ctx.id, std::mem::take(&mut buf.out_storage));
        nodes[v].init(&ctx, &mut out);
        commit(g, cfg, 0, &mut out, buf, &mut metrics)?;
        buf.out_storage = out.into_storage();
        let vote = nodes[v].done();
        buf.done[v] = vote;
        if !vote {
            not_done += 1;
            if !buf.active_mark[v] {
                buf.active_mark[v] = true;
                buf.next_active.push(v as u32);
            }
        }
    }

    let mut round = 0u64;
    loop {
        if buf.in_flight == 0 && not_done == 0 {
            break;
        }
        round += 1;
        if round > cfg.max_rounds {
            return Err(SimError::MaxRoundsExceeded {
                limit: cfg.max_rounds,
            });
        }
        // Deliver messages sent last round; promote the scheduled set.
        std::mem::swap(&mut buf.cur, &mut buf.next);
        std::mem::swap(&mut buf.cur_active, &mut buf.next_active);
        buf.next_active.clear();
        for &v in &buf.cur_active {
            buf.active_mark[v as usize] = false;
        }
        // Ascending node-id order, matching the reference executor.
        buf.cur_active.sort_unstable();
        buf.in_flight = 0;

        let cur_active = std::mem::take(&mut buf.cur_active);
        let mut res = Ok(());
        for &v in &cur_active {
            let vu = v as usize;
            let ctx = NodeCtx::new(NodeId(v), n, round, g);
            // Gather the inbox from the slot arena; slot order is the
            // sorted adjacency order, i.e. ascending sender id — the
            // delivery order the reference executor produces.
            buf.inbox.clear();
            let lo = buf.topo.off[vu] as usize;
            let nbrs = g.neighbors(ctx.id);
            for (j, slot) in buf.cur[lo..lo + nbrs.len()].iter_mut().enumerate() {
                if let Some(m) = slot.take() {
                    buf.inbox.push((nbrs[j].0, m));
                }
            }
            let was_done = buf.done[vu];
            if was_done && !buf.inbox.is_empty() {
                stats.wakeups += 1;
            }
            let mut out = Outbox::recycled(ctx.id, std::mem::take(&mut buf.out_storage));
            nodes[vu].round(&ctx, &buf.inbox, &mut out);
            stats.activations += 1;
            res = commit(g, cfg, round, &mut out, buf, &mut metrics);
            buf.out_storage = out.into_storage();
            if res.is_err() {
                break;
            }
            let vote = nodes[vu].done();
            if vote != was_done {
                buf.done[vu] = vote;
                if vote {
                    not_done -= 1;
                } else {
                    not_done += 1;
                }
            }
            if !vote && !buf.active_mark[vu] {
                buf.active_mark[vu] = true;
                buf.next_active.push(v);
            }
        }
        buf.cur_active = cur_active;
        res?;
        metrics.rounds = round;
    }

    Ok(RunResult {
        states: nodes,
        metrics,
        stats,
    })
}

/// Validates and meters one node's outgoing messages, writing them into
/// the next-round slots and scheduling the receivers.
///
/// Error precedence matches the reference executor: a duplicate send
/// anywhere in the outbox beats per-message violations, which are then
/// reported in send order (non-neighbor before over-budget).
fn commit<M: Message>(
    g: &WeightedGraph,
    cfg: &CongestConfig,
    round: u64,
    out: &mut Outbox<M>,
    buf: &mut RunBuffers<M>,
    metrics: &mut RunMetrics,
) -> Result<(), SimError> {
    let from = out.from();
    let msgs = out.msgs_mut();
    // Pass 1: duplicate-send detection, O(1) per message via epoch marks.
    buf.dup_epoch += 1;
    let epoch = buf.dup_epoch;
    for i in 0..msgs.len() {
        let to = msgs[i].0;
        let dup = if to.idx() < buf.topo.n {
            let seen = buf.dup_mark[to.idx()] == epoch;
            buf.dup_mark[to.idx()] = epoch;
            seen
        } else {
            // Out-of-graph target: cannot be marked; fall back to a scan
            // so the error matches the reference executor.
            msgs[..i].iter().any(|&(t, _)| t == to)
        };
        if dup {
            return Err(SimError::DuplicateSend { from, to, round });
        }
    }
    // Pass 2: per-message model enforcement, metering, slot write.
    let adj = g.neighbors(from);
    for (to, msg) in msgs.drain(..) {
        let j = adj
            .binary_search_by_key(&to, |&(nb, _)| nb)
            .map_err(|_| SimError::NotANeighbor { from, to })?;
        let edge = adj[j].1;
        let bits = msg.encoded_bits();
        if bits > cfg.bandwidth_bits {
            return Err(SimError::BandwidthExceeded {
                from,
                to,
                bits,
                budget: cfg.bandwidth_bits,
                round,
            });
        }
        metrics.messages += 1;
        metrics.total_bits += bits as u64;
        metrics.max_message_bits = metrics.max_message_bits.max(bits);
        if cfg.metered_cut.contains(&edge) {
            metrics.cut_bits += bits as u64;
        }
        let slot = buf.topo.mate[buf.topo.off[from.idx()] as usize + j] as usize;
        debug_assert!(buf.next[slot].is_none(), "slot double write");
        buf.next[slot] = Some(msg);
        buf.in_flight += 1;
        if !buf.active_mark[to.idx()] {
            buf.active_mark[to.idx()] = true;
            buf.next_active.push(to.0);
        }
    }
    Ok(())
}
