//! A synchronous CONGEST-model network simulator.
//!
//! The paper's model (Section 2): computation proceeds in synchronous
//! rounds; in each round every node (i) performs arbitrary finite local
//! computation, (ii) may send one message of `O(log n)` bits to each
//! neighbor, and (iii) receives the messages its neighbors sent. Time
//! complexity is the number of rounds until all nodes explicitly terminate.
//!
//! This crate makes those rules executable and *enforced*:
//!
//! * a [`Protocol`] is the per-node state machine (one instance per node);
//! * the executor ([`run`]) delivers messages with one-round latency, in
//!   deterministic node-id order;
//! * every message's [`Message::encoded_bits`] is checked against the
//!   bandwidth budget `B(n) = Θ(log n)`; an over-budget message aborts the
//!   run with [`SimError::BandwidthExceeded`] — so pipelined stages really
//!   have to pipeline;
//! * [`RunMetrics`] reports rounds, messages, bits, and optionally the bits
//!   that crossed a metered edge cut (used by the Section 3 lower-bound
//!   experiments);
//! * [`RoundLedger`] aggregates multi-stage algorithms, distinguishing
//!   *simulated* rounds from explicitly *charged* control-flow surcharges
//!   (e.g. "termination detection over the BFS tree: `O(D)`"), so every
//!   reported round count is auditable.
//!
//! # Execution engines
//!
//! [`run`] is the event-driven active-set scheduler: it only invokes nodes
//! that received a message or have not voted [`Protocol::done`], backed by
//! a CSR-style flat slot arena instead of per-node per-round vectors. Use
//! [`run_with_buffers`] with a caller-owned [`RunBuffers`] to make
//! repeated runs (bench loops, multi-seed experiments) allocation-free in
//! steady state; a [`BufferPool`] extends the same reuse across *message
//! types and graphs* — install one with [`BufferPool::scope`] and every
//! single-threaded [`run`] inside (e.g. all the stages of a solver)
//! checks out its arena from the pool instead of allocating, which is how
//! `dsf-service` solver sessions make steady-state solves allocation-free
//! end to end. [`run_sharded`] is the multi-threaded variant: the node
//! arena is partitioned into chunk-sized segments that workers claim and
//! *steal* through atomic cursors; each round is claim/compute phases
//! fused around a **single** barrier, with cross-chunk messages staged
//! per `(destination, source)` chunk pair and merged post hoc in
//! canonical sender order — *bit identical* [`RunMetrics`], final
//! states, deterministic [`SchedStats`], and errors at every thread
//! count (see the [`run_sharded`] docs for the argument; report-only
//! per-worker effort counters are exposed as [`SchedStats::workers`] and
//! process-wide via [`sched_obs_totals`]).
//! [`run`] itself dispatches on [`default_threads`] (the `DSF_THREADS`
//! environment variable, overridable via [`set_default_threads`]), so the
//! whole solver stack parallelizes without a code change — and without an
//! observable one. [`run_reference`] is the retained naive executor —
//! everyone, every round — serving as the semantic oracle ([`RunMetrics`]
//! and final states are bit-identical; property-tested) and as the
//! baseline `bench_runner` measures scheduling savings against.
//!
//! # Example: flooding a token
//!
//! ```
//! use dsf_congest::{run, CongestConfig, Message, NodeCtx, Outbox, Protocol};
//! use dsf_graph::{generators, NodeId};
//!
//! #[derive(Clone, Debug)]
//! struct Token;
//! impl Message for Token {
//!     fn encoded_bits(&self) -> usize { 1 }
//! }
//!
//! struct Flood { have: bool, sent: bool }
//! impl Protocol for Flood {
//!     type Msg = Token;
//!     fn init(&mut self, ctx: &NodeCtx, out: &mut Outbox<Token>) {
//!         if ctx.id == NodeId(0) { self.have = true; }
//!         if self.have { out.send_all(ctx, Token); self.sent = true; }
//!     }
//!     fn round(&mut self, ctx: &NodeCtx, inbox: &[(NodeId, Token)], out: &mut Outbox<Token>) {
//!         if !inbox.is_empty() { self.have = true; }
//!         if self.have && !self.sent { out.send_all(ctx, Token); self.sent = true; }
//!     }
//!     fn done(&self) -> bool { self.have }
//! }
//!
//! let g = generators::path(5, 1);
//! let nodes = (0..5).map(|_| Flood { have: false, sent: false }).collect();
//! let res = run(&g, nodes, &CongestConfig::for_graph(&g)).unwrap();
//! assert!(res.states.iter().all(|s| s.have));
//! // 4 hops to reach the far end + 1 round draining its re-flood.
//! assert_eq!(res.metrics.rounds, 5);
//! ```

mod buffers;
mod compact;
mod executor;
mod ledger;
mod message;
mod pool;
mod scheduler;
mod shard;

pub use buffers::RunBuffers;
pub use executor::{
    run_reference, CongestConfig, NodeCtx, Outbox, Protocol, RunMetrics, RunResult, SchedStats,
    SimError, WorkerObs,
};
pub use ledger::{LedgerEntry, RoundLedger};
pub use message::{id_bits, weight_bits, Message};
pub use pool::{BufferPool, PoolStats};
pub use scheduler::{run, run_with_buffers};
pub use shard::{
    default_threads, run_sharded, sched_obs_totals, set_default_threads, with_threads,
    SchedObsTotals,
};
