//! The event-driven scheduler and the sharded executor must be
//! observationally identical to the naive reference executor:
//! bit-identical [`RunMetrics`] and final node states on every
//! contract-abiding protocol, at every worker-thread count.
//! Property-tested here with a randomized token-hopping protocol over
//! random graphs, plus directed regression tests for the
//! wake-on-late-message path, `done()` re-arming, duplicate-send error
//! precedence, cross-shard error ordering, and buffer reuse.

use std::collections::VecDeque;

use proptest::prelude::*;

use dsf_congest::{
    run, run_reference, run_sharded, run_with_buffers, CongestConfig, Message, NodeCtx, Outbox,
    Protocol, RunBuffers, SimError,
};
use dsf_graph::{generators, NodeId, WeightedGraph};

/// The worker-thread counts the acceptance matrix sweeps.
const THREAD_MATRIX: [usize; 4] = [1, 2, 4, 8];

fn splitmix(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A token hopping to pseudorandom neighbors until its TTL expires.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Token {
    ttl: u32,
    tag: u64,
}

impl Message for Token {
    fn encoded_bits(&self) -> usize {
        24
    }
}

/// Every received token is digested into the node state and, while its TTL
/// lasts, re-emitted towards a tag-determined neighbor — one message per
/// edge per round via per-neighbor FIFOs. Behavior depends only on state
/// and inbox (never on being invoked while idle), so the protocol is a fair
/// referee between the executors.
#[derive(Debug, PartialEq)]
struct HopNode {
    initial: Vec<Token>,
    queues: Vec<VecDeque<Token>>,
    digest: u64,
    received: u64,
}

impl HopNode {
    fn enqueue(&mut self, tok: Token) {
        let qi = (tok.tag % self.queues.len() as u64) as usize;
        self.queues[qi].push_back(tok);
    }

    fn flush(&mut self, ctx: &NodeCtx, out: &mut Outbox<Token>) {
        for (qi, &(nb, _)) in ctx.neighbors().iter().enumerate() {
            if let Some(tok) = self.queues[qi].pop_front() {
                out.send(nb, tok);
            }
        }
    }
}

impl Protocol for HopNode {
    type Msg = Token;

    fn init(&mut self, ctx: &NodeCtx, out: &mut Outbox<Token>) {
        let initial = std::mem::take(&mut self.initial);
        for tok in initial {
            self.enqueue(tok);
        }
        self.flush(ctx, out);
    }

    fn round(&mut self, ctx: &NodeCtx, inbox: &[(NodeId, Token)], out: &mut Outbox<Token>) {
        for &(from, tok) in inbox {
            self.received += 1;
            self.digest = splitmix(self.digest ^ tok.tag ^ u64::from(from.0));
            if tok.ttl > 0 {
                self.enqueue(Token {
                    ttl: tok.ttl - 1,
                    tag: splitmix(tok.tag),
                });
            }
        }
        self.flush(ctx, out);
    }

    fn done(&self) -> bool {
        self.queues.iter().all(VecDeque::is_empty)
    }
}

/// Fresh nodes with `tokens` tokens scattered pseudorandomly from `seed`
/// over the node-id range `[0, span)`.
fn hop_nodes_in(
    g: &WeightedGraph,
    seed: u64,
    tokens: usize,
    ttl: u32,
    span: usize,
) -> Vec<HopNode> {
    let mut nodes: Vec<HopNode> = g
        .nodes()
        .map(|v| HopNode {
            initial: Vec::new(),
            queues: vec![VecDeque::new(); g.degree(v)],
            digest: 0,
            received: 0,
        })
        .collect();
    let mut s = seed;
    for _ in 0..tokens {
        s = splitmix(s);
        let holder = (s % span as u64) as usize;
        nodes[holder].initial.push(Token {
            ttl,
            tag: splitmix(s ^ 0xdead_beef),
        });
    }
    nodes
}

/// Fresh nodes with `tokens` tokens scattered pseudorandomly from `seed`.
fn hop_nodes(g: &WeightedGraph, seed: u64, tokens: usize, ttl: u32) -> Vec<HopNode> {
    hop_nodes_in(g, seed, tokens, ttl, g.n())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The core equivalence: identical metrics and identical final states,
    /// with the event-driven executor never doing more activations.
    #[test]
    fn event_executor_matches_reference(
        seed in 0u64..100_000,
        n in 2usize..40,
        p in 0.1f64..0.6,
        tokens in 1usize..12,
        ttl in 0u32..40,
    ) {
        let g = generators::gnp_connected(n, p, 9, seed);
        let cfg = CongestConfig::for_graph(&g);
        let a = run(&g, hop_nodes(&g, seed, tokens, ttl), &cfg).unwrap();
        let b = run_reference(&g, hop_nodes(&g, seed, tokens, ttl), &cfg).unwrap();
        prop_assert_eq!(&a.metrics, &b.metrics);
        prop_assert_eq!(&a.states, &b.states);
        prop_assert!(a.stats.activations <= b.stats.activations);
    }

    /// The tentpole acceptance bar: the sharded executor is bit-identical
    /// to the reference (and, in scheduler work counters, to the
    /// single-threaded event engine) at every thread count in the matrix.
    #[test]
    fn sharded_executor_matches_reference(
        seed in 0u64..100_000,
        n in 2usize..40,
        p in 0.1f64..0.6,
        tokens in 1usize..12,
        ttl in 0u32..40,
    ) {
        let g = generators::gnp_connected(n, p, 9, seed);
        let cfg = CongestConfig::for_graph(&g);
        let rf = run_reference(&g, hop_nodes(&g, seed, tokens, ttl), &cfg).unwrap();
        let ev = run(&g, hop_nodes(&g, seed, tokens, ttl), &cfg).unwrap();
        for threads in THREAD_MATRIX {
            let sh = run_sharded(&g, hop_nodes(&g, seed, tokens, ttl), &cfg, threads).unwrap();
            prop_assert_eq!(&sh.metrics, &rf.metrics, "threads {}", threads);
            prop_assert_eq!(&sh.states, &rf.states, "threads {}", threads);
            // The active sets are layout-independent, so the sharded
            // engine performs exactly the event engine's invocations.
            prop_assert_eq!(sh.stats, ev.stats, "threads {}", threads);
        }
    }

    /// Adversarial skew for the work-stealing engine: every initial token
    /// lives in the first n/8 node ids, so all round-0 activity lands in
    /// one worker's home chunks and the rest of the matrix only has work
    /// to *steal*. Equivalence must survive the maximally unbalanced
    /// claim order.
    #[test]
    fn skewed_single_chunk_activity_matches_reference(
        seed in 0u64..100_000,
        n in 16usize..64,
        p in 0.1f64..0.4,
        tokens in 1usize..12,
        ttl in 0u32..40,
    ) {
        let g = generators::gnp_connected(n, p, 9, seed);
        let cfg = CongestConfig::for_graph(&g);
        let span = (n / 8).max(1);
        let rf = run_reference(&g, hop_nodes_in(&g, seed, tokens, ttl, span), &cfg).unwrap();
        let ev = run(&g, hop_nodes_in(&g, seed, tokens, ttl, span), &cfg).unwrap();
        for threads in THREAD_MATRIX {
            let sh =
                run_sharded(&g, hop_nodes_in(&g, seed, tokens, ttl, span), &cfg, threads).unwrap();
            prop_assert_eq!(&sh.metrics, &rf.metrics, "threads {}", threads);
            prop_assert_eq!(&sh.states, &rf.states, "threads {}", threads);
            prop_assert_eq!(sh.stats, ev.stats, "threads {}", threads);
        }
    }

    /// Hub-and-spoke wave: on a star every token bounces through the
    /// center, so the hub's chunk is hot every round while spoke chunks
    /// wake only for their own deliveries — the steady-state skew case
    /// (vs the round-0 skew above). The canonical post-hoc merge must
    /// keep the hub's fan-in in ascending sender order at every thread
    /// count.
    #[test]
    fn hub_and_spoke_wave_matches_reference(
        seed in 0u64..100_000,
        n in 8usize..64,
        tokens in 1usize..10,
        ttl in 1u32..48,
    ) {
        let g = generators::star(n, 9, seed);
        let cfg = CongestConfig::for_graph(&g);
        // All tokens start at the hub (node 0).
        let rf = run_reference(&g, hop_nodes_in(&g, seed, tokens, ttl, 1), &cfg).unwrap();
        let ev = run(&g, hop_nodes_in(&g, seed, tokens, ttl, 1), &cfg).unwrap();
        for threads in THREAD_MATRIX {
            let sh =
                run_sharded(&g, hop_nodes_in(&g, seed, tokens, ttl, 1), &cfg, threads).unwrap();
            prop_assert_eq!(&sh.metrics, &rf.metrics, "threads {}", threads);
            prop_assert_eq!(&sh.states, &rf.states, "threads {}", threads);
            prop_assert_eq!(sh.stats, ev.stats, "threads {}", threads);
        }
    }

    /// Reusing one `RunBuffers` across runs — and across *different*
    /// graphs — must not change any observable outcome.
    #[test]
    fn buffer_reuse_is_transparent(seed in 0u64..50_000, n in 3usize..30) {
        let g1 = generators::gnp_connected(n, 0.3, 9, seed);
        let g2 = generators::path(n + 2, 1);
        let cfg1 = CongestConfig::for_graph(&g1);
        let cfg2 = CongestConfig::for_graph(&g2);
        let mut buf = RunBuffers::for_graph(&g1);
        let fresh = run(&g1, hop_nodes(&g1, seed, 6, 12), &cfg1).unwrap();
        for _ in 0..2 {
            let reused = run_with_buffers(&g1, hop_nodes(&g1, seed, 6, 12), &cfg1, &mut buf).unwrap();
            prop_assert_eq!(&reused.metrics, &fresh.metrics);
            prop_assert_eq!(&reused.states, &fresh.states);
            // Same buffers, different graph: fingerprint triggers a rebuild.
            let other = run_with_buffers(&g2, hop_nodes(&g2, seed, 4, 8), &cfg2, &mut buf).unwrap();
            let other_ref = run_reference(&g2, hop_nodes(&g2, seed, 4, 8), &cfg2).unwrap();
            prop_assert_eq!(&other.metrics, &other_ref.metrics);
        }
    }
}

/// A node that votes done from the start and counts its wake-ups.
#[derive(Debug, PartialEq)]
struct Sleeper {
    woken: u64,
}

impl Protocol for Sleeper {
    type Msg = Token;
    fn init(&mut self, _: &NodeCtx, _: &mut Outbox<Token>) {}
    fn round(&mut self, _: &NodeCtx, inbox: &[(NodeId, Token)], _: &mut Outbox<Token>) {
        self.woken += inbox.len() as u64;
    }
    fn done(&self) -> bool {
        true
    }
}

/// Stays busy (not done) for `countdown` rounds without sending, then
/// pokes its first neighbor once.
#[derive(Debug, PartialEq)]
struct Poker {
    countdown: u32,
}

impl Protocol for Poker {
    type Msg = Token;
    fn init(&mut self, _: &NodeCtx, _: &mut Outbox<Token>) {}
    fn round(&mut self, ctx: &NodeCtx, _: &[(NodeId, Token)], out: &mut Outbox<Token>) {
        if self.countdown > 0 {
            self.countdown -= 1;
            if self.countdown == 0 {
                let (nb, _) = ctx.neighbors()[0];
                out.send(nb, Token { ttl: 0, tag: 7 });
            }
        }
    }
    fn done(&self) -> bool {
        self.countdown == 0
    }
}

/// Wrapper so one `Vec<P>` can mix the two roles.
#[derive(Debug, PartialEq)]
enum WakeNode {
    Sleeper(Sleeper),
    Poker(Poker),
}

impl Protocol for WakeNode {
    type Msg = Token;
    fn init(&mut self, ctx: &NodeCtx, out: &mut Outbox<Token>) {
        match self {
            WakeNode::Sleeper(s) => s.init(ctx, out),
            WakeNode::Poker(p) => p.init(ctx, out),
        }
    }
    fn round(&mut self, ctx: &NodeCtx, inbox: &[(NodeId, Token)], out: &mut Outbox<Token>) {
        match self {
            WakeNode::Sleeper(s) => s.round(ctx, inbox, out),
            WakeNode::Poker(p) => p.round(ctx, inbox, out),
        }
    }
    fn done(&self) -> bool {
        match self {
            WakeNode::Sleeper(s) => s.done(),
            WakeNode::Poker(p) => p.done(),
        }
    }
}

/// Regression: a node that voted done and was skipped for several rounds
/// must be re-invoked when a late message finally arrives.
#[test]
fn done_node_woken_by_late_message_reruns() {
    let g = generators::path(2, 1);
    let cfg = CongestConfig::for_graph(&g);
    let mk = || {
        vec![
            WakeNode::Poker(Poker { countdown: 5 }),
            WakeNode::Sleeper(Sleeper { woken: 0 }),
        ]
    };
    let ev = run(&g, mk(), &cfg).unwrap();
    let rf = run_reference(&g, mk(), &cfg).unwrap();
    assert_eq!(ev.metrics, rf.metrics);
    assert_eq!(ev.states, rf.states);
    match &ev.states[1] {
        WakeNode::Sleeper(s) => assert_eq!(s.woken, 1, "sleeper was not re-run"),
        _ => unreachable!(),
    }
    // The scheduler observed exactly one wake-up of a done node...
    assert_eq!(ev.stats.wakeups, 1);
    // ...and skipped the sleeper in every other round: only the poker's 5
    // busy rounds plus the single wake-up were executed.
    assert_eq!(ev.stats.activations, 6);
    assert_eq!(rf.stats.activations, 2 * rf.metrics.rounds);
}

/// Regression (sharded): the wake-on-late-message path crosses a shard
/// boundary — with 2+ shards on a 2-node path, the poker and the sleeper
/// live on different workers, so the wake must flow through the
/// cross-shard merge phase.
#[test]
fn done_node_woken_across_shard_boundary() {
    let g = generators::path(2, 1);
    let cfg = CongestConfig::for_graph(&g);
    let mk = || {
        vec![
            WakeNode::Poker(Poker { countdown: 5 }),
            WakeNode::Sleeper(Sleeper { woken: 0 }),
        ]
    };
    let rf = run_reference(&g, mk(), &cfg).unwrap();
    for threads in THREAD_MATRIX {
        let sh = run_sharded(&g, mk(), &cfg, threads).unwrap();
        assert_eq!(sh.metrics, rf.metrics, "threads {threads}");
        assert_eq!(sh.states, rf.states, "threads {threads}");
        assert_eq!(sh.stats.wakeups, 1, "threads {threads}");
        assert_eq!(sh.stats.activations, 6, "threads {threads}");
    }
}

/// A relay that re-arms its `done` vote: idle (done) until a message
/// arrives, then busy (not done) for two silent rounds, then it forwards
/// one token to its next higher-id neighbor and goes idle again. A chain
/// of these exercises done → not-done → done transitions on every node,
/// across shard boundaries.
#[derive(Debug, PartialEq)]
struct Relay {
    /// Rounds of local work remaining (`None` = idle and done).
    busy: Option<u32>,
    woken: u32,
}

impl Relay {
    fn forward(ctx: &NodeCtx, out: &mut Outbox<Token>) {
        if let Some(&(nb, _)) = ctx.neighbors().iter().find(|&&(nb, _)| nb > ctx.id) {
            out.send(nb, Token { ttl: 0, tag: 1 });
        }
    }
}

impl Protocol for Relay {
    type Msg = Token;
    fn init(&mut self, ctx: &NodeCtx, _: &mut Outbox<Token>) {
        if ctx.id == NodeId(0) {
            self.busy = Some(2);
        }
    }
    fn round(&mut self, ctx: &NodeCtx, inbox: &[(NodeId, Token)], out: &mut Outbox<Token>) {
        if !inbox.is_empty() {
            self.woken += 1;
            if self.busy.is_none() {
                self.busy = Some(2);
            }
        }
        self.busy = match self.busy {
            Some(0) => {
                Self::forward(ctx, out);
                None
            }
            Some(k) => Some(k - 1),
            None => None,
        };
    }
    fn done(&self) -> bool {
        self.busy.is_none()
    }
}

/// Regression: `done()` re-arming — a woken node that turns not-done must
/// keep being scheduled through its busy rounds (without deliveries), in
/// every engine and at every thread count, even when the relay chain
/// crosses shard boundaries.
#[test]
fn done_rearm_relay_chain_is_engine_invariant() {
    let n = 9;
    let g = generators::path(n, 1);
    let cfg = CongestConfig::for_graph(&g);
    let mk = || {
        (0..n)
            .map(|_| Relay {
                busy: None,
                woken: 0,
            })
            .collect::<Vec<_>>()
    };
    let rf = run_reference(&g, mk(), &cfg).unwrap();
    let ev = run(&g, mk(), &cfg).unwrap();
    assert_eq!(ev.metrics, rf.metrics);
    assert_eq!(ev.states, rf.states);
    // Every node except the head was woken exactly once.
    for (v, st) in rf.states.iter().enumerate() {
        assert_eq!(st.woken, u32::from(v > 0), "node {v}");
    }
    for threads in THREAD_MATRIX {
        let sh = run_sharded(&g, mk(), &cfg, threads).unwrap();
        assert_eq!(sh.metrics, rf.metrics, "threads {threads}");
        assert_eq!(sh.states, rf.states, "threads {threads}");
        assert_eq!(sh.stats, ev.stats, "threads {threads}");
    }
}

/// A variable-size message for the error-precedence tests.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Blob(usize);

impl Message for Blob {
    fn encoded_bits(&self) -> usize {
        self.0
    }
}

/// Misbehaves during init according to `mode`: 1 = duplicate send to the
/// first neighbor, 2 = duplicate send to an in-graph *non-neighbor*,
/// 3 = over-budget message.
#[derive(Debug)]
struct Erratic {
    mode: u8,
    oversize: usize,
}

impl Protocol for Erratic {
    type Msg = Blob;
    fn init(&mut self, ctx: &NodeCtx, out: &mut Outbox<Blob>) {
        match self.mode {
            1 => {
                let (nb, _) = ctx.neighbors()[0];
                out.send(nb, Blob(1));
                out.send(nb, Blob(1));
            }
            2 => {
                // A node at hop distance 2 on a path: in the graph, not
                // adjacent.
                let far = NodeId(if ctx.id.0 >= 2 {
                    ctx.id.0 - 2
                } else {
                    ctx.id.0 + 2
                });
                out.send(far, Blob(1));
                out.send(far, Blob(1));
            }
            3 => {
                let (nb, _) = ctx.neighbors()[0];
                out.send(nb, Blob(self.oversize));
            }
            _ => {}
        }
    }
    fn round(&mut self, _: &NodeCtx, _: &[(NodeId, Blob)], _: &mut Outbox<Blob>) {}
    fn done(&self) -> bool {
        true
    }
}

fn erratic_nodes(n: usize, modes: &[(usize, u8)], oversize: usize) -> Vec<Erratic> {
    (0..n)
        .map(|v| Erratic {
            mode: modes
                .iter()
                .find(|&&(at, _)| at == v)
                .map_or(0, |&(_, m)| m),
            oversize,
        })
        .collect()
}

/// Regression: a duplicate send to a *non-neighbor* must still surface as
/// `DuplicateSend`, not `NotANeighbor` — the duplicate pass precedes
/// model enforcement in every engine. (Pins the sender-side duplicate
/// marks, which cannot mark non-adjacent targets and fall back to a
/// scan.)
#[test]
fn duplicate_to_non_neighbor_beats_not_a_neighbor() {
    let g = generators::path(5, 1);
    let cfg = CongestConfig::for_graph(&g);
    let expected = SimError::DuplicateSend {
        from: NodeId(0),
        to: NodeId(2),
        round: 0,
    };
    let err = run_reference(&g, erratic_nodes(5, &[(0, 2)], 0), &cfg).unwrap_err();
    assert_eq!(err, expected);
    let err = run(&g, erratic_nodes(5, &[(0, 2)], 0), &cfg).unwrap_err();
    assert_eq!(err, expected);
    for threads in THREAD_MATRIX {
        let err = run_sharded(&g, erratic_nodes(5, &[(0, 2)], 0), &cfg, threads).unwrap_err();
        assert_eq!(err, expected, "threads {threads}");
    }
}

/// Regression: when nodes in *different shards* both violate the model in
/// the same round, every engine reports the violation of the lowest node
/// id — the one the sequential executors hit first.
#[test]
fn lowest_node_error_wins_across_shards() {
    let n = 40;
    let g = generators::path(n, 1);
    let cfg = CongestConfig::for_graph(&g);
    let oversize = cfg.bandwidth_bits + 1;
    // Node 3 over-budget, node 35 duplicate: node 3's error must win ...
    let expected = SimError::BandwidthExceeded {
        from: NodeId(3),
        to: NodeId(2),
        bits: oversize,
        budget: cfg.bandwidth_bits,
        round: 0,
    };
    let modes: &[(usize, u8)] = &[(3, 3), (35, 1)];
    let err = run_reference(&g, erratic_nodes(n, modes, oversize), &cfg).unwrap_err();
    assert_eq!(err, expected);
    for threads in THREAD_MATRIX {
        let err = run_sharded(&g, erratic_nodes(n, modes, oversize), &cfg, threads).unwrap_err();
        assert_eq!(err, expected, "threads {threads}");
    }
    // ... and with the roles swapped, node 3's duplicate wins instead.
    let expected = SimError::DuplicateSend {
        from: NodeId(3),
        to: NodeId(2),
        round: 0,
    };
    let modes: &[(usize, u8)] = &[(3, 1), (35, 3)];
    let err = run_reference(&g, erratic_nodes(n, modes, oversize), &cfg).unwrap_err();
    assert_eq!(err, expected);
    for threads in THREAD_MATRIX {
        let err = run_sharded(&g, erratic_nodes(n, modes, oversize), &cfg, threads).unwrap_err();
        assert_eq!(err, expected, "threads {threads}");
    }
}

/// Counts down a few busy rounds; one designated node panics mid-run.
#[derive(Debug)]
struct PanicNode {
    countdown: u32,
    bomb: bool,
}

impl Protocol for PanicNode {
    type Msg = Token;
    fn init(&mut self, _: &NodeCtx, _: &mut Outbox<Token>) {}
    fn round(&mut self, _: &NodeCtx, _: &[(NodeId, Token)], _: &mut Outbox<Token>) {
        if self.countdown > 0 {
            self.countdown -= 1;
        }
        if self.bomb && self.countdown == 2 {
            panic!("protocol bomb");
        }
    }
    fn done(&self) -> bool {
        self.countdown == 0
    }
}

/// Regression: a panic inside a protocol callback on one worker must
/// propagate out of `run_sharded` like it does out of the sequential
/// engines — not strand the other workers in the barrier forever. (The
/// worker holds the payload, steers everyone into the collective abort,
/// and re-raises only after the last barrier.)
#[test]
fn worker_panic_propagates_instead_of_deadlocking() {
    let g = generators::path(12, 1);
    let cfg = CongestConfig::for_graph(&g);
    let mk = || {
        (0..12)
            .map(|v| PanicNode {
                countdown: 4,
                bomb: v == 5,
            })
            .collect::<Vec<_>>()
    };
    let res = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        run_sharded(&g, mk(), &cfg, 4)
    }));
    let payload = res.expect_err("the protocol panic must propagate to the caller");
    let msg = payload.downcast_ref::<&str>().copied().unwrap_or_default();
    assert_eq!(msg, "protocol bomb", "original panic payload is preserved");
}

/// The headline scaling claim on a sparse wave workload: a BFS-style wave
/// over a long path touches each node O(1) times under the active-set
/// scheduler, versus n invocations per round in the reference loop.
#[test]
fn wave_workload_activation_reduction() {
    let n = 600;
    let g = generators::path(n, 1);
    let cfg = CongestConfig::for_graph(&g);
    let mk = || hop_nodes(&g, 3, 1, (n - 1) as u32);
    let ev = run(&g, mk(), &cfg).unwrap();
    let rf = run_reference(&g, mk(), &cfg).unwrap();
    assert_eq!(ev.metrics, rf.metrics);
    assert!(
        ev.stats.activations * 5 <= rf.stats.activations,
        "event {} vs reference {} activations",
        ev.stats.activations,
        rf.stats.activations
    );
}
