//! The event-driven scheduler must be observationally identical to the
//! naive reference executor: bit-identical [`RunMetrics`] and final node
//! states on every contract-abiding protocol. Property-tested here with a
//! randomized token-hopping protocol over random graphs, plus directed
//! regression tests for the wake-on-late-message path and buffer reuse.

use std::collections::VecDeque;

use proptest::prelude::*;

use dsf_congest::{
    run, run_reference, run_with_buffers, CongestConfig, Message, NodeCtx, Outbox, Protocol,
    RunBuffers,
};
use dsf_graph::{generators, NodeId, WeightedGraph};

fn splitmix(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A token hopping to pseudorandom neighbors until its TTL expires.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Token {
    ttl: u32,
    tag: u64,
}

impl Message for Token {
    fn encoded_bits(&self) -> usize {
        24
    }
}

/// Every received token is digested into the node state and, while its TTL
/// lasts, re-emitted towards a tag-determined neighbor — one message per
/// edge per round via per-neighbor FIFOs. Behavior depends only on state
/// and inbox (never on being invoked while idle), so the protocol is a fair
/// referee between the executors.
#[derive(Debug, PartialEq)]
struct HopNode {
    initial: Vec<Token>,
    queues: Vec<VecDeque<Token>>,
    digest: u64,
    received: u64,
}

impl HopNode {
    fn enqueue(&mut self, tok: Token) {
        let qi = (tok.tag % self.queues.len() as u64) as usize;
        self.queues[qi].push_back(tok);
    }

    fn flush(&mut self, ctx: &NodeCtx, out: &mut Outbox<Token>) {
        for (qi, &(nb, _)) in ctx.neighbors().iter().enumerate() {
            if let Some(tok) = self.queues[qi].pop_front() {
                out.send(nb, tok);
            }
        }
    }
}

impl Protocol for HopNode {
    type Msg = Token;

    fn init(&mut self, ctx: &NodeCtx, out: &mut Outbox<Token>) {
        let initial = std::mem::take(&mut self.initial);
        for tok in initial {
            self.enqueue(tok);
        }
        self.flush(ctx, out);
    }

    fn round(&mut self, ctx: &NodeCtx, inbox: &[(NodeId, Token)], out: &mut Outbox<Token>) {
        for &(from, tok) in inbox {
            self.received += 1;
            self.digest = splitmix(self.digest ^ tok.tag ^ u64::from(from.0));
            if tok.ttl > 0 {
                self.enqueue(Token {
                    ttl: tok.ttl - 1,
                    tag: splitmix(tok.tag),
                });
            }
        }
        self.flush(ctx, out);
    }

    fn done(&self) -> bool {
        self.queues.iter().all(VecDeque::is_empty)
    }
}

/// Fresh nodes with `tokens` tokens scattered pseudorandomly from `seed`.
fn hop_nodes(g: &WeightedGraph, seed: u64, tokens: usize, ttl: u32) -> Vec<HopNode> {
    let mut nodes: Vec<HopNode> = g
        .nodes()
        .map(|v| HopNode {
            initial: Vec::new(),
            queues: vec![VecDeque::new(); g.degree(v)],
            digest: 0,
            received: 0,
        })
        .collect();
    let mut s = seed;
    for _ in 0..tokens {
        s = splitmix(s);
        let holder = (s % g.n() as u64) as usize;
        nodes[holder].initial.push(Token {
            ttl,
            tag: splitmix(s ^ 0xdead_beef),
        });
    }
    nodes
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The core equivalence: identical metrics and identical final states,
    /// with the event-driven executor never doing more activations.
    #[test]
    fn event_executor_matches_reference(
        seed in 0u64..100_000,
        n in 2usize..40,
        p in 0.1f64..0.6,
        tokens in 1usize..12,
        ttl in 0u32..40,
    ) {
        let g = generators::gnp_connected(n, p, 9, seed);
        let cfg = CongestConfig::for_graph(&g);
        let a = run(&g, hop_nodes(&g, seed, tokens, ttl), &cfg).unwrap();
        let b = run_reference(&g, hop_nodes(&g, seed, tokens, ttl), &cfg).unwrap();
        prop_assert_eq!(&a.metrics, &b.metrics);
        prop_assert_eq!(&a.states, &b.states);
        prop_assert!(a.stats.activations <= b.stats.activations);
    }

    /// Reusing one `RunBuffers` across runs — and across *different*
    /// graphs — must not change any observable outcome.
    #[test]
    fn buffer_reuse_is_transparent(seed in 0u64..50_000, n in 3usize..30) {
        let g1 = generators::gnp_connected(n, 0.3, 9, seed);
        let g2 = generators::path(n + 2, 1);
        let cfg1 = CongestConfig::for_graph(&g1);
        let cfg2 = CongestConfig::for_graph(&g2);
        let mut buf = RunBuffers::for_graph(&g1);
        let fresh = run(&g1, hop_nodes(&g1, seed, 6, 12), &cfg1).unwrap();
        for _ in 0..2 {
            let reused = run_with_buffers(&g1, hop_nodes(&g1, seed, 6, 12), &cfg1, &mut buf).unwrap();
            prop_assert_eq!(&reused.metrics, &fresh.metrics);
            prop_assert_eq!(&reused.states, &fresh.states);
            // Same buffers, different graph: fingerprint triggers a rebuild.
            let other = run_with_buffers(&g2, hop_nodes(&g2, seed, 4, 8), &cfg2, &mut buf).unwrap();
            let other_ref = run_reference(&g2, hop_nodes(&g2, seed, 4, 8), &cfg2).unwrap();
            prop_assert_eq!(&other.metrics, &other_ref.metrics);
        }
    }
}

/// A node that votes done from the start and counts its wake-ups.
#[derive(Debug, PartialEq)]
struct Sleeper {
    woken: u64,
}

impl Protocol for Sleeper {
    type Msg = Token;
    fn init(&mut self, _: &NodeCtx, _: &mut Outbox<Token>) {}
    fn round(&mut self, _: &NodeCtx, inbox: &[(NodeId, Token)], _: &mut Outbox<Token>) {
        self.woken += inbox.len() as u64;
    }
    fn done(&self) -> bool {
        true
    }
}

/// Stays busy (not done) for `countdown` rounds without sending, then
/// pokes its first neighbor once.
#[derive(Debug, PartialEq)]
struct Poker {
    countdown: u32,
}

impl Protocol for Poker {
    type Msg = Token;
    fn init(&mut self, _: &NodeCtx, _: &mut Outbox<Token>) {}
    fn round(&mut self, ctx: &NodeCtx, _: &[(NodeId, Token)], out: &mut Outbox<Token>) {
        if self.countdown > 0 {
            self.countdown -= 1;
            if self.countdown == 0 {
                let (nb, _) = ctx.neighbors()[0];
                out.send(nb, Token { ttl: 0, tag: 7 });
            }
        }
    }
    fn done(&self) -> bool {
        self.countdown == 0
    }
}

/// Wrapper so one `Vec<P>` can mix the two roles.
#[derive(Debug, PartialEq)]
enum WakeNode {
    Sleeper(Sleeper),
    Poker(Poker),
}

impl Protocol for WakeNode {
    type Msg = Token;
    fn init(&mut self, ctx: &NodeCtx, out: &mut Outbox<Token>) {
        match self {
            WakeNode::Sleeper(s) => s.init(ctx, out),
            WakeNode::Poker(p) => p.init(ctx, out),
        }
    }
    fn round(&mut self, ctx: &NodeCtx, inbox: &[(NodeId, Token)], out: &mut Outbox<Token>) {
        match self {
            WakeNode::Sleeper(s) => s.round(ctx, inbox, out),
            WakeNode::Poker(p) => p.round(ctx, inbox, out),
        }
    }
    fn done(&self) -> bool {
        match self {
            WakeNode::Sleeper(s) => s.done(),
            WakeNode::Poker(p) => p.done(),
        }
    }
}

/// Regression: a node that voted done and was skipped for several rounds
/// must be re-invoked when a late message finally arrives.
#[test]
fn done_node_woken_by_late_message_reruns() {
    let g = generators::path(2, 1);
    let cfg = CongestConfig::for_graph(&g);
    let mk = || {
        vec![
            WakeNode::Poker(Poker { countdown: 5 }),
            WakeNode::Sleeper(Sleeper { woken: 0 }),
        ]
    };
    let ev = run(&g, mk(), &cfg).unwrap();
    let rf = run_reference(&g, mk(), &cfg).unwrap();
    assert_eq!(ev.metrics, rf.metrics);
    assert_eq!(ev.states, rf.states);
    match &ev.states[1] {
        WakeNode::Sleeper(s) => assert_eq!(s.woken, 1, "sleeper was not re-run"),
        _ => unreachable!(),
    }
    // The scheduler observed exactly one wake-up of a done node...
    assert_eq!(ev.stats.wakeups, 1);
    // ...and skipped the sleeper in every other round: only the poker's 5
    // busy rounds plus the single wake-up were executed.
    assert_eq!(ev.stats.activations, 6);
    assert_eq!(rf.stats.activations, 2 * rf.metrics.rounds);
}

/// The headline scaling claim on a sparse wave workload: a BFS-style wave
/// over a long path touches each node O(1) times under the active-set
/// scheduler, versus n invocations per round in the reference loop.
#[test]
fn wave_workload_activation_reduction() {
    let n = 600;
    let g = generators::path(n, 1);
    let cfg = CongestConfig::for_graph(&g);
    let mk = || hop_nodes(&g, 3, 1, (n - 1) as u32);
    let ev = run(&g, mk(), &cfg).unwrap();
    let rf = run_reference(&g, mk(), &cfg).unwrap();
    assert_eq!(ev.metrics, rf.metrics);
    assert!(
        ev.stats.activations * 5 <= rf.stats.activations,
        "event {} vs reference {} activations",
        ev.stats.activations,
        rf.stats.activations
    );
}
