//! Probabilistic tree embedding of Khan et al. \[14\], the substrate of the
//! paper's randomized algorithm (Section 5) and of the `Õ(sk)` baseline.
//!
//! Construction (paper, Section 5 "Overview of the algorithm in \[14\]"):
//! nodes pick independent random ranks; a global `β` is drawn uniformly
//! from `[1, 2)`; the level-`i` ancestor of a node is the highest-rank node
//! within weighted distance `β·2^i`; virtual edge `(v_{i-1}, v_i)` has
//! weight `β·2^i`. The embedding dominates the graph metric and has
//! expected stretch `O(log n)`.
//!
//! We implement the *recentered* ancestor chain (the well-defined tree
//! variant used by \[14\]'s LE-list construction): the parent of internal
//! node `(c, i)` is the highest-rank node within `β·2^{i+1}` **of `c`**.
//! Ancestor chains are monotone in rank, so consistency is immediate, and
//! the leaf-to-ancestor distance bound `wd(v, c_i) ≤ β·2^{i+1}` keeps the
//! stretch `O(log n)` (experiment E5 measures it).
//!
//! Provided here:
//!
//! * [`LeList`] computation, centralized ([`le_lists`]) and as a CONGEST
//!   protocol ([`distributed::LeProtocol`]) with pipelined Bellman–Ford
//!   propagation — the dominant cost of \[14\]'s `Õ(s)` construction;
//! * [`Embedding`] — ancestor chains, per-node routing tables
//!   (`destination → next hop`), tree metric, optimal forest on the tree,
//!   and the `S`-truncation of Section 5 (`s > √n` regime);
//! * per-node path-congestion statistics (Lemma G.1's `O(log n)` distinct
//!   paths per node — experiment E6).
//!
//! # Invariants
//!
//! Ranks and `β` are drawn from seeded, platform-deterministic PRNGs:
//! the same seed reproduces the same embedding (and therefore the same
//! randomized-solver output) on any machine. The distributed LE-list
//! protocol ([`distributed::le_lists_distributed`]) must agree entry-for-
//! entry with the centralized [`le_lists`] and respects the CONGEST
//! `B`-bit budget — both are property-tested.
//!
//! # Example
//!
//! ```
//! use dsf_embed::{le_lists, random_ranks};
//! use dsf_graph::generators;
//!
//! let g = generators::gnp_connected(16, 0.25, 9, 2);
//! let ranks = random_ranks(16, 7);
//! let lists = le_lists(&g, &ranks);
//! assert_eq!(lists.len(), 16);
//! // An LE list is rank-increasing with distance; its last entry is the
//! // globally highest-rank node.
//! let top = ranks.iter().max().unwrap();
//! assert!(lists.iter().all(|l| ranks[l.entries().last().unwrap().node.idx()] == *top));
//! ```

pub mod distributed;
mod embedding;
mod le_list;

pub use embedding::{Embedding, EmbeddingConfig, TruncatedChain};
pub use le_list::{le_lists, LeEntry, LeList};

use dsf_graph::Weight;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Random ranks: a permutation of `0..n`; higher value = higher rank.
/// The paper's "IDs picked independently at random" with ties removed.
pub fn random_ranks(n: usize, seed: u64) -> Vec<u32> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut perm: Vec<u32> = (0..n as u32).collect();
    for i in (1..n).rev() {
        let j = rng.gen_range(0..=i);
        perm.swap(i, j);
    }
    perm
}

/// The random scale factor `β ∈ [1, 2)`, kept as a fixed-point dyadic
/// `num / 2^16` so that the ball test `wd ≤ β·2^i` is exact integer
/// arithmetic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Beta {
    num: u32,
}

impl Beta {
    /// Fixed-point denominator exponent.
    pub const FRAC_BITS: u32 = 16;

    /// Samples `β` uniformly from the `[1, 2)` grid.
    pub fn sample(seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xbe7a_0000_0000_0001);
        Beta {
            num: (1 << Self::FRAC_BITS) + rng.gen_range(0..1u32 << Self::FRAC_BITS),
        }
    }

    /// A deterministic `β = 1` (useful in tests).
    pub fn one() -> Self {
        Beta {
            num: 1 << Self::FRAC_BITS,
        }
    }

    /// Whether `wd ≤ β·2^i` (exact).
    pub fn ball_contains(self, wd: Weight, i: u32) -> bool {
        // wd ≤ num · 2^{i-16}  ⟺  wd · 2^16 ≤ num · 2^i
        (wd as u128) << Self::FRAC_BITS <= (self.num as u128) << i
    }

    /// `β·2^i` rounded up to an integer (virtual edge weights are reported
    /// at this granularity; the tree metric uses exact comparisons).
    pub fn scaled(self, i: u32) -> Weight {
        let v = (self.num as u128) << i;
        ((v + (1u128 << Self::FRAC_BITS) - 1) >> Self::FRAC_BITS) as Weight
    }

    /// `β` as a float, for reporting.
    pub fn to_f64(self) -> f64 {
        self.num as f64 / (1u64 << Self::FRAC_BITS) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranks_are_a_permutation() {
        let r = random_ranks(50, 9);
        let mut sorted = r.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<u32>>());
        assert_eq!(r, random_ranks(50, 9));
        assert_ne!(r, random_ranks(50, 10));
    }

    #[test]
    fn beta_range_and_balls() {
        for seed in 0..20 {
            let b = Beta::sample(seed);
            assert!(b.to_f64() >= 1.0 && b.to_f64() < 2.0);
        }
        let b = Beta::one();
        assert!(b.ball_contains(4, 2)); // 4 <= 1*4
        assert!(!b.ball_contains(5, 2));
        assert_eq!(b.scaled(3), 8);
    }

    #[test]
    fn beta_scaled_rounds_up() {
        // β = 1.5: scaled(0) = ceil(1.5) = 2.
        let b = Beta {
            num: 3 << (Beta::FRAC_BITS - 1),
        };
        assert_eq!(b.scaled(0), 2);
        assert_eq!(b.scaled(1), 3);
        assert!(b.ball_contains(3, 1)); // 3 <= 1.5*2
        assert!(!b.ball_contains(4, 1));
    }
}
