//! Distributed LE-list construction in the CONGEST model.
//!
//! This is the dominant stage of \[14\]'s `Õ(s)`-round virtual-tree
//! construction: a pipelined, Bellman–Ford-style propagation of Pareto
//! entries `(node, rank, dist)`. Each node starts with its own entry and
//! repeatedly relaxes received entries into its frontier; newly accepted
//! entries are queued to every other neighbor, *one entry per edge per
//! round* — the CONGEST cap the simulator enforces.
//!
//! Correctness: the protocol converges to exactly the centralized lists of
//! [`crate::le_lists`] (property-tested). Round complexity: `Õ(s)` w.h.p.
//! because only `O(log n)` entries survive per node; reported, not assumed.

use std::collections::VecDeque;

use dsf_congest::{
    id_bits, run, weight_bits, CongestConfig, Message, NodeCtx, Outbox, Protocol, RunMetrics,
};
use dsf_graph::{NodeId, Weight, WeightedGraph};

use crate::le_list::{LeEntry, LeList};

/// A Pareto entry in flight.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LeMsg {
    /// Origin node of the entry.
    pub node: NodeId,
    /// Rank of the origin node.
    pub rank: u32,
    /// Distance from the sender to the origin.
    pub dist: Weight,
}

impl Message for LeMsg {
    fn encoded_bits(&self) -> usize {
        // One node id, one rank (< n), one distance — all Θ(log n).
        id_bits(self.node.0 as usize + 1) + id_bits(self.rank as usize + 1) + weight_bits(self.dist)
    }
}

/// Per-node state of the LE protocol.
#[derive(Debug)]
pub struct LeProtocol {
    rank: u32,
    list: LeList,
    /// One FIFO of pending entry broadcasts per neighbor (by adjacency
    /// index).
    queues: Vec<VecDeque<LeMsg>>,
}

impl LeProtocol {
    /// Creates the state for a node of the given rank.
    pub fn new(rank: u32, degree: usize) -> Self {
        LeProtocol {
            rank,
            list: LeList::default(),
            queues: vec![VecDeque::new(); degree],
        }
    }

    /// The converged LE list (valid after the run quiesces).
    pub fn list(&self) -> &LeList {
        &self.list
    }

    fn enqueue_broadcast(&mut self, ctx: &NodeCtx, msg: LeMsg, except: Option<NodeId>) {
        for (qi, &(nb, _)) in ctx.neighbors().iter().enumerate() {
            if Some(nb) != except {
                self.queues[qi].push_back(msg);
            }
        }
    }

    fn flush(&mut self, ctx: &NodeCtx, out: &mut Outbox<LeMsg>) {
        for (qi, &(nb, _)) in ctx.neighbors().iter().enumerate() {
            // Drop queued entries that have been dominated since enqueueing:
            // re-sending them would waste the round.
            while let Some(front) = self.queues[qi].front() {
                let still_current = self
                    .list
                    .entries()
                    .iter()
                    .any(|e| e.node == front.node && e.dist == front.dist);
                if still_current {
                    break;
                }
                self.queues[qi].pop_front();
            }
            if let Some(msg) = self.queues[qi].pop_front() {
                out.send(nb, msg);
            }
        }
    }
}

impl Protocol for LeProtocol {
    type Msg = LeMsg;

    fn init(&mut self, ctx: &NodeCtx, out: &mut Outbox<LeMsg>) {
        let own = LeEntry {
            node: ctx.id,
            dist: 0,
            rank: self.rank,
            next_hop: None,
        };
        self.list.insert(own);
        self.enqueue_broadcast(
            ctx,
            LeMsg {
                node: ctx.id,
                rank: self.rank,
                dist: 0,
            },
            None,
        );
        self.flush(ctx, out);
    }

    fn round(&mut self, ctx: &NodeCtx, inbox: &[(NodeId, LeMsg)], out: &mut Outbox<LeMsg>) {
        for &(from, msg) in inbox {
            let edge = ctx
                .neighbors()
                .iter()
                .find(|&&(nb, _)| nb == from)
                .map(|&(_, e)| e)
                .expect("sender is a neighbor");
            let cand = LeEntry {
                node: msg.node,
                dist: msg.dist + ctx.weight(edge),
                rank: msg.rank,
                next_hop: Some(from),
            };
            let dist = cand.dist;
            if self.list.insert(cand) {
                self.enqueue_broadcast(
                    ctx,
                    LeMsg {
                        node: msg.node,
                        rank: msg.rank,
                        dist,
                    },
                    Some(from),
                );
            }
        }
        self.flush(ctx, out);
    }

    fn done(&self) -> bool {
        self.queues.iter().all(VecDeque::is_empty)
    }
}

/// Runs the LE protocol on `g` with the given ranks; returns the lists and
/// the run metrics (the simulated construction cost).
///
/// # Errors
///
/// Propagates simulator errors (e.g. when the configured bandwidth is too
/// small for even a single entry).
pub fn le_lists_distributed(
    g: &WeightedGraph,
    ranks: &[u32],
    cfg: &CongestConfig,
) -> Result<(Vec<LeList>, RunMetrics), dsf_congest::SimError> {
    let nodes: Vec<LeProtocol> = g
        .nodes()
        .map(|v| LeProtocol::new(ranks[v.idx()], g.degree(v)))
        .collect();
    let res = run(g, nodes, cfg)?;
    Ok((
        res.states.into_iter().map(|p| p.list.clone()).collect(),
        res.metrics,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::le_list::le_lists;
    use crate::random_ranks;
    use dsf_graph::generators;

    fn strip_hops(l: &LeList) -> Vec<(NodeId, Weight, u32)> {
        l.entries()
            .iter()
            .map(|e| (e.node, e.dist, e.rank))
            .collect()
    }

    #[test]
    fn matches_centralized_on_random_graphs() {
        for seed in 0..6 {
            let g = generators::gnp_connected(24, 0.15, 12, seed);
            let ranks = random_ranks(24, seed + 50);
            let (dist_lists, metrics) =
                le_lists_distributed(&g, &ranks, &CongestConfig::for_graph(&g)).unwrap();
            let central = le_lists(&g, &ranks);
            for v in g.nodes() {
                assert_eq!(
                    strip_hops(&dist_lists[v.idx()]),
                    strip_hops(&central[v.idx()]),
                    "seed {seed}, node {v}"
                );
            }
            assert!(metrics.rounds > 0);
        }
    }

    #[test]
    fn next_hops_are_distance_consistent() {
        let g = generators::random_geometric(20, 0.4, 3);
        let ranks = random_ranks(20, 3);
        let (lists, _) = le_lists_distributed(&g, &ranks, &CongestConfig::for_graph(&g)).unwrap();
        for v in g.nodes() {
            for e in lists[v.idx()].entries() {
                if let Some(hop) = e.next_hop {
                    let edge = g.find_edge(v, hop).expect("hop is a neighbor");
                    // The hop lies on a shortest path: dist via hop matches.
                    let hop_entry = lists[hop.idx()].entries().iter().find(|h| h.node == e.node);
                    if let Some(h) = hop_entry {
                        assert_eq!(h.dist + g.weight(edge), e.dist);
                    }
                }
            }
        }
    }

    #[test]
    fn rounds_scale_with_shortest_path_diameter() {
        // On a path, s = n-1 and the protocol runs in Õ(s) rounds (the
        // Bellman-Ford propagation of [14]'s LE-list construction, paper
        // Section 5). The seed asserted `rounds >= n-1`, but that
        // over-constrains: propagation stops once no LE list improves, and
        // the one entry guaranteed to travel farthest is the globally
        // highest-rank node's (it belongs to every LE list). The sound
        // lower bound is that node's hop-eccentricity, which on a path is
        // its distance to the farther endpoint — ~n/2 for a random rank
        // permutation, not n-1.
        let n = 30;
        let g = generators::path(n, 3);
        let ranks = random_ranks(n, 1);
        let top = (0..n).max_by_key(|&v| ranks[v]).unwrap();
        let min_rounds = top.max(n - 1 - top) as u64;
        let (_, metrics) = le_lists_distributed(&g, &ranks, &CongestConfig::for_graph(&g)).unwrap();
        assert!(
            metrics.rounds >= min_rounds,
            "rounds = {} < eccentricity {} of the top-rank node",
            metrics.rounds,
            min_rounds
        );
        // And not absurdly more than s · max-list-size.
        assert!(
            metrics.rounds <= (n as u64 - 1) * 20,
            "rounds = {}",
            metrics.rounds
        );
    }

    #[test]
    fn single_message_per_edge_per_round_is_respected() {
        // Implicitly checked by the executor; this test just confirms a
        // dense graph still runs clean.
        let g = generators::complete(12, 30, 2);
        let ranks = random_ranks(12, 2);
        let (lists, _) = le_lists_distributed(&g, &ranks, &CongestConfig::for_graph(&g)).unwrap();
        assert!(lists.iter().all(|l| !l.is_empty()));
    }
}
