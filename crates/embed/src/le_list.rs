//! Least-element (LE) lists.
//!
//! The LE list of `v` is the Pareto frontier of `(distance from v, rank)`:
//! node `w` appears iff `w` has the strictly highest rank among all nodes
//! within distance `wd(v, w)` of `v`. Every level-`i` ancestor of `v` is an
//! LE-list entry (the highest-rank node in the ball `B(v, β·2^i)` is by
//! definition rank-maximal at its own distance), so the whole ancestor
//! chain of the virtual tree can be read off the list locally.
//!
//! With independent random ranks, `E[|LE list|] = H_n = O(log n)` — the
//! classic backwards-analysis argument — which the distributed protocol
//! relies on for its message bounds (and experiment E6 verifies).

use dsf_graph::dijkstra;
use dsf_graph::{NodeId, Weight, WeightedGraph};

/// One entry of an LE list.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LeEntry {
    /// The entry node.
    pub node: NodeId,
    /// Weighted distance from the list owner.
    pub dist: Weight,
    /// The entry node's rank.
    pub rank: u32,
    /// First hop from the owner towards `node` (`None` when `node` is the
    /// owner itself).
    pub next_hop: Option<NodeId>,
}

/// An LE list, sorted by ascending distance (hence ascending rank).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LeList {
    entries: Vec<LeEntry>,
}

impl LeList {
    /// Creates a list from entries already forming a Pareto frontier.
    pub(crate) fn from_sorted(entries: Vec<LeEntry>) -> Self {
        debug_assert!(entries
            .windows(2)
            .all(|w| w[0].dist <= w[1].dist && w[0].rank < w[1].rank));
        LeList { entries }
    }

    /// The entries, ascending by distance.
    pub fn entries(&self) -> &[LeEntry] {
        &self.entries
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the list is empty (never, after construction).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The highest-rank node within distance `limit`, i.e. the last entry
    /// with `dist ≤ limit`.
    pub fn ancestor_within(&self, limit_test: impl Fn(Weight) -> bool) -> Option<&LeEntry> {
        self.entries.iter().rev().find(|e| limit_test(e.dist))
    }

    /// Tries to insert `(node, dist, rank, hop)` into the Pareto frontier.
    /// Returns `true` if the entry was added (and dominated entries pruned).
    ///
    /// Frontier rule: keep iff no existing entry has `dist ≤ new.dist` and
    /// `rank > new.rank`; then remove entries with `dist ≥ new.dist` and
    /// `rank < new.rank`. Equal node: keep the smaller distance.
    pub(crate) fn insert(&mut self, cand: LeEntry) -> bool {
        if let Some(existing) = self.entries.iter().position(|e| e.node == cand.node) {
            if self.entries[existing].dist <= cand.dist {
                return false;
            }
            self.entries.remove(existing);
        }
        let dominated = self
            .entries
            .iter()
            .any(|e| e.dist <= cand.dist && e.rank > cand.rank);
        if dominated {
            return false;
        }
        self.entries
            .retain(|e| !(e.dist >= cand.dist && e.rank < cand.rank));
        let pos = self
            .entries
            .partition_point(|e| (e.dist, e.rank) < (cand.dist, cand.rank));
        self.entries.insert(pos, cand);
        true
    }
}

/// Centralized LE-list computation: one Dijkstra per node. `O(n·m·log n)`.
///
/// The distributed protocol ([`crate::distributed`]) must produce exactly
/// these lists; the equivalence is property-tested.
pub fn le_lists(g: &WeightedGraph, ranks: &[u32]) -> Vec<LeList> {
    assert_eq!(ranks.len(), g.n(), "one rank per node");
    g.nodes()
        .map(|v| {
            let sp = dijkstra::shortest_paths(g, v);
            let mut order: Vec<NodeId> = g.nodes().collect();
            order.sort_by_key(|&u| (sp.dist[u.idx()], std::cmp::Reverse(ranks[u.idx()])));
            let mut best_rank: Option<u32> = None;
            let mut entries = Vec::new();
            for u in order {
                let r = ranks[u.idx()];
                if best_rank.is_none_or(|b| r > b) {
                    best_rank = Some(r);
                    let next_hop = (u != v).then(|| {
                        // First hop: walk the parent chain from u back to v.
                        let mut cur = u;
                        while let Some((p, _)) = sp.parent[cur.idx()] {
                            if p == v {
                                break;
                            }
                            cur = p;
                        }
                        cur
                    });
                    entries.push(LeEntry {
                        node: u,
                        dist: sp.dist[u.idx()],
                        rank: r,
                        next_hop,
                    });
                }
            }
            LeList::from_sorted(entries)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsf_graph::generators;

    #[test]
    fn own_node_is_first_entry() {
        let g = generators::gnp_connected(15, 0.3, 8, 4);
        let ranks = crate::random_ranks(15, 4);
        let lists = le_lists(&g, &ranks);
        for v in g.nodes() {
            let first = lists[v.idx()].entries()[0];
            assert_eq!(first.node, v);
            assert_eq!(first.dist, 0);
            assert_eq!(first.next_hop, None);
        }
    }

    #[test]
    fn last_entry_is_global_max_rank() {
        let g = generators::gnp_connected(15, 0.3, 8, 5);
        let ranks = crate::random_ranks(15, 5);
        let max_rank_node = (0..15).max_by_key(|&i| ranks[i]).unwrap();
        let lists = le_lists(&g, &ranks);
        for v in g.nodes() {
            let last = lists[v.idx()].entries().last().unwrap();
            assert_eq!(last.node, NodeId::from(max_rank_node));
        }
    }

    #[test]
    fn entries_form_pareto_frontier() {
        let g = generators::random_geometric(25, 0.35, 6);
        let ranks = crate::random_ranks(25, 6);
        let lists = le_lists(&g, &ranks);
        for v in g.nodes() {
            let es = lists[v.idx()].entries();
            for w in es.windows(2) {
                assert!(w[0].dist <= w[1].dist);
                assert!(w[0].rank < w[1].rank);
            }
        }
    }

    #[test]
    fn average_list_size_is_logarithmic() {
        let n = 120;
        let g = generators::gnp_connected(n, 0.05, 20, 7);
        let mut total = 0usize;
        for seed in 0..5 {
            let ranks = crate::random_ranks(n, seed);
            let lists = le_lists(&g, &ranks);
            total += lists.iter().map(LeList::len).sum::<usize>();
        }
        let avg = total as f64 / (5 * n) as f64;
        // H_120 ≈ 5.3; allow generous slack.
        assert!(avg < 12.0, "avg LE list size {avg}");
    }

    #[test]
    fn insert_maintains_frontier() {
        let mut l = LeList::default();
        let e = |node: u32, dist: Weight, rank: u32| LeEntry {
            node: NodeId(node),
            dist,
            rank,
            next_hop: None,
        };
        assert!(l.insert(e(0, 0, 5)));
        assert!(l.insert(e(1, 3, 9)));
        // Dominated: farther and lower rank.
        assert!(!l.insert(e(2, 4, 7)));
        // Dominates entry 1: closer, higher rank.
        assert!(l.insert(e(3, 2, 11)));
        assert_eq!(l.len(), 2);
        assert_eq!(l.entries()[1].node, NodeId(3));
        // Same node, better distance: replaces.
        assert!(l.insert(e(3, 1, 11)));
        assert_eq!(l.len(), 2);
        assert_eq!(l.entries()[1].dist, 1);
    }

    #[test]
    fn ancestor_within_limits() {
        let g = generators::path(6, 2); // distances 0,2,4,6,8,10 from node 0
        let ranks: Vec<u32> = vec![0, 1, 2, 3, 4, 5]; // increasing along path
        let lists = le_lists(&g, &ranks);
        // From node 0 every node is an LE entry (rank grows with distance).
        assert_eq!(lists[0].len(), 6);
        let a = lists[0].ancestor_within(|d| d <= 5).unwrap();
        assert_eq!(a.node, NodeId(2));
        let b = lists[0].ancestor_within(|d| d <= 100).unwrap();
        assert_eq!(b.node, NodeId(5));
    }
}
