//! The virtual tree: ancestor chains, physical routing tables, tree metric,
//! tree-optimal forests, and the `S`-truncation of Section 5.

use std::collections::{HashMap, HashSet};

use dsf_graph::dijkstra::{self, ShortestPaths};
use dsf_graph::{metrics, NodeId, Weight, WeightedGraph, INF};
use dsf_steiner::Instance;

use crate::le_list::{le_lists, LeList};
use crate::{random_ranks, Beta};

/// Configuration of an embedding.
#[derive(Debug, Clone, Copy)]
pub struct EmbeddingConfig {
    /// Seed for ranks and `β`.
    pub seed: u64,
    /// If `Some(size)`, compute the `S`-truncation with `|S| = size`
    /// (the paper uses `√n` when `s > √n`).
    pub truncate: Option<usize>,
}

impl EmbeddingConfig {
    /// Untruncated embedding with the given seed.
    pub fn new(seed: u64) -> Self {
        EmbeddingConfig {
            seed,
            truncate: None,
        }
    }
}

/// Truncation data for one node (Section 5, Step 1): the node's ancestor
/// chain is cut at the first ancestor mapped to `S`; the node instead
/// learns its closest `S`-member.
#[derive(Debug, Clone)]
pub struct TruncatedChain {
    /// Chain prefix levels that survive (ancestors not in `S`);
    /// `prefix_len == iv` in the paper's notation.
    pub prefix_len: usize,
    /// The closest node of `S` (`ṽ_{iv}`).
    pub closest_s: NodeId,
    /// Weighted distance to it.
    pub dist_s: Weight,
    /// First hop towards it (`None` when the node is in `S` itself).
    pub next_hop_s: Option<NodeId>,
}

/// A constructed virtual tree embedding.
#[derive(Debug, Clone)]
pub struct Embedding {
    /// Random ranks (a permutation of `0..n`).
    pub ranks: Vec<u32>,
    /// The scale factor `β ∈ [1, 2)`.
    pub beta: Beta,
    /// Number of internal levels: ancestors exist for `i = 0..=top_level`.
    pub top_level: u32,
    /// Per-node LE lists.
    pub lists: Vec<LeList>,
    /// `chains[v][i]` = the level-`i` ancestor (recentered chain).
    pub chains: Vec<Vec<NodeId>>,
    route: Vec<HashMap<NodeId, NodeId>>,
    path_dests: Vec<HashSet<NodeId>>,
    dist_to_center: HashMap<NodeId, ShortestPaths>,
    /// `S`-truncation data (present iff configured).
    pub truncation: Option<Vec<TruncatedChain>>,
    /// The set `S` (highest-rank nodes), sorted by id; empty when not
    /// truncating.
    pub s_set: Vec<NodeId>,
}

impl Embedding {
    /// Builds the embedding on `g`. Centralized computation of the object
    /// the distributed construction of \[14\] produces; the distributed cost
    /// is measured separately by [`crate::distributed`].
    pub fn build(g: &WeightedGraph, cfg: &EmbeddingConfig) -> Self {
        let n = g.n();
        let ranks = random_ranks(n, cfg.seed);
        let beta = Beta::sample(cfg.seed);
        let lists = le_lists(g, &ranks);
        let wd = metrics::weighted_diameter(g);
        let mut top_level = 0u32;
        while !beta.ball_contains(wd, top_level) {
            top_level += 1;
        }

        // Recentered ancestor chains: c_0(v) = max rank in B(v, β);
        // c_{i+1} = max rank in B(c_i, β·2^{i+1}).
        let mut chains: Vec<Vec<NodeId>> = vec![Vec::with_capacity(top_level as usize + 1); n];
        for v in g.nodes() {
            let mut cur = lists[v.idx()]
                .ancestor_within(|d| beta.ball_contains(d, 0))
                .expect("ball of radius >= 1 contains v itself")
                .node;
            chains[v.idx()].push(cur);
            for i in 1..=top_level {
                cur = lists[cur.idx()]
                    .ancestor_within(|d| beta.ball_contains(d, i))
                    .expect("ball contains the center")
                    .node;
                chains[v.idx()].push(cur);
            }
        }

        // Distinct centers per level; paths are drawn from the Dijkstra
        // tree rooted at each destination center so that "the union of all
        // least-weight paths ending at a specific node induces a tree"
        // (paper, Main Techniques).
        let mut centers: HashSet<NodeId> = HashSet::new();
        for v in g.nodes() {
            centers.extend(chains[v.idx()].iter().copied());
        }
        let mut dist_to_center: HashMap<NodeId, ShortestPaths> = HashMap::new();
        for &c in &centers {
            dist_to_center.insert(c, dijkstra::shortest_paths(g, c));
        }

        let mut route: Vec<HashMap<NodeId, NodeId>> = vec![HashMap::new(); n];
        let mut path_dests: Vec<HashSet<NodeId>> = vec![HashSet::new(); n];
        let mut install_path = |src: NodeId, dest: NodeId| {
            let sp = &dist_to_center[&dest];
            let mut cur = src;
            loop {
                path_dests[cur.idx()].insert(dest);
                if cur == dest {
                    break;
                }
                let (next, _) = sp.parent[cur.idx()].expect("graph is connected");
                route[cur.idx()].insert(dest, next);
                cur = next;
            }
        };
        // The paper embeds "via a shortest path from each node v to each of
        // its L+1 ancestors": install v -> chains[v][i] for every level
        // (deduplicated by the route map itself).
        for v in g.nodes() {
            for i in 0..=top_level as usize {
                install_path(v, chains[v.idx()][i]);
            }
        }

        // S-truncation (Section 5 Step 1): S = the `size` highest-rank
        // nodes; chains are cut at the first S-ancestor.
        let (s_set, truncation) = match cfg.truncate {
            None => (Vec::new(), None),
            Some(size) => {
                let size = size.min(n);
                let mut by_rank: Vec<NodeId> = g.nodes().collect();
                by_rank.sort_by_key(|v| std::cmp::Reverse(ranks[v.idx()]));
                let mut s: Vec<NodeId> = by_rank[..size].to_vec();
                s.sort_unstable();
                let in_s: HashSet<NodeId> = s.iter().copied().collect();
                // Closest S member per node, with consistent tie-breaking.
                let msp = dijkstra::multi_source(g, &s);
                let owner = dijkstra::voronoi_owner(&msp, &s);
                let mut trunc = Vec::with_capacity(n);
                for v in g.nodes() {
                    let prefix_len = chains[v.idx()]
                        .iter()
                        .position(|c| in_s.contains(c))
                        .unwrap_or(chains[v.idx()].len());
                    trunc.push(TruncatedChain {
                        prefix_len,
                        closest_s: owner[v.idx()].expect("graph connected"),
                        dist_s: msp.dist[v.idx()],
                        next_hop_s: msp.parent[v.idx()].map(|(p, _)| p),
                    });
                }
                (s, Some(trunc))
            }
        };

        Embedding {
            ranks,
            beta,
            top_level,
            lists,
            chains,
            route,
            path_dests,
            dist_to_center,
            truncation,
            s_set,
        }
    }

    /// Next hop at `x` towards destination center `dest`, if `x` is on an
    /// installed path.
    pub fn next_hop(&self, x: NodeId, dest: NodeId) -> Option<NodeId> {
        self.route[x.idx()].get(&dest).copied()
    }

    /// Number of distinct path destinations traversing `x`
    /// (Lemma G.1: `O(log n)` w.h.p.; experiment E6).
    pub fn path_count(&self, x: NodeId) -> usize {
        self.path_dests[x.idx()].len()
    }

    /// Weighted distance from `x` to a center (`None` if the center is
    /// unknown to the embedding).
    pub fn dist_to(&self, x: NodeId, center: NodeId) -> Option<Weight> {
        self.dist_to_center
            .get(&center)
            .map(|sp| sp.dist[x.idx()])
            .filter(|&d| d < INF)
    }

    /// Hop length of the installed path from `x` to `center`.
    pub fn hops_to(&self, x: NodeId, center: NodeId) -> Option<u32> {
        self.dist_to_center.get(&center).map(|sp| sp.hops[x.idx()])
    }

    /// Tree-metric distance between two leaves: both chains are walked to
    /// their first common ancestor at level `i`; the distance is
    /// `2·Σ_{j=0..=i} β·2^j`.
    pub fn tree_distance(&self, u: NodeId, v: NodeId) -> Weight {
        if u == v {
            return 0;
        }
        let (cu, cv) = (&self.chains[u.idx()], &self.chains[v.idx()]);
        let mut meet = None;
        for i in 0..cu.len() {
            if cu[i] == cv[i] {
                meet = Some(i);
                break;
            }
        }
        let i = meet.expect("chains share the top-level root");
        2 * (0..=i as u32).map(|j| self.beta.scaled(j)).sum::<Weight>()
    }

    /// Weight of the optimal Steiner forest **on the virtual tree** for
    /// `inst` (union over components of the minimal spanning subtree of
    /// their leaves). This is the quantity Lemma G.8 compares the
    /// first-stage edge set against.
    pub fn tree_opt_weight(&self, inst: &Instance) -> Weight {
        let mut total: Weight = 0;
        for comp in inst.components() {
            if comp.len() < 2 {
                continue;
            }
            // Leaf edges: each terminal's edge to its level-0 ancestor.
            total += comp.len() as Weight * self.beta.scaled(0);
            // Level edges: ancestor at level i -> level i+1 is in the
            // subtree iff the leaves below it are a proper nonempty subset.
            for i in 0..self.top_level as usize {
                let mut below: HashMap<NodeId, usize> = HashMap::new();
                for &t in comp {
                    *below.entry(self.chains[t.idx()][i]).or_insert(0) += 1;
                }
                for (_, cnt) in below {
                    if cnt < comp.len() {
                        total += self.beta.scaled(i as u32 + 1);
                    }
                }
            }
        }
        total
    }

    /// All distinct centers (internal virtual nodes).
    pub fn centers(&self) -> Vec<NodeId> {
        let mut cs: Vec<NodeId> = self.dist_to_center.keys().copied().collect();
        cs.sort_unstable();
        cs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsf_graph::generators;
    use dsf_steiner::InstanceBuilder;

    fn build(n: usize, seed: u64) -> (WeightedGraph, Embedding) {
        let g = generators::gnp_connected(n, 0.15, 16, seed);
        let emb = Embedding::build(&g, &EmbeddingConfig::new(seed));
        (g, emb)
    }

    #[test]
    fn chains_converge_to_common_root() {
        let (g, emb) = build(30, 1);
        let top = emb.top_level as usize;
        let root = emb.chains[0][top];
        for v in g.nodes() {
            assert_eq!(emb.chains[v.idx()][top], root, "node {v}");
        }
        // The root is the global max-rank node.
        let max_rank = g.nodes().max_by_key(|v| emb.ranks[v.idx()]).unwrap();
        assert_eq!(root, max_rank);
    }

    #[test]
    fn chains_are_rank_monotone() {
        let (g, emb) = build(25, 2);
        for v in g.nodes() {
            let chain = &emb.chains[v.idx()];
            for w in chain.windows(2) {
                assert!(
                    emb.ranks[w[1].idx()] >= emb.ranks[w[0].idx()],
                    "rank must not decrease along the chain"
                );
            }
        }
    }

    #[test]
    fn tree_metric_dominates_graph_metric() {
        for seed in 0..8 {
            let (g, emb) = build(20, seed);
            let ap = dijkstra::all_pairs(&g);
            for u in g.nodes() {
                for v in g.nodes() {
                    assert!(
                        emb.tree_distance(u, v) >= ap[u.idx()][v.idx()],
                        "seed {seed}: d_T({u},{v}) < d_G"
                    );
                }
            }
        }
    }

    #[test]
    fn average_stretch_is_moderate() {
        // Expected stretch O(log n); over seeds the mean should be tame.
        let g = generators::random_geometric(40, 0.25, 3);
        let ap = dijkstra::all_pairs(&g);
        let mut ratios = Vec::new();
        for seed in 0..10 {
            let emb = Embedding::build(&g, &EmbeddingConfig::new(seed));
            for u in 0..g.n() {
                for v in (u + 1)..g.n() {
                    ratios.push(
                        emb.tree_distance(NodeId::from(u), NodeId::from(v)) as f64
                            / ap[u][v] as f64,
                    );
                }
            }
        }
        let mean = ratios.iter().sum::<f64>() / ratios.len() as f64;
        assert!(mean < 60.0, "mean stretch {mean} looks broken");
        assert!(mean >= 1.0);
    }

    #[test]
    fn routes_walk_to_their_destination() {
        let (g, emb) = build(25, 5);
        for v in g.nodes() {
            let dest = emb.chains[v.idx()][0];
            let mut cur = v;
            let mut hops = 0;
            while cur != dest {
                cur = emb.next_hop(cur, dest).expect("installed path");
                hops += 1;
                assert!(hops <= g.n() as u32, "routing loop");
            }
        }
    }

    #[test]
    fn path_counts_are_logarithmicish() {
        let (g, emb) = build(60, 7);
        let max_count = g.nodes().map(|v| emb.path_count(v)).max().unwrap();
        // Lemma G.1-flavoured: a node serves few distinct destinations.
        assert!(max_count <= 40, "max path count {max_count}");
    }

    #[test]
    fn tree_opt_weight_bounds_component_distance() {
        let (g, emb) = build(20, 9);
        let inst = InstanceBuilder::new(&g)
            .component(&[NodeId(0), NodeId(10)])
            .build()
            .unwrap();
        let w = emb.tree_opt_weight(&inst);
        // The tree solution connects 0 and 10, so it weighs at least their
        // tree distance minus the doubled leaf edges, and at least d_G.
        assert!(w as f64 >= emb.tree_distance(NodeId(0), NodeId(10)) as f64 / 2.0);
    }

    #[test]
    fn truncation_prefix_and_closest_s() {
        let g = generators::random_geometric(36, 0.3, 11);
        let cfg = EmbeddingConfig {
            seed: 11,
            truncate: Some(6),
        };
        let emb = Embedding::build(&g, &cfg);
        let trunc = emb.truncation.as_ref().unwrap();
        assert_eq!(emb.s_set.len(), 6);
        let in_s: std::collections::HashSet<_> = emb.s_set.iter().copied().collect();
        for v in g.nodes() {
            let t = &trunc[v.idx()];
            // Prefix ancestors are outside S; the cut ancestor (if any) is in S.
            for i in 0..t.prefix_len {
                assert!(!in_s.contains(&emb.chains[v.idx()][i]));
            }
            if t.prefix_len < emb.chains[v.idx()].len() {
                assert!(in_s.contains(&emb.chains[v.idx()][t.prefix_len]));
            }
            // Closest-S data is consistent.
            assert!(in_s.contains(&t.closest_s));
            if in_s.contains(&v) {
                assert_eq!(t.dist_s, 0);
            }
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let g = generators::gnp_connected(20, 0.2, 9, 3);
        let a = Embedding::build(&g, &EmbeddingConfig::new(42));
        let b = Embedding::build(&g, &EmbeddingConfig::new(42));
        assert_eq!(a.chains, b.chains);
        assert_eq!(a.ranks, b.ranks);
    }
}
