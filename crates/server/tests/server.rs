//! Acceptance tests of the streaming server: admission control must
//! backpressure (never deadlock), every admitted job must be reported
//! exactly once, and queueing must be invisible in the results.

use std::sync::Arc;
use std::time::Duration;

use dsf_graph::{generators, NodeId, WeightedGraph};
use dsf_server::{
    AdmissionPolicy, JobOptions, JobStatus, ServerConfig, ServerError, StreamingServer,
};
use dsf_service::{SolveRequest, SolverKind, SolverSession};
use dsf_steiner::{Instance, InstanceBuilder};

fn small_case() -> (Arc<WeightedGraph>, Instance) {
    let g = Arc::new(generators::gnp_connected(24, 0.18, 9, 3));
    let inst = InstanceBuilder::new(&g)
        .component(&[NodeId(0), NodeId(11), NodeId(21)])
        .component(&[NodeId(4), NodeId(17)])
        .build()
        .unwrap();
    (g, inst)
}

fn request(id: &str, g: &Arc<WeightedGraph>, inst: &Instance, seed: u64) -> SolveRequest {
    SolveRequest::new(id, g.clone(), inst.clone(), SolverKind::Randomized, seed)
}

#[test]
fn streamed_results_are_bit_identical_to_direct_solves() {
    let (g, inst) = small_case();
    let mut server = StreamingServer::new(ServerConfig {
        workers: 3,
        ..Default::default()
    });
    let requests: Vec<_> = (0..9)
        .map(|s| request(&format!("job-{s}"), &g, &inst, s))
        .collect();
    let handles: Vec<_> = requests
        .iter()
        .map(|r| server.submit(r.clone()).expect("admitted"))
        .collect();
    for (handle, req) in handles.iter().zip(&requests) {
        let result = handle.wait();
        let reference = SolverSession::new().solve(req).expect("clean solve");
        let out = result.status.outcome().expect("completed");
        assert!(
            out.deterministic_eq(&reference),
            "queued job {} drifted from its direct solve",
            result.id
        );
    }
    server.shutdown();
    // The server-wide stream saw every job exactly once.
    let mut seen: Vec<u64> = std::iter::from_fn(|| server.try_next_result())
        .map(|r| r.job_id)
        .collect();
    seen.sort_unstable();
    assert_eq!(seen, (0..9).collect::<Vec<u64>>());
}

#[test]
fn full_queue_rejects_with_saturated_instead_of_deadlocking() {
    let (g, inst) = small_case();
    let server = StreamingServer::new(ServerConfig {
        workers: 1,
        queue_capacity: 3,
        admission: AdmissionPolicy::Reject,
        ..Default::default()
    });
    // Paused: nothing dispatches, so the queue fills deterministically.
    server.pause();
    for s in 0..3 {
        server
            .submit(request(&format!("q-{s}"), &g, &inst, s))
            .expect("under capacity");
    }
    assert_eq!(server.queued(), 3);
    let overflow = server.submit(request("overflow", &g, &inst, 99));
    assert_eq!(
        overflow.unwrap_err(),
        ServerError::Saturated { capacity: 3 },
        "a full queue under Reject must fail fast"
    );
    // Resuming drains the backlog; admission works again (Reject never
    // waits, so retry until the worker frees a slot).
    server.resume();
    let late = loop {
        match server.submit(request("late", &g, &inst, 7)) {
            Ok(handle) => break handle,
            Err(ServerError::Saturated { .. }) => std::thread::yield_now(),
            Err(e) => panic!("unexpected admission error: {e}"),
        }
    };
    assert!(late.wait_timeout(Duration::from_secs(60)).is_some());
}

#[test]
fn blocking_admission_backpressures_the_producer() {
    let (g, inst) = small_case();
    let server = StreamingServer::new(ServerConfig {
        workers: 1,
        queue_capacity: 1,
        admission: AdmissionPolicy::Block,
        ..Default::default()
    });
    // 6 jobs through a 1-deep queue: every submit past the first blocks
    // until the worker frees the slot — completing all of them proves the
    // producer was released each time (bounded memory, no deadlock).
    let handles: Vec<_> = (0..6)
        .map(|s| {
            server
                .submit(request(&format!("bp-{s}"), &g, &inst, s))
                .expect("blocking admission eventually admits")
        })
        .collect();
    for h in handles {
        assert!(h
            .wait_timeout(Duration::from_secs(60))
            .expect("drains")
            .status
            .is_completed());
    }
}

#[test]
fn priorities_order_dispatch_and_ties_stay_fifo() {
    let (g, inst) = small_case();
    let mut server = StreamingServer::new(ServerConfig {
        workers: 1,
        ..Default::default()
    });
    server.pause();
    let prios = [0, 5, -3, 5, 0];
    for (i, &p) in prios.iter().enumerate() {
        server
            .submit_with(
                request(&format!("p{p}-{i}"), &g, &inst, i as u64),
                JobOptions::default().with_priority(p),
            )
            .expect("admitted");
    }
    server.resume();
    let order: Vec<String> = (0..prios.len())
        .map(|_| {
            server
                .next_result_timeout(Duration::from_secs(60))
                .expect("drains")
                .id
        })
        .collect();
    // Highest priority first; equal priorities in submission order.
    assert_eq!(order, ["p5-1", "p5-3", "p0-0", "p0-4", "p-3-2"]);
    server.shutdown();
}

#[test]
fn cancelled_and_expired_jobs_are_reported_not_dropped() {
    let (g, inst) = small_case();
    let mut server = StreamingServer::new(ServerConfig {
        workers: 1,
        ..Default::default()
    });
    server.pause();
    let doomed = server
        .submit(request("doomed", &g, &inst, 1))
        .expect("admitted");
    let expired = server
        .submit_with(
            request("expired", &g, &inst, 2),
            JobOptions::default().with_deadline(std::time::Instant::now()),
        )
        .expect("admitted");
    let survivor = server
        .submit(request("survivor", &g, &inst, 3))
        .expect("admitted");
    assert!(doomed.cancel(), "cancel lands before dispatch");
    server.resume();

    assert!(matches!(doomed.wait().status, JobStatus::Cancelled));
    assert!(matches!(expired.wait().status, JobStatus::DeadlineExpired));
    assert!(survivor.wait().status.is_completed());
    server.shutdown();
    // All three reached the result stream too — nothing silently dropped.
    let mut results = 0;
    while server.try_next_result().is_some() {
        results += 1;
    }
    assert_eq!(results, 3);
}

#[test]
fn graph_with_exactly_threshold_nodes_takes_the_large_lane() {
    let (g, inst) = small_case();
    // Threshold == n: the job is large ("at least this many"), runs on
    // the large lane with the sharded executor, and still matches the
    // direct solve bit for bit.
    let server = StreamingServer::new(ServerConfig {
        workers: 2,
        large_node_threshold: g.n(),
        ..Default::default()
    });
    assert!(server.config().service_config().is_large(g.n()));
    let req = request("boundary", &g, &inst, 5);
    let handle = server.submit(req.clone()).expect("admitted");
    let out = handle.wait();
    let reference = SolverSession::new().solve(&req).expect("clean solve");
    assert!(out
        .status
        .outcome()
        .expect("completed")
        .deterministic_eq(&reference));
}

#[test]
fn small_jobs_flow_while_a_large_job_drains() {
    let (small_g, small_inst) = small_case();
    let large_g = Arc::new(generators::grid(10, 10, 8, 1));
    let large_inst = InstanceBuilder::new(&large_g)
        .component(&[NodeId(0), NodeId(99)])
        .build()
        .unwrap();
    let mut server = StreamingServer::new(ServerConfig {
        workers: 2,
        // The 100-node grid is "large", the 24-node gnp stays small.
        large_node_threshold: 100,
        ..Default::default()
    });
    server.pause();
    let large = server
        .submit(SolveRequest::new(
            "large",
            large_g.clone(),
            large_inst.clone(),
            SolverKind::Deterministic,
            0,
        ))
        .expect("admitted");
    let smalls: Vec<_> = (0..6)
        .map(|s| {
            server
                .submit(request(&format!("small-{s}"), &small_g, &small_inst, s))
                .expect("admitted")
        })
        .collect();
    server.resume();
    // Both lanes drain concurrently and every result matches its direct
    // solve (lane choice is invisible in the outcome).
    let large_ref = SolverSession::new()
        .solve(&SolveRequest::new(
            "large",
            large_g,
            large_inst,
            SolverKind::Deterministic,
            0,
        ))
        .expect("clean solve");
    assert!(large
        .wait()
        .status
        .outcome()
        .expect("completed")
        .deterministic_eq(&large_ref));
    for (s, h) in smalls.iter().enumerate() {
        let reference = SolverSession::new()
            .solve(&request(
                &format!("small-{s}"),
                &small_g,
                &small_inst,
                s as u64,
            ))
            .expect("clean solve");
        assert!(h
            .wait()
            .status
            .outcome()
            .expect("completed")
            .deterministic_eq(&reference));
    }
    server.shutdown();
}

#[test]
fn submitting_after_shutdown_errors_and_shutdown_is_idempotent() {
    let (g, inst) = small_case();
    let mut server = StreamingServer::with_defaults();
    let handle = server
        .submit(request("pre", &g, &inst, 0))
        .expect("admitted");
    server.shutdown();
    assert!(handle.is_finished(), "shutdown drains admitted jobs");
    assert_eq!(
        server.submit(request("post", &g, &inst, 1)).unwrap_err(),
        ServerError::ShuttingDown
    );
    server.shutdown(); // second call is a no-op
}

#[test]
fn zero_workers_and_zero_capacity_are_clamped_to_one() {
    let server = StreamingServer::new(ServerConfig {
        workers: 0,
        queue_capacity: 0,
        ..Default::default()
    });
    assert_eq!(server.workers(), 1);
    assert_eq!(server.config().queue_capacity, 1);
    // And the clamped server actually works.
    let (g, inst) = small_case();
    let h = server
        .submit(request("clamped", &g, &inst, 0))
        .expect("admitted");
    assert!(h
        .wait_timeout(Duration::from_secs(60))
        .expect("drains")
        .status
        .is_completed());
}
