//! The streaming reactor: bounded admission, two dispatch lanes, and the
//! result stream.

use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use dsf_congest::default_threads;
use dsf_service::{ServiceConfig, SolveRequest, SolverSession};

use crate::job::{JobHandle, JobOptions, JobResult, JobShared, JobStatus};

/// What [`StreamingServer::submit`] does when the admission queue is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AdmissionPolicy {
    /// Block the submitting thread until a slot frees up (backpressure
    /// propagates to the producer). The default.
    #[default]
    Block,
    /// Fail fast with [`ServerError::Saturated`]; the caller decides
    /// whether to retry, shed, or redirect the job.
    Reject,
}

/// Configuration of a [`StreamingServer`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Small-lane worker threads (each owning a warm
    /// [`SolverSession`]), and the sharded-executor thread count a
    /// large job runs with. Clamped to ≥ 1.
    pub workers: usize,
    /// Most jobs (both lanes combined) admitted but not yet dispatched.
    /// Clamped to ≥ 1.
    pub queue_capacity: usize,
    /// What `submit` does when the queue is full.
    pub admission: AdmissionPolicy,
    /// Jobs whose graph has at least this many nodes take the large lane
    /// (same split as [`ServiceConfig::large_node_threshold`]).
    pub large_node_threshold: usize,
}

impl Default for ServerConfig {
    /// `DSF_THREADS` workers, a 1024-deep queue, blocking admission, and
    /// the service-layer default large-job threshold.
    fn default() -> Self {
        let svc = ServiceConfig::default();
        ServerConfig {
            workers: default_threads(),
            queue_capacity: 1024,
            admission: AdmissionPolicy::Block,
            large_node_threshold: svc.large_node_threshold,
        }
    }
}

impl ServerConfig {
    /// The config with out-of-range fields clamped (workers ≥ 1, capacity
    /// ≥ 1) — what [`StreamingServer::new`] actually runs with.
    #[must_use]
    pub fn normalized(mut self) -> Self {
        self.workers = self.workers.max(1);
        self.queue_capacity = self.queue_capacity.max(1);
        self
    }

    /// The service-layer view of this config; job classification goes
    /// through [`ServiceConfig::is_large`] so the server and
    /// [`dsf_service::SolverService`] can never disagree on a job's lane.
    pub fn service_config(&self) -> ServiceConfig {
        ServiceConfig {
            workers: self.workers,
            large_node_threshold: self.large_node_threshold,
        }
    }
}

/// Why a submission was not admitted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServerError {
    /// The admission queue held `capacity` jobs and the config's policy
    /// is [`AdmissionPolicy::Reject`].
    Saturated {
        /// The configured queue capacity.
        capacity: usize,
    },
    /// [`StreamingServer::shutdown`] was called; no new jobs are admitted.
    ShuttingDown,
}

impl std::fmt::Display for ServerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServerError::Saturated { capacity } => {
                write!(f, "admission queue saturated ({capacity} jobs queued)")
            }
            ServerError::ShuttingDown => write!(f, "server is shutting down"),
        }
    }
}

impl std::error::Error for ServerError {}

/// One admitted, not-yet-dispatched job.
#[derive(Debug)]
struct QueuedJob {
    job_id: u64,
    /// Admission order, for FIFO tie-breaking within a priority.
    seq: u64,
    priority: i32,
    deadline: Option<Instant>,
    submitted: Instant,
    req: SolveRequest,
    shared: Arc<JobShared>,
}

// Heap order: highest priority first, then lowest seq (FIFO). Only
// `priority`/`seq` participate, consistent across all four impls.
impl PartialEq for QueuedJob {
    fn eq(&self, other: &Self) -> bool {
        self.seq == other.seq
    }
}
impl Eq for QueuedJob {}
impl PartialOrd for QueuedJob {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for QueuedJob {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.priority
            .cmp(&other.priority)
            .then(other.seq.cmp(&self.seq))
    }
}

/// The two dispatch lanes plus admission bookkeeping, under one lock.
#[derive(Debug, Default)]
struct State {
    small: BinaryHeap<QueuedJob>,
    large: BinaryHeap<QueuedJob>,
    closed: bool,
    paused: bool,
}

impl State {
    fn queued(&self) -> usize {
        self.small.len() + self.large.len()
    }
}

/// State shared between the server façade and its worker threads.
#[derive(Debug)]
struct Shared {
    state: Mutex<State>,
    /// Wakes small-lane workers (new job, unpause, shutdown).
    small_ready: Condvar,
    /// Wakes the large-lane worker.
    large_ready: Condvar,
    /// Wakes submitters blocked on a full queue.
    space: Condvar,
    capacity: usize,
}

impl Shared {
    fn lock(&self) -> MutexGuard<'_, State> {
        self.state.lock().expect("server state lock")
    }
}

/// Identifies a dispatch lane to the shared worker loop.
#[derive(Clone, Copy)]
enum Lane {
    Small,
    Large,
}

/// A long-lived streaming front-end over the solver stack.
///
/// Where [`dsf_service::SolverService`] is batch-synchronous (hand over a
/// `Vec`, block until the last job drains), a `StreamingServer` accepts a
/// continuous stream of [`SolveRequest`]s:
///
/// * [`StreamingServer::submit`] admits one job into a **bounded queue**
///   ([`ServerConfig::queue_capacity`]); a full queue either blocks the
///   producer or rejects with [`ServerError::Saturated`] per the
///   [`AdmissionPolicy`];
/// * jobs carry per-request **priorities** and optional **deadlines**
///   ([`JobOptions`]); an expired job is never dispatched and is reported
///   as [`JobStatus::DeadlineExpired`], and [`JobHandle::cancel`] drops a
///   still-queued job as [`JobStatus::Cancelled`] — terminal results are
///   always reported, never silently dropped;
/// * results stream out as jobs finish, through both the per-job
///   [`JobHandle`] and the server-wide stream
///   ([`StreamingServer::next_result`] and friends);
/// * **small and large jobs coexist**: small jobs (below
///   [`ServerConfig::large_node_threshold`] nodes) run on `workers`
///   session-warm worker threads while jobs at or above the threshold
///   drain one at a time on a dedicated large lane, each with the whole
///   `workers`-thread sharded executor — the same split
///   [`dsf_service::SolverService`] makes, via the same
///   [`ServiceConfig::is_large`] classifier, except the small lanes keep
///   flowing while a large job runs.
///
/// Scheduling is invisible in the results: every completed job's
/// deterministic fields (forest, full round ledger, weight, ratio) are
/// bit-identical to a direct `solve_*` call on a fresh session, whatever
/// the queue did — `bench_runner --server` asserts exactly this under
/// open-loop load.
///
/// # Example
///
/// ```
/// use std::sync::Arc;
/// use dsf_graph::{generators, NodeId};
/// use dsf_server::{ServerConfig, StreamingServer};
/// use dsf_service::{SolveRequest, SolverKind};
/// use dsf_steiner::InstanceBuilder;
///
/// let g = Arc::new(generators::gnp_connected(20, 0.2, 9, 1));
/// let inst = InstanceBuilder::new(&g)
///     .component(&[NodeId(0), NodeId(13)])
///     .build()
///     .unwrap();
///
/// let mut server = StreamingServer::new(ServerConfig { workers: 2, ..Default::default() });
/// let handles: Vec<_> = (0..4)
///     .map(|seed| {
///         let req = SolveRequest::new(
///             format!("job-{seed}"), g.clone(), inst.clone(), SolverKind::Randomized, seed);
///         server.submit(req).unwrap()
///     })
///     .collect();
/// for h in &handles {
///     let result = h.wait();
///     assert!(inst.is_feasible(&g, &result.status.outcome().unwrap().forest));
/// }
/// server.shutdown();
/// ```
#[derive(Debug)]
pub struct StreamingServer {
    cfg: ServerConfig,
    svc: ServiceConfig,
    shared: Arc<Shared>,
    /// The server-wide result stream (workers hold the senders).
    results: Mutex<mpsc::Receiver<JobResult>>,
    threads: Vec<std::thread::JoinHandle<()>>,
    next_id: AtomicU64,
}

impl StreamingServer {
    /// Starts a server: `cfg.workers` small-lane worker threads plus one
    /// large-lane thread, all idle until jobs arrive. Out-of-range config
    /// fields are clamped ([`ServerConfig::normalized`]).
    pub fn new(cfg: ServerConfig) -> Self {
        let cfg = cfg.normalized();
        let svc = cfg.service_config();
        let shared = Arc::new(Shared {
            state: Mutex::new(State::default()),
            small_ready: Condvar::new(),
            large_ready: Condvar::new(),
            space: Condvar::new(),
            capacity: cfg.queue_capacity,
        });
        let (tx, rx) = mpsc::channel();
        let mut threads = Vec::with_capacity(cfg.workers + 1);
        for w in 0..cfg.workers {
            let shared = shared.clone();
            let tx = tx.clone();
            threads.push(
                std::thread::Builder::new()
                    .name(format!("dsf-server-small-{w}"))
                    .spawn(move || worker_loop(&shared, Lane::Small, 1, &tx))
                    .expect("spawn small-lane worker"),
            );
        }
        let large_threads = cfg.workers;
        {
            let shared = shared.clone();
            threads.push(
                std::thread::Builder::new()
                    .name("dsf-server-large".into())
                    .spawn(move || worker_loop(&shared, Lane::Large, large_threads, &tx))
                    .expect("spawn large-lane worker"),
            );
        }
        StreamingServer {
            cfg,
            svc,
            shared,
            results: Mutex::new(rx),
            threads,
            next_id: AtomicU64::new(0),
        }
    }

    /// A server with the default configuration.
    pub fn with_defaults() -> Self {
        Self::new(ServerConfig::default())
    }

    /// The effective (clamped) configuration.
    pub fn config(&self) -> &ServerConfig {
        &self.cfg
    }

    /// Small-lane worker threads (also the sharded thread count of a
    /// large job).
    pub fn workers(&self) -> usize {
        self.cfg.workers
    }

    /// Jobs currently admitted but not yet dispatched.
    pub fn queued(&self) -> usize {
        self.shared.lock().queued()
    }

    /// Submits a job with default options (priority 0, no deadline).
    ///
    /// # Errors
    ///
    /// [`ServerError::Saturated`] under [`AdmissionPolicy::Reject`] with a
    /// full queue; [`ServerError::ShuttingDown`] after shutdown.
    pub fn submit(&self, req: SolveRequest) -> Result<JobHandle, ServerError> {
        self.submit_with(req, JobOptions::default())
    }

    /// Submits a job with explicit scheduling options.
    ///
    /// Admission is the only place backpressure applies: once admitted, a
    /// job is guaranteed a terminal [`JobResult`] (completed, failed,
    /// cancelled, or deadline-expired).
    ///
    /// # Errors
    ///
    /// [`ServerError::Saturated`] under [`AdmissionPolicy::Reject`] with a
    /// full queue; [`ServerError::ShuttingDown`] after shutdown (including
    /// while blocked waiting for a slot).
    pub fn submit_with(
        &self,
        req: SolveRequest,
        opts: JobOptions,
    ) -> Result<JobHandle, ServerError> {
        let mut st = self.shared.lock();
        loop {
            if st.closed {
                return Err(ServerError::ShuttingDown);
            }
            if st.queued() < self.shared.capacity {
                break;
            }
            match self.cfg.admission {
                AdmissionPolicy::Reject => {
                    return Err(ServerError::Saturated {
                        capacity: self.shared.capacity,
                    })
                }
                AdmissionPolicy::Block => {
                    st = self.shared.space.wait(st).expect("server state lock");
                }
            }
        }
        let job_id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let shared = Arc::new(JobShared::default());
        let handle = JobHandle {
            job_id,
            id: req.id.clone(),
            shared: shared.clone(),
        };
        let large = self.svc.is_large(req.graph.n());
        let job = QueuedJob {
            job_id,
            seq: job_id,
            priority: opts.priority,
            deadline: opts.deadline,
            submitted: Instant::now(),
            req,
            shared,
        };
        if large {
            st.large.push(job);
            self.shared.large_ready.notify_one();
        } else {
            st.small.push(job);
            self.shared.small_ready.notify_one();
        }
        Ok(handle)
    }

    /// Stops dispatching queued jobs (already-running solves finish).
    /// Admission is unaffected — useful for building up a queue
    /// deterministically (tests, the bench saturation probe).
    pub fn pause(&self) {
        self.shared.lock().paused = true;
    }

    /// Resumes dispatch after [`StreamingServer::pause`].
    pub fn resume(&self) {
        let mut st = self.shared.lock();
        st.paused = false;
        drop(st);
        self.shared.small_ready.notify_all();
        self.shared.large_ready.notify_all();
    }

    /// Receives the next finished job, blocking until one is available.
    /// `None` once the server is shut down and every admitted job's
    /// result has been received.
    pub fn next_result(&self) -> Option<JobResult> {
        self.results.lock().expect("results lock").recv().ok()
    }

    /// Like [`StreamingServer::next_result`] with a timeout; `None` on
    /// timeout or exhaustion.
    pub fn next_result_timeout(&self, timeout: Duration) -> Option<JobResult> {
        self.results
            .lock()
            .expect("results lock")
            .recv_timeout(timeout)
            .ok()
    }

    /// Receives a finished job if one is already waiting.
    pub fn try_next_result(&self) -> Option<JobResult> {
        self.results.lock().expect("results lock").try_recv().ok()
    }

    /// Drains the server: stops admitting, lets every already-admitted
    /// job reach a terminal result (cancellations and expired deadlines
    /// included), and joins the worker threads. Idempotent; also run by
    /// `Drop`. Buffered results remain receivable afterwards.
    pub fn shutdown(&mut self) {
        {
            let mut st = self.shared.lock();
            st.closed = true;
            // A paused, closed server must still drain its queue.
            st.paused = false;
        }
        self.shared.small_ready.notify_all();
        self.shared.large_ready.notify_all();
        self.shared.space.notify_all();
        for t in self.threads.drain(..) {
            if let Err(payload) = t.join() {
                std::panic::resume_unwind(payload);
            }
        }
    }
}

impl Drop for StreamingServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// One dispatch lane's worker: pop the best queued job, resolve it, and
/// publish the result; exit when the server is closed and the lane is
/// drained.
fn worker_loop(shared: &Shared, lane: Lane, threads: usize, tx: &mpsc::Sender<JobResult>) {
    let mut session = SolverSession::new();
    loop {
        let job = {
            let mut st = shared.lock();
            loop {
                if !st.paused {
                    let popped = match lane {
                        Lane::Small => st.small.pop(),
                        Lane::Large => st.large.pop(),
                    };
                    if let Some(job) = popped {
                        break Some(job);
                    }
                    if st.closed {
                        break None;
                    }
                }
                let cv = match lane {
                    Lane::Small => &shared.small_ready,
                    Lane::Large => &shared.large_ready,
                };
                st = cv.wait(st).expect("server state lock");
            }
        };
        let Some(job) = job else { return };
        // One admission slot freed; wake one blocked submitter.
        shared.space.notify_one();
        resolve(&mut session, job, threads, tx);
    }
}

/// Resolves one popped job: cancellation and deadline are checked *before*
/// dispatch, so an unwanted job never burns a solve.
fn resolve(
    session: &mut SolverSession,
    job: QueuedJob,
    threads: usize,
    tx: &mpsc::Sender<JobResult>,
) {
    let dispatched = Instant::now();
    let queued_ns = dispatched.duration_since(job.submitted).as_nanos() as u64;
    let status = if job.shared.cancel.load(Ordering::Acquire) {
        JobStatus::Cancelled
    } else if job.deadline.is_some_and(|d| dispatched >= d) {
        JobStatus::DeadlineExpired
    } else {
        match session.solve_with_threads(&job.req, threads) {
            Ok(out) => JobStatus::Completed(Box::new(out)),
            Err(e) => JobStatus::Failed(e),
        }
    };
    let result = JobResult {
        job_id: job.job_id,
        id: job.req.id.clone(),
        priority: job.priority,
        status,
        queued_ns,
        total_ns: job.submitted.elapsed().as_nanos() as u64,
    };
    job.shared.finish(result.clone());
    // The receiver lives in the server façade; if the façade is mid-drop
    // the handle above already carries the result.
    let _ = tx.send(result);
}
