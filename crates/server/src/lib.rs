//! Async streaming solve server with admission control over the
//! distributed Steiner forest stack.
//!
//! [`dsf_service::SolverService`] (the batch front-end) answers "solve
//! these N requests"; this crate answers "keep solving whatever arrives".
//! A [`StreamingServer`] is a hand-rolled thread + channel reactor — no
//! async runtime — on top of the same pooled
//! [`dsf_service::SolverSession`]s:
//!
//! * **bounded admission** — at most [`ServerConfig::queue_capacity`]
//!   jobs queue; a full queue blocks the producer or rejects with
//!   [`ServerError::Saturated`] ([`AdmissionPolicy`]), so an overloaded
//!   server sheds load instead of growing without bound;
//! * **priorities and deadlines** — [`JobOptions`] order the queue
//!   (priority, then FIFO) and let a job expire un-dispatched
//!   ([`JobStatus::DeadlineExpired`]);
//! * **cancellation** — [`JobHandle::cancel`] drops a still-queued job;
//!   every admitted job is reported exactly once, never silently lost;
//! * **streamed results** — per job via [`JobHandle::wait`], server-wide
//!   via [`StreamingServer::next_result`], as each solve finishes;
//! * **mixed small/large traffic** — small jobs round-robin across
//!   `workers` warm sessions while a large job drains on its own lane
//!   with the whole `workers`-thread sharded executor
//!   ([`dsf_congest::run_sharded`] via the scoped thread override), the
//!   same split [`dsf_service::ServiceConfig::is_large`] gives the batch
//!   service.
//!
//! # Determinism contract
//!
//! Queueing, priorities, lanes, and worker count are invisible in the
//! results: a completed job's deterministic fields (forest, full round
//! ledger, weight, ratio) are bit-identical to a direct `solve_*` call.
//! This inherits the executor's thread-count invariance and the buffer
//! pool's transparency, and is asserted end-to-end by `bench_runner
//! --server` and the root `tests/server_streaming.rs` tier.

mod job;
mod server;

pub use job::{JobHandle, JobOptions, JobResult, JobStatus};
pub use server::{AdmissionPolicy, ServerConfig, ServerError, StreamingServer};
