//! Per-job vocabulary of the streaming server: submission options, the
//! terminal [`JobStatus`], and the caller-side [`JobHandle`].

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use dsf_congest::SimError;
use dsf_service::JobOutcome;

/// Scheduling options attached to one submission.
///
/// The defaults — priority 0, no deadline — make [`JobOptions::default`]
/// equivalent to plain [`crate::StreamingServer::submit`].
#[derive(Debug, Clone, Copy, Default)]
pub struct JobOptions {
    /// Dispatch priority within the job's lane: higher runs sooner; ties
    /// dispatch in submission order (FIFO).
    pub priority: i32,
    /// If set, a job still queued at this instant is never dispatched; it
    /// is reported as [`JobStatus::DeadlineExpired`] instead. A job whose
    /// solve has already started always runs to completion.
    pub deadline: Option<Instant>,
}

impl JobOptions {
    /// Options with the given priority (higher runs sooner).
    #[must_use]
    pub fn with_priority(mut self, priority: i32) -> Self {
        self.priority = priority;
        self
    }

    /// Options with an absolute dispatch deadline.
    #[must_use]
    pub fn with_deadline(mut self, deadline: Instant) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Options with a deadline `timeout` from now.
    #[must_use]
    pub fn with_deadline_in(self, timeout: Duration) -> Self {
        self.with_deadline(Instant::now() + timeout)
    }
}

/// How a job ended. Every submitted job reaches exactly one of these —
/// cancelled and deadline-expired jobs are *reported*, never silently
/// dropped.
#[derive(Debug, Clone)]
pub enum JobStatus {
    /// The solve ran; deterministic fields of the [`JobOutcome`] are
    /// bit-identical to a direct `solve_*` call (boxed: an outcome carries
    /// the full forest and ledger).
    Completed(Box<JobOutcome>),
    /// The solver raised a model violation.
    Failed(SimError),
    /// [`JobHandle::cancel`] was observed before dispatch.
    Cancelled,
    /// The job was still queued when its [`JobOptions::deadline`] passed.
    DeadlineExpired,
}

impl JobStatus {
    /// The outcome of a completed job, `None` otherwise.
    pub fn outcome(&self) -> Option<&JobOutcome> {
        match self {
            JobStatus::Completed(out) => Some(out),
            _ => None,
        }
    }

    /// Whether the solve ran to completion.
    pub fn is_completed(&self) -> bool {
        matches!(self, JobStatus::Completed(_))
    }
}

/// The terminal report of one submitted job, delivered both through the
/// server's result stream and through the job's [`JobHandle`].
///
/// `queued_ns` and `total_ns` are wall-clock (report-only); everything
/// reachable through [`JobStatus::Completed`] is deterministic except the
/// outcome's own `wall_ns`.
#[derive(Debug, Clone)]
pub struct JobResult {
    /// Server-assigned submission number (dense, in submission order).
    pub job_id: u64,
    /// The request's caller-chosen id.
    pub id: String,
    /// The priority the job was submitted with.
    pub priority: i32,
    /// How the job ended.
    pub status: JobStatus,
    /// Time from submission to dispatch decision, in nanoseconds
    /// (report-only).
    pub queued_ns: u64,
    /// Time from submission to this result, in nanoseconds (report-only).
    pub total_ns: u64,
}

/// State shared between a [`JobHandle`] and the worker that eventually
/// finishes the job.
#[derive(Debug, Default)]
pub(crate) struct JobShared {
    /// Set by [`JobHandle::cancel`]; observed by the dispatch path.
    pub(crate) cancel: AtomicBool,
    /// The terminal result, once produced.
    slot: Mutex<Option<JobResult>>,
    done: Condvar,
}

impl JobShared {
    /// Publishes the terminal result and wakes every waiter.
    pub(crate) fn finish(&self, result: JobResult) {
        let mut slot = self.slot.lock().expect("job slot lock");
        debug_assert!(slot.is_none(), "a job finishes exactly once");
        *slot = Some(result);
        self.done.notify_all();
    }

    fn is_finished(&self) -> bool {
        self.slot.lock().expect("job slot lock").is_some()
    }
}

/// The caller's side of one submitted job.
///
/// A handle can be polled ([`JobHandle::try_result`]), blocked on
/// ([`JobHandle::wait`]), or used to request cancellation; dropping it
/// does *not* cancel the job — the result still arrives on the server's
/// result stream.
#[derive(Debug)]
pub struct JobHandle {
    pub(crate) job_id: u64,
    pub(crate) id: String,
    pub(crate) shared: Arc<JobShared>,
}

impl JobHandle {
    /// The server-assigned submission number.
    pub fn job_id(&self) -> u64 {
        self.job_id
    }

    /// The request's caller-chosen id.
    pub fn id(&self) -> &str {
        &self.id
    }

    /// Requests cancellation. A job still queued is dropped at dispatch
    /// and reported as [`JobStatus::Cancelled`]; a job already running is
    /// not interrupted (its solve completes normally). Returns whether the
    /// request arrived before the job finished — `false` means the result
    /// already exists and cancellation had no effect.
    pub fn cancel(&self) -> bool {
        self.shared.cancel.store(true, Ordering::Release);
        !self.shared.is_finished()
    }

    /// Whether the job has a terminal result.
    pub fn is_finished(&self) -> bool {
        self.shared.is_finished()
    }

    /// The terminal result, if the job already finished.
    pub fn try_result(&self) -> Option<JobResult> {
        self.shared.slot.lock().expect("job slot lock").clone()
    }

    /// Blocks until the job finishes and returns its result.
    pub fn wait(&self) -> JobResult {
        let mut slot = self.shared.slot.lock().expect("job slot lock");
        loop {
            if let Some(result) = slot.as_ref() {
                return result.clone();
            }
            slot = self.shared.done.wait(slot).expect("job slot lock");
        }
    }

    /// Blocks up to `timeout` for the result; `None` on timeout.
    pub fn wait_timeout(&self, timeout: Duration) -> Option<JobResult> {
        let deadline = Instant::now() + timeout;
        let mut slot = self.shared.slot.lock().expect("job slot lock");
        loop {
            if let Some(result) = slot.as_ref() {
                return Some(result.clone());
            }
            let left = deadline.saturating_duration_since(Instant::now());
            if left.is_zero() {
                return None;
            }
            let (s, _timed_out) = self
                .shared
                .done
                .wait_timeout(slot, left)
                .expect("job slot lock");
            slot = s;
        }
    }
}
