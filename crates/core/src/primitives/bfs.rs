//! Distributed BFS-tree construction.
//!
//! The root floods a `Join(depth)` wave; each node adopts as parent the
//! smallest-id neighbor among the first-round senders (deterministic, and
//! identical to [`dsf_graph::bfs::tree`], which the tests verify). Takes
//! `D + O(1)` rounds.

use dsf_congest::{
    id_bits, run, CongestConfig, Message, NodeCtx, Outbox, Protocol, RunMetrics, SimError,
};
use dsf_graph::{NodeId, WeightedGraph};

/// The wave message: the sender's depth.
#[derive(Debug, Clone, Copy)]
struct Join {
    depth: u32,
}

impl Message for Join {
    fn encoded_bits(&self) -> usize {
        id_bits(self.depth as usize + 1)
    }
}

#[derive(Debug)]
struct BfsNode {
    root: NodeId,
    parent: Option<NodeId>,
    depth: u32,
    joined: bool,
    announced: bool,
}

impl Protocol for BfsNode {
    type Msg = Join;

    fn init(&mut self, ctx: &NodeCtx, out: &mut Outbox<Join>) {
        if ctx.id == self.root {
            self.joined = true;
            self.depth = 0;
            self.announced = true;
            out.send_all(ctx, Join { depth: 0 });
        }
    }

    fn round(&mut self, ctx: &NodeCtx, inbox: &[(NodeId, Join)], out: &mut Outbox<Join>) {
        if !self.joined {
            // Adopt the smallest-id sender of the earliest wave.
            if let Some(&(from, msg)) = inbox.iter().min_by_key(|&&(from, m)| (m.depth, from)) {
                self.joined = true;
                self.parent = Some(from);
                self.depth = msg.depth + 1;
            }
        }
        if self.joined && !self.announced {
            self.announced = true;
            out.send_all(ctx, Join { depth: self.depth });
        }
    }

    fn done(&self) -> bool {
        // Always idle: an unjoined node has nothing to do until a wave
        // message arrives (the event-driven scheduler leaves it asleep
        // instead of busy-spinning it every round), and a joined node has
        // announced within the same invocation it joined. Quiescence —
        // no message in flight — implies every node has joined, because on
        // a connected graph the frontier's announcements stay in flight
        // until the wave has covered the graph.
        true
    }
}

/// Result of the BFS stage.
#[derive(Debug, Clone)]
pub struct BfsOutcome {
    /// The root used.
    pub root: NodeId,
    /// Parent per node (`None` at the root).
    pub parent: Vec<Option<NodeId>>,
    /// Depth per node.
    pub depth: Vec<u32>,
    /// Children lists per node.
    pub children: Vec<Vec<NodeId>>,
    /// Simulation metrics of the stage.
    pub metrics: RunMetrics,
}

impl BfsOutcome {
    /// Height of the tree.
    pub fn height(&self) -> u32 {
        self.depth.iter().copied().max().unwrap_or(0)
    }
}

/// Builds a BFS tree rooted at `root` by simulation.
///
/// # Errors
///
/// Propagates simulator errors (cannot occur for this protocol under the
/// default bandwidth).
///
/// # Panics
///
/// Panics if the graph is not connected (the model requires the network
/// to be a single component; `GraphBuilder::build` enforces this, but
/// `build_unchecked` graphs can violate it).
pub fn build_bfs_tree(
    g: &WeightedGraph,
    root: NodeId,
    cfg: &CongestConfig,
) -> Result<BfsOutcome, SimError> {
    let nodes: Vec<BfsNode> = g
        .nodes()
        .map(|_| BfsNode {
            root,
            parent: None,
            depth: u32::MAX,
            joined: false,
            announced: false,
        })
        .collect();
    let res = run(g, nodes, cfg)?;
    // Since done() idles (quiescence alone ends the run), an unreached
    // node no longer surfaces as MaxRoundsExceeded — check explicitly.
    assert!(
        res.states.iter().all(|s| s.joined),
        "BFS wave did not reach every node: graph is disconnected"
    );
    let parent: Vec<Option<NodeId>> = res.states.iter().map(|s| s.parent).collect();
    let depth: Vec<u32> = res.states.iter().map(|s| s.depth).collect();
    let mut children = vec![Vec::new(); g.n()];
    for v in g.nodes() {
        if let Some(p) = parent[v.idx()] {
            children[p.idx()].push(v);
        }
    }
    Ok(BfsOutcome {
        root,
        parent,
        depth,
        children,
        metrics: res.metrics,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsf_graph::{bfs, generators};

    #[test]
    fn matches_centralized_bfs_tree() {
        for seed in 0..5 {
            let g = generators::gnp_connected(25, 0.15, 9, seed);
            let out = build_bfs_tree(&g, NodeId(0), &CongestConfig::for_graph(&g)).unwrap();
            let reference = bfs::tree(&g, NodeId(0));
            assert_eq!(out.parent, reference.parent, "seed {seed}");
            assert_eq!(out.depth, reference.depth, "seed {seed}");
        }
    }

    #[test]
    fn rounds_close_to_eccentricity() {
        let g = generators::path(20, 1);
        let out = build_bfs_tree(&g, NodeId(0), &CongestConfig::for_graph(&g)).unwrap();
        assert_eq!(out.height(), 19);
        // One round per BFS layer plus the final drain.
        assert!(out.metrics.rounds as u32 >= 19);
        assert!(out.metrics.rounds as u32 <= 21);
    }

    #[test]
    #[should_panic(expected = "disconnected")]
    fn disconnected_graph_fails_loudly() {
        // With idling done() the wave's death no longer trips the
        // max-rounds guard on disconnected graphs; the explicit coverage
        // check must fire instead.
        let mut b = dsf_graph::GraphBuilder::new(4);
        b.add_edge(NodeId(0), NodeId(1), 1).unwrap();
        b.add_edge(NodeId(2), NodeId(3), 1).unwrap();
        let g = b.build_unchecked();
        let _ = build_bfs_tree(&g, NodeId(0), &CongestConfig::for_graph(&g));
    }

    #[test]
    fn children_are_consistent() {
        let g = generators::grid(4, 5, 3, 2);
        let out = build_bfs_tree(&g, NodeId(7), &CongestConfig::for_graph(&g)).unwrap();
        for v in g.nodes() {
            for &c in &out.children[v.idx()] {
                assert_eq!(out.parent[c.idx()], Some(v));
                assert_eq!(out.depth[c.idx()], out.depth[v.idx()] + 1);
            }
        }
    }
}
