//! Shared CONGEST building blocks.

mod bfs;
mod flood;
mod upcast;

pub use bfs::{build_bfs_tree, BfsOutcome};
pub use flood::{flood_items, FloodItem, FloodOutcome};
pub use upcast::{filtered_upcast, UpcastCandidate, UpcastMode, UpcastOutcome, UpcastRootVerdict};
