//! Pipelined, cycle-filtered convergecast of candidate merges —
//! the MST-style "edge elimination" of Garay–Kutten–Peleg, as used by
//! Lemma 4.14 and Corollary 4.16.
//!
//! Every node holds a set of candidates (weighted edges of the candidate
//! multigraph `G_c` over terminals). Candidates stream up a BFS tree in
//! ascending order, one per edge per round; each node discards candidates
//! that close a cycle with smaller candidates it has already seen (safe by
//! the matroid argument: a locally-discarded candidate is also globally
//! redundant). The root consumes a globally ascending stream and either
//! drains it fully ([`UpcastMode::DrainAll`], used by Lemma 2.3's request
//! collection) or applies a verdict function that can accept-and-stop
//! ([`UpcastMode::PhaseDetect`], used per merge phase by Corollary 4.16,
//! where the phase ends at the first activity-changing merge); stopping
//! floods a `Stop` wave that aborts the remaining stream.
//!
//! The ascending-order guarantee is enforced with per-child watermarks:
//! a node forwards its minimal pending candidate only once every non-
//! exhausted child has streamed something at least as large (child streams
//! are themselves ascending). Exhaustion is signalled by `Done` messages
//! propagating up once subtrees drain.

use std::collections::BinaryHeap;

use dsf_congest::{
    id_bits, run, CongestConfig, Message, NodeCtx, Outbox, Protocol, RunMetrics, SimError,
};
use dsf_graph::dyadic::Dyadic;
use dsf_graph::union_find::UnionFind;
use dsf_graph::{EdgeId, NodeId, WeightedGraph};

/// A candidate merge: an edge `{a, b}` of the candidate multigraph with
/// its merge time `mu`, induced by graph edge `edge`.
///
/// The derived ordering `(mu, a, b, edge)` is the paper's lexicographic
/// candidate order (Definition 4.12 / Lemma 4.13).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct UpcastCandidate {
    /// Merge time / reduced weight.
    pub mu: Dyadic,
    /// Smaller terminal index.
    pub a: u32,
    /// Larger terminal index.
    pub b: u32,
    /// The inducing graph edge.
    pub edge: EdgeId,
}

#[derive(Debug, Clone, Copy)]
enum UpMsg {
    Cand(UpcastCandidate),
    Done,
    Stop,
}

impl Message for UpMsg {
    fn encoded_bits(&self) -> usize {
        match self {
            UpMsg::Cand(c) => {
                c.mu.encoded_bits()
                    + id_bits(c.a as usize + 1)
                    + id_bits(c.b as usize + 1)
                    + id_bits(c.edge.0 as usize + 1)
                    + 2
            }
            UpMsg::Done | UpMsg::Stop => 2,
        }
    }
}

/// The root's decision for an accepted (cycle-free) candidate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UpcastRootVerdict {
    /// Keep collecting.
    Accept,
    /// This candidate ends the phase: accept it and stop the stream.
    AcceptAndStop,
    /// Stop *without* accepting this candidate (used by the growth-phase
    /// variant when a candidate's merge time lies beyond the checkpoint
    /// threshold `μ̂`, Algorithm 2 line 16).
    StopBefore,
}

/// How the root terminates.
pub enum UpcastMode<'a> {
    /// Drain the entire stream.
    DrainAll,
    /// Ask the verdict function after each accepted candidate. The
    /// closure is `Send` because it lives inside a protocol node, which
    /// the sharded executor may move to a worker thread.
    PhaseDetect(Box<dyn FnMut(&UpcastCandidate) -> UpcastRootVerdict + Send + 'a>),
}

struct UpcastNode<'a> {
    parent: Option<NodeId>,
    children: Vec<NodeId>,
    pending: BinaryHeap<std::cmp::Reverse<UpcastCandidate>>,
    uf: UnionFind,
    /// Last candidate received per child (stream is ascending).
    watermark: Vec<Option<UpcastCandidate>>,
    child_done: Vec<bool>,
    sent_done: bool,
    stopped: bool,
    forwarded_stop: bool,
    /// Root only: accepted candidates and the verdict function.
    accepted: Vec<UpcastCandidate>,
    mode: Option<UpcastMode<'a>>,
    emit_stop: bool,
}

impl std::fmt::Debug for UpcastNode<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("UpcastNode")
            .field("pending", &self.pending.len())
            .field("stopped", &self.stopped)
            .finish()
    }
}

impl UpcastNode<'_> {
    fn is_root(&self) -> bool {
        self.parent.is_none()
    }

    fn child_index(&self, from: NodeId) -> Option<usize> {
        self.children.iter().position(|&c| c == from)
    }

    /// Largest candidate we may currently emit: the min watermark over
    /// children that are still streaming (`None` = must wait).
    fn emit_bound(&self) -> Option<Option<UpcastCandidate>> {
        // Returns Some(bound) where bound=None means "unbounded";
        // outer None means "blocked by a silent child".
        let mut bound: Option<UpcastCandidate> = None;
        for (i, done) in self.child_done.iter().enumerate() {
            if *done {
                continue;
            }
            match self.watermark[i] {
                None => return None,
                Some(w) => {
                    bound = Some(match bound {
                        None => w,
                        Some(b) => b.min(w),
                    });
                }
            }
        }
        Some(bound)
    }

    /// Pops the minimal pending candidate that survives cycle filtering and
    /// respects the emit bound.
    fn next_emittable(&mut self) -> Option<UpcastCandidate> {
        let bound = self.emit_bound()?;
        loop {
            let &std::cmp::Reverse(top) = self.pending.peek()?;
            if let Some(b) = bound {
                if top > b {
                    return None;
                }
            }
            self.pending.pop();
            if self.uf.union(top.a as usize, top.b as usize) {
                return Some(top);
            }
            // Cycle with smaller candidates: discard and continue.
        }
    }

    fn step(&mut self, ctx: &NodeCtx, out: &mut Outbox<UpMsg>) {
        if self.stopped {
            if !self.forwarded_stop {
                self.forwarded_stop = true;
                for &c in &self.children {
                    out.send(c, UpMsg::Stop);
                }
            }
            return;
        }
        if self.is_root() {
            // Consume as much of the globally-ascending stream as possible.
            // The verdict runs *before* the union so that `StopBefore` can
            // reject a candidate without distorting the cycle filter.
            while let Some(bound) = self.emit_bound() {
                let Some(&std::cmp::Reverse(top)) = self.pending.peek() else {
                    break;
                };
                if let Some(b) = bound {
                    if top > b {
                        break;
                    }
                }
                self.pending.pop();
                if self.uf.same(top.a as usize, top.b as usize) {
                    continue; // cycle with smaller accepted candidates
                }
                let verdict = match &mut self.mode {
                    Some(UpcastMode::DrainAll) | None => UpcastRootVerdict::Accept,
                    Some(UpcastMode::PhaseDetect(f)) => f(&top),
                };
                let stop = match verdict {
                    UpcastRootVerdict::Accept => {
                        self.uf.union(top.a as usize, top.b as usize);
                        self.accepted.push(top);
                        false
                    }
                    UpcastRootVerdict::AcceptAndStop => {
                        self.uf.union(top.a as usize, top.b as usize);
                        self.accepted.push(top);
                        true
                    }
                    UpcastRootVerdict::StopBefore => true,
                };
                if stop {
                    self.stopped = true;
                    self.emit_stop = true;
                    self.forwarded_stop = true;
                    for &ch in &self.children {
                        out.send(ch, UpMsg::Stop);
                    }
                    return;
                }
            }
        } else {
            // Forward one candidate to the parent per round.
            if let Some(c) = self.next_emittable() {
                out.send(self.parent.unwrap(), UpMsg::Cand(c));
            } else if !self.sent_done
                && self.pending.is_empty()
                && self.child_done.iter().all(|&d| d)
            {
                self.sent_done = true;
                out.send(self.parent.unwrap(), UpMsg::Done);
            }
            let _ = ctx;
        }
    }
}

impl Protocol for UpcastNode<'_> {
    type Msg = UpMsg;

    fn init(&mut self, ctx: &NodeCtx, out: &mut Outbox<UpMsg>) {
        self.step(ctx, out);
    }

    fn round(&mut self, ctx: &NodeCtx, inbox: &[(NodeId, UpMsg)], out: &mut Outbox<UpMsg>) {
        for &(from, msg) in inbox {
            match msg {
                UpMsg::Cand(c) => {
                    let i = self
                        .child_index(from)
                        .expect("candidates come from children");
                    self.watermark[i] = Some(c);
                    self.pending.push(std::cmp::Reverse(c));
                }
                UpMsg::Done => {
                    let i = self.child_index(from).expect("done comes from children");
                    self.child_done[i] = true;
                }
                UpMsg::Stop => {
                    self.stopped = true;
                }
            }
        }
        self.step(ctx, out);
    }

    fn done(&self) -> bool {
        if self.stopped {
            return self.forwarded_stop || self.children.is_empty();
        }
        if self.is_root() {
            self.child_done.iter().all(|&d| d) && self.pending.is_empty()
        } else {
            self.sent_done
        }
    }
}

/// Result of a filtered upcast.
#[derive(Debug, Clone)]
pub struct UpcastOutcome {
    /// Candidates accepted at the root, in ascending order.
    pub accepted: Vec<UpcastCandidate>,
    /// Whether the root stopped the stream early.
    pub stopped_early: bool,
    /// Simulation metrics.
    pub metrics: RunMetrics,
}

/// Runs the filtered upcast.
///
/// * `tree`: `(parent, children)` of a BFS tree (root has `parent=None`);
/// * `local`: per-node candidate sets;
/// * `prior`: component representative per terminal index (the connectivity
///   of `(T, F'_c)` from previous phases — Lemma 4.14's tagging);
/// * `mode`: drain fully or detect a phase end.
///
/// # Errors
///
/// Propagates simulator errors.
pub fn filtered_upcast(
    g: &WeightedGraph,
    parent: &[Option<NodeId>],
    children: &[Vec<NodeId>],
    local: Vec<Vec<UpcastCandidate>>,
    prior: &[u32],
    mode: UpcastMode<'_>,
    cfg: &CongestConfig,
) -> Result<UpcastOutcome, SimError> {
    assert_eq!(local.len(), g.n());
    let mk_uf = || {
        let mut uf = UnionFind::new(prior.len());
        for (i, &rep) in prior.iter().enumerate() {
            uf.union(i, rep as usize);
        }
        uf
    };
    let root = g
        .nodes()
        .find(|v| parent[v.idx()].is_none())
        .expect("tree has a root");
    let mut mode_slot = Some(mode);
    let nodes: Vec<UpcastNode> = g
        .nodes()
        .map(|v| UpcastNode {
            parent: parent[v.idx()],
            children: children[v.idx()].clone(),
            pending: local[v.idx()]
                .iter()
                .map(|&c| std::cmp::Reverse(c))
                .collect(),
            uf: mk_uf(),
            watermark: vec![None; children[v.idx()].len()],
            child_done: vec![false; children[v.idx()].len()],
            sent_done: false,
            stopped: false,
            forwarded_stop: false,
            accepted: Vec::new(),
            mode: if v == root { mode_slot.take() } else { None },
            emit_stop: false,
        })
        .collect();
    let res = run(g, nodes, cfg)?;
    let root_state = &res.states[root.idx()];
    Ok(UpcastOutcome {
        accepted: root_state.accepted.clone(),
        stopped_early: root_state.emit_stop,
        metrics: res.metrics,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::primitives::build_bfs_tree;
    use dsf_graph::generators;

    fn cand(mu: i128, a: u32, b: u32, e: u32) -> UpcastCandidate {
        UpcastCandidate {
            mu: Dyadic::from_int(mu),
            a,
            b,
            edge: EdgeId(e),
        }
    }

    fn run_upcast(
        g: &WeightedGraph,
        local: Vec<Vec<UpcastCandidate>>,
        nterms: usize,
        mode: UpcastMode<'_>,
    ) -> UpcastOutcome {
        let cfg = CongestConfig::for_graph(g);
        let bfs = build_bfs_tree(g, NodeId(0), &cfg).unwrap();
        let prior: Vec<u32> = (0..nterms as u32).collect();
        filtered_upcast(g, &bfs.parent, &bfs.children, local, &prior, mode, &cfg).unwrap()
    }

    #[test]
    fn collects_in_ascending_order_and_filters_cycles() {
        let g = generators::path(6, 1);
        let mut local = vec![Vec::new(); 6];
        local[5] = vec![cand(3, 0, 1, 0)];
        local[2] = vec![cand(1, 1, 2, 1), cand(7, 0, 2, 2)]; // the 7 closes a cycle
        local[4] = vec![cand(2, 2, 3, 3)];
        let out = run_upcast(&g, local, 4, UpcastMode::DrainAll);
        let mus: Vec<i128> = out.accepted.iter().map(|c| c.mu.raw().0).collect();
        assert_eq!(mus, vec![1, 2, 3]);
        assert!(!out.stopped_early);
    }

    #[test]
    fn duplicate_pairs_are_deduplicated() {
        let g = generators::path(4, 1);
        let mut local = vec![Vec::new(); 4];
        local[1] = vec![cand(1, 0, 1, 0)];
        local[3] = vec![cand(2, 0, 1, 1)]; // same pair, larger mu: filtered
        let out = run_upcast(&g, local, 2, UpcastMode::DrainAll);
        assert_eq!(out.accepted.len(), 1);
        assert_eq!(out.accepted[0].mu, Dyadic::from_int(1));
    }

    #[test]
    fn phase_detect_stops_the_stream() {
        let g = generators::path(8, 1);
        let mut local = vec![Vec::new(); 8];
        for i in 0..7u32 {
            local[(i + 1) as usize] = vec![cand(i as i128 + 1, i, i + 1, i)];
        }
        let mut count = 0;
        let out = run_upcast(
            &g,
            local,
            8,
            UpcastMode::PhaseDetect(Box::new(move |_c| {
                count += 1;
                if count == 3 {
                    UpcastRootVerdict::AcceptAndStop
                } else {
                    UpcastRootVerdict::Accept
                }
            })),
        );
        assert_eq!(out.accepted.len(), 3);
        assert!(out.stopped_early);
        let mus: Vec<i128> = out.accepted.iter().map(|c| c.mu.raw().0).collect();
        assert_eq!(mus, vec![1, 2, 3]);
    }

    #[test]
    fn prior_partition_filters_known_cycles() {
        let g = generators::path(4, 1);
        let mut local = vec![Vec::new(); 4];
        local[2] = vec![cand(5, 0, 1, 0), cand(6, 2, 3, 1)];
        // Terminals 0 and 1 already share a component.
        let cfg = CongestConfig::for_graph(&g);
        let bfs = build_bfs_tree(&g, NodeId(0), &cfg).unwrap();
        let prior = vec![0, 0, 2, 3];
        let out = filtered_upcast(
            &g,
            &bfs.parent,
            &bfs.children,
            local,
            &prior,
            UpcastMode::DrainAll,
            &cfg,
        )
        .unwrap();
        assert_eq!(out.accepted.len(), 1);
        assert_eq!(out.accepted[0].a, 2);
    }

    #[test]
    fn pipelining_rounds_linear_in_items() {
        // All candidates at the far end of a path: rounds ≈ D + #items.
        let n = 16usize;
        let g = generators::path(n, 1);
        let items = 30u32;
        let mut local = vec![Vec::new(); n];
        local[n - 1] = (0..items)
            .map(|i| cand(i as i128 + 1, 2 * i, 2 * i + 1, i))
            .collect();
        let out = run_upcast(&g, local, (2 * items) as usize, UpcastMode::DrainAll);
        assert_eq!(out.accepted.len(), items as usize);
        assert!(
            out.metrics.rounds <= (n as u64 + items as u64 + 4),
            "rounds = {}",
            out.metrics.rounds
        );
    }

    #[test]
    fn empty_upcast_terminates() {
        let g = generators::path(5, 1);
        let out = run_upcast(&g, vec![Vec::new(); 5], 2, UpcastMode::DrainAll);
        assert!(out.accepted.is_empty());
    }
}
