//! Flood-set dissemination: a set of `O(log n)`-bit items, initially
//! scattered over the nodes, must become known to *every* node.
//!
//! This implements the "broadcast over the BFS tree" steps the paper uses
//! for terminal labels (distributed algorithm Step 1), for the per-phase
//! merge sets `F_c^{(j)}`, and inside the transformations of Lemmas 2.3/2.4.
//! Mechanically it is gossip with per-edge FIFO queues and one item per
//! edge per round; on a tree this is exactly pipelined broadcast
//! (`O(D + #items)` rounds), and on general graphs it is never slower.

use std::collections::{HashSet, VecDeque};

use dsf_congest::{run, CongestConfig, Message, NodeCtx, Outbox, Protocol, RunMetrics, SimError};
use dsf_graph::{NodeId, WeightedGraph};

/// An item being flooded: an opaque `u128` payload with a declared bit
/// width (checked against the bandwidth budget).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FloodItem {
    /// Payload bits.
    pub payload: u128,
    /// Number of meaningful bits (must be `O(log n)`).
    pub bits: u16,
}

impl Message for FloodItem {
    fn encoded_bits(&self) -> usize {
        self.bits as usize
    }
}

#[derive(Debug)]
struct FloodNode {
    known: HashSet<FloodItem>,
    queues: Vec<VecDeque<FloodItem>>,
}

impl FloodNode {
    fn learn(&mut self, ctx: &NodeCtx, item: FloodItem, except: Option<NodeId>) {
        if self.known.insert(item) {
            for (qi, &(nb, _)) in ctx.neighbors().iter().enumerate() {
                if Some(nb) != except {
                    self.queues[qi].push_back(item);
                }
            }
        }
    }

    fn flush(&mut self, ctx: &NodeCtx, out: &mut Outbox<FloodItem>) {
        for (qi, &(nb, _)) in ctx.neighbors().iter().enumerate() {
            if let Some(item) = self.queues[qi].pop_front() {
                out.send(nb, item);
            }
        }
    }
}

impl Protocol for FloodNode {
    type Msg = FloodItem;

    fn init(&mut self, ctx: &NodeCtx, out: &mut Outbox<FloodItem>) {
        let initial: Vec<FloodItem> = self.known.drain().collect();
        for item in initial {
            self.known.insert(item);
            for q in &mut self.queues {
                q.push_back(item);
            }
        }
        // Deterministic queue order.
        for q in &mut self.queues {
            let mut v: Vec<_> = q.drain(..).collect();
            v.sort_unstable();
            q.extend(v);
        }
        self.flush(ctx, out);
    }

    fn round(&mut self, ctx: &NodeCtx, inbox: &[(NodeId, FloodItem)], out: &mut Outbox<FloodItem>) {
        for &(from, item) in inbox {
            self.learn(ctx, item, Some(from));
        }
        self.flush(ctx, out);
    }

    fn done(&self) -> bool {
        self.queues.iter().all(VecDeque::is_empty)
    }
}

/// Result of a flood.
#[derive(Debug, Clone)]
pub struct FloodOutcome {
    /// The union of all items (identical at every node on completion;
    /// asserted), sorted.
    pub items: Vec<FloodItem>,
    /// Simulation metrics.
    pub metrics: RunMetrics,
}

/// Floods `initial[v]` (items held by node `v`) until every node knows the
/// union; returns the union.
///
/// # Errors
///
/// Propagates simulator errors (e.g. an item wider than the bandwidth).
pub fn flood_items(
    g: &WeightedGraph,
    initial: Vec<Vec<FloodItem>>,
    cfg: &CongestConfig,
) -> Result<FloodOutcome, SimError> {
    assert_eq!(initial.len(), g.n());
    let nodes: Vec<FloodNode> = g
        .nodes()
        .map(|v| FloodNode {
            known: initial[v.idx()].iter().copied().collect(),
            queues: vec![VecDeque::new(); g.degree(v)],
        })
        .collect();
    let res = run(g, nodes, cfg)?;
    let mut items: Vec<FloodItem> = res.states[0].known.iter().copied().collect();
    items.sort_unstable();
    for s in &res.states {
        debug_assert_eq!(s.known.len(), items.len(), "flood did not converge");
    }
    Ok(FloodOutcome {
        items,
        metrics: res.metrics,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsf_graph::generators;

    fn item(x: u128) -> FloodItem {
        FloodItem {
            payload: x,
            bits: 32,
        }
    }

    #[test]
    fn all_nodes_learn_everything() {
        let g = generators::gnp_connected(15, 0.2, 5, 1);
        let mut initial = vec![Vec::new(); 15];
        initial[3] = vec![item(100), item(101)];
        initial[9] = vec![item(200)];
        let out = flood_items(&g, initial, &CongestConfig::for_graph(&g)).unwrap();
        assert_eq!(out.items, vec![item(100), item(101), item(200)]);
    }

    #[test]
    fn pipelines_on_a_path() {
        // 40 items at one end of a 20-path: rounds ≈ D + #items, not D·#items.
        let g = generators::path(20, 1);
        let mut initial = vec![Vec::new(); 20];
        initial[0] = (0..40).map(item).collect();
        let out = flood_items(&g, initial, &CongestConfig::for_graph(&g)).unwrap();
        assert_eq!(out.items.len(), 40);
        assert!(
            out.metrics.rounds <= (19 + 40 + 2) as u64,
            "rounds = {} — pipelining broken",
            out.metrics.rounds
        );
    }

    #[test]
    fn empty_flood_is_instant() {
        let g = generators::path(5, 1);
        let out = flood_items(&g, vec![Vec::new(); 5], &CongestConfig::for_graph(&g)).unwrap();
        assert!(out.items.is_empty());
        assert_eq!(out.metrics.rounds, 0);
    }
}
