//! The selection stage (Section 5, Steps 2–4): label custody climbs the
//! virtual tree; requests are routed physically with filtering and
//! multiplexing; traversed edges form the stage-1 output `F`.

use std::collections::{HashMap, HashSet, VecDeque};

use dsf_congest::{
    id_bits, run, CongestConfig, Message, NodeCtx, Outbox, Protocol, RoundLedger, SimError,
};
use dsf_embed::Embedding;
use dsf_graph::{EdgeId, NodeId, WeightedGraph};
use dsf_steiner::{ForestSolution, Instance};

use crate::primitives::BfsOutcome;
use crate::transforms::multi_holder_labels;

/// A routed request: "connect label `label` towards destination `dest`"
/// (the paper's `(λ, v_i)` messages).
#[derive(Debug, Clone, Copy)]
pub struct RouteMsg {
    label: u32,
    dest: NodeId,
}

impl Message for RouteMsg {
    fn encoded_bits(&self) -> usize {
        id_bits(self.label as usize + 1) + id_bits(self.dest.0 as usize + 1)
    }
}

#[derive(Debug)]
struct RouteNode {
    /// `dest -> next hop` from this node (installed shortest paths).
    resolver: HashMap<NodeId, NodeId>,
    /// Locally originated requests (Step 3b's `list`).
    initial: Vec<RouteMsg>,
    /// One FIFO per neighbor — the round-robin multiplexing over
    /// destinations that yields the paper's pipelining.
    queues: Vec<VecDeque<RouteMsg>>,
    /// First-message filter per `(λ, dest)` (Step 3c).
    seen: HashSet<(u32, NodeId)>,
    /// Requests that terminated here (`dest == self`), with their last hop
    /// (`None` = originated locally), in arrival order.
    arrived: Vec<(u32, Option<NodeId>)>,
    /// Edges over which this node *received* a forwarded request
    /// ("each traversed edge is added to F").
    traversed: Vec<EdgeId>,
}

impl RouteNode {
    fn handle(&mut self, ctx: &NodeCtx, msg: RouteMsg, from: Option<NodeId>) {
        if !self.seen.insert((msg.label, msg.dest)) {
            return; // only the first (λ, dest) message is forwarded
        }
        if msg.dest == ctx.id {
            self.arrived.push((msg.label, from));
            return;
        }
        let hop = *self
            .resolver
            .get(&msg.dest)
            .unwrap_or_else(|| panic!("{}: no route to {}", ctx.id, msg.dest));
        let qi = ctx
            .neighbors()
            .iter()
            .position(|&(nb, _)| nb == hop)
            .expect("next hop is a neighbor");
        self.queues[qi].push_back(msg);
    }

    fn flush(&mut self, ctx: &NodeCtx, out: &mut Outbox<RouteMsg>) {
        for (qi, &(nb, _)) in ctx.neighbors().iter().enumerate() {
            if let Some(m) = self.queues[qi].pop_front() {
                out.send(nb, m);
            }
        }
    }
}

impl Protocol for RouteNode {
    type Msg = RouteMsg;

    fn init(&mut self, ctx: &NodeCtx, out: &mut Outbox<RouteMsg>) {
        let msgs = std::mem::take(&mut self.initial);
        for m in msgs {
            self.handle(ctx, m, None);
        }
        self.flush(ctx, out);
    }

    fn round(&mut self, ctx: &NodeCtx, inbox: &[(NodeId, RouteMsg)], out: &mut Outbox<RouteMsg>) {
        for &(from, m) in inbox {
            let edge = ctx
                .neighbors()
                .iter()
                .find(|&&(nb, _)| nb == from)
                .map(|&(_, e)| e)
                .expect("sender is a neighbor");
            // Record before filtering: the edge was traversed either way.
            self.traversed.push(edge);
            self.handle(ctx, m, Some(from));
        }
        self.flush(ctx, out);
    }

    fn done(&self) -> bool {
        self.queues.iter().all(VecDeque::is_empty)
    }
}

/// Outcome of the selection stage.
#[derive(Debug, Clone)]
pub struct SelectionResult {
    /// The stage-1 edge set `F`.
    pub forest: ForestSolution,
    /// Itemized per-phase accounting.
    pub ledger: RoundLedger,
}

/// Runs phases `i = 0..=L` of the selection stage on a built embedding.
///
/// # Errors
///
/// Propagates simulator errors.
pub fn run_selection_stage(
    g: &WeightedGraph,
    emb: &Embedding,
    minimal: &Instance,
    bfs: &BfsOutcome,
    cfg: &CongestConfig,
) -> Result<SelectionResult, SimError> {
    let n = g.n();
    let mut ledger = RoundLedger::new();
    // Step 2: custody starts at the terminals.
    let mut custody: Vec<Vec<u32>> = g
        .nodes()
        .map(|v| minimal.label(v).map(|l| vec![l.0]).unwrap_or_default())
        .collect();
    let mut f_edges: HashSet<EdgeId> = HashSet::new();

    for i in 0..=emb.top_level {
        // Step 3a: which labels still have two or more custodians?
        let keep = multi_holder_labels(g, bfs, &custody, cfg, &mut ledger)?;
        for c in custody.iter_mut() {
            c.retain(|l| keep.contains(l));
        }
        if keep.is_empty() {
            // Every component's custody has merged: all nodes learned this
            // from the (empty) broadcast and terminate.
            break;
        }

        // Step 3b: destinations for this phase.
        let mut initial: Vec<Vec<RouteMsg>> = vec![Vec::new(); n];
        let mut resolvers: Vec<HashMap<NodeId, NodeId>> = vec![HashMap::new(); n];
        let mut dests_used: HashSet<NodeId> = HashSet::new();
        for v in g.nodes() {
            if custody[v.idx()].is_empty() {
                continue;
            }
            let dest = match &emb.truncation {
                Some(tr) if (i as usize) >= tr[v.idx()].prefix_len => tr[v.idx()].closest_s,
                _ => emb.chains[v.idx()][i as usize],
            };
            dests_used.insert(dest);
            for &l in &custody[v.idx()] {
                initial[v.idx()].push(RouteMsg { label: l, dest });
            }
        }
        // Install the next-hop tables for the destinations in use: the
        // ancestor paths from the embedding, or the S-Voronoi tree for
        // truncated destinations.
        for x in g.nodes() {
            for &dest in &dests_used {
                if let Some(hop) = emb.next_hop(x, dest) {
                    resolvers[x.idx()].insert(dest, hop);
                }
            }
            if let Some(tr) = &emb.truncation {
                let t = &tr[x.idx()];
                if let Some(hop) = t.next_hop_s {
                    resolvers[x.idx()].entry(t.closest_s).or_insert(hop);
                }
            }
        }

        // Step 3c: run the routing protocol.
        let nodes: Vec<RouteNode> = g
            .nodes()
            .map(|v| RouteNode {
                resolver: std::mem::take(&mut resolvers[v.idx()]),
                initial: std::mem::take(&mut initial[v.idx()]),
                queues: vec![VecDeque::new(); g.degree(v)],
                seen: HashSet::new(),
                arrived: Vec::new(),
                traversed: Vec::new(),
            })
            .collect();
        let res = run(g, nodes, cfg)?;
        ledger.record(
            format!("phase {i}: request routing (Step 3c)"),
            &res.metrics,
        );
        ledger.charge(
            format!("phase {i}: routing termination O(D)"),
            bfs.height() as u64,
        );

        // Collect traversed edges and hand custody over (Step 3d).
        let mut max_bundle = 0u64;
        let mut next_custody: Vec<Vec<u32>> = vec![Vec::new(); n];
        for w in g.nodes() {
            let st = &res.states[w.idx()];
            f_edges.extend(st.traversed.iter().copied());
            if st.arrived.is_empty() {
                continue;
            }
            let mut labels: Vec<u32> = st.arrived.iter().map(|&(l, _)| l).collect();
            labels.sort_unstable();
            labels.dedup();
            max_bundle = max_bundle.max(labels.len() as u64);
            // The new custodian: the first arriving sender, or w itself for
            // locally-originated requests.
            let custodian = st.arrived[0].1.unwrap_or(w);
            next_custody[custodian.idx()].extend(labels);
        }
        for c in next_custody.iter_mut() {
            c.sort_unstable();
            c.dedup();
        }
        custody = next_custody;
        // The backtrace reuses the recorded request paths (edges already in
        // F): pipelined, ≤ path hops + bundle size rounds.
        ledger.charge(
            format!("phase {i}: custody backtrace (Step 3d)"),
            res.metrics.rounds + max_bundle,
        );
    }

    Ok(SelectionResult {
        forest: f_edges.into_iter().collect(),
        ledger,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::primitives::build_bfs_tree;
    use dsf_embed::EmbeddingConfig;
    use dsf_graph::generators;
    use dsf_steiner::random_instance;

    fn stage(
        g: &WeightedGraph,
        inst: &Instance,
        seed: u64,
        truncate: Option<usize>,
    ) -> SelectionResult {
        let cfg = CongestConfig::for_graph(g);
        let bfs = build_bfs_tree(g, NodeId(0), &cfg).unwrap();
        let emb = Embedding::build(g, &EmbeddingConfig { seed, truncate });
        run_selection_stage(g, &emb, inst, &bfs, &cfg).unwrap()
    }

    #[test]
    fn untruncated_stage_solves_the_instance() {
        // Corollary G.10: with S = ∅ the first stage alone is feasible.
        for seed in 0..6 {
            let g = generators::gnp_connected(20, 0.2, 8, seed);
            let inst = random_instance(&g, 3, 2, seed + 5);
            let out = stage(&g, &inst, seed, None);
            assert!(inst.is_feasible(&g, &out.forest), "seed {seed}");
        }
    }

    #[test]
    fn stage1_weight_bounded_by_tree_optimum() {
        // Lemma G.8.
        for seed in 0..6 {
            let g = generators::random_geometric(22, 0.35, seed);
            let inst = random_instance(&g, 2, 3, seed);
            let emb = Embedding::build(&g, &EmbeddingConfig::new(seed));
            let cfg = CongestConfig::for_graph(&g);
            let bfs = build_bfs_tree(&g, NodeId(0), &cfg).unwrap();
            let out = run_selection_stage(&g, &emb, &inst, &bfs, &cfg).unwrap();
            assert!(
                out.forest.weight(&g) <= emb.tree_opt_weight(&inst),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn truncated_stage_reaches_s_nodes() {
        // Lemma G.9(ii): with truncation every terminal's F-component
        // contains an S node or its whole component.
        for seed in 0..4 {
            let g = generators::gnp_connected(25, 0.15, 9, seed + 30);
            let inst = random_instance(&g, 2, 2, seed);
            let trunc_size = 5;
            let out = stage(&g, &inst, seed, Some(trunc_size));
            let emb = Embedding::build(
                &g,
                &EmbeddingConfig {
                    seed,
                    truncate: Some(trunc_size),
                },
            );
            let comps = g.components_of(out.forest.edges());
            let s_comps: HashSet<NodeId> = emb.s_set.iter().map(|&v| comps[v.idx()]).collect();
            for comp in inst.components() {
                let all_same = comp
                    .windows(2)
                    .all(|w| comps[w[0].idx()] == comps[w[1].idx()]);
                let touches_s = comp.iter().all(|t| s_comps.contains(&comps[t.idx()]));
                assert!(all_same || touches_s, "seed {seed}: component stranded");
            }
        }
    }

    #[test]
    fn custody_count_shrinks_per_label() {
        // After the stage, every label was reduced to a single custodian.
        let g = generators::gnp_connected(18, 0.25, 7, 3);
        let inst = random_instance(&g, 2, 4, 3);
        let out = stage(&g, &inst, 3, None);
        assert!(inst.is_feasible(&g, &out.forest));
    }
}
