//! The randomized `O(log n)`-approximation (Section 5, Theorem 5.2).
//!
//! Structure:
//!
//! 1. **Virtual tree stage** — the probabilistic tree embedding of \[14\]
//!    ([`dsf_embed`]): LE lists are constructed by the simulated CONGEST
//!    protocol (the `Õ(min{s,√n})` dominant cost); ancestor chains and
//!    per-path next-hop pointers are derived. When `s > √n` the tree is
//!    truncated at the `√n` highest-rank nodes `S` and every node learns
//!    its closest `S`-member instead ([`dsf_embed::TruncatedChain`]).
//! 2. **Selection stage** ([`selection`]) — phases `i = 0..=L`: label
//!    custody climbs the ancestor chains; `(λ, dest)` requests are routed
//!    along the installed shortest paths with *first-message-per-`(λ,dest)`*
//!    filtering and per-edge round-robin multiplexing — the paper's key
//!    pipelining idea giving `Õ(s̃ + k)` per destination set. Every
//!    traversed edge joins `F`.
//! 3. **Second stage** ([`reduced`], `s > √n` only) — the `F`-reduced
//!    instance (Definition 5.1) is formed by clustering terminals around
//!    `S` in `(V, F)` and merging labels via the helper graph `(Λ, E_Λ)`
//!    (Lemma G.12); the reduced instance (≤ `√n` super-terminals) is
//!    solved by the `\[17\]`-substitute coordinator solver and mapped back.
//!
//! The driver repeats stage 1+2 `repetitions` times (the paper uses
//! `c·log n`) and keeps the lightest forest (Markov + amplification
//! argument in the proof of Theorem 5.2).

pub mod reduced;
pub mod selection;

use dsf_congest::{CongestConfig, RoundLedger, SimError};
use dsf_embed::{distributed::le_lists_distributed, Embedding, EmbeddingConfig};
use dsf_graph::{metrics, NodeId, WeightedGraph};
use dsf_steiner::{ForestSolution, Instance};

use crate::primitives::build_bfs_tree;

/// Configuration of the randomized solver.
#[derive(Debug, Clone)]
pub struct RandConfig {
    /// Base seed; repetition `r` uses `seed + r`.
    pub seed: u64,
    /// Number of independent embeddings tried (paper: `c·log n`); the
    /// lightest result is returned.
    pub repetitions: usize,
    /// Truncation override: `None` = automatic (`s > √n`), `Some(b)` =
    /// forced on/off (used by experiments to exercise both paths).
    pub force_truncation: Option<bool>,
    /// Bandwidth override.
    pub bandwidth_bits: Option<usize>,
    /// Edges whose traffic is metered (lower-bound experiments).
    pub metered_cut: Vec<dsf_graph::EdgeId>,
}

impl Default for RandConfig {
    fn default() -> Self {
        RandConfig {
            seed: 1,
            repetitions: 3,
            force_truncation: None,
            bandwidth_bits: None,
            metered_cut: Vec::new(),
        }
    }
}

/// Result of the randomized algorithm.
#[derive(Debug, Clone)]
pub struct RandOutput {
    /// The returned solution (`F` or `F ∪ F'`).
    pub forest: ForestSolution,
    /// Itemized round accounting over all repetitions.
    pub rounds: RoundLedger,
    /// Whether the `s > √n` truncated path ran.
    pub truncated: bool,
    /// Weight of the optimal solution on the chosen virtual tree
    /// (Lemma G.8 upper-bounds the stage-1 weight by this).
    pub tree_opt_weight: u64,
    /// Stage-1 weight of the chosen repetition.
    pub stage1_weight: u64,
}

/// Solves DSF-IC with the randomized algorithm
/// (Theorem 5.2: `O(log n)`-approximate, `Õ(k + min{s,√n} + D)` rounds
/// w.h.p.).
///
/// # Example
///
/// ```
/// use dsf_core::randomized::{solve_randomized, RandConfig};
/// use dsf_graph::{generators, NodeId};
/// use dsf_steiner::InstanceBuilder;
///
/// let g = generators::gnp_connected(16, 0.25, 9, 5);
/// let inst = InstanceBuilder::new(&g)
///     .component(&[NodeId(0), NodeId(11)])
///     .component(&[NodeId(3), NodeId(14)])
///     .build()
///     .unwrap();
/// let cfg = RandConfig { seed: 7, repetitions: 2, ..RandConfig::default() };
/// let out = solve_randomized(&g, &inst, &cfg).unwrap();
/// assert!(inst.is_feasible(&g, &out.forest));
/// // Deterministic per seed: the same config reproduces the run.
/// let again = solve_randomized(&g, &inst, &cfg).unwrap();
/// assert_eq!(out.forest, again.forest);
/// ```
///
/// # Errors
///
/// Propagates CONGEST model violations from the simulator.
pub fn solve_randomized(
    g: &WeightedGraph,
    inst: &Instance,
    cfg: &RandConfig,
) -> Result<RandOutput, SimError> {
    let mut congest = CongestConfig::for_graph(g);
    if let Some(b) = cfg.bandwidth_bits {
        congest.bandwidth_bits = b;
    }
    congest.metered_cut = cfg.metered_cut.iter().copied().collect();
    let mut ledger = RoundLedger::new();
    let minimal = inst.make_minimal();

    if minimal.k() == 0 {
        return Ok(RandOutput {
            forest: ForestSolution::empty(),
            rounds: ledger,
            truncated: false,
            tree_opt_weight: 0,
            stage1_weight: 0,
        });
    }

    // Footnote 2: s can be determined in O(D + min{s,√n}) rounds; we
    // compute it driver-side and charge that bound.
    let s = metrics::shortest_path_diameter(g) as usize;
    let sqrt_n = (g.n() as f64).sqrt().ceil() as usize;
    let truncated = cfg.force_truncation.unwrap_or(s > sqrt_n);
    ledger.charge(
        "determine s and n (footnote 2): O(D + min{s,√n})",
        (metrics::unweighted_diameter(g) as usize + s.min(sqrt_n)) as u64,
    );

    let bfs = build_bfs_tree(g, NodeId(0), &congest)?;
    ledger.record("BFS tree construction", &bfs.metrics);

    let mut best: Option<(ForestSolution, u64, u64, u64)> = None;
    for rep in 0..cfg.repetitions.max(1) {
        let seed = cfg.seed.wrapping_add(rep as u64);
        let emb_cfg = EmbeddingConfig {
            seed,
            truncate: truncated.then_some(sqrt_n),
        };
        let emb = Embedding::build(g, &emb_cfg);

        // Virtual tree construction cost: the LE-list protocol is simulated
        // (the dominant Õ(min{s,√n}) part); path-pointer establishment is
        // charged per [14] (one pipelined downcast per level).
        let (_, le_metrics) = le_lists_distributed(g, &emb.ranks, &congest)?;
        ledger.record(format!("rep {rep}: LE-list construction"), &le_metrics);
        let mut max_hops = 0u64;
        for v in g.nodes() {
            for &c in &emb.chains[v.idx()] {
                if let Some(h) = emb.hops_to(v, c) {
                    max_hops = max_hops.max(h as u64);
                }
            }
        }
        ledger.charge(
            format!("rep {rep}: ancestor path establishment (charged, [14])"),
            max_hops + emb.top_level as u64 + 1,
        );

        let sel = selection::run_selection_stage(g, &emb, &minimal, &bfs, &congest)?;
        ledger.absorb(&format!("rep {rep}: "), sel.ledger);
        // Rank repetitions by what the final cleanup will actually keep
        // (the spanning-forest reduction of the overlapping label paths),
        // not by the raw union weight — a lighter union can reduce worse.
        let w = sel.forest.lightest_spanning_forest(g).weight(g);
        let tree_opt = emb.tree_opt_weight(&minimal);
        // Lemma G.8: stage-1 weight is bounded by the tree optimum (the
        // reduction only removes edges, so the bound carries over).
        debug_assert!(
            w <= tree_opt,
            "stage-1 weight {w} exceeds tree optimum {tree_opt}"
        );
        if best.as_ref().is_none_or(|(_, bw, _, _)| w < *bw) {
            best = Some((sel.forest, w, tree_opt, seed));
        }
    }
    ledger.charge("select lightest repetition: O(D) each", bfs.height() as u64);
    let (stage1, stage1_weight, tree_opt_weight, best_seed) =
        best.expect("at least one repetition");

    let forest = if truncated {
        let emb_cfg = EmbeddingConfig {
            seed: best_seed,
            truncate: Some(sqrt_n),
        };
        // Cluster around the S of the *chosen* repetition's embedding;
        // rebuilding is deterministic given its seed.
        let emb = Embedding::build(g, &emb_cfg);
        let second = reduced::solve_reduced(g, &minimal, &stage1, &emb, &congest, &mut ledger)?;
        stage1.union(&second)
    } else {
        stage1
    }
    // Overlapping per-label tree paths (stage 1) and stage-2 paths closing
    // against stage-1 edges can both create cycles; restore the forest
    // invariant without touching connectivity.
    .lightest_spanning_forest(g);

    Ok(RandOutput {
        forest,
        rounds: ledger,
        truncated,
        tree_opt_weight,
        stage1_weight,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsf_graph::generators;
    use dsf_steiner::{exact, random_instance, InstanceBuilder};

    #[test]
    fn feasible_on_random_instances() {
        for seed in 0..6 {
            let g = generators::gnp_connected(24, 0.2, 10, seed);
            let inst = random_instance(&g, 3, 2, seed + 9);
            let out = solve_randomized(&g, &inst, &RandConfig::default()).unwrap();
            assert!(inst.is_feasible(&g, &out.forest), "seed {seed}");
        }
    }

    #[test]
    fn truncated_path_is_feasible() {
        for seed in 0..4 {
            let g = generators::gnp_connected(30, 0.12, 14, seed + 20);
            let inst = random_instance(&g, 3, 3, seed);
            let cfg = RandConfig {
                force_truncation: Some(true),
                ..RandConfig::default()
            };
            let out = solve_randomized(&g, &inst, &cfg).unwrap();
            assert!(out.truncated);
            assert!(inst.is_feasible(&g, &out.forest), "seed {seed}");
        }
    }

    #[test]
    fn approximation_is_logarithmicish() {
        // Not a proof — a sanity band: with 3 repetitions the ratio to OPT
        // on tiny instances should stay below ~3·ln n.
        let mut worst: f64 = 0.0;
        for seed in 0..8 {
            let g = generators::gnp_connected(16, 0.25, 10, seed + 40);
            let inst = random_instance(&g, 2, 2, seed);
            let out = solve_randomized(&g, &inst, &RandConfig::default()).unwrap();
            let opt = exact::solve(&g, &inst).weight;
            worst = worst.max(out.forest.weight(&g) as f64 / opt as f64);
        }
        let bound = 3.0 * (16f64).ln();
        assert!(worst <= bound, "worst ratio {worst} > {bound}");
    }

    #[test]
    fn stage1_weight_bounded_by_tree_optimum() {
        let g = generators::random_geometric(25, 0.3, 5);
        let inst = random_instance(&g, 2, 3, 5);
        let out = solve_randomized(&g, &inst, &RandConfig::default()).unwrap();
        assert!(out.stage1_weight <= out.tree_opt_weight);
    }

    #[test]
    fn empty_instance() {
        let g = generators::path(4, 1);
        let inst = InstanceBuilder::new(&g).build().unwrap();
        let out = solve_randomized(&g, &inst, &RandConfig::default()).unwrap();
        assert!(out.forest.is_empty());
    }

    #[test]
    fn single_pair_on_path_uses_the_path() {
        let g = generators::path(8, 2);
        let inst = InstanceBuilder::new(&g)
            .component(&[NodeId(0), NodeId(7)])
            .build()
            .unwrap();
        let out = solve_randomized(&g, &inst, &RandConfig::default()).unwrap();
        assert!(inst.is_feasible(&g, &out.forest));
        // The only topology is the path itself.
        assert_eq!(out.forest.weight(&g), 14);
    }
}
