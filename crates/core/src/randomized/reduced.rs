//! The `F`-reduced instance (Definition 5.1) and its second-stage solve —
//! the `s > √n` completion of the randomized algorithm.
//!
//! After stage 1, every terminal is either fully connected to its component
//! in `(V, F)` or lies within `Õ(√n)` hops of an `S`-node *inside*
//! `(V, F)` (Lemma G.9). Terminals cluster around their closest `S`-node in
//! `(V, F)` (sets `T_v`, Corollary G.11); labels whose terminals share a
//! cluster merge via the helper graph `(Λ, E_Λ)` (Lemma G.12); contracting
//! each cluster yields the reduced graph `Ĝ` whose ≤ `√n` super-terminals
//! carry the merged labels.
//!
//! **Substitution (see DESIGN.md):** the paper solves the reduced instance
//! with the spanner machinery of \[17\] in `Õ(√n + D)` rounds. We solve it
//! with the centralized 2-approximate moat grower at a coordinator — a
//! *stronger* approximation (2 ≤ O(log n), so Theorem 5.2's end-to-end
//! ratio is preserved) — and charge the stage at the paper's stated round
//! bound, itemized separately in the ledger.

use std::collections::{HashMap, VecDeque};

use dsf_congest::{CongestConfig, RoundLedger, SimError};
use dsf_embed::Embedding;
use dsf_graph::union_find::UnionFind;
use dsf_graph::{EdgeId, GraphBuilder, NodeId, WeightedGraph};
use dsf_steiner::{moat, ForestSolution, Instance, InstanceBuilder};

/// Assigns every node of `(V, F)` to its closest `S`-node by hop distance
/// (ties: smaller `S`-id), up to `hop_cap` hops — the sets `T_v` of
/// Corollary G.11, extended to all nodes (only terminals are used).
fn cluster_assignment(
    g: &WeightedGraph,
    f: &ForestSolution,
    s_set: &[NodeId],
    hop_cap: usize,
) -> Vec<Option<NodeId>> {
    let n = g.n();
    let mut adj: Vec<Vec<NodeId>> = vec![Vec::new(); n];
    for &e in f.edges() {
        let ed = g.edge(e);
        adj[ed.u.idx()].push(ed.v);
        adj[ed.v.idx()].push(ed.u);
    }
    let mut owner: Vec<Option<NodeId>> = vec![None; n];
    let mut depth = vec![0usize; n];
    let mut q = VecDeque::new();
    // Multi-source BFS; iterating sorted S gives the smaller-id tie-break.
    let mut sorted_s: Vec<NodeId> = s_set.to_vec();
    sorted_s.sort_unstable();
    for &s in &sorted_s {
        owner[s.idx()] = Some(s);
        q.push_back(s);
    }
    while let Some(v) = q.pop_front() {
        if depth[v.idx()] >= hop_cap {
            continue;
        }
        let mut nbs = adj[v.idx()].clone();
        nbs.sort_unstable();
        for u in nbs {
            if owner[u.idx()].is_none() {
                owner[u.idx()] = owner[v.idx()];
                depth[u.idx()] = depth[v.idx()] + 1;
                q.push_back(u);
            }
        }
    }
    owner
}

/// Builds and solves the `F`-reduced instance; returns the inducing edge
/// set `F'` in the original graph.
///
/// # Errors
///
/// Propagates simulator errors (none arise: all stage costs here are
/// charged, as documented).
pub fn solve_reduced(
    g: &WeightedGraph,
    minimal: &Instance,
    stage1: &ForestSolution,
    emb: &Embedding,
    _cfg: &CongestConfig,
    ledger: &mut RoundLedger,
) -> Result<ForestSolution, SimError> {
    let n = g.n();
    let s_set = &emb.s_set;
    assert!(!s_set.is_empty(), "reduced stage requires a truncation");
    let sqrt_n = (n as f64).sqrt().ceil() as u64;
    let log_n = (n.max(2) as f64).log2().ceil() as u64;
    let diameter = dsf_graph::metrics::unweighted_diameter(g) as u64;

    // Corollary G.11: cluster terminals around S inside (V, F).
    let hop_cap = (2 * sqrt_n * log_n) as usize;
    let owner = cluster_assignment(g, stage1, s_set, hop_cap);
    ledger.charge(
        "cluster assignment on (V,F) (Cor. G.11): O(√n log n)",
        2 * sqrt_n * log_n,
    );

    // Helper graph (Λ, E_Λ): labels sharing a cluster merge (Lemma G.12).
    let k = minimal.k();
    let mut label_uf = UnionFind::new(k);
    let mut cluster_label: HashMap<NodeId, usize> = HashMap::new();
    for v in g.nodes() {
        if let (Some(l), Some(c)) = (minimal.label(v), owner[v.idx()]) {
            match cluster_label.get(&c) {
                Some(&first) => {
                    label_uf.union(first, l.idx());
                }
                None => {
                    cluster_label.insert(c, l.idx());
                }
            }
        }
    }
    ledger.charge(
        "helper graph components (Lemma G.12): O(√n + k + D)",
        sqrt_n + k as u64 + diameter,
    );

    // Contract each cluster's terminals: node -> reduced-node id.
    // Reduced ids: one per S-node with assigned terminals, then Vr nodes.
    let mut cluster_id: HashMap<NodeId, u32> = HashMap::new();
    let mut rep: Vec<u32> = vec![u32::MAX; n];
    let mut next = 0u32;
    for v in g.nodes() {
        if minimal.label(v).is_some() {
            if let Some(c) = owner[v.idx()] {
                let id = *cluster_id.entry(c).or_insert_with(|| {
                    let id = next;
                    next += 1;
                    id
                });
                rep[v.idx()] = id;
            }
        }
    }
    for v in g.nodes() {
        if rep[v.idx()] == u32::MAX {
            rep[v.idx()] = next;
            next += 1;
        }
    }
    let reduced_n = next as usize;

    // Reduced edges: minimum weight per pair, remembering the inducing
    // original edge (Definition 5.1's Ŵ).
    let mut best: HashMap<(u32, u32), (u64, EdgeId)> = HashMap::new();
    for (ei, e) in g.edges().iter().enumerate() {
        let (ru, rv) = (rep[e.u.idx()], rep[e.v.idx()]);
        if ru == rv {
            continue;
        }
        let key = (ru.min(rv), ru.max(rv));
        let cand = (e.w, EdgeId(ei as u32));
        match best.get(&key) {
            Some(&(w, _)) if w <= e.w => {}
            _ => {
                best.insert(key, cand);
            }
        }
    }
    let mut rb = GraphBuilder::new(reduced_n);
    let mut reduced_to_orig: HashMap<EdgeId, EdgeId> = HashMap::new();
    let mut keys: Vec<(u32, u32)> = best.keys().copied().collect();
    keys.sort_unstable();
    for key in keys {
        let (w, orig) = best[&key];
        let re = rb
            .add_edge(NodeId(key.0), NodeId(key.1), w)
            .expect("deduplicated reduced edges");
        reduced_to_orig.insert(re, orig);
    }
    let reduced_g = rb.build().expect("contraction preserves connectivity");

    // Reduced terminals: clusters, labeled by their merged label class.
    let mut class_members: HashMap<usize, Vec<NodeId>> = HashMap::new();
    for (&c, &first_label) in &cluster_label {
        let class = label_uf.find(first_label);
        class_members
            .entry(class)
            .or_default()
            .push(NodeId(cluster_id[&c]));
    }
    let mut ib = InstanceBuilder::new(&reduced_g);
    let mut classes: Vec<usize> = class_members.keys().copied().collect();
    classes.sort_unstable();
    for class in classes {
        let mut members = class_members[&class].clone();
        members.sort_unstable();
        members.dedup();
        ib = ib.component(&members);
    }
    let reduced_inst = ib.build().expect("clusters are distinct reduced nodes");

    // Coordinator solve ([17] substitute; approximation factor 2).
    let run = moat::grow(&reduced_g, &reduced_inst);
    ledger.charge(
        "[17]-substitute second stage (charged at paper bound): Õ(√n + D)",
        sqrt_n * log_n + diameter,
    );

    let mapped: Vec<EdgeId> = run
        .forest
        .edges()
        .iter()
        .map(|re| reduced_to_orig[re])
        .collect();
    Ok(ForestSolution::from_edges(mapped))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsf_embed::EmbeddingConfig;
    use dsf_graph::generators;
    use dsf_steiner::random_instance;

    #[test]
    fn cluster_assignment_respects_forest_and_ties() {
        // Path 0-1-2-3-4 with F = all edges; S = {0, 4}.
        let g = generators::path(5, 1);
        let f: ForestSolution = (0..4).map(EdgeId).collect();
        let owner = cluster_assignment(&g, &f, &[NodeId(0), NodeId(4)], 10);
        assert_eq!(owner[1], Some(NodeId(0)));
        assert_eq!(owner[3], Some(NodeId(4)));
        // Equidistant: smaller S id.
        assert_eq!(owner[2], Some(NodeId(0)));
        // Empty F: only S nodes assigned.
        let owner2 = cluster_assignment(&g, &ForestSolution::empty(), &[NodeId(0)], 10);
        assert_eq!(owner2[0], Some(NodeId(0)));
        assert_eq!(owner2[1], None);
    }

    #[test]
    fn hop_cap_limits_assignment() {
        let g = generators::path(6, 1);
        let f: ForestSolution = (0..5).map(EdgeId).collect();
        let owner = cluster_assignment(&g, &f, &[NodeId(0)], 2);
        assert_eq!(owner[2], Some(NodeId(0)));
        assert_eq!(owner[3], None);
    }

    #[test]
    fn reduced_solve_completes_the_solution() {
        for seed in 0..4 {
            let g = generators::gnp_connected(28, 0.15, 10, seed + 11);
            let inst = random_instance(&g, 3, 2, seed);
            let minimal = inst.make_minimal();
            let cfg = CongestConfig::for_graph(&g);
            let bfs = crate::primitives::build_bfs_tree(&g, NodeId(0), &cfg).unwrap();
            let emb = Embedding::build(
                &g,
                &EmbeddingConfig {
                    seed,
                    truncate: Some(6),
                },
            );
            let sel =
                crate::randomized::selection::run_selection_stage(&g, &emb, &minimal, &bfs, &cfg)
                    .unwrap();
            let mut ledger = RoundLedger::new();
            let second = solve_reduced(&g, &minimal, &sel.forest, &emb, &cfg, &mut ledger).unwrap();
            let union = sel.forest.union(&second);
            assert!(inst.is_feasible(&g, &union), "seed {seed}");
            assert!(ledger.charged() > 0);
        }
    }
}
