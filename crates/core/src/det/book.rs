//! Replicated moat bookkeeping: the partition of terminals into moats,
//! label classes and activity, maintained identically by every node from
//! the globally known labels and merge sets.

use dsf_graph::union_find::UnionFind;
use dsf_graph::NodeId;
use dsf_steiner::Instance;

/// Replicated moat bookkeeping: the partition of terminals into moats,
/// label classes, and activity — the state every node maintains from the
/// globally known labels and merge sets.
#[derive(Debug, Clone)]
pub(crate) struct MoatBook {
    pub(crate) moats: UnionFind,
    labels: UnionFind,
    /// Terminals per label-class root.
    total: Vec<usize>,
    /// Activity per moat root.
    act: Vec<bool>,
    /// Original label index per terminal.
    term_label: Vec<usize>,
}

impl MoatBook {
    pub(crate) fn new(minimal: &Instance, terms: &[NodeId]) -> Self {
        let k = minimal.k();
        let mut total = vec![0usize; k];
        let mut term_label = vec![0usize; terms.len()];
        for (i, &t) in terms.iter().enumerate() {
            let l = minimal.label(t).expect("terminal").idx();
            term_label[i] = l;
            total[l] += 1;
        }
        MoatBook {
            moats: UnionFind::new(terms.len()),
            labels: UnionFind::new(k),
            total,
            act: vec![true; terms.len()],
            term_label,
        }
    }

    pub(crate) fn moat_active(&mut self, term: usize) -> bool {
        let r = self.moats.find(term);
        self.act[r]
    }

    pub(crate) fn active_moats(&mut self) -> usize {
        (0..self.act.len())
            .filter(|&i| self.moats.find(i) == i && self.act[i])
            .count()
    }

    /// Applies a merge; returns `(involved_inactive, new_moat_active)`.
    pub(crate) fn apply(&mut self, a: usize, b: usize) -> (bool, bool) {
        let (ra, rb) = (self.moats.find(a), self.moats.find(b));
        assert_ne!(ra, rb, "cycle-closing merge reached bookkeeping");
        let involved_inactive = !self.act[ra] || !self.act[rb];
        let (la, lb) = (
            self.labels.find(self.term_label[a]),
            self.labels.find(self.term_label[b]),
        );
        if la != lb {
            self.labels.union(la, lb);
            let lr = self.labels.find(la);
            self.total[lr] = self.total[la] + self.total[lb];
        }
        let lr = self.labels.find(la);
        self.moats.union(a, b);
        let mr = self.moats.find(a);
        let new_active = self.moats.set_size(mr) != self.total[lr];
        self.act[mr] = new_active;
        (involved_inactive, new_active)
    }
}

impl MoatBook {
    /// Applies a merge with Algorithm 2 semantics (line 33): the merged
    /// moat stays active until the next checkpoint. Returns whether an
    /// inactive moat was involved (a merge-phase boundary, Def. 4.19).
    pub(crate) fn apply_deferred(&mut self, a: usize, b: usize) -> bool {
        let (ra, rb) = (self.moats.find(a), self.moats.find(b));
        assert_ne!(ra, rb, "cycle-closing merge reached bookkeeping");
        let involved_inactive = !self.act[ra] || !self.act[rb];
        let (la, lb) = (
            self.labels.find(self.term_label[a]),
            self.labels.find(self.term_label[b]),
        );
        if la != lb {
            self.labels.union(la, lb);
            let lr = self.labels.find(la);
            self.total[lr] = self.total[la] + self.total[lb];
        }
        self.moats.union(a, b);
        let mr = self.moats.find(a);
        self.act[mr] = true;
        involved_inactive
    }

    /// Re-evaluates every moat's activity (Algorithm 2's checkpoint,
    /// lines 20-25): inactive iff the moat holds its whole label class.
    pub(crate) fn checkpoint_activities(&mut self) {
        let n = self.act.len();
        for i in 0..n {
            if self.moats.find(i) == i {
                let lr = self.labels.find(self.term_label[i]);
                self.act[i] = self.moats.set_size(i) != self.total[lr];
            }
        }
    }
}
