//! The deterministic distributed moat-growing algorithm (Section 4.1).
//!
//! Per merge phase `j` (Definition 4.3) the driver runs:
//!
//! 1. **Terminal decomposition** (Lemma 4.8): a multi-source Bellman–Ford
//!    over the *uncovered* part of the graph, sourced at every node owned
//!    by an active region with key `wd(v,u) − rad(v)` — exactly
//!    `Reg_{j−1}(v) ∪ (Vor_j(v) \ ⋃ B_{i_{j−1}}(w))` ([`voronoi`]).
//! 2. **Candidate proposal** (Definition 4.11): every boundary edge
//!    between distinct regions with an active side proposes the merge time
//!    `μ = gap/2` (both active) or `μ = gap` (one side inactive), where
//!    `gap = off(x) + W(e) + off(y)`.
//! 3. **Filtered collection** (Corollary 4.16): the pipelined upcast of
//!    [`crate::primitives::filtered_upcast`] streams candidates in
//!    ascending `(μ, a, b, e)` order; the root replays moat bookkeeping
//!    and stops at the first *activity-changing* merge — the phase end.
//! 4. **Dissemination**: `F_c^{(j)}` and the phase growth `μ^{(j)}` are
//!    flooded; every node updates radii, capture status and region parent
//!    pointers locally.
//!
//! After the last phase the minimal candidate subset `F_min` is computed
//! locally from the globally known `F_c` and labels (Step 4 of the
//! distributed algorithm in E.1) and realized by marking the region-tree
//! paths plus inducing edges (Step 5, charged `O(s + D)`).

mod book;
mod driver;
pub mod growth;
pub mod voronoi;

pub use driver::{solve_deterministic, DetConfig, DetOutput};
pub use growth::{solve_growth, GrowthConfig, GrowthOutput};
