//! Phase-loop driver of the deterministic algorithm (Theorem 4.17).

use std::collections::HashMap;

use dsf_congest::{CongestConfig, RoundLedger, SimError};
use dsf_graph::dyadic::Dyadic;
use dsf_graph::{EdgeId, GraphBuilder, NodeId, WeightedGraph};
use dsf_steiner::{ForestSolution, Instance, InstanceBuilder};

use crate::primitives::{
    build_bfs_tree, filtered_upcast, flood_items, FloodItem, UpcastCandidate, UpcastMode,
    UpcastRootVerdict,
};

use super::book::MoatBook;
use super::voronoi::{decompose, VorStatus};

/// Configuration of the deterministic solver.
#[derive(Debug, Clone)]
pub struct DetConfig {
    /// Override of the per-edge bandwidth (None: `CongestConfig::for_graph`).
    pub bandwidth_bits: Option<usize>,
    /// Safety bound on merge phases (Lemma 4.4 guarantees `≤ 2k`).
    pub max_phases: usize,
    /// Edges whose traffic is metered (lower-bound experiments).
    pub metered_cut: Vec<EdgeId>,
}

impl Default for DetConfig {
    fn default() -> Self {
        DetConfig {
            bandwidth_bits: None,
            max_phases: 10_000,
            metered_cut: Vec::new(),
        }
    }
}

/// One accepted merge.
#[derive(Debug, Clone)]
pub struct DetMerge {
    /// Terminal of the first moat (smaller node id).
    pub v: NodeId,
    /// Terminal of the second moat.
    pub w: NodeId,
    /// Cumulative growth within the phase at which the moats met.
    pub mu: Dyadic,
    /// Merge phase index (1-based).
    pub phase: usize,
    /// The inducing boundary edge.
    pub edge: EdgeId,
}

/// Result of the deterministic distributed algorithm.
#[derive(Debug, Clone)]
pub struct DetOutput {
    /// The minimal feasible solution (the algorithm's output).
    pub forest: ForestSolution,
    /// The realization of *all* accepted merges (before minimal-subset
    /// selection) — the analogue of Algorithm 1's `F_imax`.
    pub raw: ForestSolution,
    /// Itemized round accounting.
    pub rounds: RoundLedger,
    /// Number of merge phases executed (Lemma 4.4: `≤ 2k`).
    pub phases: usize,
    /// The merge log, in global order.
    pub merges: Vec<DetMerge>,
}

/// Packs an accepted candidate for flooding.
fn pack_candidate(c: &UpcastCandidate) -> FloodItem {
    let payload = ((c.a as u128) << 64) | ((c.b as u128) << 40) | (c.edge.0 as u128);
    FloodItem { payload, bits: 64 }
}

/// Packs the phase growth `μ^{(j)}` (a non-negative dyadic).
fn pack_mu(mu: Dyadic) -> FloodItem {
    let (m, e) = mu.raw();
    assert!(
        (0..(1i128 << 80)).contains(&m) && e < 256,
        "phase growth exceeds encoding"
    );
    FloodItem {
        payload: (1u128 << 120) | ((m as u128) << 8) | e as u128,
        bits: 96,
    }
}

/// Solves DSF-IC with the deterministic distributed algorithm
/// (Theorem 4.17: 2-approximate, `O(ks + t)` rounds).
///
/// # Example
///
/// ```
/// use dsf_core::det::{solve_deterministic, DetConfig};
/// use dsf_graph::{generators, NodeId};
/// use dsf_steiner::InstanceBuilder;
///
/// let g = generators::gnp_connected(16, 0.25, 9, 5);
/// let inst = InstanceBuilder::new(&g)
///     .component(&[NodeId(0), NodeId(11)])
///     .build()
///     .unwrap();
/// let out = solve_deterministic(&g, &inst, &DetConfig::default()).unwrap();
/// assert!(inst.is_feasible(&g, &out.forest));
/// // Fully deterministic: running again reproduces forest and ledger.
/// let again = solve_deterministic(&g, &inst, &DetConfig::default()).unwrap();
/// assert_eq!(out.forest, again.forest);
/// assert_eq!(out.rounds, again.rounds);
/// ```
///
/// # Errors
///
/// Propagates CONGEST model violations from the simulator (none occur for
/// well-formed instances; they indicate bugs, not user errors).
///
/// # Panics
///
/// Panics if internal invariants are violated (e.g. a phase without an
/// activity-changing merge, which Lemma 4.4 rules out).
pub fn solve_deterministic(
    g: &WeightedGraph,
    inst: &Instance,
    cfg: &DetConfig,
) -> Result<DetOutput, SimError> {
    let mut congest = CongestConfig::for_graph(g);
    if let Some(b) = cfg.bandwidth_bits {
        congest.bandwidth_bits = b;
    }
    congest.metered_cut = cfg.metered_cut.iter().copied().collect();
    let mut ledger = RoundLedger::new();

    let minimal = inst.make_minimal();
    let terms = minimal.terminals();
    let tidx: HashMap<NodeId, u32> = terms
        .iter()
        .enumerate()
        .map(|(i, &t)| (t, i as u32))
        .collect();

    if terms.is_empty() {
        return Ok(DetOutput {
            forest: ForestSolution::empty(),
            raw: ForestSolution::empty(),
            rounds: ledger,
            phases: 0,
            merges: Vec::new(),
        });
    }

    // Step 1: BFS tree + global broadcast of (terminal, label).
    let bfs = build_bfs_tree(g, NodeId(0), &congest)?;
    ledger.record("BFS tree construction", &bfs.metrics);
    let label_items: Vec<Vec<FloodItem>> = g
        .nodes()
        .map(|v| match minimal.label(v) {
            Some(l) => vec![FloodItem {
                payload: ((v.0 as u128) << 32) | l.0 as u128,
                bits: 64,
            }],
            None => Vec::new(),
        })
        .collect();
    let lf = flood_items(g, label_items, &congest)?;
    ledger.record("terminal label broadcast (Step 1)", &lf.metrics);

    // Replicated bookkeeping + per-node region state.
    let mut book = MoatBook::new(&minimal, &terms);
    let n = g.n();
    let mut owner: Vec<Option<u32>> = vec![None; n];
    let mut rel: Vec<Dyadic> = vec![Dyadic::ZERO; n];
    let mut parent_ptr: Vec<Option<NodeId>> = vec![None; n];
    for (i, &t) in terms.iter().enumerate() {
        owner[t.idx()] = Some(i as u32);
    }

    let mut merges: Vec<DetMerge> = Vec::new();
    let mut accepted_all: Vec<UpcastCandidate> = Vec::new();
    let mut phase = 0usize;

    while book.active_moats() > 0 {
        phase += 1;
        assert!(
            phase <= cfg.max_phases && phase <= 2 * minimal.k() + 1,
            "phase count exceeds Lemma 4.4 bound"
        );

        // Stage a: terminal decomposition (Lemma 4.8).
        let status: Vec<VorStatus> = g
            .nodes()
            .map(|u| match owner[u.idx()] {
                Some(i) => {
                    if book.moat_active(i as usize) {
                        VorStatus::Source {
                            owner: i,
                            offset: rel[u.idx()],
                        }
                    } else {
                        VorStatus::Blocked
                    }
                }
                None => VorStatus::Free,
            })
            .collect();
        let vor = decompose(g, &status, &congest)?;
        ledger.record(
            format!("phase {phase}: terminal decomposition"),
            &vor.metrics,
        );
        ledger.charge(
            format!("phase {phase}: BF termination detection O(D)"),
            bfs.height() as u64,
        );

        // Combined view of this phase's (owner, offset, active?) per node.
        let view = |u: usize| -> Option<(u32, Dyadic, bool)> {
            match owner[u] {
                Some(i) => {
                    let active = status[u] != VorStatus::Blocked;
                    Some((i, rel[u], active))
                }
                None => vor.tentative[u].map(|(off, i, _)| (i, off, true)),
            }
        };

        // Stage b: candidate proposal over boundary edges (Def. 4.11).
        let mut local: Vec<Vec<UpcastCandidate>> = vec![Vec::new(); n];
        for (ei, e) in g.edges().iter().enumerate() {
            let (u, w) = (e.u.idx(), e.v.idx());
            let (Some((iu, offu, au)), Some((iw, offw, aw))) = (view(u), view(w)) else {
                continue;
            };
            if iu == iw || (!au && !aw) {
                continue;
            }
            let gap = offu + Dyadic::from_weight(e.w) + offw;
            let mu = if au && aw { gap.half() } else { gap };
            let (a, b) = if iu < iw { (iu, iw) } else { (iw, iu) };
            local[u.min(w)].push(UpcastCandidate {
                mu,
                a,
                b,
                edge: EdgeId(ei as u32),
            });
        }
        ledger.charge(format!("phase {phase}: boundary exchange"), 1);

        // Stage c: filtered collection with phase-end detection (Cor 4.16).
        let prior: Vec<u32> = (0..terms.len())
            .map(|i| book.moats.find_const(i) as u32)
            .collect();
        let mut sim = book.clone();
        let verdict = move |c: &UpcastCandidate| {
            let (involved_inactive, new_active) = sim.apply(c.a as usize, c.b as usize);
            if involved_inactive || !new_active {
                UpcastRootVerdict::AcceptAndStop
            } else {
                UpcastRootVerdict::Accept
            }
        };
        let up = filtered_upcast(
            g,
            &bfs.parent,
            &bfs.children,
            local,
            &prior,
            UpcastMode::PhaseDetect(Box::new(verdict)),
            &congest,
        )?;
        ledger.record(
            format!("phase {phase}: filtered merge collection"),
            &up.metrics,
        );
        ledger.charge(
            format!("phase {phase}: collection termination O(D)"),
            bfs.height() as u64,
        );
        assert!(
            up.stopped_early && !up.accepted.is_empty(),
            "every phase ends with an activity-changing merge"
        );
        let mu_phase = up.accepted.last().expect("nonempty").mu;
        debug_assert!(!mu_phase.is_negative(), "negative phase growth");

        // Stage d: flood F_c^{(j)} and μ^{(j)} from the root.
        let mut items: Vec<FloodItem> = up.accepted.iter().map(pack_candidate).collect();
        items.push(pack_mu(mu_phase));
        let mut initial = vec![Vec::new(); n];
        initial[bfs.root.idx()] = items;
        let fl = flood_items(g, initial, &congest)?;
        ledger.record(format!("phase {phase}: broadcast F_c^(j)"), &fl.metrics);

        // Local updates (radii, capture, parents) — act must be read at
        // phase start, i.e. before merges are applied to `book`.
        for u in 0..n {
            match owner[u] {
                Some(_) => {
                    if matches!(status[u], VorStatus::Source { .. }) {
                        rel[u] -= mu_phase;
                    }
                }
                None => {
                    if let Some((off, i, par)) = vor.tentative[u] {
                        if off <= mu_phase {
                            owner[u] = Some(i);
                            rel[u] = off - mu_phase;
                            parent_ptr[u] = Some(par);
                        }
                    }
                }
            }
        }
        // (Terminals are Voronoi sources, so their radii grew in the loop
        // above: rad(v) += μ ⟺ rel(v) −= μ.)

        // Apply merges to the canonical bookkeeping.
        for c in &up.accepted {
            book.apply(c.a as usize, c.b as usize);
            merges.push(DetMerge {
                v: terms[c.a as usize],
                w: terms[c.b as usize],
                mu: c.mu,
                phase,
                edge: c.edge,
            });
            accepted_all.push(*c);
        }
    }

    // Final selection (E.1 Steps 4-6): minimal candidate subset in G_c,
    // computed locally from global knowledge, then realized by marking
    // region-tree paths.
    let mut tb = GraphBuilder::new(terms.len());
    for c in &accepted_all {
        tb.add_edge(NodeId(c.a), NodeId(c.b), 1)
            .expect("accepted merges form a forest");
    }
    let tg = tb.build_unchecked();
    let mut ib = InstanceBuilder::new(&tg);
    for comp in minimal.components() {
        let mapped: Vec<NodeId> = comp.iter().map(|t| NodeId(tidx[t])).collect();
        ib = ib.component(&mapped);
    }
    let inst_t = ib.build().expect("components are disjoint");
    let all_tg: ForestSolution = (0..tg.m() as u32).map(EdgeId).collect();
    let fmin = all_tg.prune_to_minimal(&tg, &inst_t);

    let mut max_hops = 0u64;
    let mut realize = |cands: &[usize]| -> ForestSolution {
        let mut edges: Vec<EdgeId> = Vec::new();
        for &ci in cands {
            let c = &accepted_all[ci];
            edges.push(c.edge);
            let e = g.edge(c.edge);
            for endpoint in [e.u, e.v] {
                let mut cur = endpoint;
                let mut hops = 0u64;
                while let Some(p) = parent_ptr[cur.idx()] {
                    edges.push(g.find_edge(cur, p).expect("parent is a neighbor"));
                    cur = p;
                    hops += 1;
                    assert!(hops <= g.n() as u64, "parent pointer loop");
                }
                max_hops = max_hops.max(hops);
            }
        }
        ForestSolution::from_edges(edges)
    };
    let raw = realize(&(0..accepted_all.len()).collect::<Vec<_>>());
    let forest = realize(&fmin.edges().iter().map(|e| e.idx()).collect::<Vec<_>>());
    ledger.charge(
        "final selection: token marking O(s + D)",
        max_hops + bfs.height() as u64,
    );

    Ok(DetOutput {
        forest,
        raw,
        rounds: ledger,
        phases: phase,
        merges,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsf_graph::generators;
    use dsf_steiner::{exact, moat, random_instance};

    fn check_instance(g: &WeightedGraph, inst: &Instance, tag: &str) -> DetOutput {
        let out = solve_deterministic(g, inst, &DetConfig::default()).unwrap();
        assert!(inst.is_feasible(g, &out.forest), "{tag}: infeasible");
        assert!(out.forest.is_forest(g), "{tag}: cyclic output");
        let central = moat::grow(g, inst);
        assert_eq!(
            out.forest.weight(g),
            central.forest.weight(g),
            "{tag}: weight differs from centralized Algorithm 1"
        );
        // Same merge pair multiset, in the same global order.
        let dist_pairs: Vec<(NodeId, NodeId)> = out.merges.iter().map(|m| (m.v, m.w)).collect();
        let cent_pairs: Vec<(NodeId, NodeId)> = central.merges.iter().map(|m| (m.v, m.w)).collect();
        assert_eq!(dist_pairs, cent_pairs, "{tag}: merge order differs");
        out
    }

    #[test]
    fn matches_centralized_on_small_instances() {
        for seed in 0..8 {
            let g = generators::gnp_connected(16, 0.25, 10, seed);
            let inst = random_instance(&g, 2, 2, seed + 7);
            check_instance(&g, &inst, &format!("seed {seed}"));
        }
    }

    #[test]
    fn matches_centralized_on_geometric_graphs() {
        for seed in 0..4 {
            let g = generators::random_geometric(24, 0.3, seed);
            let inst = random_instance(&g, 3, 3, seed);
            check_instance(&g, &inst, &format!("geo seed {seed}"));
        }
    }

    #[test]
    fn two_approximation_vs_exact() {
        for seed in 0..6 {
            let g = generators::gnp_connected(14, 0.3, 8, seed + 50);
            let inst = random_instance(&g, 3, 2, seed);
            let out = solve_deterministic(&g, &inst, &DetConfig::default()).unwrap();
            let opt = exact::solve(&g, &inst).weight;
            assert!(
                out.forest.weight(&g) <= 2 * opt,
                "seed {seed}: {} > 2·{opt}",
                out.forest.weight(&g)
            );
        }
    }

    #[test]
    fn phase_count_respects_lemma_4_4() {
        for seed in 0..5 {
            let g = generators::gnp_connected(20, 0.2, 12, seed);
            let k = 4;
            let inst = random_instance(&g, k, 2, seed);
            let out = solve_deterministic(&g, &inst, &DetConfig::default()).unwrap();
            assert!(out.phases <= 2 * k, "seed {seed}: {} phases", out.phases);
        }
    }

    #[test]
    fn mst_specialization_is_exact() {
        // k = 1, t = n: the output must be an exact MST (paper Section 1).
        for seed in 0..5 {
            let g = generators::gnp_connected(12, 0.3, 20, seed + 3);
            let all: Vec<NodeId> = g.nodes().collect();
            let inst = InstanceBuilder::new(&g).component(&all).build().unwrap();
            let out = solve_deterministic(&g, &inst, &DetConfig::default()).unwrap();
            let mst = dsf_graph::mst::kruskal(&g);
            assert_eq!(out.forest.weight(&g), mst.weight, "seed {seed}");
        }
    }

    #[test]
    fn empty_and_singleton_instances() {
        let g = generators::path(4, 1);
        let empty = InstanceBuilder::new(&g).build().unwrap();
        let out = solve_deterministic(&g, &empty, &DetConfig::default()).unwrap();
        assert!(out.forest.is_empty());
        assert_eq!(out.phases, 0);

        let single = InstanceBuilder::new(&g)
            .component(&[NodeId(2)])
            .build()
            .unwrap();
        let out = solve_deterministic(&g, &single, &DetConfig::default()).unwrap();
        assert!(out.forest.is_empty());
    }

    #[test]
    fn ledger_itemizes_phases() {
        let g = generators::gnp_connected(15, 0.25, 6, 2);
        let inst = random_instance(&g, 2, 2, 2);
        let out = solve_deterministic(&g, &inst, &DetConfig::default()).unwrap();
        let labels: Vec<&str> = out
            .rounds
            .entries()
            .iter()
            .map(|e| e.label.as_str())
            .collect();
        assert!(labels.iter().any(|l| l.contains("BFS")));
        assert!(labels.iter().any(|l| l.contains("terminal decomposition")));
        assert!(labels
            .iter()
            .any(|l| l.contains("filtered merge collection")));
        assert!(out.rounds.total() > 0);
        assert!(out.rounds.simulated() > 0);
    }
}
