//! The per-phase terminal decomposition: multi-source Bellman–Ford on
//! reduced weights (Lemma 4.8).
//!
//! Sources are all nodes already owned by an *active* region, keyed by
//! their offset `wd(v,u) − rad(v)` (non-positive inside the moat). Nodes
//! owned by inactive regions are frozen walls: they neither update nor
//! forward — growth happens "only into uncovered parts of the graph"
//! (Definition 4.7). Free nodes adopt the lexicographically smallest
//! `(offset, owner, sender)` assignment and re-announce improvements, one
//! coalesced announcement per edge per round, which yields the `O(s)`
//! stabilization of distributed Bellman–Ford.

use dsf_congest::{
    id_bits, run, CongestConfig, Message, NodeCtx, Outbox, Protocol, RunMetrics, SimError,
};
use dsf_graph::dyadic::Dyadic;
use dsf_graph::{NodeId, WeightedGraph};

/// Role of a node entering the decomposition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VorStatus {
    /// Owned by an active region: a Bellman–Ford source.
    Source {
        /// Terminal index of the owner.
        owner: u32,
        /// `wd(owner, u) − rad(owner)` at phase start.
        offset: Dyadic,
    },
    /// Owned by an inactive region: frozen, opaque to the wave.
    Blocked,
    /// Uncovered: competes in the Voronoi decomposition.
    Free,
}

/// A Voronoi announcement.
#[derive(Debug, Clone, Copy)]
pub struct VorMsg {
    owner: u32,
    offset: Dyadic,
}

impl Message for VorMsg {
    fn encoded_bits(&self) -> usize {
        id_bits(self.owner as usize + 1) + self.offset.encoded_bits()
    }
}

#[derive(Debug)]
struct VorNode {
    status: VorStatus,
    /// Free nodes: current best `(offset, owner, parent)`.
    best: Option<(Dyadic, u32, NodeId)>,
    /// Latest unsent announcement per neighbor (coalesced).
    pending: Vec<Option<VorMsg>>,
}

impl VorNode {
    fn announce(&mut self, ctx: &NodeCtx, msg: VorMsg, except: Option<NodeId>) {
        for (qi, &(nb, _)) in ctx.neighbors().iter().enumerate() {
            if Some(nb) != except {
                self.pending[qi] = Some(msg);
            }
        }
    }

    fn flush(&mut self, ctx: &NodeCtx, out: &mut Outbox<VorMsg>) {
        for (qi, &(nb, _)) in ctx.neighbors().iter().enumerate() {
            if let Some(msg) = self.pending[qi].take() {
                out.send(nb, msg);
            }
        }
    }
}

impl Protocol for VorNode {
    type Msg = VorMsg;

    fn init(&mut self, ctx: &NodeCtx, out: &mut Outbox<VorMsg>) {
        if let VorStatus::Source { owner, offset } = self.status {
            self.announce(ctx, VorMsg { owner, offset }, None);
        }
        self.flush(ctx, out);
    }

    fn round(&mut self, ctx: &NodeCtx, inbox: &[(NodeId, VorMsg)], out: &mut Outbox<VorMsg>) {
        if self.status == VorStatus::Free {
            for &(from, msg) in inbox {
                let edge = ctx
                    .neighbors()
                    .iter()
                    .find(|&&(nb, _)| nb == from)
                    .map(|&(_, e)| e)
                    .expect("sender is a neighbor");
                let cand = msg.offset + Dyadic::from_weight(ctx.weight(edge));
                let better = match &self.best {
                    None => true,
                    Some((off, owner, parent)) => (cand, msg.owner, from) < (*off, *owner, *parent),
                };
                if better {
                    self.best = Some((cand, msg.owner, from));
                    self.announce(
                        ctx,
                        VorMsg {
                            owner: msg.owner,
                            offset: cand,
                        },
                        Some(from),
                    );
                }
            }
        }
        self.flush(ctx, out);
    }

    fn done(&self) -> bool {
        self.pending.iter().all(Option::is_none)
    }
}

/// Result of the decomposition stage.
#[derive(Debug, Clone)]
pub struct VoronoiOutcome {
    /// Tentative assignment per free node: `(offset, owner, parent)`;
    /// `None` for sources/blocked nodes (their state persists outside) and
    /// for unreachable free nodes (no active region exists).
    pub tentative: Vec<Option<(Dyadic, u32, NodeId)>>,
    /// Simulation metrics.
    pub metrics: RunMetrics,
}

/// Runs the decomposition.
///
/// # Errors
///
/// Propagates simulator errors.
pub fn decompose(
    g: &WeightedGraph,
    status: &[VorStatus],
    cfg: &CongestConfig,
) -> Result<VoronoiOutcome, SimError> {
    assert_eq!(status.len(), g.n());
    let nodes: Vec<VorNode> = g
        .nodes()
        .map(|v| VorNode {
            status: status[v.idx()],
            best: None,
            pending: vec![None; g.degree(v)],
        })
        .collect();
    let res = run(g, nodes, cfg)?;
    Ok(VoronoiOutcome {
        tentative: res.states.iter().map(|s| s.best).collect(),
        metrics: res.metrics,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsf_graph::generators;

    #[test]
    fn free_nodes_adopt_closest_active_source() {
        // Path 0-1-2-3-4, unit weights; sources at both ends with offset 0.
        let g = generators::path(5, 1);
        let mut status = vec![VorStatus::Free; 5];
        status[0] = VorStatus::Source {
            owner: 0,
            offset: Dyadic::ZERO,
        };
        status[4] = VorStatus::Source {
            owner: 1,
            offset: Dyadic::ZERO,
        };
        let out = decompose(&g, &status, &CongestConfig::for_graph(&g)).unwrap();
        let (o1, own1, _) = out.tentative[1].unwrap();
        assert_eq!((o1, own1), (Dyadic::from_int(1), 0));
        let (o3, own3, _) = out.tentative[3].unwrap();
        assert_eq!((o3, own3), (Dyadic::from_int(1), 1));
        // Equidistant node 2: smaller owner index wins.
        let (o2, own2, p2) = out.tentative[2].unwrap();
        assert_eq!((o2, own2, p2), (Dyadic::from_int(2), 0, NodeId(1)));
    }

    #[test]
    fn blocked_nodes_are_opaque() {
        // Path 0-1-2-3-4; source at 0; node 2 blocked: the wave must not
        // pass through, leaving 3 and 4 unassigned.
        let g = generators::path(5, 1);
        let mut status = vec![VorStatus::Free; 5];
        status[0] = VorStatus::Source {
            owner: 0,
            offset: Dyadic::ZERO,
        };
        status[2] = VorStatus::Blocked;
        let out = decompose(&g, &status, &CongestConfig::for_graph(&g)).unwrap();
        assert!(out.tentative[1].is_some());
        assert!(out.tentative[3].is_none());
        assert!(out.tentative[4].is_none());
    }

    #[test]
    fn negative_offsets_model_ball_interiors() {
        // Source nodes with negative offsets (inside the moat) compete
        // normally: node 2 is captured by the deeper moat.
        let g = generators::path(5, 2);
        let mut status = vec![VorStatus::Free; 5];
        status[0] = VorStatus::Source {
            owner: 0,
            offset: Dyadic::from_int(-3),
        };
        status[4] = VorStatus::Source {
            owner: 1,
            offset: Dyadic::ZERO,
        };
        let out = decompose(&g, &status, &CongestConfig::for_graph(&g)).unwrap();
        let (off2, own2, _) = out.tentative[2].unwrap();
        assert_eq!(own2, 0);
        assert_eq!(off2, Dyadic::from_int(1)); // -3 + 2 + 2
    }

    #[test]
    fn stabilizes_within_shortest_path_diameter_rounds() {
        let g = generators::gnp_connected(30, 0.15, 9, 8);
        let s = dsf_graph::metrics::shortest_path_diameter(&g) as u64;
        let mut status = vec![VorStatus::Free; 30];
        status[0] = VorStatus::Source {
            owner: 0,
            offset: Dyadic::ZERO,
        };
        let out = decompose(&g, &status, &CongestConfig::for_graph(&g)).unwrap();
        // One announcement wave per shortest-path hop plus drain slack.
        assert!(
            out.metrics.rounds <= 3 * s + 10,
            "rounds {} vs s {s}",
            out.metrics.rounds
        );
        // Offsets equal true distances.
        let sp = dsf_graph::dijkstra::shortest_paths(&g, NodeId(0));
        for v in 1..30 {
            let (off, _, _) = out.tentative[v].unwrap();
            assert_eq!(off, Dyadic::from_int(sp.dist[v] as i128));
        }
    }
}
