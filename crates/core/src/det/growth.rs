//! The growth-phase variant (Section 4.2): the distributed emulation of
//! **Algorithm 2** (rounded moat radii).
//!
//! Moats change their activity status only at *checkpoints* — radii where
//! the cumulative growth hits the threshold `μ̂`, which then advances by
//! the factor `1 + ε/2` (quantized exactly as the centralized
//! [`dsf_steiner::moat_rounded`], so the two runs are comparable
//! merge-for-merge). Between checkpoints, merge phases end only at merges
//! that involve an inactive moat (Definition 4.19); merged moats stay
//! active (Algorithm 2 line 33).
//!
//! The payoff (Corollary 4.20): the number of *growth phases* is
//! `O(log WD / ε)` (Lemma F.1), so the expensive global activity
//! recomputation — in the paper, the small/large-moat machinery with
//! matchings (Appendix F.1) — happens `O(log n/ε)` times instead of once
//! per component. We reproduce the checkpoint structure at message level
//! and charge each checkpoint's activity recomputation at the paper's
//! `O(k + D)` bound (Lemma 2.4 machinery; see DESIGN.md §3 for the
//! small/large-moat substitution note). Experiment E12 compares the
//! resulting round counts against the plain Theorem-4.17 driver as `t`
//! grows.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use dsf_congest::{CongestConfig, RoundLedger, SimError};
use dsf_graph::dyadic::Dyadic;
use dsf_graph::{EdgeId, NodeId, WeightedGraph};
use dsf_steiner::moat_rounded::next_mu_hat;
use dsf_steiner::{ForestSolution, Instance};

use crate::primitives::{
    build_bfs_tree, filtered_upcast, flood_items, FloodItem, UpcastCandidate, UpcastMode,
    UpcastRootVerdict,
};

use super::book::MoatBook;
use super::voronoi::{decompose, VorStatus};

/// Configuration of the growth-phase solver.
#[derive(Debug, Clone)]
pub struct GrowthConfig {
    /// The `ε` of the `(2+ε)` approximation (a positive dyadic, e.g.
    /// `Dyadic::new(1, 1)` for `ε = 1/2`).
    pub eps: Dyadic,
    /// Bandwidth override.
    pub bandwidth_bits: Option<usize>,
    /// Safety bound on the merge-phase loop.
    pub max_iterations: usize,
}

impl Default for GrowthConfig {
    fn default() -> Self {
        GrowthConfig {
            eps: Dyadic::new(1, 1),
            bandwidth_bits: None,
            max_iterations: 100_000,
        }
    }
}

/// Result of the growth-phase algorithm.
#[derive(Debug, Clone)]
pub struct GrowthOutput {
    /// The minimal feasible solution.
    pub forest: ForestSolution,
    /// Round accounting.
    pub rounds: RoundLedger,
    /// Number of growth phases (checkpoints); Lemma F.1: `O(log WD/ε)`.
    pub growth_phases: usize,
    /// Number of merge phases (Voronoi recomputations).
    pub merge_phases: usize,
    /// Merge log: `(v, w, μ cumulative in its merge phase, merge phase)`.
    pub merges: Vec<(NodeId, NodeId, Dyadic, usize)>,
}

/// Solves DSF-IC with the distributed growth-phase algorithm
/// (Corollary 4.20: `(2+ε)`-approximate).
///
/// # Errors
///
/// Propagates CONGEST model violations from the simulator.
///
/// # Panics
///
/// Panics if `eps` is not positive or internal invariants break.
pub fn solve_growth(
    g: &WeightedGraph,
    inst: &Instance,
    cfg: &GrowthConfig,
) -> Result<GrowthOutput, SimError> {
    assert!(cfg.eps.is_positive(), "epsilon must be positive");
    let mut congest = CongestConfig::for_graph(g);
    if let Some(b) = cfg.bandwidth_bits {
        congest.bandwidth_bits = b;
    }
    let mut ledger = RoundLedger::new();

    let minimal = inst.make_minimal();
    let terms = minimal.terminals();
    if terms.is_empty() {
        return Ok(GrowthOutput {
            forest: ForestSolution::empty(),
            rounds: ledger,
            growth_phases: 0,
            merge_phases: 0,
            merges: Vec::new(),
        });
    }
    let tidx: HashMap<NodeId, u32> = terms
        .iter()
        .enumerate()
        .map(|(i, &t)| (t, i as u32))
        .collect();

    let bfs = build_bfs_tree(g, NodeId(0), &congest)?;
    ledger.record("BFS tree construction", &bfs.metrics);
    let label_items: Vec<Vec<FloodItem>> = g
        .nodes()
        .map(|v| match minimal.label(v) {
            Some(l) => vec![FloodItem {
                payload: ((v.0 as u128) << 32) | l.0 as u128,
                bits: 64,
            }],
            None => Vec::new(),
        })
        .collect();
    let lf = flood_items(g, label_items, &congest)?;
    ledger.record("terminal label broadcast", &lf.metrics);

    let n = g.n();
    let mut book = MoatBook::new(&minimal, &terms);
    let mut owner: Vec<Option<u32>> = vec![None; n];
    let mut rel: Vec<Dyadic> = vec![Dyadic::ZERO; n];
    let mut parent_ptr: Vec<Option<NodeId>> = vec![None; n];
    for (i, &t) in terms.iter().enumerate() {
        owner[t.idx()] = Some(i as u32);
    }

    let mut accepted_all: Vec<UpcastCandidate> = Vec::new();
    let mut merges_log: Vec<(NodeId, NodeId, Dyadic, usize)> = Vec::new();
    let mut mu_hat = Dyadic::ONE;
    let mut elapsed = Dyadic::ZERO;
    let mut growth_phases = 0usize;
    let mut merge_phases = 0usize;

    while book.active_moats() > 0 {
        merge_phases += 1;
        assert!(
            merge_phases <= cfg.max_iterations,
            "merge-phase loop exceeded safety bound"
        );
        let remaining = mu_hat - elapsed;
        debug_assert!(!remaining.is_negative());

        // Terminal decomposition (identical to the Theorem 4.17 driver).
        let status: Vec<VorStatus> = g
            .nodes()
            .map(|u| match owner[u.idx()] {
                Some(i) => {
                    if book.moat_active(i as usize) {
                        VorStatus::Source {
                            owner: i,
                            offset: rel[u.idx()],
                        }
                    } else {
                        VorStatus::Blocked
                    }
                }
                None => VorStatus::Free,
            })
            .collect();
        let vor = decompose(g, &status, &congest)?;
        ledger.record(
            format!("merge phase {merge_phases}: terminal decomposition"),
            &vor.metrics,
        );
        ledger.charge(
            format!("merge phase {merge_phases}: BF termination O(D)"),
            bfs.height() as u64,
        );

        let view = |u: usize| -> Option<(u32, Dyadic, bool)> {
            match owner[u] {
                Some(i) => Some((i, rel[u], status[u] != VorStatus::Blocked)),
                None => vor.tentative[u].map(|(off, i, _)| (i, off, true)),
            }
        };
        let mut local: Vec<Vec<UpcastCandidate>> = vec![Vec::new(); n];
        for (ei, e) in g.edges().iter().enumerate() {
            let (u, w) = (e.u.idx(), e.v.idx());
            let (Some((iu, offu, au)), Some((iw, offw, aw))) = (view(u), view(w)) else {
                continue;
            };
            if iu == iw || (!au && !aw) {
                continue;
            }
            let gap = offu + Dyadic::from_weight(e.w) + offw;
            let mu = if au && aw { gap.half() } else { gap };
            let (a, b) = if iu < iw { (iu, iw) } else { (iw, iu) };
            local[u.min(w)].push(UpcastCandidate {
                mu,
                a,
                b,
                edge: EdgeId(ei as u32),
            });
        }
        ledger.charge(format!("merge phase {merge_phases}: boundary exchange"), 1);

        // Collection: stop *before* any candidate beyond the checkpoint
        // (Algorithm 2 line 16) and *at* any merge involving an inactive
        // moat (Definition 4.19).
        let prior: Vec<u32> = (0..terms.len())
            .map(|i| book.moats.find_const(i) as u32)
            .collect();
        let mut sim = book.clone();
        // `Arc<AtomicBool>` rather than `Rc<Cell<_>>`: the closure is
        // owned by a protocol node, and protocol nodes must be `Send` so
        // the sharded executor may run them on worker threads.
        let hit_checkpoint = Arc::new(AtomicBool::new(false));
        let hit_flag = hit_checkpoint.clone();
        let verdict = move |c: &UpcastCandidate| {
            // Algorithm 2 line 16 merges only while elapsed + μ < μ̂
            // *strictly*; equality belongs to the checkpoint.
            if c.mu >= remaining {
                hit_flag.store(true, Ordering::Relaxed);
                return UpcastRootVerdict::StopBefore;
            }
            let involved_inactive = sim.apply_deferred(c.a as usize, c.b as usize);
            if involved_inactive {
                UpcastRootVerdict::AcceptAndStop
            } else {
                UpcastRootVerdict::Accept
            }
        };
        let up = filtered_upcast(
            g,
            &bfs.parent,
            &bfs.children,
            local,
            &prior,
            UpcastMode::PhaseDetect(Box::new(verdict)),
            &congest,
        )?;
        ledger.record(
            format!("merge phase {merge_phases}: filtered merge collection"),
            &up.metrics,
        );
        ledger.charge(
            format!("merge phase {merge_phases}: collection termination O(D)"),
            bfs.height() as u64,
        );
        // A drained stream without a stop also means "no merge before the
        // checkpoint" (e.g. a lone active moat with no candidates left).
        let checkpoint = hit_checkpoint.load(Ordering::Relaxed) || !up.stopped_early;
        let mu_step = if checkpoint {
            remaining
        } else {
            up.accepted.last().expect("stopped at a merge").mu
        };
        if std::env::var("DSF_DEBUG").is_ok() {
            eprintln!(
                "phase {merge_phases}: mu_hat={mu_hat} elapsed={elapsed} remaining={remaining} checkpoint={checkpoint} mu_step={mu_step} accepted={:?}",
                up.accepted.iter().map(|c| (c.a, c.b, format!("{}", c.mu))).collect::<Vec<_>>()
            );
        }

        // Broadcast F_c^{(j)} and μ (root-computed).
        let mut items: Vec<FloodItem> = up
            .accepted
            .iter()
            .map(|c| FloodItem {
                payload: ((c.a as u128) << 64) | ((c.b as u128) << 40) | (c.edge.0 as u128),
                bits: 64,
            })
            .collect();
        let (m, e) = mu_step.raw();
        assert!((0..(1i128 << 80)).contains(&m) && e < 256);
        items.push(FloodItem {
            payload: (1u128 << 120) | ((m as u128) << 8) | e as u128,
            bits: 96,
        });
        let mut initial = vec![Vec::new(); n];
        initial[bfs.root.idx()] = items;
        let fl = flood_items(g, initial, &congest)?;
        ledger.record(
            format!("merge phase {merge_phases}: broadcast F_c^(j)"),
            &fl.metrics,
        );

        // Local updates using activity at phase start.
        for u in 0..n {
            match owner[u] {
                Some(_) => {
                    if matches!(status[u], VorStatus::Source { .. }) {
                        rel[u] -= mu_step;
                    }
                }
                None => {
                    if let Some((off, i, par)) = vor.tentative[u] {
                        if off <= mu_step {
                            owner[u] = Some(i);
                            rel[u] = off - mu_step;
                            parent_ptr[u] = Some(par);
                        }
                    }
                }
            }
        }
        for c in &up.accepted {
            book.apply_deferred(c.a as usize, c.b as usize);
            merges_log.push((terms[c.a as usize], terms[c.b as usize], c.mu, merge_phases));
            accepted_all.push(*c);
        }
        elapsed += mu_step;

        if checkpoint {
            growth_phases += 1;
            book.checkpoint_activities();
            mu_hat = next_mu_hat(mu_hat, cfg.eps);
            // Activity recomputation is global information exchange; the
            // paper performs it with the Lemma 2.4 machinery (small moats
            // communicate internally, large moats over the BFS tree) in
            // O(k + D); see DESIGN.md for the small/large-moat note.
            ledger.charge(
                format!("checkpoint {growth_phases}: activity recomputation O(k + D)"),
                (minimal.k() + 2 * bfs.height() as usize) as u64,
            );
        }
    }

    // Final selection: identical to the Theorem 4.17 driver.
    let mut tb = dsf_graph::GraphBuilder::new(terms.len());
    for c in &accepted_all {
        tb.add_edge(NodeId(c.a), NodeId(c.b), 1)
            .expect("accepted merges form a forest");
    }
    let tg = tb.build_unchecked();
    let mut ib = dsf_steiner::InstanceBuilder::new(&tg);
    for comp in minimal.components() {
        let mapped: Vec<NodeId> = comp.iter().map(|t| NodeId(tidx[t])).collect();
        ib = ib.component(&mapped);
    }
    let inst_t = ib.build().expect("components are disjoint");
    let all_tg: ForestSolution = (0..tg.m() as u32).map(EdgeId).collect();
    let fmin = all_tg.prune_to_minimal(&tg, &inst_t);

    let mut max_hops = 0u64;
    let mut edges: Vec<EdgeId> = Vec::new();
    for te in fmin.edges() {
        let c = &accepted_all[te.idx()];
        edges.push(c.edge);
        let e = g.edge(c.edge);
        for endpoint in [e.u, e.v] {
            let mut cur = endpoint;
            let mut hops = 0u64;
            while let Some(p) = parent_ptr[cur.idx()] {
                edges.push(g.find_edge(cur, p).expect("parent is a neighbor"));
                cur = p;
                hops += 1;
                assert!(hops <= g.n() as u64, "parent pointer loop");
            }
            max_hops = max_hops.max(hops);
        }
    }
    ledger.charge(
        "final selection: token marking O(s + D)",
        max_hops + bfs.height() as u64,
    );

    Ok(GrowthOutput {
        forest: ForestSolution::from_edges(edges),
        rounds: ledger,
        growth_phases,
        merge_phases,
        merges: merges_log,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsf_graph::generators;
    use dsf_steiner::{exact, moat_rounded, random_instance, InstanceBuilder};

    #[test]
    fn matches_centralized_algorithm_two_merges() {
        // The *merge sequences* must coincide (Lemma 4.13 transported to
        // Algorithm 2). Exact weight equality is not guaranteed: the paper
        // assumes unique path weights (Section 2), and under shortest-path
        // ties the two implementations may realize a merge with different
        // equal-weight paths whose unions differ. We therefore compare the
        // merge logs exactly and keep the weights within a small tie slack.
        for seed in 0..6 {
            let g = generators::gnp_connected(15, 0.25, 9, seed);
            let inst = random_instance(&g, 2, 2, seed + 21);
            let out = solve_growth(&g, &inst, &GrowthConfig::default()).unwrap();
            assert!(inst.is_feasible(&g, &out.forest), "seed {seed}");
            let central = moat_rounded::grow_rounded(&g, &inst, Dyadic::new(1, 1));
            let dist_pairs: Vec<(NodeId, NodeId)> =
                out.merges.iter().map(|&(v, w, _, _)| (v, w)).collect();
            let cent_pairs: Vec<(NodeId, NodeId)> =
                central.merges.iter().map(|m| (m.v, m.w)).collect();
            assert_eq!(dist_pairs, cent_pairs, "seed {seed}: merge order differs");
            let (dw, cw) = (
                out.forest.weight(&g) as f64,
                central.forest.weight(&g) as f64,
            );
            assert!(
                (dw - cw).abs() <= 0.25 * cw + 2.0,
                "seed {seed}: weights diverge beyond tie slack: {dw} vs {cw}"
            );
        }
    }

    #[test]
    fn two_plus_eps_approximation() {
        for seed in 0..5 {
            let g = generators::gnp_connected(14, 0.3, 8, seed + 60);
            let inst = random_instance(&g, 3, 2, seed);
            for eps in [Dyadic::new(1, 2), Dyadic::from_int(1)] {
                let cfg = GrowthConfig {
                    eps,
                    ..GrowthConfig::default()
                };
                let out = solve_growth(&g, &inst, &cfg).unwrap();
                assert!(inst.is_feasible(&g, &out.forest));
                let opt = exact::solve(&g, &inst).weight as f64;
                assert!(
                    out.forest.weight(&g) as f64 <= (2.0 + eps.to_f64()) * opt + 1e-6,
                    "seed {seed}"
                );
            }
        }
    }

    #[test]
    fn growth_phase_count_matches_centralized() {
        let g = generators::path(30, 40);
        let inst = InstanceBuilder::new(&g)
            .component(&[NodeId(0), NodeId(29)])
            .build()
            .unwrap();
        let out = solve_growth(&g, &inst, &GrowthConfig::default()).unwrap();
        let central = moat_rounded::grow_rounded(&g, &inst, Dyadic::new(1, 1));
        // Same schedule, same instance: phase counts within ±1 (the
        // distributed run may skip the trailing checkpoint).
        let diff = (out.growth_phases as i64 - central.growth_phases as i64).abs();
        assert!(
            diff <= 1,
            "{} vs {}",
            out.growth_phases,
            central.growth_phases
        );
    }

    #[test]
    fn empty_instance() {
        let g = generators::path(3, 1);
        let inst = InstanceBuilder::new(&g).build().unwrap();
        let out = solve_growth(&g, &inst, &GrowthConfig::default()).unwrap();
        assert!(out.forest.is_empty());
        assert_eq!(out.growth_phases, 0);
    }
}
