//! The paper's contribution: distributed Steiner forest construction in the
//! CONGEST model (Lenzen & Patt-Shamir, PODC 2014).
//!
//! * [`det`] — the deterministic moat-growing emulation (Section 4.1,
//!   Theorem 4.17): 2-approximate in `O(ks + t)` rounds, plus the
//!   growth-phase variant of Section 4.2 giving `(2+ε)` with activity
//!   changes confined to `O(log n/ε)` checkpoints.
//! * [`randomized`] — the tree-embedding based algorithm (Section 5,
//!   Theorem 5.2): `O(log n)`-approximate in `Õ(k + min{s,√n} + D)` rounds
//!   w.h.p., with pipelined filtered routing and the `√n` truncation +
//!   F-reduced second stage.
//! * [`transforms`] — the input transformations of Lemmas 2.3 and 2.4.
//! * [`primitives`] — the shared CONGEST building blocks: BFS tree,
//!   flood-set broadcast, and the pipelined filtered upcast of
//!   Lemma 4.14 / Corollary 4.16 (the MST-style "edge elimination"
//!   technique of Garay–Kutten–Peleg).
//!
//! Every stage is executed message-by-message in the [`dsf_congest`]
//! simulator with the `O(log n)`-bit cap enforced; the returned
//! [`dsf_congest::RoundLedger`] itemizes each stage's simulated rounds and
//! the explicitly charged control-flow surcharges.
//!
//! # Invariants
//!
//! * **Determinism** — [`det::solve_deterministic`] is fully
//!   deterministic; [`randomized::solve_randomized`] is deterministic per
//!   [`randomized::RandConfig::seed`]. Repeated seeded runs are
//!   bit-identical in forest, ledger, and metrics, at every executor
//!   worker-thread count (the conformance oracle gates on this).
//! * **Bandwidth** — every message respects the `B(n) = Θ(log n)`-bit
//!   budget; an oversized message is a bug and aborts the run with
//!   [`dsf_congest::SimError::BandwidthExceeded`] rather than degrading
//!   silently.
//! * **Lemma 4.13** — the deterministic solver replays centralized
//!   Algorithm 1 merge-for-merge (differentially tested across the
//!   conformance corpus).
//!
//! # Example
//!
//! ```
//! use dsf_core::det::{solve_deterministic, DetConfig};
//! use dsf_graph::{generators, NodeId};
//! use dsf_steiner::InstanceBuilder;
//!
//! let g = generators::gnp_connected(20, 0.2, 9, 3);
//! let inst = InstanceBuilder::new(&g)
//!     .component(&[NodeId(0), NodeId(13)])
//!     .component(&[NodeId(4), NodeId(17)])
//!     .build()
//!     .unwrap();
//! let out = solve_deterministic(&g, &inst, &DetConfig::default()).unwrap();
//! assert!(inst.is_feasible(&g, &out.forest));
//! println!("weight {}, rounds {}", out.forest.weight(&g), out.rounds.total());
//! ```

pub mod det;
pub mod primitives;
pub mod randomized;
pub mod transforms;

pub use det::{solve_deterministic, DetConfig, DetOutput};
pub use randomized::{solve_randomized, RandConfig, RandOutput};
