//! Distributed input transformations.
//!
//! * [`cr_to_ic`] — Lemma 2.3: converts connection requests (DSF-CR) into
//!   equivalent input components (DSF-IC) in `O(t + D)` rounds: requests
//!   stream up a BFS tree with cycle filtering (a forest on `T` has at most
//!   `t − 1` edges), the surviving forest is broadcast, and every node
//!   locally labels each terminal with the smallest terminal id of its
//!   connectivity class.
//! * [`minimalize`] — Lemma 2.4: drops singleton components in `O(k + D)`
//!   rounds: for each label at most two `(λ, terminal)` witnesses are
//!   forwarded towards the root, which broadcasts the set of labels with
//!   at least two terminals.

use std::collections::{HashMap, HashSet, VecDeque};

use dsf_congest::{
    id_bits, run, CongestConfig, Message, NodeCtx, Outbox, Protocol, RoundLedger, SimError,
};
use dsf_graph::dyadic::Dyadic;
use dsf_graph::union_find::UnionFind;
use dsf_graph::{EdgeId, NodeId, WeightedGraph};
use dsf_steiner::{ConnectionRequests, Instance, InstanceBuilder};

use crate::primitives::{
    build_bfs_tree, filtered_upcast, flood_items, FloodItem, UpcastCandidate, UpcastMode,
};

/// Lemma 2.3: transforms a DSF-CR input into an equivalent DSF-IC instance.
///
/// Returns the instance together with the round ledger
/// (`O(t + D)` total).
///
/// # Errors
///
/// Propagates simulator errors.
pub fn cr_to_ic(
    g: &WeightedGraph,
    cr: &ConnectionRequests,
    cfg: &CongestConfig,
) -> Result<(Instance, RoundLedger), SimError> {
    let mut ledger = RoundLedger::new();
    let terminals = cr.terminals();
    let tidx: HashMap<NodeId, u32> = terminals
        .iter()
        .enumerate()
        .map(|(i, &t)| (t, i as u32))
        .collect();

    let bfs = build_bfs_tree(g, NodeId(0), cfg)?;
    ledger.record("BFS tree construction", &bfs.metrics);

    // Requests as zero-weight candidates over terminal indices; the
    // filtered upcast keeps a spanning forest of the request graph
    // (at most t−1 items survive — the paper's pipelining argument).
    let mut local: Vec<Vec<UpcastCandidate>> = vec![Vec::new(); g.n()];
    let mut synth = 0u32;
    for v in g.nodes() {
        for &w in cr.of(v) {
            let (a, b) = {
                let (ia, ib) = (tidx[&v], tidx[&w]);
                if ia < ib {
                    (ia, ib)
                } else {
                    (ib, ia)
                }
            };
            local[v.idx()].push(UpcastCandidate {
                mu: Dyadic::ZERO,
                a,
                b,
                edge: EdgeId(synth), // synthetic id: only a tiebreaker here
            });
            synth += 1;
        }
    }
    let prior: Vec<u32> = (0..terminals.len() as u32).collect();
    let up = filtered_upcast(
        g,
        &bfs.parent,
        &bfs.children,
        local,
        &prior,
        UpcastMode::DrainAll,
        cfg,
    )?;
    ledger.record("request forest convergecast (≤ t−1 items)", &up.metrics);
    ledger.charge("convergecast termination O(D)", bfs.height() as u64);

    // Broadcast the surviving forest.
    let items: Vec<FloodItem> = up
        .accepted
        .iter()
        .map(|c| FloodItem {
            payload: ((c.a as u128) << 32) | c.b as u128,
            bits: 2 * id_bits(g.n()).max(16) as u16,
        })
        .collect();
    let mut initial = vec![Vec::new(); g.n()];
    initial[bfs.root.idx()] = items;
    let fl = flood_items(g, initial, cfg)?;
    ledger.record("request forest broadcast", &fl.metrics);

    // Local labeling: connectivity classes of the request forest, labeled
    // by smallest terminal id.
    let mut uf = UnionFind::new(terminals.len());
    for c in &up.accepted {
        uf.union(c.a as usize, c.b as usize);
    }
    let mut groups: HashMap<usize, Vec<NodeId>> = HashMap::new();
    for (i, &t) in terminals.iter().enumerate() {
        groups.entry(uf.find(i)).or_default().push(t);
    }
    let mut keys: Vec<usize> = groups.keys().copied().collect();
    keys.sort_by_key(|&r| groups[&r][0]);
    let mut b = InstanceBuilder::new(g);
    for key in keys {
        b = b.component(&groups[&key]);
    }
    let inst = b.build().expect("request classes are disjoint");
    Ok((inst, ledger))
}

/// A `(label, witness-or-many)` report flowing towards the root.
#[derive(Debug, Clone, Copy)]
enum MinMsg {
    /// A distinct terminal witness for a label.
    Witness { label: u32, term: NodeId },
    /// The label is known to have ≥ 2 terminals.
    Many { label: u32 },
}

impl Message for MinMsg {
    fn encoded_bits(&self) -> usize {
        match self {
            MinMsg::Witness { label, term } => {
                1 + id_bits(*label as usize + 1) + id_bits(term.0 as usize + 1)
            }
            MinMsg::Many { label } => 1 + id_bits(*label as usize + 1),
        }
    }
}

/// Convergecast node: forwards at most two witnesses per label (the second
/// is collapsed into `Many`), so each node sends `O(k)` messages total.
#[derive(Debug)]
struct MinNode {
    parent: Option<NodeId>,
    /// Label -> witnesses seen (capped at 2) and whether `Many` was seen.
    seen: HashMap<u32, (Vec<NodeId>, bool)>,
    outq: VecDeque<MinMsg>,
    /// Labels already escalated to `Many` upstream.
    sent_many: HashSet<u32>,
    /// Witnesses already forwarded.
    sent_wit: HashSet<(u32, NodeId)>,
}

impl MinNode {
    fn ingest(&mut self, msg: MinMsg) {
        match msg {
            MinMsg::Witness { label, term } => {
                let entry = self.seen.entry(label).or_default();
                if entry.1 || entry.0.contains(&term) {
                    return;
                }
                entry.0.push(term);
                if entry.0.len() >= 2 {
                    entry.1 = true;
                    if self.sent_many.insert(label) {
                        self.outq.push_back(MinMsg::Many { label });
                    }
                } else if self.sent_wit.insert((label, term)) {
                    self.outq.push_back(MinMsg::Witness { label, term });
                }
            }
            MinMsg::Many { label } => {
                let entry = self.seen.entry(label).or_default();
                if !entry.1 {
                    entry.1 = true;
                    if self.sent_many.insert(label) {
                        self.outq.push_back(MinMsg::Many { label });
                    }
                }
            }
        }
    }

    fn flush(&mut self, out: &mut Outbox<MinMsg>) {
        if let Some(p) = self.parent {
            if let Some(m) = self.outq.pop_front() {
                out.send(p, m);
            }
        } else {
            self.outq.clear();
        }
    }
}

impl Protocol for MinNode {
    type Msg = MinMsg;

    fn init(&mut self, _ctx: &NodeCtx, out: &mut Outbox<MinMsg>) {
        self.flush(out);
    }

    fn round(&mut self, _ctx: &NodeCtx, inbox: &[(NodeId, MinMsg)], out: &mut Outbox<MinMsg>) {
        for &(_, msg) in inbox {
            self.ingest(msg);
        }
        self.flush(out);
    }

    fn done(&self) -> bool {
        self.outq.is_empty()
    }
}

/// Determines which labels currently have **two or more** distinct holders
/// (Lemma 2.4's convergecast, also Step 3a of the randomized algorithm):
/// `holders[v]` lists the labels node `v` currently holds. Runs the capped
/// convergecast (`≤ 2` witnesses per label) followed by a broadcast of the
/// multi-holder label set; `O(k + D)` rounds, recorded into `ledger`.
///
/// # Errors
///
/// Propagates simulator errors.
pub fn multi_holder_labels(
    g: &WeightedGraph,
    bfs: &crate::primitives::BfsOutcome,
    holders: &[Vec<u32>],
    cfg: &CongestConfig,
    ledger: &mut RoundLedger,
) -> Result<HashSet<u32>, SimError> {
    let nodes: Vec<MinNode> = g
        .nodes()
        .map(|v| {
            let mut node = MinNode {
                parent: bfs.parent[v.idx()],
                seen: HashMap::new(),
                outq: VecDeque::new(),
                sent_many: HashSet::new(),
                sent_wit: HashSet::new(),
            };
            for &l in &holders[v.idx()] {
                node.ingest(MinMsg::Witness { label: l, term: v });
            }
            node
        })
        .collect();
    let res = run(g, nodes, cfg)?;
    ledger.record(
        "label multiplicity convergecast (≤ 2 per label)",
        &res.metrics,
    );
    ledger.charge("convergecast termination O(D)", bfs.height() as u64);

    let root_state = &res.states[bfs.root.idx()];
    let keep: HashSet<u32> = root_state
        .seen
        .iter()
        .filter(|(_, (wits, many))| *many || wits.len() >= 2)
        .map(|(&l, _)| l)
        .collect();
    let items: Vec<FloodItem> = keep
        .iter()
        .map(|&l| FloodItem {
            payload: l as u128,
            bits: id_bits(keep.len().max(2)).max(8) as u16,
        })
        .collect();
    let mut initial = vec![Vec::new(); g.n()];
    initial[bfs.root.idx()] = items;
    let fl = flood_items(g, initial, cfg)?;
    ledger.record("multi-holder label broadcast (k items)", &fl.metrics);
    Ok(keep)
}

/// Lemma 2.4: produces the equivalent minimal instance (singleton
/// components dropped) in `O(k + D)` rounds.
///
/// # Errors
///
/// Propagates simulator errors.
pub fn minimalize(
    g: &WeightedGraph,
    inst: &Instance,
    cfg: &CongestConfig,
) -> Result<(Instance, RoundLedger), SimError> {
    let mut ledger = RoundLedger::new();
    let bfs = build_bfs_tree(g, NodeId(0), cfg)?;
    ledger.record("BFS tree construction", &bfs.metrics);

    let holders: Vec<Vec<u32>> = g
        .nodes()
        .map(|v| inst.label(v).map(|l| vec![l.0]).unwrap_or_default())
        .collect();
    let keep = multi_holder_labels(g, &bfs, &holders, cfg, &mut ledger)?;

    // Locally drop labels outside `keep`.
    let mut b = InstanceBuilder::new(g);
    for (li, comp) in inst.components().iter().enumerate() {
        if keep.contains(&(li as u32)) {
            b = b.component(comp);
        }
    }
    Ok((b.build().expect("subset of a valid instance"), ledger))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsf_graph::generators;

    #[test]
    fn cr_to_ic_matches_centralized_reference() {
        let g = generators::gnp_connected(20, 0.2, 8, 3);
        let mut cr = ConnectionRequests::new(g.n());
        cr.request(NodeId(0), NodeId(5));
        cr.request(NodeId(5), NodeId(9));
        cr.request(NodeId(2), NodeId(11));
        cr.request(NodeId(11), NodeId(2)); // symmetric duplicate
        let cfg = CongestConfig::for_graph(&g);
        let (inst, ledger) = cr_to_ic(&g, &cr, &cfg).unwrap();
        let reference = cr.to_components(&g);
        assert_eq!(inst.k(), reference.k());
        for v in g.nodes() {
            assert_eq!(
                inst.label(v).is_some(),
                reference.label(v).is_some(),
                "terminal status differs at {v}"
            );
        }
        // 0,5,9 transitively share a component.
        assert_eq!(inst.label(NodeId(0)), inst.label(NodeId(9)));
        assert_ne!(inst.label(NodeId(0)), inst.label(NodeId(2)));
        assert!(ledger.total() > 0);
    }

    #[test]
    fn cr_to_ic_rounds_scale_with_t_plus_d() {
        // Many requests on a path: rounds must stay near D + t, not D·t.
        let n = 24;
        let g = generators::path(n, 1);
        let mut cr = ConnectionRequests::new(n);
        for i in 0..10u32 {
            cr.request(NodeId(i), NodeId(i + 10));
        }
        let cfg = CongestConfig::for_graph(&g);
        let (_, ledger) = cr_to_ic(&g, &cr, &cfg).unwrap();
        let bound = 3 * (n as u64 - 1) + 3 * 20 + 20; // ~3D + 3t slack
        assert!(ledger.total() <= bound, "{} > {bound}", ledger.total());
    }

    #[test]
    fn minimalize_drops_singletons() {
        let g = generators::gnp_connected(15, 0.25, 6, 1);
        let inst = InstanceBuilder::new(&g)
            .component(&[NodeId(0)])
            .component(&[NodeId(1), NodeId(2)])
            .component(&[NodeId(5)])
            .component(&[NodeId(7), NodeId(8), NodeId(9)])
            .build()
            .unwrap();
        let cfg = CongestConfig::for_graph(&g);
        let (min, ledger) = minimalize(&g, &inst, &cfg).unwrap();
        assert_eq!(min.k(), 2);
        assert!(min.is_minimal());
        assert_eq!(min.label(NodeId(0)), None);
        assert_eq!(min.label(NodeId(5)), None);
        assert!(min.label(NodeId(8)).is_some());
        assert!(ledger.total() > 0);
    }

    #[test]
    fn minimalize_is_identity_on_minimal_instances() {
        let g = generators::gnp_connected(12, 0.3, 5, 2);
        let inst = dsf_steiner::random_instance(&g, 3, 2, 2);
        let cfg = CongestConfig::for_graph(&g);
        let (min, _) = minimalize(&g, &inst, &cfg).unwrap();
        assert_eq!(min.k(), inst.k());
        assert_eq!(min.t(), inst.t());
    }

    #[test]
    fn minimalize_message_budget_is_k_bound() {
        // Component count small, terminal count large: convergecast
        // messages must scale with k, not t.
        let n = 30;
        let g = generators::path(n, 1);
        let all: Vec<NodeId> = g.nodes().collect();
        let inst = InstanceBuilder::new(&g).component(&all).build().unwrap();
        let cfg = CongestConfig::for_graph(&g);
        let (_, ledger) = minimalize(&g, &inst, &cfg).unwrap();
        // One label: every node forwards at most 2 witnesses + 1 many.
        let conv = &ledger.entries()[1];
        assert!(
            conv.messages <= 3 * n as u64,
            "messages {} not O(k·D)",
            conv.messages
        );
    }
}
