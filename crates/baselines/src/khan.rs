//! The Khan et al. \[14\] baseline: per-component sequential selection on the
//! virtual tree — `Õ(sk)` rounds.
//!
//! Identical embedding substrate as `dsf_core::randomized`, but the routing
//! phases handle one label at a time: component `λ+1` starts climbing only
//! after component `λ` finished, so the `k` components pay the `Õ(s)` tree
//! traversal **sequentially**. The improved algorithm's whole point
//! (Section 5, "Overview of our algorithm") is to multiplex them.

use dsf_congest::{CongestConfig, RoundLedger, SimError};
use dsf_core::primitives::build_bfs_tree;
use dsf_core::randomized::selection::run_selection_stage;
use dsf_embed::{distributed::le_lists_distributed, Embedding, EmbeddingConfig};
use dsf_graph::{NodeId, WeightedGraph};
use dsf_steiner::{ForestSolution, Instance, InstanceBuilder};

/// Configuration of the baseline.
#[derive(Debug, Clone)]
pub struct KhanConfig {
    /// Embedding seed.
    pub seed: u64,
    /// Independent embeddings tried; lightest kept (as in \[14\]).
    pub repetitions: usize,
}

impl Default for KhanConfig {
    fn default() -> Self {
        KhanConfig {
            seed: 1,
            repetitions: 3,
        }
    }
}

/// Result of the baseline run.
#[derive(Debug, Clone)]
pub struct KhanOutput {
    /// The solution.
    pub forest: ForestSolution,
    /// Round accounting (the headline number for E4/E11).
    pub rounds: RoundLedger,
}

/// Runs the \[14\] baseline.
///
/// # Example
///
/// ```
/// use dsf_baselines::khan::{solve_khan, KhanConfig};
/// use dsf_graph::{generators, NodeId};
/// use dsf_steiner::InstanceBuilder;
///
/// let g = generators::gnp_connected(16, 0.25, 9, 5);
/// let inst = InstanceBuilder::new(&g)
///     .component(&[NodeId(0), NodeId(11)])
///     .build()
///     .unwrap();
/// let cfg = KhanConfig { seed: 3, repetitions: 2 };
/// let out = solve_khan(&g, &inst, &cfg).unwrap();
/// assert!(inst.is_feasible(&g, &out.forest));
/// ```
///
/// # Errors
///
/// Propagates simulator errors.
pub fn solve_khan(
    g: &WeightedGraph,
    inst: &Instance,
    cfg: &KhanConfig,
) -> Result<KhanOutput, SimError> {
    let congest = CongestConfig::for_graph(g);
    let mut ledger = RoundLedger::new();
    let minimal = inst.make_minimal();
    if minimal.k() == 0 {
        return Ok(KhanOutput {
            forest: ForestSolution::empty(),
            rounds: ledger,
        });
    }
    let bfs = build_bfs_tree(g, NodeId(0), &congest)?;
    ledger.record("BFS tree construction", &bfs.metrics);

    let mut best: Option<(ForestSolution, u64)> = None;
    for rep in 0..cfg.repetitions.max(1) {
        let seed = cfg.seed.wrapping_add(rep as u64);
        let emb = Embedding::build(g, &EmbeddingConfig::new(seed));
        let (_, le_metrics) = le_lists_distributed(g, &emb.ranks, &congest)?;
        ledger.record(format!("rep {rep}: LE-list construction"), &le_metrics);

        // Sequential per-component selection: each component pays the full
        // phase ladder on its own.
        let mut union = ForestSolution::empty();
        for (ci, comp) in minimal.components().iter().enumerate() {
            let single = InstanceBuilder::new(g)
                .component(comp)
                .build()
                .expect("one valid component");
            let sel = run_selection_stage(g, &emb, &single, &bfs, &congest)?;
            ledger.absorb(&format!("rep {rep}: component {ci}: "), sel.ledger);
            union = union.union(&sel.forest);
        }
        // The per-component trees overlap, so their union can contain
        // cycles. Reduce to a lightest spanning forest of the union (same
        // connectivity, hence still feasible) and prune to a minimal
        // feasible subset, as every other solver does before returning.
        let forest = union
            .lightest_spanning_forest(g)
            .prune_to_minimal(g, &minimal);
        let w = forest.weight(g);
        if best.as_ref().is_none_or(|(_, bw)| w < *bw) {
            best = Some((forest, w));
        }
    }
    let (forest, _) = best.expect("at least one repetition");
    Ok(KhanOutput {
        forest,
        rounds: ledger,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsf_graph::generators;
    use dsf_steiner::random_instance;

    #[test]
    fn baseline_is_feasible() {
        for seed in 0..4 {
            let g = generators::gnp_connected(20, 0.2, 9, seed);
            let inst = random_instance(&g, 3, 2, seed + 3);
            let out = solve_khan(&g, &inst, &KhanConfig::default()).unwrap();
            assert!(inst.is_feasible(&g, &out.forest), "seed {seed}");
        }
    }

    #[test]
    fn rounds_grow_with_k_faster_than_improved() {
        // The headline comparison: on the same graph, the baseline's
        // selection cost scales with k while the improved algorithm
        // multiplexes. k=6 vs k=1 should show a clear multiple.
        let g = generators::gnp_connected(36, 0.12, 10, 5);
        let cfg = KhanConfig {
            seed: 2,
            repetitions: 1,
        };
        let small = random_instance(&g, 1, 2, 1);
        let large = random_instance(&g, 6, 2, 1);
        let r_small = solve_khan(&g, &small, &cfg).unwrap().rounds.total();
        let r_large = solve_khan(&g, &large, &cfg).unwrap().rounds.total();
        assert!(
            r_large as f64 >= 2.5 * r_small as f64,
            "expected sequential scaling: k=1 -> {r_small}, k=6 -> {r_large}"
        );
    }

    #[test]
    fn empty_instance() {
        let g = generators::path(4, 1);
        let inst = dsf_steiner::InstanceBuilder::new(&g).build().unwrap();
        let out = solve_khan(&g, &inst, &KhanConfig::default()).unwrap();
        assert!(out.forest.is_empty());
    }
}
