//! Baseline distributed Steiner forest algorithms the paper compares
//! against.
//!
//! * [`khan`] — Khan et al. \[14\]: the same probabilistic tree embedding,
//!   but the selection stage runs **once per input component** instead of
//!   multiplexing all labels through shared paths. This is the `Õ(sk)`
//!   behaviour the paper improves on ("the straightforward implementation
//!   from \[14\] requires `Õ(sk)` rounds ... due to possible congestion",
//!   Section 5) — experiment E4 plots the crossover.
//! * [`collect`] — the trivial coordinator algorithm: ship every edge to
//!   the BFS root (`O(m + D)` rounds pipelined), solve centrally with the
//!   2-approximate moat grower, broadcast the answer. A sanity baseline:
//!   the differential oracle requires it to reproduce centralized
//!   Algorithm 1 *exactly*.
//!
//! Both baselines run message-by-message in the enforced [`dsf_congest`]
//! simulator (B-bit budget, auditable ledger) and are seeded-
//! deterministic, so the experiment crossovers (E4/E11) are reproducible
//! bit-for-bit.
//!
//! # Example
//!
//! ```
//! use dsf_baselines::solve_collect_at_root;
//! use dsf_graph::{generators, NodeId};
//! use dsf_steiner::InstanceBuilder;
//!
//! let g = generators::gnp_connected(18, 0.25, 9, 4);
//! let inst = InstanceBuilder::new(&g)
//!     .component(&[NodeId(0), NodeId(9)])
//!     .build()
//!     .unwrap();
//! let out = solve_collect_at_root(&g, &inst).unwrap();
//! assert!(inst.is_feasible(&g, &out.forest));
//! // Collecting m edges at the root dominates the round count.
//! assert!(out.rounds.total() > 0);
//! ```

pub mod collect;
pub mod khan;

pub use collect::solve_collect_at_root;
pub use khan::solve_khan;
