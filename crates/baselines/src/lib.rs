//! Baseline distributed Steiner forest algorithms the paper compares
//! against.
//!
//! * [`khan`] — Khan et al. \[14\]: the same probabilistic tree embedding,
//!   but the selection stage runs **once per input component** instead of
//!   multiplexing all labels through shared paths. This is the `Õ(sk)`
//!   behaviour the paper improves on ("the straightforward implementation
//!   from \[14\] requires `Õ(sk)` rounds ... due to possible congestion",
//!   Section 5) — experiment E4 plots the crossover.
//! * [`collect`] — the trivial coordinator algorithm: ship every edge to
//!   the BFS root (`O(m + D)` rounds pipelined), solve centrally with the
//!   2-approximate moat grower, broadcast the answer. A sanity baseline
//!   for both quality and rounds.

pub mod collect;
pub mod khan;

pub use collect::solve_collect_at_root;
pub use khan::solve_khan;
