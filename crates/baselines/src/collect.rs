//! Collect-at-root baseline: gather the whole graph at a coordinator,
//! solve centrally, broadcast the result. `O(m + D)` rounds — the naive
//! yardstick every distributed algorithm must beat on sparse-versus-dense
//! tradeoffs.

use dsf_congest::{id_bits, weight_bits, CongestConfig, RoundLedger, SimError};
use dsf_core::primitives::{build_bfs_tree, flood_items, FloodItem};
use dsf_graph::{NodeId, WeightedGraph};
use dsf_steiner::{moat, ForestSolution, Instance};

/// Result of the collect-at-root baseline.
#[derive(Debug, Clone)]
pub struct CollectOutput {
    /// The (2-approximate) solution computed centrally.
    pub forest: ForestSolution,
    /// Round accounting: dominated by the `O(m + D)` edge gather.
    pub rounds: RoundLedger,
}

/// Runs the baseline: every edge is flooded to all nodes (on the BFS tree
/// this is a pipelined gather+broadcast, `O(m + D)` rounds), then each node
/// locally runs Algorithm 1 — equivalently, the root solves and broadcasts.
///
/// # Example
///
/// ```
/// use dsf_baselines::solve_collect_at_root;
/// use dsf_graph::{generators, NodeId};
/// use dsf_steiner::InstanceBuilder;
///
/// let g = generators::grid(3, 5, 6, 2);
/// let inst = InstanceBuilder::new(&g)
///     .component(&[NodeId(0), NodeId(14)])
///     .build()
///     .unwrap();
/// let out = solve_collect_at_root(&g, &inst).unwrap();
/// assert!(inst.is_feasible(&g, &out.forest));
/// ```
///
/// # Errors
///
/// Propagates simulator errors.
pub fn solve_collect_at_root(
    g: &WeightedGraph,
    inst: &Instance,
) -> Result<CollectOutput, SimError> {
    let congest = CongestConfig::for_graph(g);
    let mut ledger = RoundLedger::new();
    let bfs = build_bfs_tree(g, NodeId(0), &congest)?;
    ledger.record("BFS tree construction", &bfs.metrics);

    // Each node contributes its incident edges (u < v side) and its label.
    let idb = id_bits(g.n());
    let initial: Vec<Vec<FloodItem>> = g
        .nodes()
        .map(|v| {
            let mut items = Vec::new();
            for &(nb, e) in g.neighbors(v) {
                if v < nb {
                    let w = g.weight(e);
                    items.push(FloodItem {
                        payload: ((v.0 as u128) << 96) | ((nb.0 as u128) << 64) | w as u128,
                        bits: (2 * idb + weight_bits(w)) as u16,
                    });
                }
            }
            if let Some(l) = inst.label(v) {
                items.push(FloodItem {
                    payload: (1u128 << 126) | ((v.0 as u128) << 32) | l.0 as u128,
                    bits: (2 * idb) as u16,
                });
            }
            items
        })
        .collect();
    let fl = flood_items(g, initial, &congest)?;
    ledger.record("full graph gather+broadcast (m + t items)", &fl.metrics);

    // All nodes now know the instance; solve locally (no communication).
    let run = moat::grow(g, inst);
    ledger.charge("local centralized solve (no communication)", 0);

    Ok(CollectOutput {
        forest: run.forest,
        rounds: ledger,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsf_graph::generators;
    use dsf_steiner::random_instance;

    #[test]
    fn matches_centralized_exactly() {
        let g = generators::gnp_connected(18, 0.25, 8, 4);
        let inst = random_instance(&g, 3, 2, 4);
        let out = solve_collect_at_root(&g, &inst).unwrap();
        let central = moat::grow(&g, &inst);
        assert_eq!(out.forest, central.forest);
    }

    #[test]
    fn rounds_scale_with_edge_count() {
        // Dense graph: the gather dominates and scales with m.
        let sparse = generators::path(24, 2);
        let dense = generators::complete(24, 9, 1);
        let inst_s = random_instance(&sparse, 2, 2, 1);
        let inst_d = random_instance(&dense, 2, 2, 1);
        let r_sparse = solve_collect_at_root(&sparse, &inst_s)
            .unwrap()
            .rounds
            .total();
        let r_dense = solve_collect_at_root(&dense, &inst_d)
            .unwrap()
            .rounds
            .total();
        assert!(
            r_dense > 3 * r_sparse,
            "dense {r_dense} vs sparse {r_sparse}: gather must scale with m"
        );
    }
}
