//! Property-based tests for the graph substrate: shortest paths against a
//! Floyd–Warshall oracle, metric axioms, parameter orderings, and MST/
//! Steiner-tree relations.

use proptest::prelude::*;

use dsf_graph::union_find::UnionFind;
use dsf_graph::{dijkstra, dreyfus_wagner, generators, metrics, mst, EdgeId, NodeId, Weight, INF};
use std::collections::BTreeSet;

fn floyd_warshall(g: &dsf_graph::WeightedGraph) -> Vec<Vec<Weight>> {
    let n = g.n();
    let mut d = vec![vec![INF; n]; n];
    for (i, row) in d.iter_mut().enumerate() {
        row[i] = 0;
    }
    for e in g.edges() {
        let (u, v) = (e.u.idx(), e.v.idx());
        d[u][v] = d[u][v].min(e.w);
        d[v][u] = d[v][u].min(e.w);
    }
    for k in 0..n {
        for i in 0..n {
            for j in 0..n {
                if d[i][k] + d[k][j] < d[i][j] {
                    d[i][j] = d[i][k] + d[k][j];
                }
            }
        }
    }
    d
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn dijkstra_matches_floyd_warshall(seed in 0u64..500, n in 4usize..20, p in 0.15f64..0.6) {
        let g = generators::gnp_connected(n, p, 15, seed);
        let fw = floyd_warshall(&g);
        for v in g.nodes() {
            let sp = dijkstra::shortest_paths(&g, v);
            prop_assert_eq!(&sp.dist, &fw[v.idx()]);
        }
    }

    #[test]
    fn path_edges_reconstruct_distance(seed in 0u64..500, n in 4usize..20) {
        let g = generators::gnp_connected(n, 0.3, 12, seed);
        let sp = dijkstra::shortest_paths(&g, NodeId(0));
        for v in g.nodes() {
            let edges = sp.path_edges(v);
            let w: Weight = edges.iter().map(|&e| g.weight(e)).sum();
            prop_assert_eq!(w, sp.dist[v.idx()]);
            prop_assert_eq!(edges.len() as u32, sp.hops[v.idx()]);
        }
    }

    #[test]
    fn metric_axioms(seed in 0u64..300, n in 4usize..14) {
        let g = generators::gnp_connected(n, 0.4, 9, seed);
        let ap = dijkstra::all_pairs(&g);
        for i in 0..n {
            prop_assert_eq!(ap[i][i], 0);
            for j in 0..n {
                prop_assert_eq!(ap[i][j], ap[j][i]);
                for k in 0..n {
                    prop_assert!(ap[i][j] <= ap[i][k] + ap[k][j]);
                }
            }
        }
    }

    #[test]
    fn parameter_ordering(seed in 0u64..300, n in 4usize..16) {
        let g = generators::gnp_connected(n, 0.3, 20, seed);
        let p = metrics::parameters(&g);
        // D ≤ s ≤ n-1 and D ≤ WD (weights ≥ 1).
        prop_assert!(p.diameter <= p.shortest_path_diameter);
        prop_assert!((p.shortest_path_diameter as usize) < n);
        prop_assert!(u64::from(p.diameter) <= p.weighted_diameter);
        prop_assert!(metrics::parameters_consistent(&p));
    }

    #[test]
    fn mst_lower_bounds_steiner_tree_supersets(seed in 0u64..200, n in 5usize..14) {
        let g = generators::gnp_connected(n, 0.4, 10, seed);
        let m = mst::kruskal(&g);
        // Steiner tree over a subset of nodes is at most the MST weight.
        let terms: Vec<NodeId> = generators::sample_nodes(n, 3.min(n), seed);
        let st = dreyfus_wagner::steiner_tree(&g, &terms);
        prop_assert!(st.weight <= m.weight);
        // And monotone in the terminal set.
        let fewer = dreyfus_wagner::steiner_tree(&g, &terms[..2]);
        prop_assert!(fewer.weight <= st.weight);
    }

    #[test]
    fn steiner_tree_matches_pair_distance(seed in 0u64..200, n in 4usize..16) {
        let g = generators::gnp_connected(n, 0.3, 12, seed);
        let sp = dijkstra::shortest_paths(&g, NodeId(0));
        let target = NodeId((n - 1) as u32);
        let st = dreyfus_wagner::steiner_tree(&g, &[NodeId(0), target]);
        prop_assert_eq!(st.weight, sp.dist[target.idx()]);
    }

    #[test]
    fn generators_respect_weight_bounds(seed in 0u64..200, n in 2usize..30, w in 1u64..50) {
        let g = generators::gnp_connected(n, 0.2, w, seed);
        prop_assert!(g.edges().iter().all(|e| (1..=w).contains(&e.w)));
        prop_assert!(g.is_connected());
    }

    #[test]
    fn union_find_unions_are_idempotent(seed in 0u64..500, n in 2usize..40, ops in 1usize..60) {
        // Replaying the same union sequence must be a no-op: every union
        // returns false the second time and the partition is unchanged.
        let pairs: Vec<(usize, usize)> = (0..ops)
            .map(|i| {
                let h = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(i as u64);
                ((h % n as u64) as usize, ((h >> 17) % n as u64) as usize)
            })
            .collect();
        let mut uf = UnionFind::new(n);
        let mut merges = 0usize;
        for &(a, b) in &pairs {
            if uf.union(a, b) {
                merges += 1;
            }
        }
        prop_assert_eq!(uf.num_sets(), n - merges);
        let partition_before: Vec<usize> = (0..n).map(|x| uf.find_const(x)).collect();
        for &(a, b) in &pairs {
            prop_assert!(!uf.union(a, b), "replayed union({a}, {b}) merged again");
        }
        let partition_after: Vec<usize> = (0..n).map(|x| uf.find_const(x)).collect();
        prop_assert_eq!(partition_before, partition_after);
        prop_assert_eq!(uf.num_sets(), n - merges);
    }

    #[test]
    fn union_find_find_is_stable(seed in 0u64..500, n in 2usize..40, ops in 0usize..60) {
        // `find` is a projection: find(find(x)) == find(x), repeated calls
        // agree, and the compressing `find` matches `find_const`.
        let mut uf = UnionFind::new(n);
        for i in 0..ops {
            let h = seed.wrapping_mul(0x2545_f491_4f6c_dd1d).wrapping_add(i as u64);
            uf.union((h % n as u64) as usize, ((h >> 23) % n as u64) as usize);
        }
        for x in 0..n {
            let r = uf.find(x);
            prop_assert_eq!(uf.find(r), r, "representative is not a fixed point");
            prop_assert_eq!(uf.find(x), r, "repeated find changed answer");
            prop_assert_eq!(uf.find_const(x), r, "find_const disagrees with find");
            prop_assert!(uf.same(x, r));
        }
        // Set sizes partition the universe.
        let reps: BTreeSet<usize> = (0..n).map(|x| uf.find(x)).collect();
        let total: usize = reps.iter().map(|&r| uf.set_size(r)).sum();
        prop_assert_eq!(total, n);
    }

    #[test]
    fn mst_weight_at_most_collect_at_root_tree(seed in 0u64..300, n in 2usize..25, p in 0.15f64..0.6) {
        // The collect-at-root baseline routes everything over the
        // shortest-path tree of a BFS root; the MST can only be lighter
        // (both are spanning trees, Kruskal is optimal among them).
        let g = generators::gnp_connected(n, p, 15, seed);
        let m = mst::kruskal(&g);
        prop_assert_eq!(m.edges.len(), n - 1);
        let sp = dijkstra::shortest_paths(&g, NodeId(0));
        let spt_edges: BTreeSet<EdgeId> = g
            .nodes()
            .flat_map(|v| sp.path_edges(v))
            .collect();
        let spt_weight: Weight = spt_edges.iter().map(|&e| g.weight(e)).sum();
        prop_assert_eq!(spt_edges.len(), n - 1, "SPT is not a spanning tree");
        prop_assert!(
            m.weight <= spt_weight,
            "MST weight {} exceeds shortest-path-tree baseline {}",
            m.weight,
            spt_weight
        );
        // And the MST really spans: replaying its edges connects everything.
        let mut uf = UnionFind::new(n);
        for &e in &m.edges {
            let ed = g.edge(e);
            uf.union(ed.u.idx(), ed.v.idx());
        }
        prop_assert_eq!(uf.num_sets(), 1);
    }

    #[test]
    fn sample_nodes_is_a_duplicate_free_sorted_subset(
        seed in 0u64..500,
        n in 1usize..60,
        frac in 0usize..=100,
    ) {
        // Any count in 0..=n (both boundaries included) yields exactly
        // `count` distinct, sorted, in-range nodes, deterministically.
        let count = n * frac / 100;
        let s = generators::sample_nodes(n, count, seed);
        prop_assert_eq!(s.len(), count);
        let distinct: BTreeSet<NodeId> = s.iter().copied().collect();
        prop_assert_eq!(distinct.len(), count, "duplicates in sample");
        for w in s.windows(2) {
            prop_assert!(w[0] < w[1], "sample not strictly sorted");
        }
        prop_assert!(s.iter().all(|v| v.idx() < n));
        prop_assert_eq!(s, generators::sample_nodes(n, count, seed));
    }

    #[test]
    fn sample_nodes_boundary_counts(seed in 0u64..500, n in 1usize..60) {
        // count == 0: empty. count == n: the full, sorted node range.
        prop_assert!(generators::sample_nodes(n, 0, seed).is_empty());
        let all = generators::sample_nodes(n, n, seed);
        let expect: Vec<NodeId> = (0..n).map(NodeId::from).collect();
        prop_assert_eq!(all, expect);
    }

    #[test]
    fn tree_with_noise_connectivity_and_edge_count(
        seed in 0u64..300,
        n in 1usize..40,
        noise in 0usize..20,
    ) {
        let g = generators::tree_with_noise(n, noise, 9, seed);
        prop_assert!(g.is_connected());
        // Tree skeleton plus at most `noise` extras, never beyond simple.
        prop_assert!(g.m() >= n.saturating_sub(1));
        prop_assert!(g.m() <= (n.saturating_sub(1) + noise).min(n * n.saturating_sub(1) / 2));
    }

    #[test]
    fn barbell_connectivity(seed in 0u64..300, clique in 1usize..8, bridge in 0usize..10) {
        let g = generators::barbell(clique, bridge, 7, seed);
        prop_assert_eq!(g.n(), 2 * clique + bridge);
        prop_assert!(g.is_connected());
        prop_assert_eq!(g.m(), clique * (clique - 1) + bridge + 1);
    }

    #[test]
    fn clustered_geometric_connectivity(
        seed in 0u64..300,
        clusters in 1usize..6,
        per in 1usize..8,
    ) {
        let g = generators::clustered_geometric(clusters, per, seed);
        prop_assert_eq!(g.n(), clusters * per);
        prop_assert!(g.is_connected());
        let intra = clusters * per * (per - 1) / 2;
        prop_assert_eq!(g.m(), intra + (clusters - 1));
    }

    #[test]
    fn rmat_seeded_determinism(seed in 0u64..300, n in 1usize..200, ef in 1usize..6) {
        let a = generators::rmat(n, ef, 25, seed);
        let b = generators::rmat(n, ef, 25, seed);
        prop_assert_eq!(a.n(), n);
        prop_assert_eq!(a.edges(), b.edges());
        prop_assert!(a.edges().iter().all(|e| (1..=25).contains(&e.w)));
    }

    #[test]
    fn rmat_edge_count_bounds(seed in 0u64..300, n in 1usize..200, ef in 1usize..6) {
        // Simple + connected: at least a spanning tree, at most the sampled
        // pairs plus one stitch per non-root node (and never beyond simple).
        let g = generators::rmat(n, ef, 9, seed);
        prop_assert!(g.m() >= n.saturating_sub(1));
        prop_assert!(g.m() <= (ef * n + n.saturating_sub(1)).min(n * n.saturating_sub(1) / 2));
    }

    #[test]
    fn rmat_connectivity_after_stitching(seed in 0u64..300, n in 1usize..200, ef in 1usize..6) {
        // RMAT sampling alone leaves stray components; the generator's
        // recursive-tree stitch must always repair them.
        let g = generators::rmat(n, ef, 9, seed);
        prop_assert!(g.is_connected());
        // The stitched graph is simple: the sorted adjacency has no
        // duplicate (neighbor, edge) target.
        for v in g.nodes() {
            for w in g.neighbors(v).windows(2) {
                prop_assert!(w[0].0 != w[1].0, "duplicate edge at {:?}", v);
            }
        }
    }

    #[test]
    fn heavy_tailed_connectivity_and_caps(
        seed in 0u64..300,
        n in 1usize..40,
        cap in 1u64..100_000,
    ) {
        let g = generators::heavy_tailed(n, 0.12, 2.0, cap, seed);
        prop_assert!(g.is_connected());
        prop_assert!(g.edges().iter().all(|e| (1..=cap.max(1)).contains(&e.w)));
    }
}
