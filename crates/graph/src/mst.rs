//! Kruskal's minimum spanning tree / forest.
//!
//! Ground truth for experiment E7: on the MST specialization of Steiner
//! Forest (`k = 1`, `t = n`) the paper's deterministic algorithm must return
//! an exact MST (Section 1, "Main Techniques").

use crate::union_find::UnionFind;
use crate::{EdgeId, Weight, WeightedGraph};

/// Result of an MST computation.
#[derive(Debug, Clone)]
pub struct Mst {
    /// Selected edge ids, in selection order.
    pub edges: Vec<EdgeId>,
    /// Total weight of the selected edges.
    pub weight: Weight,
}

/// Kruskal with deterministic `(weight, edge id)` tie-breaking.
///
/// On a connected graph returns a spanning tree; on a disconnected graph a
/// spanning forest.
pub fn kruskal(g: &WeightedGraph) -> Mst {
    let all: Vec<EdgeId> = (0..g.m() as u32).map(EdgeId).collect();
    kruskal_on(g, &all)
}

/// Kruskal restricted to an edge subset: the lightest spanning forest of
/// the subgraph `(V, edges)`, preserving its connected components, with
/// the same deterministic `(weight, edge id)` tie-breaking as [`kruskal`].
pub fn kruskal_on(g: &WeightedGraph, edges: &[EdgeId]) -> Mst {
    let mut order: Vec<EdgeId> = edges.to_vec();
    order.sort_by_key(|&e| (g.weight(e), e));
    let mut uf = UnionFind::new(g.n());
    let mut kept = Vec::with_capacity(g.n().saturating_sub(1));
    let mut weight = 0;
    for e in order {
        let ed = g.edge(e);
        if uf.union(ed.u.idx(), ed.v.idx()) {
            kept.push(e);
            weight += ed.w;
            if kept.len() + 1 == g.n() {
                break;
            }
        }
    }
    Mst {
        edges: kept,
        weight,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{GraphBuilder, NodeId};

    #[test]
    fn mst_of_square_with_diagonal() {
        // Square 0-1-2-3-0 with unit edges and a heavy diagonal.
        let mut b = GraphBuilder::new(4);
        b.add_edge(NodeId(0), NodeId(1), 1).unwrap();
        b.add_edge(NodeId(1), NodeId(2), 2).unwrap();
        b.add_edge(NodeId(2), NodeId(3), 3).unwrap();
        b.add_edge(NodeId(3), NodeId(0), 4).unwrap();
        b.add_edge(NodeId(0), NodeId(2), 10).unwrap();
        let g = b.build().unwrap();
        let mst = kruskal(&g);
        assert_eq!(mst.weight, 6);
        assert_eq!(mst.edges.len(), 3);
    }

    #[test]
    fn kruskal_on_subset_preserves_components() {
        // Square 0-1-2-3-0: restricted to three edges forming a path plus
        // nothing else, the subset MST keeps exactly the acyclic part.
        let mut b = GraphBuilder::new(4);
        b.add_edge(NodeId(0), NodeId(1), 1).unwrap();
        b.add_edge(NodeId(1), NodeId(2), 2).unwrap();
        b.add_edge(NodeId(2), NodeId(3), 3).unwrap();
        b.add_edge(NodeId(3), NodeId(0), 4).unwrap();
        let g = b.build().unwrap();
        // A cycle-closing subset drops only its heaviest edge...
        let all = kruskal_on(&g, &[EdgeId(0), EdgeId(1), EdgeId(2), EdgeId(3)]);
        assert_eq!(all.edges, vec![EdgeId(0), EdgeId(1), EdgeId(2)]);
        // ...and a disconnected subset stays disconnected (no edge 1).
        let split = kruskal_on(&g, &[EdgeId(0), EdgeId(2)]);
        assert_eq!(split.edges, vec![EdgeId(0), EdgeId(2)]);
        assert_eq!(split.weight, 4);
    }

    #[test]
    fn mst_tie_breaking_is_by_edge_id() {
        // Triangle with all weights equal: edges 0 and 1 win.
        let mut b = GraphBuilder::new(3);
        b.add_edge(NodeId(0), NodeId(1), 5).unwrap();
        b.add_edge(NodeId(1), NodeId(2), 5).unwrap();
        b.add_edge(NodeId(2), NodeId(0), 5).unwrap();
        let g = b.build().unwrap();
        let mst = kruskal(&g);
        assert_eq!(mst.edges, vec![EdgeId(0), EdgeId(1)]);
    }

    #[test]
    fn mst_weight_is_invariant_under_edge_relabeling() {
        // Same square built in a different edge order must give same weight.
        let mut b = GraphBuilder::new(4);
        b.add_edge(NodeId(3), NodeId(0), 4).unwrap();
        b.add_edge(NodeId(2), NodeId(3), 3).unwrap();
        b.add_edge(NodeId(0), NodeId(2), 10).unwrap();
        b.add_edge(NodeId(0), NodeId(1), 1).unwrap();
        b.add_edge(NodeId(1), NodeId(2), 2).unwrap();
        let g = b.build().unwrap();
        assert_eq!(kruskal(&g).weight, 6);
    }
}
