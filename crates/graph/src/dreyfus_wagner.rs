//! Exact minimum Steiner tree via the Dreyfus–Wagner dynamic program.
//!
//! This is the ground-truth oracle of the experiment harness: the optimal
//! Steiner *forest* on small instances is obtained (in `dsf-steiner`) by
//! minimizing over partitions of the input components, solving each block
//! with this routine. Runtime `O(3^t · n + 2^t · m log n)` — fine for the
//! `t ≤ 14` instances used to measure approximation ratios.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::{EdgeId, NodeId, Weight, WeightedGraph, INF};

/// An exact minimum Steiner tree.
#[derive(Debug, Clone)]
pub struct SteinerTree {
    /// Optimal weight.
    pub weight: Weight,
    /// Edge ids of an optimal tree (deduplicated, cycle-free).
    pub edges: Vec<EdgeId>,
}

#[derive(Debug, Clone, Copy)]
enum Choice {
    /// `v` is the terminal anchoring a singleton mask.
    Root,
    /// Tree reached `v` over edge `e` from `u`.
    Extend(NodeId, EdgeId),
    /// Two subtrees for `sub` and `mask \ sub` joined at `v`.
    Split(u32),
}

/// Computes an exact minimum Steiner tree for `terminals`.
///
/// Duplicated terminals are ignored. For fewer than two distinct terminals
/// the empty tree (weight 0) is returned.
///
/// # Panics
///
/// Panics if more than 20 distinct terminals are given (the DP table would
/// be infeasibly large) or if a terminal id is out of range.
pub fn steiner_tree(g: &WeightedGraph, terminals: &[NodeId]) -> SteinerTree {
    let mut ts: Vec<NodeId> = terminals.to_vec();
    ts.sort_unstable();
    ts.dedup();
    for &t in &ts {
        assert!(t.idx() < g.n(), "terminal {t} out of range");
    }
    assert!(ts.len() <= 20, "Dreyfus-Wagner limited to 20 terminals");
    if ts.len() <= 1 {
        return SteinerTree {
            weight: 0,
            edges: Vec::new(),
        };
    }

    let n = g.n();
    let tcount = ts.len();
    let full: u32 = (1u32 << tcount) - 1;
    // dp[mask][v] = min weight of a tree spanning terminals(mask) ∪ {v}.
    let mut dp: Vec<Vec<Weight>> = vec![vec![INF; n]; (full + 1) as usize];
    let mut choice: Vec<Vec<Choice>> = vec![vec![Choice::Root; n]; (full + 1) as usize];

    for mask in 1..=full {
        let mi = mask as usize;
        if mask.count_ones() == 1 {
            let i = mask.trailing_zeros() as usize;
            dp[mi][ts[i].idx()] = 0;
        } else {
            // Merge step: split the terminal set at v. Iterating submasks
            // that contain the lowest set bit avoids double counting.
            let low = mask & mask.wrapping_neg();
            let mut sub = (mask - 1) & mask;
            while sub != 0 {
                if sub & low != 0 {
                    let other = mask ^ sub;
                    for v in 0..n {
                        let (a, b) = (dp[sub as usize][v], dp[other as usize][v]);
                        if a < INF && b < INF && a + b < dp[mi][v] {
                            dp[mi][v] = a + b;
                            choice[mi][v] = Choice::Split(sub);
                        }
                    }
                }
                sub = (sub - 1) & mask;
            }
        }
        // Re-root step: Dijkstra over the real edges lets the tree grow a
        // path towards a better attachment point; choices record the edge so
        // reconstruction directly yields graph edges.
        let mut heap: BinaryHeap<Reverse<(Weight, u32)>> = BinaryHeap::new();
        for v in 0..n {
            if dp[mi][v] < INF {
                heap.push(Reverse((dp[mi][v], v as u32)));
            }
        }
        while let Some(Reverse((d, v))) = heap.pop() {
            let v = NodeId(v);
            if d != dp[mi][v.idx()] {
                continue;
            }
            for &(u, e) in g.neighbors(v) {
                let nd = d + g.weight(e);
                if nd < dp[mi][u.idx()] {
                    dp[mi][u.idx()] = nd;
                    choice[mi][u.idx()] = Choice::Extend(v, e);
                    heap.push(Reverse((nd, u.0)));
                }
            }
        }
    }

    let root = ts[0];
    let weight = dp[full as usize][root.idx()];
    assert!(weight < INF, "terminals not connected");

    // Reconstruct edges by unwinding choices.
    let mut edges: Vec<EdgeId> = Vec::new();
    let mut stack = vec![(full, root)];
    while let Some((mask, v)) = stack.pop() {
        match choice[mask as usize][v.idx()] {
            Choice::Root => {}
            Choice::Extend(u, e) => {
                edges.push(e);
                stack.push((mask, u));
            }
            Choice::Split(sub) => {
                stack.push((sub, v));
                stack.push((mask ^ sub, v));
            }
        }
    }
    edges.sort_unstable();
    edges.dedup();
    debug_assert_eq!(g.total_weight(edges.iter()), weight);
    SteinerTree { weight, edges }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::GraphBuilder;

    #[test]
    fn two_terminals_is_shortest_path() {
        // 0 -5- 1 -5- 2 and a direct heavy edge 0-2 (11).
        let mut b = GraphBuilder::new(3);
        b.add_edge(NodeId(0), NodeId(1), 5).unwrap();
        b.add_edge(NodeId(1), NodeId(2), 5).unwrap();
        b.add_edge(NodeId(0), NodeId(2), 11).unwrap();
        let g = b.build().unwrap();
        let st = steiner_tree(&g, &[NodeId(0), NodeId(2)]);
        assert_eq!(st.weight, 10);
        assert_eq!(st.edges.len(), 2);
    }

    #[test]
    fn star_uses_steiner_point() {
        // A star: center 0, leaves 1, 2, 3 at weight 1; leaf-leaf edges of
        // weight 3. Connecting the three leaves through the center costs 3,
        // any leaf-to-leaf solution costs >= 5.
        let mut b = GraphBuilder::new(4);
        b.add_edge(NodeId(0), NodeId(1), 1).unwrap();
        b.add_edge(NodeId(0), NodeId(2), 1).unwrap();
        b.add_edge(NodeId(0), NodeId(3), 1).unwrap();
        b.add_edge(NodeId(1), NodeId(2), 3).unwrap();
        b.add_edge(NodeId(2), NodeId(3), 3).unwrap();
        let g = b.build().unwrap();
        let st = steiner_tree(&g, &[NodeId(1), NodeId(2), NodeId(3)]);
        assert_eq!(st.weight, 3);
        assert_eq!(st.edges.len(), 3);
    }

    #[test]
    fn all_terminals_is_mst() {
        // With every node a terminal, the optimal Steiner tree is an MST.
        let g = generators::gnp_connected(9, 0.5, 8, 42);
        let terminals: Vec<NodeId> = g.nodes().collect();
        let st = steiner_tree(&g, &terminals);
        assert_eq!(st.weight, crate::mst::kruskal(&g).weight);
    }

    #[test]
    fn singleton_and_empty_terminal_sets() {
        let g = generators::gnp_connected(5, 0.8, 4, 1);
        assert_eq!(steiner_tree(&g, &[]).weight, 0);
        assert_eq!(steiner_tree(&g, &[NodeId(3)]).weight, 0);
        assert_eq!(steiner_tree(&g, &[NodeId(3), NodeId(3)]).weight, 0);
    }

    #[test]
    fn tree_output_is_connected_and_spans_terminals() {
        let g = generators::gnp_connected(12, 0.3, 16, 7);
        let ts = [NodeId(0), NodeId(4), NodeId(7), NodeId(11)];
        let st = steiner_tree(&g, &ts);
        let comps = g.components_of(&st.edges);
        for t in &ts[1..] {
            assert_eq!(comps[t.idx()], comps[ts[0].idx()]);
        }
    }
}
