//! Deterministic (seeded) instance generators used by tests, examples and the
//! experiment harness.
//!
//! Each generator guarantees connectivity (the CONGEST network is a single
//! connected graph) and positive integer weights.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::union_find::UnionFind;
use crate::{Edge, GraphBuilder, NodeId, Weight, WeightedGraph};

fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

fn random_weight(rng: &mut StdRng, max_w: Weight) -> Weight {
    rng.gen_range(1..=max_w.max(1))
}

/// Erdős–Rényi `G(n, p)` made connected by first inserting a random
/// recursive tree (each node `i ≥ 1` attaches to a uniform `j < i`).
///
/// Weights are uniform in `1..=max_w`.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn gnp_connected(n: usize, p: f64, max_w: Weight, seed: u64) -> WeightedGraph {
    assert!(n > 0, "need at least one node");
    let mut r = rng(seed);
    let mut b = GraphBuilder::new(n);
    for i in 1..n {
        let j = r.gen_range(0..i);
        let w = random_weight(&mut r, max_w);
        b.add_edge(NodeId::from(i), NodeId::from(j), w).unwrap();
    }
    for i in 0..n {
        for j in (i + 1)..n {
            if !b.has_edge(NodeId::from(i), NodeId::from(j)) && r.gen_bool(p) {
                let w = random_weight(&mut r, max_w);
                b.add_edge(NodeId::from(i), NodeId::from(j), w).unwrap();
            }
        }
    }
    b.build().expect("construction guarantees connectivity")
}

/// Random geometric graph: `n` points in the unit square, edges between
/// points at Euclidean distance `≤ radius`, weight = rounded scaled distance
/// (min 1). Components are stitched together by their closest point pairs,
/// modelling e.g. a wide-area network overlay.
pub fn random_geometric(n: usize, radius: f64, seed: u64) -> WeightedGraph {
    assert!(n > 0, "need at least one node");
    let mut r = rng(seed);
    let pts: Vec<(f64, f64)> = (0..n).map(|_| (r.gen::<f64>(), r.gen::<f64>())).collect();
    let dist = |i: usize, j: usize| -> f64 {
        let (dx, dy) = (pts[i].0 - pts[j].0, pts[i].1 - pts[j].1);
        (dx * dx + dy * dy).sqrt()
    };
    let scaled = |d: f64| -> Weight { ((d * 1000.0).round() as Weight).max(1) };
    let mut b = GraphBuilder::new(n);
    for i in 0..n {
        for j in (i + 1)..n {
            let d = dist(i, j);
            if d <= radius {
                b.add_edge(NodeId::from(i), NodeId::from(j), scaled(d))
                    .unwrap();
            }
        }
    }
    // Stitch components with their cheapest crossing pair until connected.
    loop {
        let g = b.clone().build_unchecked();
        let comps = g.components_of(&(0..g.m() as u32).map(crate::EdgeId).collect::<Vec<_>>());
        let root = comps[0];
        let mut best: Option<(usize, usize, f64)> = None;
        for i in 0..n {
            if comps[i] != root {
                continue;
            }
            for j in 0..n {
                if comps[j] == root {
                    continue;
                }
                let d = dist(i, j);
                if best.is_none_or(|(_, _, bd)| d < bd) {
                    best = Some((i, j, d));
                }
            }
        }
        match best {
            None => break,
            Some((i, j, d)) => {
                b.add_edge(NodeId::from(i), NodeId::from(j), scaled(d))
                    .unwrap();
            }
        }
    }
    b.build().expect("stitching guarantees connectivity")
}

/// A `rows × cols` grid with random weights in `1..=max_w`.
///
/// Grids have tunable `D = rows + cols - 2` and let experiments sweep `k`
/// while holding `s` roughly fixed.
pub fn grid(rows: usize, cols: usize, max_w: Weight, seed: u64) -> WeightedGraph {
    assert!(rows * cols > 0, "grid must be nonempty");
    let mut r = rng(seed);
    let mut b = GraphBuilder::new(rows * cols);
    let id = |rr: usize, cc: usize| NodeId::from(rr * cols + cc);
    for rr in 0..rows {
        for cc in 0..cols {
            if cc + 1 < cols {
                b.add_edge(id(rr, cc), id(rr, cc + 1), random_weight(&mut r, max_w))
                    .unwrap();
            }
            if rr + 1 < rows {
                b.add_edge(id(rr, cc), id(rr + 1, cc), random_weight(&mut r, max_w))
                    .unwrap();
            }
        }
    }
    b.build().expect("grid is connected")
}

/// A path `0 - 1 - ... - n-1` with constant weight `w`; `s = D = n - 1`.
pub fn path(n: usize, w: Weight) -> WeightedGraph {
    assert!(n > 0, "need at least one node");
    let mut b = GraphBuilder::new(n);
    for i in 0..n.saturating_sub(1) {
        b.add_edge(NodeId::from(i), NodeId::from(i + 1), w).unwrap();
    }
    b.build().expect("path is connected")
}

/// A cycle with random weights; useful because `s` can exceed `D` when one
/// edge is heavy (see `lopsided_*` tests).
pub fn ring(n: usize, max_w: Weight, seed: u64) -> WeightedGraph {
    assert!(n >= 3, "ring needs at least 3 nodes");
    let mut r = rng(seed);
    let mut b = GraphBuilder::new(n);
    for i in 0..n {
        b.add_edge(
            NodeId::from(i),
            NodeId::from((i + 1) % n),
            random_weight(&mut r, max_w),
        )
        .unwrap();
    }
    b.build().expect("ring is connected")
}

/// A star with center 0; `D = 2`, `s = 2`.
pub fn star(n: usize, max_w: Weight, seed: u64) -> WeightedGraph {
    assert!(n >= 2, "star needs at least 2 nodes");
    let mut r = rng(seed);
    let mut b = GraphBuilder::new(n);
    for i in 1..n {
        b.add_edge(NodeId(0), NodeId::from(i), random_weight(&mut r, max_w))
            .unwrap();
    }
    b.build().expect("star is connected")
}

/// A caterpillar: a unit-weight spine of `spine` nodes, each carrying `legs`
/// leaf nodes. Sweeping `spine` sweeps `s ≈ D ≈ spine` while keeping degree
/// and `t` options flexible (used by experiment E3's `s`-sweep).
pub fn caterpillar(spine: usize, legs: usize, max_w: Weight, seed: u64) -> WeightedGraph {
    assert!(spine > 0, "need a spine");
    let mut r = rng(seed);
    let n = spine * (legs + 1);
    let mut b = GraphBuilder::new(n);
    for i in 0..spine.saturating_sub(1) {
        b.add_edge(NodeId::from(i), NodeId::from(i + 1), 1).unwrap();
    }
    for i in 0..spine {
        for l in 0..legs {
            let leaf = spine + i * legs + l;
            b.add_edge(
                NodeId::from(i),
                NodeId::from(leaf),
                random_weight(&mut r, max_w),
            )
            .unwrap();
        }
    }
    b.build().expect("caterpillar is connected")
}

/// The complete graph on `n` nodes with random weights.
pub fn complete(n: usize, max_w: Weight, seed: u64) -> WeightedGraph {
    assert!(n > 0, "need at least one node");
    let mut r = rng(seed);
    let mut b = GraphBuilder::new(n);
    for i in 0..n {
        for j in (i + 1)..n {
            b.add_edge(
                NodeId::from(i),
                NodeId::from(j),
                random_weight(&mut r, max_w),
            )
            .unwrap();
        }
    }
    b.build().expect("complete graph is connected")
}

/// A uniform random recursive tree on `n` nodes (each node `i ≥ 1`
/// attaches to a uniform `j < i`) with `noise` extra non-tree edges.
///
/// Trees are the hardest regime for moat growing (every merge path is
/// forced); the noise edges add a few shortcuts so pruning has real
/// choices without destroying the tree-like global structure.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn tree_with_noise(n: usize, noise: usize, max_w: Weight, seed: u64) -> WeightedGraph {
    assert!(n > 0, "need at least one node");
    let mut r = rng(seed);
    let mut b = GraphBuilder::new(n);
    for i in 1..n {
        let j = r.gen_range(0..i);
        let w = random_weight(&mut r, max_w);
        b.add_edge(NodeId::from(i), NodeId::from(j), w).unwrap();
    }
    // Rejection-sample distinct noise edges; bounded attempts keep the
    // generator total even when `noise` exceeds the remaining capacity.
    let mut added = 0;
    let mut attempts = 0;
    while added < noise && attempts < 20 * noise.max(1) && n >= 2 {
        attempts += 1;
        let i = r.gen_range(0..n);
        let j = r.gen_range(0..n);
        if i == j || b.has_edge(NodeId::from(i), NodeId::from(j)) {
            continue;
        }
        let w = random_weight(&mut r, max_w);
        b.add_edge(NodeId::from(i), NodeId::from(j), w).unwrap();
        added += 1;
    }
    b.build().expect("tree skeleton guarantees connectivity")
}

/// A barbell: two complete graphs of `clique` nodes joined by a path of
/// `bridge` intermediate nodes — the expander-bridge family. Demand pairs
/// spanning the bells force long augmenting structures through the narrow
/// bridge, the adversarial regime for dual-fitting analyses.
///
/// Node layout: `0..clique` is the first bell, `clique..clique+bridge` the
/// bridge path, `clique+bridge..2*clique+bridge` the second bell.
///
/// # Panics
///
/// Panics if `clique == 0`.
pub fn barbell(clique: usize, bridge: usize, max_w: Weight, seed: u64) -> WeightedGraph {
    assert!(clique > 0, "bells need at least one node each");
    let n = 2 * clique + bridge;
    let mut r = rng(seed);
    let mut b = GraphBuilder::new(n);
    let bell = |b: &mut GraphBuilder, r: &mut StdRng, base: usize| {
        for i in 0..clique {
            for j in (i + 1)..clique {
                b.add_edge(
                    NodeId::from(base + i),
                    NodeId::from(base + j),
                    random_weight(r, max_w),
                )
                .unwrap();
            }
        }
    };
    bell(&mut b, &mut r, 0);
    bell(&mut b, &mut r, clique + bridge);
    // Chain: last node of bell one, the bridge path, first node of bell two.
    let mut prev = clique - 1;
    for p in 0..bridge {
        let v = clique + p;
        b.add_edge(
            NodeId::from(prev),
            NodeId::from(v),
            random_weight(&mut r, max_w),
        )
        .unwrap();
        prev = v;
    }
    b.add_edge(
        NodeId::from(prev),
        NodeId::from(clique + bridge),
        random_weight(&mut r, max_w),
    )
    .unwrap();
    b.build().expect("bells and bridge form one component")
}

/// Clustered geometric graph: `clusters` groups of `per_cluster` points,
/// each group scattered tightly around a random center in the unit square.
/// Every cluster is internally complete with rounded scaled-distance
/// weights (cheap, local) and consecutive clusters are stitched by their
/// closest crossing point pair (expensive, long) — dense demand clusters
/// with a few long inter-cluster corridors.
///
/// # Panics
///
/// Panics if `clusters == 0` or `per_cluster == 0`.
pub fn clustered_geometric(clusters: usize, per_cluster: usize, seed: u64) -> WeightedGraph {
    assert!(clusters > 0 && per_cluster > 0, "need nonempty clusters");
    let n = clusters * per_cluster;
    let mut r = rng(seed);
    let centers: Vec<(f64, f64)> = (0..clusters)
        .map(|_| (r.gen::<f64>(), r.gen::<f64>()))
        .collect();
    let spread = 0.04;
    let pts: Vec<(f64, f64)> = (0..n)
        .map(|i| {
            let (cx, cy) = centers[i / per_cluster];
            (
                cx + spread * (r.gen::<f64>() - 0.5),
                cy + spread * (r.gen::<f64>() - 0.5),
            )
        })
        .collect();
    let dist = |i: usize, j: usize| -> f64 {
        let (dx, dy) = (pts[i].0 - pts[j].0, pts[i].1 - pts[j].1);
        (dx * dx + dy * dy).sqrt()
    };
    let scaled = |d: f64| -> Weight { ((d * 1000.0).round() as Weight).max(1) };
    let mut b = GraphBuilder::new(n);
    for c in 0..clusters {
        let base = c * per_cluster;
        for i in base..base + per_cluster {
            for j in (i + 1)..base + per_cluster {
                b.add_edge(NodeId::from(i), NodeId::from(j), scaled(dist(i, j)))
                    .unwrap();
            }
        }
    }
    for c in 1..clusters {
        let (prev, cur) = ((c - 1) * per_cluster, c * per_cluster);
        let mut best = (prev, cur, f64::INFINITY);
        for i in prev..prev + per_cluster {
            for j in cur..cur + per_cluster {
                let d = dist(i, j);
                if d < best.2 {
                    best = (i, j, d);
                }
            }
        }
        b.add_edge(NodeId::from(best.0), NodeId::from(best.1), scaled(best.2))
            .unwrap();
    }
    b.build().expect("stitched clusters are connected")
}

/// Connected `G(n, p)` with heavy-tailed (Pareto) weights:
/// `w = min(cap, ⌈(1/(1-u))^alpha⌉)` for uniform `u` — a few enormous
/// edges among many cheap ones, stressing weight-scale robustness
/// (`s` can vastly exceed `D`).
///
/// # Panics
///
/// Panics if `n == 0` or `alpha <= 0`.
pub fn heavy_tailed(n: usize, p: f64, alpha: f64, cap: Weight, seed: u64) -> WeightedGraph {
    assert!(n > 0, "need at least one node");
    assert!(alpha > 0.0, "tail exponent must be positive");
    let mut r = rng(seed);
    let pareto = |r: &mut StdRng| -> Weight {
        let u: f64 = r.gen();
        let w = (1.0 / (1.0 - u).max(1e-12)).powf(alpha).ceil() as Weight;
        w.clamp(1, cap.max(1))
    };
    let mut b = GraphBuilder::new(n);
    for i in 1..n {
        let j = r.gen_range(0..i);
        let w = pareto(&mut r);
        b.add_edge(NodeId::from(i), NodeId::from(j), w).unwrap();
    }
    for i in 0..n {
        for j in (i + 1)..n {
            if !b.has_edge(NodeId::from(i), NodeId::from(j)) && r.gen_bool(p) {
                let w = pareto(&mut r);
                b.add_edge(NodeId::from(i), NodeId::from(j), w).unwrap();
            }
        }
    }
    b.build().expect("construction guarantees connectivity")
}

/// RMAT/Kronecker quadrant probabilities (the Graph500/GAP defaults).
const RMAT_A: f64 = 0.57;
const RMAT_B: f64 = 0.19;
const RMAT_C: f64 = 0.19;

/// GAP-style RMAT (Kronecker) power-law generator.
///
/// Samples `edge_factor * n` directed pairs by recursive quadrant descent
/// over a `2^⌈log₂ n⌉` virtual grid with the Graph500 quadrant
/// probabilities (a=0.57, b=0.19, c=0.19, d=0.05), rejecting self-loops
/// and indices `≥ n` (so non-power-of-two `n`, e.g. 10M, works exactly),
/// then sort-dedupes — no hashing, so peak transient memory stays at one
/// flat pair vector even at tens of millions of edges.
///
/// RMAT leaves stray low-degree components; a final sweep attaches every
/// node not yet reachable from node 0 to a uniform already-connected
/// predecessor (a recursive-tree law, so the stitch preserves the heavy
/// tail and cannot duplicate an existing edge). Weights are uniform in
/// `1..=max_w` assigned after dedup, so the topology for a seed is
/// independent of `max_w`'s draw count.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn rmat(n: usize, edge_factor: usize, max_w: Weight, seed: u64) -> WeightedGraph {
    assert!(n > 0, "need at least one node");
    let mut r = rng(seed);
    // ⌈log₂ n⌉ descent levels; 0 for n == 1 (no samples drawn then).
    let levels = usize::BITS - (n - 1).leading_zeros();
    let target = edge_factor.saturating_mul(n);
    let mut pairs: Vec<(u32, u32)> = Vec::with_capacity(if n >= 2 { target } else { 0 });
    if n >= 2 {
        for _ in 0..target {
            let (u, v) = loop {
                let (mut u, mut v) = (0usize, 0usize);
                for _ in 0..levels {
                    u <<= 1;
                    v <<= 1;
                    let t: f64 = r.gen();
                    if t < RMAT_A {
                        // top-left quadrant: both bits stay 0
                    } else if t < RMAT_A + RMAT_B {
                        v |= 1;
                    } else if t < RMAT_A + RMAT_B + RMAT_C {
                        u |= 1;
                    } else {
                        u |= 1;
                        v |= 1;
                    }
                }
                // Rejection keeps the conditional distribution intact for
                // non-power-of-two `n` and filters the diagonal.
                if u < n && v < n && u != v {
                    break (u, v);
                }
            };
            pairs.push((u.min(v) as u32, u.max(v) as u32));
        }
    }
    pairs.sort_unstable();
    pairs.dedup();
    let mut uf = UnionFind::new(n);
    for &(u, v) in &pairs {
        uf.union(u as usize, v as usize);
    }
    // Sweep in id order: by induction every node `< v` is already in node
    // 0's component when `v` is processed, so attaching `v` to a uniform
    // predecessor both connects it and cannot re-add an existing edge
    // (an existing edge to a predecessor would have connected `v` already).
    for v in 1..n {
        if uf.find(v) != uf.find(0) {
            let j = r.gen_range(0..v);
            uf.union(v, j);
            pairs.push((j as u32, v as u32));
        }
    }
    let edges: Vec<Edge> = pairs
        .into_iter()
        .map(|(u, v)| Edge {
            u: NodeId(u),
            v: NodeId(v),
            w: random_weight(&mut r, max_w),
        })
        .collect();
    WeightedGraph::from_edges(n, edges).expect("stitching guarantees a simple connected graph")
}

/// Graph500 convenience wrapper for [`rmat`]: `n = 2^scale` nodes.
pub fn rmat_scale(scale: u32, edge_factor: usize, max_w: Weight, seed: u64) -> WeightedGraph {
    rmat(1usize << scale, edge_factor, max_w, seed)
}

/// Samples `count` distinct nodes, deterministically per seed.
pub fn sample_nodes(n: usize, count: usize, seed: u64) -> Vec<NodeId> {
    assert!(count <= n, "cannot sample {count} of {n} nodes");
    let mut r = rng(seed);
    let mut ids: Vec<usize> = (0..n).collect();
    // Partial Fisher-Yates.
    for i in 0..count {
        let j = r.gen_range(i..n);
        ids.swap(i, j);
    }
    let mut out: Vec<NodeId> = ids[..count].iter().map(|&i| NodeId::from(i)).collect();
    out.sort_unstable();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics;

    #[test]
    fn gnp_is_connected_and_deterministic() {
        let a = gnp_connected(30, 0.1, 100, 7);
        let b2 = gnp_connected(30, 0.1, 100, 7);
        assert!(a.is_connected());
        assert_eq!(a.m(), b2.m());
        assert_eq!(a.edges(), b2.edges());
        let c = gnp_connected(30, 0.1, 100, 8);
        assert!(a.m() != c.m() || a.edges() != c.edges());
    }

    #[test]
    fn geometric_is_connected() {
        let g = random_geometric(40, 0.18, 3);
        assert!(g.is_connected());
    }

    #[test]
    fn grid_dimensions() {
        let g = grid(3, 4, 5, 0);
        assert_eq!(g.n(), 12);
        assert_eq!(g.m(), 3 * 3 + 2 * 4); // rows*(cols-1) + (rows-1)*cols
        assert_eq!(metrics::unweighted_diameter(&g), 5);
    }

    #[test]
    fn path_parameters() {
        let g = path(6, 3);
        let p = metrics::parameters(&g);
        assert_eq!(p.diameter, 5);
        assert_eq!(p.shortest_path_diameter, 5);
        assert_eq!(p.weighted_diameter, 15);
    }

    #[test]
    fn star_and_ring_shapes() {
        let s = star(8, 4, 1);
        assert_eq!(metrics::unweighted_diameter(&s), 2);
        let r = ring(8, 4, 1);
        assert_eq!(r.m(), 8);
        assert!(r.is_connected());
    }

    #[test]
    fn caterpillar_shape() {
        let g = caterpillar(5, 2, 3, 9);
        assert_eq!(g.n(), 15);
        assert!(g.is_connected());
        assert!(metrics::unweighted_diameter(&g) >= 5);
    }

    #[test]
    fn sample_nodes_distinct_sorted() {
        let s = sample_nodes(20, 7, 11);
        assert_eq!(s.len(), 7);
        for w in s.windows(2) {
            assert!(w[0] < w[1]);
        }
        assert_eq!(s, sample_nodes(20, 7, 11));
    }

    #[test]
    fn complete_graph_edge_count() {
        let g = complete(7, 9, 2);
        assert_eq!(g.m(), 21);
    }

    #[test]
    fn tree_with_noise_shape() {
        let g = tree_with_noise(25, 6, 8, 4);
        assert!(g.is_connected());
        assert_eq!(g.m(), 24 + 6);
        // Determinism and zero-noise degenerates to a tree.
        assert_eq!(g.edges(), tree_with_noise(25, 6, 8, 4).edges());
        let t = tree_with_noise(25, 0, 8, 4);
        assert_eq!(t.m(), 24);
    }

    #[test]
    fn tree_with_noise_caps_at_complete_graph() {
        // More noise than capacity must terminate and stay simple.
        let g = tree_with_noise(5, 100, 3, 1);
        assert!(g.is_connected());
        assert!(g.m() <= 10);
    }

    #[test]
    fn barbell_shape() {
        let g = barbell(5, 3, 7, 2);
        assert_eq!(g.n(), 13);
        // Two K5s (10 edges each) + 4 chain edges.
        assert_eq!(g.m(), 2 * 10 + 4);
        assert!(g.is_connected());
        // Removing any chain edge disconnects the bells: the chain is the
        // only route, so the unweighted diameter spans it.
        assert!(metrics::unweighted_diameter(&g) >= 5);
        // Zero-length bridge still connects the bells directly.
        let tight = barbell(4, 0, 7, 2);
        assert_eq!(tight.n(), 8);
        assert!(tight.is_connected());
    }

    #[test]
    fn clustered_geometric_shape() {
        let g = clustered_geometric(4, 6, 11);
        assert_eq!(g.n(), 24);
        // 4 complete clusters (15 edges each) + 3 stitches.
        assert_eq!(g.m(), 4 * 15 + 3);
        assert!(g.is_connected());
        assert_eq!(g.edges(), clustered_geometric(4, 6, 11).edges());
    }

    #[test]
    fn rmat_is_connected_simple_and_deterministic() {
        let a = rmat(100, 4, 50, 13);
        assert_eq!(a.n(), 100);
        assert!(a.is_connected());
        assert_eq!(a.edges(), rmat(100, 4, 50, 13).edges());
        let b2 = rmat(100, 4, 50, 14);
        assert_ne!(a.edges(), b2.edges());
        // Connected + simple bounds: n-1 ≤ m ≤ samples + stitches.
        assert!(a.m() >= 99);
        assert!(a.m() <= 4 * 100 + 99);
    }

    #[test]
    fn rmat_degrees_are_skewed() {
        // Power-law sanity: the top decile of nodes must hold far more
        // than a proportional share of the edge endpoints.
        let g = rmat(1 << 10, 8, 10, 5);
        let mut degs: Vec<usize> = g.nodes().map(|v| g.degree(v)).collect();
        degs.sort_unstable_by(|a, b| b.cmp(a));
        let top: usize = degs[..degs.len() / 10].iter().sum();
        let total: usize = degs.iter().sum();
        assert!(
            top * 100 >= total * 30,
            "top decile holds {top}/{total} endpoints — not heavy-tailed"
        );
        assert!(degs[0] >= 4 * total / degs.len(), "no hub emerged");
    }

    #[test]
    fn rmat_handles_tiny_and_non_power_of_two_sizes() {
        let one = rmat(1, 4, 5, 0);
        assert_eq!((one.n(), one.m()), (1, 0));
        for n in [2usize, 3, 5, 100, 1000] {
            let g = rmat(n, 2, 9, 42);
            assert_eq!(g.n(), n);
            assert!(g.is_connected(), "n={n} disconnected");
        }
        assert_eq!(rmat_scale(6, 4, 5, 3).n(), 64);
    }

    #[test]
    fn heavy_tailed_is_connected_with_spread_weights() {
        let g = heavy_tailed(40, 0.1, 2.0, 10_000, 6);
        assert!(g.is_connected());
        assert_eq!(g.edges(), heavy_tailed(40, 0.1, 2.0, 10_000, 6).edges());
        let max = g.edges().iter().map(|e| e.w).max().unwrap();
        let min = g.edges().iter().map(|e| e.w).min().unwrap();
        assert!(max <= 10_000);
        assert!(min >= 1);
        // Heavy tail: the extremes differ by a large factor.
        assert!(max >= 8 * min, "weights not heavy-tailed: {min}..{max}");
    }
}
