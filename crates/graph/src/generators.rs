//! Deterministic (seeded) instance generators used by tests, examples and the
//! experiment harness.
//!
//! Each generator guarantees connectivity (the CONGEST network is a single
//! connected graph) and positive integer weights.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{GraphBuilder, NodeId, Weight, WeightedGraph};

fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

fn random_weight(rng: &mut StdRng, max_w: Weight) -> Weight {
    rng.gen_range(1..=max_w.max(1))
}

/// Erdős–Rényi `G(n, p)` made connected by first inserting a random
/// recursive tree (each node `i ≥ 1` attaches to a uniform `j < i`).
///
/// Weights are uniform in `1..=max_w`.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn gnp_connected(n: usize, p: f64, max_w: Weight, seed: u64) -> WeightedGraph {
    assert!(n > 0, "need at least one node");
    let mut r = rng(seed);
    let mut b = GraphBuilder::new(n);
    for i in 1..n {
        let j = r.gen_range(0..i);
        let w = random_weight(&mut r, max_w);
        b.add_edge(NodeId::from(i), NodeId::from(j), w).unwrap();
    }
    for i in 0..n {
        for j in (i + 1)..n {
            if !b.has_edge(NodeId::from(i), NodeId::from(j)) && r.gen_bool(p) {
                let w = random_weight(&mut r, max_w);
                b.add_edge(NodeId::from(i), NodeId::from(j), w).unwrap();
            }
        }
    }
    b.build().expect("construction guarantees connectivity")
}

/// Random geometric graph: `n` points in the unit square, edges between
/// points at Euclidean distance `≤ radius`, weight = rounded scaled distance
/// (min 1). Components are stitched together by their closest point pairs,
/// modelling e.g. a wide-area network overlay.
pub fn random_geometric(n: usize, radius: f64, seed: u64) -> WeightedGraph {
    assert!(n > 0, "need at least one node");
    let mut r = rng(seed);
    let pts: Vec<(f64, f64)> = (0..n).map(|_| (r.gen::<f64>(), r.gen::<f64>())).collect();
    let dist = |i: usize, j: usize| -> f64 {
        let (dx, dy) = (pts[i].0 - pts[j].0, pts[i].1 - pts[j].1);
        (dx * dx + dy * dy).sqrt()
    };
    let scaled = |d: f64| -> Weight { ((d * 1000.0).round() as Weight).max(1) };
    let mut b = GraphBuilder::new(n);
    for i in 0..n {
        for j in (i + 1)..n {
            let d = dist(i, j);
            if d <= radius {
                b.add_edge(NodeId::from(i), NodeId::from(j), scaled(d))
                    .unwrap();
            }
        }
    }
    // Stitch components with their cheapest crossing pair until connected.
    loop {
        let g = b.clone().build_unchecked();
        let comps = g.components_of(&(0..g.m() as u32).map(crate::EdgeId).collect::<Vec<_>>());
        let root = comps[0];
        let mut best: Option<(usize, usize, f64)> = None;
        for i in 0..n {
            if comps[i] != root {
                continue;
            }
            for j in 0..n {
                if comps[j] == root {
                    continue;
                }
                let d = dist(i, j);
                if best.is_none_or(|(_, _, bd)| d < bd) {
                    best = Some((i, j, d));
                }
            }
        }
        match best {
            None => break,
            Some((i, j, d)) => {
                b.add_edge(NodeId::from(i), NodeId::from(j), scaled(d))
                    .unwrap();
            }
        }
    }
    b.build().expect("stitching guarantees connectivity")
}

/// A `rows × cols` grid with random weights in `1..=max_w`.
///
/// Grids have tunable `D = rows + cols - 2` and let experiments sweep `k`
/// while holding `s` roughly fixed.
pub fn grid(rows: usize, cols: usize, max_w: Weight, seed: u64) -> WeightedGraph {
    assert!(rows * cols > 0, "grid must be nonempty");
    let mut r = rng(seed);
    let mut b = GraphBuilder::new(rows * cols);
    let id = |rr: usize, cc: usize| NodeId::from(rr * cols + cc);
    for rr in 0..rows {
        for cc in 0..cols {
            if cc + 1 < cols {
                b.add_edge(id(rr, cc), id(rr, cc + 1), random_weight(&mut r, max_w))
                    .unwrap();
            }
            if rr + 1 < rows {
                b.add_edge(id(rr, cc), id(rr + 1, cc), random_weight(&mut r, max_w))
                    .unwrap();
            }
        }
    }
    b.build().expect("grid is connected")
}

/// A path `0 - 1 - ... - n-1` with constant weight `w`; `s = D = n - 1`.
pub fn path(n: usize, w: Weight) -> WeightedGraph {
    assert!(n > 0, "need at least one node");
    let mut b = GraphBuilder::new(n);
    for i in 0..n.saturating_sub(1) {
        b.add_edge(NodeId::from(i), NodeId::from(i + 1), w).unwrap();
    }
    b.build().expect("path is connected")
}

/// A cycle with random weights; useful because `s` can exceed `D` when one
/// edge is heavy (see `lopsided_*` tests).
pub fn ring(n: usize, max_w: Weight, seed: u64) -> WeightedGraph {
    assert!(n >= 3, "ring needs at least 3 nodes");
    let mut r = rng(seed);
    let mut b = GraphBuilder::new(n);
    for i in 0..n {
        b.add_edge(
            NodeId::from(i),
            NodeId::from((i + 1) % n),
            random_weight(&mut r, max_w),
        )
        .unwrap();
    }
    b.build().expect("ring is connected")
}

/// A star with center 0; `D = 2`, `s = 2`.
pub fn star(n: usize, max_w: Weight, seed: u64) -> WeightedGraph {
    assert!(n >= 2, "star needs at least 2 nodes");
    let mut r = rng(seed);
    let mut b = GraphBuilder::new(n);
    for i in 1..n {
        b.add_edge(NodeId(0), NodeId::from(i), random_weight(&mut r, max_w))
            .unwrap();
    }
    b.build().expect("star is connected")
}

/// A caterpillar: a unit-weight spine of `spine` nodes, each carrying `legs`
/// leaf nodes. Sweeping `spine` sweeps `s ≈ D ≈ spine` while keeping degree
/// and `t` options flexible (used by experiment E3's `s`-sweep).
pub fn caterpillar(spine: usize, legs: usize, max_w: Weight, seed: u64) -> WeightedGraph {
    assert!(spine > 0, "need a spine");
    let mut r = rng(seed);
    let n = spine * (legs + 1);
    let mut b = GraphBuilder::new(n);
    for i in 0..spine.saturating_sub(1) {
        b.add_edge(NodeId::from(i), NodeId::from(i + 1), 1).unwrap();
    }
    for i in 0..spine {
        for l in 0..legs {
            let leaf = spine + i * legs + l;
            b.add_edge(
                NodeId::from(i),
                NodeId::from(leaf),
                random_weight(&mut r, max_w),
            )
            .unwrap();
        }
    }
    b.build().expect("caterpillar is connected")
}

/// The complete graph on `n` nodes with random weights.
pub fn complete(n: usize, max_w: Weight, seed: u64) -> WeightedGraph {
    assert!(n > 0, "need at least one node");
    let mut r = rng(seed);
    let mut b = GraphBuilder::new(n);
    for i in 0..n {
        for j in (i + 1)..n {
            b.add_edge(
                NodeId::from(i),
                NodeId::from(j),
                random_weight(&mut r, max_w),
            )
            .unwrap();
        }
    }
    b.build().expect("complete graph is connected")
}

/// Samples `count` distinct nodes, deterministically per seed.
pub fn sample_nodes(n: usize, count: usize, seed: u64) -> Vec<NodeId> {
    assert!(count <= n, "cannot sample {count} of {n} nodes");
    let mut r = rng(seed);
    let mut ids: Vec<usize> = (0..n).collect();
    // Partial Fisher-Yates.
    for i in 0..count {
        let j = r.gen_range(i..n);
        ids.swap(i, j);
    }
    let mut out: Vec<NodeId> = ids[..count].iter().map(|&i| NodeId::from(i)).collect();
    out.sort_unstable();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics;

    #[test]
    fn gnp_is_connected_and_deterministic() {
        let a = gnp_connected(30, 0.1, 100, 7);
        let b2 = gnp_connected(30, 0.1, 100, 7);
        assert!(a.is_connected());
        assert_eq!(a.m(), b2.m());
        assert_eq!(a.edges(), b2.edges());
        let c = gnp_connected(30, 0.1, 100, 8);
        assert!(a.m() != c.m() || a.edges() != c.edges());
    }

    #[test]
    fn geometric_is_connected() {
        let g = random_geometric(40, 0.18, 3);
        assert!(g.is_connected());
    }

    #[test]
    fn grid_dimensions() {
        let g = grid(3, 4, 5, 0);
        assert_eq!(g.n(), 12);
        assert_eq!(g.m(), 3 * 3 + 2 * 4); // rows*(cols-1) + (rows-1)*cols
        assert_eq!(metrics::unweighted_diameter(&g), 5);
    }

    #[test]
    fn path_parameters() {
        let g = path(6, 3);
        let p = metrics::parameters(&g);
        assert_eq!(p.diameter, 5);
        assert_eq!(p.shortest_path_diameter, 5);
        assert_eq!(p.weighted_diameter, 15);
    }

    #[test]
    fn star_and_ring_shapes() {
        let s = star(8, 4, 1);
        assert_eq!(metrics::unweighted_diameter(&s), 2);
        let r = ring(8, 4, 1);
        assert_eq!(r.m(), 8);
        assert!(r.is_connected());
    }

    #[test]
    fn caterpillar_shape() {
        let g = caterpillar(5, 2, 3, 9);
        assert_eq!(g.n(), 15);
        assert!(g.is_connected());
        assert!(metrics::unweighted_diameter(&g) >= 5);
    }

    #[test]
    fn sample_nodes_distinct_sorted() {
        let s = sample_nodes(20, 7, 11);
        assert_eq!(s.len(), 7);
        for w in s.windows(2) {
            assert!(w[0] < w[1]);
        }
        assert_eq!(s, sample_nodes(20, 7, 11));
    }

    #[test]
    fn complete_graph_edge_count() {
        let g = complete(7, 9, 2);
        assert_eq!(g.m(), 21);
    }
}
