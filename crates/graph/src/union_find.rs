//! Union–find (disjoint set union) with path halving and union by size.
//!
//! Used by Kruskal's algorithm, cycle filtering of candidate merges
//! (Lemma 4.13: "discard each merge that closes a cycle in `G_c`"), and
//! component bookkeeping throughout.

/// A classic disjoint-set-union structure over `0..n`.
///
/// # Example
///
/// ```
/// use dsf_graph::union_find::UnionFind;
/// let mut uf = UnionFind::new(4);
/// assert!(uf.union(0, 1));
/// assert!(!uf.union(1, 0), "already joined");
/// assert!(uf.same(0, 1));
/// assert_eq!(uf.num_sets(), 3);
/// ```
#[derive(Debug, Clone)]
pub struct UnionFind {
    parent: Vec<u32>,
    size: Vec<u32>,
    num_sets: usize,
}

impl UnionFind {
    /// Creates `n` singleton sets.
    pub fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n as u32).collect(),
            size: vec![1; n],
            num_sets: n,
        }
    }

    /// Representative of `x`'s set.
    pub fn find(&mut self, x: usize) -> usize {
        let mut x = x as u32;
        while self.parent[x as usize] != x {
            // Path halving.
            let gp = self.parent[self.parent[x as usize] as usize];
            self.parent[x as usize] = gp;
            x = gp;
        }
        x as usize
    }

    /// Representative without mutation (no compression), for shared access.
    pub fn find_const(&self, x: usize) -> usize {
        let mut x = x as u32;
        while self.parent[x as usize] != x {
            x = self.parent[x as usize];
        }
        x as usize
    }

    /// Merges the sets of `a` and `b`; returns `true` if they were distinct.
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        let (big, small) = if self.size[ra] >= self.size[rb] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[small] = big as u32;
        self.size[big] += self.size[small];
        self.num_sets -= 1;
        true
    }

    /// Whether `a` and `b` are in the same set.
    pub fn same(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }

    /// Number of elements in `x`'s set.
    pub fn set_size(&mut self, x: usize) -> usize {
        let r = self.find(x);
        self.size[r] as usize
    }

    /// Current number of disjoint sets.
    pub fn num_sets(&self) -> usize {
        self.num_sets
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Whether the structure is empty.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_union_find() {
        let mut uf = UnionFind::new(6);
        assert_eq!(uf.num_sets(), 6);
        assert!(uf.union(0, 1));
        assert!(uf.union(2, 3));
        assert!(uf.union(0, 3));
        assert!(uf.same(1, 2));
        assert!(!uf.same(1, 4));
        assert_eq!(uf.num_sets(), 3);
        assert_eq!(uf.set_size(2), 4);
    }

    #[test]
    fn find_const_matches_find() {
        let mut uf = UnionFind::new(8);
        uf.union(0, 1);
        uf.union(1, 2);
        uf.union(5, 6);
        for i in 0..8 {
            assert_eq!(uf.find_const(i), uf.clone().find(i));
        }
    }

    #[test]
    fn union_all_gives_one_set() {
        let mut uf = UnionFind::new(10);
        for i in 1..10 {
            uf.union(i - 1, i);
        }
        assert_eq!(uf.num_sets(), 1);
        assert_eq!(uf.set_size(7), 10);
    }
}
