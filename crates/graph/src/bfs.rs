//! Unweighted breadth-first search: hop distances, BFS trees, eccentricity.
//!
//! The CONGEST round bounds are stated in terms of the *unweighted* diameter
//! `D` — control information flows along edges ignoring weights — so BFS is
//! the substrate of broadcast, convergecast and termination detection.

use std::collections::VecDeque;

use crate::{NodeId, WeightedGraph};

/// Hop distances from `source` (`u32::MAX` if unreachable).
pub fn distances(g: &WeightedGraph, source: NodeId) -> Vec<u32> {
    let mut dist = vec![u32::MAX; g.n()];
    let mut q = VecDeque::new();
    dist[source.idx()] = 0;
    q.push_back(source);
    while let Some(v) = q.pop_front() {
        for &(u, _) in g.neighbors(v) {
            if dist[u.idx()] == u32::MAX {
                dist[u.idx()] = dist[v.idx()] + 1;
                q.push_back(u);
            }
        }
    }
    dist
}

/// A rooted BFS tree: `parent[v]` is the tree parent (`None` at the root),
/// with the deterministic rule that each node adopts its smallest-id
/// neighbor at the previous BFS layer (matching the distributed construction
/// in `dsf-core`).
#[derive(Debug, Clone)]
pub struct BfsTree {
    /// The root node.
    pub root: NodeId,
    /// Parent pointers.
    pub parent: Vec<Option<NodeId>>,
    /// Hop depth of each node.
    pub depth: Vec<u32>,
}

impl BfsTree {
    /// Children lists derived from the parent pointers.
    pub fn children(&self) -> Vec<Vec<NodeId>> {
        let mut ch = vec![Vec::new(); self.parent.len()];
        for (v, p) in self.parent.iter().enumerate() {
            if let Some(p) = p {
                ch[p.idx()].push(NodeId::from(v));
            }
        }
        ch
    }

    /// Height of the tree (max depth).
    pub fn height(&self) -> u32 {
        self.depth
            .iter()
            .copied()
            .filter(|&d| d != u32::MAX)
            .max()
            .unwrap_or(0)
    }
}

/// Builds the deterministic BFS tree rooted at `root`.
pub fn tree(g: &WeightedGraph, root: NodeId) -> BfsTree {
    let depth = distances(g, root);
    let mut parent = vec![None; g.n()];
    for v in g.nodes() {
        if v == root || depth[v.idx()] == u32::MAX {
            continue;
        }
        // Smallest-id neighbor one layer closer to the root.
        let p = g
            .neighbors(v)
            .iter()
            .map(|&(u, _)| u)
            .filter(|u| depth[u.idx()] + 1 == depth[v.idx()])
            .min()
            .expect("bfs layer invariant");
        parent[v.idx()] = Some(p);
    }
    BfsTree {
        root,
        parent,
        depth,
    }
}

/// Eccentricity of `v`: max hop distance to any node.
pub fn eccentricity(g: &WeightedGraph, v: NodeId) -> u32 {
    distances(g, v)
        .into_iter()
        .filter(|&d| d != u32::MAX)
        .max()
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    fn path(n: u32) -> WeightedGraph {
        let mut b = GraphBuilder::new(n as usize);
        for i in 0..n - 1 {
            b.add_edge(NodeId(i), NodeId(i + 1), 7).unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn distances_ignore_weights() {
        let g = path(5);
        assert_eq!(distances(&g, NodeId(0)), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn tree_structure() {
        let g = path(4);
        let t = tree(&g, NodeId(2));
        assert_eq!(t.parent[2], None);
        assert_eq!(t.parent[1], Some(NodeId(2)));
        assert_eq!(t.parent[0], Some(NodeId(1)));
        assert_eq!(t.parent[3], Some(NodeId(2)));
        assert_eq!(t.height(), 2);
        let ch = t.children();
        assert_eq!(ch[2], vec![NodeId(1), NodeId(3)]);
    }

    #[test]
    fn eccentricity_on_path() {
        let g = path(6);
        assert_eq!(eccentricity(&g, NodeId(0)), 5);
        assert_eq!(eccentricity(&g, NodeId(3)), 3);
    }
}
