//! The graph parameters that govern every round bound in the paper:
//! unweighted diameter `D`, weighted diameter `WD`, and the
//! shortest-path diameter `s`.
//!
//! Quoting Section 2:
//! * `D := max_{v,w} min_{p ∈ P(v,w)} ℓ(p)` (hops, ignoring weights);
//! * `wd(v,w) := min_{p} W(p)` and `WD := max_{v,w} wd(v,w)`;
//! * `s := max_{v,w} min { ℓ(p) | p ∈ P(v,w) ∧ W(p) = wd(v,w) }` — the
//!   maximum, over node pairs, of the minimum *hop count among weighted
//!   shortest paths*. Intuitively `s` is the stabilization time of
//!   distributed Bellman–Ford.

use crate::{bfs, dijkstra, Weight, WeightedGraph};

/// All CONGEST-relevant parameters of a graph, bundled for reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GraphParameters {
    /// Number of nodes.
    pub n: usize,
    /// Number of edges.
    pub m: usize,
    /// Unweighted (hop) diameter `D`.
    pub diameter: u32,
    /// Weighted diameter `WD`.
    pub weighted_diameter: Weight,
    /// Shortest-path diameter `s`.
    pub shortest_path_diameter: u32,
}

/// Unweighted diameter `D` (max BFS eccentricity). `O(n·m)`.
pub fn unweighted_diameter(g: &WeightedGraph) -> u32 {
    g.nodes()
        .map(|v| bfs::eccentricity(g, v))
        .max()
        .unwrap_or(0)
}

/// Weighted diameter `WD`. `O(n·m·log n)`.
pub fn weighted_diameter(g: &WeightedGraph) -> Weight {
    g.nodes()
        .map(|v| {
            dijkstra::shortest_paths(g, v)
                .dist
                .into_iter()
                .filter(|&d| d < crate::INF)
                .max()
                .unwrap_or(0)
        })
        .max()
        .unwrap_or(0)
}

/// Shortest-path diameter `s`: the Dijkstra in [`dijkstra::shortest_paths`]
/// minimizes hops among equal-weight paths, so the per-pair minimum hop count
/// over shortest paths is exactly `hops[v]`.
pub fn shortest_path_diameter(g: &WeightedGraph) -> u32 {
    g.nodes()
        .map(|v| {
            dijkstra::shortest_paths(g, v)
                .hops
                .into_iter()
                .filter(|&h| h != u32::MAX)
                .max()
                .unwrap_or(0)
        })
        .max()
        .unwrap_or(0)
}

/// Computes all parameters in one sweep.
pub fn parameters(g: &WeightedGraph) -> GraphParameters {
    let mut diameter = 0u32;
    let mut wd = 0u64;
    let mut spd = 0u32;
    for v in g.nodes() {
        diameter = diameter.max(bfs::eccentricity(g, v));
        let sp = dijkstra::shortest_paths(g, v);
        for u in g.nodes() {
            if sp.dist[u.idx()] < crate::INF {
                wd = wd.max(sp.dist[u.idx()]);
                spd = spd.max(sp.hops[u.idx()]);
            }
        }
    }
    GraphParameters {
        n: g.n(),
        m: g.m(),
        diameter,
        weighted_diameter: wd,
        shortest_path_diameter: spd,
    }
}

/// `s` is sandwiched between `D` and `n - 1`; convenient check used in tests
/// and by generator post-conditions.
pub fn parameters_consistent(p: &GraphParameters) -> bool {
    u32::try_from(p.n.saturating_sub(1))
        .is_ok_and(|nm1| p.diameter <= p.shortest_path_diameter && p.shortest_path_diameter <= nm1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{GraphBuilder, NodeId};

    /// A 4-cycle where one edge is heavy: 0-1-2-3-0 with w(3,0) = 10.
    ///
    /// The weighted shortest path from 0 to 3 goes the long way (3 hops,
    /// weight 3) even though the direct edge exists, so `s = 3 > D = 2`.
    fn lopsided_cycle() -> WeightedGraph {
        let mut b = GraphBuilder::new(4);
        b.add_edge(NodeId(0), NodeId(1), 1).unwrap();
        b.add_edge(NodeId(1), NodeId(2), 1).unwrap();
        b.add_edge(NodeId(2), NodeId(3), 1).unwrap();
        b.add_edge(NodeId(3), NodeId(0), 10).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn shortest_path_diameter_exceeds_hop_diameter() {
        let g = lopsided_cycle();
        let p = parameters(&g);
        assert_eq!(p.diameter, 2);
        assert_eq!(p.shortest_path_diameter, 3);
        assert_eq!(p.weighted_diameter, 3);
        assert!(parameters_consistent(&p));
    }

    #[test]
    fn individual_functions_match_bundle() {
        let g = lopsided_cycle();
        let p = parameters(&g);
        assert_eq!(unweighted_diameter(&g), p.diameter);
        assert_eq!(weighted_diameter(&g), p.weighted_diameter);
        assert_eq!(shortest_path_diameter(&g), p.shortest_path_diameter);
    }

    #[test]
    fn single_edge_graph() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(NodeId(0), NodeId(1), 5).unwrap();
        let g = b.build().unwrap();
        let p = parameters(&g);
        assert_eq!(
            p,
            GraphParameters {
                n: 2,
                m: 1,
                diameter: 1,
                weighted_diameter: 5,
                shortest_path_diameter: 1
            }
        );
    }
}
