//! Exact dyadic rational numbers `m / 2^e`.
//!
//! Moat-growing event times are *dyadic*: an active–active meeting solves
//! `wd(v,w) = rad(v) + rad(w) + 2μ` for `μ`, i.e. halves an integer-valued
//! gap, and radii are sums of such `μ` values. The paper relies on exact
//! event ordering (ties broken lexicographically, Definition 4.12) — both
//! the centralized reference (Algorithm 1) and the distributed emulation must
//! produce *identical* merge sequences (Lemma 4.13) — so floating point is
//! not acceptable. [`Dyadic`] provides exact arithmetic for this purpose.
//!
//! The mantissa is an `i128`; operations panic on overflow, which cannot
//! occur for polynomially-bounded weights and realistic merge counts
//! (the exponent grows by at most one per merge and mantissas stay below
//! `weight_bits + exponent` bits).

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Mul, Neg, Sub, SubAssign};

use crate::Weight;

/// An exact dyadic rational `mantissa / 2^exp`, always kept normalized
/// (odd mantissa or zero, and `exp == 0` for zero).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Dyadic {
    mantissa: i128,
    exp: u32,
}

impl Dyadic {
    /// The value zero.
    pub const ZERO: Dyadic = Dyadic {
        mantissa: 0,
        exp: 0,
    };

    /// The value one.
    pub const ONE: Dyadic = Dyadic {
        mantissa: 1,
        exp: 0,
    };

    /// Creates `mantissa / 2^exp`, normalizing.
    pub fn new(mantissa: i128, exp: u32) -> Self {
        Dyadic { mantissa, exp }.normalized()
    }

    /// Converts an integer (e.g. an edge weight or distance).
    pub fn from_int(v: i128) -> Self {
        Dyadic {
            mantissa: v,
            exp: 0,
        }
    }

    /// Converts an edge weight.
    pub fn from_weight(w: Weight) -> Self {
        Dyadic::from_int(w as i128)
    }

    fn normalized(mut self) -> Self {
        if self.mantissa == 0 {
            self.exp = 0;
            return self;
        }
        let tz = self.mantissa.trailing_zeros().min(self.exp);
        self.mantissa >>= tz;
        self.exp -= tz;
        self
    }

    /// Exact half of the value.
    pub fn half(self) -> Self {
        if self.mantissa == 0 {
            return self;
        }
        let exp = self.exp.checked_add(1).expect("dyadic exponent overflow");
        Dyadic {
            mantissa: self.mantissa,
            exp,
        }
    }

    /// Exact double of the value.
    pub fn double(self) -> Self {
        if self.exp > 0 {
            Dyadic {
                mantissa: self.mantissa,
                exp: self.exp - 1,
            }
        } else {
            Dyadic {
                mantissa: self
                    .mantissa
                    .checked_mul(2)
                    .expect("dyadic mantissa overflow"),
                exp: 0,
            }
        }
    }

    /// Exact product with an integer (used for `actᵢ · μᵢ` dual terms).
    pub fn mul_int(self, k: i128) -> Self {
        Dyadic {
            mantissa: self
                .mantissa
                .checked_mul(k)
                .expect("dyadic mantissa overflow"),
            exp: self.exp,
        }
        .normalized()
    }

    /// Largest value with exponent `≤ max_exp` that is `≤ self`
    /// (rounds towards negative infinity).
    ///
    /// The rounded-radii schedule (Algorithm 2) multiplies the threshold
    /// `μ̂` by `1 + ε/2` each growth phase; quantizing the result keeps
    /// exponents bounded while preserving `μ̂_{g+1} ≤ (1 + ε/2)·μ̂_g`,
    /// which is the direction Corollary D.1's charging argument needs.
    pub fn round_down_to_exp(self, max_exp: u32) -> Self {
        if self.exp <= max_exp {
            return self;
        }
        let shift = self.exp - max_exp;
        if shift >= 127 {
            return if self.mantissa < 0 {
                Dyadic::new(-1, max_exp)
            } else {
                Dyadic::ZERO
            };
        }
        let q = self.mantissa >> shift; // arithmetic shift: floor division
        Dyadic::new(q, max_exp)
    }

    /// Whether the value is exactly zero.
    pub fn is_zero(self) -> bool {
        self.mantissa == 0
    }

    /// Whether the value is strictly negative.
    pub fn is_negative(self) -> bool {
        self.mantissa < 0
    }

    /// Whether the value is strictly positive.
    pub fn is_positive(self) -> bool {
        self.mantissa > 0
    }

    /// Lossy conversion for reporting only (never used in comparisons).
    pub fn to_f64(self) -> f64 {
        self.mantissa as f64 / (2f64).powi(self.exp as i32)
    }

    /// Raw `(mantissa, exp)` pair, for size accounting in messages.
    pub fn raw(self) -> (i128, u32) {
        (self.mantissa, self.exp)
    }

    /// Number of bits in a natural encoding of this value (sign + mantissa
    /// magnitude + exponent), used for CONGEST message-size accounting.
    pub fn encoded_bits(self) -> usize {
        let mag_bits = 128 - self.mantissa.unsigned_abs().leading_zeros() as usize;
        1 + mag_bits.max(1) + 8
    }

    /// Minimum of two values.
    pub fn min(self, other: Self) -> Self {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// Maximum of two values.
    pub fn max(self, other: Self) -> Self {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// Aligns two values to a common exponent, returning
    /// `(ma, mb, common_exp)`.
    fn aligned(self, other: Self) -> (i128, i128, u32) {
        fn shift(m: i128, by: u32) -> i128 {
            assert!(by < 127, "dyadic exponent overflow");
            m.checked_mul(1i128 << by)
                .expect("dyadic mantissa overflow")
        }
        let exp = self.exp.max(other.exp);
        let ma = shift(self.mantissa, exp - self.exp);
        let mb = shift(other.mantissa, exp - other.exp);
        (ma, mb, exp)
    }
}

impl PartialOrd for Dyadic {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Dyadic {
    fn cmp(&self, other: &Self) -> Ordering {
        let (a, b, _) = self.aligned(*other);
        a.cmp(&b)
    }
}

impl Add for Dyadic {
    type Output = Dyadic;
    fn add(self, rhs: Self) -> Self {
        let (a, b, exp) = self.aligned(rhs);
        Dyadic {
            mantissa: a.checked_add(b).expect("dyadic mantissa overflow"),
            exp,
        }
        .normalized()
    }
}

impl AddAssign for Dyadic {
    fn add_assign(&mut self, rhs: Self) {
        *self = *self + rhs;
    }
}

impl Sub for Dyadic {
    type Output = Dyadic;
    fn sub(self, rhs: Self) -> Self {
        let (a, b, exp) = self.aligned(rhs);
        Dyadic {
            mantissa: a.checked_sub(b).expect("dyadic mantissa overflow"),
            exp,
        }
        .normalized()
    }
}

impl SubAssign for Dyadic {
    fn sub_assign(&mut self, rhs: Self) {
        *self = *self - rhs;
    }
}

/// Exact product of two dyadics (used by the rounded-radii schedule).
impl Mul for Dyadic {
    type Output = Dyadic;
    fn mul(self, rhs: Self) -> Self {
        Dyadic {
            mantissa: self
                .mantissa
                .checked_mul(rhs.mantissa)
                .expect("dyadic mantissa overflow"),
            exp: self
                .exp
                .checked_add(rhs.exp)
                .expect("dyadic exponent overflow"),
        }
        .normalized()
    }
}

impl Neg for Dyadic {
    type Output = Dyadic;
    fn neg(self) -> Self {
        Dyadic {
            mantissa: -self.mantissa,
            exp: self.exp,
        }
    }
}

impl From<Weight> for Dyadic {
    fn from(w: Weight) -> Self {
        Dyadic::from_weight(w)
    }
}

impl fmt::Display for Dyadic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.exp == 0 {
            write!(f, "{}", self.mantissa)
        } else {
            write!(f, "{}/2^{}", self.mantissa, self.exp)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn halving_and_comparing() {
        let one = Dyadic::ONE;
        let half = one.half();
        let quarter = half.half();
        assert!(quarter < half && half < one);
        assert_eq!(half + half, one);
        assert_eq!(quarter + quarter + half, one);
        assert_eq!(one.half().double(), one);
    }

    #[test]
    fn normalization_keeps_exponent_small() {
        // 4/2^2 == 1.
        let v = Dyadic::new(4, 2);
        assert_eq!(v, Dyadic::ONE);
        assert_eq!(v.raw(), (1, 0));
    }

    #[test]
    fn mixed_denominator_arithmetic() {
        // 3/2 + 3/4 = 9/4.
        let a = Dyadic::new(3, 1);
        let b = Dyadic::new(3, 2);
        assert_eq!(a + b, Dyadic::new(9, 2));
        assert_eq!((a + b) - b, a);
    }

    #[test]
    fn ordering_across_exponents() {
        let a = Dyadic::new(5, 3); // 0.625
        let b = Dyadic::new(3, 2); // 0.75
        assert!(a < b);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
    }

    #[test]
    fn negatives() {
        let a = Dyadic::from_int(2);
        let b = Dyadic::from_int(5);
        let d = a - b;
        assert!(d.is_negative());
        assert_eq!(-d, Dyadic::from_int(3));
    }

    #[test]
    fn display_and_f64() {
        assert_eq!(Dyadic::new(3, 1).to_f64(), 1.5);
        assert_eq!(format!("{}", Dyadic::new(3, 1)), "3/2^1");
        assert_eq!(format!("{}", Dyadic::from_int(7)), "7");
    }

    #[test]
    fn multiplication() {
        assert_eq!(Dyadic::new(3, 1).mul_int(4), Dyadic::from_int(6));
        assert_eq!(Dyadic::new(3, 1) * Dyadic::new(5, 2), Dyadic::new(15, 3));
        assert_eq!(Dyadic::ZERO * Dyadic::new(7, 3), Dyadic::ZERO);
    }

    #[test]
    fn round_down_to_exp() {
        // 13/8 -> rounded to exp 1: 12/8 = 3/2.
        assert_eq!(Dyadic::new(13, 3).round_down_to_exp(1), Dyadic::new(3, 1));
        // Already coarse enough: unchanged.
        assert_eq!(Dyadic::new(3, 1).round_down_to_exp(4), Dyadic::new(3, 1));
        // Negative values round towards -inf.
        assert_eq!(
            Dyadic::new(-13, 3).round_down_to_exp(1),
            Dyadic::new(-7, 2).round_down_to_exp(1)
        );
        assert!(Dyadic::new(-13, 3).round_down_to_exp(1) <= Dyadic::new(-13, 3));
    }

    #[test]
    fn repeated_halving_stays_exact() {
        let mut v = Dyadic::from_int(1_000_003);
        let mut parts = Dyadic::ZERO;
        for _ in 0..60 {
            v = v.half();
            parts += v;
        }
        // parts = 1_000_003 * (1 - 2^-60)
        assert!(parts < Dyadic::from_int(1_000_003));
        assert_eq!(parts + v, Dyadic::from_int(1_000_003));
    }
}
