//! Single-source shortest paths with the paper's tie-breaking convention.
//!
//! The paper assumes w.l.o.g. that "different paths have different weight
//! (ties broken lexicographically)" (Section 2). We realize that assumption
//! deterministically: among paths of equal weight we prefer fewer hops, and
//! among equal `(weight, hops)` we prefer the parent with the smaller node
//! id. This makes every routine that consumes shortest paths (centralized
//! moat growing, the distributed emulation, the virtual-tree embedding)
//! reproducible and mutually consistent.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::{EdgeId, NodeId, Weight, WeightedGraph, INF};

/// Result of a (possibly multi-source) shortest-path computation.
#[derive(Debug, Clone)]
pub struct ShortestPaths {
    /// The source set, in the order given to [`multi_source`] (a single
    /// element for [`shortest_paths`]). Previously a single `source`
    /// field that silently reported only the first source of a
    /// multi-source run.
    pub sources: Vec<NodeId>,
    /// `dist[v]`: weighted distance from the source ([`INF`] if unreachable).
    pub dist: Vec<Weight>,
    /// `hops[v]`: number of edges on the tie-broken shortest path.
    pub hops: Vec<u32>,
    /// `parent[v]`: predecessor `(node, edge)` on that path (`None` at the
    /// source and for unreachable nodes).
    pub parent: Vec<Option<(NodeId, EdgeId)>>,
}

impl ShortestPaths {
    /// Edge ids of the tie-broken shortest path from the source to `v`,
    /// in order from the source.
    ///
    /// # Panics
    ///
    /// Panics if `v` is unreachable.
    pub fn path_edges(&self, v: NodeId) -> Vec<EdgeId> {
        assert!(self.dist[v.idx()] < INF, "{v} unreachable");
        let mut edges = Vec::new();
        let mut cur = v;
        while let Some((p, e)) = self.parent[cur.idx()] {
            edges.push(e);
            cur = p;
        }
        edges.reverse();
        edges
    }

    /// Node ids of the tie-broken shortest path from the source to `v`,
    /// inclusive of both endpoints.
    pub fn path_nodes(&self, v: NodeId) -> Vec<NodeId> {
        assert!(self.dist[v.idx()] < INF, "{v} unreachable");
        let mut nodes = vec![v];
        let mut cur = v;
        while let Some((p, _)) = self.parent[cur.idx()] {
            nodes.push(p);
            cur = p;
        }
        nodes.reverse();
        nodes
    }
}

/// Dijkstra from a single source with `(dist, hops, parent-id)` tie-breaking.
pub fn shortest_paths(g: &WeightedGraph, source: NodeId) -> ShortestPaths {
    multi_source(g, &[source])
}

/// Dijkstra from multiple sources at distance zero (a Voronoi computation):
/// every node is assigned to its closest source under the tie-breaking order.
///
/// The owning source of node `v` can be recovered by walking `parent`
/// pointers; see [`voronoi_owner`].
pub fn multi_source(g: &WeightedGraph, sources: &[NodeId]) -> ShortestPaths {
    multi_source_with(g, sources, |e| g.weight(e))
}

/// [`multi_source`] with an overriding edge-weight function.
///
/// Unlike [`WeightedGraph`] construction, `weight` may return `0`: the
/// greedy and local-search Steiner forest solvers use this to *contract*
/// an already-selected edge set (selected edges cost nothing to reuse)
/// without rebuilding the graph. The `(dist, hops, parent-id)`
/// tie-breaking order is identical to [`multi_source`], so with
/// `weight = |e| g.weight(e)` the two are interchangeable.
pub fn multi_source_with<W>(g: &WeightedGraph, sources: &[NodeId], weight: W) -> ShortestPaths
where
    W: Fn(EdgeId) -> Weight,
{
    let n = g.n();
    let mut dist = vec![INF; n];
    let mut hops = vec![u32::MAX; n];
    let mut parent: Vec<Option<(NodeId, EdgeId)>> = vec![None; n];
    let mut heap: BinaryHeap<Reverse<(Weight, u32, u32)>> = BinaryHeap::new();
    for &s in sources {
        dist[s.idx()] = 0;
        hops[s.idx()] = 0;
        heap.push(Reverse((0, 0, s.0)));
    }
    while let Some(Reverse((d, h, v))) = heap.pop() {
        let v = NodeId(v);
        if (d, h) != (dist[v.idx()], hops[v.idx()]) {
            continue;
        }
        for &(u, e) in g.neighbors(v) {
            // Checked instead of the old unchecked add, which could wrap
            // on heavy-tailed weights at scale and produce bogus *small*
            // distances. A u64 wrap is always a caller bug (debug
            // assert); a sum that merely reaches the INF sentinel is
            // clamped and treated as unreachable, keeping the
            // `dist < INF ⇔ reachable` invariant.
            let sum = d.checked_add(weight(e));
            debug_assert!(
                sum.is_some(),
                "path weight overflow: {d} + {} wraps u64",
                weight(e)
            );
            let nd = sum.unwrap_or(Weight::MAX).min(INF);
            if nd >= INF {
                continue;
            }
            let nh = h + 1;
            let better = (nd, nh) < (dist[u.idx()], hops[u.idx()])
                || ((nd, nh) == (dist[u.idx()], hops[u.idx()])
                    && parent[u.idx()].is_none_or(|(p, _)| v < p));
            if better {
                dist[u.idx()] = nd;
                hops[u.idx()] = nh;
                parent[u.idx()] = Some((v, e));
                heap.push(Reverse((nd, nh, u.0)));
            }
        }
    }
    ShortestPaths {
        sources: sources.to_vec(),
        dist,
        hops,
        parent,
    }
}

/// Recovers, for every node, the source that owns it in a [`multi_source`]
/// run (`None` for unreachable nodes).
pub fn voronoi_owner(sp: &ShortestPaths, sources: &[NodeId]) -> Vec<Option<NodeId>> {
    let n = sp.dist.len();
    let mut owner: Vec<Option<NodeId>> = vec![None; n];
    for &s in sources {
        owner[s.idx()] = Some(s);
    }
    // Nodes in order of distance are finalized after their parents.
    let mut order: Vec<usize> = (0..n).filter(|&v| sp.dist[v] < INF).collect();
    order.sort_by_key(|&v| (sp.dist[v], sp.hops[v]));
    for v in order {
        if owner[v].is_none() {
            if let Some((p, _)) = sp.parent[v] {
                owner[v] = owner[p.idx()];
            }
        }
    }
    owner
}

/// All-pairs weighted distances (one Dijkstra per node); `O(n·m·log n)`.
pub fn all_pairs(g: &WeightedGraph) -> Vec<Vec<Weight>> {
    g.nodes().map(|v| shortest_paths(g, v).dist).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    /// 0 -1- 1 -1- 2
    ///  \----2----/     (two equal-weight paths 0..2; tie-break prefers 1 hop)
    fn diamond() -> WeightedGraph {
        let mut b = GraphBuilder::new(3);
        b.add_edge(NodeId(0), NodeId(1), 1).unwrap();
        b.add_edge(NodeId(1), NodeId(2), 1).unwrap();
        b.add_edge(NodeId(0), NodeId(2), 2).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn distances_and_paths() {
        let g = diamond();
        let sp = shortest_paths(&g, NodeId(0));
        assert_eq!(sp.dist, vec![0, 1, 2]);
        // Tie-break: direct edge (1 hop) preferred over the 2-hop path.
        assert_eq!(sp.hops[2], 1);
        assert_eq!(sp.path_edges(NodeId(2)), vec![EdgeId(2)]);
        assert_eq!(sp.path_nodes(NodeId(2)), vec![NodeId(0), NodeId(2)]);
    }

    #[test]
    fn multi_source_voronoi() {
        // Path 0-1-2-3-4, sources {0, 4}.
        let mut b = GraphBuilder::new(5);
        for i in 0..4u32 {
            b.add_edge(NodeId(i), NodeId(i + 1), 1).unwrap();
        }
        let g = b.build().unwrap();
        let sp = multi_source(&g, &[NodeId(0), NodeId(4)]);
        assert_eq!(sp.dist, vec![0, 1, 2, 1, 0]);
        let owner = voronoi_owner(&sp, &[NodeId(0), NodeId(4)]);
        assert_eq!(owner[1], Some(NodeId(0)));
        assert_eq!(owner[3], Some(NodeId(4)));
        // Node 2 is equidistant; the smaller parent id wins the tie, so it
        // is owned via node 1 -> source 0.
        assert_eq!(owner[2], Some(NodeId(0)));
    }

    #[test]
    fn sources_field_reports_all_sources() {
        let mut b = GraphBuilder::new(5);
        for i in 0..4u32 {
            b.add_edge(NodeId(i), NodeId(i + 1), 1).unwrap();
        }
        let g = b.build().unwrap();
        let sp = multi_source(&g, &[NodeId(4), NodeId(0)]);
        assert_eq!(sp.sources, vec![NodeId(4), NodeId(0)]);
        let sp = shortest_paths(&g, NodeId(3));
        assert_eq!(sp.sources, vec![NodeId(3)]);
    }

    /// Heavy-tailed weights whose path sums exceed the INF sentinel must
    /// clamp to "unreachable" instead of wrapping into bogus small
    /// distances (the old unchecked `d + w`).
    #[test]
    fn near_inf_weights_clamp_instead_of_wrapping() {
        // 0 -huge- 1 -huge- 2: the two-edge path sum exceeds INF (but
        // not u64), so node 2 is "unreachable" from 0; node 1 is at a
        // finite (huge) distance.
        let huge = INF - 1;
        let mut b = GraphBuilder::new(3);
        b.add_edge(NodeId(0), NodeId(1), huge).unwrap();
        b.add_edge(NodeId(1), NodeId(2), huge).unwrap();
        let g = b.build().unwrap();
        let sp = shortest_paths(&g, NodeId(0));
        assert_eq!(sp.dist[1], huge);
        assert_eq!(sp.dist[2], INF, "saturated distance must read unreachable");
        assert_eq!(sp.parent[2], None);
        // The unchecked add would have produced 2*(INF-1) ≈ u64::MAX/2,
        // which still compares as "reachable" nonsense.
        assert!(sp.dist[2] >= INF);
    }

    #[test]
    fn multi_source_with_contracts_zero_weight_edges() {
        // Path 0-1-2-3 with weights 5,5,5: contracting e1 (1-2) makes the
        // 0→3 distance 10, and the path still reports all three edges.
        let mut b = GraphBuilder::new(4);
        for i in 0..3u32 {
            b.add_edge(NodeId(i), NodeId(i + 1), 5).unwrap();
        }
        let g = b.build().unwrap();
        let sp = multi_source_with(&g, &[NodeId(0)], |e| {
            if e == EdgeId(1) {
                0
            } else {
                g.weight(e)
            }
        });
        assert_eq!(sp.dist, vec![0, 5, 5, 10]);
        assert_eq!(
            sp.path_edges(NodeId(3)),
            vec![EdgeId(0), EdgeId(1), EdgeId(2)]
        );
    }

    #[test]
    fn multi_source_with_identity_weights_matches_multi_source() {
        let g = crate::generators::gnp_connected(24, 0.2, 9, 11);
        let sources = [NodeId(0), NodeId(13)];
        let a = multi_source(&g, &sources);
        let b = multi_source_with(&g, &sources, |e| g.weight(e));
        assert_eq!(a.dist, b.dist);
        assert_eq!(a.hops, b.hops);
        assert_eq!(a.parent, b.parent);
    }

    #[test]
    fn all_pairs_symmetric() {
        let g = diamond();
        let ap = all_pairs(&g);
        for i in 0..3 {
            for j in 0..3 {
                assert_eq!(ap[i][j], ap[j][i]);
            }
        }
        assert_eq!(ap[0][2], 2);
    }
}
