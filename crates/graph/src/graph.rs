//! The core immutable weighted-graph type and its builder.

use std::fmt;

use crate::Weight;

/// Identifier of a node; nodes are numbered `0..n`.
///
/// In the CONGEST model each node initially knows its own identifier, the
/// identifiers of its neighbors and the weights of its incident edges
/// (paper, Section 2); this type is that identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Index into per-node arrays.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl From<usize> for NodeId {
    fn from(i: usize) -> Self {
        NodeId(u32::try_from(i).expect("node index exceeds u32"))
    }
}

/// Identifier of an (undirected) edge; edges are numbered `0..m` in insertion
/// order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct EdgeId(pub u32);

impl EdgeId {
    /// Index into per-edge arrays.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// An undirected weighted edge `{u, v}` with `u < v`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Edge {
    /// Smaller endpoint.
    pub u: NodeId,
    /// Larger endpoint.
    pub v: NodeId,
    /// Positive integer weight.
    pub w: Weight,
}

impl Edge {
    /// The endpoint that is not `x`.
    ///
    /// # Panics
    ///
    /// Panics if `x` is not an endpoint of this edge.
    #[inline]
    pub fn other(&self, x: NodeId) -> NodeId {
        if x == self.u {
            self.v
        } else {
            assert_eq!(x, self.v, "node {x} is not an endpoint");
            self.u
        }
    }
}

/// Errors raised while constructing a [`WeightedGraph`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// An endpoint was `>= n`.
    NodeOutOfRange { node: NodeId, n: usize },
    /// Both endpoints were equal.
    SelfLoop(NodeId),
    /// The same unordered pair was added twice.
    DuplicateEdge(NodeId, NodeId),
    /// Edge weight was zero (the model requires weights in `N`).
    ZeroWeight(NodeId, NodeId),
    /// The finished graph is not connected (required by the model: the
    /// network is a single connected component).
    Disconnected,
    /// The graph has no nodes.
    Empty,
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::NodeOutOfRange { node, n } => {
                write!(f, "node {node} out of range for graph with {n} nodes")
            }
            GraphError::SelfLoop(v) => write!(f, "self loop at {v}"),
            GraphError::DuplicateEdge(u, v) => write!(f, "duplicate edge {{{u}, {v}}}"),
            GraphError::ZeroWeight(u, v) => write!(f, "zero weight on edge {{{u}, {v}}}"),
            GraphError::Disconnected => write!(f, "graph is not connected"),
            GraphError::Empty => write!(f, "graph has no nodes"),
        }
    }
}

impl std::error::Error for GraphError {}

/// Incrementally assembles a [`WeightedGraph`], validating as it goes.
///
/// # Example
///
/// ```
/// use dsf_graph::{GraphBuilder, NodeId};
/// # fn main() -> Result<(), dsf_graph::GraphError> {
/// let mut b = GraphBuilder::new(3);
/// b.add_edge(NodeId(0), NodeId(1), 1)?;
/// b.add_edge(NodeId(1), NodeId(2), 4)?;
/// let g = b.build()?;
/// assert_eq!(g.m(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct GraphBuilder {
    n: usize,
    edges: Vec<Edge>,
    seen: std::collections::HashSet<(u32, u32)>,
}

impl GraphBuilder {
    /// Starts a builder for a graph on `n` nodes (ids `0..n`).
    pub fn new(n: usize) -> Self {
        GraphBuilder {
            n,
            edges: Vec::new(),
            seen: std::collections::HashSet::new(),
        }
    }

    /// Adds the undirected edge `{u, v}` with weight `w`.
    ///
    /// # Errors
    ///
    /// Returns an error on self loops, duplicate edges, zero weights or
    /// out-of-range endpoints. The builder is left unchanged on error.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId, w: Weight) -> Result<EdgeId, GraphError> {
        if u.idx() >= self.n {
            return Err(GraphError::NodeOutOfRange { node: u, n: self.n });
        }
        if v.idx() >= self.n {
            return Err(GraphError::NodeOutOfRange { node: v, n: self.n });
        }
        if u == v {
            return Err(GraphError::SelfLoop(u));
        }
        if w == 0 {
            return Err(GraphError::ZeroWeight(u, v));
        }
        let (a, b) = if u < v { (u, v) } else { (v, u) };
        if !self.seen.insert((a.0, b.0)) {
            return Err(GraphError::DuplicateEdge(a, b));
        }
        let id = EdgeId(self.edges.len() as u32);
        self.edges.push(Edge { u: a, v: b, w });
        Ok(id)
    }

    /// Returns `true` if the unordered pair `{u, v}` has already been added.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        let (a, b) = if u < v { (u, v) } else { (v, u) };
        self.seen.contains(&(a.0, b.0))
    }

    /// Number of edges added so far.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Finishes the graph, checking connectivity.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::Disconnected`] if the graph is not connected and
    /// [`GraphError::Empty`] if `n == 0`.
    pub fn build(self) -> Result<WeightedGraph, GraphError> {
        if self.n == 0 {
            return Err(GraphError::Empty);
        }
        let g = self.build_unchecked();
        if !g.is_connected() {
            return Err(GraphError::Disconnected);
        }
        Ok(g)
    }

    /// Finishes the graph without the connectivity check.
    ///
    /// Useful for intermediate graphs (e.g. the forest `(V, F)` of selected
    /// edges, which is intentionally disconnected).
    pub fn build_unchecked(self) -> WeightedGraph {
        WeightedGraph::assemble(self.n, self.edges)
    }
}

/// An immutable, undirected, positively-weighted graph.
///
/// The graph is the communication network *and* the problem instance domain:
/// in the CONGEST model the input graph and the network coincide.
///
/// Adjacency is stored in compressed-sparse-row form — one flat
/// `(neighbor, edge id)` array sliced by a per-node offset table — instead
/// of one `Vec` per node. At the 10M-node scale tier this saves the 24
/// bytes/node of inner-`Vec` headers plus their reallocation slack, and
/// keeps every neighbor scan on a single contiguous allocation.
#[derive(Debug, Clone)]
pub struct WeightedGraph {
    n: usize,
    edges: Vec<Edge>,
    /// CSR offsets: node `v`'s adjacency is `adj[adj_off[v]..adj_off[v+1]]`.
    adj_off: Vec<u32>,
    /// Flat `(neighbor, edge id)` entries, each node's slice sorted by
    /// neighbor id.
    adj: Vec<(NodeId, EdgeId)>,
}

impl WeightedGraph {
    /// Builds the CSR adjacency for `edges` on `n` nodes via counting sort
    /// (no per-node allocations, no hashing).
    fn assemble(n: usize, edges: Vec<Edge>) -> WeightedGraph {
        let slots = u32::try_from(edges.len() * 2)
            .expect("directed adjacency exceeds the u32 CSR offset range");
        let mut adj_off = vec![0u32; n + 1];
        for e in &edges {
            adj_off[e.u.idx() + 1] += 1;
            adj_off[e.v.idx() + 1] += 1;
        }
        for v in 0..n {
            adj_off[v + 1] += adj_off[v];
        }
        let mut cursor = adj_off.clone();
        let mut adj = vec![(NodeId(0), EdgeId(0)); slots as usize];
        for (i, e) in edges.iter().enumerate() {
            let id = EdgeId(i as u32);
            adj[cursor[e.u.idx()] as usize] = (e.v, id);
            cursor[e.u.idx()] += 1;
            adj[cursor[e.v.idx()] as usize] = (e.u, id);
            cursor[e.v.idx()] += 1;
        }
        for v in 0..n {
            adj[adj_off[v] as usize..adj_off[v + 1] as usize].sort_unstable();
        }
        WeightedGraph {
            n,
            edges,
            adj_off,
            adj,
        }
    }

    /// Builds a validated graph directly from an edge list, without the
    /// per-edge hashing [`GraphBuilder`] pays for incremental duplicate
    /// detection — the O(n + m) construction path the scale-tier
    /// generators use (a `HashSet` over 20M+ edges costs more transient
    /// memory than the finished graph).
    ///
    /// Edges may be given in either orientation; they are normalized to
    /// `u < v`. Duplicates are detected from the sorted adjacency instead
    /// of a hash set.
    ///
    /// # Errors
    ///
    /// Returns the same [`GraphError`]s as the builder path: out-of-range
    /// endpoints, self loops, zero weights, duplicate edges,
    /// disconnectedness, or an empty node set.
    pub fn from_edges(n: usize, edges: Vec<Edge>) -> Result<WeightedGraph, GraphError> {
        if n == 0 {
            return Err(GraphError::Empty);
        }
        let mut edges = edges;
        for e in &mut edges {
            if e.u.idx() >= n {
                return Err(GraphError::NodeOutOfRange { node: e.u, n });
            }
            if e.v.idx() >= n {
                return Err(GraphError::NodeOutOfRange { node: e.v, n });
            }
            if e.u == e.v {
                return Err(GraphError::SelfLoop(e.u));
            }
            if e.w == 0 {
                return Err(GraphError::ZeroWeight(e.u, e.v));
            }
            if e.u > e.v {
                std::mem::swap(&mut e.u, &mut e.v);
            }
        }
        let g = WeightedGraph::assemble(n, edges);
        for v in g.nodes() {
            for w in g.neighbors(v).windows(2) {
                if w[0].0 == w[1].0 {
                    let u = w[0].0;
                    let (a, b) = if u < v { (u, v) } else { (v, u) };
                    return Err(GraphError::DuplicateEdge(a, b));
                }
            }
        }
        if !g.is_connected() {
            return Err(GraphError::Disconnected);
        }
        Ok(g)
    }

    /// Number of nodes `n`.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of edges `m`.
    #[inline]
    pub fn m(&self) -> usize {
        self.edges.len()
    }

    /// All edges, indexed by [`EdgeId`].
    #[inline]
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// The edge with the given id.
    #[inline]
    pub fn edge(&self, e: EdgeId) -> &Edge {
        &self.edges[e.idx()]
    }

    /// Weight of the edge with the given id.
    #[inline]
    pub fn weight(&self, e: EdgeId) -> Weight {
        self.edges[e.idx()].w
    }

    /// Neighbors of `v` as `(neighbor, edge id)` pairs, sorted by neighbor id.
    #[inline]
    pub fn neighbors(&self, v: NodeId) -> &[(NodeId, EdgeId)] {
        &self.adj[self.adj_off[v.idx()] as usize..self.adj_off[v.idx() + 1] as usize]
    }

    /// Degree of `v`.
    #[inline]
    pub fn degree(&self, v: NodeId) -> usize {
        (self.adj_off[v.idx() + 1] - self.adj_off[v.idx()]) as usize
    }

    /// Iterator over all node ids `0..n`.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.n as u32).map(NodeId)
    }

    /// Looks up the edge id of `{u, v}`, if present.
    pub fn find_edge(&self, u: NodeId, v: NodeId) -> Option<EdgeId> {
        let a = self.neighbors(u);
        a.binary_search_by_key(&v, |&(nb, _)| nb)
            .ok()
            .map(|i| a[i].1)
    }

    /// Total weight of an edge subset.
    pub fn total_weight<'a>(&self, edges: impl IntoIterator<Item = &'a EdgeId>) -> Weight {
        edges.into_iter().map(|&e| self.weight(e)).sum()
    }

    /// Whether the graph is connected (vacuously true for `n == 1`).
    pub fn is_connected(&self) -> bool {
        if self.n == 0 {
            return false;
        }
        let mut seen = vec![false; self.n];
        let mut stack = vec![NodeId(0)];
        seen[0] = true;
        let mut cnt = 1;
        while let Some(v) = stack.pop() {
            for &(u, _) in self.neighbors(v) {
                if !seen[u.idx()] {
                    seen[u.idx()] = true;
                    cnt += 1;
                    stack.push(u);
                }
            }
        }
        cnt == self.n
    }

    /// Connected components of the subgraph `(V, F)` induced by an edge set.
    ///
    /// Returns a component label per node; labels are the smallest node id in
    /// the component.
    pub fn components_of(&self, edge_set: &[EdgeId]) -> Vec<NodeId> {
        let mut uf = crate::union_find::UnionFind::new(self.n);
        for &e in edge_set {
            let ed = self.edge(e);
            uf.union(ed.u.idx(), ed.v.idx());
        }
        // Canonicalize to the smallest node id in each class.
        let mut min_rep: Vec<usize> = (0..self.n).collect();
        for v in 0..self.n {
            let r = uf.find(v);
            if v < min_rep[r] {
                min_rep[r] = v;
            }
        }
        (0..self.n)
            .map(|v| NodeId::from(min_rep[uf.find(v)]))
            .collect()
    }

    /// Number of bits needed to encode a node identifier (`ceil(log2 n)`,
    /// at least 1).
    pub fn id_bits(&self) -> usize {
        (usize::BITS - (self.n.max(2) - 1).leading_zeros()) as usize
    }

    /// A 64-bit FNV-1a fingerprint of the weighted topology: `n`, `m`, and
    /// every `(u, v, w)` triple in edge-id order.
    ///
    /// Weights are part of the digest, so reweighting a single edge changes
    /// the fingerprint — cache keys built on it distinguish instances that
    /// agree on shape but not on metric. Two graphs built from the same
    /// edge list (in either orientation — edges are normalized to `u < v`)
    /// fingerprint identically. The usual 64-bit collision caveat applies:
    /// this is a cache key, not a cryptographic identity.
    pub fn fingerprint(&self) -> u64 {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = FNV_OFFSET;
        let mut mix = |word: u64| {
            for byte in word.to_le_bytes() {
                h ^= u64::from(byte);
                h = h.wrapping_mul(FNV_PRIME);
            }
        };
        mix(self.n as u64);
        mix(self.edges.len() as u64);
        for e in &self.edges {
            mix(u64::from(e.u.0));
            mix(u64::from(e.v.0));
            mix(e.w);
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> WeightedGraph {
        let mut b = GraphBuilder::new(3);
        b.add_edge(NodeId(0), NodeId(1), 1).unwrap();
        b.add_edge(NodeId(1), NodeId(2), 2).unwrap();
        b.add_edge(NodeId(2), NodeId(0), 3).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn builds_and_indexes() {
        let g = triangle();
        assert_eq!(g.n(), 3);
        assert_eq!(g.m(), 3);
        assert_eq!(g.weight(EdgeId(1)), 2);
        assert_eq!(g.degree(NodeId(1)), 2);
        assert_eq!(g.find_edge(NodeId(0), NodeId(2)), Some(EdgeId(2)));
        assert_eq!(g.find_edge(NodeId(2), NodeId(0)), Some(EdgeId(2)));
    }

    #[test]
    fn rejects_self_loop() {
        let mut b = GraphBuilder::new(2);
        assert_eq!(
            b.add_edge(NodeId(0), NodeId(0), 1),
            Err(GraphError::SelfLoop(NodeId(0)))
        );
    }

    #[test]
    fn rejects_duplicate_regardless_of_orientation() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(NodeId(0), NodeId(1), 1).unwrap();
        assert_eq!(
            b.add_edge(NodeId(1), NodeId(0), 2),
            Err(GraphError::DuplicateEdge(NodeId(0), NodeId(1)))
        );
    }

    #[test]
    fn rejects_zero_weight() {
        let mut b = GraphBuilder::new(2);
        assert_eq!(
            b.add_edge(NodeId(0), NodeId(1), 0),
            Err(GraphError::ZeroWeight(NodeId(0), NodeId(1)))
        );
    }

    #[test]
    fn rejects_disconnected() {
        let mut b = GraphBuilder::new(4);
        b.add_edge(NodeId(0), NodeId(1), 1).unwrap();
        b.add_edge(NodeId(2), NodeId(3), 1).unwrap();
        assert_eq!(b.build().err(), Some(GraphError::Disconnected));
    }

    #[test]
    fn rejects_out_of_range() {
        let mut b = GraphBuilder::new(2);
        assert!(matches!(
            b.add_edge(NodeId(0), NodeId(5), 1),
            Err(GraphError::NodeOutOfRange { .. })
        ));
    }

    #[test]
    fn components_of_edge_subsets() {
        let g = triangle();
        let comps = g.components_of(&[EdgeId(0)]);
        assert_eq!(comps[0], comps[1]);
        assert_ne!(comps[0], comps[2]);
        let all = g.components_of(&[EdgeId(0), EdgeId(1)]);
        assert!(all.iter().all(|&c| c == NodeId(0)));
    }

    #[test]
    fn edge_other_endpoint() {
        let g = triangle();
        let e = g.edge(EdgeId(0));
        assert_eq!(e.other(NodeId(0)), NodeId(1));
        assert_eq!(e.other(NodeId(1)), NodeId(0));
    }

    #[test]
    fn id_bits_reasonable() {
        let g = triangle();
        assert_eq!(g.id_bits(), 2);
    }

    #[test]
    fn from_edges_matches_builder_output() {
        let edges = vec![
            Edge {
                u: NodeId(1),
                v: NodeId(0),
                w: 1,
            }, // reversed orientation is normalized
            Edge {
                u: NodeId(1),
                v: NodeId(2),
                w: 2,
            },
            Edge {
                u: NodeId(2),
                v: NodeId(0),
                w: 3,
            },
        ];
        let g = WeightedGraph::from_edges(3, edges).unwrap();
        let b = triangle();
        assert_eq!(g.edges(), b.edges());
        for v in g.nodes() {
            assert_eq!(g.neighbors(v), b.neighbors(v));
        }
    }

    #[test]
    fn fingerprint_tracks_topology_and_weights() {
        let g = triangle();
        // Stable across clones and rebuilds of the same edge list.
        assert_eq!(g.fingerprint(), g.clone().fingerprint());
        assert_eq!(
            g.fingerprint(),
            WeightedGraph::from_edges(3, g.edges().to_vec())
                .unwrap()
                .fingerprint()
        );
        // A single reweight changes it.
        let mut reweighted = g.edges().to_vec();
        reweighted[1].w += 1;
        let g2 = WeightedGraph::from_edges(3, reweighted).unwrap();
        assert_ne!(g.fingerprint(), g2.fingerprint());
        // A different shape on the same node count changes it.
        let mut b = GraphBuilder::new(3);
        b.add_edge(NodeId(0), NodeId(1), 1).unwrap();
        b.add_edge(NodeId(1), NodeId(2), 2).unwrap();
        let path = b.build().unwrap();
        assert_ne!(g.fingerprint(), path.fingerprint());
    }

    #[test]
    fn from_edges_rejects_what_the_builder_rejects() {
        let e = |u: u32, v: u32, w: Weight| Edge {
            u: NodeId(u),
            v: NodeId(v),
            w,
        };
        assert_eq!(
            WeightedGraph::from_edges(0, vec![]).unwrap_err(),
            GraphError::Empty
        );
        assert_eq!(
            WeightedGraph::from_edges(2, vec![e(0, 0, 1)]).unwrap_err(),
            GraphError::SelfLoop(NodeId(0))
        );
        assert_eq!(
            WeightedGraph::from_edges(2, vec![e(0, 1, 0)]).unwrap_err(),
            GraphError::ZeroWeight(NodeId(0), NodeId(1))
        );
        assert!(matches!(
            WeightedGraph::from_edges(2, vec![e(0, 5, 1)]).unwrap_err(),
            GraphError::NodeOutOfRange { .. }
        ));
        // Duplicates are caught from the sorted adjacency, in either
        // orientation.
        assert_eq!(
            WeightedGraph::from_edges(2, vec![e(0, 1, 1), e(1, 0, 2)]).unwrap_err(),
            GraphError::DuplicateEdge(NodeId(0), NodeId(1))
        );
        assert_eq!(
            WeightedGraph::from_edges(4, vec![e(0, 1, 1), e(2, 3, 1)]).unwrap_err(),
            GraphError::Disconnected
        );
    }
}
