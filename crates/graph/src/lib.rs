//! Weighted-graph substrate for the distributed Steiner forest reproduction.
//!
//! This crate provides everything the algorithm crates need from "classical"
//! graph land:
//!
//! * [`WeightedGraph`] — an immutable, validated, undirected weighted graph;
//! * [`dyadic::Dyadic`] — exact dyadic rationals for moat-growing event times;
//! * shortest paths ([`dijkstra`]), breadth-first search ([`bfs`]),
//!   the CONGEST-relevant graph parameters `D`, `WD` and `s` ([`metrics`]);
//! * a Kruskal MST ([`mst`]) and an exact Dreyfus–Wagner Steiner tree
//!   ([`dreyfus_wagner`]) used as ground truth by the experiment harness;
//! * deterministic random instance [`generators`].
//!
//! All randomness is seeded; identical seeds produce identical graphs on any
//! platform.
//!
//! # Example
//!
//! ```
//! use dsf_graph::{GraphBuilder, NodeId};
//!
//! # fn main() -> Result<(), dsf_graph::GraphError> {
//! let mut b = GraphBuilder::new(4);
//! b.add_edge(NodeId(0), NodeId(1), 2)?;
//! b.add_edge(NodeId(1), NodeId(2), 3)?;
//! b.add_edge(NodeId(2), NodeId(3), 1)?;
//! let g = b.build()?;
//! let sp = dsf_graph::dijkstra::shortest_paths(&g, NodeId(0));
//! assert_eq!(sp.dist[3], 6);
//! # Ok(())
//! # }
//! ```

pub mod bfs;
pub mod dijkstra;
pub mod dreyfus_wagner;
pub mod dyadic;
pub mod generators;
mod graph;
pub mod metrics;
pub mod mst;
pub mod union_find;

pub use graph::{Edge, EdgeId, GraphBuilder, GraphError, NodeId, WeightedGraph};

/// Edge weights are positive integers, polynomially bounded in `n`
/// (the paper's model assumption, Section 2).
pub type Weight = u64;

/// "Infinite" distance sentinel, chosen so that `INF + INF` does not overflow.
pub const INF: Weight = u64::MAX / 4;
