//! The experiment harness: one function per experiment of the reproduction
//! (E1–E13), each returning markdown [`Table`]s, plus the machine-readable
//! bench tiers behind `bench_runner`.
//!
//! `cargo run -p dsf-bench --bin paper_tables --release` regenerates every
//! table; `--quick` shrinks sizes and seed counts for smoke runs. The
//! criterion benches in `benches/` wrap the same workloads for wall-clock
//! measurements. `bench_runner` emits the JSON trajectories CI gates on:
//! [`perf`] (`dsf-bench-executor/v3`, executor and solver metrics),
//! [`conformance`] (`dsf-bench-conformance/v1`, per-family ratio
//! distribution), [`service`] (`dsf-bench-service/v1`, batched-service
//! throughput), [`server`] (`dsf-bench-server/v1`, streaming-server
//! latency under open-loop load), and [`churn`] (`dsf-bench-churn/v1`,
//! delta-repair speedup over from-scratch solves on churn traces).
//!
//! # Invariants
//!
//! Every schema separates **deterministic** fields (rounds, messages,
//! activations, ratios — identical on every machine and worker-thread
//! count; CI fails on drift) from **report-only** fields (wall-clock,
//! threads, speedups, throughput — tracked as artifact trajectories, never
//! gated). Readers are strict: a corrupt baseline fails to parse instead
//! of silently passing a gate.
//!
//! # Example
//!
//! ```
//! use dsf_bench::perf::BenchReport;
//!
//! let report = BenchReport { mode: "quick".into(), entries: Vec::new() };
//! // The emitted JSON round-trips through the strict line-oriented reader.
//! let parsed = BenchReport::parse(&report.to_json()).unwrap();
//! assert_eq!(parsed, report);
//! ```

mod table;

pub mod alloc_meter;
pub mod churn;
pub mod conformance;
pub mod experiments;
pub mod perf;
pub mod server;
pub mod service;

pub use table::Table;

/// Runs one experiment by id (`"e1"`..`"e13"`).
///
/// # Panics
///
/// Panics on an unknown id.
pub fn run_experiment(id: &str, quick: bool) -> Vec<Table> {
    match id {
        "e1" => experiments::e1_centralized_two_approx(quick),
        "e2" => experiments::e2_rounded_epsilon(quick),
        "e3" => experiments::e3_deterministic_rounds(quick),
        "e4" => experiments::e4_randomized_vs_khan(quick),
        "e5" => experiments::e5_randomized_quality(quick),
        "e6" => experiments::e6_path_congestion(quick),
        "e7" => experiments::e7_mst_specialization(quick),
        "e8" => experiments::e8_transformations(quick),
        "e9" => experiments::e9_cr_gadget(quick),
        "e10" => experiments::e10_ic_gadget(quick),
        "e11" => experiments::e11_headline(quick),
        "e12" => experiments::e12_growth_phases(quick),
        "e13" => experiments::e13_repetition_ablation(quick),
        other => panic!("unknown experiment id {other:?} (expected e1..e13)"),
    }
}

/// All experiment ids in order.
pub const ALL_EXPERIMENTS: [&str; 13] = [
    "e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "e10", "e11", "e12", "e13",
];
