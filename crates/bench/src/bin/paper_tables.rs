//! Regenerates every experiment table of the reproduction.
//!
//! ```text
//! cargo run -p dsf-bench --bin paper_tables --release            # all, full size
//! cargo run -p dsf-bench --bin paper_tables --release -- --quick # smoke sizes
//! cargo run -p dsf-bench --bin paper_tables --release -- e4 e11  # a subset
//! ```

use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let ids: Vec<String> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .cloned()
        .collect();
    let ids: Vec<&str> = if ids.is_empty() {
        dsf_bench::ALL_EXPERIMENTS.to_vec()
    } else {
        ids.iter().map(String::as_str).collect()
    };

    println!("# Experiment tables — Lenzen & Patt-Shamir, PODC 2014 reproduction\n");
    println!(
        "Mode: {} — regenerate with `cargo run -p dsf-bench --bin paper_tables --release{}`\n",
        if quick { "quick" } else { "full" },
        if quick { " -- --quick" } else { "" }
    );
    for id in ids {
        let start = Instant::now();
        let tables = dsf_bench::run_experiment(id, quick);
        for t in &tables {
            println!("{t}");
        }
        eprintln!("[{id} done in {:.1?}]", start.elapsed());
    }
}
