//! Emits the machine-readable perf and conformance trajectories.
//!
//! ```text
//! bench_runner [--quick] [--out PATH] [--check BASELINE]   # executor mode
//! bench_runner --scale [--quick] [--out PATH]              # scale mode
//! bench_runner --scale-xl [--quick] [--out PATH]           # scale-xl mode
//! bench_runner --conformance [--quick] [--out PATH]        # conformance mode
//! bench_runner --service [--quick] [--out PATH]            # service mode
//! bench_runner --server [--quick] [--out PATH]             # server mode
//! bench_runner --churn [--quick] [--out PATH]              # churn mode
//! ```
//!
//! **Executor mode** (default) times the execution engines and solvers and
//! writes `BENCH_executor.json`. With `--check BASELINE` the deterministic
//! metrics (n, m, rounds, messages, activations) are compared against the
//! checked-in baseline and any drift exits non-zero; wall-clock, thread
//! count, and speedup are report-only. After an intentional change,
//! regenerate the baseline by copying the fresh output over it.
//!
//! **Scale mode** (`--scale`) runs the dense-gossip scaling tier: large
//! path/grid/clustered graphs (n up to ~100k) plus a skewed RMAT
//! power-law instance through the single-threaded and work-stealing
//! executors at worker-thread counts {1, 2, 4, 8}, asserting
//! bit-identical deterministic metrics and reporting wall-clock speedups
//! (`speedup_milli`) alongside the per-run steal and utilization
//! counters. No baseline gates this mode — wall-clock is the product —
//! so `--check` is rejected here.
//!
//! **Scale-xl mode** (`--scale-xl`) runs the memory-compact tier: RMAT
//! power-law graphs (n=10M at edge factor 2; `--quick` shrinks to
//! n=131k) through the single-threaded and 4-way sharded executors,
//! asserting bit-identical metrics and a bytes-per-node memory budget
//! in-harness, and writing `BENCH_scale.json` with the allocation
//! high-water mark (`mem_peak_bytes`) next to `speedup_milli`. Like
//! `--scale` there is no baseline, so `--check` is rejected.
//!
//! **Conformance mode** (`--conformance`) sweeps the corpus tier through
//! the differential oracle (`dsf_workloads::conformance`), writes
//! `BENCH_conformance.json` (per-family ratio distribution), and exits
//! non-zero when any solver violates feasibility, determinism, the
//! certified ratio bounds, or the CONGEST bandwidth budget.
//!
//! **Server mode** (`--server`) benchmarks the streaming server
//! (`dsf-server`) under open-loop load at offered rates ×{0.5, 1, 2} of
//! measured capacity, writing `BENCH_server.json` (solves/sec plus
//! p50/p99 sojourn latency). In-harness gates: admission-control probes
//! (saturation rejects, cancellations and expired deadlines reported)
//! and per-job bit-identity to direct solves. No baseline (`--check` is
//! rejected).
//!
//! Every mode prints the effective worker-thread count in its header, so
//! a malformed `DSF_THREADS` cannot silently run a gate single-threaded —
//! and, next to it, the process-wide work-stealing observability totals
//! (sharded runs, worker-rounds, slots, steals, idle waits from
//! `dsf_congest::sched_obs_totals`), which are report-only by contract:
//! the deterministic gates are blind to them.
//!
//! **Service mode** (`--service`) benchmarks the batched solver service
//! (`dsf-service`) over the workloads corpus at batch sizes {1, 16, 256}
//! and worker counts {1, 4}, writing `BENCH_service.json` (throughput in
//! solves/sec). Two guarantees are asserted in-harness before any entry
//! is emitted: batched results are bit-identical to one-at-a-time solves,
//! and warm sessions allocate no arenas. Like scale mode there is no
//! baseline (`--check` is rejected) — wall-clock is the product.
//!
//! **Churn mode** (`--churn`) replays the seeded arrival/departure/
//! reweight traces (`dsf_workloads::churn`) through the solver service's
//! delta API and writes `BENCH_churn.json` (repair-vs-scratch speedup,
//! moves per delta, deterministic anchor rounds/messages). In-harness
//! gates: every repaired forest passes the churn-differential oracle
//! (feasible, within the certified ratio bound, no heavier than a
//! from-scratch `greedy + local_search` solve), the replay is
//! bit-identical across worker-thread counts 1 and 4, and the repair is
//! at least 2× faster than scratch on a strict majority of steps. No
//! baseline (`--check` is rejected).
//!
//! Unknown flags are rejected with a usage message (exit code 2).

use std::process::ExitCode;

use dsf_bench::churn;
use dsf_bench::conformance;
use dsf_bench::perf::{self, BenchReport};
use dsf_bench::server;
use dsf_bench::service;

const USAGE: &str = "\
usage: bench_runner [--quick] [--out PATH] [--check BASELINE]
       bench_runner --scale [--quick] [--out PATH]
       bench_runner --scale-xl [--quick] [--out PATH]
       bench_runner --conformance [--quick] [--out PATH]
       bench_runner --service [--quick] [--out PATH]
       bench_runner --server [--quick] [--out PATH]
       bench_runner --churn [--quick] [--out PATH]

  --quick        CI smoke sizes (quick corpus tier in conformance mode,
                 shrunken graphs in scale mode)
  --out PATH     output JSON path (default BENCH_executor.json,
                 BENCH_scale.json with --scale/--scale-xl, or
                 BENCH_conformance.json with --conformance)
  --check PATH   executor mode only: gate deterministic metrics against a
                 checked-in baseline report
  --scale        run the sharded-executor scaling tier (large graphs,
                 thread counts 1/2/4/8, speedup columns) instead of the
                 executor micro-benchmarks
  --scale-xl     run the memory-compact power-law tier (RMAT graphs up to
                 n=10M, thread counts 1/4, mem high-water column, with an
                 in-harness bytes-per-node budget assert)
  --conformance  run the corpus conformance sweep instead of the executor
                 benchmarks
  --service      run the batched solver-service tier (throughput at batch
                 sizes 1/16/256, worker counts 1/4, with in-harness
                 batching-determinism and zero-allocation asserts)
  --server       run the streaming-server tier (open-loop load at x0.5/x1/x2
                 of measured capacity, p50/p99 latency, with in-harness
                 admission-control and bit-identity asserts)
  --churn        run the incremental re-solve tier (delta repairs replayed
                 over seeded churn traces, with in-harness repair-quality,
                 thread-count bit-identity, and majority-2x-speedup gates)";

struct Args {
    quick: bool,
    scale: bool,
    scale_xl: bool,
    conformance: bool,
    service: bool,
    server: bool,
    churn: bool,
    out: Option<String>,
    check: Option<String>,
}

fn usage_error(msg: &str) -> ExitCode {
    eprintln!("bench_runner: {msg}\n{USAGE}");
    ExitCode::from(2)
}

fn parse(raw: &[String]) -> Result<Args, String> {
    let mut args = Args {
        quick: false,
        scale: false,
        scale_xl: false,
        conformance: false,
        service: false,
        server: false,
        churn: false,
        out: None,
        check: None,
    };
    let mut it = raw.iter();
    // A flag's path value must not itself look like a flag — otherwise
    // `--out --quick` would silently eat the mode switch.
    let path_value = |flag: &str, next: Option<&String>| -> Result<String, String> {
        match next {
            Some(v) if !v.starts_with("--") => Ok(v.clone()),
            _ => Err(format!("{flag} requires a path argument")),
        }
    };
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => args.quick = true,
            "--scale" => args.scale = true,
            "--scale-xl" => args.scale_xl = true,
            "--conformance" => args.conformance = true,
            "--service" => args.service = true,
            "--server" => args.server = true,
            "--churn" => args.churn = true,
            "--out" => args.out = Some(path_value("--out", it.next())?),
            "--check" => args.check = Some(path_value("--check", it.next())?),
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    if (args.conformance
        || args.scale
        || args.scale_xl
        || args.service
        || args.server
        || args.churn)
        && args.check.is_some()
    {
        return Err("--check applies to executor mode only".into());
    }
    if [
        args.conformance,
        args.scale,
        args.scale_xl,
        args.service,
        args.server,
        args.churn,
    ]
    .iter()
    .filter(|&&m| m)
    .count()
        > 1
    {
        return Err(
            "--scale, --scale-xl, --conformance, --service, --server, and --churn \
             are mutually exclusive"
                .into(),
        );
    }
    Ok(args)
}

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse(&raw) {
        Ok(a) => a,
        Err(e) => return usage_error(&e),
    };
    if args.conformance {
        run_conformance(&args)
    } else if args.service {
        run_service(&args)
    } else if args.server {
        run_server(&args)
    } else if args.churn {
        run_churn(&args)
    } else {
        run_executor(&args)
    }
}

/// The effective worker-thread count, printed in every mode's header: a
/// malformed `DSF_THREADS` falls back to 1 (with a one-time diagnostic
/// from `dsf_congest::default_threads`), and this line makes the
/// fallback visible in gate logs instead of silently single-threading a
/// perf run.
fn threads_header() -> String {
    format!(
        "effective worker threads: {} (DSF_THREADS={})",
        dsf_congest::default_threads(),
        std::env::var("DSF_THREADS").map_or_else(|_| "unset".into(), |v| format!("{v:?}")),
    )
}

/// The process-wide work-stealing effort totals, printed in every mode's
/// header after its workloads ran. All counters are report-only
/// scheduling facts — single-threaded modes legitimately print all
/// zeros, and no gate reads them.
fn sched_obs_header() -> String {
    let o = dsf_congest::sched_obs_totals();
    format!(
        "work-stealing obs: {} sharded runs, {} busy worker-rounds, {} slots, \
         {} chunks stolen, {} idle waits",
        o.sharded_runs, o.worker_rounds, o.slots_processed, o.chunks_stolen, o.idle_waits,
    )
}

fn run_server(args: &Args) -> ExitCode {
    let out_path = args
        .out
        .clone()
        .unwrap_or_else(|| "BENCH_server.json".into());
    // collect() panics (non-zero exit) if an admission-control probe or a
    // bit-identity assert fails — those are this mode's gate.
    let report = server::collect(args.quick);
    if let Err(e) = std::fs::write(&out_path, report.to_json()) {
        eprintln!("cannot write {out_path}: {e}");
        return ExitCode::FAILURE;
    }

    println!(
        "# bench_runner --server ({} mode) -> {out_path}\n# {}\n# {}\n",
        report.mode,
        threads_header(),
        sched_obs_header()
    );
    println!(
        "{:<24} {:>5} {:>3} {:>5} {:>6} {:>9} {:>11} {:>11} {:>11} {:>10}",
        "workload", "jobs", "w", "cap", "rate", "rounds", "messages", "p50", "p99", "solves/s"
    );
    for e in &report.entries {
        let rate = if e.rate_milli_x == 0 {
            "closed".to_string()
        } else {
            format!("x{:.1}", e.rate_milli_x as f64 / 1000.0)
        };
        println!(
            "{:<24} {:>5} {:>3} {:>5} {:>6} {:>9} {:>11} {:>8.3} ms {:>8.3} ms {:>10.3}",
            e.name,
            e.jobs,
            e.workers,
            e.queue_capacity,
            rate,
            e.rounds,
            e.messages,
            e.p50_ns as f64 / 1e6,
            e.p99_ns as f64 / 1e6,
            e.solves_per_sec_milli as f64 / 1000.0,
        );
    }
    println!(
        "\nserver gate: admission probes passed (saturation rejects, cancel/deadline reported) \
         and every job bit-identical to its direct solve"
    );
    ExitCode::SUCCESS
}

fn run_churn(args: &Args) -> ExitCode {
    let out_path = args
        .out
        .clone()
        .unwrap_or_else(|| "BENCH_churn.json".into());
    // collect() panics (non-zero exit) if a repaired forest fails the
    // churn-differential oracle, the replay drifts across thread counts,
    // or the majority-2x-speedup gate is missed — those are this mode's
    // gate.
    let report = churn::collect(args.quick);
    if let Err(e) = std::fs::write(&out_path, report.to_json()) {
        eprintln!("cannot write {out_path}: {e}");
        return ExitCode::FAILURE;
    }

    println!(
        "# bench_runner --churn ({} mode) -> {out_path}\n# {}\n# {}\n",
        report.mode,
        threads_header(),
        sched_obs_header()
    );
    println!(
        "{:<38} {:>2} {:>5} {:>7} {:>9} {:>7} {:>7} {:>9} {:>11} {:>11} {:>11} {:>8}",
        "workload",
        "k",
        "moves",
        "weight",
        "scratch",
        "ratio",
        "bound",
        "rounds",
        "messages",
        "repair",
        "scratch t",
        "speedup"
    );
    for e in &report.entries {
        println!(
            "{:<38} {:>2} {:>5} {:>7} {:>9} {:>7.3} {:>7.3} {:>9} {:>11} {:>8.3} ms {:>8.3} ms {:>7.1}x",
            e.name,
            e.k,
            e.moves,
            e.weight,
            e.scratch_weight,
            e.ratio_milli as f64 / 1000.0,
            e.bound_milli as f64 / 1000.0,
            e.rounds,
            e.messages,
            e.repair_wall_ns as f64 / 1e6,
            e.scratch_wall_ns as f64 / 1e6,
            e.speedup_milli as f64 / 1000.0,
        );
    }
    let fast = report
        .entries
        .iter()
        .filter(|e| e.speedup_milli >= 2000)
        .count();
    println!(
        "\nchurn gate: every repair feasible, within the certified bound, <= scratch weight; \
         replay bit-identical across thread counts; >=2x speedup on {fast} of {} steps",
        report.entries.len()
    );
    ExitCode::SUCCESS
}

fn run_service(args: &Args) -> ExitCode {
    let out_path = args
        .out
        .clone()
        .unwrap_or_else(|| "BENCH_service.json".into());
    // collect() panics (non-zero exit) if a determinism or allocation
    // guarantee is violated — those asserts are this mode's gate.
    let report = service::collect(args.quick);
    if let Err(e) = std::fs::write(&out_path, report.to_json()) {
        eprintln!("cannot write {out_path}: {e}");
        return ExitCode::FAILURE;
    }

    println!(
        "# bench_runner --service ({} mode) -> {out_path}\n# {}\n# {}\n",
        report.mode,
        threads_header(),
        sched_obs_header()
    );
    println!(
        "{:<44} {:>5} {:>3} {:>9} {:>11} {:>7} {:>7} {:>12} {:>10}",
        "workload", "jobs", "w", "rounds", "messages", "reuses", "builds", "wall", "solves/s"
    );
    for e in &report.entries {
        println!(
            "{:<44} {:>5} {:>3} {:>9} {:>11} {:>7} {:>7} {:>9.3} ms {:>10.3}",
            e.name,
            e.jobs,
            e.workers,
            e.rounds,
            e.messages,
            e.arena_reuses,
            e.arena_builds,
            e.wall_ns as f64 / 1e6,
            e.solves_per_sec_milli as f64 / 1000.0,
        );
    }
    println!(
        "\nservice gate: batched == sequential (bit-identical) and 0 steady-state arena builds"
    );
    ExitCode::SUCCESS
}

fn run_conformance(args: &Args) -> ExitCode {
    let out_path = args
        .out
        .clone()
        .unwrap_or_else(|| "BENCH_conformance.json".into());
    let report = conformance::collect(args.quick);
    if let Err(e) = std::fs::write(&out_path, report.to_json()) {
        eprintln!("cannot write {out_path}: {e}");
        return ExitCode::FAILURE;
    }

    println!(
        "# bench_runner --conformance ({} mode) -> {out_path}\n# {}\n# {}\n",
        report.mode,
        threads_header(),
        sched_obs_header()
    );
    println!(
        "{:<28} {:>11} {:>11} {:>11}",
        "family/solver", "min ratio", "mean ratio", "max ratio"
    );
    for (key, min, mean, max) in report.family_summary() {
        println!(
            "{key:<28} {:>11.3} {:>11.3} {:>11.3}",
            min as f64 / 1000.0,
            mean as f64 / 1000.0,
            max as f64 / 1000.0
        );
    }
    println!(
        "\n{:<22} {:>7} {:>9} {:>11} {:>11} {:>11}",
        "solver", "entries", "families", "mean ratio", "max ratio", "max bound"
    );
    for s in &report.solvers {
        println!(
            "{:<22} {:>7} {:>9} {:>11.3} {:>11.3} {:>11.3}",
            s.solver,
            s.entries,
            s.families,
            s.mean_ratio_milli as f64 / 1000.0,
            s.max_ratio_milli as f64 / 1000.0,
            s.max_bound_milli as f64 / 1000.0
        );
    }
    let (beaten, compared) = conformance::families_beating_det(&report.entries);
    println!(
        "\ngreedy+local_search beats det's mean ratio on {beaten} of {compared} \
         families (gate: >= {})",
        compared.div_ceil(2)
    );
    println!(
        "{} records over {} mode corpus (ratio = weight / certified upper bound)",
        report.entries.len(),
        report.mode
    );

    if report.violations.is_empty() {
        println!("conformance gate: no violations");
        ExitCode::SUCCESS
    } else {
        eprintln!("\nconformance gate FAILED ({}):", report.violations.len());
        for v in &report.violations {
            eprintln!("  {v}");
        }
        ExitCode::FAILURE
    }
}

fn run_executor(args: &Args) -> ExitCode {
    let default_out = if args.scale_xl || args.scale {
        "BENCH_scale.json"
    } else {
        "BENCH_executor.json"
    };
    let out_path = args.out.clone().unwrap_or_else(|| default_out.into());
    let report = if args.scale_xl {
        perf::collect_scale_xl(args.quick)
    } else if args.scale {
        perf::collect_scale(args.quick)
    } else {
        perf::collect(args.quick)
    };
    let json = report.to_json();
    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("cannot write {out_path}: {e}");
        return ExitCode::FAILURE;
    }

    println!(
        "# bench_runner ({} mode) -> {out_path}\n# {}\n# {}\n",
        report.mode,
        threads_header(),
        sched_obs_header()
    );
    println!(
        "{:<44} {:>8} {:>9} {:>3} {:>9} {:>11} {:>12} {:>12} {:>8} {:>7} {:>6} {:>10}",
        "workload",
        "n",
        "m",
        "t",
        "rounds",
        "messages",
        "activations",
        "mean wall",
        "speedup",
        "steals",
        "util",
        "mem peak"
    );
    for e in &report.entries {
        let speedup = e
            .speedup_milli
            .map(|s| format!("{:.2}x", s as f64 / 1000.0))
            .unwrap_or_else(|| "-".into());
        let mem = e
            .mem_peak_bytes
            .map(|b| format!("{:.1} MiB", b as f64 / (1 << 20) as f64))
            .unwrap_or_else(|| "-".into());
        let steals = e
            .steals
            .map(|s| s.to_string())
            .unwrap_or_else(|| "-".into());
        let util = e
            .utilization_milli
            .map(|u| format!("{:.0}%", u as f64 / 10.0))
            .unwrap_or_else(|| "-".into());
        println!(
            "{:<44} {:>8} {:>9} {:>3} {:>9} {:>11} {:>12} {:>9.3} ms {:>8} {:>7} {:>6} {:>10}",
            e.name,
            e.n,
            e.m,
            e.threads,
            e.rounds,
            e.messages,
            e.activations,
            e.wall_ns.mean as f64 / 1e6,
            speedup,
            steals,
            util,
            mem,
        );
    }

    if args.scale_xl {
        println!(
            "\nscale-xl gate: t=1/t=4 metrics bit-identical and peak memory within \
             {} B/node",
            perf::XL_BYTES_PER_NODE_BUDGET
        );
    }

    let Some(baseline_path) = &args.check else {
        return ExitCode::SUCCESS;
    };
    let baseline = match std::fs::read_to_string(baseline_path)
        .map_err(|e| e.to_string())
        .and_then(|s| BenchReport::parse(&s))
    {
        Ok(b) => b,
        Err(e) => {
            eprintln!("cannot load baseline {baseline_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let drifts = report.diff_deterministic(&baseline);
    if drifts.is_empty() {
        println!("\nperf gate: no executor-metric drift vs {baseline_path}");
        ExitCode::SUCCESS
    } else {
        eprintln!("\nperf gate FAILED vs {baseline_path}:");
        for d in &drifts {
            eprintln!("  {d}");
        }
        eprintln!(
            "(intentional change? regenerate the baseline: copy {out_path} over {baseline_path})"
        );
        ExitCode::FAILURE
    }
}
