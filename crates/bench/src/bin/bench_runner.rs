//! Times the solvers and raw executor micro-benchmarks and emits the
//! machine-readable perf trajectory (`BENCH_executor.json`).
//!
//! ```text
//! cargo run -p dsf-bench --bin bench_runner --release                # full sizes
//! cargo run -p dsf-bench --bin bench_runner --release -- --quick    # CI smoke sizes
//! cargo run -p dsf-bench --bin bench_runner --release -- \
//!     --quick --check crates/bench/baselines/executor_quick.json    # regression gate
//! ```
//!
//! `--out PATH` overrides the output path. With `--check BASELINE` the
//! deterministic metrics (n, m, rounds, messages, activations) are
//! compared against the checked-in baseline and any drift exits non-zero;
//! wall-clock is report-only. After an intentional change, regenerate the
//! baseline by copying the fresh output over it.

use std::process::ExitCode;

use dsf_bench::perf::{self, BenchReport};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let flag_value = |flag: &str| {
        args.iter().position(|a| a == flag).map(|i| {
            args.get(i + 1).unwrap_or_else(|| {
                eprintln!("{flag} requires a path argument");
                std::process::exit(2);
            })
        })
    };
    let out_path = flag_value("--out")
        .cloned()
        .unwrap_or_else(|| "BENCH_executor.json".into());
    let check_path = flag_value("--check").cloned();

    let report = perf::collect(quick);
    let json = report.to_json();
    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("cannot write {out_path}: {e}");
        return ExitCode::FAILURE;
    }

    println!("# bench_runner ({} mode) -> {out_path}\n", report.mode);
    println!(
        "{:<44} {:>8} {:>8} {:>9} {:>11} {:>12} {:>12}",
        "workload", "n", "m", "rounds", "messages", "activations", "mean wall"
    );
    for e in &report.entries {
        println!(
            "{:<44} {:>8} {:>8} {:>9} {:>11} {:>12} {:>9.3} ms",
            e.name,
            e.n,
            e.m,
            e.rounds,
            e.messages,
            e.activations,
            e.wall_ns.mean as f64 / 1e6,
        );
    }

    let Some(baseline_path) = check_path else {
        return ExitCode::SUCCESS;
    };
    let baseline = match std::fs::read_to_string(&baseline_path)
        .map_err(|e| e.to_string())
        .and_then(|s| BenchReport::parse(&s))
    {
        Ok(b) => b,
        Err(e) => {
            eprintln!("cannot load baseline {baseline_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let drifts = report.diff_deterministic(&baseline);
    if drifts.is_empty() {
        println!("\nperf gate: no executor-metric drift vs {baseline_path}");
        ExitCode::SUCCESS
    } else {
        eprintln!("\nperf gate FAILED vs {baseline_path}:");
        for d in &drifts {
            eprintln!("  {d}");
        }
        eprintln!(
            "(intentional change? regenerate the baseline: copy {out_path} over {baseline_path})"
        );
        ExitCode::FAILURE
    }
}
