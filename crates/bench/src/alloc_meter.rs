//! Self-instrumented memory metering for the scale bench tiers.
//!
//! The `--scale-xl` tier reports a memory high-water mark next to
//! `speedup_milli` and asserts a bytes-per-node budget in-harness, so a
//! footprint regression (a struct growing, a `Vec<Vec<_>>` sneaking back
//! into a hot path) fails loudly instead of silently pushing the 10M-node
//! workload out of RAM. Rather than depending on an external profiler or
//! OS-specific RSS probes, the crate installs a counting
//! [`GlobalAlloc`] wrapper around the [`System`] allocator: every
//! (de)allocation in the process adjusts a live byte counter whose
//! maximum is tracked as the high-water mark.
//!
//! The counters are process-global and lock-free. [`reset_peak`] rebases
//! the mark to the current live size, so a harness can meter one workload
//! at a time: `reset_peak()` → build + run → [`peak_bytes`] −
//! the baseline [`current_bytes`] captured at the reset.
//!
//! The wrapper only counts requested sizes (`Layout::size`), not
//! allocator slack, so the numbers are slightly conservative — exactly
//! what a bytes-per-node *budget* wants: layout-independent and
//! bit-reproducible across machines for identical workloads.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Live allocated bytes (requested sizes).
static CUR: AtomicUsize = AtomicUsize::new(0);
/// High-water mark of [`CUR`] since the last [`reset_peak`].
static PEAK: AtomicUsize = AtomicUsize::new(0);

/// A [`System`]-backed allocator that maintains [`current_bytes`] /
/// [`peak_bytes`]. Installed as the crate's `#[global_allocator]`, so
/// every binary and test linking `dsf-bench` is metered.
pub struct CountingAlloc;

#[inline]
fn on_alloc(size: usize) {
    let live = CUR.fetch_add(size, Ordering::Relaxed) + size;
    PEAK.fetch_max(live, Ordering::Relaxed);
}

#[inline]
fn on_dealloc(size: usize) {
    CUR.fetch_sub(size, Ordering::Relaxed);
}

// SAFETY: delegates all allocation to `System` unchanged; the wrapper
// only adjusts counters and never fabricates or retains pointers.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc(layout);
        if !p.is_null() {
            on_alloc(layout.size());
        }
        p
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc_zeroed(layout);
        if !p.is_null() {
            on_alloc(layout.size());
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
        on_dealloc(layout.size());
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = System.realloc(ptr, layout, new_size);
        if !p.is_null() {
            if new_size >= layout.size() {
                on_alloc(new_size - layout.size());
            } else {
                on_dealloc(layout.size() - new_size);
            }
        }
        p
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Bytes currently allocated and not yet freed (requested sizes).
pub fn current_bytes() -> usize {
    CUR.load(Ordering::Relaxed)
}

/// The high-water mark of [`current_bytes`] since the last
/// [`reset_peak`] (or process start).
pub fn peak_bytes() -> usize {
    PEAK.load(Ordering::Relaxed)
}

/// Rebases the high-water mark to the current live size, starting a new
/// metering window. Call before building the workload under measurement;
/// the workload's footprint is then `peak_bytes() - current_bytes()` as
/// of this call.
pub fn reset_peak() {
    PEAK.store(CUR.load(Ordering::Relaxed), Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peak_tracks_allocation_high_water() {
        // The counters are process-global and other tests run in
        // parallel, so assert with a dominating allocation (64 MiB) and
        // half-size slack rather than exact equalities.
        const BIG: usize = 64 << 20;
        reset_peak();
        let base = current_bytes();
        let big = vec![1u8; BIG];
        assert!(current_bytes() >= base + BIG / 2);
        assert!(peak_bytes() >= base + BIG / 2);
        drop(big);
        // Live drops back; the mark stays.
        assert!(current_bytes() < base + BIG / 2);
        assert!(peak_bytes() >= base + BIG / 2);
        // A reset rebases the mark down to (about) the live size.
        reset_peak();
        assert!(peak_bytes() < base + BIG / 2);
    }
}
