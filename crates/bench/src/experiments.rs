//! Experiments E1–E13 (DESIGN.md §4): each regenerates the quantitative
//! content of one of the paper's claims.

use dsf_baselines::khan::{solve_khan, KhanConfig};
use dsf_baselines::solve_collect_at_root;
use dsf_congest::CongestConfig;
use dsf_core::det::{solve_deterministic, solve_growth, DetConfig, GrowthConfig};
use dsf_core::randomized::{solve_randomized, RandConfig};
use dsf_core::transforms;
use dsf_embed::{le_lists, random_ranks, Embedding, EmbeddingConfig};
use dsf_graph::dyadic::Dyadic;
use dsf_graph::{dijkstra, generators, metrics, mst, NodeId};
use dsf_lower_bounds::{measure_cr_gadget, measure_ic_gadget};
use dsf_steiner::{
    exact, moat, moat_rounded, random_instance, ConnectionRequests, InstanceBuilder,
};

use crate::table::{f3, Table};

fn stats(xs: &[f64]) -> (f64, f64, f64) {
    let min = xs.iter().copied().fold(f64::INFINITY, f64::min);
    let max = xs.iter().copied().fold(0.0f64, f64::max);
    let mean = xs.iter().sum::<f64>() / xs.len().max(1) as f64;
    (min, mean, max)
}

/// E1 — Theorem 4.1 / Lemma C.4: Algorithm 1 is 2-approximate and its dual
/// lower-bounds OPT.
pub fn e1_centralized_two_approx(quick: bool) -> Vec<Table> {
    let seeds: u64 = if quick { 4 } else { 20 };
    let mut t = Table::new(
        "E1 — Algorithm 1 (centralized moat growing): ratio to OPT and dual certificate",
        &[
            "graph",
            "n",
            "k",
            "ratio min",
            "ratio mean",
            "ratio max",
            "dual/OPT mean",
            "2·dual ≥ W(F) always",
        ],
    );
    for (label, mk) in [("G(n,p)", true), ("geometric", false)] {
        let mut ratios = Vec::new();
        let mut dual_fracs = Vec::new();
        let mut certified = true;
        for seed in 0..seeds {
            let g = if mk {
                generators::gnp_connected(16, 0.25, 12, seed)
            } else {
                generators::random_geometric(16, 0.4, seed)
            };
            let inst = random_instance(&g, 3, 2, seed + 77);
            let run = moat::grow(&g, &inst);
            let opt = exact::solve(&g, &inst).weight as f64;
            let w = run.forest.weight(&g) as f64;
            ratios.push(w / opt);
            dual_fracs.push(run.dual.to_f64() / opt);
            certified &= w <= 2.0 * run.dual.to_f64() + 1e-9;
        }
        let (mn, me, mx) = stats(&ratios);
        let (_, dm, _) = stats(&dual_fracs);
        t.row(vec![
            label.into(),
            "16".into(),
            "3".into(),
            f3(mn),
            f3(me),
            f3(mx),
            f3(dm),
            if certified { "yes" } else { "NO" }.into(),
        ]);
    }
    t.note(
        "Paper: ratio ≤ 2 (Theorem 4.1); dual Σ actᵢμᵢ ≤ OPT (Lemma C.4). \
         Measured ratios stay below 2 and the primal-dual certificate \
         W(F) < 2·dual holds on every instance.",
    );
    vec![t]
}

/// E2 — Theorem 4.2: Algorithm 2's `(2+ε)` guarantee degrades gently in ε.
pub fn e2_rounded_epsilon(quick: bool) -> Vec<Table> {
    let seeds: u64 = if quick { 4 } else { 16 };
    let mut t = Table::new(
        "E2 — Algorithm 2 (rounded radii): ratio and growth phases vs ε",
        &[
            "ε",
            "ratio mean",
            "ratio max",
            "bound 2+ε",
            "growth phases mean",
        ],
    );
    for (eps, label) in [
        (Dyadic::new(1, 3), "1/8"),
        (Dyadic::new(1, 1), "1/2"),
        (Dyadic::from_int(1), "1"),
        (Dyadic::from_int(2), "2"),
    ] {
        let mut ratios = Vec::new();
        let mut phases = Vec::new();
        for seed in 0..seeds {
            let g = generators::gnp_connected(16, 0.25, 12, seed + 30);
            let inst = random_instance(&g, 3, 2, seed);
            let run = moat_rounded::grow_rounded(&g, &inst, eps);
            let opt = exact::solve(&g, &inst).weight as f64;
            ratios.push(run.forest.weight(&g) as f64 / opt);
            phases.push(run.growth_phases as f64);
        }
        let (_, me, mx) = stats(&ratios);
        let (_, pm, _) = stats(&phases);
        t.row(vec![
            label.into(),
            f3(me),
            f3(mx),
            f3(2.0 + eps.to_f64()),
            f3(pm),
        ]);
    }
    t.note(
        "Paper: (2+ε)-approximation with O(log WD/ε) growth phases \
         (Theorem 4.2, Lemma F.1). Measured max ratio stays within the bound \
         and phases shrink as ε grows.",
    );
    vec![t]
}

/// E3 — Theorem 4.17: deterministic distributed rounds scale like `O(ks+t)`
/// and the output matches centralized Algorithm 1.
pub fn e3_deterministic_rounds(quick: bool) -> Vec<Table> {
    let mut k_table = Table::new(
        "E3a — deterministic distributed: k-sweep on a 4×8 grid (s ≈ const)",
        &[
            "k",
            "t",
            "s",
            "D",
            "phases",
            "rounds",
            "rounds/k",
            "matches Alg 1",
        ],
    );
    let grid = generators::grid(4, 8, 6, 9);
    let p = metrics::parameters(&grid);
    let kmax = if quick { 3 } else { 6 };
    for k in 1..=kmax {
        let inst = random_instance(&grid, k, 2, 5);
        let out = solve_deterministic(&grid, &inst, &DetConfig::default()).unwrap();
        let central = moat::grow(&grid, &inst);
        k_table.row(vec![
            k.to_string(),
            inst.t().to_string(),
            p.shortest_path_diameter.to_string(),
            p.diameter.to_string(),
            out.phases.to_string(),
            out.rounds.total().to_string(),
            f3(out.rounds.total() as f64 / k as f64),
            if out.forest.weight(&grid) == central.forest.weight(&grid) {
                "yes"
            } else {
                "NO"
            }
            .into(),
        ]);
    }
    k_table.note(
        "Paper: O(ks + t) rounds (Theorem 4.17), ≤ 2k merge phases \
         (Lemma 4.4), output identical to Algorithm 1 (Lemma 4.13). \
         Rounds grow roughly linearly in k at fixed s.",
    );

    let mut s_table = Table::new(
        "E3b — deterministic distributed: s-sweep on paths (k = 2 fixed)",
        &["n", "s", "rounds", "rounds/s"],
    );
    let sizes: &[usize] = if quick { &[12, 24] } else { &[12, 24, 36, 48] };
    for &n in sizes {
        let g = generators::path(n, 3);
        let quarter = n / 4;
        let inst = InstanceBuilder::new(&g)
            .component(&[NodeId(0), NodeId(quarter as u32)])
            .component(&[NodeId((n - 1 - quarter) as u32), NodeId((n - 1) as u32)])
            .build()
            .unwrap();
        let out = solve_deterministic(&g, &inst, &DetConfig::default()).unwrap();
        let s = metrics::shortest_path_diameter(&g);
        s_table.row(vec![
            n.to_string(),
            s.to_string(),
            out.rounds.total().to_string(),
            f3(out.rounds.total() as f64 / s as f64),
        ]);
    }
    s_table.note("Rounds grow linearly in s at fixed k — the `ks` term of Theorem 4.17.");
    vec![k_table, s_table]
}

/// E4 — Theorem 5.2 vs \[14\]: the improved selection multiplexes components
/// while the baseline pays per component.
pub fn e4_randomized_vs_khan(quick: bool) -> Vec<Table> {
    let mut t = Table::new(
        "E4 — rounds vs k: randomized (Thm 5.2) vs Khan et al. [14] baseline",
        &["k", "randomized rounds", "khan rounds", "khan/randomized"],
    );
    let n = if quick { 24 } else { 40 };
    let g = generators::gnp_connected(n, 0.12, 10, 5);
    let ks: &[usize] = if quick { &[1, 2, 4] } else { &[1, 2, 4, 6, 8] };
    for &k in ks {
        let inst = random_instance(&g, k, 2, 1);
        let rand_out = solve_randomized(
            &g,
            &inst,
            &RandConfig {
                seed: 2,
                repetitions: 1,
                force_truncation: Some(false),
                ..RandConfig::default()
            },
        )
        .unwrap();
        let khan_out = solve_khan(
            &g,
            &inst,
            &KhanConfig {
                seed: 2,
                repetitions: 1,
            },
        )
        .unwrap();
        let r = rand_out.rounds.total();
        let kh = khan_out.rounds.total();
        t.row(vec![
            k.to_string(),
            r.to_string(),
            kh.to_string(),
            f3(kh as f64 / r as f64),
        ]);
    }
    t.note(
        "Paper: [14] takes Õ(sk); the improved selection is Õ(s + k) per \
         embedding (Section 5). The baseline/improved ratio grows with k — \
         the paper's headline improvement.",
    );
    vec![t]
}

/// E5 — Theorem 5.2 quality: O(log n) approximation; embedding stretch.
pub fn e5_randomized_quality(quick: bool) -> Vec<Table> {
    let seeds: u64 = if quick { 4 } else { 12 };
    let mut t = Table::new(
        "E5a — randomized algorithm: ratio to OPT (3 embeddings/run)",
        &["n", "ratio min", "ratio mean", "ratio max", "3·ln n"],
    );
    for &n in &[16usize, 20] {
        let mut ratios = Vec::new();
        for seed in 0..seeds {
            let g = generators::gnp_connected(n, 0.25, 10, seed + 40);
            let inst = random_instance(&g, 2, 2, seed);
            let out = solve_randomized(
                &g,
                &inst,
                &RandConfig {
                    seed,
                    ..RandConfig::default()
                },
            )
            .unwrap();
            let opt = exact::solve(&g, &inst).weight as f64;
            ratios.push(out.forest.weight(&g) as f64 / opt);
        }
        let (mn, me, mx) = stats(&ratios);
        t.row(vec![
            n.to_string(),
            f3(mn),
            f3(me),
            f3(mx),
            f3(3.0 * (n as f64).ln()),
        ]);
    }
    t.note("Paper: O(log n)-approximation w.h.p. (Theorem 5.2).");

    let mut s = Table::new(
        "E5b — tree embedding stretch (expected O(log n), [14])",
        &[
            "n",
            "mean stretch",
            "p95 stretch",
            "max stretch",
            "dominates d_G",
        ],
    );
    let n = if quick { 24 } else { 40 };
    let g = generators::random_geometric(n, 0.3, 7);
    let ap = dijkstra::all_pairs(&g);
    let mut all: Vec<f64> = Vec::new();
    let mut dominated = true;
    for seed in 0..seeds {
        let emb = Embedding::build(&g, &EmbeddingConfig::new(seed));
        for u in 0..g.n() {
            for v in (u + 1)..g.n() {
                let dt = emb.tree_distance(NodeId::from(u), NodeId::from(v));
                dominated &= dt >= ap[u][v];
                all.push(dt as f64 / ap[u][v] as f64);
            }
        }
    }
    all.sort_by(f64::total_cmp);
    let (_, mean, max) = stats(&all);
    let p95 = all[(all.len() as f64 * 0.95) as usize];
    s.row(vec![
        n.to_string(),
        f3(mean),
        f3(p95),
        f3(max),
        if dominated { "yes" } else { "NO" }.into(),
    ]);
    s.note("Domination d_T ≥ d_G holds on every pair; stretch is O(log n)-flavoured.");
    vec![t, s]
}

/// E6 — Lemma G.1(2): only O(log n) distinct root-paths traverse any node.
pub fn e6_path_congestion(quick: bool) -> Vec<Table> {
    let mut t = Table::new(
        "E6 — per-node distinct path destinations and LE-list sizes",
        &[
            "n",
            "max paths/node",
            "mean paths/node",
            "max |LE list|",
            "mean |LE list|",
            "log2 n",
        ],
    );
    let sizes: &[usize] = if quick { &[32] } else { &[32, 64, 96] };
    for &n in sizes {
        let g = generators::gnp_connected(n, 3.0 / n as f64, 12, 3);
        let emb = Embedding::build(&g, &EmbeddingConfig::new(11));
        let counts: Vec<f64> = g.nodes().map(|v| emb.path_count(v) as f64).collect();
        let (_, cm, cx) = stats(&counts);
        let lists = le_lists(&g, &random_ranks(n, 11));
        let sizes_le: Vec<f64> = lists.iter().map(|l| l.len() as f64).collect();
        let (_, lm, lx) = stats(&sizes_le);
        t.row(vec![
            n.to_string(),
            cx.to_string(),
            f3(cm),
            lx.to_string(),
            f3(lm),
            f3((n as f64).log2()),
        ]);
    }
    t.note(
        "Paper: w.h.p. at most O(log n) distinct least-weight paths pass \
         through any node (Section 5 / Lemma G.1), and E|LE list| = H_n. \
         Both statistics track log n.",
    );
    vec![t]
}

/// E7 — MST specialization: k=1, t=n ⇒ the deterministic algorithm returns
/// an exact MST (paper Section 1, Main Techniques).
pub fn e7_mst_specialization(quick: bool) -> Vec<Table> {
    let seeds: u64 = if quick { 3 } else { 8 };
    let mut t = Table::new(
        "E7 — MST specialization (k=1, t=n): exactness check",
        &["n", "seeds", "exact MST weight always", "mean rounds"],
    );
    for &n in &[10usize, 14] {
        let mut all_exact = true;
        let mut rounds = Vec::new();
        for seed in 0..seeds {
            let g = generators::gnp_connected(n, 0.3, 20, seed + 3);
            let all: Vec<NodeId> = g.nodes().collect();
            let inst = InstanceBuilder::new(&g).component(&all).build().unwrap();
            let out = solve_deterministic(&g, &inst, &DetConfig::default()).unwrap();
            all_exact &= out.forest.weight(&g) == mst::kruskal(&g).weight;
            rounds.push(out.rounds.total() as f64);
        }
        let (_, rm, _) = stats(&rounds);
        t.row(vec![
            n.to_string(),
            seeds.to_string(),
            if all_exact { "yes" } else { "NO" }.into(),
            f3(rm),
        ]);
    }
    t.note(
        "Paper: for k=1 the output is induced by an MST of the terminal \
         metric; with t=n this is exactly the graph MST.",
    );
    vec![t]
}

/// E8 — Lemmas 2.3/2.4: transformation rounds scale with t (resp. k).
pub fn e8_transformations(quick: bool) -> Vec<Table> {
    let mut t = Table::new(
        "E8a — DSF-CR → DSF-IC (Lemma 2.3): rounds vs t on a 32-path",
        &["t", "D", "rounds", "rounds/(t+D)"],
    );
    let n = 32usize;
    let g = generators::path(n, 1);
    let cfg = CongestConfig::for_graph(&g);
    let ts: &[u32] = if quick { &[4, 12] } else { &[4, 8, 12, 16, 20] };
    for &tt in ts {
        let mut cr = ConnectionRequests::new(n);
        for i in 0..tt / 2 {
            cr.request(NodeId(i), NodeId(n as u32 - 1 - i));
        }
        let (_, ledger) = transforms::cr_to_ic(&g, &cr, &cfg).unwrap();
        let d = (n - 1) as f64;
        t.row(vec![
            tt.to_string(),
            (n - 1).to_string(),
            ledger.total().to_string(),
            f3(ledger.total() as f64 / (tt as f64 + d)),
        ]);
    }
    t.note("Paper: O(t + D) rounds. The normalized column stays near a constant.");

    let mut m = Table::new(
        "E8b — minimalization (Lemma 2.4): rounds vs k on a 32-path",
        &["k", "rounds", "rounds/(k+D)"],
    );
    let ks: &[usize] = if quick { &[2, 6] } else { &[2, 4, 6, 8, 10] };
    for &k in ks {
        let mut b = InstanceBuilder::new(&g);
        for c in 0..k {
            b = b.component(&[NodeId(2 * c as u32), NodeId(2 * c as u32 + 1)]);
        }
        // Add singletons to give the transform something to drop.
        for c in 0..k {
            b = b.component(&[NodeId((2 * k + c) as u32)]);
        }
        let inst = b.build().unwrap();
        let (min, ledger) = transforms::minimalize(&g, &inst, &cfg).unwrap();
        assert_eq!(min.k(), k);
        let d = (n - 1) as f64;
        m.row(vec![
            (2 * k).to_string(),
            ledger.total().to_string(),
            f3(ledger.total() as f64 / (2.0 * k as f64 + d)),
        ]);
    }
    m.note("Paper: O(k + D) rounds regardless of t.");
    vec![t, m]
}

/// E9 — Figure 1 left / Lemma 3.1: DSF-CR gadget cut communication.
pub fn e9_cr_gadget(quick: bool) -> Vec<Table> {
    let mut t = Table::new(
        "E9 — DSF-CR gadget (Figure 1 left): bits over the 4-edge cut",
        &[
            "universe",
            "instance",
            "decoded",
            "correct",
            "cut bits",
            "bits/universe",
        ],
    );
    let sizes: &[usize] = if quick { &[8, 16] } else { &[8, 16, 32, 48] };
    for &u in sizes {
        for intersect in [false, true] {
            let exp = measure_cr_gadget(u, intersect, 7);
            t.row(vec![
                u.to_string(),
                if intersect { "A∩B≠∅" } else { "disjoint" }.into(),
                if exp.decoded_disjoint {
                    "disjoint"
                } else {
                    "A∩B≠∅"
                }
                .into(),
                if exp.correct() { "yes" } else { "NO" }.into(),
                exp.cut_bits.to_string(),
                f3(exp.cut_bits as f64 / u as f64),
            ]);
        }
    }
    t.note(
        "Paper (Lemma 3.1): any finite-ratio DSF-CR algorithm solves Set \
         Disjointness through this gadget, so Ω(t) bits must cross the cut. \
         Decoding from our solver's output is always correct, and the \
         measured bits grow linearly in the universe (bits/universe ≈ const).",
    );
    vec![t]
}

/// E10 — Figure 1 right / Lemma 3.3: DSF-IC gadget cut communication.
pub fn e10_ic_gadget(quick: bool) -> Vec<Table> {
    let mut t = Table::new(
        "E10 — DSF-IC gadget (Figure 1 right): bits over the (a0,b0) bridge",
        &["universe (=k)", "instance", "correct", "cut bits", "bits/k"],
    );
    let sizes: &[usize] = if quick { &[8, 16] } else { &[8, 16, 32, 48] };
    for &u in sizes {
        for intersect in [false, true] {
            let exp = measure_ic_gadget(u, intersect, 9);
            t.row(vec![
                u.to_string(),
                if intersect { "A∩B≠∅" } else { "disjoint" }.into(),
                if exp.correct() { "yes" } else { "NO" }.into(),
                exp.cut_bits.to_string(),
                f3(exp.cut_bits as f64 / u as f64),
            ]);
        }
    }
    t.note(
        "Paper (Lemma 3.3): Ω(k) bits must cross the single bridge edge. \
         The Lemma 2.4 minimalization is where our pipeline pays it: \
         deciding which of the k labels spans both stars is exactly the Set \
         Disjointness computation.",
    );
    vec![t]
}

/// E11 — the headline comparison (paper §1): all algorithms on one suite.
pub fn e11_headline(quick: bool) -> Vec<Table> {
    let mut t = Table::new(
        "E11 — headline: rounds and weight on a common instance suite",
        &["graph", "algorithm", "guarantee", "rounds", "weight"],
    );
    let n = if quick { 24 } else { 36 };
    let g = generators::gnp_connected(n, 0.12, 10, 13);
    let inst = random_instance(&g, 4, 2, 13);
    let det = solve_deterministic(&g, &inst, &DetConfig::default()).unwrap();
    let growth = solve_growth(&g, &inst, &GrowthConfig::default()).unwrap();
    let rand_out = solve_randomized(
        &g,
        &inst,
        &RandConfig {
            seed: 13,
            repetitions: 3,
            ..RandConfig::default()
        },
    )
    .unwrap();
    let khan = solve_khan(
        &g,
        &inst,
        &KhanConfig {
            seed: 13,
            repetitions: 3,
        },
    )
    .unwrap();
    let collect = solve_collect_at_root(&g, &inst).unwrap();
    let label = format!("G({n},0.12), k=4");
    for (alg, guar, rounds, weight) in [
        (
            "deterministic (Thm 4.17)",
            "2",
            det.rounds.total(),
            det.forest.weight(&g),
        ),
        (
            "growth phases (Cor 4.20, ε=1/2)",
            "2.5",
            growth.rounds.total(),
            growth.forest.weight(&g),
        ),
        (
            "randomized (Thm 5.2)",
            "O(log n)",
            rand_out.rounds.total(),
            rand_out.forest.weight(&g),
        ),
        (
            "Khan et al. [14]",
            "O(log n)",
            khan.rounds.total(),
            khan.forest.weight(&g),
        ),
        (
            "collect-at-root",
            "2",
            collect.rounds.total(),
            collect.forest.weight(&g),
        ),
    ] {
        t.row(vec![
            label.clone(),
            alg.into(),
            guar.into(),
            rounds.to_string(),
            weight.to_string(),
        ]);
    }
    t.note(
        "The deterministic algorithm wins on quality; the randomized one \
         trades weight for fewer rounds at larger k; the [14] baseline pays \
         the per-component selection; collect-at-root pays m.",
    );
    vec![t]
}

/// E12 — Corollary 4.20: the growth-phase variant vs the plain driver as
/// the terminal count grows.
pub fn e12_growth_phases(quick: bool) -> Vec<Table> {
    let mut t = Table::new(
        "E12 — growth-phase variant vs Theorem 4.17 driver",
        &[
            "k",
            "t",
            "det rounds",
            "det phases",
            "growth rounds",
            "growth merge-phases",
            "growth checkpoints",
        ],
    );
    let ks: &[usize] = if quick { &[2, 4] } else { &[2, 4, 6, 8] };
    for &k in ks {
        let g = generators::caterpillar(10, 3, 4, 3);
        let inst = random_instance(&g, k, 3, 3);
        let det = solve_deterministic(&g, &inst, &DetConfig::default()).unwrap();
        let growth = solve_growth(&g, &inst, &GrowthConfig::default()).unwrap();
        t.row(vec![
            k.to_string(),
            inst.t().to_string(),
            det.rounds.total().to_string(),
            det.phases.to_string(),
            growth.rounds.total().to_string(),
            growth.merge_phases.to_string(),
            growth.growth_phases.to_string(),
        ]);
    }
    t.note(
        "Paper: Algorithm 2's activity changes are confined to O(log WD/ε) \
         checkpoints (Lemma F.1), the prerequisite for the Õ(sk+√min{st,n}) \
         bound of Corollary 4.20/4.21. Checkpoint counts stay flat as k and \
         t grow, while the plain driver's phase count tracks 2k.",
    );
    vec![t]
}

/// E13 — ablation: repetition amplification of the randomized algorithm
/// (the `c·log n` repetitions in the proof of Theorem 5.2).
pub fn e13_repetition_ablation(quick: bool) -> Vec<Table> {
    let mut t = Table::new(
        "E13 — ablation: randomized quality and rounds vs repetition count",
        &["repetitions", "ratio mean", "ratio max", "rounds mean"],
    );
    let seeds: u64 = if quick { 4 } else { 10 };
    let reps_list: &[usize] = if quick { &[1, 3] } else { &[1, 2, 4, 8] };
    for &reps in reps_list {
        let mut ratios = Vec::new();
        let mut rounds = Vec::new();
        for seed in 0..seeds {
            let g = generators::gnp_connected(16, 0.25, 10, seed + 70);
            let inst = random_instance(&g, 2, 2, seed);
            let out = solve_randomized(
                &g,
                &inst,
                &RandConfig {
                    seed,
                    repetitions: reps,
                    force_truncation: Some(false),
                    ..RandConfig::default()
                },
            )
            .unwrap();
            let opt = exact::solve(&g, &inst).weight as f64;
            ratios.push(out.forest.weight(&g) as f64 / opt);
            rounds.push(out.rounds.total() as f64);
        }
        let (_, rm, rx) = stats(&ratios);
        let (_, rd, _) = stats(&rounds);
        t.row(vec![reps.to_string(), f3(rm), f3(rx), f3(rd)]);
    }
    t.note(
        "Paper: the expected O(log n) stretch is amplified to w.h.p. by \
         c·log n independent embeddings, keeping the lightest (proof of \
         Theorem 5.2 via Markov). Quality improves with repetitions while \
         rounds grow linearly — the constant-factor knob of the algorithm.",
    );
    vec![t]
}

#[cfg(test)]
mod tests {
    #[test]
    fn all_experiments_run_quick() {
        for id in crate::ALL_EXPERIMENTS {
            let tables = crate::run_experiment(id, true);
            assert!(!tables.is_empty(), "{id} produced no tables");
            for t in &tables {
                assert!(!t.rows.is_empty(), "{id}: empty table {}", t.title);
            }
        }
    }
}
