//! The `bench_runner --service` mode: throughput of the batched solver
//! service (`dsf-service`) over the workloads corpus, with the
//! batching-determinism and zero-steady-state-allocation guarantees
//! asserted in-harness, emitted as `BENCH_service.json`.
//!
//! Two workload tiers:
//!
//! * **repeat** — one corpus instance solved `batch` times (solver kinds
//!   cycling, one seed per job) at batch sizes {1, 16, 256} and worker
//!   counts {1, 4}. Before an entry is emitted the harness asserts
//!   (a) every batched job is bit-identical — forest, full round ledger,
//!   ratio — to a one-at-a-time solve on a fresh session, and (b) the
//!   measured batch ran on warm sessions with **zero** arena builds
//!   (steady-state session reuse allocates nothing).
//! * **sweep** — the entire corpus tier streamed through the service as
//!   one deterministic batch per worker count, certificates attached, and
//!   the worker counts asserted bit-identical to each other.
//!
//! Like the `--scale` tier there is no checked-in baseline (`--check` is
//! rejected): wall-clock throughput is the product, and the correctness
//! gates are the in-harness asserts — a violated determinism or
//! allocation guarantee aborts the run.
//!
//! # JSON schema (`dsf-bench-service/v1`)
//!
//! ```json
//! {
//!   "schema": "dsf-bench-service/v1",
//!   "mode": "quick",
//!   "entries": [
//!     {"name": "service/repeat/gnp/batch=16/workers=4", "jobs": 16,
//!      "batch": 16, "workers": 4, "rounds": 2816, "messages": 70656,
//!      "arena_reuses": 96, "arena_builds": 0, "wall_ns": 1,
//!      "solves_per_sec_milli": 1}
//!   ]
//! }
//! ```
//!
//! `jobs`, `batch`, `workers`, `rounds`, `messages`, `arena_reuses`, and
//! `arena_builds` are deterministic (the queue's round-robin assignment is
//! static); `wall_ns` and `solves_per_sec_milli` are machine-dependent,
//! report-only, tracked as a trajectory via the CI artifact. One entry
//! object per line, same line-oriented convention as the executor schema.

use std::sync::Arc;

use dsf_service::{
    JobOutcome, ServiceConfig, ServiceReport, SolveRequest, SolverKind, SolverService,
    SolverSession,
};
use dsf_workloads::corpus::{stream, CorpusEntry, Tier};

/// Identifier of the emitted JSON layout.
pub const SCHEMA: &str = "dsf-bench-service/v1";

/// One service benchmark result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServiceBenchEntry {
    /// Workload id, e.g. `service/repeat/gnp/batch=16/workers=4`.
    pub name: String,
    /// Jobs executed by the measured batch.
    pub jobs: usize,
    /// Configured batch size.
    pub batch: usize,
    /// Worker sessions of the service.
    pub workers: usize,
    /// Sum of per-job total rounds (deterministic).
    pub rounds: u64,
    /// Sum of per-job delivered messages (deterministic).
    pub messages: u64,
    /// Arena checkouts served by in-place reuse during the measured batch
    /// (deterministic).
    pub arena_reuses: u64,
    /// Arena allocations during the measured batch (deterministic; 0 on a
    /// warm service).
    pub arena_builds: u64,
    /// Wall-clock of the measured batch in nanoseconds (report-only).
    pub wall_ns: u64,
    /// `1000 × jobs / seconds` (report-only).
    pub solves_per_sec_milli: u64,
}

/// A full `--service` report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServiceBenchReport {
    /// `"quick"` or `"full"`.
    pub mode: String,
    /// All entries, in a deterministic order.
    pub entries: Vec<ServiceBenchEntry>,
}

impl ServiceBenchReport {
    /// Serializes to the `dsf-bench-service/v1` JSON layout.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str(&format!("  \"schema\": \"{SCHEMA}\",\n"));
        s.push_str(&format!("  \"mode\": \"{}\",\n", self.mode));
        s.push_str("  \"entries\": [\n");
        for (i, e) in self.entries.iter().enumerate() {
            let comma = if i + 1 < self.entries.len() { "," } else { "" };
            s.push_str(&format!(
                "    {{\"name\": \"{}\", \"jobs\": {}, \"batch\": {}, \"workers\": {}, \
                 \"rounds\": {}, \"messages\": {}, \"arena_reuses\": {}, \
                 \"arena_builds\": {}, \"wall_ns\": {}, \"solves_per_sec_milli\": {}}}{comma}\n",
                e.name,
                e.jobs,
                e.batch,
                e.workers,
                e.rounds,
                e.messages,
                e.arena_reuses,
                e.arena_builds,
                e.wall_ns,
                e.solves_per_sec_milli,
            ));
        }
        s.push_str("  ]\n}\n");
        s
    }
}

/// The `batch` requests of the repeat workload: one instance, solver kinds
/// cycling, seed = job index.
fn repeat_requests(
    entry: &CorpusEntry,
    graph: &Arc<dsf_graph::WeightedGraph>,
    batch: usize,
) -> Vec<SolveRequest> {
    (0..batch)
        .map(|j| {
            let solver = SolverKind::ALL[j % SolverKind::ALL.len()];
            SolveRequest::new(
                format!("repeat/{}/{j}", solver.name()),
                graph.clone(),
                entry.instance.clone(),
                solver,
                j as u64,
            )
            .with_cert_upper(entry.certificate.upper)
        })
        .collect()
}

/// One deterministic-solver request per corpus entry, certificate attached.
fn sweep_requests(tier: Tier) -> Vec<SolveRequest> {
    stream(tier)
        .map(|entry| {
            let upper = entry.certificate.upper;
            SolveRequest::new(
                format!("sweep/{}", entry.id),
                Arc::new(entry.graph),
                entry.instance,
                SolverKind::Deterministic,
                0,
            )
            .with_cert_upper(upper)
        })
        .collect()
}

/// Asserts every batched job is bit-identical to its one-at-a-time twin.
fn assert_batched_matches(name: &str, report: &ServiceReport, baseline: &[JobOutcome]) {
    assert_eq!(
        report.jobs.len(),
        baseline.len(),
        "{name}: job count mismatch"
    );
    for (job, reference) in report.jobs.iter().zip(baseline) {
        assert!(
            job.deterministic_eq(reference),
            "{name}: batched job {} is not bit-identical to its sequential solve",
            job.id
        );
    }
    assert!(
        report.violations.is_empty(),
        "{name}: ledger violations {:?}",
        report.violations
    );
}

/// Runs a warmup batch plus the measured batch on a fresh service and
/// emits one entry, asserting determinism vs `baseline` and zero arena
/// builds on the warm repetition.
fn service_entry(
    name: &str,
    requests: &[SolveRequest],
    workers: usize,
    batch: usize,
    baseline: &[JobOutcome],
    entries: &mut Vec<ServiceBenchEntry>,
) {
    let mut service = SolverService::new(ServiceConfig {
        workers,
        ..Default::default()
    });
    let warmup = service
        .run_batch(requests)
        .expect("service batch runs clean");
    assert_batched_matches(name, &warmup, baseline);
    let warm_stats = service.pool_stats();
    let measured = service
        .run_batch(requests)
        .expect("service batch runs clean");
    assert_batched_matches(name, &measured, baseline);
    let stats = service.pool_stats();
    let builds = stats.builds - warm_stats.builds;
    assert_eq!(
        builds, 0,
        "{name}: steady-state session reuse must not allocate arenas"
    );
    entries.push(ServiceBenchEntry {
        name: name.to_string(),
        jobs: measured.jobs.len(),
        batch,
        workers,
        rounds: measured.total_rounds(),
        messages: measured.total_messages(),
        arena_reuses: stats.reuses - warm_stats.reuses,
        arena_builds: builds,
        wall_ns: measured.wall_ns,
        solves_per_sec_milli: measured.solves_per_sec_milli(),
    });
}

/// Runs every service workload and assembles the report.
///
/// `quick` selects the quick corpus tier (CI smoke); the workload
/// structure — batch sizes {1, 16, 256}, worker counts {1, 4}, repeat +
/// sweep tiers — is identical in both modes.
pub fn collect(quick: bool) -> ServiceBenchReport {
    let tier = if quick { Tier::Quick } else { Tier::Full };
    let batches = [1usize, 16, 256];
    let worker_counts = [1usize, 4];
    let mut entries = Vec::new();

    // Repeat tier: the first corpus instance, solved over and over. The
    // request list for a smaller batch is a prefix of the largest one, so
    // the one-at-a-time reference (fresh session per job) is solved once
    // at the largest size and sliced.
    let entry = stream(tier).next().expect("corpus is nonempty");
    let graph = Arc::new(entry.graph.clone());
    let max_batch = *batches.iter().max().expect("batch sizes are nonempty");
    let all_requests = repeat_requests(&entry, &graph, max_batch);
    let all_baseline: Vec<JobOutcome> = all_requests
        .iter()
        .map(|r| SolverSession::new().solve(r).expect("clean solve"))
        .collect();
    for batch in batches {
        let requests = &all_requests[..batch];
        let baseline = &all_baseline[..batch];
        for workers in worker_counts {
            service_entry(
                &format!(
                    "service/repeat/{}/batch={batch}/workers={workers}",
                    entry.family
                ),
                requests,
                workers,
                batch,
                baseline,
                &mut entries,
            );
        }
    }

    // Sweep tier: the whole corpus tier as one batch per worker count,
    // asserted bit-identical across worker counts.
    let requests = sweep_requests(tier);
    let baseline: Vec<JobOutcome> = requests
        .iter()
        .map(|r| SolverSession::new().solve(r).expect("clean solve"))
        .collect();
    for workers in worker_counts {
        service_entry(
            &format!(
                "service/sweep/det/batch={}/workers={workers}",
                requests.len()
            ),
            &requests,
            workers,
            requests.len(),
            &baseline,
            &mut entries,
        );
    }

    ServiceBenchReport {
        mode: if quick { "quick" } else { "full" }.to_string(),
        entries,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_has_schema_and_one_entry_per_line() {
        let report = ServiceBenchReport {
            mode: "quick".into(),
            entries: vec![ServiceBenchEntry {
                name: "service/repeat/gnp/batch=16/workers=4".into(),
                jobs: 16,
                batch: 16,
                workers: 4,
                rounds: 2816,
                messages: 70656,
                arena_reuses: 96,
                arena_builds: 0,
                wall_ns: 123,
                solves_per_sec_milli: 456,
            }],
        };
        let json = report.to_json();
        assert!(json.contains("\"schema\": \"dsf-bench-service/v1\""));
        assert!(json.contains("\"arena_builds\": 0"));
        assert_eq!(json.lines().filter(|l| l.contains("\"name\"")).count(), 1);
    }
}
