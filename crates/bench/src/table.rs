//! Markdown table rendering for the experiment harness.

use std::fmt;

/// A titled markdown table with a free-text note block.
#[derive(Debug, Clone, Default)]
pub struct Table {
    /// Section title.
    pub title: String,
    /// Column headers.
    pub header: Vec<String>,
    /// Rows (stringified cells).
    pub rows: Vec<Vec<String>>,
    /// Commentary rendered under the table (paper-vs-measured notes).
    pub notes: String,
}

impl Table {
    /// Starts a table.
    pub fn new(title: impl Into<String>, header: &[&str]) -> Self {
        Table {
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            notes: String::new(),
        }
    }

    /// Appends a row.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Sets the commentary.
    pub fn note(&mut self, notes: impl Into<String>) {
        self.notes = notes.into();
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "### {}\n", self.title)?;
        writeln!(f, "| {} |", self.header.join(" | "))?;
        writeln!(
            f,
            "|{}|",
            self.header
                .iter()
                .map(|_| "---")
                .collect::<Vec<_>>()
                .join("|")
        )?;
        for row in &self.rows {
            writeln!(f, "| {} |", row.join(" | "))?;
        }
        if !self.notes.is_empty() {
            writeln!(f, "\n{}", self.notes)?;
        }
        Ok(())
    }
}

/// Formats a float with three significant decimals.
pub(crate) fn f3(x: f64) -> String {
    format!("{x:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_markdown() {
        let mut t = Table::new("Demo", &["a", "b"]);
        t.row(vec!["1".into(), "2".into()]);
        t.note("note text");
        let s = format!("{t}");
        assert!(s.contains("### Demo"));
        assert!(s.contains("| a | b |"));
        assert!(s.contains("| 1 | 2 |"));
        assert!(s.contains("note text"));
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn arity_checked() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(vec!["1".into()]);
    }
}
