//! The `bench_runner --churn` mode: the incremental re-solve lab.
//!
//! Replays every seeded churn trace ([`dsf_workloads::churn`]) through
//! `dsf-service`'s delta API — `add_demand` / `remove_demand` /
//! `reweight_edge` repairing the cached forest — and measures the repair
//! against a from-scratch `greedy + local_search` solve of the same
//! post-delta instance, emitted as `BENCH_churn.json`.
//!
//! Three gates run in-harness before any entry is emitted; a violation
//! aborts the run (non-zero exit):
//!
//! * **Repair quality** — every repaired forest passes
//!   [`dsf_workloads::conformance::check_repaired`]: feasible on the
//!   post-delta instance, within the certified ratio envelope at
//!   [`conformance::GREEDY_FACTOR`], minimal (no dangling rollback
//!   edges), and never heavier than the from-scratch solve.
//! * **Thread-count bit-identity** — the whole trace is replayed under
//!   worker-thread counts 1 and 4; per step the repaired forest, its
//!   weight, the move count, and the deterministic anchor's
//!   rounds/messages must match bit-for-bit.
//! * **Majority speedup** — across all measured steps of the run, the
//!   repair must be at least 2× faster than the scratch solve on a
//!   strict majority.
//!
//! Each trace opens with [`ChurnTrace::warmup`] cache-seeding arrivals.
//! They are replayed and quality-gated like every other step (a bad seed
//! forest would poison the rest of the trace) but produce no entry and
//! do not count toward the speed gate: the tier measures churn against a
//! warm session, not the cost of first filling the cache.
//!
//! Like the `--scale` and `--service` tiers there is no checked-in
//! baseline (`--check` is rejected): wall-clock is the product and the
//! in-harness asserts are the gate.
//!
//! # JSON schema (`dsf-bench-churn/v1`)
//!
//! ```json
//! {
//!   "schema": "dsf-bench-churn/v1",
//!   "mode": "quick",
//!   "entries": [
//!     {"name": "churn/gnp/seed=0/step=03/add", "step": 3, "k": 3,
//!      "moves": 2, "weight": 41, "scratch_weight": 41,
//!      "ratio_milli": 1000, "bound_milli": 4000, "rounds": 310,
//!      "messages": 6200, "repair_wall_ns": 1, "scratch_wall_ns": 9,
//!      "speedup_milli": 9000}
//!   ]
//! }
//! ```
//!
//! `name`, `step`, `k`, `moves`, `weight`, `scratch_weight`,
//! `ratio_milli`, `bound_milli`, `rounds`, and `messages` are
//! deterministic (identical on every machine and thread count);
//! `repair_wall_ns`, `scratch_wall_ns`, and `speedup_milli` are
//! machine-dependent, report-only, tracked as a trajectory via the CI
//! artifact. One entry object per line, same line-oriented convention as
//! the executor schema.

use std::sync::Arc;
use std::time::Instant;

use dsf_service::{DemandId, SolveRequest, SolverKind, SolverSession};
use dsf_steiner::ForestSolution;
use dsf_workloads::certify;
use dsf_workloads::churn::{churn_traces, instance_of, ChurnOp, ChurnTrace};
use dsf_workloads::conformance;
use dsf_workloads::corpus::Tier;

/// Identifier of the emitted JSON layout.
pub const SCHEMA: &str = "dsf-bench-churn/v1";

/// One churn-trace step result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChurnBenchEntry {
    /// Step id, e.g. `churn/gnp/seed=0/step=03/add`.
    pub name: String,
    /// Step index within its trace.
    pub step: usize,
    /// Active demand components after the delta.
    pub k: usize,
    /// Local-search plus reroute moves the repair accepted
    /// (deterministic).
    pub moves: u64,
    /// Weight of the repaired forest (deterministic).
    pub weight: u64,
    /// Weight of the from-scratch `greedy + local_search` solve of the
    /// post-delta instance (deterministic).
    pub scratch_weight: u64,
    /// `⌈1000 · weight / cert_upper⌉` of the repaired forest
    /// (deterministic).
    pub ratio_milli: u64,
    /// The certified ratio ceiling the repair committed to, in milli
    /// units (deterministic).
    pub bound_milli: u64,
    /// Total rounds of the deterministic anchor solve on the post-delta
    /// instance (deterministic).
    pub rounds: u64,
    /// Messages delivered by the deterministic anchor solve
    /// (deterministic).
    pub messages: u64,
    /// Wall-clock of the delta repair in nanoseconds (report-only).
    pub repair_wall_ns: u64,
    /// Wall-clock of the from-scratch solve in nanoseconds (report-only).
    pub scratch_wall_ns: u64,
    /// `1000 × scratch_wall_ns / repair_wall_ns` (report-only).
    pub speedup_milli: u64,
}

/// A full `--churn` report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChurnBenchReport {
    /// `"quick"` or `"full"`.
    pub mode: String,
    /// All entries, trace by trace, step by step.
    pub entries: Vec<ChurnBenchEntry>,
}

impl ChurnBenchReport {
    /// Serializes to the `dsf-bench-churn/v1` JSON layout.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str(&format!("  \"schema\": \"{SCHEMA}\",\n"));
        s.push_str(&format!("  \"mode\": \"{}\",\n", self.mode));
        s.push_str("  \"entries\": [\n");
        for (i, e) in self.entries.iter().enumerate() {
            let comma = if i + 1 < self.entries.len() { "," } else { "" };
            s.push_str(&format!(
                "    {{\"name\": \"{}\", \"step\": {}, \"k\": {}, \"moves\": {}, \
                 \"weight\": {}, \"scratch_weight\": {}, \"ratio_milli\": {}, \
                 \"bound_milli\": {}, \"rounds\": {}, \"messages\": {}, \
                 \"repair_wall_ns\": {}, \"scratch_wall_ns\": {}, \
                 \"speedup_milli\": {}}}{comma}\n",
                e.name,
                e.step,
                e.k,
                e.moves,
                e.weight,
                e.scratch_weight,
                e.ratio_milli,
                e.bound_milli,
                e.rounds,
                e.messages,
                e.repair_wall_ns,
                e.scratch_wall_ns,
                e.speedup_milli,
            ));
        }
        s.push_str("  ]\n}\n");
        s
    }
}

/// The op's name segment in an entry id.
fn op_tag(op: &ChurnOp) -> &'static str {
    match op {
        ChurnOp::Add { .. } => "add",
        ChurnOp::Remove { .. } => "remove",
        ChurnOp::Reweight { .. } => "reweight",
    }
}

/// One replayed delta: the repair outcome plus the deterministic anchor
/// solve of the post-delta instance.
struct StepRecord {
    forest: ForestSolution,
    weight: u64,
    moves: u64,
    repair_wall_ns: u64,
    anchor_rounds: u64,
    anchor_messages: u64,
}

/// Replays a whole trace through one incremental session at a fixed
/// worker-thread count, collecting per-step records.
fn replay(trace: &ChurnTrace, threads: usize) -> Vec<StepRecord> {
    let mut session = SolverSession::new();
    let rebuilt = session.install_graph(Arc::new(trace.graph.clone()));
    assert!(rebuilt, "{}: fresh session must build its cache", trace.id);
    let mut anchor_session = SolverSession::new();
    let mut handles: Vec<DemandId> = Vec::new();
    let steps = trace.steps();
    let mut records = Vec::with_capacity(steps.len());
    for (i, step) in steps.iter().enumerate() {
        let outcome = match &step.op {
            ChurnOp::Add { terminals } => {
                let (id, out) = session
                    .add_demand(terminals)
                    .unwrap_or_else(|e| panic!("{}: step {i}: add failed: {e}", trace.id));
                handles.push(id);
                out
            }
            ChurnOp::Remove { slot } => {
                let id = handles.remove(*slot);
                session
                    .remove_demand(id)
                    .unwrap_or_else(|e| panic!("{}: step {i}: remove failed: {e}", trace.id))
            }
            ChurnOp::Reweight { edge, weight } => session
                .reweight_edge(*edge, *weight)
                .unwrap_or_else(|e| panic!("{}: step {i}: reweight failed: {e}", trace.id)),
        };
        // The deterministic anchor ties the step to the paper pipeline:
        // its rounds/messages on the post-delta instance are the
        // schema's deterministic CONGEST columns.
        let req = SolveRequest::new(
            format!("{}/step={i:02}/anchor", trace.id),
            session.cached_graph().expect("graph is installed").clone(),
            instance_of(&step.graph, &step.demands),
            SolverKind::Deterministic,
            0,
        );
        let anchor = anchor_session
            .solve_with_threads(&req, threads)
            .expect("anchor solve runs clean");
        records.push(StepRecord {
            forest: outcome.forest,
            weight: outcome.weight,
            moves: outcome.moves,
            repair_wall_ns: outcome.wall_ns,
            anchor_rounds: anchor.rounds(),
            anchor_messages: anchor.messages(),
        });
    }
    records
}

/// Runs every churn trace and assembles the report, enforcing the three
/// in-harness gates (repair quality, thread-count bit-identity, majority
/// 2× speedup).
///
/// `quick` selects the quick trace tier (CI smoke); graphs are full-sized
/// in both modes — only trace count and length shrink.
pub fn collect(quick: bool) -> ChurnBenchReport {
    let tier = if quick { Tier::Quick } else { Tier::Full };
    let mut entries = Vec::new();
    let mut fast_steps = 0usize;
    let mut total_steps = 0usize;
    // Per-op-kind (fast, total) counters, printed as a diagnostic so a
    // speed-gate trip points at the op family that regressed.
    let mut per_op: std::collections::BTreeMap<&'static str, (usize, usize)> =
        std::collections::BTreeMap::new();
    for trace in churn_traces(tier) {
        // Gate: the replay is bit-identical across worker-thread counts,
        // for the repair path and the deterministic anchor alike.
        let base = dsf_congest::with_threads(1, || replay(&trace, 1));
        let alt = dsf_congest::with_threads(4, || replay(&trace, 4));
        assert_eq!(base.len(), alt.len(), "{}: replay length drifted", trace.id);
        for (i, (a, b)) in base.iter().zip(&alt).enumerate() {
            assert!(
                a.forest == b.forest && a.weight == b.weight && a.moves == b.moves,
                "{}: step {i}: repair is not bit-identical across thread counts",
                trace.id
            );
            assert!(
                a.anchor_rounds == b.anchor_rounds && a.anchor_messages == b.anchor_messages,
                "{}: step {i}: anchor metrics drifted across thread counts",
                trace.id
            );
        }

        for (i, (step, rec)) in trace.steps().iter().zip(&base).enumerate() {
            let inst = instance_of(&step.graph, &step.demands);
            let t0 = Instant::now();
            let scratch = conformance::scratch_solve(&step.graph, &inst);
            let scratch_wall_ns = (t0.elapsed().as_nanos() as u64).max(1);
            let scratch_weight = scratch.weight(&step.graph);

            // Gate: the repaired forest passes the churn-differential
            // oracle against the post-delta certificate. This holds on
            // warm-up steps too — a bad seed forest would poison every
            // measured step after it.
            let cert = certify(&step.graph, &inst);
            let violations =
                conformance::check_repaired(&step.graph, &inst, &cert, &rec.forest, scratch_weight);
            assert!(
                violations.is_empty(),
                "churn gate: {}: step {i}: {violations:?}",
                trace.id
            );

            // Warm-up arrivals seed the cache; the tier measures churn
            // against a warm session, so they produce no entry and do
            // not count toward the speed gate.
            if i < trace.warmup {
                continue;
            }
            total_steps += 1;
            let repair_wall_ns = rec.repair_wall_ns.min(alt[i].repair_wall_ns).max(1);
            let slot = per_op.entry(op_tag(&step.op)).or_insert((0, 0));
            slot.1 += 1;
            if repair_wall_ns * 2 <= scratch_wall_ns {
                fast_steps += 1;
                slot.0 += 1;
            }
            entries.push(ChurnBenchEntry {
                name: format!("{}/step={i:02}/{}", trace.id, op_tag(&step.op)),
                step: i,
                k: inst.k(),
                moves: rec.moves,
                weight: rec.weight,
                scratch_weight,
                ratio_milli: (1000 * u128::from(rec.weight)).div_ceil(u128::from(cert.upper.max(1)))
                    as u64,
                bound_milli: conformance::bound_milli(&cert, conformance::GREEDY_FACTOR, 0.0),
                rounds: rec.anchor_rounds,
                messages: rec.anchor_messages,
                repair_wall_ns,
                scratch_wall_ns,
                speedup_milli: (1000 * scratch_wall_ns) / repair_wall_ns,
            });
        }
    }
    for (op, (fast, total)) in &per_op {
        eprintln!("churn speed: {op}: {fast}/{total} steps >=2x faster than scratch");
    }
    // Gate: the repair pays for itself — at least 2× faster than the
    // from-scratch solve on a strict majority of all measured steps.
    assert!(
        fast_steps * 2 > total_steps,
        "churn gate: repair was >=2x faster than scratch on only {fast_steps} of \
         {total_steps} measured steps (need a strict majority)"
    );
    ChurnBenchReport {
        mode: if quick { "quick" } else { "full" }.to_string(),
        entries,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_has_schema_and_one_entry_per_line() {
        let report = ChurnBenchReport {
            mode: "quick".into(),
            entries: vec![ChurnBenchEntry {
                name: "churn/gnp/seed=0/step=03/add".into(),
                step: 3,
                k: 3,
                moves: 2,
                weight: 41,
                scratch_weight: 41,
                ratio_milli: 1000,
                bound_milli: 4000,
                rounds: 310,
                messages: 6200,
                repair_wall_ns: 1,
                scratch_wall_ns: 9,
                speedup_milli: 9000,
            }],
        };
        let json = report.to_json();
        assert!(json.contains("\"schema\": \"dsf-bench-churn/v1\""));
        assert!(json.contains("\"scratch_weight\": 41"));
        assert!(json.contains("\"speedup_milli\": 9000"));
        assert_eq!(json.lines().filter(|l| l.contains("\"name\"")).count(), 1);
    }

    #[test]
    fn op_tags_cover_every_kind() {
        use dsf_graph::{EdgeId, NodeId};
        assert_eq!(
            op_tag(&ChurnOp::Add {
                terminals: vec![NodeId::from(0usize)]
            }),
            "add"
        );
        assert_eq!(op_tag(&ChurnOp::Remove { slot: 0 }), "remove");
        assert_eq!(
            op_tag(&ChurnOp::Reweight {
                edge: EdgeId(0),
                weight: 1
            }),
            "reweight"
        );
    }
}
