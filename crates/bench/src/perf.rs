//! The executor perf harness behind `bench_runner`: deterministic
//! micro-benchmarks of the execution engines plus end-to-end solver
//! timings, emitted as machine-readable JSON (`BENCH_executor.json`).
//!
//! Every entry carries two kinds of numbers:
//!
//! * **deterministic work metrics** — `n`, `m`, `rounds`, `messages`, and
//!   `activations` (executor `round()` invocations) are identical on every
//!   machine, every run, and every worker-thread count; CI gates on them
//!   (`bench_runner --check`);
//! * **wall-clock and configuration** — `wall_ns` (min/mean/max
//!   nanoseconds over the repetitions), `threads` (worker threads the
//!   entry ran with), `speedup_milli` (1000 × the min-wall speedup of
//!   a sharded entry over its single-threaded twin; scale tiers only),
//!   and `mem_peak_bytes` (the workload's allocation high-water mark via
//!   [`crate::alloc_meter`]; `--scale-xl` tier only) are
//!   machine-dependent, report-only, tracked as a trajectory via the CI
//!   artifact.
//!
//! # JSON schema (`dsf-bench-executor/v4`)
//!
//! ```json
//! {
//!   "schema": "dsf-bench-executor/v4",
//!   "mode": "quick",
//!   "entries": [
//!     {"name": "executor/bfs_wave/path/n=10000/event", "n": 10000,
//!      "m": 9999, "threads": 1, "rounds": 10000, "messages": 19998,
//!      "activations": 19998, "wall_ns": {"min": 1, "mean": 2, "max": 3}}
//!   ]
//! }
//! ```
//!
//! (v2 added `threads` everywhere and `speedup_milli` on sharded scale
//! entries; v3 added the optional `mem_peak_bytes` on `--scale-xl`
//! entries; v4 added the optional report-only `steals` and
//! `utilization_milli` work-stealing counters on sharded scale entries.
//! The reader accepts v3 baselines — v4 only *adds* optional fields.)
//! One entry per line; names use only `[a-z0-9_/=.-]`, so no
//! JSON string escaping is ever needed — and the reader *rejects* any
//! escape it meets, along with malformed numbers, so a corrupt baseline
//! can never silently pass the `--check` gate.

use std::time::Instant;

use dsf_baselines::solve_collect_at_root;
use dsf_congest::{
    run_reference, run_sharded, run_with_buffers, CongestConfig, Message, NodeCtx, Outbox,
    Protocol, RoundLedger, RunBuffers, RunMetrics, SchedStats, SimError,
};
use dsf_core::det::{solve_deterministic, DetConfig};
use dsf_core::randomized::{solve_randomized, RandConfig};
use dsf_graph::{generators, NodeId, WeightedGraph};
use dsf_steiner::random_instance;

/// Identifier of the emitted JSON layout.
pub const SCHEMA: &str = "dsf-bench-executor/v4";

/// The previous layout, still accepted on parse: v4 is a strict superset
/// (two new *optional* entry fields), so checked-in v3 baselines keep
/// gating without regeneration.
const SCHEMA_V3: &str = "dsf-bench-executor/v3";

/// Wall-clock statistics over the repetitions of one workload, in
/// nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WallNs {
    /// Fastest repetition.
    pub min: u64,
    /// Mean over repetitions.
    pub mean: u64,
    /// Slowest repetition.
    pub max: u64,
}

/// One benchmark result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchEntry {
    /// Workload id, e.g. `executor/bfs_wave/path/n=10000/event`.
    pub name: String,
    /// Nodes of the workload graph.
    pub n: usize,
    /// Edges of the workload graph.
    pub m: usize,
    /// Worker threads the entry ran with (configuration, report-only —
    /// deterministic metrics never depend on it).
    pub threads: usize,
    /// Simulated rounds (deterministic).
    pub rounds: u64,
    /// Delivered messages (deterministic).
    pub messages: u64,
    /// `Protocol::round` invocations (deterministic; 0 where not tracked).
    pub activations: u64,
    /// Wall-clock statistics (machine-dependent, report-only).
    pub wall_ns: WallNs,
    /// Min-wall speedup over the single-threaded twin entry, ×1000
    /// (scale-tier sharded entries only; machine-dependent, report-only).
    pub speedup_milli: Option<u64>,
    /// Allocation high-water mark of the workload — graph, arenas, and
    /// run — in bytes ([`crate::alloc_meter`]; `--scale-xl` entries only;
    /// machine-dependent, report-only).
    pub mem_peak_bytes: Option<u64>,
    /// Chunks claimed outside their home worker's range that held work,
    /// summed over all workers of one run (sharded scale entries only;
    /// scheduling-dependent, report-only).
    pub steals: Option<u64>,
    /// Worker-rounds that processed at least one chunk over all
    /// worker-rounds, ×1000 (sharded scale entries only;
    /// scheduling-dependent, report-only).
    pub utilization_milli: Option<u64>,
}

/// A full `bench_runner` report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchReport {
    /// `"quick"` or `"full"`.
    pub mode: String,
    /// All entries, in a deterministic order.
    pub entries: Vec<BenchEntry>,
}

impl BenchReport {
    /// Serializes to the `dsf-bench-executor/v4` JSON layout.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str(&format!("  \"schema\": \"{SCHEMA}\",\n"));
        s.push_str(&format!("  \"mode\": \"{}\",\n", self.mode));
        s.push_str("  \"entries\": [\n");
        for (i, e) in self.entries.iter().enumerate() {
            let comma = if i + 1 < self.entries.len() { "," } else { "" };
            let speedup = e
                .speedup_milli
                .map(|v| format!(", \"speedup_milli\": {v}"))
                .unwrap_or_default();
            let mem = e
                .mem_peak_bytes
                .map(|v| format!(", \"mem_peak_bytes\": {v}"))
                .unwrap_or_default();
            let steals = e
                .steals
                .map(|v| format!(", \"steals\": {v}"))
                .unwrap_or_default();
            let util = e
                .utilization_milli
                .map(|v| format!(", \"utilization_milli\": {v}"))
                .unwrap_or_default();
            s.push_str(&format!(
                "    {{\"name\": \"{}\", \"n\": {}, \"m\": {}, \"threads\": {}, \
                 \"rounds\": {}, \"messages\": {}, \"activations\": {}, \"wall_ns\": \
                 {{\"min\": {}, \"mean\": {}, \"max\": {}}}{speedup}{mem}{steals}{util}}}{comma}\n",
                e.name,
                e.n,
                e.m,
                e.threads,
                e.rounds,
                e.messages,
                e.activations,
                e.wall_ns.min,
                e.wall_ns.mean,
                e.wall_ns.max,
            ));
        }
        s.push_str("  ]\n}\n");
        s
    }

    /// Parses the line-oriented subset of JSON that [`BenchReport::to_json`]
    /// emits (one entry object per line).
    ///
    /// The reader is deliberately strict: malformed numbers (`12x3`),
    /// escaped or unterminated strings, and missing fields are hard
    /// errors, never best-effort values — `--check` must not be able to
    /// pass against a corrupt baseline.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed line or missing field.
    pub fn parse(json: &str) -> Result<BenchReport, String> {
        let mut mode = None;
        let mut entries = Vec::new();
        for line in json.lines() {
            if line.contains("\"schema\"") {
                let schema = str_field(line, "schema")?;
                if schema != SCHEMA && schema != SCHEMA_V3 {
                    return Err(format!(
                        "schema {schema:?}, expected {SCHEMA:?} (or {SCHEMA_V3:?})"
                    ));
                }
            } else if line.contains("\"mode\"") {
                mode = Some(str_field(line, "mode")?);
            } else if line.contains("\"name\"") {
                let name = str_field(line, "name")?;
                let get = |k: &str| u64_field(line, k).map_err(|e| format!("entry {name}: {e}"));
                let speedup_milli = if line.contains("\"speedup_milli\"") {
                    Some(get("speedup_milli")?)
                } else {
                    None
                };
                let mem_peak_bytes = if line.contains("\"mem_peak_bytes\"") {
                    Some(get("mem_peak_bytes")?)
                } else {
                    None
                };
                let steals = if line.contains("\"steals\"") {
                    Some(get("steals")?)
                } else {
                    None
                };
                let utilization_milli = if line.contains("\"utilization_milli\"") {
                    Some(get("utilization_milli")?)
                } else {
                    None
                };
                entries.push(BenchEntry {
                    name: name.clone(),
                    n: get("n")? as usize,
                    m: get("m")? as usize,
                    threads: get("threads")? as usize,
                    rounds: get("rounds")?,
                    messages: get("messages")?,
                    activations: get("activations")?,
                    wall_ns: WallNs {
                        min: get("min")?,
                        mean: get("mean")?,
                        max: get("max")?,
                    },
                    speedup_milli,
                    mem_peak_bytes,
                    steals,
                    utilization_milli,
                });
            }
        }
        Ok(BenchReport {
            mode: mode.ok_or_else(|| "missing mode".to_string())?,
            entries,
        })
    }

    /// Compares the deterministic metrics against a checked-in baseline.
    ///
    /// Returns one human-readable drift description per mismatch (empty =
    /// gate passes). Wall-clock, `threads`, `speedup_milli`,
    /// `mem_peak_bytes`, `steals`, and `utilization_milli` are
    /// intentionally ignored: they are machine/configuration/scheduling
    /// facts, and the same gate must pass under any `DSF_THREADS` (that
    /// invariance is itself CI-enforced by running the gate at two thread
    /// counts).
    pub fn diff_deterministic(&self, baseline: &BenchReport) -> Vec<String> {
        let mut drifts = Vec::new();
        if self.mode != baseline.mode {
            drifts.push(format!(
                "mode {:?} does not match baseline mode {:?}",
                self.mode, baseline.mode
            ));
            return drifts;
        }
        for b in &baseline.entries {
            match self.entries.iter().find(|e| e.name == b.name) {
                None => drifts.push(format!("{}: entry disappeared", b.name)),
                Some(e) => {
                    for (what, now, was) in [
                        ("n", e.n as u64, b.n as u64),
                        ("m", e.m as u64, b.m as u64),
                        ("rounds", e.rounds, b.rounds),
                        ("messages", e.messages, b.messages),
                        ("activations", e.activations, b.activations),
                    ] {
                        if now != was {
                            drifts.push(format!("{}: {what} drifted {was} -> {now}", e.name));
                        }
                    }
                }
            }
        }
        for e in &self.entries {
            if !baseline.entries.iter().any(|b| b.name == e.name) {
                drifts.push(format!(
                    "{}: new entry not in baseline (re-generate it)",
                    e.name
                ));
            }
        }
        drifts
    }
}

/// Extracts the string value of `"key": "…"` from one line.
///
/// # Errors
///
/// Rejects missing keys, unterminated strings, and any backslash in the
/// value: this reader's schema never needs JSON escapes, and treating an
/// escaped quote as a terminator would silently truncate the value.
fn str_field(line: &str, key: &str) -> Result<String, String> {
    let pat = format!("\"{key}\": \"");
    let i = line
        .find(&pat)
        .ok_or_else(|| format!("missing string field {key:?}"))?
        + pat.len();
    let rest = &line[i..];
    let end = rest
        .find('"')
        .ok_or_else(|| format!("field {key:?}: unterminated string"))?;
    let val = &rest[..end];
    if val.contains('\\') {
        return Err(format!(
            "field {key:?}: escaped strings are not supported by this reader"
        ));
    }
    Ok(val.to_string())
}

/// Extracts the unsigned integer value of `"key": …` from one line.
///
/// # Errors
///
/// Rejects missing keys, empty digit runs, and digit runs not terminated
/// by a structural character (`,`, `}`, or end of line) — `12x3` is a
/// parse error, not 12.
fn u64_field(line: &str, key: &str) -> Result<u64, String> {
    let pat = format!("\"{key}\": ");
    let i = line
        .find(&pat)
        .ok_or_else(|| format!("missing field {key:?}"))?
        + pat.len();
    let digits: &str = &line[i..i + line[i..]
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(line.len() - i)];
    if digits.is_empty() {
        return Err(format!("field {key:?}: expected a number"));
    }
    match line[i + digits.len()..].chars().next() {
        None | Some(',') | Some('}') => {}
        Some(c) => {
            return Err(format!(
                "field {key:?}: malformed number ({c:?} after {digits:?})"
            ))
        }
    }
    digits.parse().map_err(|e| format!("field {key:?}: {e}"))
}

/// The raw-executor micro-workload: a BFS wave from node 0 — the sparse
/// single-source primitive underlying moat growth, where at any round only
/// the frontier has work. This is the workload class the active-set
/// scheduler exists for.
#[derive(Debug, Clone, Copy)]
struct Wave {
    depth: u32,
}

impl Message for Wave {
    fn encoded_bits(&self) -> usize {
        32
    }
}

#[derive(Debug)]
struct WaveNode {
    joined: bool,
}

impl Protocol for WaveNode {
    type Msg = Wave;

    fn init(&mut self, ctx: &NodeCtx, out: &mut Outbox<Wave>) {
        if ctx.id == NodeId(0) {
            self.joined = true;
            out.send_all(ctx, Wave { depth: 0 });
        }
    }

    fn round(&mut self, ctx: &NodeCtx, inbox: &[(NodeId, Wave)], out: &mut Outbox<Wave>) {
        if !self.joined {
            if let Some(&(_, msg)) = inbox.first() {
                self.joined = true;
                out.send_all(
                    ctx,
                    Wave {
                        depth: msg.depth + 1,
                    },
                );
            }
        }
    }

    fn done(&self) -> bool {
        // Idle until a wave message arrives; see the done() contract.
        true
    }
}

struct Timed {
    metrics: RunMetrics,
    stats: SchedStats,
    wall_ns: WallNs,
}

/// Runs `f` `reps` times, asserting the deterministic outcome never
/// changes across repetitions.
fn time_reps(
    reps: usize,
    mut f: impl FnMut() -> Result<(RunMetrics, SchedStats), SimError>,
) -> Timed {
    let mut wall = Vec::with_capacity(reps);
    let mut first: Option<(RunMetrics, SchedStats)> = None;
    for _ in 0..reps {
        let t0 = Instant::now();
        let out = f().expect("bench workload must run clean");
        wall.push(t0.elapsed().as_nanos() as u64);
        match &first {
            None => first = Some(out),
            Some((m, s)) => assert!(
                *m == out.0 && *s == out.1,
                "bench workload is not deterministic across repetitions"
            ),
        }
    }
    let (metrics, stats) = first.expect("at least one repetition");
    let min = *wall.iter().min().expect("reps > 0");
    let max = *wall.iter().max().expect("reps > 0");
    let mean = wall.iter().sum::<u64>() / wall.len() as u64;
    Timed {
        metrics,
        stats,
        wall_ns: WallNs { min, mean, max },
    }
}

fn wave_nodes(g: &WeightedGraph) -> Vec<WaveNode> {
    g.nodes().map(|_| WaveNode { joined: false }).collect()
}

/// One executor micro-benchmark: the same wave workload through both
/// engines, as two entries (`.../event` and `.../reference`).
fn executor_pair(name: &str, g: &WeightedGraph, reps: usize, entries: &mut Vec<BenchEntry>) {
    let cfg = CongestConfig::for_graph(g);
    let mut buffers = RunBuffers::for_graph(g);
    let event = time_reps(reps, || {
        run_with_buffers(g, wave_nodes(g), &cfg, &mut buffers).map(|r| (r.metrics, r.stats))
    });
    let reference = time_reps(reps, || {
        run_reference(g, wave_nodes(g), &cfg).map(|r| (r.metrics, r.stats))
    });
    assert_eq!(
        event.metrics, reference.metrics,
        "{name}: executors disagree"
    );
    for (suffix, t) in [("event", event), ("reference", reference)] {
        entries.push(BenchEntry {
            name: format!("{name}/{suffix}"),
            n: g.n(),
            m: g.m(),
            threads: 1,
            rounds: t.metrics.rounds,
            messages: t.metrics.messages,
            activations: t.stats.activations,
            wall_ns: t.wall_ns,
            speedup_milli: None,
            mem_peak_bytes: None,
            steals: None,
            utilization_milli: None,
        });
    }
}

/// One end-to-end solver timing; rounds/messages come from the ledger.
fn solver_entry(
    name: &str,
    g: &WeightedGraph,
    reps: usize,
    entries: &mut Vec<BenchEntry>,
    mut f: impl FnMut() -> Result<RoundLedger, SimError>,
) {
    let timed = time_reps(reps, || {
        f().map(|ledger| {
            let messages = ledger.entries().iter().map(|e| e.messages).sum();
            (
                RunMetrics {
                    rounds: ledger.total(),
                    messages,
                    ..RunMetrics::default()
                },
                SchedStats::default(),
            )
        })
    });
    entries.push(BenchEntry {
        name: name.to_string(),
        n: g.n(),
        m: g.m(),
        // Solvers run through `dsf_congest::run`, which dispatches on the
        // configured thread count — record it so the artifact documents
        // the configuration behind the wall-clock numbers.
        threads: dsf_congest::default_threads(),
        rounds: timed.metrics.rounds,
        messages: timed.metrics.messages,
        activations: 0,
        wall_ns: timed.wall_ns,
        speedup_milli: None,
        mem_peak_bytes: None,
        steals: None,
        utilization_milli: None,
    });
}

/// Runs every workload and assembles the report.
///
/// `quick` shrinks sizes and repetition counts for the CI smoke gate; the
/// checked-in baseline (`crates/bench/baselines/executor_quick.json`) is a
/// quick-mode report.
pub fn collect(quick: bool) -> BenchReport {
    let reps = if quick { 3 } else { 7 };
    let mut entries = Vec::new();

    // Raw executor micro-benchmarks: one sparse wave per graph family.
    // The 10k path is the headline workload: the reference engine performs
    // n invocations per round for ~n rounds (Θ(n²)), the active-set
    // scheduler ~2 per node total.
    let path_n = if quick { 10_000 } else { 30_000 };
    let g = generators::path(path_n, 1);
    executor_pair(
        &format!("executor/bfs_wave/path/n={path_n}"),
        &g,
        reps,
        &mut entries,
    );

    let side = if quick { 100 } else { 160 };
    let g = generators::grid(side, side, 4, 3);
    executor_pair(
        &format!("executor/bfs_wave/grid/n={}", side * side),
        &g,
        reps,
        &mut entries,
    );

    let (gn, gp) = if quick {
        (2_000, 0.008)
    } else {
        (4_000, 0.005)
    };
    let g = generators::gnp_connected(gn, gp, 9, 5);
    executor_pair(
        &format!("executor/bfs_wave/gnp/n={gn}"),
        &g,
        reps,
        &mut entries,
    );

    // End-to-end solver timings (all protocol stages run through the
    // event-driven engine).
    let (sn, sp) = if quick { (48, 0.12) } else { (96, 0.08) };
    let g = generators::gnp_connected(sn, sp, 9, 7);
    let inst = random_instance(&g, 3, 2, 11);
    solver_entry(
        &format!("solver/deterministic/gnp/n={sn}"),
        &g,
        reps,
        &mut entries,
        || solve_deterministic(&g, &inst, &DetConfig::default()).map(|o| o.rounds),
    );
    solver_entry(
        &format!("solver/randomized/gnp/n={sn}"),
        &g,
        reps,
        &mut entries,
        || {
            let cfg = RandConfig {
                seed: 5,
                repetitions: 2,
                ..RandConfig::default()
            };
            solve_randomized(&g, &inst, &cfg).map(|o| o.rounds)
        },
    );
    solver_entry(
        &format!("solver/collect_at_root/gnp/n={sn}"),
        &g,
        reps,
        &mut entries,
        || solve_collect_at_root(&g, &inst).map(|o| o.rounds),
    );

    BenchReport {
        mode: if quick { "quick" } else { "full" }.to_string(),
        entries,
    }
}

fn splitmix(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The scale-tier workload message: one 64-bit digest per edge per round.
///
/// The payload is [`NonZeroU64`](std::num::NonZeroU64) so that
/// `Option<GossipMsg>` — the slot-arena element type — is 8 bytes instead
/// of 16 (niche optimization): at the `--scale-xl` tier's 40M directed
/// slots that halves the two arena copies. Digest values are arbitrary
/// deterministic bit-soup, so pinning the rare zero digest to a fixed
/// nonzero sentinel loses nothing.
#[derive(Debug, Clone, Copy)]
pub struct GossipMsg(std::num::NonZeroU64);

impl GossipMsg {
    fn of(digest: u64) -> GossipMsg {
        GossipMsg(std::num::NonZeroU64::new(digest).unwrap_or(std::num::NonZeroU64::MAX))
    }
}

impl Message for GossipMsg {
    fn encoded_bits(&self) -> usize {
        64
    }
}

/// The scale-tier workload: dense deterministic gossip. Every node floods
/// a digest to all neighbors for a fixed number of rounds and folds every
/// received digest into its own — so *every* node is active *every*
/// round, the per-round work the sharded executor parallelizes. (The
/// sparse `bfs_wave` workload is the opposite extreme: one active node
/// per round, nothing to parallelize.)
///
/// Exported so the root acceptance test (`tests/executor_scheduling.rs`)
/// times the *same* workload the `--scale` bench tier reports on.
#[derive(Debug, PartialEq, Eq)]
pub struct GossipNode {
    digest: u64,
    rounds_left: u32,
}

impl Protocol for GossipNode {
    type Msg = GossipMsg;

    fn init(&mut self, ctx: &NodeCtx, out: &mut Outbox<GossipMsg>) {
        self.digest = splitmix(u64::from(ctx.id.0));
        out.send_all(ctx, GossipMsg::of(self.digest));
    }

    fn round(&mut self, ctx: &NodeCtx, inbox: &[(NodeId, GossipMsg)], out: &mut Outbox<GossipMsg>) {
        for &(from, m) in inbox {
            self.digest = splitmix(self.digest ^ m.0.get() ^ u64::from(from.0));
        }
        if self.rounds_left > 0 {
            self.rounds_left -= 1;
            out.send_all(ctx, GossipMsg::of(self.digest));
        }
    }

    fn done(&self) -> bool {
        self.rounds_left == 0
    }
}

/// Fresh gossip nodes that each flood for `rounds` rounds.
pub fn gossip_nodes(g: &WeightedGraph, rounds: u32) -> Vec<GossipNode> {
    g.nodes()
        .map(|_| GossipNode {
            digest: 0,
            rounds_left: rounds,
        })
        .collect()
}

/// Report-only work-stealing effort summary of one sharded run: total
/// chunks stolen and the worker utilization (worker-rounds that processed
/// at least one chunk over all worker-rounds), ×1000. `(None, None)` when
/// the run carried no per-worker observability (single-threaded engines).
fn worker_obs(stats: &SchedStats) -> (Option<u64>, Option<u64>) {
    if stats.workers.is_empty() {
        return (None, None);
    }
    let stolen: u64 = stats.workers.iter().map(|w| w.chunks_stolen).sum();
    let busy: u64 = stats.workers.iter().map(|w| w.rounds_participated).sum();
    let idle: u64 = stats.workers.iter().map(|w| w.idle_waits).sum();
    (Some(stolen), Some(busy * 1000 / (busy + idle).max(1)))
}

/// One scale workload: the same gossip run through the single-threaded
/// event engine (`t=1`) and the work-stealing engine at the remaining
/// thread counts. Deterministic metrics are asserted identical across all
/// engines; `speedup_milli` records min-wall `t=1` over min-wall `t=k`,
/// and sharded entries carry the report-only `steals` /
/// `utilization_milli` effort counters from [`dsf_congest::SchedStats`]'s
/// per-worker observability.
fn scale_family(
    name: &str,
    g: &WeightedGraph,
    rounds: u32,
    threads: &[usize],
    reps: usize,
    entries: &mut Vec<BenchEntry>,
) {
    let cfg = CongestConfig::for_graph(g);
    let mut buffers = RunBuffers::for_graph(g);
    let single = time_reps(reps, || {
        run_with_buffers(g, gossip_nodes(g, rounds), &cfg, &mut buffers)
            .map(|r| (r.metrics, r.stats))
    });
    let push = |entries: &mut Vec<BenchEntry>, t: usize, timed: &Timed, speedup: Option<u64>| {
        let (steals, utilization_milli) = worker_obs(&timed.stats);
        entries.push(BenchEntry {
            name: format!("{name}/t={t}"),
            n: g.n(),
            m: g.m(),
            threads: t,
            rounds: timed.metrics.rounds,
            messages: timed.metrics.messages,
            activations: timed.stats.activations,
            wall_ns: timed.wall_ns,
            speedup_milli: speedup,
            mem_peak_bytes: None,
            steals,
            utilization_milli,
        });
    };
    push(entries, 1, &single, None);
    for &t in threads.iter().filter(|&&t| t > 1) {
        let sharded = time_reps(reps, || {
            run_sharded(g, gossip_nodes(g, rounds), &cfg, t).map(|r| (r.metrics, r.stats))
        });
        assert_eq!(
            sharded.metrics, single.metrics,
            "{name}: sharded t={t} metrics diverge"
        );
        assert_eq!(
            sharded.stats, single.stats,
            "{name}: sharded t={t} work counters diverge"
        );
        let speedup = single.wall_ns.min.saturating_mul(1000) / sharded.wall_ns.min.max(1);
        push(entries, t, &sharded, Some(speedup));
    }
}

/// The `--scale` tier: dense gossip on large path/grid/clustered graphs
/// (n up to ~100k) across worker-thread counts {1, 2, 4, 8}, measuring
/// the sharded executor's wall-clock scaling. Deterministic metrics are
/// asserted bit-identical across every thread count before an entry is
/// emitted, so the tier cannot "speed up" by drifting; there is no
/// checked-in baseline (wall-clock is the product here), hence no
/// `--check` in this mode.
pub fn collect_scale(quick: bool) -> BenchReport {
    let reps = if quick { 2 } else { 3 };
    let threads = [1usize, 2, 4, 8];
    let mut entries = Vec::new();

    // Clusters are internally complete (m ≈ clusters · per_cluster²/2),
    // so keep per_cluster small: the family is here for its skewed degree
    // distribution (stresses the slot-balanced shard partitioning), not
    // for raw edge volume.
    let (path_n, grid_side, clusters, per_cluster, rounds) = if quick {
        (20_000, 140, 500, 40, 10)
    } else {
        (100_000, 316, 2_500, 40, 30)
    };

    let g = generators::path(path_n, 1);
    scale_family(
        &format!("executor/gossip/path/n={path_n}"),
        &g,
        rounds,
        &threads,
        reps,
        &mut entries,
    );

    let g = generators::grid(grid_side, grid_side, 4, 3);
    scale_family(
        &format!("executor/gossip/grid/n={}", grid_side * grid_side),
        &g,
        rounds,
        &threads,
        reps,
        &mut entries,
    );

    let g = generators::clustered_geometric(clusters, per_cluster, 11);
    scale_family(
        &format!("executor/gossip/clustered/n={}", g.n()),
        &g,
        rounds,
        &threads,
        reps,
        &mut entries,
    );

    // Skewed RMAT power-law instance: a few hub-heavy chunks concentrate
    // most of the edge volume — the adversarial case for a static
    // partition and the headline case for work stealing, so this family
    // is where the steal/utilization counters (and the 8-thread speedup)
    // carry the most signal.
    let (rmat_n, rmat_rounds) = if quick { (1 << 14, 8) } else { (1 << 17, 20) };
    let g = generators::rmat(rmat_n, 2, 100, 17);
    scale_family(
        &format!("executor/gossip/rmat/n={rmat_n}"),
        &g,
        rmat_rounds,
        &threads,
        reps,
        &mut entries,
    );

    BenchReport {
        mode: if quick { "scale-quick" } else { "scale" }.to_string(),
        entries,
    }
}

/// In-harness memory budget of the `--scale-xl` tier, in bytes per node,
/// as metered by [`crate::alloc_meter`] over the whole workload:
/// generation, graph CSR, slot arenas, frontier, protocol states, and
/// the sharded engine's cross-shard mailboxes.
///
/// Measured with the compact layout at edge factor 2: the
/// single-threaded phase peaks around 230 B/node (graph ~85, slot
/// arenas + frontier ~130, protocol states 16); the t=4 work-stealing
/// phase dominates at ~530 B/node because it adds its own topology, the
/// per-chunk arenas, and the double-buffered cross-chunk staging matrix
/// — the chunk grid is finer than the worker count (8 chunks per
/// worker, so stealing has granularity), and power-law hubs make most
/// edges cross chunk boundaries, so the staging cells retain roughly
/// two rounds' worth of cross-chunk message capacity. (See the README
/// "Scale tier" section.) 640 leaves ~20% headroom over the measured
/// peak; a regression that pushes past it — a struct growing, a
/// byte-per-flag vector returning, an arena slot losing its niche —
/// fails the harness loudly.
pub const XL_BYTES_PER_NODE_BUDGET: u64 = 640;

/// One `--scale-xl` workload: RMAT power-law gossip through the
/// single-threaded engine and the 4-way sharded engine, with the
/// allocation high-water mark metered across generation + both runs and
/// asserted against [`XL_BYTES_PER_NODE_BUDGET`]. Deterministic metrics
/// must be bit-identical across the two engines (same contract as
/// [`collect_scale`]).
fn scale_xl_family(
    n: usize,
    edge_factor: usize,
    rounds: u32,
    reps: usize,
    entries: &mut Vec<BenchEntry>,
) {
    crate::alloc_meter::reset_peak();
    let base = crate::alloc_meter::current_bytes() as u64;
    let g = generators::rmat(n, edge_factor, 100, 42);
    let cfg = CongestConfig::for_graph(&g);
    let single = {
        // Scoped so the single-threaded arena is freed before the sharded
        // engine builds its own — the high-water mark meters one engine's
        // footprint, not both stacked.
        let mut buffers = RunBuffers::for_graph(&g);
        time_reps(reps, || {
            run_with_buffers(&g, gossip_nodes(&g, rounds), &cfg, &mut buffers)
                .map(|r| (r.metrics, r.stats))
        })
    };
    let sharded = time_reps(reps, || {
        run_sharded(&g, gossip_nodes(&g, rounds), &cfg, 4).map(|r| (r.metrics, r.stats))
    });
    assert_eq!(
        sharded.metrics, single.metrics,
        "scale-xl n={n}: sharded t=4 metrics diverge from t=1"
    );
    assert_eq!(
        sharded.stats, single.stats,
        "scale-xl n={n}: sharded t=4 work counters diverge from t=1"
    );
    let peak = (crate::alloc_meter::peak_bytes() as u64).saturating_sub(base);
    let budget = XL_BYTES_PER_NODE_BUDGET * n as u64;
    assert!(
        peak <= budget,
        "scale-xl n={n}: peak {peak} bytes ({} B/node) exceeds the {} B/node budget",
        peak.div_ceil(n as u64),
        XL_BYTES_PER_NODE_BUDGET,
    );
    let speedup = single.wall_ns.min.saturating_mul(1000) / sharded.wall_ns.min.max(1);
    for (t, timed, speedup) in [(1usize, &single, None), (4, &sharded, Some(speedup))] {
        let (steals, utilization_milli) = worker_obs(&timed.stats);
        entries.push(BenchEntry {
            name: format!("executor/gossip/power_law/n={n}/t={t}"),
            n,
            m: g.m(),
            threads: t,
            rounds: timed.metrics.rounds,
            messages: timed.metrics.messages,
            activations: timed.stats.activations,
            wall_ns: timed.wall_ns,
            speedup_milli: speedup,
            mem_peak_bytes: Some(peak),
            steals,
            utilization_milli,
        });
    }
}

/// The `--scale-xl` tier: dense gossip on RMAT power-law graphs up to
/// n=10M (edge factor 2), run at worker-thread counts {1, 4} with
/// bit-identity asserted in-harness, reporting the memory high-water mark
/// next to `speedup_milli` and enforcing [`XL_BYTES_PER_NODE_BUDGET`].
/// Like `--scale` there is no checked-in baseline (wall-clock and bytes
/// are the product), hence no `--check` in this mode.
pub fn collect_scale_xl(quick: bool) -> BenchReport {
    let mut entries = Vec::new();
    if quick {
        // CI smoke sizing: big enough that per-node costs dominate the
        // budget arithmetic, small enough for a PR gate.
        scale_xl_family(1 << 17, 2, 3, 2, &mut entries);
    } else {
        scale_xl_family(10_000_000, 2, 2, 1, &mut entries);
    }
    BenchReport {
        mode: if quick { "scale-xl-quick" } else { "scale-xl" }.to_string(),
        entries,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> BenchReport {
        BenchReport {
            mode: "quick".into(),
            entries: vec![
                BenchEntry {
                    name: "executor/x/event".into(),
                    n: 10,
                    m: 9,
                    threads: 1,
                    rounds: 11,
                    messages: 18,
                    activations: 20,
                    wall_ns: WallNs {
                        min: 1,
                        mean: 2,
                        max: 3,
                    },
                    speedup_milli: None,
                    mem_peak_bytes: None,
                    steals: None,
                    utilization_milli: None,
                },
                BenchEntry {
                    name: "solver/y".into(),
                    n: 48,
                    m: 100,
                    threads: 4,
                    rounds: 321,
                    messages: 4567,
                    activations: 0,
                    wall_ns: WallNs {
                        min: 9,
                        mean: 9,
                        max: 9,
                    },
                    speedup_milli: Some(2750),
                    mem_peak_bytes: Some(123_456_789),
                    steals: Some(17),
                    utilization_milli: Some(850),
                },
            ],
        }
    }

    #[test]
    fn json_roundtrips() {
        let r = sample();
        let parsed = BenchReport::parse(&r.to_json()).unwrap();
        assert_eq!(parsed, r);
    }

    #[test]
    fn v3_baselines_still_parse_and_gate() {
        // The checked-in quick baseline predates the v4 fields; the
        // reader must accept its schema line (v4 only adds optionals) and
        // an unknown/future schema must still be rejected.
        let mut r = sample();
        for e in &mut r.entries {
            e.steals = None;
            e.utilization_milli = None;
        }
        let v3 = r.to_json().replacen(SCHEMA, SCHEMA_V3, 1);
        let parsed = BenchReport::parse(&v3).unwrap();
        assert_eq!(parsed, r);
        assert!(sample().diff_deterministic(&parsed).is_empty());
        let v9 = r.to_json().replacen(SCHEMA, "dsf-bench-executor/v9", 1);
        assert!(BenchReport::parse(&v9).is_err());
    }

    #[test]
    fn malformed_numbers_are_rejected_not_truncated() {
        let good = sample().to_json();
        // `"rounds": 11` -> `"rounds": 11x3`: the old reader parsed 11.
        let bad = good.replacen("\"rounds\": 11,", "\"rounds\": 11x3,", 1);
        let err = BenchReport::parse(&bad).unwrap_err();
        assert!(err.contains("rounds"), "{err}");
        assert!(err.contains("malformed"), "{err}");
        // An empty digit run is just as dead.
        let bad = good.replacen("\"messages\": 18,", "\"messages\": ,", 1);
        let err = BenchReport::parse(&bad).unwrap_err();
        assert!(err.contains("messages"), "{err}");
    }

    #[test]
    fn escaped_and_unterminated_strings_are_rejected() {
        let good = sample().to_json();
        // An escaped quote inside a name: the old reader truncated the
        // value at the backslash-quote and kept going.
        let bad = good.replacen("executor/x/event", r#"executor\"x"#, 1);
        let err = BenchReport::parse(&bad).unwrap_err();
        assert!(err.contains("escaped"), "{err}");
        // A mode line whose string never closes.
        let bad = good.replacen("\"mode\": \"quick\",", "\"mode\": \"quick,", 1);
        let err = BenchReport::parse(&bad).unwrap_err();
        assert!(
            err.contains("unterminated") || err.contains("mode"),
            "{err}"
        );
    }

    #[test]
    fn corrupt_baseline_cannot_pass_check() {
        // End-to-end: a baseline with a mangled metric must fail to parse
        // (the old reader read `11zzz` as 11, which *matched* the live
        // report and let --check pass against garbage).
        let corrupt = sample()
            .to_json()
            .replacen("\"rounds\": 11,", "\"rounds\": 11zzz,", 1);
        assert!(BenchReport::parse(&corrupt).is_err());
    }

    #[test]
    fn diff_flags_deterministic_drift_only() {
        let base = sample();
        let mut cur = sample();
        assert!(cur.diff_deterministic(&base).is_empty());
        // Wall-clock, memory, and scheduling-effort changes never gate.
        cur.entries[0].wall_ns.mean = 999_999;
        cur.entries[1].mem_peak_bytes = Some(1);
        cur.entries[1].steals = Some(999);
        cur.entries[1].utilization_milli = None;
        assert!(cur.diff_deterministic(&base).is_empty());
        // Metric drift does.
        cur.entries[0].rounds += 1;
        let drifts = cur.diff_deterministic(&base);
        assert_eq!(drifts.len(), 1);
        assert!(drifts[0].contains("rounds drifted 11 -> 12"));
        // So do vanished and novel entries.
        cur.entries.remove(1);
        cur.entries.push(BenchEntry {
            name: "solver/z".into(),
            ..base.entries[1].clone()
        });
        let drifts = cur.diff_deterministic(&base);
        assert!(drifts.iter().any(|d| d.contains("entry disappeared")));
        assert!(drifts.iter().any(|d| d.contains("not in baseline")));
    }

    #[test]
    fn mode_mismatch_is_a_drift() {
        let base = sample();
        let mut cur = sample();
        cur.mode = "full".into();
        assert_eq!(cur.diff_deterministic(&base).len(), 1);
    }
}
