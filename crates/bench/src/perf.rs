//! The executor perf harness behind `bench_runner`: deterministic
//! micro-benchmarks of the two execution engines plus end-to-end solver
//! timings, emitted as machine-readable JSON (`BENCH_executor.json`).
//!
//! Every entry carries two kinds of numbers:
//!
//! * **deterministic work metrics** — `n`, `m`, `rounds`, `messages`, and
//!   `activations` (executor `round()` invocations) are identical on every
//!   machine and every run; CI gates on them (`bench_runner --check`);
//! * **wall-clock** — min/mean/max nanoseconds over the repetitions;
//!   machine-dependent, report-only, tracked as a trajectory via the CI
//!   artifact.
//!
//! # JSON schema (`dsf-bench-executor/v1`)
//!
//! ```json
//! {
//!   "schema": "dsf-bench-executor/v1",
//!   "mode": "quick",
//!   "entries": [
//!     {"name": "executor/bfs_wave/path/n=10000/event", "n": 10000,
//!      "m": 9999, "rounds": 10000, "messages": 19998, "activations": 19998,
//!      "wall_ns": {"min": 1, "mean": 2, "max": 3}}
//!   ]
//! }
//! ```
//!
//! One entry per line; names use only `[a-z0-9_/=.-]`, so no JSON string
//! escaping is ever needed.

use std::time::Instant;

use dsf_baselines::solve_collect_at_root;
use dsf_congest::{
    run_reference, run_with_buffers, CongestConfig, Message, NodeCtx, Outbox, Protocol,
    RoundLedger, RunBuffers, RunMetrics, SchedStats, SimError,
};
use dsf_core::det::{solve_deterministic, DetConfig};
use dsf_core::randomized::{solve_randomized, RandConfig};
use dsf_graph::{generators, NodeId, WeightedGraph};
use dsf_steiner::random_instance;

/// Identifier of the emitted JSON layout.
pub const SCHEMA: &str = "dsf-bench-executor/v1";

/// Wall-clock statistics over the repetitions of one workload, in
/// nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WallNs {
    /// Fastest repetition.
    pub min: u64,
    /// Mean over repetitions.
    pub mean: u64,
    /// Slowest repetition.
    pub max: u64,
}

/// One benchmark result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchEntry {
    /// Workload id, e.g. `executor/bfs_wave/path/n=10000/event`.
    pub name: String,
    /// Nodes of the workload graph.
    pub n: usize,
    /// Edges of the workload graph.
    pub m: usize,
    /// Simulated rounds (deterministic).
    pub rounds: u64,
    /// Delivered messages (deterministic).
    pub messages: u64,
    /// `Protocol::round` invocations (deterministic; 0 where not tracked).
    pub activations: u64,
    /// Wall-clock statistics (machine-dependent, report-only).
    pub wall_ns: WallNs,
}

/// A full `bench_runner` report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchReport {
    /// `"quick"` or `"full"`.
    pub mode: String,
    /// All entries, in a deterministic order.
    pub entries: Vec<BenchEntry>,
}

impl BenchReport {
    /// Serializes to the `dsf-bench-executor/v1` JSON layout.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str(&format!("  \"schema\": \"{SCHEMA}\",\n"));
        s.push_str(&format!("  \"mode\": \"{}\",\n", self.mode));
        s.push_str("  \"entries\": [\n");
        for (i, e) in self.entries.iter().enumerate() {
            let comma = if i + 1 < self.entries.len() { "," } else { "" };
            s.push_str(&format!(
                "    {{\"name\": \"{}\", \"n\": {}, \"m\": {}, \"rounds\": {}, \
                 \"messages\": {}, \"activations\": {}, \"wall_ns\": \
                 {{\"min\": {}, \"mean\": {}, \"max\": {}}}}}{comma}\n",
                e.name,
                e.n,
                e.m,
                e.rounds,
                e.messages,
                e.activations,
                e.wall_ns.min,
                e.wall_ns.mean,
                e.wall_ns.max,
            ));
        }
        s.push_str("  ]\n}\n");
        s
    }

    /// Parses the line-oriented subset of JSON that [`BenchReport::to_json`]
    /// emits (one entry object per line).
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed line or missing field.
    pub fn parse(json: &str) -> Result<BenchReport, String> {
        let mut mode = None;
        let mut entries = Vec::new();
        for line in json.lines() {
            if line.contains("\"schema\"") {
                let schema =
                    str_field(line, "schema").ok_or_else(|| "unreadable schema".to_string())?;
                if schema != SCHEMA {
                    return Err(format!("schema {schema:?}, expected {SCHEMA:?}"));
                }
            } else if line.contains("\"mode\"") {
                mode = str_field(line, "mode");
            } else if line.contains("\"name\"") {
                let name =
                    str_field(line, "name").ok_or_else(|| format!("bad entry line: {line}"))?;
                let get = |k: &str| {
                    u64_field(line, k).ok_or_else(|| format!("entry {name}: missing {k}"))
                };
                entries.push(BenchEntry {
                    name: name.clone(),
                    n: get("n")? as usize,
                    m: get("m")? as usize,
                    rounds: get("rounds")?,
                    messages: get("messages")?,
                    activations: get("activations")?,
                    wall_ns: WallNs {
                        min: get("min")?,
                        mean: get("mean")?,
                        max: get("max")?,
                    },
                });
            }
        }
        Ok(BenchReport {
            mode: mode.ok_or_else(|| "missing mode".to_string())?,
            entries,
        })
    }

    /// Compares the deterministic metrics against a checked-in baseline.
    ///
    /// Returns one human-readable drift description per mismatch (empty =
    /// gate passes). Wall-clock numbers are intentionally ignored.
    pub fn diff_deterministic(&self, baseline: &BenchReport) -> Vec<String> {
        let mut drifts = Vec::new();
        if self.mode != baseline.mode {
            drifts.push(format!(
                "mode {:?} does not match baseline mode {:?}",
                self.mode, baseline.mode
            ));
            return drifts;
        }
        for b in &baseline.entries {
            match self.entries.iter().find(|e| e.name == b.name) {
                None => drifts.push(format!("{}: entry disappeared", b.name)),
                Some(e) => {
                    for (what, now, was) in [
                        ("n", e.n as u64, b.n as u64),
                        ("m", e.m as u64, b.m as u64),
                        ("rounds", e.rounds, b.rounds),
                        ("messages", e.messages, b.messages),
                        ("activations", e.activations, b.activations),
                    ] {
                        if now != was {
                            drifts.push(format!("{}: {what} drifted {was} -> {now}", e.name));
                        }
                    }
                }
            }
        }
        for e in &self.entries {
            if !baseline.entries.iter().any(|b| b.name == e.name) {
                drifts.push(format!(
                    "{}: new entry not in baseline (re-generate it)",
                    e.name
                ));
            }
        }
        drifts
    }
}

fn str_field(line: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\": \"");
    let i = line.find(&pat)? + pat.len();
    let rest = &line[i..];
    Some(rest[..rest.find('"')?].to_string())
}

fn u64_field(line: &str, key: &str) -> Option<u64> {
    let pat = format!("\"{key}\": ");
    let i = line.find(&pat)? + pat.len();
    let digits: String = line[i..].chars().take_while(char::is_ascii_digit).collect();
    digits.parse().ok()
}

/// The raw-executor micro-workload: a BFS wave from node 0 — the sparse
/// single-source primitive underlying moat growth, where at any round only
/// the frontier has work. This is the workload class the active-set
/// scheduler exists for.
#[derive(Debug, Clone, Copy)]
struct Wave {
    depth: u32,
}

impl Message for Wave {
    fn encoded_bits(&self) -> usize {
        32
    }
}

#[derive(Debug)]
struct WaveNode {
    joined: bool,
}

impl Protocol for WaveNode {
    type Msg = Wave;

    fn init(&mut self, ctx: &NodeCtx, out: &mut Outbox<Wave>) {
        if ctx.id == NodeId(0) {
            self.joined = true;
            out.send_all(ctx, Wave { depth: 0 });
        }
    }

    fn round(&mut self, ctx: &NodeCtx, inbox: &[(NodeId, Wave)], out: &mut Outbox<Wave>) {
        if !self.joined {
            if let Some(&(_, msg)) = inbox.first() {
                self.joined = true;
                out.send_all(
                    ctx,
                    Wave {
                        depth: msg.depth + 1,
                    },
                );
            }
        }
    }

    fn done(&self) -> bool {
        // Idle until a wave message arrives; see the done() contract.
        true
    }
}

struct Timed {
    metrics: RunMetrics,
    stats: SchedStats,
    wall_ns: WallNs,
}

/// Runs `f` `reps` times, asserting the deterministic outcome never
/// changes across repetitions.
fn time_reps(
    reps: usize,
    mut f: impl FnMut() -> Result<(RunMetrics, SchedStats), SimError>,
) -> Timed {
    let mut wall = Vec::with_capacity(reps);
    let mut first: Option<(RunMetrics, SchedStats)> = None;
    for _ in 0..reps {
        let t0 = Instant::now();
        let out = f().expect("bench workload must run clean");
        wall.push(t0.elapsed().as_nanos() as u64);
        match &first {
            None => first = Some(out),
            Some((m, s)) => assert!(
                *m == out.0 && *s == out.1,
                "bench workload is not deterministic across repetitions"
            ),
        }
    }
    let (metrics, stats) = first.expect("at least one repetition");
    let min = *wall.iter().min().expect("reps > 0");
    let max = *wall.iter().max().expect("reps > 0");
    let mean = wall.iter().sum::<u64>() / wall.len() as u64;
    Timed {
        metrics,
        stats,
        wall_ns: WallNs { min, mean, max },
    }
}

fn wave_nodes(g: &WeightedGraph) -> Vec<WaveNode> {
    g.nodes().map(|_| WaveNode { joined: false }).collect()
}

/// One executor micro-benchmark: the same wave workload through both
/// engines, as two entries (`.../event` and `.../reference`).
fn executor_pair(name: &str, g: &WeightedGraph, reps: usize, entries: &mut Vec<BenchEntry>) {
    let cfg = CongestConfig::for_graph(g);
    let mut buffers = RunBuffers::for_graph(g);
    let event = time_reps(reps, || {
        run_with_buffers(g, wave_nodes(g), &cfg, &mut buffers).map(|r| (r.metrics, r.stats))
    });
    let reference = time_reps(reps, || {
        run_reference(g, wave_nodes(g), &cfg).map(|r| (r.metrics, r.stats))
    });
    assert_eq!(
        event.metrics, reference.metrics,
        "{name}: executors disagree"
    );
    for (suffix, t) in [("event", event), ("reference", reference)] {
        entries.push(BenchEntry {
            name: format!("{name}/{suffix}"),
            n: g.n(),
            m: g.m(),
            rounds: t.metrics.rounds,
            messages: t.metrics.messages,
            activations: t.stats.activations,
            wall_ns: t.wall_ns,
        });
    }
}

/// One end-to-end solver timing; rounds/messages come from the ledger.
fn solver_entry(
    name: &str,
    g: &WeightedGraph,
    reps: usize,
    entries: &mut Vec<BenchEntry>,
    mut f: impl FnMut() -> Result<RoundLedger, SimError>,
) {
    let timed = time_reps(reps, || {
        f().map(|ledger| {
            let messages = ledger.entries().iter().map(|e| e.messages).sum();
            (
                RunMetrics {
                    rounds: ledger.total(),
                    messages,
                    ..RunMetrics::default()
                },
                SchedStats::default(),
            )
        })
    });
    entries.push(BenchEntry {
        name: name.to_string(),
        n: g.n(),
        m: g.m(),
        rounds: timed.metrics.rounds,
        messages: timed.metrics.messages,
        activations: 0,
        wall_ns: timed.wall_ns,
    });
}

/// Runs every workload and assembles the report.
///
/// `quick` shrinks sizes and repetition counts for the CI smoke gate; the
/// checked-in baseline (`crates/bench/baselines/executor_quick.json`) is a
/// quick-mode report.
pub fn collect(quick: bool) -> BenchReport {
    let reps = if quick { 3 } else { 7 };
    let mut entries = Vec::new();

    // Raw executor micro-benchmarks: one sparse wave per graph family.
    // The 10k path is the headline workload: the reference engine performs
    // n invocations per round for ~n rounds (Θ(n²)), the active-set
    // scheduler ~2 per node total.
    let path_n = if quick { 10_000 } else { 30_000 };
    let g = generators::path(path_n, 1);
    executor_pair(
        &format!("executor/bfs_wave/path/n={path_n}"),
        &g,
        reps,
        &mut entries,
    );

    let side = if quick { 100 } else { 160 };
    let g = generators::grid(side, side, 4, 3);
    executor_pair(
        &format!("executor/bfs_wave/grid/n={}", side * side),
        &g,
        reps,
        &mut entries,
    );

    let (gn, gp) = if quick {
        (2_000, 0.008)
    } else {
        (4_000, 0.005)
    };
    let g = generators::gnp_connected(gn, gp, 9, 5);
    executor_pair(
        &format!("executor/bfs_wave/gnp/n={gn}"),
        &g,
        reps,
        &mut entries,
    );

    // End-to-end solver timings (all protocol stages run through the
    // event-driven engine).
    let (sn, sp) = if quick { (48, 0.12) } else { (96, 0.08) };
    let g = generators::gnp_connected(sn, sp, 9, 7);
    let inst = random_instance(&g, 3, 2, 11);
    solver_entry(
        &format!("solver/deterministic/gnp/n={sn}"),
        &g,
        reps,
        &mut entries,
        || solve_deterministic(&g, &inst, &DetConfig::default()).map(|o| o.rounds),
    );
    solver_entry(
        &format!("solver/randomized/gnp/n={sn}"),
        &g,
        reps,
        &mut entries,
        || {
            let cfg = RandConfig {
                seed: 5,
                repetitions: 2,
                ..RandConfig::default()
            };
            solve_randomized(&g, &inst, &cfg).map(|o| o.rounds)
        },
    );
    solver_entry(
        &format!("solver/collect_at_root/gnp/n={sn}"),
        &g,
        reps,
        &mut entries,
        || solve_collect_at_root(&g, &inst).map(|o| o.rounds),
    );

    BenchReport {
        mode: if quick { "quick" } else { "full" }.to_string(),
        entries,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> BenchReport {
        BenchReport {
            mode: "quick".into(),
            entries: vec![
                BenchEntry {
                    name: "executor/x/event".into(),
                    n: 10,
                    m: 9,
                    rounds: 11,
                    messages: 18,
                    activations: 20,
                    wall_ns: WallNs {
                        min: 1,
                        mean: 2,
                        max: 3,
                    },
                },
                BenchEntry {
                    name: "solver/y".into(),
                    n: 48,
                    m: 100,
                    rounds: 321,
                    messages: 4567,
                    activations: 0,
                    wall_ns: WallNs {
                        min: 9,
                        mean: 9,
                        max: 9,
                    },
                },
            ],
        }
    }

    #[test]
    fn json_roundtrips() {
        let r = sample();
        let parsed = BenchReport::parse(&r.to_json()).unwrap();
        assert_eq!(parsed, r);
    }

    #[test]
    fn diff_flags_deterministic_drift_only() {
        let base = sample();
        let mut cur = sample();
        assert!(cur.diff_deterministic(&base).is_empty());
        // Wall-clock changes never gate.
        cur.entries[0].wall_ns.mean = 999_999;
        assert!(cur.diff_deterministic(&base).is_empty());
        // Metric drift does.
        cur.entries[0].rounds += 1;
        let drifts = cur.diff_deterministic(&base);
        assert_eq!(drifts.len(), 1);
        assert!(drifts[0].contains("rounds drifted 11 -> 12"));
        // So do vanished and novel entries.
        cur.entries.remove(1);
        cur.entries.push(BenchEntry {
            name: "solver/z".into(),
            ..base.entries[1].clone()
        });
        let drifts = cur.diff_deterministic(&base);
        assert!(drifts.iter().any(|d| d.contains("entry disappeared")));
        assert!(drifts.iter().any(|d| d.contains("not in baseline")));
    }

    #[test]
    fn mode_mismatch_is_a_drift() {
        let base = sample();
        let mut cur = sample();
        cur.mode = "full".into();
        assert_eq!(cur.diff_deterministic(&base).len(), 1);
    }
}
