//! The `bench_runner --server` mode: latency and throughput of the
//! streaming server (`dsf-server`) under open-loop load, with the
//! admission-control and bit-identical-to-direct-solve guarantees
//! asserted in-harness, emitted as `BENCH_server.json`.
//!
//! The workload is a fixed mixed job list (all four solver kinds over a
//! corpus instance, plus jobs classified *large* so both lanes run):
//!
//! * **probes** — before anything is timed, a paused server is driven
//!   through the admission-control edge cases: a full queue under
//!   [`AdmissionPolicy::Reject`] must return `Saturated` (not deadlock),
//!   a cancelled job must be reported as cancelled, an expired deadline
//!   must be reported as expired. A violated probe panics the run.
//! * **closed-loop** — the whole mix submitted at once and drained,
//!   measuring the server's capacity (solves/sec); emitted with
//!   `rate_milli_x = 0`.
//! * **open-loop** — the mix re-submitted with exponential-free fixed
//!   inter-arrival times at offered rates ×{0.5, 1, 2} of the measured
//!   capacity, through a deliberately shallow queue (blocking admission =
//!   backpressure at ×2). Per-job sojourn latency (submit → result) is
//!   reported as p50/p99.
//!
//! Every tier asserts in-harness that each completed job is bit-identical
//! — forest, full round ledger, ratio — to a direct solve on a fresh
//! session, and that *every* offered job came back (admitted jobs are
//! never silently dropped).
//!
//! Like the `--scale` and `--service` tiers there is no checked-in
//! baseline (`--check` is rejected): wall-clock is the product, and the
//! correctness gates are the in-harness asserts.
//!
//! # JSON schema (`dsf-bench-server/v1`)
//!
//! ```json
//! {
//!   "schema": "dsf-bench-server/v1",
//!   "mode": "quick",
//!   "entries": [
//!     {"name": "server/open-loop/x1.0", "jobs": 24, "workers": 4,
//!      "queue_capacity": 8, "rate_milli_x": 1000, "rounds": 4224,
//!      "messages": 105984, "wall_ns": 1, "offered_per_sec_milli": 1,
//!      "p50_ns": 1, "p99_ns": 1, "solves_per_sec_milli": 1}
//!   ]
//! }
//! ```
//!
//! `jobs`, `workers`, `queue_capacity`, `rate_milli_x`, `rounds`, and
//! `messages` are deterministic (blocking admission means every offered
//! job completes, and per-job metrics are schedule-invariant);
//! `wall_ns`, `offered_per_sec_milli`, `p50_ns`, `p99_ns`, and
//! `solves_per_sec_milli` are machine-dependent, report-only. One entry
//! object per line, same line-oriented convention as the other schemas.

use std::sync::Arc;
use std::time::{Duration, Instant};

use dsf_server::{
    AdmissionPolicy, JobOptions, JobStatus, ServerConfig, ServerError, StreamingServer,
};
use dsf_service::{JobOutcome, SolveRequest, SolverKind, SolverSession};
use dsf_workloads::corpus::{stream, Tier};

/// Identifier of the emitted JSON layout.
pub const SCHEMA: &str = "dsf-bench-server/v1";

/// One server benchmark result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServerBenchEntry {
    /// Workload id, e.g. `server/open-loop/x1.0`.
    pub name: String,
    /// Jobs offered — and, asserted in-harness, completed (deterministic).
    pub jobs: usize,
    /// Small-lane workers / sharded threads of a large job (deterministic).
    pub workers: usize,
    /// Admission-queue bound the tier ran with (deterministic).
    pub queue_capacity: usize,
    /// Offered rate as a multiple of measured capacity, ×1000; 0 for the
    /// closed-loop capacity tier (deterministic).
    pub rate_milli_x: u64,
    /// Sum of per-job total rounds (deterministic).
    pub rounds: u64,
    /// Sum of per-job delivered messages (deterministic).
    pub messages: u64,
    /// Wall-clock from first submit to last result, ns (report-only).
    pub wall_ns: u64,
    /// Offered arrival rate, jobs/sec ×1000 (report-only — derived from
    /// the measured capacity).
    pub offered_per_sec_milli: u64,
    /// Median submit→result sojourn latency, ns (report-only).
    pub p50_ns: u64,
    /// 99th-percentile sojourn latency, ns (report-only).
    pub p99_ns: u64,
    /// Completion throughput, jobs/sec ×1000 (report-only).
    pub solves_per_sec_milli: u64,
}

/// A full `--server` report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServerBenchReport {
    /// `"quick"` or `"full"`.
    pub mode: String,
    /// All entries, in a deterministic order.
    pub entries: Vec<ServerBenchEntry>,
}

impl ServerBenchReport {
    /// Serializes to the `dsf-bench-server/v1` JSON layout.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str(&format!("  \"schema\": \"{SCHEMA}\",\n"));
        s.push_str(&format!("  \"mode\": \"{}\",\n", self.mode));
        s.push_str("  \"entries\": [\n");
        for (i, e) in self.entries.iter().enumerate() {
            let comma = if i + 1 < self.entries.len() { "," } else { "" };
            s.push_str(&format!(
                "    {{\"name\": \"{}\", \"jobs\": {}, \"workers\": {}, \
                 \"queue_capacity\": {}, \"rate_milli_x\": {}, \"rounds\": {}, \
                 \"messages\": {}, \"wall_ns\": {}, \"offered_per_sec_milli\": {}, \
                 \"p50_ns\": {}, \"p99_ns\": {}, \"solves_per_sec_milli\": {}}}{comma}\n",
                e.name,
                e.jobs,
                e.workers,
                e.queue_capacity,
                e.rate_milli_x,
                e.rounds,
                e.messages,
                e.wall_ns,
                e.offered_per_sec_milli,
                e.p50_ns,
                e.p99_ns,
                e.solves_per_sec_milli,
            ));
        }
        s.push_str("  ]\n}\n");
        s
    }
}

/// The fixed mixed job list: `small_jobs` over the first corpus instance
/// (solver kinds cycling, certificates attached) plus `large_jobs` on a
/// grid that the tier's threshold classifies as large.
fn mixed_requests(tier: Tier, small_jobs: usize, large_jobs: usize) -> (Vec<SolveRequest>, usize) {
    let entry = stream(tier).next().expect("corpus is nonempty");
    let graph = Arc::new(entry.graph.clone());
    let mut requests: Vec<SolveRequest> = (0..small_jobs)
        .map(|j| {
            let solver = SolverKind::ALL[j % SolverKind::ALL.len()];
            SolveRequest::new(
                format!("small/{}/{j}", solver.name()),
                graph.clone(),
                entry.instance.clone(),
                solver,
                j as u64,
            )
            .with_cert_upper(entry.certificate.upper)
        })
        .collect();
    // The large jobs: a 100-node grid, threshold pinned to its size so the
    // large lane (whole-pool sharded executor) really runs.
    let side: usize = 10;
    let corner = |r: usize, c: usize| dsf_graph::NodeId((r * side + c) as u32);
    let large_graph = Arc::new(dsf_graph::generators::grid(side, side, 8, 1));
    let large_inst = dsf_steiner::InstanceBuilder::new(&large_graph)
        .component(&[corner(0, 0), corner(side - 1, side - 1)])
        .component(&[corner(0, side - 1), corner(side - 1, 0)])
        .build()
        .expect("grid corners are valid terminals");
    let threshold = large_graph.n();
    for j in 0..large_jobs {
        requests.push(SolveRequest::new(
            format!("large/det/{j}"),
            large_graph.clone(),
            large_inst.clone(),
            SolverKind::Deterministic,
            j as u64,
        ));
    }
    (requests, threshold)
}

/// Direct-solve references, one fresh session per request.
fn references(requests: &[SolveRequest]) -> Vec<JobOutcome> {
    requests
        .iter()
        .map(|r| SolverSession::new().solve(r).expect("clean solve"))
        .collect()
}

/// Drives the admission-control edge cases on a paused server; any
/// deviation panics (this is the mode's correctness gate, alongside the
/// bit-identity asserts).
fn probe_admission_control(requests: &[SolveRequest], threshold: usize) {
    let capacity = 3;
    let mut server = StreamingServer::new(ServerConfig {
        workers: 1,
        queue_capacity: capacity,
        admission: AdmissionPolicy::Reject,
        large_node_threshold: threshold,
    });
    server.pause();
    for (i, req) in requests.iter().take(capacity).enumerate() {
        server
            .submit(req.clone())
            .unwrap_or_else(|e| panic!("probe submit {i} under capacity rejected: {e}"));
    }
    match server.submit(requests[0].clone()) {
        Err(ServerError::Saturated { .. }) => {}
        other => panic!("full queue must reject with Saturated, got {other:?}"),
    }
    // Drain the backlog, then pause again for the cancellation and
    // deadline probes.
    server.resume();
    for _ in 0..capacity {
        assert!(
            server
                .next_result_timeout(Duration::from_secs(60))
                .is_some(),
            "paused-queue backlog failed to drain"
        );
    }
    server.pause();
    let doomed = server.submit(requests[0].clone()).expect("admitted");
    let expired = server
        .submit_with(
            requests[1].clone(),
            JobOptions::default().with_deadline(Instant::now()),
        )
        .expect("admitted");
    assert!(doomed.cancel(), "cancel must land before dispatch");
    server.resume();
    assert!(
        matches!(doomed.wait().status, JobStatus::Cancelled),
        "cancelled job must be reported as cancelled"
    );
    assert!(
        matches!(expired.wait().status, JobStatus::DeadlineExpired),
        "expired job must be reported as expired"
    );
    server.shutdown();
}

/// Submits the whole mix (optionally paced), waits for every result, and
/// asserts completeness + bit-identity before emitting an entry.
#[allow(clippy::too_many_arguments)]
fn load_tier(
    name: &str,
    requests: &[SolveRequest],
    baseline: &[JobOutcome],
    threshold: usize,
    workers: usize,
    queue_capacity: usize,
    interarrival: Option<Duration>,
    rate_milli_x: u64,
    offered_per_sec_milli: u64,
    entries: &mut Vec<ServerBenchEntry>,
) {
    let mut server = StreamingServer::new(ServerConfig {
        workers,
        queue_capacity,
        admission: AdmissionPolicy::Block,
        large_node_threshold: threshold,
    });
    let t0 = Instant::now();
    let mut handles = Vec::with_capacity(requests.len());
    for (j, req) in requests.iter().enumerate() {
        if let Some(gap) = interarrival {
            // Open loop: arrival j is *scheduled* at t0 + j·gap; a stalled
            // submit (backpressure) delays later arrivals — that queueing
            // time is exactly what p99 measures.
            let due = t0 + gap * j as u32;
            let now = Instant::now();
            if due > now {
                std::thread::sleep(due - now);
            }
        }
        handles.push(
            server
                .submit(req.clone())
                .expect("blocking admission admits"),
        );
    }
    let mut latencies: Vec<u64> = Vec::with_capacity(handles.len());
    let mut rounds = 0u64;
    let mut messages = 0u64;
    for (handle, reference) in handles.iter().zip(baseline) {
        let result = handle.wait();
        let out = result
            .status
            .outcome()
            .unwrap_or_else(|| panic!("{name}: job {} did not complete", result.id));
        assert!(
            out.deterministic_eq(reference),
            "{name}: job {} is not bit-identical to its direct solve",
            result.id
        );
        latencies.push(result.total_ns);
        rounds += out.rounds();
        messages += out.messages();
    }
    let wall_ns = t0.elapsed().as_nanos() as u64;
    server.shutdown();
    latencies.sort_unstable();
    let pct = |p: usize| latencies[(latencies.len() - 1) * p / 100];
    entries.push(ServerBenchEntry {
        name: name.to_string(),
        jobs: requests.len(),
        workers,
        queue_capacity,
        rate_milli_x,
        rounds,
        messages,
        wall_ns,
        offered_per_sec_milli,
        p50_ns: pct(50),
        p99_ns: pct(99),
        solves_per_sec_milli: (requests.len() as u64)
            .saturating_mul(1_000_000_000_000)
            .checked_div(wall_ns.max(1))
            .unwrap_or(0),
    });
}

/// Runs the probes, the closed-loop capacity tier, and the open-loop rate
/// tiers, and assembles the report.
///
/// `quick` shrinks the job mix (CI smoke); the tier structure — probes,
/// closed loop, offered rates ×{0.5, 1, 2} — is identical in both modes.
pub fn collect(quick: bool) -> ServerBenchReport {
    let tier = if quick { Tier::Quick } else { Tier::Full };
    let (small_jobs, large_jobs) = if quick { (22, 2) } else { (92, 4) };
    let workers = 4;
    let (requests, threshold) = mixed_requests(tier, small_jobs, large_jobs);
    let baseline = references(&requests);

    probe_admission_control(&requests, threshold);

    let mut entries = Vec::new();
    // Closed loop: everything at once through a deep queue — the measured
    // capacity the open-loop tiers are scaled from.
    load_tier(
        "server/closed-loop",
        &requests,
        &baseline,
        threshold,
        workers,
        requests.len(),
        None,
        0,
        0,
        &mut entries,
    );
    let capacity_jobs_per_sec_milli = entries[0].solves_per_sec_milli.max(1);

    // Open loop: fixed inter-arrival at ×{0.5, 1, 2} of capacity, through
    // a shallow queue so over-capacity load actually backpressures.
    let shallow = (requests.len() / 3).max(2);
    for rate_milli_x in [500u64, 1000, 2000] {
        let offered_per_sec_milli = capacity_jobs_per_sec_milli * rate_milli_x / 1000;
        let interarrival = Duration::from_nanos(
            1_000_000_000_000u64
                .checked_div(offered_per_sec_milli.max(1))
                .unwrap_or(u64::MAX)
                .min(5_000_000_000), // cap pathological gaps at 5 s/job
        );
        load_tier(
            &format!("server/open-loop/x{:.1}", rate_milli_x as f64 / 1000.0),
            &requests,
            &baseline,
            threshold,
            workers,
            shallow,
            Some(interarrival),
            rate_milli_x,
            offered_per_sec_milli,
            &mut entries,
        );
    }

    ServerBenchReport {
        mode: if quick { "quick" } else { "full" }.to_string(),
        entries,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_has_schema_and_one_entry_per_line() {
        let report = ServerBenchReport {
            mode: "quick".into(),
            entries: vec![ServerBenchEntry {
                name: "server/open-loop/x1.0".into(),
                jobs: 24,
                workers: 4,
                queue_capacity: 8,
                rate_milli_x: 1000,
                rounds: 4224,
                messages: 105_984,
                wall_ns: 123,
                offered_per_sec_milli: 456,
                p50_ns: 7,
                p99_ns: 8,
                solves_per_sec_milli: 9,
            }],
        };
        let json = report.to_json();
        assert!(json.contains("\"schema\": \"dsf-bench-server/v1\""));
        assert!(json.contains("\"rate_milli_x\": 1000"));
        assert_eq!(json.lines().filter(|l| l.contains("\"name\"")).count(), 1);
    }

    #[test]
    fn quick_collect_gates_and_reports_all_tiers() {
        let report = collect(true);
        assert_eq!(report.mode, "quick");
        assert_eq!(report.entries.len(), 4, "closed loop + three rates");
        for e in &report.entries {
            assert_eq!(e.jobs, 24);
            assert!(e.rounds > 0 && e.messages > 0);
            assert!(e.p50_ns <= e.p99_ns);
        }
        // Deterministic sums agree across tiers: scheduling is invisible.
        let (r0, m0) = (report.entries[0].rounds, report.entries[0].messages);
        for e in &report.entries[1..] {
            assert_eq!((e.rounds, e.messages), (r0, m0));
        }
    }
}
