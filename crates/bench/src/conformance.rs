//! The `bench_runner --conformance` mode: sweeps the conformance corpus
//! through the [`dsf_workloads::conformance`] oracle and emits the
//! per-family ratio distribution as machine-readable JSON
//! (`BENCH_conformance.json`).
//!
//! # JSON schema (`dsf-bench-conformance/v2`)
//!
//! ```json
//! {
//!   "schema": "dsf-bench-conformance/v2",
//!   "mode": "quick",
//!   "violations": 0,
//!   "solvers": [
//!     {"solver": "det", "entries": 36, "families": 9,
//!      "mean_ratio_milli": 1210, "max_ratio_milli": 1833,
//!      "max_bound_milli": 2350}
//!   ],
//!   "entries": [
//!     {"name": "conformance/gnp/matched_clusters/seed=0/det", "n": 20,
//!      "m": 52, "k": 4, "t": 12, "weight": 37, "cert_lower_milli": 30000,
//!      "cert_upper": 41, "ratio_milli": 903, "bound_milli": 2350}
//!   ]
//! }
//! ```
//!
//! One entry object per line (same line-oriented convention as the
//! executor schema). `ratio_milli` is `⌈1000 · weight / cert_upper⌉` — an
//! integer so the report is bit-identical across machines;
//! `cert_lower_milli` is the certified lower bound scaled by 1000 and
//! rounded. v2 adds, per entry, the ratio ceiling the oracle held that
//! solver to (`bound_milli`, so `ratio_milli ≤ bound_milli` is checkable
//! offline by `tools/check_bench_schema.py`) and a per-solver `solvers`
//! summary block. Everything in the report is deterministic; the gate is
//! the `violations` count (the runner exits non-zero when it is not 0) —
//! which since v2 includes the beat-the-det condition: `greedy +
//! local_search` must match or beat `det`'s mean ratio on at least half
//! of the graph families.

use dsf_workloads::conformance::{check_entry, EntryOutcome};
use dsf_workloads::corpus::{corpus, CorpusEntry, Tier};

/// Identifier of the emitted JSON layout.
pub const SCHEMA: &str = "dsf-bench-conformance/v2";

/// One solver-on-instance record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfEntry {
    /// Record id: `conformance/<family>/<pattern>/seed=<s>/<solver>`.
    pub name: String,
    /// Nodes of the instance graph.
    pub n: usize,
    /// Edges of the instance graph.
    pub m: usize,
    /// Input components.
    pub k: usize,
    /// Terminals.
    pub t: usize,
    /// Weight of the solver's forest.
    pub weight: u64,
    /// Certified lower bound, scaled by 1000 and rounded.
    pub cert_lower_milli: u64,
    /// Certified upper bound on OPT.
    pub cert_upper: u64,
    /// `⌈1000 · weight / cert_upper⌉`.
    pub ratio_milli: u64,
    /// The ratio ceiling the oracle held this solver to, in milli units
    /// (`ratio_milli ≤ bound_milli` whenever the gate passed).
    pub bound_milli: u64,
}

/// Per-solver aggregate over the whole sweep (the v2 `solvers` block).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SolverSummary {
    /// Solver name, e.g. `greedy+local_search`.
    pub solver: String,
    /// Records contributing to the aggregate.
    pub entries: usize,
    /// Distinct graph families covered.
    pub families: usize,
    /// Mean achieved `ratio_milli` (integer division).
    pub mean_ratio_milli: u64,
    /// Worst achieved `ratio_milli`.
    pub max_ratio_milli: u64,
    /// Loosest per-entry ceiling the solver was held to.
    pub max_bound_milli: u64,
}

/// A full conformance report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConformanceReport {
    /// `"quick"` or `"full"`.
    pub mode: String,
    /// Oracle violations across the sweep (0 = gate passes).
    pub violations: Vec<String>,
    /// Per-solver aggregates, in first-appearance order.
    pub solvers: Vec<SolverSummary>,
    /// Per solver-on-instance records, in corpus order.
    pub entries: Vec<ConfEntry>,
}

/// Splits a record name `conformance/<family>/<pattern>/seed=<s>/<solver>`
/// into its family and solver parts.
fn family_solver(name: &str) -> (&str, &str) {
    let parts: Vec<&str> = name.split('/').collect();
    (parts[1], parts[parts.len() - 1])
}

/// Aggregates `entries` into the per-solver v2 summary block.
pub fn solver_summaries(entries: &[ConfEntry]) -> Vec<SolverSummary> {
    let mut order: Vec<&str> = Vec::new();
    for e in entries {
        let (_, solver) = family_solver(&e.name);
        if !order.contains(&solver) {
            order.push(solver);
        }
    }
    order
        .into_iter()
        .map(|solver| {
            let rs: Vec<&ConfEntry> = entries
                .iter()
                .filter(|e| family_solver(&e.name).1 == solver)
                .collect();
            let mut families: Vec<&str> = rs.iter().map(|e| family_solver(&e.name).0).collect();
            families.sort_unstable();
            families.dedup();
            SolverSummary {
                solver: solver.to_string(),
                entries: rs.len(),
                families: families.len(),
                mean_ratio_milli: rs.iter().map(|e| e.ratio_milli).sum::<u64>() / rs.len() as u64,
                max_ratio_milli: rs.iter().map(|e| e.ratio_milli).max().unwrap_or(0),
                max_bound_milli: rs.iter().map(|e| e.bound_milli).max().unwrap_or(0),
            }
        })
        .collect()
}

/// The beat-the-det gate: on how many graph families does
/// `greedy+local_search` achieve a mean ratio ≤ `det`'s? Returns
/// `(families_beaten, families_compared)`; compared via summed
/// `ratio_milli` (equal record counts per family), so no rounding noise.
pub fn families_beating_det(entries: &[ConfEntry]) -> (usize, usize) {
    let mut families: Vec<&str> = entries.iter().map(|e| family_solver(&e.name).0).collect();
    families.sort_unstable();
    families.dedup();
    let sum_for = |family: &str, solver: &str| -> Option<(u64, u64)> {
        let rs: Vec<u64> = entries
            .iter()
            .filter(|e| family_solver(&e.name) == (family, solver))
            .map(|e| e.ratio_milli)
            .collect();
        (!rs.is_empty()).then(|| (rs.iter().sum(), rs.len() as u64))
    };
    let mut beaten = 0;
    let mut compared = 0;
    for family in families {
        let (Some((ls_sum, ls_n)), Some((det_sum, det_n))) = (
            sum_for(family, "greedy+local_search"),
            sum_for(family, "det"),
        ) else {
            continue;
        };
        compared += 1;
        // mean_ls ≤ mean_det ⟺ ls_sum·det_n ≤ det_sum·ls_n.
        if ls_sum * det_n <= det_sum * ls_n {
            beaten += 1;
        }
    }
    (beaten, compared)
}

fn records_of(entry: &CorpusEntry, outcome: &EntryOutcome) -> Vec<ConfEntry> {
    outcome
        .records
        .iter()
        .map(|r| {
            let upper = entry.certificate.upper.max(1);
            ConfEntry {
                name: format!("conformance/{}/{}", entry.id, r.solver),
                n: entry.graph.n(),
                m: entry.graph.m(),
                k: entry.instance.k(),
                t: entry.instance.t(),
                weight: r.weight,
                cert_lower_milli: (entry.certificate.lower * 1000.0).round() as u64,
                cert_upper: entry.certificate.upper,
                ratio_milli: (1000 * r.weight).div_ceil(upper),
                bound_milli: r.bound_milli,
            }
        })
        .collect()
}

/// Sweeps the corpus tier and assembles the report.
pub fn collect(quick: bool) -> ConformanceReport {
    let tier = if quick { Tier::Quick } else { Tier::Full };
    let mut entries = Vec::new();
    let mut violations = Vec::new();
    for entry in corpus(tier) {
        let outcome = check_entry(&entry);
        entries.extend(records_of(&entry, &outcome));
        violations.extend(
            outcome
                .violations
                .into_iter()
                .map(|v| format!("{}: {v}", entry.id)),
        );
    }
    // The beat-the-det gate (in-harness, not just report-only): the
    // improved greedy must match or beat det's mean ratio on at least
    // half of the graph families.
    let (beaten, compared) = families_beating_det(&entries);
    if 2 * beaten < compared {
        violations.push(format!(
            "[greedy+local_search] beats det's mean ratio on only {beaten} of \
             {compared} families (need >= {})",
            compared.div_ceil(2)
        ));
    }
    ConformanceReport {
        mode: if quick { "quick" } else { "full" }.to_string(),
        violations,
        solvers: solver_summaries(&entries),
        entries,
    }
}

impl ConformanceReport {
    /// Serializes to the `dsf-bench-conformance/v1` JSON layout.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str(&format!("  \"schema\": \"{SCHEMA}\",\n"));
        s.push_str(&format!("  \"mode\": \"{}\",\n", self.mode));
        s.push_str(&format!("  \"violations\": {},\n", self.violations.len()));
        s.push_str("  \"solvers\": [\n");
        for (i, sv) in self.solvers.iter().enumerate() {
            let comma = if i + 1 < self.solvers.len() { "," } else { "" };
            s.push_str(&format!(
                "    {{\"solver\": \"{}\", \"entries\": {}, \"families\": {}, \
                 \"mean_ratio_milli\": {}, \"max_ratio_milli\": {}, \
                 \"max_bound_milli\": {}}}{comma}\n",
                sv.solver,
                sv.entries,
                sv.families,
                sv.mean_ratio_milli,
                sv.max_ratio_milli,
                sv.max_bound_milli,
            ));
        }
        s.push_str("  ],\n");
        s.push_str("  \"entries\": [\n");
        for (i, e) in self.entries.iter().enumerate() {
            let comma = if i + 1 < self.entries.len() { "," } else { "" };
            s.push_str(&format!(
                "    {{\"name\": \"{}\", \"n\": {}, \"m\": {}, \"k\": {}, \"t\": {}, \
                 \"weight\": {}, \"cert_lower_milli\": {}, \"cert_upper\": {}, \
                 \"ratio_milli\": {}, \"bound_milli\": {}}}{comma}\n",
                e.name,
                e.n,
                e.m,
                e.k,
                e.t,
                e.weight,
                e.cert_lower_milli,
                e.cert_upper,
                e.ratio_milli,
                e.bound_milli,
            ));
        }
        s.push_str("  ]\n}\n");
        s
    }

    /// Per-`family/solver` ratio distribution (min/mean/max of
    /// `ratio_milli`), in first-appearance order — the human-readable
    /// summary `bench_runner` prints.
    pub fn family_summary(&self) -> Vec<(String, u64, u64, u64)> {
        let mut order: Vec<String> = Vec::new();
        let mut buckets: std::collections::HashMap<String, Vec<u64>> =
            std::collections::HashMap::new();
        for e in &self.entries {
            // name = conformance/<family>/<pattern>/seed=<s>/<solver>
            let parts: Vec<&str> = e.name.split('/').collect();
            let (family, solver) = (parts[1], parts[parts.len() - 1]);
            let key = format!("{family}/{solver}");
            if !buckets.contains_key(&key) {
                order.push(key.clone());
            }
            buckets.entry(key).or_default().push(e.ratio_milli);
        }
        order
            .into_iter()
            .map(|key| {
                let rs = &buckets[&key];
                let min = *rs.iter().min().expect("nonempty bucket");
                let max = *rs.iter().max().expect("nonempty bucket");
                let mean = rs.iter().sum::<u64>() / rs.len() as u64;
                (key, min, mean, max)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(name: &str, ratio_milli: u64) -> ConfEntry {
        ConfEntry {
            name: name.into(),
            n: 20,
            m: 50,
            k: 3,
            t: 6,
            weight: 30,
            cert_lower_milli: 28000,
            cert_upper: 28,
            ratio_milli,
            bound_milli: 2000,
        }
    }

    fn sample() -> ConformanceReport {
        let entries = vec![
            entry("conformance/gnp/long_range/seed=0/det", 1072),
            entry("conformance/gnp/long_range/seed=0/moat", 1000),
        ];
        ConformanceReport {
            mode: "quick".into(),
            violations: Vec::new(),
            solvers: solver_summaries(&entries),
            entries,
        }
    }

    #[test]
    fn json_has_schema_solver_block_and_one_entry_per_line() {
        let json = sample().to_json();
        assert!(json.contains("\"schema\": \"dsf-bench-conformance/v2\""));
        assert!(json.contains("\"violations\": 0"));
        assert!(json.contains("\"bound_milli\": 2000"));
        let entry_lines = json.lines().filter(|l| l.contains("\"name\"")).count();
        assert_eq!(entry_lines, 2);
        let solver_lines = json.lines().filter(|l| l.contains("\"solver\"")).count();
        assert_eq!(solver_lines, 2);
    }

    #[test]
    fn family_summary_aggregates_per_solver() {
        let s = sample().family_summary();
        assert_eq!(s.len(), 2);
        assert_eq!(s[0], ("gnp/det".into(), 1072, 1072, 1072));
        assert_eq!(s[1], ("gnp/moat".into(), 1000, 1000, 1000));
    }

    #[test]
    fn solver_summaries_aggregate_across_families() {
        let entries = vec![
            entry("conformance/gnp/long_range/seed=0/det", 1100),
            entry("conformance/ring/long_range/seed=0/det", 1300),
            entry("conformance/gnp/long_range/seed=0/moat", 1000),
        ];
        let s = solver_summaries(&entries);
        assert_eq!(s.len(), 2);
        assert_eq!(s[0].solver, "det");
        assert_eq!(s[0].entries, 2);
        assert_eq!(s[0].families, 2);
        assert_eq!(s[0].mean_ratio_milli, 1200);
        assert_eq!(s[0].max_ratio_milli, 1300);
        assert_eq!(s[0].max_bound_milli, 2000);
        assert_eq!(s[1].solver, "moat");
    }

    #[test]
    fn beat_det_gate_counts_families() {
        let entries = vec![
            // Family gnp: improver (mean 1000) beats det (mean 1100).
            entry("conformance/gnp/a/seed=0/det", 1100),
            entry("conformance/gnp/a/seed=0/greedy+local_search", 1000),
            // Family ring: improver loses.
            entry("conformance/ring/a/seed=0/det", 1000),
            entry("conformance/ring/a/seed=0/greedy+local_search", 1200),
            // Family star: exact tie counts as beaten.
            entry("conformance/star/a/seed=0/det", 1050),
            entry("conformance/star/a/seed=0/greedy+local_search", 1050),
        ];
        assert_eq!(families_beating_det(&entries), (2, 3));
    }

    #[test]
    fn ratio_milli_rounds_up() {
        // 1000 * 30 / 28 = 1071.42 -> 1072.
        assert_eq!((1000u64 * 30).div_ceil(28), 1072);
    }
}
