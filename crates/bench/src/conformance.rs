//! The `bench_runner --conformance` mode: sweeps the conformance corpus
//! through the [`dsf_workloads::conformance`] oracle and emits the
//! per-family ratio distribution as machine-readable JSON
//! (`BENCH_conformance.json`).
//!
//! # JSON schema (`dsf-bench-conformance/v1`)
//!
//! ```json
//! {
//!   "schema": "dsf-bench-conformance/v1",
//!   "mode": "quick",
//!   "violations": 0,
//!   "entries": [
//!     {"name": "conformance/gnp/matched_clusters/seed=0/det", "n": 20,
//!      "m": 52, "k": 4, "t": 12, "weight": 37, "cert_lower_milli": 30000,
//!      "cert_upper": 41, "ratio_milli": 903}
//!   ]
//! }
//! ```
//!
//! One entry object per line (same line-oriented convention as the
//! executor schema). `ratio_milli` is `⌈1000 · weight / cert_upper⌉` — an
//! integer so the report is bit-identical across machines; `cert_lower_milli`
//! is the certified lower bound scaled by 1000 and rounded. Everything in
//! the report is deterministic; the gate is the `violations` count (the
//! runner exits non-zero when it is not 0).

use dsf_workloads::conformance::{check_entry, EntryOutcome};
use dsf_workloads::corpus::{corpus, CorpusEntry, Tier};

/// Identifier of the emitted JSON layout.
pub const SCHEMA: &str = "dsf-bench-conformance/v1";

/// One solver-on-instance record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfEntry {
    /// Record id: `conformance/<family>/<pattern>/seed=<s>/<solver>`.
    pub name: String,
    /// Nodes of the instance graph.
    pub n: usize,
    /// Edges of the instance graph.
    pub m: usize,
    /// Input components.
    pub k: usize,
    /// Terminals.
    pub t: usize,
    /// Weight of the solver's forest.
    pub weight: u64,
    /// Certified lower bound, scaled by 1000 and rounded.
    pub cert_lower_milli: u64,
    /// Certified upper bound on OPT.
    pub cert_upper: u64,
    /// `⌈1000 · weight / cert_upper⌉`.
    pub ratio_milli: u64,
}

/// A full conformance report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConformanceReport {
    /// `"quick"` or `"full"`.
    pub mode: String,
    /// Oracle violations across the sweep (0 = gate passes).
    pub violations: Vec<String>,
    /// Per solver-on-instance records, in corpus order.
    pub entries: Vec<ConfEntry>,
}

fn records_of(entry: &CorpusEntry, outcome: &EntryOutcome) -> Vec<ConfEntry> {
    outcome
        .records
        .iter()
        .map(|r| {
            let upper = entry.certificate.upper.max(1);
            ConfEntry {
                name: format!("conformance/{}/{}", entry.id, r.solver),
                n: entry.graph.n(),
                m: entry.graph.m(),
                k: entry.instance.k(),
                t: entry.instance.t(),
                weight: r.weight,
                cert_lower_milli: (entry.certificate.lower * 1000.0).round() as u64,
                cert_upper: entry.certificate.upper,
                ratio_milli: (1000 * r.weight).div_ceil(upper),
            }
        })
        .collect()
}

/// Sweeps the corpus tier and assembles the report.
pub fn collect(quick: bool) -> ConformanceReport {
    let tier = if quick { Tier::Quick } else { Tier::Full };
    let mut entries = Vec::new();
    let mut violations = Vec::new();
    for entry in corpus(tier) {
        let outcome = check_entry(&entry);
        entries.extend(records_of(&entry, &outcome));
        violations.extend(
            outcome
                .violations
                .into_iter()
                .map(|v| format!("{}: {v}", entry.id)),
        );
    }
    ConformanceReport {
        mode: if quick { "quick" } else { "full" }.to_string(),
        violations,
        entries,
    }
}

impl ConformanceReport {
    /// Serializes to the `dsf-bench-conformance/v1` JSON layout.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str(&format!("  \"schema\": \"{SCHEMA}\",\n"));
        s.push_str(&format!("  \"mode\": \"{}\",\n", self.mode));
        s.push_str(&format!("  \"violations\": {},\n", self.violations.len()));
        s.push_str("  \"entries\": [\n");
        for (i, e) in self.entries.iter().enumerate() {
            let comma = if i + 1 < self.entries.len() { "," } else { "" };
            s.push_str(&format!(
                "    {{\"name\": \"{}\", \"n\": {}, \"m\": {}, \"k\": {}, \"t\": {}, \
                 \"weight\": {}, \"cert_lower_milli\": {}, \"cert_upper\": {}, \
                 \"ratio_milli\": {}}}{comma}\n",
                e.name,
                e.n,
                e.m,
                e.k,
                e.t,
                e.weight,
                e.cert_lower_milli,
                e.cert_upper,
                e.ratio_milli,
            ));
        }
        s.push_str("  ]\n}\n");
        s
    }

    /// Per-`family/solver` ratio distribution (min/mean/max of
    /// `ratio_milli`), in first-appearance order — the human-readable
    /// summary `bench_runner` prints.
    pub fn family_summary(&self) -> Vec<(String, u64, u64, u64)> {
        let mut order: Vec<String> = Vec::new();
        let mut buckets: std::collections::HashMap<String, Vec<u64>> =
            std::collections::HashMap::new();
        for e in &self.entries {
            // name = conformance/<family>/<pattern>/seed=<s>/<solver>
            let parts: Vec<&str> = e.name.split('/').collect();
            let (family, solver) = (parts[1], parts[parts.len() - 1]);
            let key = format!("{family}/{solver}");
            if !buckets.contains_key(&key) {
                order.push(key.clone());
            }
            buckets.entry(key).or_default().push(e.ratio_milli);
        }
        order
            .into_iter()
            .map(|key| {
                let rs = &buckets[&key];
                let min = *rs.iter().min().expect("nonempty bucket");
                let max = *rs.iter().max().expect("nonempty bucket");
                let mean = rs.iter().sum::<u64>() / rs.len() as u64;
                (key, min, mean, max)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ConformanceReport {
        ConformanceReport {
            mode: "quick".into(),
            violations: Vec::new(),
            entries: vec![
                ConfEntry {
                    name: "conformance/gnp/long_range/seed=0/det".into(),
                    n: 20,
                    m: 50,
                    k: 3,
                    t: 6,
                    weight: 30,
                    cert_lower_milli: 28000,
                    cert_upper: 28,
                    ratio_milli: 1072,
                },
                ConfEntry {
                    name: "conformance/gnp/long_range/seed=0/moat".into(),
                    n: 20,
                    m: 50,
                    k: 3,
                    t: 6,
                    weight: 28,
                    cert_lower_milli: 28000,
                    cert_upper: 28,
                    ratio_milli: 1000,
                },
            ],
        }
    }

    #[test]
    fn json_has_schema_and_one_entry_per_line() {
        let json = sample().to_json();
        assert!(json.contains("\"schema\": \"dsf-bench-conformance/v1\""));
        assert!(json.contains("\"violations\": 0"));
        let entry_lines = json.lines().filter(|l| l.contains("\"name\"")).count();
        assert_eq!(entry_lines, 2);
    }

    #[test]
    fn family_summary_aggregates_per_solver() {
        let s = sample().family_summary();
        assert_eq!(s.len(), 2);
        assert_eq!(s[0], ("gnp/det".into(), 1072, 1072, 1072));
        assert_eq!(s[1], ("gnp/moat".into(), 1000, 1000, 1000));
    }

    #[test]
    fn ratio_milli_rounds_up() {
        // 1000 * 30 / 28 = 1071.42 -> 1072.
        assert_eq!((1000u64 * 30).div_ceil(28), 1072);
    }
}
