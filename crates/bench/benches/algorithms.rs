//! Criterion wall-clock benches over the same workloads as the experiment
//! tables (one group per table/figure family; see EXPERIMENTS.md).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use dsf_baselines::khan::{solve_khan, KhanConfig};
use dsf_baselines::solve_collect_at_root;
use dsf_congest::CongestConfig;
use dsf_core::det::{solve_deterministic, solve_growth, DetConfig, GrowthConfig};
use dsf_core::randomized::{solve_randomized, RandConfig};
use dsf_embed::{distributed::le_lists_distributed, random_ranks, Embedding, EmbeddingConfig};
use dsf_graph::generators;
use dsf_lower_bounds::measure_ic_gadget;
use dsf_steiner::{exact, moat, random_instance};

/// E1/E2 — centralized moat growing and the exact oracle.
fn bench_centralized(c: &mut Criterion) {
    let mut group = c.benchmark_group("centralized_moat");
    group.sample_size(20);
    for &n in &[16usize, 32, 64] {
        let g = generators::gnp_connected(n, 0.2, 12, 1);
        let inst = random_instance(&g, 3, 2, 2);
        group.bench_with_input(BenchmarkId::new("algorithm1", n), &n, |b, _| {
            b.iter(|| moat::grow(&g, &inst))
        });
    }
    let g = generators::gnp_connected(14, 0.3, 10, 1);
    let inst = random_instance(&g, 3, 2, 2);
    group.bench_function("exact_oracle_n14_k3", |b| {
        b.iter(|| exact::solve(&g, &inst))
    });
    group.finish();
}

/// E3 — the deterministic distributed algorithm (simulated).
fn bench_det_distributed(c: &mut Criterion) {
    let mut group = c.benchmark_group("det_distributed");
    group.sample_size(10);
    for &k in &[1usize, 2, 4] {
        let g = generators::grid(4, 6, 6, 9);
        let inst = random_instance(&g, k, 2, 5);
        group.bench_with_input(BenchmarkId::new("grid4x6_k", k), &k, |b, _| {
            b.iter(|| solve_deterministic(&g, &inst, &DetConfig::default()).unwrap())
        });
    }
    group.finish();
}

/// E12 — growth-phase variant.
fn bench_growth(c: &mut Criterion) {
    let mut group = c.benchmark_group("growth_phases");
    group.sample_size(10);
    let g = generators::caterpillar(8, 2, 4, 3);
    let inst = random_instance(&g, 3, 2, 3);
    group.bench_function("caterpillar_k3", |b| {
        b.iter(|| solve_growth(&g, &inst, &GrowthConfig::default()).unwrap())
    });
    group.finish();
}

/// E4/E5 — randomized algorithm vs the \[14\] baseline.
fn bench_randomized_vs_khan(c: &mut Criterion) {
    let mut group = c.benchmark_group("rand_vs_khan");
    group.sample_size(10);
    let g = generators::gnp_connected(28, 0.15, 10, 5);
    let inst = random_instance(&g, 4, 2, 1);
    group.bench_function("randomized_k4", |b| {
        b.iter(|| {
            solve_randomized(
                &g,
                &inst,
                &RandConfig {
                    seed: 2,
                    repetitions: 1,
                    force_truncation: Some(false),
                    ..RandConfig::default()
                },
            )
            .unwrap()
        })
    });
    group.bench_function("khan_k4", |b| {
        b.iter(|| {
            solve_khan(
                &g,
                &inst,
                &KhanConfig {
                    seed: 2,
                    repetitions: 1,
                },
            )
            .unwrap()
        })
    });
    group.bench_function("collect_at_root", |b| {
        b.iter(|| solve_collect_at_root(&g, &inst).unwrap())
    });
    group.finish();
}

/// E5b/E6 — embedding construction, centralized and in CONGEST.
fn bench_embedding(c: &mut Criterion) {
    let mut group = c.benchmark_group("embedding");
    group.sample_size(10);
    for &n in &[32usize, 64] {
        let g = generators::gnp_connected(n, 3.0 / n as f64, 12, 3);
        group.bench_with_input(BenchmarkId::new("build", n), &n, |b, _| {
            b.iter(|| Embedding::build(&g, &EmbeddingConfig::new(11)))
        });
        let ranks = random_ranks(n, 11);
        let cfg = CongestConfig::for_graph(&g);
        group.bench_with_input(BenchmarkId::new("le_lists_congest", n), &n, |b, _| {
            b.iter(|| le_lists_distributed(&g, &ranks, &cfg).unwrap())
        });
    }
    group.finish();
}

/// E10 — lower-bound gadget pipeline.
fn bench_gadgets(c: &mut Criterion) {
    let mut group = c.benchmark_group("lower_bound_gadgets");
    group.sample_size(10);
    group.bench_function("ic_gadget_u16", |b| {
        b.iter(|| measure_ic_gadget(16, true, 9))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_centralized,
    bench_det_distributed,
    bench_growth,
    bench_randomized_vs_khan,
    bench_embedding,
    bench_gadgets
);
criterion_main!(benches);
