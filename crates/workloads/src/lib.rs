//! The conformance lab: a seeded, enumerable instance corpus plus a
//! differential oracle harness that every Steiner forest solver in the
//! workspace must pass.
//!
//! The paper's headline claim — a deterministic `(2+ε)`-approximation in
//! CONGEST (Lenzen & Patt-Shamir, PODC 2014) — is only as believable as
//! the instances it is checked on. This crate systematizes that check:
//!
//! * [`corpus`] — crosses the graph families of [`dsf_graph::generators`]
//!   (including the adversarial ones added for this lab: trees with noise
//!   edges, barbell/expander-bridge, clustered-geometric, heavy-tailed
//!   weights) with demand-pair patterns (matched clusters, long-range
//!   pairs, overlapping terminal groups, singleton spam). Every
//!   [`corpus::CorpusEntry`] is deterministic per seed and carries a
//!   [`Certificate`].
//! * [`Certificate`] — the per-instance ground truth: the exact optimum
//!   from [`dsf_steiner::exact`] where it is tractable, otherwise a
//!   *checked sandwich* `lower ≤ OPT ≤ upper` from the moat dual and the
//!   per-component distance bound (lower) and MST-of-terminals in the
//!   metric closure (upper).
//! * [`conformance`] — the oracle layer: runs the deterministic,
//!   randomized, Khan-baseline and moat solvers on an entry and checks
//!   feasibility, forest-ness, the paper's ratio bounds against the
//!   certificate, bit-identical determinism across repeated seeded runs,
//!   and the CONGEST `B`-bit per-edge budget on every ledger entry. The
//!   same helpers back the root integration/property suites, replacing
//!   their formerly copy-pasted assertions.
//! * [`churn`] — seeded arrival/departure/reweight traces over the same
//!   graph families, plus the churn-differential gate
//!   ([`conformance::check_repaired`]) the incremental re-solve lab
//!   holds `dsf-service`'s delta repairs to.
//!
//! # Example
//!
//! ```
//! use dsf_workloads::conformance;
//! use dsf_workloads::corpus::{corpus, Tier};
//!
//! let entries = corpus(Tier::Quick);
//! assert!(entries.len() >= 8);
//! let outcome = conformance::check_entry(&entries[0]);
//! assert!(outcome.violations.is_empty(), "{:?}", outcome.violations);
//! ```

pub mod churn;
pub mod conformance;
pub mod corpus;

mod certificate;

pub use certificate::{certify, Certificate, CertificateKind};
