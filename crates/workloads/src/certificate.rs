//! Per-instance ground truth for approximation-ratio checks.
//!
//! Small instances get the exact optimum (partition enumeration over
//! Dreyfus–Wagner blocks, [`dsf_steiner::exact`]). Larger ones get a
//! *checked sandwich* `lower ≤ OPT ≤ upper`:
//!
//! * **upper** — for each input component, the minimum spanning tree of
//!   its terminals in the shortest-path metric closure. Realizing each
//!   metric edge as a shortest path yields a feasible solution of at most
//!   this weight, so `OPT ≤ upper`.
//! * **lower** — the larger of the moat-growing dual `Σ actᵢ·μᵢ`
//!   (feasible for the LP relaxation, Lemma C.4) and the maximum
//!   shortest-path distance between two terminals of one component (any
//!   feasible forest contains a path between them).
//!
//! Construction asserts `lower ≤ upper`, so a corpus entry can never carry
//! a vacuous or inverted certificate.

use dsf_graph::{dijkstra, Weight, WeightedGraph};
use dsf_steiner::{exact, moat, Instance};

/// How the certificate was obtained.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CertificateKind {
    /// `lower == upper == OPT` from the exact solver.
    Exact,
    /// A checked `lower ≤ OPT ≤ upper` sandwich.
    Sandwich,
}

/// A validated bound pair on the optimal forest weight.
#[derive(Debug, Clone, PartialEq)]
pub struct Certificate {
    /// Provenance of the bounds.
    pub kind: CertificateKind,
    /// Lower bound on OPT (exact OPT when `kind` is [`CertificateKind::Exact`]).
    pub lower: f64,
    /// Upper bound on OPT (exact OPT when `kind` is [`CertificateKind::Exact`]).
    pub upper: Weight,
}

/// Instances small enough for the exact partition-DP solver to be cheap.
fn exactly_solvable(inst: &Instance) -> bool {
    inst.k() <= 3 && inst.t() <= 8
}

/// Both sandwich distance bounds in one pass (one Dijkstra per terminal):
/// the sum over components of the terminal-MST weight in the metric
/// closure (upper) and the max pairwise terminal distance (lower).
fn sandwich_distance_bounds(g: &WeightedGraph, inst: &Instance) -> (Weight, Weight) {
    let mut upper: Weight = 0;
    let mut lower: Weight = 0;
    for comp in inst.components() {
        if comp.len() < 2 {
            continue;
        }
        // Distances from each terminal of the component.
        let dists: Vec<Vec<Weight>> = comp
            .iter()
            .map(|&t| dijkstra::shortest_paths(g, t).dist)
            .collect();
        for (i, d) in dists.iter().enumerate() {
            for &u in &comp[i + 1..] {
                lower = lower.max(d[u.idx()]);
            }
        }
        // Prim over the complete terminal graph.
        let mut in_tree = vec![false; comp.len()];
        let mut best = vec![Weight::MAX; comp.len()];
        in_tree[0] = true;
        for j in 1..comp.len() {
            best[j] = dists[0][comp[j].idx()];
        }
        for _ in 1..comp.len() {
            let next = (0..comp.len())
                .filter(|&j| !in_tree[j])
                .min_by_key(|&j| best[j])
                .expect("component has an unspanned terminal");
            upper += best[next];
            in_tree[next] = true;
            for j in 0..comp.len() {
                if !in_tree[j] {
                    best[j] = best[j].min(dists[next][comp[j].idx()]);
                }
            }
        }
    }
    (upper, lower)
}

/// Certifies `inst` on `g`: exact OPT when tractable, else the sandwich.
///
/// # Panics
///
/// Panics if the computed bounds are inconsistent (`lower > upper`),
/// which would indicate a bug in one of the bounding algorithms.
pub fn certify(g: &WeightedGraph, inst: &Instance) -> Certificate {
    let minimal = inst.make_minimal();
    if exactly_solvable(&minimal) {
        let opt = exact::solve(g, &minimal);
        return Certificate {
            kind: CertificateKind::Exact,
            lower: opt.weight as f64,
            upper: opt.weight,
        };
    }
    let dual = moat::grow(g, &minimal).dual.to_f64();
    let (upper, dist_lower) = sandwich_distance_bounds(g, &minimal);
    let lower = dual.max(dist_lower as f64);
    assert!(
        lower <= upper as f64 + 1e-6,
        "inverted certificate: lower {lower} > upper {upper}"
    );
    Certificate {
        kind: CertificateKind::Sandwich,
        lower,
        upper,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsf_graph::{generators, NodeId};
    use dsf_steiner::{random_instance, InstanceBuilder};

    #[test]
    fn exact_certificate_on_small_instance() {
        let g = generators::path(6, 2);
        let inst = InstanceBuilder::new(&g)
            .component(&[NodeId(0), NodeId(5)])
            .build()
            .unwrap();
        let c = certify(&g, &inst);
        assert_eq!(c.kind, CertificateKind::Exact);
        assert_eq!(c.upper, 10);
        assert_eq!(c.lower, 10.0);
    }

    #[test]
    fn sandwich_brackets_exact_optimum() {
        // Big enough terminal count to force the sandwich path, small
        // enough that the exact solver still runs for the comparison.
        for seed in 0..5 {
            let g = generators::gnp_connected(18, 0.25, 9, seed);
            let inst = random_instance(&g, 4, 3, seed); // t = 12 > 8
            let c = certify(&g, &inst);
            assert_eq!(c.kind, CertificateKind::Sandwich);
            assert!(c.lower <= c.upper as f64 + 1e-9);
            // The sandwich path must be honest: compare on instances the
            // exact solver can still certify out-of-band.
            let small = random_instance(&g, 2, 2, seed + 100);
            let (s_upper, s_dist_lower) = sandwich_distance_bounds(&g, &small);
            let s_lower = moat::grow(&g, &small)
                .dual
                .to_f64()
                .max(s_dist_lower as f64);
            let opt = exact::solve(&g, &small).weight;
            assert!(s_lower <= opt as f64 + 1e-9, "seed {seed}");
            assert!(opt <= s_upper, "seed {seed}");
        }
    }

    #[test]
    fn distance_bounds_are_sane() {
        let g = generators::path(10, 3);
        let inst = InstanceBuilder::new(&g)
            .component(&[NodeId(0), NodeId(9)])
            .build()
            .unwrap();
        assert_eq!(sandwich_distance_bounds(&g, &inst), (27, 27));
    }
}
