//! Seeded churn traces: the arrival/departure/reweight workloads of the
//! incremental re-solve lab.
//!
//! A [`ChurnTrace`] is a graph from one of the corpus families plus a
//! deterministic sequence of [`ChurnOp`]s — demand components arriving,
//! departing, and edges being re-priced — the kind of traffic
//! `dsf-service`'s delta API repairs a cached forest under. Traces are
//! deterministic per `(family, seed)` and keep the instance invariants
//! the delta API enforces: arriving terminals are disjoint from every
//! active terminal, departures address an active slot, and after the
//! warm-up at least [`MIN_ACTIVE`] components stay active (so every
//! post-op instance is certifiable and non-trivial).
//!
//! Every trace opens with [`ChurnTrace::warmup`] cache-seeding arrivals.
//! Replayers apply them like any other op, but the bench tier excludes
//! them from its timing entries and speed gate: churn measures deltas
//! against a *warm* session, not the cost of first filling the cache.
//!
//! [`ChurnTrace::steps`] materializes the trace for differential
//! consumers: each step carries the op plus the *post-op* demand sets
//! and the post-op graph (reweights applied), which is exactly what a
//! from-scratch solve of the same state needs. `bench_runner --churn`,
//! the root `tests/churn.rs` tier, and the oracle self-test all replay
//! these.

use dsf_graph::{generators, Edge, EdgeId, NodeId, Weight, WeightedGraph};
use dsf_steiner::{Instance, InstanceBuilder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::corpus::{Tier, FAMILIES};

/// One delta of a churn trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChurnOp {
    /// A new demand component arrives.
    Add {
        /// Its terminals, disjoint from every active terminal.
        terminals: Vec<NodeId>,
    },
    /// The active demand at `slot` departs.
    Remove {
        /// Index into the active demand list in arrival order (the
        /// list a replayer maintains by pushing on `Add` and removing
        /// at `slot` on `Remove`).
        slot: usize,
    },
    /// An edge is re-priced.
    Reweight {
        /// The edge (ids are stable across reweights).
        edge: EdgeId,
        /// Its new weight (always `>= 1` and different from the old).
        weight: Weight,
    },
}

/// One materialized trace step: the op plus the post-op state a
/// from-scratch differential solve needs.
#[derive(Debug, Clone)]
pub struct ChurnStep {
    /// The delta applied at this step.
    pub op: ChurnOp,
    /// Active demand components after the op, in arrival order.
    pub demands: Vec<Vec<NodeId>>,
    /// The graph after the op (reweights applied; same edge ids).
    pub graph: WeightedGraph,
}

/// A seeded churn trace over one graph family.
#[derive(Debug, Clone)]
pub struct ChurnTrace {
    /// Stable id, e.g. `churn/gnp/seed=0`.
    pub id: String,
    /// Graph family name (one of [`FAMILIES`]).
    pub family: &'static str,
    /// Trace seed.
    pub seed: u64,
    /// The initial network.
    pub graph: WeightedGraph,
    /// The deltas, in order. The first [`ChurnTrace::warmup`] of them
    /// are cache-seeding arrivals.
    pub ops: Vec<ChurnOp>,
    /// How many leading ops seed the cache. Replayers apply them
    /// normally; the bench tier neither times nor gates them.
    pub warmup: usize,
}

impl ChurnTrace {
    /// Materializes the per-step post-op state (demand sets and graph).
    pub fn steps(&self) -> Vec<ChurnStep> {
        let mut demands: Vec<Vec<NodeId>> = Vec::new();
        let mut edges: Vec<Edge> = self.graph.edges().to_vec();
        let mut out = Vec::with_capacity(self.ops.len());
        for op in &self.ops {
            match op {
                ChurnOp::Add { terminals } => demands.push(terminals.clone()),
                ChurnOp::Remove { slot } => {
                    demands.remove(*slot);
                }
                ChurnOp::Reweight { edge, weight } => edges[edge.idx()].w = *weight,
            }
            let graph = WeightedGraph::from_edges(self.graph.n(), edges.clone())
                .expect("reweighted trace graph stays valid");
            out.push(ChurnStep {
                op: op.clone(),
                demands: demands.clone(),
                graph,
            });
        }
        out
    }
}

/// Builds the instance of a demand-set snapshot.
pub fn instance_of(g: &WeightedGraph, demands: &[Vec<NodeId>]) -> Instance {
    let mut b = InstanceBuilder::new(g);
    for terms in demands {
        b = b.component(terms);
    }
    b.build().expect("churn demand sets are disjoint")
}

/// Ops per trace for a tier.
fn trace_len(tier: Tier) -> usize {
    match tier {
        Tier::Quick => 12,
        Tier::Full => 20,
    }
}

/// Seeds per family for a tier.
fn seeds(tier: Tier) -> std::ops::Range<u64> {
    match tier {
        Tier::Quick => 0..1,
        Tier::Full => 0..2,
    }
}

/// Most active components a trace grows to.
const MAX_ACTIVE: usize = 6;
/// Components kept alive once the warm-up has arrived. Keeping the
/// active set this deep means every measured arrival lands on an
/// instance large enough that incremental repair has a real head start
/// over a from-scratch solve.
pub const MIN_ACTIVE: usize = 4;
/// Cache-seeding arrivals at the head of every trace.
const WARMUP_ADDS: usize = 5;

/// Hop radius a demand component's terminals are sampled within.
/// Connection requests in provisioning traffic are overwhelmingly
/// local — a demand ties together nearby endpoints, not antipodes — and
/// locality is also what makes a delta *incremental*: the blast radius
/// of a local arrival is one small tree, not a restructuring of the
/// whole forest.
const DEMAND_RADIUS: u32 = 3;

/// Samples an arrival: a random free center plus `comp_size - 1` free
/// nodes within [`DEMAND_RADIUS`] hops of it (BFS over `adj`), pushed
/// onto the active set. Falls back to the nearest free nodes in hop
/// order when the ball is sparse.
fn sample_add(
    rng: &mut StdRng,
    adj: &[Vec<NodeId>],
    free: &mut Vec<NodeId>,
    active: &mut Vec<Vec<NodeId>>,
) -> ChurnOp {
    let comp_size = if rng.gen_range(0..4) == 0 { 3 } else { 2 };
    let center = free[rng.gen_range(0..free.len())];
    // BFS out from the center, collecting free nodes in (hop, id) order.
    let is_free = {
        let mut m = vec![false; adj.len()];
        for &v in free.iter() {
            m[v.idx()] = true;
        }
        m
    };
    let mut hop = vec![u32::MAX; adj.len()];
    hop[center.idx()] = 0;
    let mut queue = std::collections::VecDeque::from([center]);
    let mut ball: Vec<NodeId> = Vec::new();
    while let Some(v) = queue.pop_front() {
        for &w in &adj[v.idx()] {
            if hop[w.idx()] == u32::MAX {
                hop[w.idx()] = hop[v.idx()] + 1;
                if is_free[w.idx()] {
                    ball.push(w);
                }
                queue.push_back(w);
            }
        }
    }
    let mut terminals = vec![center];
    // Prefer ball members within the radius (random among them), then
    // nearest-first beyond it (BFS order) if the ball is too sparse.
    let mut near: Vec<NodeId> = ball
        .iter()
        .copied()
        .filter(|v| hop[v.idx()] <= DEMAND_RADIUS)
        .collect();
    while terminals.len() < comp_size && !near.is_empty() {
        let i = rng.gen_range(0..near.len());
        terminals.push(near.swap_remove(i));
    }
    for v in ball {
        if terminals.len() >= comp_size {
            break;
        }
        if hop[v.idx()] > DEMAND_RADIUS && !terminals.contains(&v) {
            terminals.push(v);
        }
    }
    terminals.sort_unstable();
    free.retain(|v| !terminals.contains(v));
    active.push(terminals.clone());
    ChurnOp::Add { terminals }
}

/// The churn tier's network for one family. Churn graphs are roughly 8×
/// the corpus full-tier node counts (n ≈ 200–500): the dynamic-algorithms
/// story only shows at sizes where a from-scratch solve scans the whole
/// graph while a repair scans the damage — and where independent demand
/// trees have room to stay disjoint, so a delta's blast radius is a
/// couple of trees, not the forest. They still stay CI-small.
fn churn_graph(family: &str, seed: u64) -> WeightedGraph {
    match family {
        "gnp" => generators::gnp_connected(400, 0.022, 12, seed),
        "grid" => generators::grid(20, 25, 8, seed),
        "geometric" => generators::random_geometric(360, 0.09, seed),
        "caterpillar" => generators::caterpillar(180, 1, 6, seed),
        "tree_noise" => generators::tree_with_noise(400, 100, 10, seed),
        "barbell" => generators::barbell(40, 120, 9, seed),
        "clustered" => generators::clustered_geometric(12, 30, seed),
        "heavy_tailed" => generators::heavy_tailed(360, 0.03, 2.0, 100_000, seed),
        "power_law" => generators::rmat(420, 3, 12, seed),
        other => panic!("unknown graph family {other:?}"),
    }
}

/// Generates one trace. The generator simulates the active set and the
/// weights so every emitted op is valid by construction.
fn make_trace(family: &'static str, tier: Tier, seed: u64) -> ChurnTrace {
    let graph = churn_graph(family, seed);
    let family_salt = family
        .bytes()
        .fold(0u64, |h, b| h.wrapping_mul(31).wrapping_add(u64::from(b)));
    let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ family_salt);
    let mut weights: Vec<Weight> = graph.edges().iter().map(|e| e.w).collect();
    let mut active: Vec<Vec<NodeId>> = Vec::new();
    let mut free: Vec<NodeId> = graph.nodes().collect();
    let mut ops = Vec::new();
    let mut adj: Vec<Vec<NodeId>> = vec![Vec::new(); graph.n()];
    for e in graph.edges() {
        adj[e.u.idx()].push(e.v);
        adj[e.v.idx()].push(e.u);
    }

    // Warm-up: seed the cache so the measured churn below always runs
    // against a warm session.
    for _ in 0..WARMUP_ADDS {
        ops.push(sample_add(&mut rng, &adj, &mut free, &mut active));
    }

    for _ in 0..trace_len(tier) {
        let roll: u32 = rng.gen_range(0..100);
        let can_add = active.len() < MAX_ACTIVE && free.len() >= 3;
        let can_remove = active.len() > MIN_ACTIVE;
        let op = if active.len() < MIN_ACTIVE || (roll < 40 && can_add) {
            sample_add(&mut rng, &adj, &mut free, &mut active)
        } else if roll < 70 && can_remove {
            let slot = rng.gen_range(0..active.len());
            let freed = active.remove(slot);
            free.extend(freed);
            free.sort_unstable();
            ChurnOp::Remove { slot }
        } else {
            let edge = EdgeId(rng.gen_range(0..graph.m() as u32));
            let old = weights[edge.idx()];
            let mut weight = rng.gen_range(1..=15);
            if weight == old {
                weight = if old == 1 { 2 } else { old - 1 };
            }
            weights[edge.idx()] = weight;
            ChurnOp::Reweight { edge, weight }
        };
        ops.push(op);
    }
    ChurnTrace {
        id: format!("churn/{family}/seed={seed}"),
        family,
        seed,
        graph,
        ops,
        warmup: WARMUP_ADDS,
    }
}

/// Enumerates the churn traces for `tier`: one per `FAMILIES × seeds`
/// combination, deterministically and in a stable order.
pub fn churn_traces(tier: Tier) -> Vec<ChurnTrace> {
    FAMILIES
        .into_iter()
        .flat_map(|family| seeds(tier).map(move |seed| make_trace(family, tier, seed)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traces_are_deterministic_and_cover_the_families() {
        let a = churn_traces(Tier::Quick);
        let b = churn_traces(Tier::Quick);
        assert_eq!(a.len(), FAMILIES.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.id, y.id);
            assert_eq!(x.ops, y.ops);
            assert_eq!(x.graph.edges(), y.graph.edges());
        }
    }

    #[test]
    fn every_step_keeps_the_instance_invariants() {
        for trace in churn_traces(Tier::Quick) {
            let steps = trace.steps();
            assert_eq!(steps.len(), trace.ops.len(), "{}", trace.id);
            assert_eq!(trace.warmup, WARMUP_ADDS, "{}", trace.id);
            for (i, step) in steps.iter().enumerate() {
                if i + 1 >= trace.warmup {
                    assert!(
                        step.demands.len() >= MIN_ACTIVE,
                        "{} step {i}: active dropped below {MIN_ACTIVE}",
                        trace.id
                    );
                }
                assert!(step.demands.len() <= MAX_ACTIVE, "{} step {i}", trace.id);
                // Disjointness (and validity) via the instance builder.
                let inst = instance_of(&step.graph, &step.demands);
                assert!(inst.is_minimal(), "{} step {i}", trace.id);
                // The graph only ever differs from the original in
                // weights, never in shape.
                assert_eq!(step.graph.n(), trace.graph.n());
                assert_eq!(step.graph.m(), trace.graph.m());
            }
        }
    }

    #[test]
    fn the_warmup_prefix_is_all_arrivals() {
        for trace in churn_traces(Tier::Quick) {
            assert!(trace.warmup <= trace.ops.len(), "{}", trace.id);
            for op in &trace.ops[..trace.warmup] {
                assert!(
                    matches!(op, ChurnOp::Add { .. }),
                    "{}: warm-up op {op:?} is not an arrival",
                    trace.id
                );
            }
        }
    }

    #[test]
    fn the_quick_suite_exercises_every_op_kind() {
        let traces = churn_traces(Tier::Quick);
        let all: Vec<&ChurnOp> = traces.iter().flat_map(|t| &t.ops).collect();
        assert!(all.iter().any(|o| matches!(o, ChurnOp::Add { .. })));
        assert!(all.iter().any(|o| matches!(o, ChurnOp::Remove { .. })));
        assert!(all.iter().any(|o| matches!(o, ChurnOp::Reweight { .. })));
    }

    #[test]
    fn reweights_always_change_the_weight_and_stay_positive() {
        for trace in churn_traces(Tier::Quick) {
            let mut weights: Vec<Weight> = trace.graph.edges().iter().map(|e| e.w).collect();
            for op in &trace.ops {
                if let ChurnOp::Reweight { edge, weight } = op {
                    assert!(*weight >= 1, "{}", trace.id);
                    assert_ne!(*weight, weights[edge.idx()], "{}", trace.id);
                    weights[edge.idx()] = *weight;
                }
            }
        }
    }
}
