//! The differential oracle harness.
//!
//! One reusable layer of checks shared by the root `tests/conformance.rs`
//! tier, `bench_runner --conformance`, and the integration/property suites
//! (which previously each carried their own copy-pasted assertions):
//!
//! * **feasibility** — every demand pair connected, output acyclic
//!   ([`check_feasible_forest`]);
//! * **ratio** — solver weight against the entry's [`crate::Certificate`]
//!   ([`check_ratio_le`]): `W(det) ≤ 2·OPT` (Theorem 4.17, tie slack per
//!   the Section 2 unique-weight assumption), `W(moat) ≤ 2·dual`
//!   (Theorem 4.1), `W(rounded) ≤ (2+ε)·OPT` (Theorem D.2),
//!   `W(randomized) ≤ O(log n)·OPT` (Theorem 5.2), and every feasible
//!   output weighs at least the certified lower bound;
//! * **differential** — the distributed deterministic solver must replay
//!   the centralized Algorithm 1 merge-for-merge (Lemma 4.13,
//!   [`check_merge_agreement`]);
//! * **determinism** — repeated seeded runs must be bit-identical
//!   (forest, rounds, messages, bits);
//! * **CONGEST compliance** — every [`RoundLedger`] entry respects the
//!   `B`-bit per-edge budget ([`check_ledger_budget`]).
//!
//! Checks come in two flavors: `check_*` returns `Result`/`Vec` for
//! violation collection (bench reporting, proptests), `assert_*` panics
//! with context (integration tests).

use dsf_baselines::khan::{solve_khan, KhanConfig};
use dsf_baselines::solve_collect_at_root;
use dsf_congest::{CongestConfig, RoundLedger, SimError};
use dsf_core::det::{solve_deterministic, DetConfig, DetOutput};
use dsf_core::randomized::{solve_randomized, RandConfig};
use dsf_graph::dyadic::Dyadic;
use dsf_graph::{NodeId, Weight, WeightedGraph};
use dsf_steiner::moat::MoatRun;
use dsf_steiner::{moat, moat_rounded, ForestSolution, Instance};

use crate::corpus::CorpusEntry;

/// Checks that `f` connects every demand component and is acyclic.
///
/// # Errors
///
/// Returns a description of the first violated condition.
pub fn check_feasible_forest(
    g: &WeightedGraph,
    inst: &Instance,
    f: &ForestSolution,
) -> Result<(), String> {
    if !inst.is_feasible(g, f) {
        return Err("solution leaves a demand pair disconnected".into());
    }
    if !f.is_forest(g) {
        return Err("solution contains a cycle".into());
    }
    Ok(())
}

/// Panicking flavor of [`check_feasible_forest`] for test suites.
///
/// # Panics
///
/// Panics with `ctx` if the solution is infeasible or cyclic.
pub fn assert_feasible_forest(g: &WeightedGraph, inst: &Instance, f: &ForestSolution, ctx: &str) {
    if let Err(e) = check_feasible_forest(g, inst, f) {
        panic!("{ctx}: {e}");
    }
}

/// Checks `weight ≤ factor · base` (with absolute slack `slack` for
/// integer-tie effects).
///
/// # Errors
///
/// Returns the violated inequality, spelled out.
pub fn check_ratio_le(weight: Weight, factor: f64, base: f64, slack: f64) -> Result<(), String> {
    let bound = factor * base + slack;
    if (weight as f64) <= bound + 1e-9 {
        Ok(())
    } else {
        Err(format!(
            "weight {weight} exceeds {factor} x {base} + {slack} = {bound:.3}"
        ))
    }
}

/// Panicking flavor of [`check_ratio_le`].
///
/// # Panics
///
/// Panics with `ctx` if the ratio bound is violated.
pub fn assert_ratio_le(weight: Weight, factor: f64, base: f64, ctx: &str) {
    if let Err(e) = check_ratio_le(weight, factor, base, 0.0) {
        panic!("{ctx}: {e}");
    }
}

/// The `O(log n)` factor asserted for the randomized solver
/// (Theorem 5.2 with the constant used throughout the experiments).
pub fn randomized_log_factor(n: usize) -> f64 {
    3.0 * (n as f64).ln()
}

/// The (looser) `O(log n)` factor for the Khan et al. baseline, whose
/// per-component selection repeats the embedding lottery independently.
pub fn khan_log_factor(n: usize) -> f64 {
    6.0 * (n as f64).ln()
}

/// Merge endpoints of the distributed deterministic run, in merge order.
pub fn det_merge_pairs(out: &DetOutput) -> Vec<(NodeId, NodeId)> {
    out.merges.iter().map(|m| (m.v, m.w)).collect()
}

/// Merge endpoints of a centralized moat run, in merge order.
pub fn moat_merge_pairs(run: &MoatRun) -> Vec<(NodeId, NodeId)> {
    run.merges.iter().map(|m| (m.v, m.w)).collect()
}

/// Lemma 4.13: the distributed deterministic solver replays the
/// centralized Algorithm 1 merge sequence exactly, and the realized
/// weights agree up to shortest-path tie slack (Section 2's unique-weight
/// assumption does not hold for integer weights).
///
/// # Errors
///
/// Returns which of the two agreements failed.
pub fn check_merge_agreement(
    g: &WeightedGraph,
    det: &DetOutput,
    central: &MoatRun,
) -> Result<(), String> {
    if det_merge_pairs(det) != moat_merge_pairs(central) {
        return Err(format!(
            "merge sequences diverge: {:?} vs {:?}",
            det_merge_pairs(det),
            moat_merge_pairs(central)
        ));
    }
    let (dw, cw) = (det.forest.weight(g) as f64, central.forest.weight(g) as f64);
    if (dw - cw).abs() > tie_slack(cw) {
        return Err(format!("weights diverge beyond tie slack: {dw} vs {cw}"));
    }
    Ok(())
}

/// The absolute slack allowed between two realizations of the same merge
/// sequence over equal-weight shortest-path ties.
pub fn tie_slack(central_weight: f64) -> f64 {
    0.15 * central_weight + 2.0
}

/// Checks the CONGEST bandwidth invariants on every ledger entry: a stage
/// delivering `messages` messages of at most `bandwidth_bits` bits each
/// can carry at most `messages · B` bits, and the metered-cut traffic is a
/// subset of all traffic.
///
/// Returns one description per violated entry (empty = compliant).
pub fn check_ledger_budget(ledger: &RoundLedger, bandwidth_bits: usize) -> Vec<String> {
    let mut violations = Vec::new();
    for e in ledger.entries() {
        if e.bits > e.messages * bandwidth_bits as u64 {
            violations.push(format!(
                "stage {:?}: {} bits exceed {} messages x B={} bits",
                e.label, e.bits, e.messages, bandwidth_bits
            ));
        }
        if e.cut_bits > e.bits {
            violations.push(format!(
                "stage {:?}: cut_bits {} exceed total bits {}",
                e.label, e.cut_bits, e.bits
            ));
        }
    }
    violations
}

/// Panicking flavor of [`check_ledger_budget`].
///
/// # Panics
///
/// Panics with `ctx` on the first over-budget ledger entry.
pub fn assert_ledger_budget(ledger: &RoundLedger, bandwidth_bits: usize, ctx: &str) {
    let v = check_ledger_budget(ledger, bandwidth_bits);
    assert!(v.is_empty(), "{ctx}: {v:?}");
}

/// One solver's result on a corpus entry.
#[derive(Debug, Clone)]
pub struct SolverRecord {
    /// Solver name (`det`, `randomized`, `khan`, `moat`, `moat_rounded`).
    pub solver: &'static str,
    /// Weight of the returned forest.
    pub weight: Weight,
}

/// The oracle's verdict on one corpus entry.
#[derive(Debug, Clone)]
pub struct EntryOutcome {
    /// The entry's id.
    pub id: String,
    /// Per-solver weights, in a stable order.
    pub records: Vec<SolverRecord>,
    /// Everything that failed (empty = conformant).
    pub violations: Vec<String>,
}

/// One distributed run reduced to the fields the oracle compares.
type DistRun = Result<(ForestSolution, RoundLedger), SimError>;

/// A fingerprint of one run for bit-identical determinism checks.
fn fingerprint(forest: &ForestSolution, ledger: &RoundLedger) -> (Vec<u32>, u64, u64, u64) {
    (
        forest.edges().iter().map(|e| e.0).collect(),
        ledger.total(),
        ledger.messages(),
        ledger.bits(),
    )
}

/// Runs every solver on `entry` and applies the full oracle.
///
/// Never panics on a conformance failure — violations are collected so a
/// sweep can report all of them; simulator errors are violations too.
pub fn check_entry(entry: &CorpusEntry) -> EntryOutcome {
    let g = &entry.graph;
    let inst = &entry.instance;
    let cert = &entry.certificate;
    let upper = cert.upper as f64;
    let bandwidth = CongestConfig::for_graph(g).bandwidth_bits;
    let mut records = Vec::new();
    let mut violations = Vec::new();
    let violate = |solver: &str, what: String| format!("[{solver}] {what}");

    // Common per-solver checks: feasibility, forest-ness, the certified
    // lower bound (any feasible forest weighs at least OPT ≥ lower), and
    // the solver-specific upper ratio.
    let mut base_checks = |solver: &'static str,
                           forest: &ForestSolution,
                           factor: f64,
                           slack: f64,
                           violations: &mut Vec<String>| {
        let w = forest.weight(g);
        if let Err(e) = check_feasible_forest(g, inst, forest) {
            violations.push(violate(solver, e));
        }
        if (w as f64) < cert.lower - 1e-6 {
            violations.push(violate(
                solver,
                format!("weight {w} below certified lower bound {}", cert.lower),
            ));
        }
        if let Err(e) = check_ratio_le(w, factor, upper, slack) {
            violations.push(violate(solver, e));
        }
        records.push(SolverRecord { solver, weight: w });
    };

    // Centralized Algorithm 1: 2-approximation via the primal-dual bound.
    let central = moat::grow(g, inst);
    {
        let w = central.forest.weight(g);
        if let Err(e) = check_ratio_le(w, 2.0, central.dual.to_f64(), 0.0) {
            violations.push(violate("moat", format!("primal-dual bound: {e}")));
        }
        if central.dual.to_f64() > upper + 1e-6 {
            violations.push(violate(
                "moat",
                format!(
                    "dual {} exceeds certified upper {upper}",
                    central.dual.to_f64()
                ),
            ));
        }
        base_checks("moat", &central.forest, 2.0, 0.0, &mut violations);
    }

    // Centralized Algorithm 2 (rounded radii): (2+ε) with ε = 1/2.
    let rounded = moat_rounded::grow_rounded(g, inst, Dyadic::new(1, 1));
    base_checks("moat_rounded", &rounded.forest, 2.5, 0.0, &mut violations);

    // Shared distributed-solver protocol: run twice, check bit-identical
    // determinism and the ledger budget, and hand the first run back for
    // the solver-specific checks (None on simulator error).
    let dual_run = |solver: &'static str,
                    runs: (DistRun, DistRun),
                    violations: &mut Vec<String>|
     -> Option<(ForestSolution, RoundLedger)> {
        match runs {
            (Ok(a), Ok(b)) => {
                if fingerprint(&a.0, &a.1) != fingerprint(&b.0, &b.1) {
                    violations.push(violate(
                        solver,
                        "repeated seeded runs are not bit-identical".into(),
                    ));
                }
                for v in check_ledger_budget(&a.1, bandwidth) {
                    violations.push(violate(solver, v));
                }
                Some(a)
            }
            (r1, r2) => {
                violations.push(violate(
                    solver,
                    format!("simulator error: {:?}", r1.err().or(r2.err())),
                ));
                None
            }
        }
    };

    // Distributed deterministic (Theorem 4.17): differential vs Algorithm
    // 1, 2·OPT with tie slack, determinism, ledger budget.
    let det_runs = (
        solve_deterministic(g, inst, &DetConfig::default()),
        solve_deterministic(g, inst, &DetConfig::default()),
    );
    if let (Ok(det), _) | (_, Ok(det)) = (&det_runs.0, &det_runs.1) {
        if let Err(e) = check_merge_agreement(g, det, &central) {
            violations.push(violate("det", e));
        }
    }
    let det_runs = (
        det_runs.0.map(|o| (o.forest, o.rounds)),
        det_runs.1.map(|o| (o.forest, o.rounds)),
    );
    if let Some((forest, _)) = dual_run("det", det_runs, &mut violations) {
        let central_w = central.forest.weight(g) as f64;
        base_checks("det", &forest, 2.0, tie_slack(central_w), &mut violations);
    }

    // Distributed randomized (Theorem 5.2): O(log n)·OPT, seeded
    // determinism, ledger budget.
    let rand_runs = (
        solve_randomized(g, inst, &RandConfig::default()).map(|o| (o.forest, o.rounds)),
        solve_randomized(g, inst, &RandConfig::default()).map(|o| (o.forest, o.rounds)),
    );
    if let Some((forest, _)) = dual_run("randomized", rand_runs, &mut violations) {
        base_checks(
            "randomized",
            &forest,
            randomized_log_factor(g.n()),
            0.0,
            &mut violations,
        );
    }

    // Khan et al. baseline: feasibility, seeded determinism, budget, and
    // the looser O(log n) embedding bound.
    let khan_runs = (
        solve_khan(g, inst, &KhanConfig::default()).map(|o| (o.forest, o.rounds)),
        solve_khan(g, inst, &KhanConfig::default()).map(|o| (o.forest, o.rounds)),
    );
    if let Some((forest, _)) = dual_run("khan", khan_runs, &mut violations) {
        base_checks(
            "khan",
            &forest,
            khan_log_factor(g.n()),
            0.0,
            &mut violations,
        );
    }

    // Collect-at-root sanity baseline: must reproduce Algorithm 1 exactly.
    match solve_collect_at_root(g, inst) {
        Ok(collect) => {
            if collect.forest != central.forest {
                violations.push(violate(
                    "collect",
                    "collect-at-root diverges from centralized Algorithm 1".into(),
                ));
            }
            for v in check_ledger_budget(&collect.rounds, bandwidth) {
                violations.push(violate("collect", v));
            }
        }
        Err(e) => violations.push(violate("collect", format!("simulator error: {e:?}"))),
    }

    EntryOutcome {
        id: entry.id.clone(),
        records,
        violations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsf_congest::RunMetrics;
    use dsf_graph::{generators, EdgeId};
    use dsf_steiner::InstanceBuilder;

    #[test]
    fn feasibility_check_flags_disconnection_and_cycles() {
        let g = generators::path(4, 1);
        let inst = InstanceBuilder::new(&g)
            .component(&[NodeId(0), NodeId(3)])
            .build()
            .unwrap();
        let partial = ForestSolution::from_edges(vec![EdgeId(0)]);
        assert!(check_feasible_forest(&g, &inst, &partial).is_err());
        let full = ForestSolution::from_edges(vec![EdgeId(0), EdgeId(1), EdgeId(2)]);
        assert!(check_feasible_forest(&g, &inst, &full).is_ok());
        // A cycle is rejected even when feasible.
        let ring = generators::ring(4, 3, 0);
        let ring_inst = InstanceBuilder::new(&ring)
            .component(&[NodeId(0), NodeId(2)])
            .build()
            .unwrap();
        let cyclic: ForestSolution = (0..4).map(EdgeId).collect();
        assert!(check_feasible_forest(&ring, &ring_inst, &cyclic).is_err());
    }

    #[test]
    fn ratio_check_boundaries() {
        assert!(check_ratio_le(10, 2.0, 5.0, 0.0).is_ok());
        assert!(check_ratio_le(11, 2.0, 5.0, 0.0).is_err());
        assert!(check_ratio_le(11, 2.0, 5.0, 1.0).is_ok());
    }

    #[test]
    fn ledger_budget_flags_overflow_and_cut_excess() {
        let mut ledger = RoundLedger::new();
        ledger.record(
            "ok",
            &RunMetrics {
                rounds: 2,
                messages: 10,
                total_bits: 320,
                max_message_bits: 32,
                cut_bits: 100,
            },
        );
        assert!(check_ledger_budget(&ledger, 32).is_empty());
        ledger.record(
            "over",
            &RunMetrics {
                rounds: 1,
                messages: 2,
                total_bits: 100,
                max_message_bits: 50,
                cut_bits: 0,
            },
        );
        ledger.record(
            "cut",
            &RunMetrics {
                rounds: 1,
                messages: 4,
                total_bits: 64,
                max_message_bits: 16,
                cut_bits: 65,
            },
        );
        let v = check_ledger_budget(&ledger, 32);
        assert_eq!(v.len(), 2);
        assert!(v[0].contains("over"));
        assert!(v[1].contains("cut"));
    }

    #[test]
    fn check_entry_accepts_a_known_good_instance() {
        let entries = crate::corpus::corpus(crate::corpus::Tier::Quick);
        let outcome = check_entry(&entries[0]);
        assert!(outcome.violations.is_empty(), "{:?}", outcome.violations);
        let solvers: Vec<&str> = outcome.records.iter().map(|r| r.solver).collect();
        assert_eq!(
            solvers,
            vec!["moat", "moat_rounded", "det", "randomized", "khan"]
        );
    }
}
